// Package bingo is a reproduction of the Bingo spatial data prefetcher
// (Bakhshalipour et al., HPCA 2019) together with the full evaluation
// substrate the paper runs on: a trace-driven four-core simulator (OoO
// cores, two-level cache hierarchy, banked DRAM with row buffers, random
// first-touch translation), five competing prefetchers (SMS, AMPM, BOP,
// SPP, VLDP), synthetic stand-ins for the paper's server and SPEC
// workloads, and a harness that regenerates every table and figure of the
// paper's evaluation.
//
// This root package is the public façade: it re-exports the prefetcher
// API and the simulation entry points so downstream users never import
// internal packages directly.
//
// # Quick start
//
//	w, _ := bingo.WorkloadByName("Streaming")
//	base, _ := bingo.RunWorkload(w, "none", bingo.DefaultRunOptions())
//	res, _ := bingo.RunWorkload(w, "bingo", bingo.DefaultRunOptions())
//	fmt.Printf("speedup: %+.1f%%\n", (res.Throughput()/base.Throughput()-1)*100)
//
// # Using the prefetcher standalone
//
//	pf := bingo.NewPrefetcher(bingo.DefaultPrefetcherConfig())
//	addrs := pf.OnAccess(bingo.AccessEvent{PC: 0x400812, Addr: 0x7f3a_2040})
//	// addrs are the block addresses Bingo would prefetch.
package bingo

import (
	"bingo/internal/core"
	"bingo/internal/harness"
	"bingo/internal/mem"
	"bingo/internal/prefetch"
	"bingo/internal/system"
	"bingo/internal/workloads"
)

// Addr is a byte address in the simulated machine.
type Addr = mem.Addr

// PC is the program counter of an accessing instruction.
type PC = mem.PC

// Block geometry of the simulated hierarchy, re-exported so custom
// prefetchers can do address math in named units (see internal/mem for
// the full helper set on Addr).
const (
	// BlockShift is log2 of the cache-block size.
	BlockShift = mem.BlockShift
	// BlockSize is the cache-block size in bytes.
	BlockSize = mem.BlockSize
)

// AccessEvent is one demand access observed by a prefetcher.
type AccessEvent = prefetch.AccessEvent

// Prefetcher is the interface every prefetching algorithm implements;
// bring your own implementation to RunWorkloadWith to evaluate it on the
// simulated system against the built-in ones.
type Prefetcher = prefetch.Prefetcher

// PrefetcherFactory builds one Prefetcher per core.
type PrefetcherFactory = prefetch.Factory

// Footprint is a bit vector over the blocks of a spatial region.
type Footprint = prefetch.Footprint

// PrefetcherConfig parameterises the Bingo prefetcher.
type PrefetcherConfig = core.Config

// BingoPrefetcher is the paper's prefetcher: a residency tracker feeding
// one unified history table looked up with PC+Address then PC+Offset.
type BingoPrefetcher = core.Bingo

// DefaultPrefetcherConfig returns the paper's evaluated configuration
// (2 KB regions, 16 K-entry 16-way history, 20% vote threshold, ≈119 KB).
func DefaultPrefetcherConfig() PrefetcherConfig { return core.DefaultConfig() }

// NewPrefetcher builds a Bingo instance, panicking on invalid
// configuration (use core semantics: validate with cfg.Validate first if
// the configuration is not statically known).
func NewPrefetcher(cfg PrefetcherConfig) *BingoPrefetcher { return core.MustNew(cfg) }

// SystemConfig describes the simulated machine (Table I defaults).
type SystemConfig = system.Config

// AttachLevel selects where prefetchers attach (LLC per the paper, or L1
// for the attach-level ablation); set it via RunOptions.System.PrefetchAt.
type AttachLevel = system.AttachLevel

// Attach levels.
const (
	AttachLLC = system.AttachLLC
	AttachL1  = system.AttachL1
)

// Results carries everything a simulation run measured.
type Results = system.Results

// RunOptions bound one simulation run.
type RunOptions = harness.RunOptions

// Workload is one of the paper's Table II workloads.
type Workload = workloads.Spec

// DefaultRunOptions returns the paper-faithful machine and budgets.
func DefaultRunOptions() RunOptions { return harness.DefaultRunOptions() }

// FastRunOptions returns reduced budgets for tests and demos.
func FastRunOptions() RunOptions { return harness.FastRunOptions() }

// Workloads lists the paper's ten workloads in Table II order.
func Workloads() []Workload { return workloads.All() }

// WorkloadByName finds a workload ("DataServing", "em3d", "Mix1", …).
func WorkloadByName(name string) (Workload, bool) { return workloads.ByName(name) }

// Prefetchers lists the registered prefetcher names ("bingo", "sms",
// "ampm", "bop", "spp", "vldp", "none", aggressive variants, …).
func Prefetchers() []string { return harness.PrefetcherNames() }

// RunWorkload simulates a workload under a registered prefetcher name and
// returns the measured results.
func RunWorkload(w Workload, prefetcher string, opts RunOptions) (Results, error) {
	return harness.RunNamed(w, prefetcher, opts)
}

// RunWorkloadWith simulates a workload under a caller-supplied prefetcher
// factory — the hook for evaluating custom prefetchers on the same
// system and workloads as the paper's.
func RunWorkloadWith(w Workload, factory PrefetcherFactory, opts RunOptions) (Results, error) {
	return harness.Run(w, factory, opts)
}
