// Benchmarks regenerating each table and figure of the paper at benchmark
// scale: the workload budgets are shrunk so a single iteration is
// milliseconds-to-seconds, but every bench exercises exactly the code
// path that produces the corresponding artefact (cmd/experiments runs the
// full-scale versions). One benchmark per table/figure, as indexed in
// DESIGN.md.
package bingo_test

import (
	"testing"

	"bingo/internal/harness"
	"bingo/internal/workloads"
)

// benchOptions shrinks the machine and budgets so one experiment
// iteration is cheap while still simulating every component.
func benchOptions() harness.RunOptions {
	opts := harness.DefaultRunOptions()
	opts.System.LLC.SizeBytes = 256 * 1024
	opts.System.WarmupInstr = 5_000
	opts.System.MeasureInstr = 15_000
	return opts
}

func BenchmarkTable1Config(b *testing.B) {
	opts := harness.DefaultRunOptions()
	for i := 0; i < b.N; i++ {
		if harness.Table1(opts).String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2MPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		if _, err := harness.Table2(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig2(harness.NewMatrix(benchOptions())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3MultiEvent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		if _, err := harness.Fig3(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Redundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig4(harness.NewMatrix(benchOptions())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Sweep(b *testing.B) {
	sizes := []int{1024, 4096, 16384} // benchmark-scale subset of the sweep
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		if _, err := harness.Fig6(m, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		if _, err := harness.Fig7(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		if _, err := harness.Fig8(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Density(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		if _, err := harness.Fig9(m, harness.DefaultAreaModel()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10IsoDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		if _, err := harness.Fig10(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateVote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		if _, err := harness.AblateVote(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		if _, err := harness.AblateRegion(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationRate measures raw simulator throughput (simulated
// instructions per second) on the heaviest workload, reported as the
// custom metric Minstr/s.
func BenchmarkSimulationRate(b *testing.B) {
	w, _ := workloads.ByName("em3d")
	opts := benchOptions()
	var instr uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := harness.RunNamed(w, "bingo", opts)
		if err != nil {
			b.Fatal(err)
		}
		instr += res.WindowInstructions
	}
	b.ReportMetric(float64(instr)/1e6/b.Elapsed().Seconds(), "Minstr/s")
}

func BenchmarkAblateSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		if _, err := harness.AblateSharing(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblateQueue(harness.NewMatrix(benchOptions())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblateBandwidth(harness.NewMatrix(benchOptions())); err != nil {
			b.Fatal(err)
		}
	}
}
