GO ?= go

# Wall-clock budget for the full lint suite; the lint target warns when
# exceeded so future PRs notice a regression.
LINT_BUDGET_SECONDS ?= 60

.PHONY: all build test short race race-harness vet lint simlint bench bench-runner bench-checkpoint bench-telemetry bench-eventloop bench-lint bench-sweep san-test san-suite fuzz sweep-smoke

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The parallel experiment engine, matrix singleflight, and workload
# generators all run concurrently under the race detector here.
race:
	$(GO) test -race ./...

# Focused race pass for quick iteration on the harness; CI runs the full
# `race` target (./...) on every push.
race-harness:
	$(GO) test -race ./internal/harness/

vet:
	$(GO) vet ./...

# simlint is the project-specific invariant suite (determinism,
# address-unit safety, concurrency contracts, checkpoint completeness,
# sanitizer gating, parameter hygiene, hot-path allocation discipline,
# telemetry purity, lock ordering); see README.md "Static analysis &
# invariants". -unused-suppressions reports //lint: directives that no
# longer suppress anything, so stale suppressions cannot accumulate;
# -factcache makes repeat runs incremental (unchanged packages replay
# from .lintcache, which is gitignored).
simlint:
	$(GO) run ./cmd/simlint -unused-suppressions -factcache .lintcache ./...

# lint runs every static gate: go vet, simlint, and — when installed —
# staticcheck and govulncheck (the repo carries no dependency on either;
# CI installs them, laptops may not). The elapsed wall time is printed so
# regressions past the budget are visible in every run's output.
lint:
	@start=$$(date +%s); \
	set -e; \
	echo ">> go vet ./..."; \
	$(GO) vet ./...; \
	echo ">> simlint -unused-suppressions -factcache .lintcache ./..."; \
	$(GO) run ./cmd/simlint -unused-suppressions -factcache .lintcache ./...; \
	if command -v staticcheck >/dev/null 2>&1; then \
		echo ">> staticcheck ./..."; staticcheck ./...; \
	else echo ">> staticcheck not installed; skipping"; fi; \
	if command -v govulncheck >/dev/null 2>&1; then \
		echo ">> govulncheck ./..."; govulncheck ./...; \
	else echo ">> govulncheck not installed; skipping"; fi; \
	end=$$(date +%s); dur=$$((end - start)); \
	echo "lint completed in $${dur}s (budget: $(LINT_BUDGET_SECONDS)s)"; \
	if [ $$dur -gt $(LINT_BUDGET_SECONDS) ]; then \
		echo "WARNING: make lint exceeded its $(LINT_BUDGET_SECONDS)s budget — investigate before it rots"; \
	fi

# simsan: the whole test suite with the runtime invariant sanitizer
# compiled in and enabled (see internal/san and DESIGN.md's invariant
# catalog). Default builds carry none of its cost.
san-test:
	$(GO) build -tags=san ./...
	$(GO) test -tags=san ./...

# Fast-budget experiment suite under the sanitizer, then a byte-diff of
# its stdout against the untagged binary: the sanitizer must observe,
# never steer.
san-suite:
	$(GO) run -tags=san ./cmd/experiments -exp all -fast -quiet > /tmp/bingo-san.out
	$(GO) run ./cmd/experiments -exp all -fast -quiet > /tmp/bingo-nosan.out
	cmp /tmp/bingo-san.out /tmp/bingo-nosan.out
	@echo "san-suite: sanitized output is byte-identical to unsanitized"

# Short-budget fuzz pass over the parser and address-geometry targets;
# CI runs the same set on every push.
FUZZ_TIME ?= 15s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTraceReader -fuzztime $(FUZZ_TIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzGzipAutoReader -fuzztime $(FUZZ_TIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzAddrHelpers -fuzztime $(FUZZ_TIME) ./internal/mem/
	$(GO) test -run '^$$' -fuzz FuzzRegionGeometry -fuzztime $(FUZZ_TIME) ./internal/mem/
	$(GO) test -run '^$$' -fuzz FuzzCheckpointReader -fuzztime $(FUZZ_TIME) ./internal/checkpoint/
	$(GO) test -run '^$$' -fuzz FuzzDirectiveParser -fuzztime $(FUZZ_TIME) ./internal/lint/analysis/
	$(GO) test -run '^$$' -fuzz FuzzJobWire -fuzztime $(FUZZ_TIME) ./internal/sweep/

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerates BENCH_runner.json: sequential vs parallel warm of the
# fast-budget benchmark matrix subset on this machine.
bench-runner:
	BENCH_RUNNER_JSON=$(CURDIR)/BENCH_runner.json $(GO) test -run TestEmitRunnerBench -v ./internal/harness/

# Regenerates BENCH_checkpoint.json: cold vs warm-start (checkpoint
# reuse) matrix time on this machine, verifying byte-identical tables.
bench-checkpoint:
	BENCH_CHECKPOINT_JSON=$(CURDIR)/BENCH_checkpoint.json $(GO) test -run TestEmitCheckpointBench -v ./internal/harness/

# Regenerates BENCH_telemetry.json: wall time of the workload matrix
# with telemetry export off vs on (budget: <3% overhead), verifying the
# simulation results are identical either way.
bench-telemetry:
	BENCH_TELEMETRY_JSON=$(CURDIR)/BENCH_telemetry.json $(GO) test -run TestEmitTelemetryBench -v ./internal/harness/

# Regenerates BENCH_eventloop.json: lockstep vs event engine wall time
# per workload family at the full default budget, verifying identical
# results and >=2x speedup on at least one memory-bound family.
bench-eventloop:
	BENCH_EVENTLOOP_JSON=$(CURDIR)/BENCH_eventloop.json $(GO) test -run TestEmitEventloopBench -v ./internal/harness/

# Regenerates BENCH_lint.json: full simlint suite wall time cold vs warm
# (fact-cache replay) plus the process's peak RSS, against the 60s CI
# budget.
bench-lint:
	BENCH_LINT_JSON=$(CURDIR)/BENCH_lint.json $(GO) test -run TestEmitLintBench -v -timeout 300s ./internal/lint/

# Regenerates BENCH_sweep.json: micro-budget matrix throughput local vs
# coordinator + {1,2,4} loopback workers, plus the remote warm-cache hit
# rate, verifying byte-identical tables throughout.
bench-sweep:
	BENCH_SWEEP_JSON=$(CURDIR)/BENCH_sweep.json $(GO) test -run TestEmitSweepBench -v -timeout 600s ./internal/sweep/

# Loopback distributed-sweep smoke: a coordinator plus two worker
# processes over real TCP, output diffed against a plain local run. CI
# runs this on every push.
sweep-smoke:
	./scripts/sweep_smoke.sh
