GO ?= go

.PHONY: all build test short race vet bench bench-runner

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The parallel experiment engine, matrix singleflight, and workload
# generators all run concurrently under the race detector here.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerates BENCH_runner.json: sequential vs parallel warm of the
# fast-budget benchmark matrix subset on this machine.
bench-runner:
	BENCH_RUNNER_JSON=$(CURDIR)/BENCH_runner.json $(GO) test -run TestEmitRunnerBench -v ./internal/harness/
