module bingo

go 1.22
