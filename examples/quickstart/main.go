// Quickstart: simulate one server workload on the paper's four-core
// system with and without the Bingo prefetcher, and print the speedup,
// coverage, and accuracy — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"bingo"
)

func main() {
	w, ok := bingo.WorkloadByName("Streaming")
	if !ok {
		log.Fatal("workload not found")
	}
	opts := bingo.DefaultRunOptions()

	base, err := bingo.RunWorkload(w, "none", opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bingo.RunWorkload(w, "bingo", opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s — %s\n\n", w.Name, w.Description)
	fmt.Printf("baseline:    throughput=%.2f IPC, LLC MPKI=%.1f\n", base.Throughput(), base.LLCMPKI())
	fmt.Printf("with bingo:  throughput=%.2f IPC, LLC MPKI=%.1f (storage %d KB/core)\n",
		res.Throughput(), res.LLCMPKI(), res.StorageBytes/1024)
	fmt.Printf("\nspeedup:        %+.1f%%\n", (res.Throughput()/base.Throughput()-1)*100)
	fmt.Printf("miss coverage:  %.1f%%\n", res.CoverageVsBaseline(base.LLC.Misses)*100)
	fmt.Printf("accuracy:       %.1f%%\n", res.Accuracy()*100)
	fmt.Printf("overprediction: %.1f%%\n", res.Overprediction(base.LLC.Misses)*100)
}
