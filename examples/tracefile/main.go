// Tracefile: record a workload's memory-access stream to the binary
// trace format, read it back, and print summary statistics — the
// round-trip underlying reproducible cross-prefetcher comparisons and
// offline trace analysis.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bingo/internal/trace"
	"bingo/internal/workloads"
)

func main() {
	const n = 100_000
	src, ok := workloads.KernelByName("lbm", 7, 0)
	if !ok {
		log.Fatal("kernel not found")
	}

	path := filepath.Join(os.TempDir(), "lbm-demo.trc")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := trace.NewWriter(f, n)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec, ok := src.Next()
		if !ok {
			log.Fatalf("source ended early at %d", i)
		}
		if err := w.Write(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("wrote %d records (%d bytes) to %s\n", n, st.Size(), path)

	// Read it back and summarise.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	r, err := trace.NewReader(rf)
	if err != nil {
		log.Fatal(err)
	}
	var loads, stores, deps, instr uint64
	pcs := make(map[uint64]struct{})
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		instr += rec.Instructions()
		if rec.Kind == trace.Store {
			stores++
		} else {
			loads++
		}
		if rec.Dep {
			deps++
		}
		pcs[uint64(rec.PC)] = struct{}{}
	}
	if err := r.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: %d loads, %d stores, %d dependent, %d instructions, %d distinct PCs\n",
		loads, stores, deps, instr, len(pcs))
}
