// Serverload: a miniature of the paper's Figure 8 — run every competing
// prefetcher on the big-data server workloads and rank them by speedup.
// Demonstrates sweeping the registered prefetchers over several
// workloads and aggregating results.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"bingo"
)

func main() {
	serverWorkloads := []string{"DataServing", "SATSolver", "Streaming", "Zeus", "em3d"}
	prefetchers := []string{"bop", "spp", "vldp", "ampm", "sms", "bingo"}
	opts := bingo.DefaultRunOptions()

	logsum := make(map[string]float64)
	fmt.Printf("%-12s", "workload")
	for _, p := range prefetchers {
		fmt.Printf(" %8s", p)
	}
	fmt.Println()

	for _, name := range serverWorkloads {
		w, ok := bingo.WorkloadByName(name)
		if !ok {
			log.Fatalf("unknown workload %s", name)
		}
		base, err := bingo.RunWorkload(w, "none", opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", name)
		for _, p := range prefetchers {
			res, err := bingo.RunWorkload(w, p, opts)
			if err != nil {
				log.Fatal(err)
			}
			sp := res.Throughput() / base.Throughput()
			logsum[p] += math.Log(sp)
			fmt.Printf(" %+7.0f%%", (sp-1)*100)
		}
		fmt.Println()
	}

	type ranked struct {
		name  string
		gmean float64
	}
	ranking := make([]ranked, 0, len(prefetchers))
	for _, p := range prefetchers {
		ranking = append(ranking, ranked{p, math.Exp(logsum[p] / float64(len(serverWorkloads)))})
	}
	sort.Slice(ranking, func(i, j int) bool { return ranking[i].gmean > ranking[j].gmean })

	fmt.Println("\nranking (geometric-mean speedup on server workloads):")
	for i, r := range ranking {
		fmt.Printf("  %d. %-6s %+.1f%%\n", i+1, r.name, (r.gmean-1)*100)
	}
}
