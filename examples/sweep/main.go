// Sweep: a miniature of the paper's Figure 6 — sweep Bingo's history
// table capacity on one workload through the public API, showing how to
// run custom prefetcher configurations against the simulated system.
package main

import (
	"fmt"
	"log"

	"bingo"
)

func main() {
	w, ok := bingo.WorkloadByName("DataServing")
	if !ok {
		log.Fatal("workload not found")
	}
	opts := bingo.DefaultRunOptions()

	base, err := bingo.RunWorkload(w, "none", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: baseline %.2f IPC, %.1f MPKI\n\n", w.Name, base.Throughput(), base.LLCMPKI())
	fmt.Printf("%-10s %10s %10s %10s\n", "entries", "storage", "coverage", "speedup")

	for _, entries := range []int{1024, 4096, 16384, 65536} {
		cfg := bingo.DefaultPrefetcherConfig()
		cfg.HistoryEntries = entries

		res, err := bingo.RunWorkloadWith(w, func(core int) bingo.Prefetcher {
			return bingo.NewPrefetcher(cfg)
		}, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %7d KB %9.1f%% %+9.1f%%\n",
			entries,
			res.StorageBytes/1024,
			res.CoverageVsBaseline(base.LLC.Misses)*100,
			(res.Throughput()/base.Throughput()-1)*100)
	}
	fmt.Println("\nthe paper picks 16K entries (~119 KB): coverage plateaus beyond it")
}
