// Custom: implement your own prefetcher against the library's Prefetcher
// interface and evaluate it on the paper's system and workloads, head to
// head with Bingo. The example implements a simple sequential
// next-two-line prefetcher in ~30 lines.
package main

import (
	"fmt"
	"log"

	"bingo"
)

// nextTwo prefetches the two blocks following every demand access — the
// simplest possible spatial heuristic, useful as a floor reference.
type nextTwo struct {
	issued uint64
}

func (p *nextTwo) Name() string { return "next-two" }

func (p *nextTwo) OnAccess(ev bingo.AccessEvent) []bingo.Addr {
	base := ev.Addr.BlockAlign()
	p.issued += 2
	//hot:alloc example code favors clarity over buffer reuse
	return []bingo.Addr{
		base + 1*bingo.BlockSize,
		base + 2*bingo.BlockSize,
	}
}

func (p *nextTwo) OnEviction(bingo.Addr) {}

func (p *nextTwo) StorageBytes() int { return 0 }

func main() {
	opts := bingo.DefaultRunOptions()
	w, ok := bingo.WorkloadByName("em3d")
	if !ok {
		log.Fatal("workload not found")
	}

	base, err := bingo.RunWorkload(w, "none", opts)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate the custom prefetcher: the factory builds one instance per
	// core, exactly like the built-in prefetchers.
	custom, err := bingo.RunWorkloadWith(w, func(core int) bingo.Prefetcher {
		return &nextTwo{}
	}, opts)
	if err != nil {
		log.Fatal(err)
	}

	official, err := bingo.RunWorkload(w, "bingo", opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (baseline %.2f IPC)\n\n", w.Name, base.Throughput())
	for _, r := range []bingo.Results{custom, official} {
		fmt.Printf("%-10s speedup=%+6.1f%%  coverage=%5.1f%%  accuracy=%5.1f%%  overprediction=%5.1f%%\n",
			r.PrefetcherName,
			(r.Throughput()/base.Throughput()-1)*100,
			r.CoverageVsBaseline(base.LLC.Misses)*100,
			r.Accuracy()*100,
			r.Overprediction(base.LLC.Misses)*100)
	}
	fmt.Println("\nswap nextTwo for your own design: implement Name/OnAccess/OnEviction/StorageBytes.")
}
