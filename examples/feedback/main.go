// Feedback: demonstrate feedback-directed throttling (the paper's
// reference [41]) protecting a bandwidth-starved system from an
// over-aggressive prefetcher. The DRAM bus is slowed to a quarter of the
// paper's bandwidth; unthrottled aggressive VLDP then pollutes it, while
// the FDP wrapper reins the degree in when measured accuracy drops.
package main

import (
	"fmt"
	"log"

	"bingo"
)

func main() {
	w, ok := bingo.WorkloadByName("em3d")
	if !ok {
		log.Fatal("workload not found")
	}
	opts := bingo.DefaultRunOptions()
	opts.System.DRAM.BusCycles *= 4 // quarter the peak bandwidth

	base, err := bingo.RunWorkload(w, "none", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s on a quarter-bandwidth system (baseline %.2f IPC)\n\n", w.Name, base.Throughput())

	for _, p := range []string{"vldp-aggr", "fdp-vldp-aggr", "bingo"} {
		res, err := bingo.RunWorkload(w, p, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s speedup=%+6.1f%%  overprediction=%5.1f%%  dropped=%d\n",
			p,
			(res.Throughput()/base.Throughput()-1)*100,
			res.Overprediction(base.LLC.Misses)*100,
			res.PrefetchDropped)
	}
	fmt.Println("\nfdp(...) wraps any prefetcher: accuracy feedback halves the degree when prefetches go unused.")
}
