#!/usr/bin/env bash
# Loopback distributed-sweep smoke: one coordinator plus two worker
# processes over real TCP, with the rendered tables byte-diffed against
# a plain local run. The coordinator only exits once every job is
# terminal, so a passing diff proves the workers executed the sweep and
# the assembly was deterministic. Run via `make sweep-smoke`; CI runs it
# on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

EXP=${SWEEP_SMOKE_EXP:-table2}
PORT=$((20000 + $$ % 20000))
TMP=$(mktemp -d)
cleanup() {
  # Workers that were mid-poll when the coordinator exited are not part
  # of the assertion; reap whatever is left.
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/experiments" ./cmd/experiments

"$TMP/experiments" -exp "$EXP" -fast -quiet > "$TMP/local.out"

"$TMP/experiments" -serve "127.0.0.1:$PORT" -exp "$EXP" -fast -quiet > "$TMP/sweep.out" &
coord=$!

# Wait for the coordinator to accept connections.
for _ in $(seq 1 100); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
    exec 3>&- 3<&- || true
    break
  fi
  sleep 0.1
done

"$TMP/experiments" -worker "http://127.0.0.1:$PORT" -j 1 -quiet &
"$TMP/experiments" -worker "http://127.0.0.1:$PORT" -j 1 -quiet &

wait "$coord"

cmp "$TMP/local.out" "$TMP/sweep.out"
echo "sweep-smoke: coordinator + 2 workers rendered tables byte-identical to the local run"
