package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artefact: one paper table or figure
// re-expressed as rows of text cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table with aligned columns.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts = append(parts, pad(c, widths[i]))
			} else {
				parts = append(parts, c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (title and notes as comment lines).
func (t Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	fmt.Fprintln(w, strings.Join(escapeCSV(t.Headers), ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(escapeCSV(row), ","))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

func escapeCSV(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		out[i] = c
	}
	return out
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown table.
func (t Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(escapeMD(t.Headers), " | "))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(escapeMD(row), " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n_%s_\n", n)
	}
	fmt.Fprintln(w)
}

func escapeMD(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = strings.ReplaceAll(c, "|", "\\|")
	}
	return out
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// pct formats a ratio as a percentage cell.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// speedupPct formats a speedup ratio as "+N%".
func speedupPct(ratio float64) string { return fmt.Sprintf("%+.1f%%", (ratio-1)*100) }
