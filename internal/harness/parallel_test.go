package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"bingo/internal/benchenv"
	"bingo/internal/system"
	"bingo/internal/workloads"
)

// microOptions shrinks budgets further than tinyOptions: the parallel
// tests run whole suites several times over (and again under -race), so
// each cell must stay in the low milliseconds. Determinism does not
// depend on reaching steady state.
func microOptions() RunOptions {
	opts := tinyOptions()
	opts.System.WarmupInstr = 5_000
	opts.System.MeasureInstr = 10_000
	return opts
}

// determinismExperiments is the 3-experiment subset the determinism and
// benchmark tests exercise. The subset deliberately overlaps (table2's
// baselines are a strict subset of ablate-sharing's plan) so singleflight
// deduplication is on the tested path.
var determinismExperiments = []string{"table2", "fig4", "ablate-sharing"}

// runSuiteBytes renders the subset with the given worker count.
func runSuiteBytes(t *testing.T, jobs int) []byte {
	t.Helper()
	var out bytes.Buffer
	cfg := SuiteConfig{
		Experiments: determinismExperiments,
		Opts:        microOptions(),
		Jobs:        jobs,
		BudgetLabel: "micro",
	}
	if err := RunSuite(&out, cfg); err != nil {
		t.Fatalf("RunSuite jobs=%d: %v", jobs, err)
	}
	return out.Bytes()
}

// TestSuiteDeterministicAcrossJobs is the engine's core guarantee: the
// rendered tables are byte-identical whether the matrix was warmed
// sequentially or by a worker pool, and across repeated parallel runs
// (which schedule cells in different orders).
func TestSuiteDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the suite three times; skipped in -short")
	}
	sequential := runSuiteBytes(t, 1)
	if len(sequential) == 0 {
		t.Fatal("sequential run rendered nothing")
	}
	parallel := runSuiteBytes(t, 4)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("-j 4 output differs from -j 1:\n--- j1 ---\n%s\n--- j4 ---\n%s", sequential, parallel)
	}
	again := runSuiteBytes(t, 4)
	if !bytes.Equal(parallel, again) {
		t.Fatal("repeated -j 4 runs rendered different bytes")
	}
}

// TestMatrixSingleflight hammers one cell from many goroutines: exactly
// one simulation must run, and every caller must see its result.
func TestMatrixSingleflight(t *testing.T) {
	m := NewMatrix(microOptions())
	w, _ := workloads.ByName("SATSolver")

	const callers = 16
	results := make([]float64, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := m.Get(w, "bingo")
			results[i], errs[i] = res.Throughput(), err
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d saw throughput %v, caller 0 saw %v", i, results[i], results[0])
		}
	}
	if got := m.Runs(); got != 1 {
		t.Fatalf("%d callers triggered %d simulations, want 1", callers, got)
	}
}

// TestMatrixDoesNotMemoiseFailures verifies a failed cell can be retried:
// errors must not poison the singleflight map.
func TestMatrixDoesNotMemoiseFailures(t *testing.T) {
	m := NewMatrix(microOptions())
	w, _ := workloads.ByName("SATSolver")
	if _, err := m.Get(w, "bogus"); err == nil {
		t.Fatal("unknown prefetcher should error")
	}
	if got := m.Runs(); got != 0 {
		t.Fatalf("failed cell recorded %d runs", got)
	}
	// The same key with a now-valid factory is a fresh attempt. The
	// registry is immutable, so emulate recovery via RunCell directly.
	if _, err := m.Get(w, "none"); err != nil {
		t.Fatalf("matrix unusable after a failed cell: %v", err)
	}
}

// TestBaselineCacheConcurrent drives the baseline cache from many
// goroutines; all callers must agree and -race must stay quiet.
func TestBaselineCacheConcurrent(t *testing.T) {
	cache := NewBaselineCache(microOptions())
	w, _ := workloads.ByName("Streaming")

	const callers = 8
	var wg sync.WaitGroup
	cycles := make([]uint64, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cache.Get(w)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			cycles[i] = res.TotalCycles
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if cycles[i] != cycles[0] {
			t.Fatalf("caller %d saw %d cycles, caller 0 saw %d", i, cycles[i], cycles[0])
		}
	}
}

// TestEngineWarmDedupes plans the same cell many times; the engine must
// collapse the duplicates before occupying pool slots.
func TestEngineWarmDedupes(t *testing.T) {
	m := NewMatrix(microOptions())
	w, _ := workloads.ByName("SATSolver")
	var cells []PlannedCell
	for i := 0; i < 12; i++ {
		cells = append(cells, getCell(m, w, "none"))
	}
	if err := (Engine{Jobs: 4}).Warm(cells); err != nil {
		t.Fatal(err)
	}
	if got := m.Runs(); got != 1 {
		t.Fatalf("12 planned duplicates ran %d simulations, want 1", got)
	}
}

// TestEngineWarmCollectsErrors: a failing cell must not abort the pool;
// the other cells still warm and the failure surfaces in the joined error.
func TestEngineWarmCollectsErrors(t *testing.T) {
	m := NewMatrix(microOptions())
	w, _ := workloads.ByName("SATSolver")
	cells := []PlannedCell{
		getCell(m, w, "bogus"),
		getCell(m, w, "none"),
	}
	err := (Engine{Jobs: 2}).Warm(cells)
	if err == nil {
		t.Fatal("Warm should report the failed cell")
	}
	if got := m.Runs(); got != 1 {
		t.Fatalf("healthy cell did not warm alongside the failure: runs = %d", got)
	}
}

// TestPlanMatchesRender warms the planned cells of the determinism subset
// and then renders it: rendering must not need a single additional
// simulation, proving the planner enumerates exactly what the renderers
// request.
func TestPlanMatchesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a suite subset; skipped in -short")
	}
	m := NewMatrix(microOptions())
	cells := PlanExperiments(determinismExperiments, m)
	if err := (Engine{Jobs: 4}).Warm(cells); err != nil {
		t.Fatal(err)
	}
	warmed := m.Runs()
	if warmed != len(cells) {
		t.Fatalf("warmed %d cells from a %d-cell plan", warmed, len(cells))
	}
	for _, name := range determinismExperiments {
		if _, err := BuildExperiment(name, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if got := m.Runs(); got != warmed {
		t.Fatalf("rendering ran %d extra simulations after warming", got-warmed)
	}
}

// warmPlan warms the determinism subset on a fresh matrix, returning the
// wall time and cell count (shared by the benchmark and BENCH_runner).
func warmPlan(opts RunOptions, jobs int) (time.Duration, int, error) {
	m := NewMatrix(opts)
	m.SetAllocTracking(jobs == 1)
	cells := PlanExperiments(determinismExperiments, m)
	start := time.Now()
	err := (Engine{Jobs: jobs}).Warm(cells)
	return time.Since(start), len(cells), err
}

// BenchmarkMatrixParallel compares warming the fast-budget matrix subset
// sequentially (-j 1) against the full worker pool (-j GOMAXPROCS). On a
// single-core machine the two are expected to tie; the speedup scales
// with cores up to the cell count.
func BenchmarkMatrixParallel(b *testing.B) {
	for _, jobs := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := warmPlan(microOptions(), jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// runnerBench is the BENCH_runner.json document. The environment block
// records the machine the numbers were taken on: the parallel speedup is
// meaningless without knowing how many CPUs the worker pool had, and its
// degraded flag tells consumers structurally when this host could not
// have produced a >1x number (single CPU) — gate on it, don't parse the
// prose note. Two parallelism axes are measured: the cell-level worker
// pool (seq/par) and the intra-simulation parallel frontend
// (frontend_*), which fans one system's core ticks across goroutines.
type runnerBench struct {
	benchenv.Env
	Note                    string  `json:"note,omitempty"`
	Cells                   int     `json:"cells"`
	Experiments             string  `json:"experiments"`
	SeqSeconds              float64 `json:"seq_seconds"`
	ParJobs                 int     `json:"par_jobs"`
	ParSeconds              float64 `json:"par_seconds"`
	Speedup                 float64 `json:"speedup"`
	FrontendCell            string  `json:"frontend_cell"`
	FrontendCores           int     `json:"frontend_cores"`
	FrontendSerialSeconds   float64 `json:"frontend_serial_seconds"`
	FrontendParallelSeconds float64 `json:"frontend_parallel_seconds"`
	FrontendSpeedup         float64 `json:"frontend_speedup"`
}

// frontendWall times one representative cell (em3d/bingo at 8 cores)
// under the given frontend, for the BENCH_runner document.
func frontendWall(f system.Frontend) (time.Duration, error) {
	w, ok := workloads.ByName("em3d")
	if !ok {
		return 0, fmt.Errorf("workload em3d not registered")
	}
	factory, err := FactoryByName("bingo")
	if err != nil {
		return 0, err
	}
	opts := FastRunOptions()
	opts.System = opts.System.WithCores(8)
	opts.Frontend = f
	start := time.Now()
	_, err = Run(w, factory, opts)
	return time.Since(start), err
}

// TestEmitRunnerBench measures the sequential vs parallel warm of the
// benchmark subset and writes BENCH_runner.json to the path in the
// BENCH_RUNNER_JSON environment variable. It is a generator, not a test:
// without the variable it skips. Run it via `make bench-runner`.
func TestEmitRunnerBench(t *testing.T) {
	path := os.Getenv("BENCH_RUNNER_JSON")
	if path == "" {
		t.Skip("set BENCH_RUNNER_JSON=<path> to emit the runner benchmark")
	}
	opts := FastRunOptions()
	seq, cells, err := warmPlan(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	env := benchenv.Capture()
	jobs := env.GOMAXPROCS
	par, _, err := warmPlan(opts, jobs)
	if err != nil {
		t.Fatal(err)
	}
	feSerial, err := frontendWall(system.FrontendSerial)
	if err != nil {
		t.Fatal(err)
	}
	feParallel, err := frontendWall(system.FrontendParallel)
	if err != nil {
		t.Fatal(err)
	}
	doc := runnerBench{
		Env:                     env,
		Cells:                   cells,
		Experiments:             fmt.Sprintf("%v", determinismExperiments),
		SeqSeconds:              seq.Seconds(),
		ParJobs:                 jobs,
		ParSeconds:              par.Seconds(),
		Speedup:                 seq.Seconds() / par.Seconds(),
		FrontendCell:            "em3d/bingo",
		FrontendCores:           8,
		FrontendSerialSeconds:   feSerial.Seconds(),
		FrontendParallelSeconds: feParallel.Seconds(),
		FrontendSpeedup:         feSerial.Seconds() / feParallel.Seconds(),
	}
	if doc.Degraded {
		doc.Note = "single-CPU host: neither the worker pool nor the parallel frontend can beat sequential; re-record on a multi-core machine for a meaningful speedup"
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: seq=%s par=%s (jobs=%d, %.2fx)", path, seq, par, jobs, doc.Speedup)
}
