package harness

import (
	"fmt"
	"strconv"
	"strings"

	"bingo/internal/core"
	"bingo/internal/prefetch"
	"bingo/internal/system"
)

// Job-granular cell execution: a CellKey plus a RunOptions value fully
// determines one simulation. CellRunner reconstructs the prefetcher
// factory (and any instrumentation probe) from the key's label alone, so
// the identical cell can be executed by a local renderer, a parallel
// warm worker, or a sweep worker in another process — and the
// singleflight matrix, the warm-artifact store, and the distributed
// sweep service all agree on what a cell *is*. Every experiment accessor
// routes through ExecuteCell, which keeps the label grammar below the
// single source of truth for custom-config variants: a label that parses
// differently from what a renderer intended would change rendered tables
// and be caught by the suite determinism oracles.
//
// Config-level variants that modify RunOptions rather than the
// prefetcher — queue=N, seed=N, and the core-scaling cores=N (see
// coresOpts, which resizes the machine via Config.WithCores) — ride in
// CellKey.Variant with the modified RunOptions carried alongside the
// cell; the label grammar below stays prefetcher-only.

// EventCounters is the instrumented payload of a single-event history
// cell (Figure 2): predictions offered vs table lookups performed.
type EventCounters struct {
	Predicted uint64 `json:"predicted"`
	Lookups   uint64 `json:"lookups"`
}

// RedundancyCounters is the instrumented payload of the dual-table
// redundancy probe (Figure 4).
type RedundancyCounters struct {
	BothHit   uint64 `json:"both_hit"`
	Identical uint64 `json:"identical"`
}

// CellAux is the serializable union of instrumented cell payloads — the
// wire form of the `aux` value a probe extracts from a finished system.
// At most one field is set; the zero value means "no payload".
type CellAux struct {
	Events     *EventCounters      `json:"events,omitempty"`
	Redundancy *RedundancyCounters `json:"redundancy,omitempty"`
}

// EncodeAux converts a probe payload into its wire form. A nil payload
// encodes as the zero CellAux.
func EncodeAux(aux any) (CellAux, error) {
	switch v := aux.(type) {
	case nil:
		return CellAux{}, nil
	case EventCounters:
		return CellAux{Events: &v}, nil
	case RedundancyCounters:
		return CellAux{Redundancy: &v}, nil
	default:
		return CellAux{}, fmt.Errorf("harness: unencodable cell aux payload %T", aux)
	}
}

// Decode converts the wire form back into the payload value ExecuteCell
// would have produced locally (nil when no payload is set).
func (a CellAux) Decode() any {
	switch {
	case a.Events != nil:
		return *a.Events
	case a.Redundancy != nil:
		return *a.Redundancy
	default:
		return nil
	}
}

// CellRunner resolves a cell key's prefetcher label into the factory
// builder (and optional instrumentation probe) that executes it. Plain
// registry names resolve through FactoryByName; bracketed labels encode
// custom configurations:
//
//	multievent1[event=PC+Offset]   single-event history table (Figure 2)
//	multievent2[probe]             dual-table redundancy probe (Figure 4)
//	bingo[hist=16384]              resized history table (Figure 6)
//	bingo[vote=0.20]               vote-threshold ablation
//	bingo[recent]                  most-recent-footprint heuristic
//	bingo[region=2048]             region-size ablation
//	bingo[tags=16]                 truncated partial tags
//
// The returned build constructs a fresh factory per call (concurrent
// cells must never share mutable prefetcher state).
func CellRunner(key CellKey) (build func() (prefetch.Factory, error), probe func(*system.System) any, err error) {
	name := key.Prefetcher
	open := strings.IndexByte(name, '[')
	if open < 0 {
		if _, err := FactoryByName(name); err != nil {
			return nil, nil, err
		}
		return func() (prefetch.Factory, error) { return FactoryByName(name) }, nil, nil
	}
	if !strings.HasSuffix(name, "]") {
		return nil, nil, fmt.Errorf("harness: malformed cell label %q", name)
	}
	base, arg := name[:open], name[open+1:len(name)-1]
	switch base {
	case "multievent1":
		kindName, ok := strings.CutPrefix(arg, "event=")
		if !ok {
			return nil, nil, fmt.Errorf("harness: malformed multievent1 label %q", name)
		}
		kind, err := parseEventKind(kindName)
		if err != nil {
			return nil, nil, err
		}
		build = func() (prefetch.Factory, error) {
			cfg := core.DefaultMultiEventConfig(1)
			cfg.Events = []prefetch.EventKind{kind}
			return core.MultiEventFactory(cfg), nil
		}
		probe = func(sys *system.System) any {
			p, l := multiEventLookups(sys)
			return EventCounters{Predicted: p, Lookups: l}
		}
		return build, probe, nil
	case "multievent2":
		if arg != "probe" {
			return nil, nil, fmt.Errorf("harness: malformed multievent2 label %q", name)
		}
		build = func() (prefetch.Factory, error) {
			cfg := core.DefaultMultiEventConfig(2)
			cfg.ProbeRedundant = true
			return core.MultiEventFactory(cfg), nil
		}
		probe = func(sys *system.System) any {
			var c RedundancyCounters
			for _, p := range sys.Prefetchers() {
				if me, ok := p.(*core.MultiEvent); ok {
					c.BothHit += me.BothHit
					c.Identical += me.Identical
				}
			}
			return c
		}
		return build, probe, nil
	case "bingo":
		cfg, err := bingoVariantConfig(name, arg)
		if err != nil {
			return nil, nil, err
		}
		return func() (prefetch.Factory, error) { return core.Factory(cfg), nil }, nil, nil
	default:
		return nil, nil, fmt.Errorf("harness: unknown cell label family %q", name)
	}
}

// bingoVariantConfig parses one bracketed Bingo variant argument into a
// configuration derived from the defaults.
func bingoVariantConfig(label, arg string) (core.Config, error) {
	cfg := core.DefaultConfig()
	if arg == "recent" {
		cfg.MostRecent = true
		return cfg, nil
	}
	k, v, ok := strings.Cut(arg, "=")
	if !ok {
		return core.Config{}, fmt.Errorf("harness: malformed bingo label %q", label)
	}
	switch k {
	case "hist":
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return core.Config{}, fmt.Errorf("harness: bad history size in label %q", label)
		}
		cfg.HistoryEntries = n
	case "vote":
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return core.Config{}, fmt.Errorf("harness: bad vote threshold in label %q", label)
		}
		cfg.VoteThreshold = f
	case "region":
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			return core.Config{}, fmt.Errorf("harness: bad region size in label %q", label)
		}
		cfg.RegionBytes = n
	case "tags":
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return core.Config{}, fmt.Errorf("harness: bad tag width in label %q", label)
		}
		cfg.TruncateTags = true
		cfg.LongTagBits = n
	default:
		return core.Config{}, fmt.Errorf("harness: unknown bingo variant %q in label %q", k, label)
	}
	return cfg, nil
}

// parseEventKind maps an event kind's String form back to the kind.
func parseEventKind(s string) (prefetch.EventKind, error) {
	for _, k := range prefetch.AllEvents() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("harness: unknown event kind %q", s)
}

// ExecuteCell runs (or recalls) the cell identified by key under opts,
// resolving the cell's configuration from the key itself. This is the
// execution path shared by local renderers, the parallel warm engine,
// and remote sweep workers: whoever holds (key, opts) can perform — and
// memoise — the identical simulation.
func (m *Matrix) ExecuteCell(key CellKey, opts RunOptions) (system.Results, any, error) {
	build, probe, err := CellRunner(key)
	if err != nil {
		return system.Results{}, nil, err
	}
	return m.RunCell(key, opts, build, probe)
}
