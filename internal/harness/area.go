package harness

// The silicon-area model behind the performance-density experiment
// (paper §VI-D / Figure 9). The paper uses CACTI 7.0 at 14 nm and counts
// cores, caches, interconnect, and memory channels, neglecting I/O; we use
// round figures with the same ratios. Performance density compares
// throughput per unit area, so only ratios matter — the prefetcher's
// storage is charged at SRAM density against a baseline chip whose area
// is dominated by cores and the LLC.

// AreaModel holds the per-component area constants in mm² (14 nm-class).
type AreaModel struct {
	CoreMM2         float64 // one core including private L1s
	LLCPerMB        float64
	UncoreMM2       float64 // interconnect + memory channels
	SRAMPerKB       float64 // prefetcher metadata (tag+data overhead included)
	LLCSizeMB       float64
	NumCores        int
	PrefetchersPerC int // prefetcher instances per core (1: private)
}

// DefaultAreaModel matches the paper's platform: four cores, 8 MB LLC.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		CoreMM2:         8.0,
		LLCPerMB:        1.4,
		UncoreMM2:       12.0,
		SRAMPerKB:       1.4 / 1024 * 1.2, // LLC density plus 20% control overhead
		LLCSizeMB:       8,
		NumCores:        4,
		PrefetchersPerC: 1,
	}
}

// BaselineMM2 is the chip area without any prefetcher.
func (a AreaModel) BaselineMM2() float64 {
	return float64(a.NumCores)*a.CoreMM2 + a.LLCSizeMB*a.LLCPerMB + a.UncoreMM2
}

// WithPrefetcherMM2 is the chip area with a prefetcher of the given
// per-instance storage (bytes) attached to every core.
func (a AreaModel) WithPrefetcherMM2(storageBytes int) float64 {
	kb := float64(storageBytes) / 1024
	return a.BaselineMM2() + float64(a.NumCores*a.PrefetchersPerC)*kb*a.SRAMPerKB
}

// DensityImprovement converts a throughput speedup and a prefetcher
// storage budget into a performance-density improvement over the
// prefetcher-less baseline: (perf/area) / (basePerf/baseArea).
func (a AreaModel) DensityImprovement(speedup float64, storageBytes int) float64 {
	return speedup * a.BaselineMM2() / a.WithPrefetcherMM2(storageBytes)
}
