package harness

import (
	"fmt"
	"sync"

	"bingo/internal/prefetch"
	"bingo/internal/system"
	"bingo/internal/trace"
	"bingo/internal/workloads"
)

// RunOptions bound a single simulation.
type RunOptions struct {
	// System is the machine configuration (zero value: Table I defaults).
	System system.Config
	// Seed decorrelates workload generators between runs; translation
	// uses System.Seed. The same (workload, Seed) pair always produces
	// the identical trace, which is what makes cross-prefetcher
	// comparisons exact.
	Seed int64
	// Engine selects the simulation loop's clock-advance strategy
	// (lockstep by default). It lives here rather than in system.Config
	// because it changes only wall-clock cost, never results: the two
	// engines are proven byte-identical by the engine-differential
	// oracles, so it must not participate in configuration identity
	// (checkpoint cross-checks, warm-artifact cache keys).
	Engine system.Engine
	// Frontend selects serial vs parallel per-core frontend execution
	// (serial by default). Like Engine it is a wall-clock knob only —
	// the frontend-differential oracles prove parallel runs
	// byte-identical to serial ones — so it too stays out of
	// configuration identity.
	Frontend system.Frontend
}

// DefaultRunOptions returns the paper-faithful configuration.
func DefaultRunOptions() RunOptions {
	return RunOptions{System: system.DefaultConfig(), Seed: 1}
}

// FastRunOptions shrinks instruction budgets for tests and benchmarks
// (the shape of the results is preserved; absolute values are noisier).
func FastRunOptions() RunOptions {
	o := DefaultRunOptions()
	o.System = o.System.Scaled(50_000, 200_000)
	return o
}

// Run simulates one workload under one prefetcher factory and returns the
// results. Traces are materialised once per call so that back-to-back
// runs with different prefetchers see identical access streams.
func Run(w workloads.Spec, factory prefetch.Factory, opts RunOptions) (system.Results, error) {
	sources := w.Sources(opts.System.NumCores, opts.Seed)
	sys, err := system.New(opts.System, sources, factory)
	if err != nil {
		return system.Results{}, fmt.Errorf("harness: building system for %s: %w", w.Name, err)
	}
	sys.SetEngine(opts.Engine)
	sys.SetFrontend(opts.Frontend)
	return sys.Run(), nil
}

// RunNamed resolves the prefetcher by registry name and runs it.
func RunNamed(w workloads.Spec, prefetcher string, opts RunOptions) (system.Results, error) {
	factory, err := FactoryByName(prefetcher)
	if err != nil {
		return system.Results{}, err
	}
	return Run(w, factory, opts)
}

// BuildSystem assembles — without running — the System a Run call with the
// same arguments would drive, so callers can attach observers first. The
// differential oracles use it to install per-core demand taps (see
// cpu.SetDemandTap) before calling Run themselves.
func BuildSystem(w workloads.Spec, factory prefetch.Factory, opts RunOptions) (*system.System, error) {
	sources := w.Sources(opts.System.NumCores, opts.Seed)
	sys, err := system.New(opts.System, sources, factory)
	if err != nil {
		return nil, fmt.Errorf("harness: building system for %s: %w", w.Name, err)
	}
	sys.SetEngine(opts.Engine)
	sys.SetFrontend(opts.Frontend)
	return sys, nil
}

// RunWithSystem simulates and also returns the System so callers can
// inspect instrumented prefetcher internals (match probabilities,
// redundancy counters).
func RunWithSystem(w workloads.Spec, factory prefetch.Factory, opts RunOptions) (*system.System, system.Results, error) {
	sources := w.Sources(opts.System.NumCores, opts.Seed)
	sys, err := system.New(opts.System, sources, factory)
	if err != nil {
		return nil, system.Results{}, fmt.Errorf("harness: building system for %s: %w", w.Name, err)
	}
	sys.SetEngine(opts.Engine)
	sys.SetFrontend(opts.Frontend)
	res := sys.Run()
	return sys, res, nil
}

// BaselineCache memoises the no-prefetcher run of each workload, which
// several experiments normalise against.
//
// BaselineCache is safe for concurrent use: Get may be called from any
// number of goroutines, and two goroutines asking for the same workload
// share one in-flight simulation (singleflight) rather than racing or
// running it twice. A failed run is not cached; a later Get retries it.
type BaselineCache struct {
	opts     RunOptions
	mu       sync.Mutex
	inflight map[string]*baselineCall
}

// baselineCall is one singleflight slot of the cache.
type baselineCall struct {
	done chan struct{}
	res  system.Results
	err  error
}

// NewBaselineCache creates a cache bound to fixed run options.
func NewBaselineCache(opts RunOptions) *BaselineCache {
	return &BaselineCache{opts: opts, inflight: make(map[string]*baselineCall)}
}

// Get returns (running if necessary) the baseline results for w.
func (b *BaselineCache) Get(w workloads.Spec) (system.Results, error) {
	b.mu.Lock()
	if c, ok := b.inflight[w.Name]; ok {
		b.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &baselineCall{done: make(chan struct{})}
	b.inflight[w.Name] = c
	b.mu.Unlock()

	c.res, c.err = Run(w, nil, b.opts)
	close(c.done)
	if c.err != nil {
		// Do not memoise failures: drop the slot so a retry can run.
		b.mu.Lock()
		delete(b.inflight, w.Name)
		b.mu.Unlock()
	}
	return c.res, c.err
}

// SliceSourcesFromRecords is a convenience for tests: wraps pre-recorded
// traces as per-core sources.
func SliceSourcesFromRecords(perCore [][]trace.Record) []trace.Source {
	out := make([]trace.Source, len(perCore))
	for i, recs := range perCore {
		out[i] = trace.NewSliceSource(recs)
	}
	return out
}
