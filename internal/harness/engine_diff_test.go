package harness

import (
	"reflect"
	"testing"

	"bingo/internal/san"
	"bingo/internal/system"
	"bingo/internal/telemetry"
	"bingo/internal/workloads"
)

// The engine-differential oracle. The event engine (system.EngineEvent)
// claims to be a pure wall-clock optimisation: it must reproduce the
// lockstep loop's results bit for bit — every counter, every IPC digit,
// every telemetry epoch — on every prefetcher and every workload. These
// tests run each cell under both engines and compare the full Results
// struct (reflect.DeepEqual) and the rendered report (byte equality of
// Results.String), with the sanitizer enabled when compiled so the skip
// audit (DESIGN.md §6b) re-checks every jump the event engine takes.
//
// A companion property — no waker may ever schedule a wakeup at or
// before the current clock — is enforced unconditionally: sched.Queue
// panics on violation (see internal/sched, TestNextWakePanicsOnPastWakeup),
// so every event-engine run below doubles as a property test of it.

// runBothEngines runs one cell under the lockstep and event engines and
// returns both results plus the event run's skip accounting.
func runBothEngines(t *testing.T, w workloads.Spec, prefetcher string, opts RunOptions) (lock, ev system.Results, stats system.EngineStats) {
	t.Helper()
	factory, err := FactoryByName(prefetcher)
	if err != nil {
		t.Fatalf("resolving %q: %v", prefetcher, err)
	}
	opts.Engine = system.EngineLockstep
	lock, err = Run(w, factory, opts)
	if err != nil {
		t.Fatalf("lockstep run %s/%s: %v", w.Name, prefetcher, err)
	}
	opts.Engine = system.EngineEvent
	factory, err = FactoryByName(prefetcher) // fresh factory: instances are per-system
	if err != nil {
		t.Fatalf("resolving %q: %v", prefetcher, err)
	}
	sys, ev, err := RunWithSystem(w, factory, opts)
	if err != nil {
		t.Fatalf("event run %s/%s: %v", w.Name, prefetcher, err)
	}
	return lock, ev, sys.EngineStats()
}

// requireIdentical fails the test unless the two engines produced the
// same results, both structurally and as rendered text.
func requireIdentical(t *testing.T, label string, lock, ev system.Results) {
	t.Helper()
	if !reflect.DeepEqual(lock, ev) {
		t.Errorf("%s: event engine diverged from lockstep\nlockstep:\n%s\nevent:\n%s",
			label, lock.String(), ev.String())
		return
	}
	if ls, es := lock.String(), ev.String(); ls != es {
		t.Errorf("%s: Results.String differs despite equal structs\nlockstep:\n%s\nevent:\n%s",
			label, ls, es)
	}
}

// TestEngineDifferentialAllPrefetchers runs every registered prefetcher
// on two structurally different workloads — em3d (regular, prefetch-
// friendly) and Zeus (pointer chains, spatially inconsistent) — under
// both engines and requires byte-identical results.
func TestEngineDifferentialAllPrefetchers(t *testing.T) {
	if testing.Short() {
		t.Skip("engine differential matrix is slow")
	}
	defer san.SetEnabled(san.Compiled) // restore the build-flavor default
	san.SetEnabled(san.Compiled)
	opts := oracleRunOptions()
	for _, wname := range []string{"em3d", "Zeus"} {
		w, ok := workloads.ByName(wname)
		if !ok {
			t.Fatalf("workload %q not registered", wname)
		}
		for _, p := range PrefetcherNames() {
			lock, ev, _ := runBothEngines(t, w, p, opts)
			requireIdentical(t, w.Name+"/"+p, lock, ev)
		}
	}
}

// TestEngineDifferentialAllWorkloads covers every registered workload
// (the prefetcher matrix above covers breadth on the other axis) with
// the baseline and the paper's prefetcher.
func TestEngineDifferentialAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("engine differential matrix is slow")
	}
	defer san.SetEnabled(san.Compiled)
	san.SetEnabled(san.Compiled)
	opts := oracleRunOptions()
	for _, w := range workloads.All() {
		for _, p := range []string{"none", "bingo"} {
			lock, ev, _ := runBothEngines(t, w, p, opts)
			requireIdentical(t, w.Name+"/"+p, lock, ev)
		}
	}
}

// TestEngineActuallySkips pins the optimisation itself: on a memory-
// bound workload the event engine must take strictly fewer clock
// advances than cycles simulated, i.e. the skip machinery engages. A
// regression that silently degenerates to +1 stepping would keep results
// identical and slip past the differential tests; this one catches it.
func TestEngineActuallySkips(t *testing.T) {
	w, ok := workloads.ByName("Zeus")
	if !ok {
		t.Fatal("workload Zeus not registered")
	}
	opts := oracleRunOptions()
	_, _, stats := runBothEngines(t, w, "none", opts)
	if stats.SkippedCycles == 0 {
		t.Fatalf("event engine skipped no cycles on Zeus/none (advances=%d)", stats.Advances)
	}
	t.Logf("Zeus/none: advances=%d skipped=%d", stats.Advances, stats.SkippedCycles)
}

// TestEngineDifferentialTelemetry requires the epoch series — the most
// skip-sensitive artifact, since a jump across an epoch edge would merge
// epochs — to match exactly between engines.
func TestEngineDifferentialTelemetry(t *testing.T) {
	w, ok := workloads.ByName("em3d")
	if !ok {
		t.Fatal("workload em3d not registered")
	}
	opts := oracleRunOptions()
	series := func(engine system.Engine) ([]telemetry.EpochSample, system.Results) {
		factory, err := FactoryByName("bingo")
		if err != nil {
			t.Fatalf("resolving bingo: %v", err)
		}
		opts.Engine = engine
		sys, err := BuildSystem(w, factory, opts)
		if err != nil {
			t.Fatalf("building system: %v", err)
		}
		col := telemetry.NewCollector(0)
		sys.EnableTelemetry(col)
		res := sys.Run()
		return col.Series(), res
	}
	lockSeries, lockRes := series(system.EngineLockstep)
	evSeries, evRes := series(system.EngineEvent)
	requireIdentical(t, "em3d/bingo+telemetry", lockRes, evRes)
	if !reflect.DeepEqual(lockSeries, evSeries) {
		t.Fatalf("epoch series diverged: lockstep %d epochs, event %d epochs",
			len(lockSeries), len(evSeries))
	}
	if len(lockSeries) < 2 {
		t.Fatalf("want >= 2 epochs for a meaningful comparison, got %d", len(lockSeries))
	}
}
