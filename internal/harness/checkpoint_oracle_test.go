package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bingo/internal/san"
	"bingo/internal/system"
	"bingo/internal/workloads"
)

// The checkpoint differential oracle: pausing a simulation at an
// arbitrary clock advance, serialising it, restoring it into a freshly
// built system, and finishing there must be indistinguishable from the
// uninterrupted run — deeply equal Results and byte-identical rendered
// output. Because the checkpoint round-trips every piece of mutable
// state (caches, DRAM bank timing, ROBs, translator RNG cursor,
// prefetcher metadata), any component whose Save/Load pair drops or
// distorts a field shows up here as a divergence.

// checkpointOracleWorkload is the trace every resume-equivalence case
// uses; dependence-heavy enough that mid-stream ROB/LSQ state matters.
func checkpointOracleWorkload(t *testing.T) workloads.Spec {
	t.Helper()
	w, ok := workloads.ByName("DataServing")
	if !ok {
		t.Fatal("workload DataServing not registered")
	}
	return w
}

// buildFor assembles a fresh system for the named prefetcher.
func buildFor(t *testing.T, w workloads.Spec, prefetcher string, opts RunOptions) *system.System {
	t.Helper()
	factory, err := FactoryByName(prefetcher)
	if err != nil {
		t.Fatalf("resolving %q: %v", prefetcher, err)
	}
	sys, err := BuildSystem(w, factory, opts)
	if err != nil {
		t.Fatalf("building system for %s/%s: %v", w.Name, prefetcher, err)
	}
	return sys
}

// pauseAndSnapshot runs sys until the first clock advance at or past
// pauseAt, then serialises it. It fails the test if the run completes
// before pausing.
func pauseAndSnapshot(t *testing.T, sys *system.System, pauseAt uint64) []byte {
	t.Helper()
	sys.SetAdvanceHook(func(cycle uint64) bool { return cycle >= pauseAt })
	if _, paused := sys.RunResumable(); !paused {
		t.Fatalf("run completed before the pause point (cycle %d)", pauseAt)
	}
	sys.SetAdvanceHook(nil)
	var buf bytes.Buffer
	if err := sys.SaveCheckpoint(&buf); err != nil {
		t.Fatalf("saving checkpoint: %v", err)
	}
	return buf.Bytes()
}

// resumeCase runs one prefetcher uninterrupted, then pauses a second run
// at frac of the uninterrupted end clock, snapshots, restores into a
// third freshly built system, and requires all three finishes to agree.
func resumeCase(t *testing.T, w workloads.Spec, prefetcher string, opts RunOptions, frac float64) {
	t.Helper()
	ref := buildFor(t, w, prefetcher, opts)
	want := ref.Run()
	pauseAt := uint64(float64(ref.Clock()) * frac)
	if pauseAt == 0 {
		pauseAt = 1
	}

	paused := buildFor(t, w, prefetcher, opts)
	snapshot := pauseAndSnapshot(t, paused, pauseAt)

	// The paused system itself must finish identically...
	if got := paused.Run(); !reflect.DeepEqual(want, got) {
		t.Errorf("%s: paused-and-continued run diverged:\n  want %+v\n  got  %+v", prefetcher, want, got)
	}
	// ...and so must a fresh system restored from the snapshot.
	restored := buildFor(t, w, prefetcher, opts)
	if err := restored.LoadCheckpoint(bytes.NewReader(snapshot)); err != nil {
		t.Fatalf("%s: restoring checkpoint: %v", prefetcher, err)
	}
	got := restored.Run()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: restored run diverged:\n  want %+v\n  got  %+v", prefetcher, want, got)
	}
	if want.String() != got.String() {
		t.Errorf("%s: rendered output differs after restore:\n--- want ---\n%s--- got ---\n%s",
			prefetcher, want.String(), got.String())
	}
}

// TestResumeEquivalenceAllPrefetchers pauses every registered prefetcher
// mid-measurement and requires the restored run to be exact. The
// sanitizer is enabled (in san builds) so the restored state also has to
// pass the full invariant sweep while finishing.
func TestResumeEquivalenceAllPrefetchers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every prefetcher twice; skipped in -short")
	}
	defer san.SetEnabled(san.Compiled)
	san.SetEnabled(true)
	w := checkpointOracleWorkload(t)
	opts := tinyOptions()
	for _, name := range PrefetcherNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			resumeCase(t, w, name, opts, 0.5)
		})
	}
}

// TestResumeEquivalenceMidWarmup pauses inside the warm-up phase (before
// the stats reset) and at several other fractions, on a representative
// subset, so the phase machine's warm-up→measure transition is crossed
// by restored runs too.
func TestResumeEquivalenceMidWarmup(t *testing.T) {
	defer san.SetEnabled(san.Compiled)
	san.SetEnabled(true)
	w := checkpointOracleWorkload(t)
	opts := tinyOptions()
	for _, name := range []string{"none", "bingo", "bingo-shared", "fdp-sms"} {
		for _, frac := range []float64{0.05, 0.9} {
			resumeCase(t, w, name, opts, frac)
		}
	}
}

// TestWarmStartCheckpointResume saves exactly at the warm-up boundary
// (the warm store's artifact point) and requires the restored
// measurement phase to match a cold run.
func TestWarmStartCheckpointResume(t *testing.T) {
	w := checkpointOracleWorkload(t)
	opts := tinyOptions()
	for _, name := range []string{"none", "bingo"} {
		ref := buildFor(t, w, name, opts)
		want := ref.Run()

		warmed := buildFor(t, w, name, opts)
		warmed.RunWarmup()
		var buf bytes.Buffer
		if err := warmed.SaveCheckpoint(&buf); err != nil {
			t.Fatalf("%s: saving warm checkpoint: %v", name, err)
		}
		restored := buildFor(t, w, name, opts)
		if err := restored.LoadCheckpoint(&buf); err != nil {
			t.Fatalf("%s: restoring warm checkpoint: %v", name, err)
		}
		if got := restored.Run(); !reflect.DeepEqual(want, got) {
			t.Errorf("%s: warm-start run diverged:\n  want %+v\n  got  %+v", name, want, got)
		}
	}
}

// TestCheckpointRejectsMismatchedMachine: a snapshot must only restore
// into the machine shape that saved it.
func TestCheckpointRejectsMismatchedMachine(t *testing.T) {
	w := checkpointOracleWorkload(t)
	opts := tinyOptions()
	src := buildFor(t, w, "bingo", opts)
	src.RunWarmup()
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.Bytes()

	// Different prefetcher.
	other := buildFor(t, w, "sms", opts)
	if err := other.LoadCheckpoint(bytes.NewReader(snapshot)); err == nil {
		t.Error("bingo snapshot restored into an sms machine")
	}
	// Different configuration.
	bigger := opts
	bigger.System.LLC.SizeBytes *= 2
	mis := buildFor(t, w, "bingo", bigger)
	if err := mis.LoadCheckpoint(bytes.NewReader(snapshot)); err == nil {
		t.Error("snapshot restored into a differently configured machine")
	}
	// A non-fresh system.
	used := buildFor(t, w, "bingo", opts)
	used.Run()
	if err := used.LoadCheckpoint(bytes.NewReader(snapshot)); err == nil {
		t.Error("snapshot restored into an already-run system")
	}
	// The pristine snapshot still restores cleanly after all that.
	ok := buildFor(t, w, "bingo", opts)
	if err := ok.LoadCheckpoint(bytes.NewReader(snapshot)); err != nil {
		t.Fatalf("pristine snapshot failed to restore: %v", err)
	}
}

// TestCheckpointCorruptionNeverSilentlyWrong flips bits across a
// system-level snapshot and requires every flip to either fail the load
// or — when it lands in bytes outside any checksum's coverage, such as
// gzip header metadata — restore to a system that finishes identically.
func TestCheckpointCorruptionNeverSilentlyWrong(t *testing.T) {
	if testing.Short() {
		t.Skip("attempts many restores; skipped in -short")
	}
	w := checkpointOracleWorkload(t)
	opts := tinyOptions()
	opts.System.WarmupInstr = 2_000
	opts.System.MeasureInstr = 5_000

	src := buildFor(t, w, "bingo", opts)
	snapshot := pauseAndSnapshot(t, src, 1_000)
	ref := buildFor(t, w, "bingo", opts)
	if err := ref.LoadCheckpoint(bytes.NewReader(snapshot)); err != nil {
		t.Fatalf("restoring pristine snapshot: %v", err)
	}
	want := ref.Run().String()

	// Sampling every stride-th byte keeps the test seconds-fast while
	// still covering header, section table, and payload regions.
	stride := len(snapshot)/257 + 1
	flipped, survived := 0, 0
	for off := 0; off < len(snapshot); off += stride {
		corrupt := append([]byte(nil), snapshot...)
		corrupt[off] ^= 1 << (off % 8)
		flipped++
		sys := buildFor(t, w, "bingo", opts)
		if err := sys.LoadCheckpoint(bytes.NewReader(corrupt)); err != nil {
			continue // detected: good
		}
		survived++
		if got := sys.Run().String(); got != want {
			t.Fatalf("bit flip at offset %d loaded silently and changed results:\n--- want ---\n%s--- got ---\n%s",
				off, want, got)
		}
	}
	t.Logf("flipped %d sampled bytes: %d loads survived (all behaviourally identical)", flipped, survived)
}

// TestWarmStoreByteIdentity runs the same cells cold, store-populating,
// and store-reusing, and requires identical results (and a hit/miss
// ledger that shows the reuse actually happened).
func TestWarmStoreByteIdentity(t *testing.T) {
	w := checkpointOracleWorkload(t)
	opts := tinyOptions()
	cells := []string{"none", "bingo", "stride"}

	results := func(m *Matrix) []string {
		var out []string
		for _, name := range cells {
			res, err := m.Get(w, name)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out = append(out, res.String())
		}
		return out
	}

	cold := results(NewMatrix(opts))

	dir := t.TempDir()
	ws, err := NewWarmStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	populating := NewMatrix(opts)
	populating.SetWarmStore(ws)
	first := results(populating)
	if s := ws.Stats(); s.Misses != uint64(len(cells)) || s.Hits != 0 {
		t.Fatalf("populating pass: want %d misses 0 hits, got %+v", len(cells), s)
	}

	ws2, err := NewWarmStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	reusing := NewMatrix(opts)
	reusing.SetWarmStore(ws2)
	second := results(reusing)
	s := ws2.Stats()
	if s.Hits != uint64(len(cells)) || s.Misses != 0 {
		t.Fatalf("reusing pass: want %d hits 0 misses, got %+v", len(cells), s)
	}
	if s.CyclesSkipped == 0 {
		t.Fatal("reusing pass skipped zero warm-up cycles")
	}

	for i := range cells {
		if cold[i] != first[i] || cold[i] != second[i] {
			t.Errorf("%s: warm-start results differ from cold:\n--- cold ---\n%s--- populate ---\n%s--- reuse ---\n%s",
				cells[i], cold[i], first[i], second[i])
		}
	}
}

// TestWarmStoreRecoversFromCorruptArtifact damages a stored artifact and
// requires the store to regenerate it transparently with unchanged
// results.
func TestWarmStoreRecoversFromCorruptArtifact(t *testing.T) {
	w := checkpointOracleWorkload(t)
	opts := tinyOptions()
	dir := t.TempDir()

	ws, err := NewWarmStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(opts)
	m.SetWarmStore(ws)
	want, err := m.Get(w, "bingo")
	if err != nil {
		t.Fatal(err)
	}

	// Truncate every artifact in the directory.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	truncated := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		if err := os.Truncate(filepath.Join(dir, e.Name()), 40); err != nil {
			t.Fatal(err)
		}
		truncated++
	}
	if truncated == 0 {
		t.Fatal("populating pass left no artifacts")
	}

	ws2, err := NewWarmStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMatrix(opts)
	m2.SetWarmStore(ws2)
	got, err := m2.Get(w, "bingo")
	if err != nil {
		t.Fatalf("corrupt artifact was not recovered: %v", err)
	}
	if s := ws2.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Errorf("corrupt artifact should count as a miss, got %+v", s)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("results changed after artifact corruption recovery:\n  want %+v\n  got  %+v", want, got)
	}
}
