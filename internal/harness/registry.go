// Package harness runs the paper's experiments: it owns the prefetcher
// registry, the run/measure plumbing against deterministic workload
// traces, the silicon-area model behind the performance-density figure,
// and text renderers that print each table and figure of the evaluation.
package harness

import (
	"fmt"
	"sort"

	"bingo/internal/core"
	"bingo/internal/prefetch"
	"bingo/internal/prefetchers/ampm"
	"bingo/internal/prefetchers/bop"
	"bingo/internal/prefetchers/fdp"
	"bingo/internal/prefetchers/ghb"
	"bingo/internal/prefetchers/sms"
	"bingo/internal/prefetchers/spp"
	"bingo/internal/prefetchers/stride"
	"bingo/internal/prefetchers/vldp"
)

// PaperPrefetchers lists the competing prefetchers in the paper's figure
// order: BOP, SPP, VLDP, AMPM, SMS, Bingo.
func PaperPrefetchers() []string {
	return []string{"bop", "spp", "vldp", "ampm", "sms", "bingo"}
}

// registry maps names to factories. Entries must be deterministic: every
// call with the same name yields an equivalent configuration.
//
// Concurrency contract: the map is never mutated after package init, so
// FactoryByName may be called from any number of goroutines. Each call
// must return a *fresh* Factory value whose prefetcher instances are
// disjoint from every earlier call's — concurrent simulations each
// resolve their own factory, so a registry entry that cached prefetcher
// state across calls (rather than per Factory, like bingo-shared does)
// would leak state between parallel runs.
var registry = map[string]func() prefetch.Factory{
	"none":         func() prefetch.Factory { return nil },
	"bingo":        func() prefetch.Factory { return core.Factory(core.DefaultConfig()) },
	"sms":          func() prefetch.Factory { return sms.Factory(sms.DefaultConfig()) },
	"ampm":         func() prefetch.Factory { return ampm.Factory(ampm.DefaultConfig()) },
	"bop":          func() prefetch.Factory { return bop.Factory(bop.DefaultConfig()) },
	"spp":          func() prefetch.Factory { return spp.Factory(spp.DefaultConfig()) },
	"vldp":         func() prefetch.Factory { return vldp.Factory(vldp.DefaultConfig()) },
	"ghb":          func() prefetch.Factory { return ghb.Factory(ghb.DefaultConfig()) },
	"bingo-shared": func() prefetch.Factory { return core.SharedFactory(core.DefaultConfig()) },
	"bop-aggr":     func() prefetch.Factory { return bop.Factory(bop.AggressiveConfig()) },
	"spp-aggr":     func() prefetch.Factory { return spp.Factory(spp.AggressiveConfig()) },
	"vldp-aggr":    func() prefetch.Factory { return vldp.Factory(vldp.AggressiveConfig()) },
	"stride":       func() prefetch.Factory { return stride.Factory(stride.DefaultConfig()) },
	"nextline": func() prefetch.Factory {
		return func(int) prefetch.Prefetcher { return &stride.NextLine{N: 1} }
	},
	"fdp-sms": func() prefetch.Factory {
		return fdp.Factory(fdp.DefaultConfig(), sms.Factory(sms.DefaultConfig()))
	},
	"fdp-vldp-aggr": func() prefetch.Factory {
		return fdp.Factory(fdp.DefaultConfig(), vldp.Factory(vldp.AggressiveConfig()))
	},
	"multievent1": multiEventFactory(1),
	"multievent2": multiEventFactory(2),
	"multievent3": multiEventFactory(3),
	"multievent4": multiEventFactory(4),
	"multievent5": multiEventFactory(5),
}

func multiEventFactory(n int) func() prefetch.Factory {
	return func() prefetch.Factory {
		return core.MultiEventFactory(core.DefaultMultiEventConfig(n))
	}
}

// FactoryByName resolves a prefetcher name ("none" yields a nil factory,
// the baseline).
func FactoryByName(name string) (prefetch.Factory, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown prefetcher %q (have %v)", name, PrefetcherNames())
	}
	return f(), nil
}

// PrefetcherNames lists all registered names, sorted.
func PrefetcherNames() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
