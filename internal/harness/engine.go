package harness

import (
	"errors"
	"runtime"
	"sync"
)

// PlannedCell is one schedulable unit of the run matrix: a cell key plus
// the options it runs under and a thunk that performs (and memoises) the
// simulation. The thunk calls the same Matrix accessor the experiment's
// renderer will call, so a warmed cell is guaranteed to be a cache hit at
// render time. Key and Opts alone fully describe the simulation (see
// CellRunner), which is what lets a sweep coordinator ship planned cells
// to workers in other processes.
type PlannedCell struct {
	Key CellKey
	// Opts are the run options the cell executes under (the matrix's
	// base options unless Key.Variant says otherwise).
	Opts RunOptions
	run  func() error
}

// Engine executes planned cells on a bounded worker pool. The zero value
// is usable: Jobs <= 0 selects runtime.GOMAXPROCS(0) workers.
//
// Because every cell is memoised (and deduplicated in flight) by the
// Matrix, the engine's scheduling order has no effect on results — only
// on wall-clock time. Determinism of rendered output is owned by the
// renderers, which walk the matrix in a fixed order after warming.
type Engine struct {
	// Jobs is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
}

// jobs resolves the effective worker count.
func (e Engine) jobs() int {
	if e.Jobs > 0 {
		return e.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Warm runs every planned cell, deduplicated by key, using the engine's
// worker pool. All cells are attempted even if some fail; the returned
// error joins the failures in plan order (nil if all succeeded).
func (e Engine) Warm(cells []PlannedCell) error {
	unique := dedupeCells(cells)
	j := e.jobs()
	if j <= 1 {
		// Sequential: today's behaviour, in plan order.
		var errs []error
		for _, c := range unique {
			if err := c.run(); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}

	work := make(chan int)
	errs := make([]error, len(unique))
	var wg sync.WaitGroup
	for w := 0; w < j; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = unique[i].run()
			}
		}()
	}
	for i := range unique {
		work <- i
	}
	close(work)
	wg.Wait()
	return errors.Join(errs...)
}

// dedupeCells keeps the first occurrence of each key. Duplicates are
// harmless (the Matrix would singleflight them) but would occupy pool
// slots just to wait on the first occurrence's run.
func dedupeCells(cells []PlannedCell) []PlannedCell {
	seen := make(map[CellKey]struct{}, len(cells))
	out := make([]PlannedCell, 0, len(cells))
	for _, c := range cells {
		if _, ok := seen[c.Key]; ok {
			continue
		}
		seen[c.Key] = struct{}{}
		out = append(out, c)
	}
	return out
}
