// Wall-clock reads in this file time the cold vs warm-start matrix for
// the BENCH_checkpoint.json artefact; simulated results never depend on
// them (and detlint exempts _test.go files for exactly this reason).
package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"bingo/internal/benchenv"
)

// checkpointBenchRun renders the determinism experiment subset on a
// fresh matrix, optionally routed through a warm store at warmDir, and
// returns the wall time, the rendered bytes, and the store's hit/miss
// accounting (zero when warmDir is empty).
func checkpointBenchRun(t *testing.T, warmDir string) (time.Duration, []byte, WarmStats) {
	t.Helper()
	// Warm-up-heavy budgets: the store pays a fixed restore cost per
	// cell, so the speedup it buys scales with the warm-up share of the
	// run. Full paper budgets are warm-up-dominated like this.
	opts := tinyOptions()
	opts.System.WarmupInstr = 100_000
	opts.System.MeasureInstr = 20_000
	m := NewMatrix(opts)
	var ws *WarmStore
	if warmDir != "" {
		var err error
		ws, err = NewWarmStore(warmDir)
		if err != nil {
			t.Fatal(err)
		}
		m.SetWarmStore(ws)
	}
	start := time.Now()
	var out bytes.Buffer
	for _, name := range determinismExperiments {
		table, err := BuildExperiment(name, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		table.Render(&out)
	}
	elapsed := time.Since(start)
	var stats WarmStats
	if ws != nil {
		stats = ws.Stats()
	}
	return elapsed, out.Bytes(), stats
}

type checkpointBench struct {
	benchenv.Env
	Experiments         string  `json:"experiments"`
	Cells               int     `json:"cells"`
	ColdSeconds         float64 `json:"cold_seconds"`
	PopulateSeconds     float64 `json:"populate_seconds"`
	WarmSeconds         float64 `json:"warm_seconds"`
	Speedup             float64 `json:"speedup_cold_over_warm"`
	WarmHits            uint64  `json:"warm_hits"`
	WarmMisses          uint64  `json:"warm_misses"`
	WarmupCyclesSkipped uint64  `json:"warmup_cycles_skipped"`
	WarmupCyclesRun     uint64  `json:"warmup_cycles_run"`
	OutputsIdentical    bool    `json:"outputs_identical"`
}

// TestEmitCheckpointBench measures the experiment subset three ways —
// cold (no warm store), populating a fresh warm store, and reusing it —
// verifies the rendered tables are byte-identical across all three, and
// writes BENCH_checkpoint.json to the path in the BENCH_CHECKPOINT_JSON
// environment variable. It is a generator, not a test: without the
// variable it skips. Run it via `make bench-checkpoint`.
func TestEmitCheckpointBench(t *testing.T) {
	path := os.Getenv("BENCH_CHECKPOINT_JSON")
	if path == "" {
		t.Skip("set BENCH_CHECKPOINT_JSON=<path> to emit the checkpoint benchmark")
	}
	dir := t.TempDir()

	coldDur, coldOut, _ := checkpointBenchRun(t, "")
	popDur, popOut, popStats := checkpointBenchRun(t, dir)
	warmDur, warmOut, warmStats := checkpointBenchRun(t, dir)

	identical := bytes.Equal(coldOut, popOut) && bytes.Equal(coldOut, warmOut)
	if !identical {
		t.Error("warm-start outputs diverge from cold run")
	}
	if popStats.Misses == 0 || popStats.Hits != 0 {
		t.Errorf("populate pass: got %d hits / %d misses, want 0 hits and all misses", popStats.Hits, popStats.Misses)
	}
	if warmStats.Hits == 0 || warmStats.Misses != 0 {
		t.Errorf("reuse pass: got %d hits / %d misses, want all hits and 0 misses", warmStats.Hits, warmStats.Misses)
	}
	if warmStats.CyclesSkipped == 0 {
		t.Error("reuse pass skipped no warm-up cycles")
	}

	doc := checkpointBench{
		Env:                 benchenv.Capture(),
		Experiments:         fmt.Sprintf("%v", determinismExperiments),
		Cells:               int(warmStats.Hits + warmStats.Misses),
		ColdSeconds:         coldDur.Seconds(),
		PopulateSeconds:     popDur.Seconds(),
		WarmSeconds:         warmDur.Seconds(),
		Speedup:             coldDur.Seconds() / warmDur.Seconds(),
		WarmHits:            warmStats.Hits,
		WarmMisses:          warmStats.Misses,
		WarmupCyclesSkipped: warmStats.CyclesSkipped,
		WarmupCyclesRun:     popStats.CyclesRun,
		OutputsIdentical:    identical,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: cold=%s populate=%s warm=%s (%.2fx), %d warm-up cycles skipped",
		path, coldDur, popDur, warmDur, doc.Speedup, warmStats.CyclesSkipped)
}
