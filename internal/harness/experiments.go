package harness

import (
	"fmt"
	"math"
	"sync"

	"bingo/internal/core"
	"bingo/internal/prefetch"
	"bingo/internal/system"
	"bingo/internal/telemetry"
	"bingo/internal/workloads"
)

// Matrix memoises every simulation of the experiment suite, keyed by
// CellKey — registry (workload × prefetcher) runs, custom-config variants
// (Figure 6's history sweep, the ablations), and runs under modified
// system options. Experiments that share runs — Figures 7, 8, and 9 are
// three views of the same matrix — pay for each simulation once.
//
// Matrix is safe for concurrent use: Get and the other accessors may be
// called from any number of goroutines. Two callers requesting the same
// cell share one in-flight simulation (singleflight) instead of racing
// or duplicating work, which is what lets the parallel engine warm cells
// out of order while renderers still observe exactly one deterministic
// result per cell.
type Matrix struct {
	opts RunOptions

	mu          sync.Mutex
	cells       map[CellKey]*cellState
	stats       []CellStat
	trackAllocs bool
	warm        *WarmStore

	// Telemetry export configuration (SetTelemetry) and the optional
	// live-progress registry (SetDebugRegistry). Both are observability
	// only: simulated results never depend on them.
	telDir   string
	telEpoch uint64
	debugReg *telemetry.Registry
}

// NewMatrix creates an empty memoised run matrix.
func NewMatrix(opts RunOptions) *Matrix {
	return &Matrix{opts: opts, cells: make(map[CellKey]*cellState)}
}

// Options returns the base run options every non-variant cell uses.
func (m *Matrix) Options() RunOptions { return m.opts }

// Get runs (or recalls) workload w under the named prefetcher ("none" for
// the baseline).
func (m *Matrix) Get(w workloads.Spec, prefetcher string) (system.Results, error) {
	key := CellKey{Workload: w.Name, Prefetcher: prefetcher}
	res, _, err := m.ExecuteCell(key, m.opts)
	return res, err
}

// GetOpts runs (or recalls) workload w under the named prefetcher with
// modified run options. variant must uniquely encode the deviation from
// the base options (e.g. "queue=16") so the cell cannot collide with a
// base-options run.
func (m *Matrix) GetOpts(w workloads.Spec, prefetcher, variant string, opts RunOptions) (system.Results, error) {
	key := CellKey{Workload: w.Name, Prefetcher: prefetcher, Variant: variant}
	res, _, err := m.ExecuteCell(key, opts)
	return res, err
}

// Baseline is Get(w, "none").
func (m *Matrix) Baseline(w workloads.Spec) (system.Results, error) { return m.Get(w, "none") }

// ---------------------------------------------------------------------------
// Table I — evaluation parameters.

// Table1 renders the simulated system configuration (no simulation runs).
func Table1(opts RunOptions) Table {
	c := opts.System
	t := Table{Title: "Table I: Evaluation Parameters", Headers: []string{"Parameter", "Value"}}
	t.AddRow("Chip", fmt.Sprintf("%d cores, 4 GHz", c.NumCores))
	t.AddRow("Cores", fmt.Sprintf("%d-wide OoO, %d-entry ROB, %d-entry LSQ",
		c.Core.Width, c.Core.ROBSize, c.Core.LSQSize))
	t.AddRow("L1-D", fmt.Sprintf("%d KB, %d-way, %d-cycle hit",
		c.L1.SizeBytes/1024, c.L1.Assoc, c.L1.HitLatency))
	t.AddRow("LLC", fmt.Sprintf("%d MB, %d-way, %d-cycle hit",
		c.LLC.SizeBytes/(1<<20), c.LLC.Assoc, c.LLC.HitLatency))
	t.AddRow("Main Memory", fmt.Sprintf("%d channels, %d banks/channel, ~60 ns zero-load, 37.5 GB/s peak",
		c.DRAM.Channels, c.DRAM.BanksPerChannel))
	t.AddRow("OS Pages", fmt.Sprintf("%d KB, random first-touch translation", c.PageBytes/1024))
	t.AddRow("Budgets", fmt.Sprintf("%d K warm-up + %d K measured instructions/core",
		c.WarmupInstr/1000, c.MeasureInstr/1000))
	return t
}

// ---------------------------------------------------------------------------
// Table II — workloads and baseline MPKI.

// Table2 measures baseline LLC MPKI for every workload.
func Table2(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Table II: Application Parameters",
		Headers: []string{"Application", "LLC MPKI (paper)", "LLC MPKI (measured)", "Description"},
	}
	for _, w := range workloads.All() {
		base, err := m.Baseline(w)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(w.Name, fmt.Sprintf("%.1f", w.PaperMPKI), fmt.Sprintf("%.1f", base.LLCMPKI()), w.Description)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Figure 2 — accuracy and match probability of single-event heuristics.

// fig2Cell runs (or recalls) the single-event prefetcher for kind on w.
func (m *Matrix) fig2Cell(kind prefetch.EventKind, w workloads.Spec) (system.Results, EventCounters, error) {
	key := CellKey{Workload: w.Name, Prefetcher: fmt.Sprintf("multievent1[event=%s]", kind)}
	res, aux, err := m.ExecuteCell(key, m.opts)
	if err != nil {
		return system.Results{}, EventCounters{}, err
	}
	return res, aux.(EventCounters), nil
}

// Fig2 runs one single-event spatial prefetcher per event kind over every
// workload and reports the aggregate prefetch accuracy and history match
// probability — the longest-to-shortest tension motivating Bingo.
// Aggregates are ratio-of-sums across workloads (per-workload means would
// be poisoned by workloads where a rare event almost never fires).
func Fig2(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Figure 2: Accuracy and Match Probability per Event Heuristic (aggregate across workloads)",
		Headers: []string{"Event", "Accuracy", "Match Probability"},
	}
	for _, kind := range prefetch.AllEvents() {
		var useful, fills, predicted, lookups uint64
		for _, w := range workloads.All() {
			res, c, err := m.fig2Cell(kind, w)
			if err != nil {
				return Table{}, err
			}
			useful += res.LLC.UsefulPrefetch
			fills += res.LLC.PrefetchFills
			predicted += c.Predicted
			lookups += c.Lookups
		}
		t.AddRow(kind.String(), pct(ratio(useful, fills)), pct(ratio(predicted, lookups)))
	}
	t.AddNote("events ordered longest (most accurate, least matching) to shortest")
	return t, nil
}

// multiEventLookups sums prediction/lookup counters across the system's
// per-core MultiEvent instances.
func multiEventLookups(sys *system.System) (predicted, lookups uint64) {
	for _, p := range sys.Prefetchers() {
		if me, ok := p.(*core.MultiEvent); ok {
			predicted += me.Predicted
			lookups += me.Lookups
		}
	}
	return predicted, lookups
}

// ratio divides safely.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ---------------------------------------------------------------------------
// Figure 3 — coverage & accuracy vs number of cascaded events.

// Fig3 sweeps the TAGE-like cascade from one event (PC+Address) to all
// five, reporting mean coverage and accuracy.
func Fig3(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Figure 3: Coverage and Accuracy vs Number of Events",
		Headers: []string{"Events", "Coverage", "Accuracy"},
	}
	for n := 1; n <= 5; n++ {
		var covSum float64
		var useful, fills uint64
		cnt := 0
		for _, w := range workloads.All() {
			base, err := m.Baseline(w)
			if err != nil {
				return Table{}, err
			}
			res, err := m.Get(w, fmt.Sprintf("multievent%d", n))
			if err != nil {
				return Table{}, err
			}
			covSum += res.CoverageVsBaseline(base.LLC.Misses)
			useful += res.LLC.UsefulPrefetch
			fills += res.LLC.PrefetchFills
			cnt++
		}
		t.AddRow(fmt.Sprintf("%d", n), pct(covSum/float64(cnt)), pct(ratio(useful, fills)))
	}
	t.AddNote("1 event = PC+Address only; 5 events adds PC+Offset, Address, PC, Offset")
	return t, nil
}

// ---------------------------------------------------------------------------
// Figure 4 — redundancy in cascaded TAGE-like history tables.

// fig4Cell runs (or recalls) the redundancy-probing dual-event prefetcher
// on w.
func (m *Matrix) fig4Cell(w workloads.Spec) (RedundancyCounters, error) {
	key := CellKey{Workload: w.Name, Prefetcher: "multievent2[probe]"}
	_, aux, err := m.ExecuteCell(key, m.opts)
	if err != nil {
		return RedundancyCounters{}, err
	}
	return aux.(RedundancyCounters), nil
}

// Fig4 runs the dual-table probe and reports, per workload, the fraction
// of dual-hit lookups whose long and short predictions were identical.
func Fig4(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Figure 4: Redundancy in TAGE-Like History Metadata",
		Headers: []string{"Workload", "Redundancy"},
	}
	var sum float64
	for _, w := range workloads.All() {
		c, err := m.fig4Cell(w)
		if err != nil {
			return Table{}, err
		}
		red := 0.0
		if c.BothHit > 0 {
			red = float64(c.Identical) / float64(c.BothHit)
		}
		sum += red
		t.AddRow(w.Name, pct(red))
	}
	t.AddRow("Average", pct(sum/float64(len(workloads.All()))))
	t.AddNote("redundancy = dual-hit lookups where PC+Address and PC+Offset tables offer the identical footprint")
	return t, nil
}

// ---------------------------------------------------------------------------
// Figure 6 — Bingo miss coverage vs history table capacity.

// Fig6Sizes is the paper's sweep of history-table entry counts. It is
// immutable after init: experiment builders on any number of engine
// workers read it concurrently and must never mutate it.
var Fig6Sizes = []int{1024, 2048, 4096, 8192, 16384, 32768, 65536}

// fig6Cell runs (or recalls) Bingo with a resized history table on w.
func (m *Matrix) fig6Cell(w workloads.Spec, size int) (system.Results, error) {
	key := CellKey{Workload: w.Name, Prefetcher: fmt.Sprintf("bingo[hist=%d]", size)}
	res, _, err := m.ExecuteCell(key, m.opts)
	return res, err
}

// Fig6 sweeps Bingo's history capacity and reports per-workload coverage.
func Fig6(m *Matrix, sizes []int) (Table, error) {
	if len(sizes) == 0 {
		sizes = Fig6Sizes
	}
	headers := []string{"Workload"}
	for _, s := range sizes {
		headers = append(headers, fmt.Sprintf("%dK", s/1024))
	}
	t := Table{Title: "Figure 6: Bingo Miss Coverage vs History Table Entries", Headers: headers}
	for _, w := range workloads.All() {
		base, err := m.Baseline(w)
		if err != nil {
			return Table{}, err
		}
		row := []string{w.Name}
		for _, size := range sizes {
			res, err := m.fig6Cell(w, size)
			if err != nil {
				return Table{}, err
			}
			row = append(row, pct(res.CoverageVsBaseline(base.LLC.Misses)))
		}
		t.AddRow(row...)
	}
	t.AddNote("the paper picks 16K entries (~119 KB): coverage plateaus beyond it")
	return t, nil
}

// ---------------------------------------------------------------------------
// Figure 7 — coverage and overprediction of all prefetchers.

// Fig7 reports covered / uncovered / overpredicted misses (normalised to
// the baseline miss count) for each workload and prefetcher.
func Fig7(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Figure 7: Coverage and Overprediction",
		Headers: []string{"Workload", "Prefetcher", "Coverage", "Uncovered", "Overprediction"},
	}
	pfs := PaperPrefetchers()
	covSum := make(map[string]float64)
	overSum := make(map[string]float64)
	for _, w := range workloads.All() {
		base, err := m.Baseline(w)
		if err != nil {
			return Table{}, err
		}
		for _, pf := range pfs {
			res, err := m.Get(w, pf)
			if err != nil {
				return Table{}, err
			}
			cov := res.CoverageVsBaseline(base.LLC.Misses)
			over := res.Overprediction(base.LLC.Misses)
			covSum[pf] += cov
			overSum[pf] += over
			t.AddRow(w.Name, pf, pct(cov), pct(1-cov), pct(over))
		}
	}
	n := float64(len(workloads.All()))
	for _, pf := range pfs {
		t.AddRow("Average", pf, pct(covSum[pf]/n), pct(1-covSum[pf]/n), pct(overSum[pf]/n))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Figure 8 — performance improvement over the no-prefetcher baseline.

// Fig8 reports throughput speedups per workload and the geometric mean.
func Fig8(m *Matrix) (Table, error) {
	pfs := PaperPrefetchers()
	headers := append([]string{"Workload"}, pfs...)
	t := Table{Title: "Figure 8: Performance Improvement over No Prefetching", Headers: headers}
	logsum := make(map[string]float64)
	for _, w := range workloads.All() {
		base, err := m.Baseline(w)
		if err != nil {
			return Table{}, err
		}
		row := []string{w.Name}
		for _, pf := range pfs {
			res, err := m.Get(w, pf)
			if err != nil {
				return Table{}, err
			}
			sp := res.Throughput() / base.Throughput()
			logsum[pf] += math.Log(sp)
			row = append(row, speedupPct(sp))
		}
		t.AddRow(row...)
	}
	row := []string{"GMean"}
	n := float64(len(workloads.All()))
	for _, pf := range pfs {
		row = append(row, speedupPct(math.Exp(logsum[pf]/n)))
	}
	t.AddRow(row...)
	return t, nil
}

// ---------------------------------------------------------------------------
// Figure 9 — performance density.

// Fig9 converts Figure 8's speedups plus each prefetcher's storage budget
// into performance-density improvements using the area model.
func Fig9(m *Matrix, area AreaModel) (Table, error) {
	t := Table{
		Title:   "Figure 9: Performance Density Improvement",
		Headers: []string{"Prefetcher", "Storage/core", "GMean Speedup", "Perf Density Improvement"},
	}
	for _, pf := range PaperPrefetchers() {
		var logsum float64
		storage := 0
		for _, w := range workloads.All() {
			base, err := m.Baseline(w)
			if err != nil {
				return Table{}, err
			}
			res, err := m.Get(w, pf)
			if err != nil {
				return Table{}, err
			}
			logsum += math.Log(res.Throughput() / base.Throughput())
			storage = res.StorageBytes
		}
		speedup := math.Exp(logsum / float64(len(workloads.All())))
		density := area.DensityImprovement(speedup, storage)
		t.AddRow(pf, fmt.Sprintf("%.1f KB", float64(storage)/1024), speedupPct(speedup), speedupPct(density))
	}
	t.AddNote("area model: %.1f mm2 baseline chip (4 cores, 8 MB LLC, uncore); prefetcher SRAM charged per KB", area.BaselineMM2())
	return t, nil
}

// ---------------------------------------------------------------------------
// Figure 10 — ISO-degree comparison.

// fig10Variants lists the original and aggressive prefetcher variants of
// the ISO-degree comparison.
var fig10Variants = []string{"bop", "bop-aggr", "spp", "spp-aggr", "vldp", "vldp-aggr", "ampm", "sms", "bingo"}

// Fig10 compares the original and aggressive (unthrottled-degree) variants
// of the SHH prefetchers against Bingo, reporting speedup plus the
// coverage/overprediction callouts of the paper's figure.
func Fig10(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Figure 10: ISO-Degree Comparison",
		Headers: []string{"Prefetcher", "GMean Speedup", "Coverage", "Overprediction"},
	}
	for _, pf := range fig10Variants {
		var logsum, covSum, overSum float64
		for _, w := range workloads.All() {
			base, err := m.Baseline(w)
			if err != nil {
				return Table{}, err
			}
			res, err := m.Get(w, pf)
			if err != nil {
				return Table{}, err
			}
			logsum += math.Log(res.Throughput() / base.Throughput())
			covSum += res.CoverageVsBaseline(base.LLC.Misses)
			overSum += res.Overprediction(base.LLC.Misses)
		}
		n := float64(len(workloads.All()))
		t.AddRow(pf, speedupPct(math.Exp(logsum/n)), pct(covSum/n), pct(overSum/n))
	}
	t.AddNote("aggr = BOP/VLDP degree 32, SPP confidence threshold 1%% (paper §VI-E)")
	return t, nil
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper.

// AblateVote sweeps Bingo's short-match vote threshold.
func AblateVote(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Ablation: Bingo Vote Threshold",
		Headers: []string{"Threshold", "GMean Speedup", "Coverage", "Overprediction"},
	}
	for _, th := range voteThresholds {
		row, err := ablationRow(m, fmt.Sprintf("%.0f%%", th*100), voteCellLabel(th))
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, row)
	}
	// The rejected most-recent heuristic for reference.
	row, err := ablationRow(m, "most-recent", "bingo[recent]")
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, row)
	return t, nil
}

// voteThresholds is the vote-ablation sweep (0.20 is the paper's choice).
var voteThresholds = []float64{0.10, 0.20, 0.33, 0.50, 1.00}

func voteCellLabel(th float64) string { return fmt.Sprintf("bingo[vote=%.2f]", th) }

// AblateRegion sweeps Bingo's spatial region size.
func AblateRegion(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Ablation: Bingo Region Size",
		Headers: []string{"Region", "GMean Speedup", "Coverage", "Overprediction"},
	}
	for _, size := range regionSizes {
		row, err := ablationRow(m, fmt.Sprintf("%d KB", size/1024), regionCellLabel(size))
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// regionSizes is the region-size ablation sweep (2 KB is the paper's).
var regionSizes = []uint64{1024, 2048, 4096}

func regionCellLabel(size uint64) string { return fmt.Sprintf("bingo[region=%d]", size) }

// variantCell runs (or recalls) a custom-config prefetcher labelled pf on
// w under the matrix's base options. The label itself encodes the
// configuration (see CellRunner), so the identical cell is reproducible
// from the key alone — locally or on a sweep worker.
func (m *Matrix) variantCell(w workloads.Spec, pf string) (system.Results, error) {
	res, _, err := m.ExecuteCell(CellKey{Workload: w.Name, Prefetcher: pf}, m.opts)
	return res, err
}

// ablationRow runs a Bingo variant over all workloads and summarises it.
// An empty cellLabel means the registry's default Bingo; otherwise the
// variant is memoised in m under the cellLabel prefetcher name, whose
// bracketed argument encodes the configuration.
func ablationRow(m *Matrix, label, cellLabel string) ([]string, error) {
	var logsum, covSum, overSum float64
	for _, w := range workloads.All() {
		base, err := m.Baseline(w)
		if err != nil {
			return nil, err
		}
		var res system.Results
		if cellLabel == "" {
			res, err = m.Get(w, "bingo")
		} else {
			res, err = m.variantCell(w, cellLabel)
		}
		if err != nil {
			return nil, err
		}
		logsum += math.Log(res.Throughput() / base.Throughput())
		covSum += res.CoverageVsBaseline(base.LLC.Misses)
		overSum += res.Overprediction(base.LLC.Misses)
	}
	n := float64(len(workloads.All()))
	return []string{label, speedupPct(math.Exp(logsum / n)), pct(covSum / n), pct(overSum / n)}, nil
}
