package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bingo/internal/system"
	"bingo/internal/telemetry"
)

// Matrix telemetry: when enabled, every cell run gets its own
// telemetry.Collector attached before the simulation starts, and its
// epoch series is exported — one JSON document and one Chrome
// trace_event file per cell — into the configured directory after the
// run. The collector is a pure observer, so rendered tables are
// byte-identical with telemetry on or off (the differential oracle in
// telemetry_test.go proves it); only the side files differ.

// SetTelemetry enables per-cell telemetry export into dir, sampling
// every epochCycles simulated cycles (0 selects
// telemetry.DefaultEpochCycles). The directory is created if missing.
// Passing an empty dir disables export again.
func (m *Matrix) SetTelemetry(dir string, epochCycles uint64) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("harness: telemetry dir: %w", err)
		}
	}
	m.mu.Lock()
	m.telDir = dir
	m.telEpoch = epochCycles
	m.mu.Unlock()
	return nil
}

// SetDebugRegistry points the matrix at a registry for live progress
// counters (cells completed/failed, instructions simulated), typically
// the one a telemetry.DebugServer is serving. Nil disables mirroring.
func (m *Matrix) SetDebugRegistry(reg *telemetry.Registry) {
	m.mu.Lock()
	m.debugReg = reg
	m.mu.Unlock()
}

// telemetrySettings returns the current export configuration.
func (m *Matrix) telemetrySettings() (dir string, epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.telDir, m.telEpoch
}

// debugRegistry returns the configured debug registry, if any.
func (m *Matrix) debugRegistry() *telemetry.Registry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.debugReg
}

// newCellCollector builds the collector for one cell run, or nil when
// telemetry export is disabled.
func (m *Matrix) newCellCollector(key CellKey) *telemetry.Collector {
	dir, epoch := m.telemetrySettings()
	if dir == "" {
		return nil
	}
	tel := telemetry.NewCollector(epoch)
	tel.Workload = key.Workload
	tel.Prefetcher = key.Prefetcher
	if key.Variant != "" {
		tel.Prefetcher = key.Prefetcher + "@" + key.Variant
	}
	return tel
}

// TelemetryFileBase derives the export filename stem for one cell: the
// key string with every byte outside [A-Za-z0-9._-] replaced by '_',
// plus a short hash of the unsanitised key so distinct cells can never
// collide after sanitisation.
func TelemetryFileBase(key CellKey) string {
	s := key.String()
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			b[i] = '_'
		}
	}
	sum := sha256.Sum256([]byte(s))
	return string(b) + "-" + hex.EncodeToString(sum[:4])
}

// exportCellTelemetry writes the cell's collected series: <base>.json
// (the full telemetry document) and <base>.trace.json (Chrome
// trace_event) under the telemetry directory.
func (m *Matrix) exportCellTelemetry(key CellKey, tel *telemetry.Collector) error {
	dir, _ := m.telemetrySettings()
	if dir == "" || tel == nil {
		return nil
	}
	base := filepath.Join(dir, TelemetryFileBase(key))
	if err := writeFileWith(base+".json", tel.WriteJSON); err != nil {
		return fmt.Errorf("harness: telemetry export %s: %w", key, err)
	}
	if err := writeFileWith(base+".trace.json", tel.WriteChromeTrace); err != nil {
		return fmt.Errorf("harness: telemetry export %s: %w", key, err)
	}
	return nil
}

// writeFileWith streams write(f) into path, creating or truncating it.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	writeErr := write(f)
	closeErr := f.Close()
	if writeErr != nil {
		return writeErr
	}
	return closeErr
}

// recordCellOutcome mirrors per-cell progress into the debug registry,
// if one is configured. Purely observational: counters only.
func (m *Matrix) recordCellOutcome(res system.Results, err error) {
	reg := m.debugRegistry()
	if reg == nil {
		return
	}
	if err != nil {
		reg.Counter("harness.cells_failed").Inc()
		return
	}
	reg.Counter("harness.cells_completed").Inc()
	reg.Counter("harness.instructions_simulated").Add(res.WindowInstructions)
}
