package harness

import (
	"fmt"
	"math"

	"bingo/internal/workloads"
)

// scaleCoreCounts are the machine sizes the core-scaling experiment
// sweeps: the paper's 4-core Table I anchor plus the 8/16/64-core
// extrapolations (Config.WithCores scales LLC capacity, DRAM channels,
// and physical memory alongside the core count).
var scaleCoreCounts = []int{4, 8, 16, 64}

// scaleWorkloadNames picks one per-core server workload and one SPEC
// mix: the mix exercises mixSpec's kernel wrapping once the machine has
// more cores than the mix lists kernels.
var scaleWorkloadNames = []string{"em3d", "Mix1"}

// coresOpts returns the modified options and cell variant for one core
// count.
func coresOpts(base RunOptions, n int) (RunOptions, string) {
	o := base
	o.System = o.System.WithCores(n)
	return o, fmt.Sprintf("cores=%d", n)
}

// scaleWorkloads resolves scaleWorkloadNames (the registry pins them).
func scaleWorkloads() ([]workloads.Spec, error) {
	out := make([]workloads.Spec, 0, len(scaleWorkloadNames))
	for _, name := range scaleWorkloadNames {
		w, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: scale-cores workload %q not registered", name)
		}
		out = append(out, w)
	}
	return out, nil
}

// ScaleCores sweeps the core count past the paper's 4, reporting Bingo's
// speedup over the no-prefetcher baseline at the same size. Per-core
// IPC degrades as cores contend for the (per-core-constant) LLC and
// DRAM, and the interesting question is whether Bingo's gain survives
// that contention.
func ScaleCores(m *Matrix) (Table, error) {
	specs, err := scaleWorkloads()
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   "Scaling: Core Count (Bingo vs baseline at matched machine size)",
		Headers: []string{"Cores", "em3d Speedup", "Mix1 Speedup", "GMean", "LLC MPKI (bingo)"},
	}
	for _, n := range scaleCoreCounts {
		o, variant := coresOpts(m.Options(), n)
		var logsum, mpkiSum float64
		cols := make([]string, 0, len(specs))
		for _, w := range specs {
			base, err := m.GetOpts(w, "none", variant, o)
			if err != nil {
				return Table{}, err
			}
			res, err := m.GetOpts(w, "bingo", variant, o)
			if err != nil {
				return Table{}, err
			}
			ratio := res.Throughput() / base.Throughput()
			logsum += math.Log(ratio)
			mpkiSum += float64(res.LLC.Misses) / float64(res.WindowInstructions) * 1000
			cols = append(cols, speedupPct(ratio))
		}
		nw := float64(len(specs))
		row := append([]string{fmt.Sprintf("%d", n)}, cols...)
		row = append(row, speedupPct(math.Exp(logsum/nw)), fmt.Sprintf("%.2f", mpkiSum/nw))
		t.AddRow(row...)
	}
	return t, nil
}
