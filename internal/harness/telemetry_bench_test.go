// Wall-clock reads in this file time telemetry-on vs telemetry-off
// matrices for the BENCH_telemetry.json artefact; simulated results
// never depend on them (and detlint exempts _test.go files for exactly
// this reason).
package harness

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"bingo/internal/benchenv"
	"bingo/internal/system"
	"bingo/internal/workloads"
)

// telemetryBenchRun simulates every workload under the bingo prefetcher
// on a fresh matrix, with telemetry export into telDir when non-empty,
// and returns the wall time plus the per-cell Results keyed by workload.
func telemetryBenchRun(t *testing.T, telDir string) (time.Duration, map[string]system.Results) {
	t.Helper()
	// Measurement-heavy budgets: telemetry's cost is per simulated
	// cycle of the measured window (the epoch sampling guard plus the
	// lifecycle probes), so a short warm-up isolates exactly the phase
	// being instrumented.
	opts := tinyOptions()
	opts.System.WarmupInstr = 10_000
	opts.System.MeasureInstr = 200_000
	m := NewMatrix(opts)
	if telDir != "" {
		if err := m.SetTelemetry(telDir, 0); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	results := make(map[string]system.Results)
	for _, w := range workloads.All() {
		res, err := m.Get(w, "bingo")
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		results[w.Name] = res
	}
	return time.Since(start), results
}

type telemetryBench struct {
	benchenv.Env
	Workloads        int     `json:"workloads"`
	MeasureInstr     uint64  `json:"measure_instructions_per_cell"`
	BaselineSeconds  float64 `json:"baseline_seconds"`
	TelemetrySeconds float64 `json:"telemetry_seconds"`
	OverheadPct      float64 `json:"overhead_pct"`
	ResultsIdentical bool    `json:"results_identical"`
}

// TestEmitTelemetryBench times the full workload set under bingo with
// telemetry export off and on, verifies the simulation Results are
// identical either way, and writes BENCH_telemetry.json to the path in
// the BENCH_TELEMETRY_JSON environment variable. It is a generator, not
// a test: without the variable it skips. Run it via `make
// bench-telemetry`. The off pass runs twice and keeps the faster time,
// damping scheduler noise in the reported overhead.
func TestEmitTelemetryBench(t *testing.T) {
	path := os.Getenv("BENCH_TELEMETRY_JSON")
	if path == "" {
		t.Skip("set BENCH_TELEMETRY_JSON=<path> to emit the telemetry overhead benchmark")
	}

	offDur, offRes := telemetryBenchRun(t, "")
	onDur, onRes := telemetryBenchRun(t, t.TempDir())
	offDur2, _ := telemetryBenchRun(t, "")
	if offDur2 < offDur {
		offDur = offDur2
	}

	identical := reflect.DeepEqual(offRes, onRes)
	if !identical {
		t.Error("simulation results differ with telemetry enabled")
	}
	overhead := (onDur.Seconds() - offDur.Seconds()) / offDur.Seconds() * 100

	doc := telemetryBench{
		Env:              benchenv.Capture(),
		Workloads:        len(workloads.All()),
		MeasureInstr:     200_000,
		BaselineSeconds:  offDur.Seconds(),
		TelemetrySeconds: onDur.Seconds(),
		OverheadPct:      overhead,
		ResultsIdentical: identical,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: baseline=%s telemetry=%s overhead=%.2f%%", path, offDur, onDur, overhead)
	if overhead >= 3 {
		t.Logf("overhead %.2f%% is above the 3%% budget on this machine; rerun on an idle system before trusting the number", overhead)
	}
}
