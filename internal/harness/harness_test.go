package harness

import (
	"strings"
	"testing"

	"bingo/internal/workloads"
)

// tinyOptions shrinks budgets so harness tests stay fast. The simulated
// machine is also shrunk: a 512 KB LLC reaches steady state quickly.
func tinyOptions() RunOptions {
	opts := DefaultRunOptions()
	opts.System.LLC.SizeBytes = 512 * 1024
	opts.System.WarmupInstr = 20_000
	opts.System.MeasureInstr = 50_000
	return opts
}

func TestRegistryResolvesAllNames(t *testing.T) {
	for _, name := range PrefetcherNames() {
		f, err := FactoryByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "none" {
			if f != nil {
				t.Fatal("none should yield a nil factory")
			}
			continue
		}
		p := f(0)
		if p == nil || p.Name() == "" {
			t.Fatalf("%s built an invalid prefetcher", name)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	if _, err := FactoryByName("bogus"); err == nil {
		t.Fatal("unknown prefetcher should error")
	}
}

func TestPaperPrefetchersRegistered(t *testing.T) {
	if len(PaperPrefetchers()) != 6 {
		t.Fatal("the paper compares six prefetchers")
	}
	for _, name := range PaperPrefetchers() {
		if _, err := FactoryByName(name); err != nil {
			t.Fatalf("paper prefetcher %s missing: %v", name, err)
		}
	}
}

func TestRunProducesConsistentResults(t *testing.T) {
	w, _ := workloads.ByName("Streaming")
	opts := tinyOptions()
	a, err := RunNamed(w, "bingo", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNamed(w, "bingo", opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput() != b.Throughput() || a.LLC != b.LLC {
		t.Fatal("identical runs must be deterministic")
	}
	if a.PrefetcherName != "bingo" {
		t.Fatalf("prefetcher name = %q", a.PrefetcherName)
	}
}

func TestBaselineCacheMemoises(t *testing.T) {
	cache := NewBaselineCache(tinyOptions())
	w, _ := workloads.ByName("SATSolver")
	a, err := cache.Get(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Get(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatal("cache should return the memoised result")
	}
}

func TestMatrixMemoises(t *testing.T) {
	m := NewMatrix(tinyOptions())
	w, _ := workloads.ByName("SATSolver")
	a, err := m.Get(w, "none")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Baseline(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatal("matrix should memoise runs")
	}
	if _, err := m.Get(w, "bogus"); err == nil {
		t.Fatal("unknown prefetcher should propagate the error")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{Title: "T", Headers: []string{"A", "LongHeader"}}
	tbl.AddRow("x", "y")
	tbl.AddRow("longcell", "z")
	tbl.AddNote("n=%d", 42)
	out := tbl.String()
	for _, want := range []string{"== T ==", "LongHeader", "longcell", "note: n=42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: the separator row matches header width.
	if !strings.Contains(out, "--------") {
		t.Fatal("separator missing")
	}
}

func TestFormattingHelpers(t *testing.T) {
	if pct(0.1234) != "12.3%" {
		t.Fatalf("pct = %q", pct(0.1234))
	}
	if speedupPct(1.5) != "+50.0%" {
		t.Fatalf("speedupPct = %q", speedupPct(1.5))
	}
	if speedupPct(0.9) != "-10.0%" {
		t.Fatalf("speedupPct = %q", speedupPct(0.9))
	}
}

func TestAreaModel(t *testing.T) {
	a := DefaultAreaModel()
	base := a.BaselineMM2()
	if base <= 0 {
		t.Fatal("baseline area must be positive")
	}
	with := a.WithPrefetcherMM2(119 * 1024)
	if with <= base {
		t.Fatal("prefetcher storage must add area")
	}
	// Density improvement is below raw speedup but close for ~0.5 mm².
	d := a.DensityImprovement(1.60, 119*1024)
	if d >= 1.60 || d < 1.55 {
		t.Fatalf("density improvement = %v", d)
	}
	// Zero-storage prefetcher: density equals speedup.
	if a.DensityImprovement(1.3, 0) != 1.3 {
		t.Fatal("zero storage should not change density")
	}
}

func TestTable1Static(t *testing.T) {
	tbl := Table1(DefaultRunOptions())
	out := tbl.String()
	for _, want := range []string{"256-entry ROB", "8 MB", "37.5 GB/s", "random first-touch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 missing %q", want)
		}
	}
}

func TestFig6SizesDefault(t *testing.T) {
	if len(Fig6Sizes) != 7 || Fig6Sizes[0] != 1024 || Fig6Sizes[6] != 65536 {
		t.Fatalf("Fig6Sizes = %v", Fig6Sizes)
	}
}

// TestExperimentsSmoke runs the simulation-backed experiments end to end
// at a tiny scale, checking structure rather than values.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke is seconds-long; skipped in -short")
	}
	opts := tinyOptions()
	m := NewMatrix(opts)

	t2, err := Table2(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 10 {
		t.Fatalf("Table2 rows = %d", len(t2.Rows))
	}

	f7, err := Fig7(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Rows) != 10*6+6 {
		t.Fatalf("Fig7 rows = %d", len(f7.Rows))
	}

	f8, err := Fig8(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Rows) != 11 || f8.Rows[10][0] != "GMean" {
		t.Fatalf("Fig8 shape wrong: %d rows", len(f8.Rows))
	}

	f9, err := Fig9(m, DefaultAreaModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) != 6 {
		t.Fatalf("Fig9 rows = %d", len(f9.Rows))
	}

	f3, err := Fig3(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Rows) != 5 {
		t.Fatalf("Fig3 rows = %d", len(f3.Rows))
	}
}

func TestFig4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	tbl, err := Fig4(NewMatrix(tinyOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 11 || tbl.Rows[10][0] != "Average" {
		t.Fatalf("Fig4 shape wrong: %d rows", len(tbl.Rows))
	}
}

func TestTableCSVAndMarkdown(t *testing.T) {
	tbl := Table{Title: "T", Headers: []string{"A", "B"}}
	tbl.AddRow("x,1", "y|2")
	tbl.AddNote("note")

	var csv strings.Builder
	tbl.RenderCSV(&csv)
	out := csv.String()
	if !strings.Contains(out, "# T") || !strings.Contains(out, `"x,1"`) {
		t.Fatalf("csv render:\n%s", out)
	}

	var md strings.Builder
	tbl.RenderMarkdown(&md)
	out = md.String()
	if !strings.Contains(out, "### T") || !strings.Contains(out, `y\|2`) || !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("markdown render:\n%s", out)
	}
}

func TestSharedBingoRegistered(t *testing.T) {
	f, err := FactoryByName("bingo-shared")
	if err != nil {
		t.Fatal(err)
	}
	a := f(0)
	b := f(1)
	if a != b {
		t.Fatal("shared factory must hand out one instance")
	}
}

func TestGHBRegistered(t *testing.T) {
	f, err := FactoryByName("ghb")
	if err != nil {
		t.Fatal(err)
	}
	if f(0).Name() != "ghb-pcdc" {
		t.Fatal("ghb registry entry wrong")
	}
}

func TestAblateSharingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	m := NewMatrix(tinyOptions())
	tbl, err := AblateSharing(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("sharing ablation rows = %d", len(tbl.Rows))
	}
}

func TestSeedStats(t *testing.T) {
	st := newSeedStats([]float64{1.0, 2.0, 3.0})
	if st.Mean != 2.0 || st.Min != 1.0 || st.Max != 3.0 || st.N != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.StdDev < 0.99 || st.StdDev > 1.01 {
		t.Fatalf("stddev = %v, want 1.0", st.StdDev)
	}
	if newSeedStats(nil).N != 0 {
		t.Fatal("empty stats")
	}
	if st.String() == "" {
		t.Fatal("String should render")
	}
}

func TestSpeedupOverSeedsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	w, _ := workloads.ByName("Streaming")
	st, err := SpeedupOverSeeds(w, "bingo", tinyOptions(), []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 2 || st.Mean <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAblateLevelSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	tbl, err := AblateLevel(NewMatrix(tinyOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || tbl.Rows[0][0] != "LLC" || tbl.Rows[1][0] != "L1" {
		t.Fatalf("rows = %+v", tbl.Rows)
	}
}

func TestExtrasSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	m := NewMatrix(tinyOptions())
	tbl, err := Extras(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("extras rows = %d", len(tbl.Rows))
	}
}

func TestAblateTagsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	m := NewMatrix(tinyOptions())
	tbl, err := AblateTags(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 || tbl.Rows[0][0] != "full-width" {
		t.Fatalf("tags ablation rows = %+v", tbl.Rows)
	}
}
