package harness

import (
	"fmt"

	"bingo/internal/telemetry"
	"bingo/internal/workloads"
)

// Timeliness reports the prefetch-lifecycle breakdown of every paper
// prefetcher on every workload: the fraction of prefetch fills whose
// first demand use came after the fill completed (timely), while the
// fill was still in flight (late), or never (unused at eviction), plus
// the fills still resident and unused at the end of measurement, and
// the predictions dropped by the full prefetch queue. Fractions are of
// fills; aggregate rows are ratio-of-sums across workloads so short
// cells cannot dominate.
//
// The builder doubles as a production-path oracle: every cell's
// counters must satisfy the lifecycle conservation identities
// (issued == dropped + redundant + fills and
// fills == timely + late + unused + in-flight) or the experiment
// fails, so a broken probe wiring can never render a plausible table.
func Timeliness(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Prefetch Timeliness: Lifecycle Breakdown",
		Headers: []string{"Workload", "Prefetcher", "Timely", "Late", "Unused", "Fills", "Dropped"},
	}
	pfs := PaperPrefetchers()
	agg := make(map[string]telemetry.LifecycleStats, len(pfs))
	for _, w := range workloads.All() {
		for _, pf := range pfs {
			res, err := m.Get(w, pf)
			if err != nil {
				return Table{}, err
			}
			lc := res.Timeliness
			if !lc.Conserves() {
				return Table{}, fmt.Errorf("harness: %s/%s: prefetch lifecycle counters do not conserve: %+v", w.Name, pf, lc)
			}
			agg[pf] = agg[pf].Add(lc)
			t.AddRow(w.Name, pf, pct(lc.TimelyFraction()), pct(lc.LateFraction()),
				pct(lc.UnusedFraction()), fmt.Sprintf("%d", lc.Fills), fmt.Sprintf("%d", lc.QueueDropped))
		}
	}
	for _, pf := range pfs {
		lc := agg[pf]
		t.AddRow("Aggregate", pf, pct(lc.TimelyFraction()), pct(lc.LateFraction()),
			pct(lc.UnusedFraction()), fmt.Sprintf("%d", lc.Fills), fmt.Sprintf("%d", lc.QueueDropped))
	}
	t.AddNote("fractions of prefetch fills; timely+late+unused+still-resident = 100%%; aggregate is ratio-of-sums")
	return t, nil
}
