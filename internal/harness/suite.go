// All wall-clock reads in this file time the experiment driver itself
// (warm-up wall time, per-table render time) for the human-facing run
// report; simulated results never depend on them.
//
//lint:file-ignore detlint wall clock used for run-report timing only, never in simulated paths
package harness

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"bingo/internal/telemetry"
)

// experimentOrder is the canonical rendering order of the suite: the
// paper's artefact order, then the extra ablations. Output determinism
// relies on rendering strictly in this order regardless of how many
// workers warmed the matrix.
var experimentOrder = []string{
	"table1", "table2", "fig2", "fig3", "fig4", "fig6",
	"fig7", "fig8", "fig9", "fig10", "timeliness", "ablate-vote", "ablate-region",
	"ablate-sharing", "ablate-queue", "ablate-bandwidth", "ablate-level",
	"ablate-tags", "scale-cores", "extras", "seeds",
}

// ExperimentOrder returns the canonical experiment names in render order.
func ExperimentOrder() []string {
	return append([]string(nil), experimentOrder...)
}

// UnknownExperimentError reports a requested experiment name that the
// suite does not know.
type UnknownExperimentError struct {
	Name string
}

// Error implements error.
func (e UnknownExperimentError) Error() string {
	return fmt.Sprintf("unknown experiment %q (have %v)", e.Name, experimentOrder)
}

// BuildExperiment builds (running any simulations still missing from m)
// the named experiment's table.
func BuildExperiment(name string, m *Matrix) (Table, error) {
	switch name {
	case "table1":
		return Table1(m.Options()), nil
	case "table2":
		return Table2(m)
	case "fig2":
		return Fig2(m)
	case "fig3":
		return Fig3(m)
	case "fig4":
		return Fig4(m)
	case "fig6":
		return Fig6(m, nil)
	case "fig7":
		return Fig7(m)
	case "fig8":
		return Fig8(m)
	case "fig9":
		return Fig9(m, DefaultAreaModel())
	case "fig10":
		return Fig10(m)
	case "timeliness":
		return Timeliness(m)
	case "ablate-vote":
		return AblateVote(m)
	case "ablate-region":
		return AblateRegion(m)
	case "ablate-sharing":
		return AblateSharing(m)
	case "ablate-queue":
		return AblateQueue(m)
	case "ablate-bandwidth":
		return AblateBandwidth(m)
	case "ablate-level":
		return AblateLevel(m)
	case "ablate-tags":
		return AblateTags(m)
	case "scale-cores":
		return ScaleCores(m)
	case "extras":
		return Extras(m)
	case "seeds":
		return SeedSweep(m, "bingo", nil)
	default:
		return Table{}, UnknownExperimentError{Name: name}
	}
}

// SuiteConfig configures one experiment-suite run.
type SuiteConfig struct {
	// Experiments selects artefacts by name; nil/empty (or containing
	// "all") selects everything.
	Experiments []string
	// Opts are the base run options of the matrix.
	Opts RunOptions
	// Jobs bounds the worker pool warming the matrix: 1 recovers the
	// fully sequential lazy path; <= 0 selects runtime.GOMAXPROCS(0).
	Jobs int
	// Format is "text" (default), "csv", or "markdown".
	Format string
	// BudgetLabel names the instruction budgets in table notes
	// ("full", "fast"); empty omits the note's budget clause.
	BudgetLabel string
	// Report receives the run report (per-cell timings, totals) and
	// progress lines; nil discards them. The report is observability
	// output and deliberately kept off the table writer so rendered
	// tables stay byte-identical across job counts and repeated runs.
	Report io.Writer
	// WarmDir, when non-empty, enables warm-start reuse: end-of-warm-up
	// checkpoints are cached in this directory (keyed per cell and
	// options) and restored on later runs, skipping re-simulation of the
	// warm-up phase. Rendered tables are byte-identical either way.
	WarmDir string
	// TelemetryDir, when non-empty, exports every cell's epoch
	// time-series (JSON document + Chrome trace_event file) into this
	// directory. Collectors are pure observers: the rendered tables are
	// byte-identical with or without it.
	TelemetryDir string
	// TelemetryEpoch is the sampling period in simulated cycles for the
	// exported series (0 selects telemetry.DefaultEpochCycles).
	TelemetryEpoch uint64
	// Debug, when non-nil, receives live progress counters (cells
	// completed/failed, instructions simulated) — typically the registry
	// served by a telemetry.DebugServer behind -debug-addr.
	Debug *telemetry.Registry
}

// jobs resolves the configured worker count.
func (c SuiteConfig) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Selected resolves the requested experiment names (canonical order),
// erroring on unknown names.
func (c SuiteConfig) Selected() ([]string, error) {
	want := make(map[string]bool)
	all := len(c.Experiments) == 0
	for _, e := range c.Experiments {
		e = strings.TrimSpace(e)
		if e == "all" {
			all = true
			continue
		}
		if e == "" {
			continue
		}
		want[e] = true
	}
	known := make(map[string]bool, len(experimentOrder))
	var out []string
	for _, e := range experimentOrder {
		known[e] = true
		if all || want[e] {
			out = append(out, e)
		}
	}
	for e := range want {
		if !known[e] {
			return nil, UnknownExperimentError{Name: e}
		}
	}
	return out, nil
}

// RunSuite runs the selected experiments and renders their tables to out
// in canonical order.
//
// With Jobs > 1 the matrix cells of every selected experiment are first
// warmed concurrently on a bounded worker pool (deduplicated in flight by
// the Matrix's singleflight), then the renderers walk the memoised matrix
// strictly in order. Because each cell is simulated exactly once — by
// whichever path reaches it first — and renderers consume cells by key,
// the rendered bytes are identical for every Jobs value, including
// repeated runs at the same value. Jobs == 1 skips the warm phase
// entirely, recovering the historical lazy sequential path.
func RunSuite(out io.Writer, cfg SuiteConfig) error {
	names, err := cfg.Selected()
	if err != nil {
		return err
	}
	jobs := cfg.jobs()
	m, warm, err := NewSuiteMatrix(cfg)
	if err != nil {
		return err
	}

	wallStart := time.Now()
	var warmWall time.Duration
	if jobs > 1 {
		cells := PlanExperiments(names, m)
		reportf(cfg.Report, "warming %d matrix cells on %d workers\n", len(cells), jobs)
		if err := (Engine{Jobs: jobs}).Warm(cells); err != nil {
			return err
		}
		warmWall = time.Since(wallStart)
	}

	if err := RenderTables(out, cfg, m, names); err != nil {
		return err
	}

	WriteRunReport(cfg.Report, m, jobs, warmWall, time.Since(wallStart))
	if cfg.TelemetryDir != "" {
		reportf(cfg.Report, "telemetry: per-cell epoch series exported to %s\n", cfg.TelemetryDir)
	}
	ReportWarmStats(cfg.Report, warm)
	return nil
}

// NewSuiteMatrix builds the run matrix a suite configuration describes:
// base options, telemetry export, debug registry, warm-start store, and
// allocation tracking (only attributable at Jobs == 1). The returned
// WarmStore is nil unless cfg.WarmDir is set.
func NewSuiteMatrix(cfg SuiteConfig) (*Matrix, *WarmStore, error) {
	m := NewMatrix(cfg.Opts)
	// Per-cell allocation accounting is only attributable when cells run
	// one at a time.
	m.SetAllocTracking(cfg.jobs() == 1)
	if cfg.TelemetryDir != "" {
		if err := m.SetTelemetry(cfg.TelemetryDir, cfg.TelemetryEpoch); err != nil {
			return nil, nil, err
		}
	}
	m.SetDebugRegistry(cfg.Debug)
	var warm *WarmStore
	if cfg.WarmDir != "" {
		ws, err := NewWarmStore(cfg.WarmDir)
		if err != nil {
			return nil, nil, err
		}
		m.SetWarmStore(ws)
		warm = ws
	}
	return m, warm, nil
}

// RenderTables builds and renders the named experiments' tables to out,
// strictly in the given order, in the configured format. Renderers pull
// cells from the memoised matrix — any cell not already present (warmed
// locally or injected from a sweep worker) is simulated lazily here, so
// the output never depends on how the matrix was populated.
func RenderTables(out io.Writer, cfg SuiteConfig, m *Matrix, names []string) error {
	for _, name := range names {
		t0 := time.Now()
		table, err := BuildExperiment(name, m)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if cfg.BudgetLabel != "" {
			table.AddNote("seed %d, %s budgets", cfg.Opts.Seed, cfg.BudgetLabel)
		}
		switch cfg.Format {
		case "csv":
			table.RenderCSV(out)
		case "markdown":
			table.RenderMarkdown(out)
		default:
			table.Render(out)
		}
		reportf(cfg.Report, "%s: rendered in %s\n", name, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// ReportWarmStats writes the warm-start store's hit/miss line (plus the
// remote-cache line when a distributed artifact cache was attached) to
// the report sink. nil store or sink writes nothing.
func ReportWarmStats(w io.Writer, warm *WarmStore) {
	if warm == nil {
		return
	}
	s := warm.Stats()
	reportf(w, "warm-start store: %d hits (%d warm-up cycles skipped), %d misses (%d warm-up cycles run)\n",
		s.Hits, s.CyclesSkipped, s.Misses, s.CyclesRun)
	if s.RemoteHits > 0 || s.RemotePuts > 0 || s.RemotePutErrors > 0 {
		reportf(w, "remote artifact cache: %d fetched, %d pushed, %d push errors\n",
			s.RemoteHits, s.RemotePuts, s.RemotePutErrors)
	}
}

// reportf writes a progress line to the report sink, if any.
func reportf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// WriteRunReport renders the per-cell statistics: totals, effective
// parallelism, and the slowest cells with their timing (and allocation
// volume when it was attributable, i.e. jobs == 1).
func WriteRunReport(w io.Writer, m *Matrix, jobs int, warmWall, totalWall time.Duration) {
	if w == nil {
		return
	}
	stats := m.Stats()
	if len(stats) == 0 {
		return
	}
	var simTotal time.Duration
	var instrTotal uint64
	for _, s := range stats {
		simTotal += s.Duration
		instrTotal += s.Instructions
	}
	fmt.Fprintf(w, "run report: %d cells, %s simulated, %s wall (jobs=%d",
		len(stats), simTotal.Round(time.Millisecond), totalWall.Round(time.Millisecond), jobs)
	if totalWall > 0 {
		fmt.Fprintf(w, ", %.2fx effective", float64(simTotal)/float64(totalWall))
	}
	fmt.Fprintln(w, ")")
	if warmWall > 0 {
		fmt.Fprintf(w, "parallel warm phase: %s\n", warmWall.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "instructions simulated: %d\n", instrTotal)
	top := stats
	if len(top) > 10 {
		top = top[:10]
	}
	fmt.Fprintln(w, "slowest cells:")
	for _, s := range top {
		line := fmt.Sprintf("  %-48s %10s %12d instr", s.Key, s.Duration.Round(time.Millisecond), s.Instructions)
		if s.AllocBytes >= 0 {
			line += fmt.Sprintf(" %10.1f MB alloc", float64(s.AllocBytes)/(1<<20))
		}
		fmt.Fprintln(w, line)
	}
}
