package harness

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"bingo/internal/prefetch"
	"bingo/internal/system"
	"bingo/internal/workloads"
)

// CellKey names one cell of the experiment run matrix. Every simulation
// the suite performs — registry prefetchers, custom-config variants, and
// runs under modified system options — is identified by exactly one key,
// which is what makes singleflight deduplication and deterministic
// re-rendering possible.
type CellKey struct {
	// Workload is the Spec.Name of the workload.
	Workload string
	// Prefetcher is the registry name, or a bracketed variant label such
	// as "bingo[hist=2048]" for custom-config runs.
	Prefetcher string
	// Variant encodes a deviation from the matrix's base RunOptions
	// ("seed=3", "queue=16", ...); empty for the base options.
	Variant string
}

// String renders the key as workload/prefetcher[@variant].
func (k CellKey) String() string {
	if k.Variant == "" {
		return k.Workload + "/" + k.Prefetcher
	}
	return k.Workload + "/" + k.Prefetcher + "@" + k.Variant
}

// CellStat records one completed simulation for the run report.
type CellStat struct {
	Key CellKey
	// Duration is the wall-clock time of the simulation itself
	// (excluding any time spent waiting on another goroutine's
	// in-flight run of the same cell).
	Duration time.Duration
	// Instructions is the measured-window instruction total.
	Instructions uint64
	// AllocBytes is the heap allocated during the run. It is only
	// attributable when runs execute one at a time; under a parallel
	// engine it is recorded as -1 (unknown).
	AllocBytes int64
}

// cellState is one singleflight slot: the first caller to claim a key
// runs the simulation; later callers block on done and share the result.
type cellState struct {
	done chan struct{}
	res  system.Results
	aux  any
	err  error
}

// cellFunc performs one simulation, returning the results plus an
// optional instrumented payload (e.g. internal prefetcher counters).
type cellFunc func() (system.Results, any, error)

// run is the memoising singleflight core shared by every Matrix
// accessor. fn executes at most once per key for the lifetime of the
// Matrix; concurrent callers of the same key wait for the in-flight run
// instead of duplicating it.
func (m *Matrix) run(key CellKey, fn cellFunc) (system.Results, any, error) {
	m.mu.Lock()
	if cs, ok := m.cells[key]; ok {
		m.mu.Unlock()
		<-cs.done
		return cs.res, cs.aux, cs.err
	}
	cs := &cellState{done: make(chan struct{})}
	m.cells[key] = cs
	trackAllocs := m.trackAllocs
	m.mu.Unlock()

	var before runtime.MemStats
	if trackAllocs {
		runtime.ReadMemStats(&before)
	}
	//lint:ignore detlint wall clock times cell execution for the run report; no simulated state depends on it
	t0 := time.Now()
	cs.res, cs.aux, cs.err = fn()
	dur := time.Since(t0) //lint:ignore detlint same reporting-only timing as t0 above
	allocBytes := int64(-1)
	if trackAllocs {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		allocBytes = int64(after.TotalAlloc - before.TotalAlloc)
	}
	close(cs.done)

	m.mu.Lock()
	if cs.err == nil {
		m.stats = append(m.stats, CellStat{
			Key:          key,
			Duration:     dur,
			Instructions: cs.res.WindowInstructions,
			AllocBytes:   allocBytes,
		})
	} else {
		// Do not memoise failures: waiters already blocked on this call
		// see the error, but a later request for the key may retry.
		delete(m.cells, key)
	}
	m.mu.Unlock()
	return cs.res, cs.aux, cs.err
}

// RunCell memoises an arbitrary simulation under key. build constructs a
// fresh factory for this run (it must not return a shared instance that
// another concurrent cell could also be mutating); probe, if non-nil,
// extracts an instrumented payload from the finished system before it is
// discarded. opts are the options for this cell — key.Variant must be
// non-empty whenever opts differ from the Matrix's base options.
func (m *Matrix) RunCell(key CellKey, opts RunOptions, build func() (prefetch.Factory, error), probe func(*system.System) any) (system.Results, any, error) {
	w, ok := workloads.ByName(key.Workload)
	if !ok {
		return system.Results{}, nil, fmt.Errorf("harness: unknown workload %q", key.Workload)
	}
	return m.run(key, func() (system.Results, any, error) {
		// The collector (nil when telemetry export is off) attaches to the
		// system before any simulation: on the warm path that is before the
		// checkpoint restore, so artifacts saved with or without telemetry
		// both replay correctly (strict collector restore, or a resync onto
		// the measurement-start epoch grid).
		tel := m.newCellCollector(key)
		var prep func(*system.System)
		if tel != nil {
			prep = func(sys *system.System) { sys.EnableTelemetry(tel) }
		}
		var sys *system.System
		var res system.Results
		var err error
		if ws := m.warmStore(); ws != nil {
			sys, res, err = ws.RunWithSystem(w, key, opts, build, prep)
		} else {
			var factory prefetch.Factory
			if build != nil {
				factory, err = build()
				if err != nil {
					m.recordCellOutcome(system.Results{}, err)
					return system.Results{}, nil, err
				}
			}
			sys, err = BuildSystem(w, factory, opts)
			if err == nil {
				if prep != nil {
					prep(sys)
				}
				res = sys.Run()
			}
		}
		m.recordCellOutcome(res, err)
		if err != nil {
			return system.Results{}, nil, err
		}
		if err := m.exportCellTelemetry(key, tel); err != nil {
			return system.Results{}, nil, err
		}
		var aux any
		if probe != nil {
			aux = probe(sys)
		}
		return res, aux, nil
	})
}

// Inject memoises externally computed results for key — a sweep
// worker's, delivered over the wire — so renderers see a cache hit
// instead of re-simulating. The injected cell is indistinguishable from
// a locally run one: simulations are a pure function of (key, options),
// so a worker's results are byte-for-byte what a local run would have
// produced. Returns false (and leaves the matrix unchanged) when the
// cell already exists; the first result wins, mirroring the
// singleflight rule for local runs. dur is the worker-reported
// simulation time, recorded in the run report's per-cell stats.
func (m *Matrix) Inject(key CellKey, res system.Results, aux any, dur time.Duration) bool {
	cs := &cellState{done: make(chan struct{}), res: res, aux: aux}
	close(cs.done)
	m.mu.Lock()
	if _, ok := m.cells[key]; ok {
		m.mu.Unlock()
		return false
	}
	m.cells[key] = cs
	m.stats = append(m.stats, CellStat{
		Key:          key,
		Duration:     dur,
		Instructions: res.WindowInstructions,
		AllocBytes:   -1,
	})
	m.mu.Unlock()
	m.recordCellOutcome(res, nil)
	return true
}

// SetWarmStore routes every subsequent cell run through ws: warm-up
// phases are restored from (or saved to) the store's artifact directory
// instead of re-simulating. Results are unchanged — artifacts are keyed
// per cell and options, and the checkpoint captures complete state.
func (m *Matrix) SetWarmStore(ws *WarmStore) {
	m.mu.Lock()
	m.warm = ws
	m.mu.Unlock()
}

// warmStore returns the configured warm store, if any.
func (m *Matrix) warmStore() *WarmStore {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.warm
}

// Stats returns a copy of the per-cell run statistics collected so far,
// sorted by descending duration (the report's reading order).
func (m *Matrix) Stats() []CellStat {
	m.mu.Lock()
	out := make([]CellStat, len(m.stats))
	copy(out, m.stats)
	m.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

// Runs returns how many distinct cells have been simulated.
func (m *Matrix) Runs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.stats)
}

// SetAllocTracking enables per-cell allocation accounting (reading
// runtime.MemStats around each run). Only meaningful when cells execute
// one at a time; the engine enables it for -j 1 and disables it
// otherwise, since concurrent runs would attribute each other's heap
// traffic.
func (m *Matrix) SetAllocTracking(on bool) {
	m.mu.Lock()
	m.trackAllocs = on
	m.mu.Unlock()
}
