package harness

import (
	"fmt"
	"testing"

	"bingo/internal/prefetch"
	"bingo/internal/san"
	"bingo/internal/system"
	"bingo/internal/workloads"
)

// The frontend-differential oracle. The parallel frontend
// (system.FrontendParallel) fans the per-core ticks out to worker
// goroutines and drains their staged LLC/translator operations in core
// order at the barrier; it claims — like the event engine before it —
// to be a pure wall-clock optimisation. These tests run each cell
// serial and parallel and require byte-identical Results across
// {lockstep, event} × {1, 4, 8, 16} cores, with the sanitizer enabled
// when compiled so the simsan invariants hold on the parallel loop too.
// The whole file doubles as the race detector's workload: `go test
// -race ./internal/harness/ -run Frontend` drives every rendezvous path
// (CI runs exactly that at GOMAXPROCS>1).

// frontendOracleBudgets shrinks budgets as the core count grows: the
// differential is per-cycle exhaustive, so small windows at 16 cores
// prove as much about ordering as big ones at 4.
func frontendOracleBudgets(opts RunOptions, cores int) RunOptions {
	opts.System = opts.System.WithCores(cores)
	if cores > 4 {
		opts.System = opts.System.Scaled(2_000, 20_000)
	}
	return opts
}

// runBothFrontends runs one cell serial and parallel (same engine) and
// returns both results.
func runBothFrontends(t *testing.T, w workloads.Spec, prefetcher string, opts RunOptions) (serial, parallel system.Results) {
	t.Helper()
	factory, err := FactoryByName(prefetcher)
	if err != nil {
		t.Fatalf("resolving %q: %v", prefetcher, err)
	}
	opts.Frontend = system.FrontendSerial
	serial, err = Run(w, factory, opts)
	if err != nil {
		t.Fatalf("serial run %s/%s: %v", w.Name, prefetcher, err)
	}
	factory, err = FactoryByName(prefetcher) // fresh factory: instances are per-system
	if err != nil {
		t.Fatalf("resolving %q: %v", prefetcher, err)
	}
	opts.Frontend = system.FrontendParallel
	parallel, err = Run(w, factory, opts)
	if err != nil {
		t.Fatalf("parallel run %s/%s: %v", w.Name, prefetcher, err)
	}
	return serial, parallel
}

// TestFrontendDifferentialMatrix is the tentpole oracle: both engines,
// core counts from the trivial 1 through the scaled 16, two structurally
// different workloads (em3d regular, Zeus pointer-chasing), baseline and
// Bingo.
func TestFrontendDifferentialMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("frontend differential matrix is slow")
	}
	defer san.SetEnabled(san.Compiled) // restore the build-flavor default
	san.SetEnabled(san.Compiled)
	for _, cores := range []int{1, 4, 8, 16} {
		for _, engine := range []system.Engine{system.EngineLockstep, system.EngineEvent} {
			opts := frontendOracleBudgets(oracleRunOptions(), cores)
			opts.Engine = engine
			for _, wname := range []string{"em3d", "Zeus"} {
				w, ok := workloads.ByName(wname)
				if !ok {
					t.Fatalf("workload %q not registered", wname)
				}
				for _, p := range []string{"none", "bingo"} {
					label := fmt.Sprintf("%s/%s cores=%d engine=%s", w.Name, p, cores, engine)
					serial, parallel := runBothFrontends(t, w, p, opts)
					requireIdentical(t, label, serial, parallel)
				}
			}
		}
	}
}

// TestFrontendDifferentialAttachL1 covers the riskiest ownership case:
// AttachL1 trains the prefetcher on the worker goroutines themselves
// (OnAccess, lifecycle counters, prefetch-queue reservations all run
// core-locally), so a single missed core-local contract would diverge
// or race here.
func TestFrontendDifferentialAttachL1(t *testing.T) {
	if testing.Short() {
		t.Skip("frontend differential is slow")
	}
	defer san.SetEnabled(san.Compiled)
	san.SetEnabled(san.Compiled)
	w, ok := workloads.ByName("em3d")
	if !ok {
		t.Fatal("workload em3d not registered")
	}
	opts := frontendOracleBudgets(oracleRunOptions(), 8)
	opts.System.PrefetchAt = system.AttachL1
	serial, parallel := runBothFrontends(t, w, "bingo", opts)
	requireIdentical(t, "em3d/bingo attach=L1 cores=8", serial, parallel)
}

// TestFrontendSharedFallsBackToSerial pins the safety valve: a shared-
// metadata factory at AttachL1 would race the single instance across
// workers, so such systems must run the serial loop — and still produce
// identical results, trivially.
func TestFrontendSharedFallsBackToSerial(t *testing.T) {
	defer san.SetEnabled(san.Compiled)
	san.SetEnabled(san.Compiled)
	w, ok := workloads.ByName("em3d")
	if !ok {
		t.Fatal("workload em3d not registered")
	}
	opts := DefaultRunOptions()
	opts.System = opts.System.Scaled(2_000, 10_000)
	opts.System.PrefetchAt = system.AttachL1
	serial, parallel := runBothFrontends(t, w, "bingo-shared", opts)
	requireIdentical(t, "em3d/bingo-shared attach=L1", serial, parallel)
}

// TestFrontendDifferentialWarmRestore proves the frontend stays out of
// checkpoint identity: a warm artifact populated by a serial run must
// restore under a parallel run (and vice versa) with identical results.
func TestFrontendDifferentialWarmRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-restore differential is slow")
	}
	w, ok := workloads.ByName("em3d")
	if !ok {
		t.Fatal("workload em3d not registered")
	}
	opts := DefaultRunOptions()
	opts.System = opts.System.WithCores(8).Scaled(2_000, 10_000)
	run := func(dir string, f system.Frontend) system.Results {
		ws, err := NewWarmStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Frontend = f
		key := CellKey{Workload: w.Name, Prefetcher: "bingo"}
		_, res, err := ws.RunWithSystem(w, key, o, func() (prefetch.Factory, error) {
			return FactoryByName("bingo")
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dir := t.TempDir()
	serial := run(dir, system.FrontendSerial)     // populates the artifact
	parallel := run(dir, system.FrontendParallel) // must restore the same artifact
	requireIdentical(t, "em3d/bingo warm serial→parallel", serial, parallel)
}
