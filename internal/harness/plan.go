package harness

import (
	"fmt"

	"bingo/internal/prefetch"
	"bingo/internal/workloads"
)

// This file enumerates, per experiment, every matrix cell the renderer
// will request, as PlannedCells for the parallel engine. Each planned
// cell's thunk calls the identical memoised Matrix accessor the renderer
// calls, so the enumeration can never produce a *different* simulation —
// at worst an out-of-date enumerator warms too few cells (they then run
// lazily, sequentially, at render time) or too many (wasted work), never
// wrong output. Because every cell executes through ExecuteCell, a
// planned cell is fully described by (Key, Opts) — the serializable unit
// the sweep coordinator hands to remote workers.

// planned builds the schedulable unit for one (key, options) cell.
func (m *Matrix) planned(key CellKey, opts RunOptions) PlannedCell {
	return PlannedCell{
		Key:  key,
		Opts: opts,
		run:  func() error { _, _, err := m.ExecuteCell(key, opts); return err },
	}
}

// getCell plans a registry (workload × prefetcher) run.
func getCell(m *Matrix, w workloads.Spec, pf string) PlannedCell {
	return m.planned(CellKey{Workload: w.Name, Prefetcher: pf}, m.opts)
}

// optsCell plans a run under modified options.
func optsCell(m *Matrix, w workloads.Spec, pf, variant string, o RunOptions) PlannedCell {
	return m.planned(CellKey{Workload: w.Name, Prefetcher: pf, Variant: variant}, o)
}

// baselineCells plans the no-prefetcher run of every workload.
func baselineCells(m *Matrix) []PlannedCell {
	var out []PlannedCell
	for _, w := range workloads.All() {
		out = append(out, getCell(m, w, "none"))
	}
	return out
}

// matrixCells plans baseline + the listed prefetchers for every workload.
func matrixCells(m *Matrix, pfs []string) []PlannedCell {
	out := baselineCells(m)
	for _, w := range workloads.All() {
		for _, pf := range pfs {
			out = append(out, getCell(m, w, pf))
		}
	}
	return out
}

// experimentCells enumerates the cells one experiment needs. Unknown
// names plan nothing (the renderer reports them).
func experimentCells(name string, m *Matrix) []PlannedCell {
	var out []PlannedCell
	switch name {
	case "table1":
		// Static: no simulation.
	case "table2":
		out = baselineCells(m)
	case "fig2":
		for _, kind := range prefetch.AllEvents() {
			for _, w := range workloads.All() {
				label := fmt.Sprintf("multievent1[event=%s]", kind)
				out = append(out, m.planned(CellKey{Workload: w.Name, Prefetcher: label}, m.opts))
			}
		}
	case "fig3":
		pfs := make([]string, 0, 5)
		for n := 1; n <= 5; n++ {
			pfs = append(pfs, fmt.Sprintf("multievent%d", n))
		}
		out = matrixCells(m, pfs)
	case "fig4":
		for _, w := range workloads.All() {
			out = append(out, m.planned(CellKey{Workload: w.Name, Prefetcher: "multievent2[probe]"}, m.opts))
		}
	case "fig6":
		out = baselineCells(m)
		for _, w := range workloads.All() {
			for _, size := range Fig6Sizes {
				label := fmt.Sprintf("bingo[hist=%d]", size)
				out = append(out, m.planned(CellKey{Workload: w.Name, Prefetcher: label}, m.opts))
			}
		}
	case "fig7", "fig8", "fig9", "timeliness":
		// timeliness reads the same cells as the Figure 7–9 matrix; the
		// lifecycle counters ride along in every cell's Results.
		out = matrixCells(m, PaperPrefetchers())
	case "fig10":
		out = matrixCells(m, fig10Variants)
	case "ablate-vote":
		out = baselineCells(m)
		for _, th := range voteThresholds {
			out = append(out, variantCells(m, voteCellLabel(th))...)
		}
		out = append(out, variantCells(m, "bingo[recent]")...)
	case "ablate-region":
		out = baselineCells(m)
		for _, size := range regionSizes {
			out = append(out, variantCells(m, regionCellLabel(size))...)
		}
	case "ablate-sharing":
		out = matrixCells(m, []string{"bingo", "bingo-shared"})
	case "ablate-queue":
		for _, depth := range queueDepths {
			o, variant := queueOpts(m.Options(), depth)
			for _, w := range workloads.All() {
				out = append(out, optsCell(m, w, "none", variant, o))
				out = append(out, optsCell(m, w, "bingo", variant, o))
			}
		}
	case "ablate-bandwidth":
		for _, scale := range bandwidthScales {
			o, variant := bandwidthOpts(m.Options(), scale.mult)
			for _, w := range workloads.All() {
				out = append(out, optsCell(m, w, "none", variant, o))
				for _, pf := range bandwidthPrefetchers {
					out = append(out, optsCell(m, w, pf, variant, o))
				}
			}
		}
	case "ablate-level":
		for _, level := range attachLevels {
			o, variant := levelOpts(m.Options(), level)
			for _, w := range workloads.All() {
				out = append(out, optsCell(m, w, "none", variant, o))
				out = append(out, optsCell(m, w, "bingo", variant, o))
			}
		}
	case "ablate-tags":
		out = matrixCells(m, []string{"bingo"})
		for _, bits := range tagWidths {
			out = append(out, variantCells(m, tagCellLabel(bits))...)
		}
	case "scale-cores":
		specs, err := scaleWorkloads()
		if err != nil {
			break // BuildExperiment will surface the resolution error
		}
		for _, n := range scaleCoreCounts {
			o, variant := coresOpts(m.Options(), n)
			for _, w := range specs {
				out = append(out, optsCell(m, w, "none", variant, o))
				out = append(out, optsCell(m, w, "bingo", variant, o))
			}
		}
	case "extras":
		out = matrixCells(m, extrasPrefetchers)
	case "seeds":
		for _, seed := range defaultSeeds() {
			o, variant := seedOpts(m.Options(), seed)
			for _, w := range workloads.All() {
				out = append(out, optsCell(m, w, "none", variant, o))
				out = append(out, optsCell(m, w, "bingo", variant, o))
			}
		}
	}
	return out
}

// variantCells plans a labelled custom-config variant on every workload;
// the label itself encodes the configuration (see CellRunner).
func variantCells(m *Matrix, label string) []PlannedCell {
	var out []PlannedCell
	for _, w := range workloads.All() {
		out = append(out, m.planned(CellKey{Workload: w.Name, Prefetcher: label}, m.opts))
	}
	return out
}

// PlanExperiments enumerates (in canonical experiment order, deduplicated
// by key) every cell the named experiments will request.
func PlanExperiments(names []string, m *Matrix) []PlannedCell {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []PlannedCell
	for _, exp := range ExperimentOrder() {
		if want[exp] {
			out = append(out, experimentCells(exp, m)...)
		}
	}
	return dedupeCells(out)
}
