package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"bingo/internal/prefetch"
	"bingo/internal/system"
	"bingo/internal/workloads"
)

// WarmStats summarises a WarmStore's effect on one suite run.
type WarmStats struct {
	// Hits counts cells restored from an existing warm-start artifact;
	// Misses counts cells that had to execute their own warm-up (and
	// saved an artifact for the next run).
	Hits   uint64
	Misses uint64
	// CyclesSkipped is the simulated warm-up cycles the hits avoided;
	// CyclesRun is the warm-up cycles the misses actually executed.
	CyclesSkipped uint64
	CyclesRun     uint64
	// RemoteHits counts artifacts fetched from the remote cache; a
	// fetch that passes checkpoint validation becomes a local hit, a
	// corrupt fetch is rejected and regenerated cold. RemotePuts counts
	// artifacts pushed after local population; RemotePutErrors counts
	// failed pushes (best-effort — a failed push never fails the run).
	RemoteHits      uint64
	RemotePuts      uint64
	RemotePutErrors uint64
}

// RemoteArtifacts is a remote warm-artifact cache — in a distributed
// sweep, the coordinator's artifact endpoint. Artifacts are addressed by
// the same sha256 content key the local store uses for file names, so a
// fetched artifact drops directly into the local directory.
//
// Implementations must be safe for concurrent use. Fetch and store are
// both best-effort from the store's perspective: a fetch miss or error
// degrades to a local cold run, and a store error is only counted.
type RemoteArtifacts interface {
	// FetchArtifact returns the artifact bytes for hash, or (nil, nil)
	// when the remote does not have it.
	FetchArtifact(hash string) ([]byte, error)
	// StoreArtifact uploads the artifact bytes under hash.
	StoreArtifact(hash string, data []byte) error
}

// WarmStore caches end-of-warm-up checkpoints on disk so repeated
// experiment runs skip the warm-up phase. Artifacts are keyed by the
// cell key and the complete run options: warm-up trains prefetcher
// state, so a warm artifact is only reusable by the *identical* cell —
// same workload, same prefetcher, same configuration, same seeds.
// Sharing across prefetchers would leak one prefetcher's training into
// another's run and silently change results.
//
// Writes are atomic (temp file + rename), so concurrent processes
// sharing a directory either see a complete artifact or none. A corrupt
// or stale artifact fails checkpoint validation on load; the store then
// removes it and regenerates from scratch, so a damaged cache directory
// degrades to cold-start behaviour instead of wrong results.
type WarmStore struct {
	dir string

	mu       sync.Mutex
	inflight map[string]*warmCall
	stats    WarmStats
	remote   RemoteArtifacts
}

// warmCall is one in-flight artifact population; waiters block on done
// and then load the file the populator wrote.
type warmCall struct {
	done chan struct{}
	err  error
}

// NewWarmStore opens (creating if needed) a warm-start artifact
// directory.
func NewWarmStore(dir string) (*WarmStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: warm store: %w", err)
	}
	return &WarmStore{dir: dir, inflight: make(map[string]*warmCall)}, nil
}

// Dir returns the artifact directory.
func (ws *WarmStore) Dir() string { return ws.dir }

// Stats returns a snapshot of the hit/miss accounting.
func (ws *WarmStore) Stats() WarmStats {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.stats
}

// SetRemote attaches a remote artifact cache: local misses first try a
// remote fetch (a validated fetch becomes a local hit), and locally
// populated artifacts are pushed back best-effort. A nil remote detaches.
func (ws *WarmStore) SetRemote(r RemoteArtifacts) {
	ws.mu.Lock()
	ws.remote = r
	ws.mu.Unlock()
}

// remoteCache returns the attached remote cache, if any.
func (ws *WarmStore) remoteCache() RemoteArtifacts {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.remote
}

// artifactKey extracts the sha256 content key from an artifact path.
func artifactKey(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".ckpt")
}

// artifactPath derives the on-disk name for one cell's warm state. The
// full option struct is hashed in so that any configuration change —
// budgets, cache geometry, seeds — keys a different artifact. The engine
// is zeroed first: both engines simulate the identical machine (the
// differential oracles prove byte-identical results), so an artifact
// populated under one engine restores under the other — re-warming per
// engine would only waste work.
func (ws *WarmStore) artifactPath(key CellKey, opts RunOptions) string {
	opts.Engine = system.EngineLockstep
	opts.Frontend = system.FrontendSerial // same reasoning: frontends are byte-identical
	sum := sha256.Sum256([]byte(key.String() + "|" + fmt.Sprintf("%+v", opts)))
	return filepath.Join(ws.dir, hex.EncodeToString(sum[:])+".ckpt")
}

// RunWithSystem runs the cell's simulation with warm-start reuse: on an
// artifact hit the warm-up phase is restored from disk, on a miss the
// warm-up executes and its end state is saved for the next run. Either
// way the measured results are byte-identical to a cold run — the
// checkpoint captures the complete simulation state, and warm-up is
// per-cell so no state crosses cells. build constructs a fresh
// prefetcher factory (nil factory for the baseline); it is invoked once
// per system built here, never shared across systems, because factories
// may close over per-instance state (SharedFactory does).
//
// prep, if non-nil, attaches observers (a telemetry collector) to every
// system built here, immediately after construction — in particular
// before a checkpoint restore, so restored state can flow into the
// observer. Artifacts are keyed by cell and options only: a populating
// run with observers attached writes an artifact that a later
// observer-free run restores identically (and vice versa), because the
// checkpoint's telemetry section is ignored or resynced as needed.
func (ws *WarmStore) RunWithSystem(w workloads.Spec, key CellKey, opts RunOptions, build func() (prefetch.Factory, error), prep func(*system.System)) (*system.System, system.Results, error) {
	buildSys := func() (*system.System, error) {
		var factory prefetch.Factory
		if build != nil {
			var err error
			factory, err = build()
			if err != nil {
				return nil, err
			}
		}
		sys, err := BuildSystem(w, factory, opts)
		if err == nil && prep != nil {
			prep(sys)
		}
		return sys, err
	}

	path := ws.artifactPath(key, opts)
	sys, hit, err := ws.acquire(path, buildSys)
	if err != nil {
		return nil, system.Results{}, err
	}
	ws.mu.Lock()
	if hit {
		ws.stats.Hits++
		ws.stats.CyclesSkipped += sys.Clock()
	} else {
		ws.stats.Misses++
		ws.stats.CyclesRun += sys.Clock()
	}
	ws.mu.Unlock()

	return sys, sys.Run(), nil
}

// acquire returns a system positioned at the measurement boundary:
// restored from the artifact when present (hit), or warmed up here with
// the artifact saved for next time (miss). Population is singleflighted
// per artifact so concurrent cells sharing a store don't duplicate the
// same warm-up.
func (ws *WarmStore) acquire(path string, buildSys func() (*system.System, error)) (*system.System, bool, error) {
	for {
		ws.mu.Lock()
		if call, ok := ws.inflight[path]; ok {
			ws.mu.Unlock()
			<-call.done
			if call.err != nil {
				return nil, false, call.err
			}
			// The populator wrote the artifact; load it.
			if sys, err := ws.tryLoad(path, buildSys); err == nil && sys != nil {
				return sys, true, nil
			} else if err != nil {
				return nil, false, err
			}
			continue // artifact vanished: race with cleanup, repopulate
		}
		ws.mu.Unlock()

		// Fast path: artifact already on disk.
		sys, err := ws.tryLoad(path, buildSys)
		if err != nil {
			return nil, false, err
		}
		if sys != nil {
			return sys, true, nil
		}

		// Populate. Re-check inflight under the lock to keep singleflight.
		ws.mu.Lock()
		if _, ok := ws.inflight[path]; ok {
			ws.mu.Unlock()
			continue
		}
		call := &warmCall{done: make(chan struct{})}
		ws.inflight[path] = call
		ws.mu.Unlock()

		sys, err = ws.populate(path, buildSys)
		call.err = err
		close(call.done)
		ws.mu.Lock()
		delete(ws.inflight, path)
		ws.mu.Unlock()
		return sys, false, err
	}
}

// tryLoad restores the artifact into a freshly built system. It returns
// (nil, nil) when no artifact exists locally or remotely. A local miss
// first consults the attached remote cache, if any: fetched bytes are
// written atomically into the local directory and then loaded through
// the exact same validation path as a locally produced artifact, so a
// corrupt remote artifact is rejected (removed, regenerated cold), never
// trusted. Any corrupt artifact is removed and reported as absent — the
// caller regenerates it.
func (ws *WarmStore) tryLoad(path string, buildSys func() (*system.System, error)) (*system.System, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		if !ws.fetchRemote(path) {
			return nil, nil
		}
		f, err = os.Open(path)
		if os.IsNotExist(err) {
			return nil, nil
		}
	}
	if err != nil {
		return nil, fmt.Errorf("harness: warm store: %w", err)
	}
	sys, err := buildSys()
	if err != nil {
		_ = f.Close() // best-effort: the build error wins
		return nil, err
	}
	loadErr := sys.LoadCheckpoint(f)
	closeErr := f.Close()
	if loadErr == nil && closeErr != nil {
		loadErr = closeErr
	}
	if loadErr != nil {
		// A failed load leaves the system in an undefined state: discard
		// it and the artifact both. The caller rebuilds from scratch.
		_ = os.Remove(path) // best-effort: an unremovable artifact just fails again next run
		return nil, nil
	}
	return sys, nil
}

// fetchRemote tries to satisfy a local artifact miss from the remote
// cache, writing the fetched bytes atomically into the local directory.
// Returns true when a local file now exists for the caller to load (and
// validate). Fetch misses and errors both degrade to a cold run.
func (ws *WarmStore) fetchRemote(path string) bool {
	remote := ws.remoteCache()
	if remote == nil {
		return false
	}
	data, err := remote.FetchArtifact(artifactKey(path))
	if err != nil || data == nil {
		return false
	}
	tmp, err := os.CreateTemp(ws.dir, ".tmp-*")
	if err != nil {
		return false
	}
	_, writeErr := tmp.Write(data)
	closeErr := tmp.Close()
	if writeErr == nil {
		writeErr = closeErr
	}
	if writeErr == nil {
		writeErr = os.Rename(tmp.Name(), path)
	}
	if writeErr != nil {
		_ = os.Remove(tmp.Name()) // best-effort temp cleanup: fetch degrades to cold
		return false
	}
	ws.mu.Lock()
	ws.stats.RemoteHits++
	ws.mu.Unlock()
	return true
}

// populate executes the warm-up on a fresh system and saves its end
// state atomically. The warmed system itself is returned — the caller
// continues into measurement on it, so the populating run costs exactly
// one cold run.
func (ws *WarmStore) populate(path string, buildSys func() (*system.System, error)) (*system.System, error) {
	sys, err := buildSys()
	if err != nil {
		return nil, err
	}
	sys.RunWarmup()

	tmp, err := os.CreateTemp(ws.dir, ".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("harness: warm store: %w", err)
	}
	saveErr := sys.SaveCheckpoint(tmp)
	closeErr := tmp.Close()
	if saveErr == nil {
		saveErr = closeErr
	}
	if saveErr == nil {
		saveErr = os.Rename(tmp.Name(), path)
	}
	if saveErr != nil {
		_ = os.Remove(tmp.Name()) // best-effort temp cleanup: the save error wins
		return nil, fmt.Errorf("harness: warm store: saving %s: %w", filepath.Base(path), saveErr)
	}
	ws.pushRemote(path)
	return sys, nil
}

// pushRemote uploads a freshly populated artifact to the remote cache,
// best-effort: push failures are counted, never propagated — the local
// run already has its warmed system.
func (ws *WarmStore) pushRemote(path string) {
	remote := ws.remoteCache()
	if remote == nil {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	err = remote.StoreArtifact(artifactKey(path), data)
	ws.mu.Lock()
	if err != nil {
		ws.stats.RemotePutErrors++
	} else {
		ws.stats.RemotePuts++
	}
	ws.mu.Unlock()
}
