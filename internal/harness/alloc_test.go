package harness

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
	"bingo/internal/workloads"
)

// The per-access hot path — every prefetcher's OnAccess/OnEviction, the
// region tracker, and the footprint expansion — must not allocate in
// steady state: a simulation retires hundreds of millions of accesses,
// and a single heap allocation per access dominates the profile. The
// guards below pin 0 allocs/op for every registered prefetcher after a
// warm-up long enough for tables, trackers, and prediction buffers to
// reach their steady-state capacity. (Construction-time allocation and
// page-table growth in vm — proportional to pages touched, not accesses
// — are outside the guard.)

// allocWorkload builds a deterministic access stream with enough spatial
// structure that pattern prefetchers actually predict (exercising their
// prediction-buffer path, the part that used to allocate).
func allocWorkload(n int) []prefetch.AccessEvent {
	w, ok := workloads.ByName("em3d")
	if !ok {
		panic("em3d workload missing")
	}
	src := w.Sources(1, 1)[0]
	evs := make([]prefetch.AccessEvent, 0, n)
	for len(evs) < n {
		rec, ok := src.Next()
		if !ok {
			break
		}
		evs = append(evs, prefetch.AccessEvent{
			Addr: rec.Addr.BlockAlign(),
			PC:   rec.PC,
			Hit:  len(evs)%3 != 0,
		})
	}
	return evs
}

func TestPrefetcherHotPathZeroAlloc(t *testing.T) {
	evs := allocWorkload(60_000)
	for _, name := range PrefetcherNames() {
		if name == "none" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			factory, err := FactoryByName(name)
			if err != nil {
				t.Fatal(err)
			}
			pf := factory(0)
			i, j := 0, 0
			onAccess := func() {
				pf.OnAccess(evs[i%len(evs)])
				i++
			}
			onEvict := func() {
				pf.OnEviction(evs[j%len(evs)].Addr)
				j++
			}
			// Steady state: tables filled, buffers grown to capacity.
			for k := 0; k < len(evs); k++ {
				onAccess()
				if k%4 == 3 {
					onEvict()
				}
			}
			if got := testing.AllocsPerRun(10_000, onAccess); got != 0 {
				t.Errorf("%s.OnAccess allocates %.2f allocs/op in steady state, want 0", name, got)
			}
			if got := testing.AllocsPerRun(10_000, onEvict); got != 0 {
				t.Errorf("%s.OnEviction allocates %.2f allocs/op in steady state, want 0", name, got)
			}
		})
	}
}

// BenchmarkPrefetcherOnAccess reports ns/op and allocs/op for each
// registered prefetcher over the same structured stream the zero-alloc
// guard uses; run with -benchmem to see the allocation column the guard
// pins at zero.
func BenchmarkPrefetcherOnAccess(b *testing.B) {
	evs := allocWorkload(60_000)
	for _, name := range PrefetcherNames() {
		if name == "none" {
			continue
		}
		b.Run(name, func(b *testing.B) {
			factory, err := FactoryByName(name)
			if err != nil {
				b.Fatal(err)
			}
			pf := factory(0)
			for k := 0; k < len(evs); k++ {
				pf.OnAccess(evs[k])
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink []mem.Addr
			for i := 0; i < b.N; i++ {
				sink = pf.OnAccess(evs[i%len(evs)])
			}
			_ = sink
		})
	}
}
