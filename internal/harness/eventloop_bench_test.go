package harness

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"bingo/internal/benchenv"
	"bingo/internal/system"
	"bingo/internal/workloads"
)

// eventloopCell is one workload's lockstep-vs-event measurement in the
// BENCH_eventloop.json document.
type eventloopCell struct {
	Workload        string  `json:"workload"`
	Prefetcher      string  `json:"prefetcher"`
	LockstepSeconds float64 `json:"lockstep_seconds"`
	EventSeconds    float64 `json:"event_seconds"`
	Speedup         float64 `json:"speedup"`
	TotalCycles     uint64  `json:"total_cycles"`
	Advances        uint64  `json:"advances"`
	SkippedCycles   uint64  `json:"skipped_cycles"`
	SkippedPercent  float64 `json:"skipped_percent"`
}

// eventloopBench is the BENCH_eventloop.json document.
type eventloopBench struct {
	benchenv.Env
	Cells []eventloopCell `json:"cells"`
}

// timeEngine runs one (workload, prefetcher) cell under the given engine
// and returns the wall time, results, and engine accounting.
func timeEngine(t *testing.T, w workloads.Spec, prefetcher string, eng system.Engine, opts RunOptions) (time.Duration, system.Results, system.EngineStats) {
	t.Helper()
	factory, err := FactoryByName(prefetcher)
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = eng
	sys, err := BuildSystem(w, factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res := sys.Run()
	return time.Since(start), res, sys.EngineStats()
}

// TestEmitEventloopBench measures each workload family under both
// simulation engines at the full default budget, verifies the results
// are identical, and writes BENCH_eventloop.json to the path in the
// BENCH_EVENTLOOP_JSON environment variable. It is a generator, not a
// test: without the variable it skips. Run it via `make bench-eventloop`.
//
// Beyond recording numbers, it enforces the event engine's performance
// contract: at least one memory-bound workload family must run >= 2x
// faster under the event engine at unchanged results.
func TestEmitEventloopBench(t *testing.T) {
	path := os.Getenv("BENCH_EVENTLOOP_JSON")
	if path == "" {
		t.Skip("set BENCH_EVENTLOOP_JSON=<path> to emit the event-engine benchmark")
	}
	cells := []struct {
		workload   string
		prefetcher string
		// memBound marks the families whose cores spend most cycles
		// stalled on DRAM — the stretches the event engine skips.
		memBound bool
	}{
		{"em3d", "none", true},
		{"em3d", "bingo", true},
		{"DataServing", "none", true},
		{"Zeus", "none", true},
		{"SATSolver", "none", false},
		{"Mix1", "bingo", false},
	}
	doc := eventloopBench{Env: benchenv.Capture()}
	bestMemBound := 0.0
	for _, c := range cells {
		w, ok := workloads.ByName(c.workload)
		if !ok {
			t.Fatalf("unknown workload %q", c.workload)
		}
		opts := DefaultRunOptions()
		lockT, lockRes, _ := timeEngine(t, w, c.prefetcher, system.EngineLockstep, opts)
		evT, evRes, evStats := timeEngine(t, w, c.prefetcher, system.EngineEvent, opts)
		if !reflect.DeepEqual(lockRes, evRes) {
			t.Fatalf("%s/%s: engines disagree:\n lockstep: %+v\n event:    %+v", c.workload, c.prefetcher, lockRes, evRes)
		}
		cell := eventloopCell{
			Workload:        c.workload,
			Prefetcher:      c.prefetcher,
			LockstepSeconds: lockT.Seconds(),
			EventSeconds:    evT.Seconds(),
			Speedup:         lockT.Seconds() / evT.Seconds(),
			TotalCycles:     evRes.TotalCycles,
			Advances:        evStats.Advances,
			SkippedCycles:   evStats.SkippedCycles,
		}
		if total := evStats.Advances + evStats.SkippedCycles; total > 0 {
			cell.SkippedPercent = 100 * float64(evStats.SkippedCycles) / float64(total)
		}
		if c.memBound && cell.Speedup > bestMemBound {
			bestMemBound = cell.Speedup
		}
		doc.Cells = append(doc.Cells, cell)
		t.Logf("%s/%s: lockstep=%s event=%s (%.2fx, %.1f%% cycles skipped)",
			c.workload, c.prefetcher, lockT, evT, cell.Speedup, cell.SkippedPercent)
	}
	if bestMemBound < 2.0 {
		t.Errorf("best memory-bound speedup %.2fx, want >= 2x", bestMemBound)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (best memory-bound speedup %.2fx)", path, bestMemBound)
}
