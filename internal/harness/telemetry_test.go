package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bingo/internal/telemetry"
	"bingo/internal/workloads"
)

// telemetryTestEpoch keeps several epochs inside the tiny measured
// window the harness tests simulate.
const telemetryTestEpoch = 10_000

// readTelemetryDoc loads and decodes one exported cell document.
func readTelemetryDoc(t *testing.T, dir string, key CellKey) telemetry.Document {
	t.Helper()
	path := filepath.Join(dir, TelemetryFileBase(key)+".json")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading export for %s: %v", key, err)
	}
	var doc telemetry.Document
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("decoding export for %s: %v", key, err)
	}
	return doc
}

// TestMatrixTelemetryIsPureObserver is the harness-level differential
// oracle: enabling per-cell telemetry export must not change any cell's
// Results, and both export files must appear for every cell (including
// the lifecycle-free baseline).
func TestMatrixTelemetryIsPureObserver(t *testing.T) {
	w := checkpointOracleWorkload(t)
	opts := tinyOptions()

	plain := NewMatrix(opts)
	dir := t.TempDir()
	within := NewMatrix(opts)
	if err := within.SetTelemetry(dir, telemetryTestEpoch); err != nil {
		t.Fatal(err)
	}

	for _, pf := range []string{"none", "bingo"} {
		want, err := plain.Get(w, pf)
		if err != nil {
			t.Fatalf("%s without telemetry: %v", pf, err)
		}
		got, err := within.Get(w, pf)
		if err != nil {
			t.Fatalf("%s with telemetry: %v", pf, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: results differ with telemetry enabled", pf)
		}
		base := filepath.Join(dir, TelemetryFileBase(CellKey{Workload: w.Name, Prefetcher: pf}))
		for _, path := range []string{base + ".json", base + ".trace.json"} {
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: missing export %s: %v", pf, path, err)
			}
		}
	}
}

// TestTelemetryExportProperties is the property suite over a real
// exported document: every derived fraction lies in [0,1], the epochs
// tile the measurement window exactly, the epoch deltas sum to the
// end-of-run metric totals, and the lifecycle counters conserve and
// agree with the cell's Results.
func TestTelemetryExportProperties(t *testing.T) {
	w := checkpointOracleWorkload(t)
	m := NewMatrix(tinyOptions())
	dir := t.TempDir()
	if err := m.SetTelemetry(dir, telemetryTestEpoch); err != nil {
		t.Fatal(err)
	}
	res, err := m.Get(w, "bingo")
	if err != nil {
		t.Fatal(err)
	}
	key := CellKey{Workload: w.Name, Prefetcher: "bingo"}
	doc := readTelemetryDoc(t, dir, key)

	if len(doc.Epochs) < 2 {
		t.Fatalf("want >= 2 epochs in a %d-cycle-epoch run, got %d", telemetryTestEpoch, len(doc.Epochs))
	}
	inUnit := func(name string, v float64) {
		t.Helper()
		if v < 0 || v > 1 {
			t.Errorf("%s = %v, want within [0,1]", name, v)
		}
	}

	if doc.Epochs[0].StartCycle != doc.StartCycle {
		t.Errorf("first epoch starts at %d, document at %d", doc.Epochs[0].StartCycle, doc.StartCycle)
	}
	if last := doc.Epochs[len(doc.Epochs)-1]; last.EndCycle != doc.EndCycle {
		t.Errorf("last epoch ends at %d, document at %d", last.EndCycle, doc.EndCycle)
	}
	for i, e := range doc.Epochs {
		if i > 0 && e.StartCycle != doc.Epochs[i-1].EndCycle {
			t.Errorf("epoch %d starts at %d, previous ended at %d (gap or overlap)", i, e.StartCycle, doc.Epochs[i-1].EndCycle)
		}
		if e.EndCycle <= e.StartCycle {
			t.Errorf("epoch %d is empty or inverted: [%d, %d)", i, e.StartCycle, e.EndCycle)
		}
		inUnit("self_coverage", e.SelfCovVal)
		inUnit("accuracy", e.AccuracyVal)
		inUnit("row_hit_rate", e.RowHitVal)
		inUnit("late_prefetch_fraction", e.LateFracEst)
		if e.IPCVal < 0 {
			t.Errorf("epoch %d: negative IPC %v", i, e.IPCVal)
		}
	}

	var instr, accesses, misses, fills, reads, writes uint64
	for _, e := range doc.Epochs {
		instr += e.Instrs
		accesses += e.LLC.Accesses
		misses += e.LLC.Misses
		fills += e.LLC.PrefetchFills
		reads += e.DRAM.Reads
		writes += e.DRAM.Writes
	}
	metric := func(name string) uint64 {
		v, ok := doc.Metrics[name]
		if !ok {
			t.Errorf("metric %q missing from export", name)
		}
		return uint64(v)
	}
	sums := []struct {
		name string
		got  uint64
	}{
		{"sim.instructions", instr},
		{"llc.accesses", accesses},
		{"llc.misses", misses},
		{"llc.prefetch_fills", fills},
		{"dram.reads", reads},
		{"dram.writes", writes},
	}
	for _, s := range sums {
		if want := metric(s.name); s.got != want {
			t.Errorf("epoch sum of %s = %d, end-of-run total %d", s.name, s.got, want)
		}
	}

	lc := doc.Lifecycle
	if lc == nil {
		t.Fatal("bingo cell exported no lifecycle section")
	}
	if !lc.Conserves || !lc.Totals.Conserves() {
		t.Errorf("lifecycle counters do not conserve: %+v", lc.Totals)
	}
	if lc.Totals != res.Timeliness {
		t.Errorf("exported lifecycle totals %+v differ from Results.Timeliness %+v", lc.Totals, res.Timeliness)
	}
	var perCoreSum telemetry.LifecycleStats
	for _, c := range lc.PerCore {
		perCoreSum = perCoreSum.Add(c)
	}
	if perCoreSum != lc.Totals {
		t.Errorf("per-core lifecycle sum %+v differs from totals %+v", perCoreSum, lc.Totals)
	}
	inUnit("timely_fraction", lc.TimelyFraction)
	inUnit("late_fraction", lc.LateFraction)
	inUnit("unused_fraction", lc.UnusedFraction)
	if lc.Totals.Fills == 0 {
		t.Error("bingo issued no prefetch fills in the measured window; the property run is vacuous")
	}

	// The Chrome trace carries one IPC counter event per epoch and
	// declares the measurement span.
	tracePath := filepath.Join(dir, TelemetryFileBase(key)+".trace.json")
	traceBuf, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tdoc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBuf, &tdoc); err != nil {
		t.Fatalf("decoding Chrome trace: %v", err)
	}
	ipcEvents, spans := 0, 0
	for _, e := range tdoc.TraceEvents {
		if e.Name == "IPC" && e.Phase == "C" {
			ipcEvents++
		}
		if e.Name == "measurement" && e.Phase == "X" {
			spans++
		}
	}
	if ipcEvents != len(doc.Epochs) {
		t.Errorf("trace has %d IPC counter events, want one per epoch (%d)", ipcEvents, len(doc.Epochs))
	}
	if spans != 1 {
		t.Errorf("trace has %d measurement spans, want 1", spans)
	}
}

// TestTelemetryWarmStoreDifferential proves telemetry and warm-start
// reuse compose in both directions: an artifact populated without
// telemetry replays under an attached collector (resync path) with
// byte-identical exports to a cold telemetry run, and an artifact
// populated with telemetry replays into a telemetry-free run with
// identical Results.
func TestTelemetryWarmStoreDifferential(t *testing.T) {
	w := checkpointOracleWorkload(t)
	opts := tinyOptions()
	key := CellKey{Workload: w.Name, Prefetcher: "bingo"}

	// Reference: cold run with telemetry.
	coldDir := t.TempDir()
	cold := NewMatrix(opts)
	if err := cold.SetTelemetry(coldDir, telemetryTestEpoch); err != nil {
		t.Fatal(err)
	}
	wantRes, err := cold.Get(w, "bingo")
	if err != nil {
		t.Fatal(err)
	}

	// Populate the warm store with telemetry off...
	warmDir := t.TempDir()
	offWS, err := NewWarmStore(warmDir)
	if err != nil {
		t.Fatal(err)
	}
	off := NewMatrix(opts)
	off.SetWarmStore(offWS)
	offRes, err := off.Get(w, "bingo")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRes, offRes) {
		t.Error("warm-populating run differs from cold run")
	}

	// ...then reuse it with telemetry on: the collector attaches before
	// the restore and resyncs onto the measurement-start epoch grid.
	onWS, err := NewWarmStore(warmDir)
	if err != nil {
		t.Fatal(err)
	}
	onDir := t.TempDir()
	on := NewMatrix(opts)
	on.SetWarmStore(onWS)
	if err := on.SetTelemetry(onDir, telemetryTestEpoch); err != nil {
		t.Fatal(err)
	}
	onRes, err := on.Get(w, "bingo")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRes, onRes) {
		t.Error("warm-reusing telemetry run differs from cold run")
	}
	if s := onWS.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("warm reuse: got %d hits / %d misses, want 1 hit", s.Hits, s.Misses)
	}
	for _, suffix := range []string{".json", ".trace.json"} {
		coldBuf, err := os.ReadFile(filepath.Join(coldDir, TelemetryFileBase(key)+suffix))
		if err != nil {
			t.Fatal(err)
		}
		onBuf, err := os.ReadFile(filepath.Join(onDir, TelemetryFileBase(key)+suffix))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(coldBuf, onBuf) {
			t.Errorf("%s export differs between cold and warm-restored telemetry runs", suffix)
		}
	}

	// Reverse direction: populate with telemetry, reuse without. The
	// artifact's collector section is discarded on restore.
	warm2 := t.TempDir()
	popWS, err := NewWarmStore(warm2)
	if err != nil {
		t.Fatal(err)
	}
	pop := NewMatrix(opts)
	pop.SetWarmStore(popWS)
	if err := pop.SetTelemetry(t.TempDir(), telemetryTestEpoch); err != nil {
		t.Fatal(err)
	}
	popRes, err := pop.Get(w, "bingo")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRes, popRes) {
		t.Error("telemetry-populating warm run differs from cold run")
	}
	reuseWS, err := NewWarmStore(warm2)
	if err != nil {
		t.Fatal(err)
	}
	reuse := NewMatrix(opts)
	reuse.SetWarmStore(reuseWS)
	reuseRes, err := reuse.Get(w, "bingo")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRes, reuseRes) {
		t.Error("telemetry-free reuse of a telemetry-populated artifact differs from cold run")
	}
	if s := reuseWS.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("telemetry-free reuse: got %d hits / %d misses, want 1 hit", s.Hits, s.Misses)
	}
}

// TestTimelinessExperiment builds the timeliness table end to end —
// which doubles as the production-path conservation oracle, since the
// builder errors on any cell whose lifecycle counters fail to conserve.
func TestTimelinessExperiment(t *testing.T) {
	opts := tinyOptions()
	opts.System.WarmupInstr = 5_000
	opts.System.MeasureInstr = 10_000
	m := NewMatrix(opts)
	table, err := BuildExperiment("timeliness", m)
	if err != nil {
		t.Fatalf("timeliness: %v", err)
	}
	wantRows := len(workloads.All())*len(PaperPrefetchers()) + len(PaperPrefetchers())
	if len(table.Rows) != wantRows {
		t.Errorf("timeliness table has %d rows, want %d", len(table.Rows), wantRows)
	}
	var buf bytes.Buffer
	table.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Timely", "Late", "Unused", "Aggregate", "bingo"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered timeliness table lacks %q", want)
		}
	}
}

// TestTelemetryFileBase pins the sanitisation contract: names stay
// filesystem-safe and distinct keys can never collide.
func TestTelemetryFileBase(t *testing.T) {
	a := TelemetryFileBase(CellKey{Workload: "em3d", Prefetcher: "bingo[hist=2048]"})
	b := TelemetryFileBase(CellKey{Workload: "em3d", Prefetcher: "bingo[hist_2048]"})
	if a == b {
		t.Errorf("distinct keys sanitise to the same file base %q", a)
	}
	for _, base := range []string{a, b} {
		if strings.ContainsAny(base, "/[]=@ ") {
			t.Errorf("file base %q contains unsanitised bytes", base)
		}
	}
	c := TelemetryFileBase(CellKey{Workload: "em3d", Prefetcher: "bingo", Variant: "seed=3"})
	if !strings.HasPrefix(c, "em3d_bingo_seed_3-") {
		t.Errorf("file base %q does not embed the sanitised key", c)
	}
}
