package harness

import (
	"fmt"
	"math"

	"bingo/internal/workloads"
)

// SeedStats summarises a metric across several seeded runs.
type SeedStats struct {
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	N      int
}

// String renders as "mean ± stddev".
func (s SeedStats) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.StdDev, s.N)
}

func newSeedStats(samples []float64) SeedStats {
	st := SeedStats{N: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(samples) == 0 {
		return SeedStats{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
		st.Min = math.Min(st.Min, v)
		st.Max = math.Max(st.Max, v)
	}
	st.Mean = sum / float64(len(samples))
	var ss float64
	for _, v := range samples {
		d := v - st.Mean
		ss += d * d
	}
	if len(samples) > 1 {
		st.StdDev = math.Sqrt(ss / float64(len(samples)-1))
	}
	return st
}

// defaultSeeds is the seed sweep used when the caller passes none.
func defaultSeeds() []int64 { return []int64{1, 2, 3, 4, 5} }

// seedOpts returns the modified options and cell variant for one seed.
func seedOpts(base RunOptions, seed int64) (RunOptions, string) {
	o := base
	o.Seed = seed
	return o, fmt.Sprintf("seed=%d", seed)
}

// SpeedupOverSeeds runs a (workload, prefetcher) comparison under several
// workload seeds and returns the speedup distribution — the statistical
// robustness check behind the single-seed figures (the paper's SimFlex
// methodology reports 95% confidence over checkpoint samples; seeds play
// the role of checkpoints here).
func SpeedupOverSeeds(w workloads.Spec, prefetcher string, opts RunOptions, seeds []int64) (SeedStats, error) {
	if len(seeds) == 0 {
		seeds = defaultSeeds()
	}
	samples := make([]float64, 0, len(seeds))
	for _, seed := range seeds {
		o, _ := seedOpts(opts, seed)
		base, err := Run(w, nil, o)
		if err != nil {
			return SeedStats{}, err
		}
		res, err := RunNamed(w, prefetcher, o)
		if err != nil {
			return SeedStats{}, err
		}
		samples = append(samples, res.Throughput()/base.Throughput())
	}
	return newSeedStats(samples), nil
}

// seedSample returns the memoised speedup of prefetcher over the baseline
// on w under one seed.
func (m *Matrix) seedSample(w workloads.Spec, prefetcher string, seed int64) (float64, error) {
	o, variant := seedOpts(m.Options(), seed)
	base, err := m.GetOpts(w, "none", variant, o)
	if err != nil {
		return 0, err
	}
	res, err := m.GetOpts(w, prefetcher, variant, o)
	if err != nil {
		return 0, err
	}
	return res.Throughput() / base.Throughput(), nil
}

// SeedSweep renders the multi-seed robustness table for one prefetcher,
// memoising each seeded run in m.
func SeedSweep(m *Matrix, prefetcher string, seeds []int64) (Table, error) {
	if len(seeds) == 0 {
		seeds = defaultSeeds()
	}
	t := Table{
		Title:   fmt.Sprintf("Multi-Seed Robustness: %s speedup across workload seeds", prefetcher),
		Headers: []string{"Workload", "Speedup (mean ± stddev)", "Min", "Max"},
	}
	for _, w := range workloads.All() {
		samples := make([]float64, 0, len(seeds))
		for _, seed := range seeds {
			sp, err := m.seedSample(w, prefetcher, seed)
			if err != nil {
				return Table{}, err
			}
			samples = append(samples, sp)
		}
		st := newSeedStats(samples)
		t.AddRow(w.Name,
			fmt.Sprintf("%+.1f%% ± %.1f", (st.Mean-1)*100, st.StdDev*100),
			speedupPct(st.Min), speedupPct(st.Max))
	}
	t.AddNote("seeds play the role of the paper's SimFlex checkpoint samples")
	return t, nil
}
