package harness

import (
	"reflect"
	"testing"

	"bingo/internal/mem"
	"bingo/internal/san"
	"bingo/internal/system"
	"bingo/internal/workloads"
)

// The differential oracles of the runtime sanitizer work. A prefetcher is
// a pure timing optimisation: it may reorder *when* data arrives, never
// *which* demand accesses the program performs (Bingo HPCA 2019 §II). The
// oracle therefore captures each core's architectural access stream — the
// per-core sequence of demand ops at dispatch, in program order, before
// address translation — and requires it to be identical under every
// registered prefetcher. Virtual addresses are compared rather than
// physical ones deliberately: the first-touch translator assigns frames in
// global touch order across cores, so prefetcher-induced timing shifts
// legitimately change the physical mapping while the virtual stream must
// not move at all.

// demandRec is one observed architectural access.
type demandRec struct {
	pc    mem.PC
	va    mem.Addr
	store bool
	dep   bool
}

// oraclePrefix is how many records per core the oracles compare. Runs
// under different prefetchers finish at different cycles — and the
// workload generators are unbounded — so only a fixed-length prefix is
// meaningful; each run is long enough to guarantee the prefix fills.
const oraclePrefix = 4096

// oracleRunOptions shrinks the budgets so ~20 prefetchers stay cheap while
// still dispatching well past oraclePrefix demand ops per core.
func oracleRunOptions() RunOptions {
	o := DefaultRunOptions()
	o.System = o.System.Scaled(5_000, 150_000)
	return o
}

// captureStreams runs one (workload, prefetcher) cell with a demand tap on
// every core and returns the captured per-core prefixes.
func captureStreams(t *testing.T, w workloads.Spec, prefetcher string, opts RunOptions) [][]demandRec {
	t.Helper()
	factory, err := FactoryByName(prefetcher)
	if err != nil {
		t.Fatalf("resolving %q: %v", prefetcher, err)
	}
	sys, err := BuildSystem(w, factory, opts)
	if err != nil {
		t.Fatalf("building system for %s/%s: %v", w.Name, prefetcher, err)
	}
	cores := sys.Cores()
	streams := make([][]demandRec, len(cores))
	for i, c := range cores {
		i := i
		streams[i] = make([]demandRec, 0, oraclePrefix)
		c.SetDemandTap(func(pc mem.PC, va mem.Addr, store, dep bool) {
			if len(streams[i]) < oraclePrefix {
				streams[i] = append(streams[i], demandRec{pc: pc, va: va, store: store, dep: dep})
			}
		})
	}
	sys.Run()
	for i := range streams {
		if len(streams[i]) != oraclePrefix {
			t.Fatalf("%s/%s core %d dispatched only %d demand ops, need %d for the oracle prefix",
				w.Name, prefetcher, i, len(streams[i]), oraclePrefix)
		}
	}
	return streams
}

// diffStreams reports the first divergence between two captures, or -1.
func diffStreams(a, b [][]demandRec) (core, index int) {
	for c := range a {
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				return c, i
			}
		}
	}
	return -1, -1
}

// TestArchitecturalStreamInvariantAcrossPrefetchers checks every
// registered prefetcher against the no-prefetcher baseline on one
// workload: the per-core virtual demand streams must match record for
// record (PC, address, kind, and dependence flag).
func TestArchitecturalStreamInvariantAcrossPrefetchers(t *testing.T) {
	w, ok := workloads.ByName("DataServing")
	if !ok {
		t.Fatal("workload DataServing not registered")
	}
	opts := oracleRunOptions()
	baseline := captureStreams(t, w, "none", opts)
	for _, name := range PrefetcherNames() {
		if name == "none" {
			continue
		}
		got := captureStreams(t, w, name, opts)
		if c, i := diffStreams(baseline, got); c >= 0 {
			t.Errorf("%s perturbed the architectural stream: core %d record %d = %+v, baseline %+v",
				name, c, i, got[c][i], baseline[c][i])
		}
	}
}

// TestArchitecturalStreamInvariantSecondWorkload repeats the oracle on a
// second, dependence-heavy workload for the paper's head-to-head set, so
// the invariance result is not an artifact of one access pattern.
func TestArchitecturalStreamInvariantSecondWorkload(t *testing.T) {
	w, ok := workloads.ByName("em3d")
	if !ok {
		t.Fatal("workload em3d not registered")
	}
	opts := oracleRunOptions()
	baseline := captureStreams(t, w, "none", opts)
	for _, name := range PaperPrefetchers() {
		got := captureStreams(t, w, name, opts)
		if c, i := diffStreams(baseline, got); c >= 0 {
			t.Errorf("%s perturbed the architectural stream: core %d record %d = %+v, baseline %+v",
				name, c, i, got[c][i], baseline[c][i])
		}
	}
}

// TestSanitizedRunMatchesUnsanitized is the second oracle: the sanitizer
// observes, it must never steer. The same cell simulated with checking on
// and off has to produce deeply equal results. In default builds both runs
// are unsanitized and the test degenerates to a back-to-back determinism
// check, which is worth having on its own.
func TestSanitizedRunMatchesUnsanitized(t *testing.T) {
	defer san.SetEnabled(san.Compiled) // restore the build-flavor default
	w, ok := workloads.ByName("Streaming")
	if !ok {
		t.Fatal("workload Streaming not registered")
	}
	opts := oracleRunOptions()

	run := func(enabled bool) system.Results {
		san.SetEnabled(enabled)
		res, err := RunNamed(w, "bingo", opts)
		if err != nil {
			t.Fatalf("running %s/bingo: %v", w.Name, err)
		}
		return res
	}
	on := run(true)
	off := run(false)
	if !reflect.DeepEqual(on, off) {
		t.Errorf("sanitized results diverge from unsanitized:\n  on:  %+v\n  off: %+v", on, off)
	}
}
