package harness

import (
	"fmt"
	"math"

	"bingo/internal/system"
	"bingo/internal/workloads"
)

// tagWidths is the partial-tag ablation sweep.
var tagWidths = []int{23, 16, 12}

func tagCellLabel(bits int) string { return fmt.Sprintf("bingo[tags=%d]", bits) }

// Extra sensitivity studies beyond the paper's figures, each anchored to a
// design discussion in the text: the bandwidth wall (§I motivates accuracy
// because "designs hit the bandwidth wall first"), the prefetch-queue
// depth that throttles over-eager prefetchers, and the private-vs-shared
// metadata choice (§V-B).

// bandwidthScales is the DRAM bandwidth sweep (BusCycles multipliers).
var bandwidthScales = []struct {
	label string
	mult  uint64
}{
	{"2x (75 GB/s)", 7},
	{"1x (37.5 GB/s)", 14},
	{"1/2x (18.8 GB/s)", 28},
	{"1/4x (9.4 GB/s)", 56},
}

// bandwidthPrefetchers are the prefetchers the bandwidth sweep compares.
var bandwidthPrefetchers = []string{"bingo", "sms", "vldp-aggr"}

// bandwidthOpts returns the modified options and cell variant for one
// bandwidth point.
func bandwidthOpts(base RunOptions, mult uint64) (RunOptions, string) {
	o := base
	o.System.DRAM.BusCycles = mult
	return o, fmt.Sprintf("bus=%d", mult)
}

// AblateBandwidth reruns the headline comparison while scaling DRAM
// bandwidth, showing that accurate prefetching (Bingo) degrades gracefully
// while aggressive inaccurate prefetching collapses when bandwidth halves.
func AblateBandwidth(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Ablation: DRAM Bandwidth Sensitivity (GMean speedup)",
		Headers: []string{"Peak Bandwidth", "bingo", "sms", "vldp-aggr"},
	}
	for _, scale := range bandwidthScales {
		o, variant := bandwidthOpts(m.Options(), scale.mult)
		row := []string{scale.label}
		for _, pf := range bandwidthPrefetchers {
			var logsum float64
			for _, w := range workloads.All() {
				base, err := m.GetOpts(w, "none", variant, o)
				if err != nil {
					return Table{}, err
				}
				res, err := m.GetOpts(w, pf, variant, o)
				if err != nil {
					return Table{}, err
				}
				logsum += math.Log(res.Throughput() / base.Throughput())
			}
			row = append(row, speedupPct(math.Exp(logsum/float64(len(workloads.All())))))
		}
		t.AddRow(row...)
	}
	t.AddNote("bus cycles per 64B transfer scaled; baselines re-simulated per bandwidth point")
	return t, nil
}

// queueDepths is the prefetch-queue sweep.
var queueDepths = []int{8, 16, 32, 64, 128}

// queueOpts returns the modified options and cell variant for one queue
// depth.
func queueOpts(base RunOptions, depth int) (RunOptions, string) {
	o := base
	o.System.PrefetchQueue = depth
	return o, fmt.Sprintf("queue=%d", depth)
}

// AblateQueue sweeps the per-core prefetch queue depth, the throttle that
// bounds how much bandwidth a burst of spatial prefetches may claim.
func AblateQueue(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Ablation: Prefetch Queue Depth (Bingo)",
		Headers: []string{"Queue", "GMean Speedup", "Coverage", "Dropped/KI"},
	}
	for _, depth := range queueDepths {
		o, variant := queueOpts(m.Options(), depth)
		var logsum, covSum, dropSum float64
		for _, w := range workloads.All() {
			base, err := m.GetOpts(w, "none", variant, o)
			if err != nil {
				return Table{}, err
			}
			res, err := m.GetOpts(w, "bingo", variant, o)
			if err != nil {
				return Table{}, err
			}
			logsum += math.Log(res.Throughput() / base.Throughput())
			covSum += res.CoverageVsBaseline(base.LLC.Misses)
			dropSum += float64(res.PrefetchDropped) / float64(res.WindowInstructions) * 1000
		}
		n := float64(len(workloads.All()))
		t.AddRow(fmt.Sprintf("%d", depth),
			speedupPct(math.Exp(logsum/n)), pct(covSum/n), fmt.Sprintf("%.2f", dropSum/n))
	}
	return t, nil
}

// AblateSharing compares the paper's private per-core prefetchers against
// a single shared instance (a quarter of the metadata storage).
func AblateSharing(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Ablation: Private vs Shared Bingo Metadata",
		Headers: []string{"Organisation", "GMean Speedup", "Coverage", "Total storage"},
	}
	for _, v := range []struct{ label, name string }{
		{"private ×4 (paper)", "bingo"},
		{"shared ×1", "bingo-shared"},
	} {
		var logsum, covSum float64
		storage := 0
		instances := 4
		for _, w := range workloads.All() {
			base, err := m.Baseline(w)
			if err != nil {
				return Table{}, err
			}
			res, err := m.Get(w, v.name)
			if err != nil {
				return Table{}, err
			}
			logsum += math.Log(res.Throughput() / base.Throughput())
			covSum += res.CoverageVsBaseline(base.LLC.Misses)
			storage = res.StorageBytes
		}
		if v.name == "bingo-shared" {
			instances = 1
		}
		n := float64(len(workloads.All()))
		t.AddRow(v.label, speedupPct(math.Exp(logsum/n)), pct(covSum/n),
			fmt.Sprintf("%.0f KB", float64(storage*instances)/1024))
	}
	t.AddNote("shared organisation stores one history for all cores: 4x less storage, cross-core interference")
	return t, nil
}

// attachLevels is the attach-level sweep (the paper's LLC choice first).
var attachLevels = []system.AttachLevel{system.AttachLLC, system.AttachL1}

// levelOpts returns the modified options and cell variant for one attach
// level.
func levelOpts(base RunOptions, level system.AttachLevel) (RunOptions, string) {
	o := base
	o.System.PrefetchAt = level
	return o, "level=" + level.String()
}

// AblateLevel compares prefetching at the LLC (the paper's §V-B choice)
// against attaching the same prefetcher at each core's L1: the short L1
// residency truncates footprints before they are fully observed.
func AblateLevel(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Ablation: Prefetcher Attach Level (Bingo)",
		Headers: []string{"Attach", "GMean Speedup", "Coverage (LLC misses)"},
	}
	for _, level := range attachLevels {
		o, variant := levelOpts(m.Options(), level)
		var logsum, covSum float64
		for _, w := range workloads.All() {
			base, err := m.GetOpts(w, "none", variant, o)
			if err != nil {
				return Table{}, err
			}
			res, err := m.GetOpts(w, "bingo", variant, o)
			if err != nil {
				return Table{}, err
			}
			logsum += math.Log(res.Throughput() / base.Throughput())
			covSum += res.CoverageVsBaseline(base.LLC.Misses)
		}
		n := float64(len(workloads.All()))
		t.AddRow(level.String(), speedupPct(math.Exp(logsum/n)), pct(covSum/n))
	}
	t.AddNote("L1 attach observes/fills the 64 KB L1: residencies end quickly and footprints truncate (paper §V-B)")
	return t, nil
}

// AblateTags compares full-width simulation tags against the truncated
// partial tags a hardware table stores (≈23 bits for the paper's 119 KB
// budget): aliasing from folding should cost almost nothing, validating
// the storage accounting behind Figure 9.
func AblateTags(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Ablation: History Tag Width (Bingo)",
		Headers: []string{"Tags", "GMean Speedup", "Coverage", "Overprediction"},
	}
	full, err := ablationRow(m, "full-width", "")
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, full)
	for _, bits := range tagWidths {
		row, err := ablationRow(m, fmt.Sprintf("%d-bit", bits), tagCellLabel(bits))
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("folded partial tags admit aliasing; the paper's budget implies ~23-bit long tags")
	return t, nil
}

// extrasPrefetchers lists the beyond-the-paper reference prefetchers.
var extrasPrefetchers = []string{"nextline", "stride", "ghb", "fdp-sms", "fdp-vldp-aggr", "bingo-shared", "bingo"}

// Extras compares the reference prefetchers beyond the paper's six —
// GHB PC/DC, per-PC stride, next-line, the feedback-throttled variants,
// and shared-metadata Bingo — against Bingo on the same matrix.
func Extras(m *Matrix) (Table, error) {
	t := Table{
		Title:   "Beyond the Paper: Reference Prefetchers",
		Headers: []string{"Prefetcher", "GMean Speedup", "Coverage", "Overprediction", "Storage/core"},
	}
	for _, pf := range extrasPrefetchers {
		var logsum, covSum, overSum float64
		storage := 0
		for _, w := range workloads.All() {
			base, err := m.Baseline(w)
			if err != nil {
				return Table{}, err
			}
			res, err := m.Get(w, pf)
			if err != nil {
				return Table{}, err
			}
			logsum += math.Log(res.Throughput() / base.Throughput())
			covSum += res.CoverageVsBaseline(base.LLC.Misses)
			overSum += res.Overprediction(base.LLC.Misses)
			storage = res.StorageBytes
		}
		n := float64(len(workloads.All()))
		t.AddRow(pf, speedupPct(math.Exp(logsum/n)), pct(covSum/n), pct(overSum/n),
			fmt.Sprintf("%.1f KB", float64(storage)/1024))
	}
	return t, nil
}
