package harness

import (
	"testing"

	"bingo/internal/checkpoint"
)

// TestCheckpointSchemaGolden pins the checkpoint wire layout for a
// default-shaped (4-core) bingo system. Any change to this golden —
// reordered sections, a field added to a component's SaveState, a width
// change — alters the on-disk format and must be deliberate: bump the
// affected component's version constant (and, for container-level
// changes, checkpoint.FormatVersion), then update the expectation here.
// Old artifacts become unreadable, which is the intended fail-closed
// behaviour; warm stores simply regenerate.
func TestCheckpointSchemaGolden(t *testing.T) {
	if checkpoint.FormatVersion != 1 {
		t.Errorf("container FormatVersion = %d, golden pins 1; regenerate expectations deliberately", checkpoint.FormatVersion)
	}
	if checkpoint.Magic != "BINGOCKP" {
		t.Errorf("magic = %q, want BINGOCKP", checkpoint.Magic)
	}

	w := checkpointOracleWorkload(t)
	sys := buildFor(t, w, "bingo", tinyOptions())
	schema, err := sys.CheckpointSchema()
	if err != nil {
		t.Fatalf("CheckpointSchema: %v", err)
	}

	// Field strings are run-length-collapsed write-op tokens: "u64*6" is
	// six consecutive Writer.U64 calls, "u64s" one Writer.U64s slice,
	// "v1" a component version tag.
	cacheFields := "v1 u64*12 u64s bools*3 u64s i64s u8 u64 u64s"
	cpuFields := "v1 u64*5 i64*2 u64s bools u64s u64*2 u8 u32 bool*2 u32 bool u64*2"
	bingoFields := "v1 u8 v1 u64*6 v1 u64*3" + // section tag, pf kind, bingo stats, tracker stats
		" v1 u64 i64 bools u64s*5 i64s u64s" + // tracker filter table
		" v1 u64 i64 bools u64s*5 i64s u64s" + // tracker accumulation table
		" v1 u64*7 bools u64s*4 i64s" // unified history table
	// The system section (v2) freezes, per core: 6 CPU-stat columns, 12
	// L1-stat columns, and 8 prefetch-lifecycle columns (26 u64s), then
	// the prefetch queue lens + flat entries. The trailing telemetry
	// section is present in every checkpoint — enabled flag, collector
	// header, then 48 u64s columns (23 cumulative-Totals + 2 epoch-bound
	// + 23 series-Totals) and the registry's counter/gauge/histogram
	// name+value columns.
	telemetryFields := "v1 bool v1 u64 i64 bool*2 u64*3 u64s*48 str u64s str i64s str u64s*3"
	want := []checkpoint.SectionSchema{
		{ID: "meta", Fields: "v1 str*2 i64"},
		// v3: pfDropped widened from one shared u64 to a per-core u64s
		// column (parallel frontends count drops per core).
		{ID: "system", Fields: "v3 u64 u8 u64 u64s bools u64s*26 i64s u64s"},
		{ID: "vm", Fields: "v1 u64s*2 i64*2"},
		{ID: "dram", Fields: "v1 u64*6 u64s*3"},
		{ID: "llc", Fields: cacheFields},
		{ID: "l1[0]", Fields: cacheFields},
		{ID: "cpu[0]", Fields: cpuFields},
		{ID: "l1[1]", Fields: cacheFields},
		{ID: "cpu[1]", Fields: cpuFields},
		{ID: "l1[2]", Fields: cacheFields},
		{ID: "cpu[2]", Fields: cpuFields},
		{ID: "l1[3]", Fields: cacheFields},
		{ID: "cpu[3]", Fields: cpuFields},
		{ID: "pf[0]", Fields: bingoFields},
		{ID: "pf[1]", Fields: bingoFields},
		{ID: "pf[2]", Fields: bingoFields},
		{ID: "pf[3]", Fields: bingoFields},
		{ID: "telemetry", Fields: telemetryFields},
	}

	if len(schema) != len(want) {
		t.Fatalf("schema has %d sections, want %d:\n got %v", len(schema), len(want), sectionIDs(schema))
	}
	for i, s := range schema {
		if s.ID != want[i].ID {
			t.Errorf("section %d: ID = %q, want %q", i, s.ID, want[i].ID)
		}
		if s.Fields != want[i].Fields {
			t.Errorf("section %q: fields changed (format break!)\n got:  %s\n want: %s", s.ID, s.Fields, want[i].Fields)
		}
	}
}

func sectionIDs(schema []checkpoint.SectionSchema) []string {
	ids := make([]string, len(schema))
	for i, s := range schema {
		ids[i] = s.ID
	}
	return ids
}
