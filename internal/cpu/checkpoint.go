package cpu

import (
	"fmt"

	"bingo/internal/checkpoint"
	"bingo/internal/mem"
	"bingo/internal/trace"
)

// SaveState implements checkpoint.Checkpointable: counters, the ROB ring
// (struct-of-arrays over the full buffer so the schema is
// occupancy-independent), the LSQ, the in-dispatch record, and the trace
// cursor.
func (c *Core) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	s := c.stats
	w.U64(s.Instructions)
	w.U64(s.MemOps)
	w.U64(s.Loads)
	w.U64(s.Stores)
	w.U64(s.MemStall)

	w.Int(c.robHead)
	w.Int(c.robCount)
	completeAts := make([]uint64, len(c.rob))
	isMems := make([]bool, len(c.rob))
	for i, e := range c.rob {
		completeAts[i] = e.completeAt
		isMems[i] = e.isMem
	}
	w.U64s(completeAts)
	w.Bools(isMems)
	w.U64s(c.outstanding)

	w.U64(uint64(c.cur.PC))
	w.U64(uint64(c.cur.Addr))
	w.U8(uint8(c.cur.Kind))
	w.U32(c.cur.NonMem)
	w.Bool(c.cur.Dep)
	w.Bool(c.curValid)
	w.U32(c.nonMemLeft)
	w.Bool(c.exhausted)
	w.U64(c.lastLoadDone)
	w.U64(c.fetched)
	return w.Err()
}

// LoadState implements checkpoint.Checkpointable. It must be called on a
// freshly built core whose source replays the identical record stream:
// the source is repositioned by discarding the snapshot's consumed
// prefix, which is what makes mid-stream resume exact even for generator
// sources that were never materialised to disk.
func (c *Core) LoadState(r *checkpoint.Reader) error {
	if c.fetched != 0 || c.stats != (Stats{}) {
		return fmt.Errorf("cpu core %d: checkpoint restore requires a freshly built core", c.id)
	}
	r.Version(1)
	var s Stats
	s.Instructions = r.U64()
	s.MemOps = r.U64()
	s.Loads = r.U64()
	s.Stores = r.U64()
	s.MemStall = r.U64()

	robHead := r.Int()
	robCount := r.Int()
	completeAts := r.U64s()
	isMems := r.Bools()
	outstanding := r.U64s()

	var cur trace.Record
	cur.PC = mem.PC(r.U64())
	cur.Addr = mem.Addr(r.U64())
	kind := r.U8()
	cur.NonMem = r.U32()
	cur.Dep = r.Bool()
	curValid := r.Bool()
	nonMemLeft := r.U32()
	exhausted := r.Bool()
	lastLoadDone := r.U64()
	fetched := r.U64()
	if err := r.Err(); err != nil {
		return err
	}

	if robHead < 0 || robHead >= c.cfg.ROBSize || robCount < 0 || robCount > c.cfg.ROBSize {
		return fmt.Errorf("cpu core %d: snapshot ROB cursor %d/%d out of range for size %d", c.id, robHead, robCount, c.cfg.ROBSize)
	}
	if len(completeAts) != c.cfg.ROBSize || len(isMems) != c.cfg.ROBSize {
		return fmt.Errorf("cpu core %d: snapshot ROB holds %d entries, core has %d", c.id, len(completeAts), c.cfg.ROBSize)
	}
	if len(outstanding) > c.cfg.LSQSize {
		return fmt.Errorf("cpu core %d: snapshot LSQ holds %d ops, limit %d", c.id, len(outstanding), c.cfg.LSQSize)
	}
	if kind > uint8(trace.Store) {
		return fmt.Errorf("cpu core %d: snapshot record kind %d invalid", c.id, kind)
	}
	cur.Kind = trace.Kind(kind)

	// Fast-forward the fresh source past the consumed prefix.
	for i := uint64(0); i < fetched; i++ {
		if _, ok := c.src.Next(); !ok {
			return fmt.Errorf("cpu core %d: source ended after %d records, snapshot consumed %d (source mismatch)", c.id, i, fetched)
		}
	}

	for i := range c.rob {
		c.rob[i] = robEntry{completeAt: completeAts[i], isMem: isMems[i]}
	}
	c.robHead = robHead
	c.robCount = robCount
	c.outstanding = append(c.outstanding[:0], outstanding...)
	c.cur = cur
	c.curValid = curValid
	c.nonMemLeft = nonMemLeft
	c.exhausted = exhausted
	c.lastLoadDone = lastLoadDone
	c.fetched = fetched
	c.stats = s
	return nil
}
