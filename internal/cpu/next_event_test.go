package cpu

import (
	"math/rand"
	"testing"

	"bingo/internal/cache"
	"bingo/internal/mem"
	"bingo/internal/trace"
	"bingo/internal/vm"
)

// variedPort completes accesses after a deterministic but irregular
// latency, so ROB-head stalls, LSQ pressure, and dependence stalls all
// overlap in the reference runs below.
type variedPort struct{ n uint64 }

func (p *variedPort) Access(now uint64, req cache.Request) cache.Result {
	p.n++
	lat := 3 + (p.n*p.n*31)%211 // 3..213 cycles, irregular
	return cache.Result{CompleteAt: now + lat, HitLevel: "X"}
}

// randomRecords builds a trace mixing short non-memory bursts, loads,
// stores, and dependent (pointer-chase) loads.
func randomRecords(seed int64, n int) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, n)
	for i := range recs {
		r := trace.Record{
			PC:     mem.PC(rng.Intn(64) * 4),
			Addr:   mem.Addr(rng.Intn(1<<16) * 8),
			NonMem: uint32(rng.Intn(6)),
		}
		if rng.Intn(4) == 0 {
			r.Kind = trace.Store
		}
		if rng.Intn(3) == 0 {
			r.Dep = true
		}
		recs[i] = r
	}
	return recs
}

// progressSnapshot captures everything a Tick can change besides time
// and the MemStall sampling counter.
type progressSnapshot struct {
	instructions uint64
	fetched      uint64
	robCount     int
	nonMemLeft   uint32
	curValid     bool
	outstanding  int
}

func snap(c *Core) progressSnapshot {
	return progressSnapshot{
		instructions: c.stats.Instructions,
		fetched:      c.fetched,
		robCount:     c.robCount,
		nonMemLeft:   c.nonMemLeft,
		curValid:     c.curValid,
		outstanding:  len(c.outstanding),
	}
}

// TestNextEventAtIsExact drives a core cycle by cycle (the lockstep
// reference) and checks, at every cycle, that NextEventAt names exactly
// the next cycle at which the core retires or dispatches anything.
// Exactness matters in both directions: a late prediction would let the
// event engine skip real work (wrong simulation), an early one would
// only cost skipped cycles — but the analysis in NextEventAt claims to
// be exact, so the test pins equality, not just safety.
func TestNextEventAtIsExact(t *testing.T) {
	for _, cfg := range []Config{
		{Width: 4, ROBSize: 256, LSQSize: 64},
		{Width: 2, ROBSize: 16, LSQSize: 4}, // tiny windows: LSQ/ROB pressure
		{Width: 1, ROBSize: 4, LSQSize: 2},
	} {
		c, err := New(cfg, 0, trace.NewSliceSource(randomRecords(11, 3000)), vm.Identity{}, &variedPort{})
		if err != nil {
			t.Fatal(err)
		}

		// Lockstep reference: record the cycles at which progress happened
		// and the prediction made right after each tick.
		var progressCycles []uint64
		predictions := make(map[uint64]uint64)
		for cycle := uint64(0); !c.Done(); cycle++ {
			before := snap(c)
			c.Tick(cycle)
			if snap(c) != before {
				progressCycles = append(progressCycles, cycle)
			}
			if !c.Done() {
				predictions[cycle] = c.NextEventAt(cycle)
			}
			if cycle > 5_000_000 {
				t.Fatal("core did not drain")
			}
		}
		if len(progressCycles) == 0 {
			t.Fatal("reference run made no progress")
		}

		next := ^uint64(0) // next progress cycle strictly after the key
		idx := len(progressCycles) - 1
		for cycle := progressCycles[len(progressCycles)-1]; ; cycle-- {
			for idx >= 0 && progressCycles[idx] > cycle {
				idx--
			}
			if pred, ok := predictions[cycle]; ok {
				if pred != next {
					t.Fatalf("cfg %+v: NextEventAt(%d) = %d, but next progress cycle is %d", cfg, cycle, pred, next)
				}
			}
			// Entering cycle-1, cycle itself becomes a candidate "next".
			if idx >= 0 && progressCycles[idx] == cycle {
				next = cycle
			}
			if cycle == 0 {
				break
			}
		}
	}
}

// TestEventSteppedCoreMatchesLockstep runs the same core twice: once
// ticking every cycle, once ticking only at the cycles NextEventAt
// names, with CatchUp applied over each gap. Final statistics must be
// deeply equal — including MemStall, the one counter the skipped cycles
// would otherwise lose.
func TestEventSteppedCoreMatchesLockstep(t *testing.T) {
	for _, cfg := range []Config{
		{Width: 4, ROBSize: 256, LSQSize: 64},
		{Width: 2, ROBSize: 16, LSQSize: 4},
	} {
		build := func() *Core {
			c, err := New(cfg, 0, trace.NewSliceSource(randomRecords(23, 4000)), vm.Identity{}, &variedPort{})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}

		lock := build()
		var lockCycles uint64
		for cycle := uint64(0); !lock.Done(); cycle++ {
			lock.Tick(cycle)
			lockCycles = cycle
			if cycle > 5_000_000 {
				t.Fatal("lockstep core did not drain")
			}
		}

		ev := build()
		var cycle, ticks uint64
		for !ev.Done() {
			ev.Tick(cycle)
			ticks++
			if ev.Done() {
				break
			}
			next := ev.NextEventAt(cycle)
			if next == ^uint64(0) {
				t.Fatalf("cfg %+v: live core reported no next event at cycle %d", cfg, cycle)
			}
			if next <= cycle {
				t.Fatalf("cfg %+v: NextEventAt(%d) = %d, not strictly in the future", cfg, cycle, next)
			}
			ev.CatchUp(cycle, next)
			cycle = next
			if cycle > 5_000_000 {
				t.Fatal("event-stepped core did not drain")
			}
		}

		if cycle != lockCycles {
			t.Fatalf("cfg %+v: event-stepped core drained at cycle %d, lockstep at %d", cfg, cycle, lockCycles)
		}
		if ev.Stats() != lock.Stats() {
			t.Fatalf("cfg %+v: stats diverge:\n  event:    %+v\n  lockstep: %+v", cfg, ev.Stats(), lock.Stats())
		}
		if ticks > lockCycles {
			t.Fatalf("cfg %+v: event stepping took %d ticks over %d cycles — no skipping happened", cfg, ticks, lockCycles)
		}
	}
}

// TestIdleAtMatchesLockstepAtForeignLandings mirrors the system loop's
// selective-ticking discipline: in a multi-core run the clock lands on
// cycles *other* cores need, and a core whose own deadline is still in
// the future receives IdleAt there instead of a full Tick. The test
// drives one core with extra foreign landings injected between its own
// event cycles — IdleAt at the foreign cycles, Tick at its own — and
// requires the final statistics (MemStall included) to match a lockstep
// run exactly.
func TestIdleAtMatchesLockstepAtForeignLandings(t *testing.T) {
	for _, cfg := range []Config{
		{Width: 4, ROBSize: 256, LSQSize: 64},
		{Width: 2, ROBSize: 16, LSQSize: 4},
	} {
		build := func() *Core {
			c, err := New(cfg, 0, trace.NewSliceSource(randomRecords(31, 4000)), vm.Identity{}, &variedPort{})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}

		lock := build()
		for cycle := uint64(0); !lock.Done(); cycle++ {
			lock.Tick(cycle)
			if cycle > 5_000_000 {
				t.Fatal("lockstep core did not drain")
			}
		}

		ev := build()
		rng := rand.New(rand.NewSource(47))
		cycle, next := uint64(0), uint64(0) // due at entry
		var idles uint64
		for !ev.Done() {
			if next > cycle {
				// Foreign landing: some other core needed this cycle; this
				// one is frozen until `next`.
				ev.IdleAt(cycle)
				idles++
			} else {
				ev.Tick(cycle)
				if ev.Done() {
					break
				}
				next = ev.NextEventAt(cycle)
				if next <= cycle {
					t.Fatalf("cfg %+v: NextEventAt(%d) = %d, not strictly in the future", cfg, cycle, next)
				}
			}
			// Land either on this core's own deadline (after catching up the
			// gap) or on a random foreign cycle strictly inside it.
			target := next
			if gap := next - cycle; gap > 1 && rng.Intn(2) == 0 {
				target = cycle + 1 + uint64(rng.Intn(int(gap-1)))
			}
			ev.CatchUp(cycle, target)
			cycle = target
			if cycle > 5_000_000 {
				t.Fatal("event-stepped core did not drain")
			}
		}

		if idles == 0 {
			t.Fatal("no foreign landings exercised IdleAt")
		}
		if ev.Stats() != lock.Stats() {
			t.Fatalf("cfg %+v: stats diverge after %d IdleAt landings:\n  event:    %+v\n  lockstep: %+v",
				cfg, idles, ev.Stats(), lock.Stats())
		}
	}
}
