//go:build san

package cpu

import "bingo/internal/san"

// sanState is the per-core checker state of the runtime invariant
// sanitizer (build tag `san`).
type sanState struct {
	lastTick uint64 // most recent Tick cycle (SAN-CPU-TICK)
}

// sanAtTick verifies lockstep monotonicity and structural occupancy
// bounds at the top of every core tick.
func (c *Core) sanAtTick(now uint64) {
	if !san.Enabled() {
		return
	}
	if now < c.san.lastTick {
		san.Failf(c.sanName(), now, san.CPUTick,
			"tick at cycle %d after tick at cycle %d", now, c.san.lastTick)
	}
	c.san.lastTick = now
	if c.robCount < 0 || c.robCount > c.cfg.ROBSize {
		san.Failf(c.sanName(), now, san.CPUTick,
			"ROB occupancy %d outside [0,%d]", c.robCount, c.cfg.ROBSize)
	}
	if len(c.outstanding) > c.cfg.LSQSize {
		san.Failf(c.sanName(), now, san.CPUTick,
			"LSQ tracks %d in-flight memory ops, capacity %d", len(c.outstanding), c.cfg.LSQSize)
	}
	// Event conservation: MemOps counts retirements, Loads/Stores count
	// dispatches, and at most ROBSize dispatches can be in flight. The
	// slack also absorbs the warm-up ResetStats, which zeroes the dispatch
	// counters while up to a ROB's worth of pre-reset entries still retire.
	if s := c.stats; s.MemOps > s.Loads+s.Stores+uint64(c.cfg.ROBSize) {
		san.Failf(c.sanName(), now, san.CPURetire,
			"retired %d memory ops with only %d dispatched (+%d ROB slack)",
			s.MemOps, s.Loads+s.Stores, c.cfg.ROBSize)
	}
}

// sanAtRetire verifies an instruction only leaves the ROB once its
// completion cycle has passed (in-order retirement honors timing).
func (c *Core) sanAtRetire(now, completeAt uint64) {
	if !san.Enabled() {
		return
	}
	if completeAt > now {
		san.Failf(c.sanName(), now, san.CPURetire,
			"retiring instruction that completes at cycle %d > now %d", completeAt, now)
	}
}

// sanName labels violations with the core index. It allocates, but is
// called only on the failure path.
func (c *Core) sanName() string {
	const digits = "0123456789"
	if c.id >= 0 && c.id < 10 {
		return "cpu[" + digits[c.id:c.id+1] + "]"
	}
	return "cpu"
}
