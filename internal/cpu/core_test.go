package cpu

import (
	"testing"

	"bingo/internal/cache"
	"bingo/internal/mem"
	"bingo/internal/trace"
	"bingo/internal/vm"
)

// fixedPort completes every access after a fixed latency.
type fixedPort struct {
	latency  uint64
	accesses int
}

func (p *fixedPort) Access(now uint64, req cache.Request) cache.Result {
	p.accesses++
	return cache.Result{CompleteAt: now + p.latency, HitLevel: "X"}
}

func run(t *testing.T, cfg Config, recs []trace.Record, port cache.Level) (*Core, uint64) {
	t.Helper()
	c, err := New(cfg, 0, trace.NewSliceSource(recs), vm.Identity{}, port)
	if err != nil {
		t.Fatal(err)
	}
	var cycle uint64
	for !c.Done() {
		c.Tick(cycle)
		cycle++
		if cycle > 10_000_000 {
			t.Fatal("core did not drain")
		}
	}
	return c, cycle
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, ROBSize: 8, LSQSize: 4},
		{Width: 2, ROBSize: 0, LSQSize: 4},
		{Width: 2, ROBSize: 8, LSQSize: 0},
		{Width: 2, ROBSize: 8, LSQSize: 16}, // LSQ > ROB
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(DefaultConfig(), 0, nil, vm.Identity{}, &fixedPort{}); err == nil {
		t.Error("nil source should fail")
	}
}

func TestNonMemIPCBoundedByWidth(t *testing.T) {
	// 1000 records of 15 non-mem + 1 fast mem op = 16000 instructions.
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i] = trace.Record{PC: 1, Addr: mem.Addr(i * 64), NonMem: 15}
	}
	cfg := Config{Width: 4, ROBSize: 64, LSQSize: 16}
	c, cycles := run(t, cfg, recs, &fixedPort{latency: 1})
	if got := c.Stats().Instructions; got != 16000 {
		t.Fatalf("instructions = %d", got)
	}
	ipc := float64(16000) / float64(cycles)
	if ipc > 4.0 {
		t.Fatalf("IPC %.2f exceeds width", ipc)
	}
	if ipc < 3.0 {
		t.Fatalf("IPC %.2f too low for fast memory", ipc)
	}
}

func TestMemoryLatencyStalls(t *testing.T) {
	recs := make([]trace.Record, 100)
	for i := range recs {
		recs[i] = trace.Record{PC: 1, Addr: mem.Addr(i * 64)}
	}
	cfg := Config{Width: 4, ROBSize: 8, LSQSize: 4}
	_, fast := run(t, cfg, recs, &fixedPort{latency: 1})
	_, slow := run(t, cfg, recs, &fixedPort{latency: 500})
	if slow < fast*10 {
		t.Fatalf("500-cycle memory should dominate: fast=%d slow=%d", fast, slow)
	}
}

func TestMLPOverlapsIndependentMisses(t *testing.T) {
	// Independent misses should overlap up to the LSQ size: 64 misses of
	// 400 cycles with LSQ 16 should take far less than 64×400 cycles.
	recs := make([]trace.Record, 64)
	for i := range recs {
		recs[i] = trace.Record{PC: 1, Addr: mem.Addr(i * 4096)}
	}
	cfg := Config{Width: 4, ROBSize: 64, LSQSize: 16}
	_, cycles := run(t, cfg, recs, &fixedPort{latency: 400})
	if cycles > 64*400/4 {
		t.Fatalf("no MLP: %d cycles", cycles)
	}
}

func TestDependentLoadsSerialise(t *testing.T) {
	indep := make([]trace.Record, 50)
	dep := make([]trace.Record, 50)
	for i := range indep {
		indep[i] = trace.Record{PC: 1, Addr: mem.Addr(i * 4096)}
		dep[i] = trace.Record{PC: 1, Addr: mem.Addr(i * 4096), Dep: true}
	}
	cfg := Config{Width: 4, ROBSize: 64, LSQSize: 16}
	_, fast := run(t, cfg, indep, &fixedPort{latency: 300})
	_, slow := run(t, cfg, dep, &fixedPort{latency: 300})
	if slow < 50*300 {
		t.Fatalf("dependent chain should serialise: %d cycles", slow)
	}
	if fast*5 > slow {
		t.Fatalf("independent (%d) should be much faster than dependent (%d)", fast, slow)
	}
}

func TestStoresRetireWithoutWaiting(t *testing.T) {
	recs := make([]trace.Record, 50)
	for i := range recs {
		recs[i] = trace.Record{PC: 1, Addr: mem.Addr(i * 4096), Kind: trace.Store}
	}
	cfg := Config{Width: 4, ROBSize: 64, LSQSize: 64}
	c, cycles := run(t, cfg, recs, &fixedPort{latency: 400})
	if cycles > 200 {
		t.Fatalf("stores should not stall retirement: %d cycles", cycles)
	}
	if c.Stats().Stores != 50 {
		t.Fatalf("stores = %d", c.Stats().Stores)
	}
}

func TestLSQBoundsOutstanding(t *testing.T) {
	// With LSQ 2, at most 2 memory ops overlap: 20 misses of 100 cycles
	// take at least 20/2 × 100 cycles.
	recs := make([]trace.Record, 20)
	for i := range recs {
		recs[i] = trace.Record{PC: 1, Addr: mem.Addr(i * 4096)}
	}
	cfg := Config{Width: 4, ROBSize: 64, LSQSize: 2}
	_, cycles := run(t, cfg, recs, &fixedPort{latency: 100})
	if cycles < 900 {
		t.Fatalf("LSQ=2 should bound MLP: %d cycles", cycles)
	}
}

func TestStatsAndReset(t *testing.T) {
	recs := []trace.Record{
		{PC: 1, Addr: 64, NonMem: 3},
		{PC: 2, Addr: 128, Kind: trace.Store},
	}
	c, _ := run(t, Config{Width: 2, ROBSize: 8, LSQSize: 4}, recs, &fixedPort{latency: 5})
	st := c.Stats()
	// 3 non-mem + 1 load + 1 store = 5 instructions.
	if st.Instructions != 5 || st.MemOps != 2 || st.Loads != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("ResetStats should zero")
	}
}

func TestMemStallAttribution(t *testing.T) {
	recs := []trace.Record{{PC: 1, Addr: 64}}
	c, _ := run(t, Config{Width: 4, ROBSize: 8, LSQSize: 4}, recs, &fixedPort{latency: 200})
	if c.Stats().MemStall < 150 {
		t.Fatalf("MemStall = %d, want most of the 200-cycle miss", c.Stats().MemStall)
	}
}

func TestNextEventAtFastForward(t *testing.T) {
	// A full ROB stalled on a long miss should advertise the head's
	// completion as the next event.
	recs := make([]trace.Record, 100)
	for i := range recs {
		recs[i] = trace.Record{PC: 1, Addr: mem.Addr(i * 4096)}
	}
	cfg := Config{Width: 4, ROBSize: 4, LSQSize: 4}
	c := MustNew(cfg, 0, trace.NewSliceSource(recs), vm.Identity{}, &fixedPort{latency: 1000})
	var cycle uint64
	for i := 0; i < 10; i++ {
		c.Tick(cycle)
		cycle++
	}
	next := c.NextEventAt(cycle)
	if next <= cycle+1 {
		t.Fatalf("expected fast-forward hint, got %d at cycle %d", next, cycle)
	}
	if done := c.Done(); done {
		t.Fatal("core should not be done")
	}
}

func TestDoneOnEmptyTrace(t *testing.T) {
	c := MustNew(DefaultConfig(), 0, trace.NewSliceSource(nil), vm.Identity{}, &fixedPort{latency: 1})
	c.Tick(0)
	if !c.Done() {
		t.Fatal("empty trace should drain immediately")
	}
	if c.NextEventAt(0) != ^uint64(0) {
		t.Fatal("done core should advertise no next event")
	}
}

// TestFastForwardEquivalence drives two identical cores — one ticked every
// cycle, one skipping ahead per NextEventAt — and requires identical
// completion times and retired counts: the fast-forward hint must never
// change simulated behaviour, only skip provably idle cycles.
func TestFastForwardEquivalence(t *testing.T) {
	mkRecs := func() []trace.Record {
		recs := make([]trace.Record, 400)
		for i := range recs {
			recs[i] = trace.Record{PC: 1, Addr: mem.Addr(i * 4096), NonMem: uint32(i % 7)}
			if i%5 == 0 {
				recs[i].Dep = true
			}
			if i%11 == 0 {
				recs[i].Kind = trace.Store
			}
		}
		return recs
	}
	cfg := Config{Width: 2, ROBSize: 16, LSQSize: 4}

	// Every-cycle reference.
	ref := MustNew(cfg, 0, trace.NewSliceSource(mkRecs()), vm.Identity{}, &fixedPort{latency: 333})
	var refCycle uint64
	for !ref.Done() {
		ref.Tick(refCycle)
		refCycle++
	}

	// Fast-forwarded run.
	ff := MustNew(cfg, 0, trace.NewSliceSource(mkRecs()), vm.Identity{}, &fixedPort{latency: 333})
	var cycle uint64
	for !ff.Done() {
		ff.Tick(cycle)
		next := ff.NextEventAt(cycle)
		if next > cycle+1 && next != ^uint64(0) {
			cycle = next
		} else {
			cycle++
		}
	}

	// MemStall is a per-observed-cycle sampling counter and legitimately
	// undercounts when cycles are skipped; everything else must match.
	refStats, ffStats := ref.Stats(), ff.Stats()
	refStats.MemStall, ffStats.MemStall = 0, 0
	if refStats != ffStats {
		t.Fatalf("stats diverged:\n ref %+v\n ff  %+v", refStats, ffStats)
	}
	if cycle != refCycle {
		t.Fatalf("completion cycle diverged: ref=%d ff=%d", refCycle, cycle)
	}
}
