//go:build !san

package cpu

// sanState is the per-core checker state of the runtime invariant
// sanitizer. Without the `san` build tag it is empty and the hooks are
// no-ops the compiler inlines away. See internal/san and sancheck_san.go.
type sanState struct{}

func (c *Core) sanAtTick(now uint64) {}

func (c *Core) sanAtRetire(now, completeAt uint64) {}
