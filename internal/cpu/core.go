// Package cpu models an out-of-order core with the ROB-occupancy timing
// approximation standard for trace-driven simulation: instructions
// dispatch and retire in order at a fixed width, non-memory instructions
// complete in one cycle, memory instructions complete when the hierarchy
// returns their data, and a full ROB (or LSQ) stalls dispatch. Memory-level
// parallelism therefore emerges naturally — independent misses overlap up
// to the LSQ size — while a long-latency miss at the ROB head stalls
// retirement exactly as in the paper's 4-wide, 256-entry-ROB cores.
package cpu

import (
	"fmt"

	"bingo/internal/cache"
	"bingo/internal/mem"
	"bingo/internal/trace"
	"bingo/internal/vm"
)

// Config describes one core.
type Config struct {
	Width   int // dispatch and retire width (instructions/cycle)
	ROBSize int
	LSQSize int // maximum in-flight memory operations
}

// DefaultConfig matches the paper's Table I: 4-wide OoO, 256-entry ROB,
// 64-entry LSQ.
func DefaultConfig() Config {
	return Config{Width: 4, ROBSize: 256, LSQSize: 64}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROBSize <= 0 || c.LSQSize <= 0 {
		return fmt.Errorf("cpu: width/rob/lsq must all be positive: %+v", c)
	}
	if c.LSQSize > c.ROBSize {
		return fmt.Errorf("cpu: LSQ (%d) cannot exceed ROB (%d)", c.LSQSize, c.ROBSize)
	}
	return nil
}

// Stats counts retired work and stall attribution for one core.
type Stats struct {
	Instructions uint64 // retired instructions (memory + non-memory)
	MemOps       uint64 // retired memory operations
	Loads        uint64
	Stores       uint64
	// MemStall counts cycles where retirement was blocked by a memory op
	// at the ROB head. The count is exact under both simulation engines:
	// the lockstep loop observes every cycle directly, and the
	// event-driven loop accounts for each skipped stall stretch through
	// CatchUp before the clock lands past it.
	MemStall uint64
}

// Delta returns the counter-wise difference s - prev; with cumulative
// samples of a core's Stats this yields exact per-interval counts (the
// telemetry epoch series is built this way).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Instructions: s.Instructions - prev.Instructions,
		MemOps:       s.MemOps - prev.MemOps,
		Loads:        s.Loads - prev.Loads,
		Stores:       s.Stores - prev.Stores,
		MemStall:     s.MemStall - prev.MemStall,
	}
}

// robEntry is one in-flight instruction.
type robEntry struct {
	completeAt uint64
	isMem      bool
}

// Core simulates one hardware context. Drive it with Tick from a lockstep
// system loop.
type Core struct {
	//ckpt:skip construction parameter, re-supplied by New; LoadState validates the ROB size
	cfg Config
	//ckpt:skip identity, re-supplied by New before restore
	id int
	//ckpt:skip rebuilt fresh and fast-forwarded past the persisted cursor by LoadState
	//conc:core-local each core consumes its own trace source
	src trace.Source
	//ckpt:skip wiring, re-established by system.New before restore
	//conc:barrier-guarded the mapper is a per-core bridge: touched pages resolve via the translator's concurrent-safe Lookup, first touches serialize through the driver's in-order drain
	xlat vm.Mapper
	//ckpt:skip wiring, re-established by system.New before restore
	//conc:core-local points at this core's private L1; L1 misses cross to the shared LLC through the core's memBridge
	port cache.Level

	rob      []robEntry // ring buffer
	robHead  int
	robCount int

	outstanding []uint64 // completion times of in-flight memory ops

	// current record being dispatched
	cur        trace.Record
	curValid   bool
	nonMemLeft uint32
	exhausted  bool

	// lastLoadDone is the completion cycle of the most recent load;
	// Dep-marked accesses cannot issue before it (pointer chasing).
	lastLoadDone uint64

	// fetched counts records successfully pulled from src. Trace sources
	// are deterministic from their construction, so a checkpoint stores
	// only this cursor and restore fast-forwards a fresh source past the
	// consumed prefix (see LoadState in checkpoint.go).
	fetched uint64

	stats Stats
	//ckpt:skip wiring, re-established by the harness before restore
	//conc:core-local observes only this core's demand stream
	tap DemandTap
	//ckpt:skip checker scratch state, not simulation state; rebuilt as events replay
	san sanState // runtime invariant sanitizer (empty without -tags=san)
}

// DemandTap observes every demand memory operation at dispatch, in
// program order, before address translation. It is the architectural
// access stream of the core — the sequence a prefetcher must never be
// able to change (timing-vs-correctness split, Bingo HPCA 2019 §V) — and
// exists for the differential oracles in the harness. A nil tap (the
// default) costs one predictable branch per memory op.
type DemandTap func(pc mem.PC, va mem.Addr, store, dep bool)

// SetDemandTap installs the dispatch observer (at most one; nil clears).
// Install before the first Tick.
func (c *Core) SetDemandTap(f DemandTap) { c.tap = f }

// New creates a core reading records from src, translating through xlat,
// and issuing memory requests to port (its L1-equivalent entry point).
func New(cfg Config, id int, src trace.Source, xlat vm.Mapper, port cache.Level) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil || xlat == nil || port == nil {
		return nil, fmt.Errorf("cpu: src, xlat, and port must all be non-nil")
	}
	return &Core{
		cfg:  cfg,
		id:   id,
		src:  src,
		xlat: xlat,
		port: port,
		rob:  make([]robEntry, cfg.ROBSize),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, id int, src trace.Source, xlat vm.Mapper, port cache.Level) *Core {
	c, err := New(cfg, id, src, xlat, port)
	if err != nil {
		panic(err)
	}
	return c
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Stats returns a snapshot of the counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes the counters; pipeline state is preserved so warm-up
// can flow into measurement seamlessly.
func (c *Core) ResetStats() { c.stats = Stats{} }

// Done reports whether the trace is exhausted and the pipeline drained.
func (c *Core) Done() bool {
	return c.exhausted && !c.curValid && c.robCount == 0
}

// Tick advances the core by one cycle: retire then dispatch.
func (c *Core) Tick(now uint64) {
	c.sanAtTick(now)
	c.retire(now)
	c.dispatch(now)
}

func (c *Core) retire(now uint64) {
	for retired := 0; retired < c.cfg.Width && c.robCount > 0; retired++ {
		head := &c.rob[c.robHead]
		if head.completeAt > now {
			if head.isMem {
				c.stats.MemStall++
			}
			return
		}
		c.sanAtRetire(now, head.completeAt)
		c.stats.Instructions++
		if head.isMem {
			c.stats.MemOps++
		}
		c.robHead++
		if c.robHead == c.cfg.ROBSize {
			c.robHead = 0
		}
		c.robCount--
	}
}

func (c *Core) dispatch(now uint64) {
	for n := 0; n < c.cfg.Width; n++ {
		if c.robCount == c.cfg.ROBSize {
			return
		}
		if !c.curValid {
			if !c.fetch() {
				return
			}
		}
		if c.nonMemLeft > 0 {
			c.nonMemLeft--
			c.push(robEntry{completeAt: now + 1})
			continue
		}
		// Memory operation of the current record.
		if c.cur.Dep && c.lastLoadDone > now {
			return // address depends on an in-flight load: stall
		}
		if !c.lsqReserve(now) {
			return // LSQ full: stall dispatch this cycle
		}
		if c.tap != nil {
			c.tap(c.cur.PC, c.cur.Addr, c.cur.Kind == trace.Store, c.cur.Dep)
		}
		pa := c.xlat.Translate(c.cur.Addr)
		kind := cache.Demand
		if c.cur.Kind == trace.Store {
			kind = cache.Write
			c.stats.Stores++
		} else {
			c.stats.Loads++
		}
		res := c.port.Access(now, cache.Request{Addr: pa, PC: c.cur.PC, Core: c.id, Kind: kind})
		complete := res.CompleteAt
		if kind == cache.Write {
			// Stores retire once issued; the hierarchy absorbs them.
			complete = now + 1
		} else {
			c.lastLoadDone = res.CompleteAt
		}
		c.outstanding = append(c.outstanding, res.CompleteAt) //hot:alloc outstanding grows to LSQSize, then reuses
		c.push(robEntry{completeAt: complete, isMem: true})
		c.curValid = false
	}
}

// fetch pulls the next trace record.
func (c *Core) fetch() bool {
	if c.exhausted {
		return false
	}
	rec, ok := c.src.Next()
	if !ok {
		c.exhausted = true
		return false
	}
	c.fetched++
	c.cur = rec
	c.curValid = true
	c.nonMemLeft = rec.NonMem
	return true
}

// lsqReserve admits a new memory op if fewer than LSQSize are in flight,
// compacting completed entries lazily.
func (c *Core) lsqReserve(now uint64) bool {
	if len(c.outstanding) < c.cfg.LSQSize {
		return true
	}
	live := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > now {
			live = append(live, t) //hot:alloc append into outstanding[:0] reuses capacity, never grows
		}
	}
	c.outstanding = live
	return len(c.outstanding) < c.cfg.LSQSize
}

func (c *Core) push(e robEntry) {
	tail := c.robHead + c.robCount
	if tail >= c.cfg.ROBSize {
		tail -= c.cfg.ROBSize
	}
	c.rob[tail] = e
	c.robCount++
}

// NextEventAt returns the earliest cycle strictly after now at which this
// core can retire or dispatch anything, given its state after Tick(now).
// It implements the event engine's Waker contract (see internal/sched):
// between two ticks every piece of core state is frozen except time
// itself — completion cycles, the ROB, the LSQ, and the pending record
// only change inside Tick — so the next progress cycle is an exact
// function of the post-tick state, and the value returned here is that
// exact cycle, not a conservative bound:
//
//   - Retirement resumes when the ROB head completes (or next cycle, if
//     the head is already complete and only the retire width stopped it).
//   - Dispatch, when the ROB has room, resumes next cycle for non-memory
//     work or a fetchable record; a memory op additionally waits out its
//     address dependence (lastLoadDone) and, when the LSQ is full with no
//     already-completed entry to compact, the earliest in-flight
//     completion.
//
// A full ROB makes retirement the only candidate: dispatch cannot beat
// the retire that frees its slot, and both happen in the same Tick.
func (c *Core) NextEventAt(now uint64) uint64 {
	if c.Done() {
		return ^uint64(0)
	}
	next := ^uint64(0)
	if c.robCount > 0 {
		retireAt := c.rob[c.robHead].completeAt
		if retireAt <= now {
			retireAt = now + 1 // complete but width-limited this cycle
		}
		next = retireAt
		if c.robCount == c.cfg.ROBSize {
			return next
		}
	}
	switch {
	case c.curValid && c.nonMemLeft > 0:
		// Non-memory work always dispatches once width and ROB allow.
		if now+1 < next {
			next = now + 1
		}
	case c.curValid:
		// Pending memory op: wait out the address dependence, then the
		// LSQ. Both constraints must clear simultaneously, so the
		// candidate is their maximum.
		dispatchAt := now + 1
		if c.cur.Dep && c.lastLoadDone > now {
			dispatchAt = c.lastLoadDone
		}
		if len(c.outstanding) >= c.cfg.LSQSize {
			earliest := ^uint64(0)
			hasRoom := false
			for _, t := range c.outstanding {
				if t <= now {
					hasRoom = true // compacts away on the next reserve
					break
				}
				if t < earliest {
					earliest = t
				}
			}
			if !hasRoom && earliest > dispatchAt {
				dispatchAt = earliest
			}
		}
		if dispatchAt < next {
			next = dispatchAt
		}
	case !c.exhausted:
		// Nothing in hand but the trace has more: fetch next cycle.
		if now+1 < next {
			next = now + 1
		}
	}
	return next
}

// CatchUp accounts for the cycles in the open interval (from, to) that
// the event engine is about to skip. A skip is only legal when the core
// can neither retire nor dispatch anywhere inside the gap, so each
// skipped cycle's Tick would have been a no-op — except for MemStall,
// which the lockstep loop increments once per cycle a memory op blocks
// the ROB head. Adding exactly that count here is what keeps the two
// engines' statistics identical (the endpoints are excluded: the core
// was ticked at from and will be ticked at to).
func (c *Core) CatchUp(from, to uint64) {
	if to <= from+1 || c.robCount == 0 {
		return
	}
	head := c.rob[c.robHead]
	if !head.isMem || head.completeAt <= from {
		// A complete (or non-memory) head cannot have stalled the gap:
		// it would have retired, making the gap illegal. Defensive only.
		return
	}
	end := to
	if head.completeAt < end {
		end = head.completeAt
	}
	if end > from+1 {
		c.stats.MemStall += end - from - 1
	}
}

// IdleAt applies the one side effect a Tick has on a core with no
// progress available at cycle now: the retire stage's MemStall count
// when a memory op blocks the ROB head. The event engine calls it in
// place of a full Tick for cores whose next event lies beyond a landed
// cycle — same statistics, none of the retire/dispatch probing
// (TestEventSteppedCoreMatchesLockstep pins the equivalence). Calling it
// on a core that could make progress at now would lose that progress;
// the caller guarantees NextEventAt(prev) > now.
func (c *Core) IdleAt(now uint64) {
	if c.robCount > 0 {
		if head := &c.rob[c.robHead]; head.isMem && head.completeAt > now {
			c.stats.MemStall++
		}
	}
}
