// Package cpu models an out-of-order core with the ROB-occupancy timing
// approximation standard for trace-driven simulation: instructions
// dispatch and retire in order at a fixed width, non-memory instructions
// complete in one cycle, memory instructions complete when the hierarchy
// returns their data, and a full ROB (or LSQ) stalls dispatch. Memory-level
// parallelism therefore emerges naturally — independent misses overlap up
// to the LSQ size — while a long-latency miss at the ROB head stalls
// retirement exactly as in the paper's 4-wide, 256-entry-ROB cores.
package cpu

import (
	"fmt"

	"bingo/internal/cache"
	"bingo/internal/mem"
	"bingo/internal/trace"
	"bingo/internal/vm"
)

// Config describes one core.
type Config struct {
	Width   int // dispatch and retire width (instructions/cycle)
	ROBSize int
	LSQSize int // maximum in-flight memory operations
}

// DefaultConfig matches the paper's Table I: 4-wide OoO, 256-entry ROB,
// 64-entry LSQ.
func DefaultConfig() Config {
	return Config{Width: 4, ROBSize: 256, LSQSize: 64}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROBSize <= 0 || c.LSQSize <= 0 {
		return fmt.Errorf("cpu: width/rob/lsq must all be positive: %+v", c)
	}
	if c.LSQSize > c.ROBSize {
		return fmt.Errorf("cpu: LSQ (%d) cannot exceed ROB (%d)", c.LSQSize, c.ROBSize)
	}
	return nil
}

// Stats counts retired work and stall attribution for one core.
type Stats struct {
	Instructions uint64 // retired instructions (memory + non-memory)
	MemOps       uint64 // retired memory operations
	Loads        uint64
	Stores       uint64
	// MemStall counts observed cycles where retirement was blocked by a
	// memory op at the ROB head. It is a sampling counter: when the
	// simulation loop fast-forwards through provably idle stalls, the
	// skipped cycles are not observed, so MemStall is a lower bound.
	MemStall uint64
}

// Delta returns the counter-wise difference s - prev; with cumulative
// samples of a core's Stats this yields exact per-interval counts (the
// telemetry epoch series is built this way).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Instructions: s.Instructions - prev.Instructions,
		MemOps:       s.MemOps - prev.MemOps,
		Loads:        s.Loads - prev.Loads,
		Stores:       s.Stores - prev.Stores,
		MemStall:     s.MemStall - prev.MemStall,
	}
}

// robEntry is one in-flight instruction.
type robEntry struct {
	completeAt uint64
	isMem      bool
}

// Core simulates one hardware context. Drive it with Tick from a lockstep
// system loop.
type Core struct {
	cfg  Config
	id   int
	src  trace.Source
	xlat vm.Mapper
	port cache.Level

	rob      []robEntry // ring buffer
	robHead  int
	robCount int

	outstanding []uint64 // completion times of in-flight memory ops

	// current record being dispatched
	cur        trace.Record
	curValid   bool
	nonMemLeft uint32
	exhausted  bool

	// lastLoadDone is the completion cycle of the most recent load;
	// Dep-marked accesses cannot issue before it (pointer chasing).
	lastLoadDone uint64

	// fetched counts records successfully pulled from src. Trace sources
	// are deterministic from their construction, so a checkpoint stores
	// only this cursor and restore fast-forwards a fresh source past the
	// consumed prefix (see LoadState in checkpoint.go).
	fetched uint64

	stats Stats
	tap   DemandTap
	san   sanState // runtime invariant sanitizer (empty without -tags=san)
}

// DemandTap observes every demand memory operation at dispatch, in
// program order, before address translation. It is the architectural
// access stream of the core — the sequence a prefetcher must never be
// able to change (timing-vs-correctness split, Bingo HPCA 2019 §V) — and
// exists for the differential oracles in the harness. A nil tap (the
// default) costs one predictable branch per memory op.
type DemandTap func(pc mem.PC, va mem.Addr, store, dep bool)

// SetDemandTap installs the dispatch observer (at most one; nil clears).
// Install before the first Tick.
func (c *Core) SetDemandTap(f DemandTap) { c.tap = f }

// New creates a core reading records from src, translating through xlat,
// and issuing memory requests to port (its L1-equivalent entry point).
func New(cfg Config, id int, src trace.Source, xlat vm.Mapper, port cache.Level) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil || xlat == nil || port == nil {
		return nil, fmt.Errorf("cpu: src, xlat, and port must all be non-nil")
	}
	return &Core{
		cfg:  cfg,
		id:   id,
		src:  src,
		xlat: xlat,
		port: port,
		rob:  make([]robEntry, cfg.ROBSize),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, id int, src trace.Source, xlat vm.Mapper, port cache.Level) *Core {
	c, err := New(cfg, id, src, xlat, port)
	if err != nil {
		panic(err)
	}
	return c
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Stats returns a snapshot of the counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes the counters; pipeline state is preserved so warm-up
// can flow into measurement seamlessly.
func (c *Core) ResetStats() { c.stats = Stats{} }

// Done reports whether the trace is exhausted and the pipeline drained.
func (c *Core) Done() bool {
	return c.exhausted && !c.curValid && c.robCount == 0
}

// Tick advances the core by one cycle: retire then dispatch.
func (c *Core) Tick(now uint64) {
	c.sanAtTick(now)
	c.retire(now)
	c.dispatch(now)
}

func (c *Core) retire(now uint64) {
	for retired := 0; retired < c.cfg.Width && c.robCount > 0; retired++ {
		head := &c.rob[c.robHead]
		if head.completeAt > now {
			if head.isMem {
				c.stats.MemStall++
			}
			return
		}
		c.sanAtRetire(now, head.completeAt)
		c.stats.Instructions++
		if head.isMem {
			c.stats.MemOps++
		}
		c.robHead = (c.robHead + 1) % c.cfg.ROBSize
		c.robCount--
	}
}

func (c *Core) dispatch(now uint64) {
	for n := 0; n < c.cfg.Width; n++ {
		if c.robCount == c.cfg.ROBSize {
			return
		}
		if !c.curValid {
			if !c.fetch() {
				return
			}
		}
		if c.nonMemLeft > 0 {
			c.nonMemLeft--
			c.push(robEntry{completeAt: now + 1})
			continue
		}
		// Memory operation of the current record.
		if c.cur.Dep && c.lastLoadDone > now {
			return // address depends on an in-flight load: stall
		}
		if !c.lsqReserve(now) {
			return // LSQ full: stall dispatch this cycle
		}
		if c.tap != nil {
			c.tap(c.cur.PC, c.cur.Addr, c.cur.Kind == trace.Store, c.cur.Dep)
		}
		pa := c.xlat.Translate(c.cur.Addr)
		kind := cache.Demand
		if c.cur.Kind == trace.Store {
			kind = cache.Write
			c.stats.Stores++
		} else {
			c.stats.Loads++
		}
		res := c.port.Access(now, cache.Request{Addr: pa, PC: c.cur.PC, Core: c.id, Kind: kind})
		complete := res.CompleteAt
		if kind == cache.Write {
			// Stores retire once issued; the hierarchy absorbs them.
			complete = now + 1
		} else {
			c.lastLoadDone = res.CompleteAt
		}
		c.outstanding = append(c.outstanding, res.CompleteAt)
		c.push(robEntry{completeAt: complete, isMem: true})
		c.curValid = false
	}
}

// fetch pulls the next trace record.
func (c *Core) fetch() bool {
	if c.exhausted {
		return false
	}
	rec, ok := c.src.Next()
	if !ok {
		c.exhausted = true
		return false
	}
	c.fetched++
	c.cur = rec
	c.curValid = true
	c.nonMemLeft = rec.NonMem
	return true
}

// lsqReserve admits a new memory op if fewer than LSQSize are in flight,
// compacting completed entries lazily.
func (c *Core) lsqReserve(now uint64) bool {
	if len(c.outstanding) < c.cfg.LSQSize {
		return true
	}
	live := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > now {
			live = append(live, t)
		}
	}
	c.outstanding = live
	return len(c.outstanding) < c.cfg.LSQSize
}

func (c *Core) push(e robEntry) {
	tail := (c.robHead + c.robCount) % c.cfg.ROBSize
	c.rob[tail] = e
	c.robCount++
}

// NextEventAt returns the earliest future cycle at which this core can make
// progress, given that it made none at cycle now. Used by the system loop
// to fast-forward through long stalls.
func (c *Core) NextEventAt(now uint64) uint64 {
	if c.Done() {
		return ^uint64(0)
	}
	if c.robCount == 0 {
		return now + 1
	}
	head := c.rob[c.robHead]
	if head.completeAt > now+1 {
		// Retirement blocked until the head completes. Dispatch may still
		// be possible if the ROB has room, so only skip when it is full
		// or the LSQ blocks the pending memory op.
		if c.robCount == c.cfg.ROBSize {
			return head.completeAt
		}
	}
	return now + 1
}
