package system

import (
	"fmt"

	"bingo/internal/sched"
)

// Engine selects the simulation loop's clock-advance strategy. Both
// engines simulate the identical machine and are proven byte-identical
// by the engine-differential oracles (internal/harness) and the CI
// byte-diff; they differ only in wall-clock cost.
type Engine uint8

const (
	// EngineLockstep ticks every core on every cycle — the reference
	// semantics, and the default.
	EngineLockstep Engine = iota
	// EngineEvent jumps the clock straight to the earliest wakeup
	// registered with the scheduler (internal/sched), skipping stretches
	// where every component is provably idle. On memory-bound workloads
	// this removes the bulk of the per-cycle probing.
	EngineEvent
)

// String names the engine as the -engine flag spells it.
func (e Engine) String() string {
	if e == EngineEvent {
		return "event"
	}
	return "lockstep"
}

// ParseEngine resolves an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "lockstep":
		return EngineLockstep, nil
	case "event":
		return EngineEvent, nil
	default:
		return EngineLockstep, fmt.Errorf("system: unknown engine %q (have lockstep, event)", s)
	}
}

// EngineStats counts the event engine's clock advances. It is
// diagnostic output for the bench harness, deliberately kept out of
// Results so both engines produce identical result documents.
type EngineStats struct {
	// Advances is the number of clock advances the loop took.
	Advances uint64
	// SkippedCycles is the total cycles jumped over (advances of more
	// than +1 contribute their gap). Zero under the lockstep engine.
	SkippedCycles uint64
}

// SetEngine selects the clock-advance strategy. Call it before Run (or
// between a checkpoint restore and the resuming Run — the engine is not
// part of a checkpoint, and either engine resumes any checkpoint to the
// same results). The scheduler itself binds lazily at run entry, so a
// restore's state is what seeds the in-flight heaps.
func (s *System) SetEngine(e Engine) { s.engine = e }

// Engine returns the selected clock-advance strategy.
func (s *System) Engine() Engine { return s.engine }

// EngineStats returns the clock-advance accounting of the run so far.
func (s *System) EngineStats() EngineStats { return s.engineStats }

// pfQueueWaker exposes the per-core prefetch queues as a Waker: an
// in-flight prefetch completing frees an issue slot, which is the only
// time-driven transition the queues have.
type pfQueueWaker struct {
	//conc:barrier-guarded the queue heaps are scanned only at the clock-advance barrier
	s *System
}

// NextEventAt implements sched.Waker.
func (p pfQueueWaker) NextEventAt(now uint64) uint64 {
	next := ^uint64(0)
	for _, q := range p.s.pfInflight {
		for _, t := range q {
			if t > now && t < next {
				next = t
			}
		}
	}
	return next
}

// ensureScheduler builds and populates the wakeup queue on first use of
// the event engine. It runs at run entry rather than construction so a
// checkpoint restore (which rewrites clock, cache contents, and queue
// state into a freshly built system) is already in place when the cache
// in-flight heaps are seeded.
func (s *System) ensureScheduler() {
	if s.engine != EngineEvent || s.queue != nil {
		return
	}
	q := sched.New()
	s.coreNext = make([]uint64, len(s.cores))
	for i, c := range s.cores {
		q.Register(fmt.Sprintf("core[%d]", i), c)
	}
	// The memory system is passive: caches, DRAM, and the prefetch queues
	// mutate state only inside the Access calls core ticks make, and the
	// completion times that gate core progress are baked into core state
	// at dispatch. Their wakers are registered lazy — real deadlines, but
	// only the conservative (sanitized) skip policy lands on them.
	q.RegisterLazy("dram", s.dram)
	// Cache in-flight heaps feed only the conservative paths (NextWakeLazy
	// clamps and the skip audit), so the per-fill heap bookkeeping is paid
	// only when those paths can run. Without tracking the cache wakers
	// report no pending events, which for a lazy waker is always sound.
	track := s.sanConservativeSkips()
	if track {
		s.llc.EnableEventTracking(s.clock)
	}
	q.RegisterLazy("llc", s.llc)
	for i, l1 := range s.l1s {
		if track {
			l1.EnableEventTracking(s.clock)
		}
		q.RegisterLazy(fmt.Sprintf("l1[%d]", i), l1)
	}
	if s.pfInflight != nil {
		q.RegisterLazy("prefetch-queue", pfQueueWaker{s: s})
	}
	s.queue = q
}

// advanceClock picks the cycle the loop simulates next. The lockstep
// engine ticks every cycle; the event engine jumps to the earliest
// registered wakeup, clamped to the next telemetry epoch edge so the
// epoch series closes at exactly the boundaries a lockstep run closes
// at. Cores are caught up over the skipped gap (MemStall is the one
// counter the lockstep loop accrues on otherwise idle cycles), which is
// what makes the two engines' statistics — not just their progress —
// identical.
//
// Skip-safety argument, in brief: between ticks, every component's
// state is frozen except time itself (cores mutate only in Tick; caches,
// DRAM, translation, and prefetchers mutate only inside the Access calls
// ticks make). The cores' wakeups are exact next-progress cycles
// (cpu.NextEventAt), so no retire or dispatch can occur strictly inside
// the gap; the passive components' timer expiries need no landing at all
// — an expiry changes nothing until the next access observes it against
// the clock. Sanitizer-enabled runs nevertheless clamp to the passive
// wakers too (NextWakeLazy), so the skip audit in sanAtAdvance is a
// strict invariant and the san/non-san differential oracle doubles as a
// proof that the two skip policies agree. DESIGN.md §9 spells the
// argument out.
func (s *System) advanceClock(prev uint64) uint64 {
	if s.engine != EngineEvent {
		return prev + 1
	}
	// The loop refreshed coreNext for every core that ticked at prev;
	// the rest are frozen, so their cached deadlines are still exact.
	next := sched.None
	for _, at := range s.coreNext {
		if at < next {
			next = at
		}
	}
	if s.sanConservativeSkips() && next > prev+1 {
		if lz := s.queue.NextWakeLazy(prev); lz < next {
			next = lz
		}
	}
	if next == sched.None {
		next = prev + 1
	}
	if s.tel != nil && s.phase == phaseMeasure {
		if edge := s.tel.NextSampleAt(); edge > prev && edge < next {
			next = edge
		}
	}
	s.engineStats.Advances++
	if next > prev+1 {
		s.engineStats.SkippedCycles += next - prev - 1
		for _, c := range s.cores {
			c.CatchUp(prev, next)
		}
	}
	return next
}
