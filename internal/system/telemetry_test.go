package system

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"bingo/internal/checkpoint"
	"bingo/internal/mem"
	"bingo/internal/prefetch"
	"bingo/internal/telemetry"
)

// nextLinePF is a stateless, checkpointable next-line prefetcher for
// checkpoint/resume tests (recordingPrefetcher is not checkpointable).
type nextLinePF struct{}

func (nextLinePF) Name() string { return "nextline" }
func (nextLinePF) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	return []mem.Addr{ev.Addr.BlockAlign() + 64}
}
func (nextLinePF) OnEviction(mem.Addr)                  {}
func (nextLinePF) StorageBytes() int                    { return 0 }
func (nextLinePF) SaveState(w *checkpoint.Writer) error { w.Version(1); return w.Err() }
func (nextLinePF) LoadState(r *checkpoint.Reader) error { r.Version(1); return r.Err() }

func nextLineFactory(int) prefetch.Prefetcher { return nextLinePF{} }

// TestL1StatsFrozenAtCoreBudget pins the measurement-window fix: each
// core's L1 stats in Results come from the freeze frame taken when that
// core hit its budget, not from a live read at collect time. With
// wildly different trace lengths the fast core's L1 keeps counting for
// the whole drain interval, so the live counter strictly exceeds the
// frozen one.
func TestL1StatsFrozenAtCoreBudget(t *testing.T) {
	cfg := tinyConfig()
	cfg.MeasureInstr = 1000
	// Core 0's trace barely covers the budget; core 1's runs ~20x longer.
	sys := MustNew(cfg, sources(seqTrace(400, 1), seqTrace(8000, 3)), nil)
	res := sys.Run()

	live := sys.l1s[0].Stats()
	frozen := res.L1[0]
	if frozen.Accesses >= live.Accesses {
		t.Fatalf("core 0 L1 stats were not frozen at its budget: frozen %d accesses, live %d",
			frozen.Accesses, live.Accesses)
	}
	// The frame is self-consistent with the CPU freeze taken at the same
	// cycle: every load and store is one L1 access.
	for i, c := range res.PerCore {
		if res.L1[i].Accesses != c.Loads+c.Stores {
			t.Errorf("core %d: L1 accesses %d != loads+stores %d — L1 and CPU frames disagree",
				i, res.L1[i].Accesses, c.Loads+c.Stores)
		}
	}
}

// TestCollectGuardsSnapshotBeforeStart pins the underflow fix: a freeze
// frame whose cycle predates the measurement start (possible when a
// resumed run paused exactly at the boundary) must clamp to 1 cycle, not
// wrap the uint64 subtraction into an astronomically long interval.
func TestCollectGuardsSnapshotBeforeStart(t *testing.T) {
	sys := MustNew(tinyConfig(), sources(seqTrace(2000, 1), seqTrace(2000, 1)), nil)
	sys.Run()

	snaps := make([]coreSnapshot, len(sys.snaps))
	copy(snaps, sys.snaps)
	snaps[0].cycle = sys.measureStart - 1 // predates the window
	res := sys.collect(sys.measureStart, snaps)
	if res.PerCore[0].Cycles != 1 {
		t.Fatalf("pre-start snapshot yielded %d cycles, want clamp to 1", res.PerCore[0].Cycles)
	}
	if res.PerCore[0].IPC < 0 || res.PerCore[0].IPC > 1e12 {
		t.Fatalf("pre-start snapshot IPC = %v (underflow leaked through)", res.PerCore[0].IPC)
	}
}

// TestCheckpointAtMeasureBoundary drives the same hazard through the
// production path: save at the exact warm-up → measurement boundary,
// restore, and finish. The restored run must produce the identical
// Results, with no wrapped cycle counts.
func TestCheckpointAtMeasureBoundary(t *testing.T) {
	build := func() *System {
		return MustNew(tinyConfig(), sources(seqTrace(2000, 1), seqTrace(500, 5)), nextLineFactory)
	}
	straight := build().Run()

	sys := build()
	sys.RunWarmup() // leaves the system exactly at the boundary
	var buf bytes.Buffer
	if err := sys.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored := build()
	if err := restored.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	res := restored.Run()
	if !reflect.DeepEqual(res, straight) {
		t.Fatalf("boundary checkpoint diverged:\n got %+v\nwant %+v", res, straight)
	}
	for i, c := range res.PerCore {
		if c.Cycles > 1<<40 {
			t.Fatalf("core %d cycles = %d — measurement interval wrapped", i, c.Cycles)
		}
	}
}

// TestLifecycleConservation checks the lifecycle counters conserve
// exactly and agree with the cache's own prefetch stats on a real run.
func TestLifecycleConservation(t *testing.T) {
	cfg := tinyConfig()
	cfg.MeasureInstr = 5000
	sys := MustNew(cfg, sources(seqTrace(4000, 1), seqTrace(4000, 2)), nextLineFactory)
	res := sys.Run()

	lc := res.Timeliness
	if lc.Issued == 0 || lc.Fills == 0 {
		t.Fatalf("no lifecycle activity: %+v", lc)
	}
	if !lc.Conserves() {
		t.Fatalf("lifecycle counters do not conserve: %+v", lc)
	}
	llc := res.LLC
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"fills", lc.Fills, llc.PrefetchFills},
		{"used (timely+late)", lc.Timely + lc.Late, llc.UsefulPrefetch},
		{"late", lc.Late, llc.LatePrefetch},
		{"unused evicted", lc.UnusedEvicted, llc.UnusedPrefetch},
		{"redundant", lc.Redundant, llc.PrefetchHits},
		{"issued minus dropped", lc.Issued - lc.QueueDropped, llc.PrefetchIssued},
		{"queue dropped", lc.QueueDropped, res.PrefetchDropped},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("lifecycle %s = %d, cache reports %d", c.name, c.got, c.want)
		}
	}
}

// TestTelemetryIsPureObserver is the differential oracle at system
// level: the identical simulation with and without a collector attached
// must produce deeply equal Results, and the collector's epoch series
// must sum back to the end-of-run totals.
func TestTelemetryIsPureObserver(t *testing.T) {
	run := func(withTel bool) (Results, *telemetry.Collector) {
		cfg := tinyConfig()
		cfg.MeasureInstr = 5000
		sys := MustNew(cfg, sources(seqTrace(4000, 1), seqTrace(4000, 3)), nextLineFactory)
		var tel *telemetry.Collector
		if withTel {
			tel = telemetry.NewCollector(500)
			sys.EnableTelemetry(tel)
		}
		return sys.Run(), tel
	}
	plain, _ := run(false)
	observed, tel := run(true)
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("telemetry changed the simulation:\n off %+v\n on  %+v", plain, observed)
	}
	if !tel.Finished() {
		t.Fatal("collector did not finish with the run")
	}
	if len(tel.Series()) < 2 {
		t.Fatalf("only %d epochs sampled", len(tel.Series()))
	}
	sum := tel.SummedTotals()
	if sum.LLC != observed.LLC {
		t.Fatalf("epoch series sums to %+v, run totals are %+v", sum.LLC, observed.LLC)
	}
	if sum.DRAM != observed.DRAM {
		t.Fatalf("epoch DRAM series sums to %+v, run totals are %+v", sum.DRAM, observed.DRAM)
	}
}

// TestTelemetryCheckpointResume pauses a telemetry-on run mid-
// measurement, round-trips it through a checkpoint, and finishes on the
// restored system: Results and the full epoch series must match the
// straight-through run exactly.
func TestTelemetryCheckpointResume(t *testing.T) {
	build := func() (*System, *telemetry.Collector) {
		cfg := tinyConfig()
		cfg.MeasureInstr = 5000
		sys := MustNew(cfg, sources(seqTrace(4000, 1), seqTrace(4000, 3)), nextLineFactory)
		tel := telemetry.NewCollector(500)
		sys.EnableTelemetry(tel)
		return sys, tel
	}

	straightSys, straightTel := build()
	straight := straightSys.Run()

	sys, _ := build()
	paused := false
	sys.SetAdvanceHook(func(cycle uint64) bool {
		if !paused && sys.phase == phaseMeasure && cycle >= sys.measureStart+1200 {
			paused = true
			return true
		}
		return false
	})
	if _, p := sys.RunResumable(); !p {
		t.Fatal("run completed before the pause point")
	}
	var buf bytes.Buffer
	if err := sys.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored, restoredTel := build()
	if err := restored.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	res, p := restored.RunResumable()
	if p {
		t.Fatal("restored run paused unexpectedly")
	}
	if !reflect.DeepEqual(res, straight) {
		t.Fatalf("resumed run diverged:\n got %+v\nwant %+v", res, straight)
	}
	if !reflect.DeepEqual(restoredTel.Series(), straightTel.Series()) {
		t.Fatalf("resumed epoch series diverged:\n got %+v\nwant %+v", restoredTel.Series(), straightTel.Series())
	}
}

// TestTelemetryAttachAfterWarmRestore is the warm-start path: the
// artifact is saved at the measurement boundary without telemetry, then
// restored into a telemetry-enabled run. Resync puts the collector on
// the measurement-start epoch grid, so the series matches a cold
// telemetry-on run exactly.
func TestTelemetryAttachAfterWarmRestore(t *testing.T) {
	build := func() *System {
		cfg := tinyConfig()
		cfg.MeasureInstr = 5000
		return MustNew(cfg, sources(seqTrace(4000, 1), seqTrace(4000, 3)), nextLineFactory)
	}

	coldSys := build()
	coldTel := telemetry.NewCollector(500)
	coldSys.EnableTelemetry(coldTel)
	cold := coldSys.Run()

	warm := build()
	warm.RunWarmup()
	var buf bytes.Buffer
	if err := warm.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored := build()
	warmTel := telemetry.NewCollector(500)
	restored.EnableTelemetry(warmTel)
	if err := restored.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	res := restored.Run()
	if !reflect.DeepEqual(res, cold) {
		t.Fatalf("warm-started run diverged:\n got %+v\nwant %+v", res, cold)
	}
	if !reflect.DeepEqual(warmTel.Series(), coldTel.Series()) {
		t.Fatalf("warm-started epoch series diverged:\n got %+v\nwant %+v", warmTel.Series(), coldTel.Series())
	}
}

// TestResultsStringFormats pins the selfcov= rename, the timeliness
// line, and the baseline-relative variant.
func TestResultsStringFormats(t *testing.T) {
	cfg := tinyConfig()
	cfg.MeasureInstr = 5000
	res := MustNew(cfg, sources(seqTrace(4000, 1), seqTrace(4000, 2)), nextLineFactory).Run()

	s := res.String()
	if !strings.Contains(s, "selfcov=") {
		t.Errorf("String lost the selfcov= label:\n%s", s)
	}
	if strings.Contains(s, " cov=") {
		t.Errorf("String still prints the ambiguous cov= label:\n%s", s)
	}
	if !strings.Contains(s, "timely=") || !strings.Contains(s, "late=") {
		t.Errorf("String is missing the timeliness line:\n%s", s)
	}

	wb := res.StringWithBaseline(res.LLC.Misses * 2)
	if !strings.Contains(wb, "vs-baseline: cov=") || !strings.Contains(wb, "overpred=") {
		t.Errorf("StringWithBaseline missing baseline metrics:\n%s", wb)
	}
	if res.StringWithBaseline(0) != s {
		t.Error("StringWithBaseline(0) should render identically to String")
	}
}
