package system

import (
	"fmt"
	"strings"

	"bingo/internal/cache"
	"bingo/internal/cpu"
	"bingo/internal/dram"
)

// CoreResult is the measured outcome for one core.
type CoreResult struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64
	MemStall     uint64
	Loads        uint64
	Stores       uint64
}

// Results is everything a run produced.
type Results struct {
	PrefetcherName  string
	StorageBytes    int
	PerCore         []CoreResult
	L1              []cache.Stats
	LLC             cache.Stats
	DRAM            dram.Stats
	TotalCycles     uint64 // longest per-core measurement interval
	PrefetchDropped uint64 // prefetches dropped by the full prefetch queue
	// WindowInstructions is the total number of instructions retired by
	// all cores over the whole measurement window (cores keep running —
	// and generating cache traffic — until the slowest finishes, so cache
	// and DRAM counters must be normalised by this, not by the per-core
	// snapshot sum).
	WindowInstructions uint64
}

// coreSnapshot freezes a core's counters at the cycle it completed its
// measurement budget.
type coreSnapshot struct {
	taken bool
	cycle uint64
	stats cpu.Stats
}

func (s *System) collect(start uint64, snaps []coreSnapshot) Results {
	r := Results{PrefetcherName: "none", PrefetchDropped: s.pfDropped}
	if s.pfs != nil {
		r.PrefetcherName = s.pfs[0].Name()
		r.StorageBytes = s.pfs[0].StorageBytes()
	}
	for i := range s.cores {
		st := snaps[i].stats
		cycles := snaps[i].cycle - start
		if cycles == 0 {
			cycles = 1
		}
		r.PerCore = append(r.PerCore, CoreResult{
			Instructions: st.Instructions,
			Cycles:       cycles,
			IPC:          float64(st.Instructions) / float64(cycles),
			MemStall:     st.MemStall,
			Loads:        st.Loads,
			Stores:       st.Stores,
		})
		if cycles > r.TotalCycles {
			r.TotalCycles = cycles
		}
		r.L1 = append(r.L1, s.l1s[i].Stats())
		r.WindowInstructions += s.cores[i].Stats().Instructions
	}
	r.LLC = s.llc.Stats()
	r.DRAM = s.dram.Stats()
	return r
}

// Throughput is the system IPC: the sum of per-core IPCs. Speedups in the
// figures are ratios of this quantity between prefetcher and baseline
// runs of the identical trace.
func (r Results) Throughput() float64 {
	var t float64
	for _, c := range r.PerCore {
		t += c.IPC
	}
	return t
}

// TotalInstructions sums retired instructions across cores.
func (r Results) TotalInstructions() uint64 {
	var t uint64
	for _, c := range r.PerCore {
		t += c.Instructions
	}
	return t
}

// LLCMPKI is LLC demand misses per kilo-instruction across all cores,
// normalised over the whole measurement window.
func (r Results) LLCMPKI() float64 {
	return r.LLC.MPKI(r.WindowInstructions)
}

// Coverage is the fraction of would-be misses eliminated by prefetching,
// computed against this run's own demand stream: useful prefetches over
// (demand misses + useful prefetches). With a deterministic trace this
// equals the paper's "covered misses / baseline misses" to within the
// second-order effect of prefetching perturbing residencies.
func (r Results) Coverage() float64 {
	denom := r.LLC.Misses + r.LLC.UsefulPrefetch
	if denom == 0 {
		return 0
	}
	return float64(r.LLC.UsefulPrefetch) / float64(denom)
}

// CoverageVsBaseline is the paper's Figure 7 metric: the fraction of the
// baseline (no-prefetcher) misses of the identical trace that the
// prefetcher eliminated — computed as miss reduction, which is robust to
// where in the warm-up/measurement window the covering prefetch was
// issued. Clamped to [0, 1] (a polluting prefetcher can increase misses).
func (r Results) CoverageVsBaseline(baselineMisses uint64) float64 {
	if baselineMisses == 0 {
		return 0
	}
	c := 1 - float64(r.LLC.Misses)/float64(baselineMisses)
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return c
}

// Overprediction is Figure 7's overprediction metric: prefetched blocks
// never used before eviction, normalised to baseline misses.
func (r Results) Overprediction(baselineMisses uint64) float64 {
	if baselineMisses == 0 {
		return 0
	}
	return float64(r.LLC.UnusedPrefetch) / float64(baselineMisses)
}

// Accuracy is useful prefetches over issued prefetch fills.
func (r Results) Accuracy() float64 {
	if r.LLC.PrefetchFills == 0 {
		return 0
	}
	return float64(r.LLC.UsefulPrefetch) / float64(r.LLC.PrefetchFills)
}

// String renders a compact human-readable summary.
func (r Results) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prefetcher=%s storage=%dB\n", r.PrefetcherName, r.StorageBytes)
	for i, c := range r.PerCore {
		fmt.Fprintf(&b, "  core%d: instr=%d cycles=%d ipc=%.3f\n", i, c.Instructions, c.Cycles, c.IPC)
	}
	fmt.Fprintf(&b, "  llc: acc=%d miss=%d mpki=%.2f cov=%.1f%% acc(pf)=%.1f%%\n",
		r.LLC.Accesses, r.LLC.Misses, r.LLCMPKI(), r.Coverage()*100, r.Accuracy()*100)
	fmt.Fprintf(&b, "  dram: reads=%d writes=%d rowhit=%.1f%%\n",
		r.DRAM.Reads, r.DRAM.Writes, r.DRAM.RowHitRate()*100)
	return b.String()
}
