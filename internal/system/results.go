package system

import (
	"fmt"
	"strings"

	"bingo/internal/cache"
	"bingo/internal/cpu"
	"bingo/internal/dram"
	"bingo/internal/telemetry"
)

// CoreResult is the measured outcome for one core.
type CoreResult struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64
	MemStall     uint64
	Loads        uint64
	Stores       uint64
}

// Results is everything a run produced.
type Results struct {
	PrefetcherName  string
	StorageBytes    int
	PerCore         []CoreResult
	L1              []cache.Stats
	LLC             cache.Stats
	DRAM            dram.Stats
	TotalCycles     uint64 // longest per-core measurement interval
	PrefetchDropped uint64 // prefetches dropped by the full prefetch queue
	// WindowInstructions is the total number of instructions retired by
	// all cores over the whole measurement window (cores keep running —
	// and generating cache traffic — until the slowest finishes, so cache
	// and DRAM counters must be normalised by this, not by the per-core
	// snapshot sum).
	WindowInstructions uint64
	// Timeliness is the summed prefetch lifecycle: every predicted
	// address classified as queue-dropped, redundant, or filled, and
	// every fill as timely, late, unused-evicted, or still in flight.
	// Zero-valued for the no-prefetcher baseline.
	Timeliness telemetry.LifecycleStats
}

// coreSnapshot freezes a core's counters — and its private L1's — at the
// cycle it completed its measurement budget. Freezing the L1 alongside
// the CPU stats is what keeps per-core cache numbers consistent with the
// per-core IPC window: reading the L1 live at collect time would fold in
// traffic the core generated after its budget while slower cores drained.
type coreSnapshot struct {
	taken bool
	cycle uint64
	stats cpu.Stats
	l1    cache.Stats
}

func (s *System) collect(start uint64, snaps []coreSnapshot) Results {
	var dropped uint64
	for _, d := range s.pfDropped {
		dropped += d
	}
	r := Results{PrefetcherName: "none", PrefetchDropped: dropped}
	if s.pfs != nil {
		r.PrefetcherName = s.pfs[0].Name()
		r.StorageBytes = s.pfs[0].StorageBytes()
	}
	if s.lc != nil {
		r.Timeliness = s.lc.Totals()
	}
	for i := range s.cores {
		st := snaps[i].stats
		// A snapshot can predate the measurement start when a resumed run
		// paused exactly at the measurement boundary and a core's trace was
		// already exhausted; guard the unsigned subtraction.
		cycles := uint64(1)
		if snaps[i].cycle > start {
			cycles = snaps[i].cycle - start
		}
		r.PerCore = append(r.PerCore, CoreResult{
			Instructions: st.Instructions,
			Cycles:       cycles,
			IPC:          float64(st.Instructions) / float64(cycles),
			MemStall:     st.MemStall,
			Loads:        st.Loads,
			Stores:       st.Stores,
		})
		if cycles > r.TotalCycles {
			r.TotalCycles = cycles
		}
		// Per-core L1 stats come from the same freeze frame as the CPU
		// stats, not a live read: by collect time faster cores' L1s have
		// kept counting while the slowest core finished its budget.
		r.L1 = append(r.L1, snaps[i].l1)
		// WindowInstructions deliberately reads live: it normalises the
		// shared LLC/DRAM counters, which also run to the end of the window.
		r.WindowInstructions += s.cores[i].Stats().Instructions
	}
	r.LLC = s.llc.Stats()
	r.DRAM = s.dram.Stats()
	return r
}

// Throughput is the system IPC: the sum of per-core IPCs. Speedups in the
// figures are ratios of this quantity between prefetcher and baseline
// runs of the identical trace.
func (r Results) Throughput() float64 {
	var t float64
	for _, c := range r.PerCore {
		t += c.IPC
	}
	return t
}

// TotalInstructions sums retired instructions across cores.
func (r Results) TotalInstructions() uint64 {
	var t uint64
	for _, c := range r.PerCore {
		t += c.Instructions
	}
	return t
}

// LLCMPKI is LLC demand misses per kilo-instruction across all cores,
// normalised over the whole measurement window.
func (r Results) LLCMPKI() float64 {
	return r.LLC.MPKI(r.WindowInstructions)
}

// Coverage is the fraction of would-be misses eliminated by prefetching,
// computed against this run's own demand stream: useful prefetches over
// (demand misses + useful prefetches). With a deterministic trace this
// equals the paper's "covered misses / baseline misses" to within the
// second-order effect of prefetching perturbing residencies.
func (r Results) Coverage() float64 {
	denom := r.LLC.Misses + r.LLC.UsefulPrefetch
	if denom == 0 {
		return 0
	}
	return float64(r.LLC.UsefulPrefetch) / float64(denom)
}

// CoverageVsBaseline is the paper's Figure 7 metric: the fraction of the
// baseline (no-prefetcher) misses of the identical trace that the
// prefetcher eliminated — computed as miss reduction, which is robust to
// where in the warm-up/measurement window the covering prefetch was
// issued. Clamped to [0, 1] (a polluting prefetcher can increase misses).
func (r Results) CoverageVsBaseline(baselineMisses uint64) float64 {
	if baselineMisses == 0 {
		return 0
	}
	c := 1 - float64(r.LLC.Misses)/float64(baselineMisses)
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return c
}

// Overprediction is Figure 7's overprediction metric: prefetched blocks
// never used before eviction, normalised to baseline misses.
func (r Results) Overprediction(baselineMisses uint64) float64 {
	if baselineMisses == 0 {
		return 0
	}
	return float64(r.LLC.UnusedPrefetch) / float64(baselineMisses)
}

// Accuracy is useful prefetches over issued prefetch fills.
func (r Results) Accuracy() float64 {
	if r.LLC.PrefetchFills == 0 {
		return 0
	}
	return float64(r.LLC.UsefulPrefetch) / float64(r.LLC.PrefetchFills)
}

// String renders a compact human-readable summary. The self-relative
// coverage prints as selfcov= — it is computed against this run's own
// demand stream, not the baseline's misses (see Coverage vs
// CoverageVsBaseline); use StringWithBaseline when baseline misses are
// at hand for the paper's figure-7 definition.
func (r Results) String() string {
	return r.render(0)
}

// StringWithBaseline is String plus the baseline-relative coverage and
// overprediction line (the paper's Figure 7 metrics), computed against
// the supplied no-prefetcher miss count for the identical trace.
func (r Results) StringWithBaseline(baselineMisses uint64) string {
	return r.render(baselineMisses)
}

func (r Results) render(baselineMisses uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "prefetcher=%s storage=%dB\n", r.PrefetcherName, r.StorageBytes)
	for i, c := range r.PerCore {
		fmt.Fprintf(&b, "  core%d: instr=%d cycles=%d ipc=%.3f\n", i, c.Instructions, c.Cycles, c.IPC)
	}
	fmt.Fprintf(&b, "  llc: acc=%d miss=%d mpki=%.2f selfcov=%.1f%% acc(pf)=%.1f%%\n",
		r.LLC.Accesses, r.LLC.Misses, r.LLCMPKI(), r.Coverage()*100, r.Accuracy()*100)
	if baselineMisses > 0 {
		fmt.Fprintf(&b, "  vs-baseline: cov=%.1f%% overpred=%.1f%% (baseline miss=%d)\n",
			r.CoverageVsBaseline(baselineMisses)*100, r.Overprediction(baselineMisses)*100, baselineMisses)
	}
	if t := r.Timeliness; t.Issued > 0 {
		fmt.Fprintf(&b, "  pf: issued=%d fills=%d timely=%.1f%% late=%.1f%% unused=%.1f%% dropped=%d\n",
			t.Issued, t.Fills, t.TimelyFraction()*100, t.LateFraction()*100, t.UnusedFraction()*100, t.QueueDropped)
	}
	fmt.Fprintf(&b, "  dram: reads=%d writes=%d rowhit=%.1f%%\n",
		r.DRAM.Reads, r.DRAM.Writes, r.DRAM.RowHitRate()*100)
	return b.String()
}
