package system

import (
	"fmt"

	"bingo/internal/cache"
	"bingo/internal/cpu"
	"bingo/internal/dram"
	"bingo/internal/mem"
	"bingo/internal/prefetch"
	"bingo/internal/sched"
	"bingo/internal/telemetry"
	"bingo/internal/trace"
	"bingo/internal/vm"
)

// System is one assembled machine instance. Build it with New, provide a
// trace source per core, then call Run once.
//
// A System is driven by one goroutine from construction through Run.
// Under FrontendSerial that goroutine does everything; under
// FrontendParallel it fans the per-core frontends out to worker
// goroutines each cycle and drains their staged memory-side operations
// in core order at the barrier (see parallel.go) — results are
// byte-identical either way. Distinct System instances are fully
// independent and safe to run concurrently — the parallel experiment
// engine relies on this. Audit note: all mutable simulation state
// (caches, DRAM banks, translator RNG, prefetcher metadata, the
// replacement policy's RNG in internal/cache) hangs off the System built
// by New; neither this package nor its dependencies keep package-level
// mutable state, which is what keeps `go test -race` clean over the
// parallel harness.
type System struct {
	cfg Config
	// The translator synchronizes internally: workers use the read-only
	// Lookup fast path, and allocating Translate calls happen only on the
	// driver goroutine (serial loop or in-order drain), preserving the
	// first-touch RNG order.
	xlat *vm.Translator
	//conc:barrier-guarded the shared backstop; reached only from the serialized memory-side phase
	dram *dram.DRAM
	//conc:barrier-guarded the shared LLC; reached only from the serialized memory-side phase
	llc *cache.Cache
	//conc:core-local slice laid out once by New; element i is core i's private L1
	l1s []*cache.Cache
	//conc:core-local slice laid out once by New; element i is core i's frontend
	cores []*cpu.Core
	//conc:core-local slice laid out once by New; element i is core i's prefetcher
	pfs   []prefetch.Prefetcher
	clock uint64

	// lc tracks every prefetched block's lifecycle (issue → fill → use
	// or eviction). It is always on when a prefetcher is attached — the
	// counters are a handful of integer adds per prefetch event — so
	// timeliness lands in every Results. tel, when attached via
	// EnableTelemetry, additionally samples the epoch time-series; both
	// are pure observers and never change simulated state.
	//conc:barrier-guarded lifecycle probes fire only from the serialized memory-side phase
	lc *telemetry.Lifecycle
	//conc:barrier-guarded epoch sampling runs only at the clock-advance barrier
	tel *telemetry.Collector

	// Per-core in-flight prefetch completion times: the prefetch queue.
	// When a core's queue is full, further predictions are dropped —
	// exactly what a hardware prefetch queue does under bandwidth
	// pressure, and the mechanism that keeps an over-eager prefetcher
	// from monopolising DRAM. pfDropped counts drops per core (element i
	// is written by whichever goroutine runs core i's prefetch issue —
	// the worker in AttachL1 parallel mode, the driver otherwise — never
	// two at once); Results sums it.
	pfInflight [][]uint64
	pfDropped  []uint64

	// evictPFs is the deduplicated prefetcher list LLC evictions fan out
	// to (AttachLLC mode): precomputed once by New so a shared-metadata
	// factory — every core holding the same instance — costs one
	// notification per eviction instead of an O(cores²) duplicate scan.
	//conc:barrier-guarded LLC evictions fan out only during the serialized memory-side phase
	evictPFs []prefetch.Prefetcher

	// Run-progress state. Keeping it on the System (rather than local to
	// Run) is what makes a run pausable at any clock advance and
	// checkpointable mid-stream: phase records which budget the loop is
	// working toward, measureStart the cycle measurement began, and snaps
	// the per-core freeze frames taken as each core reaches its budget.
	phase        uint8
	measureStart uint64
	snaps        []coreSnapshot

	// hook, when set, observes every clock advance; returning true pauses
	// RunResumable at a checkpoint-safe boundary (no core has ticked at
	// the new cycle yet). Under the event engine advances jump, so a
	// hook watching for a threshold must compare with >=, not ==.
	//conc:barrier-guarded invoked only at the clock-advance barrier, never from core frontends
	hook func(cycle uint64) bool

	// engine selects the clock-advance strategy (see engine.go); queue
	// is the event engine's wakeup scheduler, built lazily at run entry,
	// and engineStats counts its advances and skipped cycles. coreNext
	// caches each core's exact next-event cycle: a core's deadline can
	// only change when that core ticks, so the loop refreshes the entry
	// at tick time and advanceClock just takes the min — the event
	// engine's poll-on-state-change discipline.
	engine Engine
	//conc:barrier-guarded the wakeup scheduler is consulted only at the clock-advance barrier
	queue       *sched.Queue
	engineStats EngineStats
	coreNext    []uint64

	// frontend selects serial vs parallel per-core execution (see
	// parallel.go); workers holds the per-core rendezvous endpoints while
	// a parallel run is inside runUntilMarkParallel and is nil otherwise
	// — the bridges test it to pick the staged or direct path.
	frontend Frontend
	//conc:barrier-guarded set before workers start and cleared after they stop; workers observe it through the happens-before of their own startup
	workers []*coreWorker

	san sanState // runtime invariant sanitizer (empty without -tags=san)
}

// Run phases. A freshly built system is in warm-up; measurement begins
// after the stats reset at the warm-up boundary; done means collect has
// everything it needs.
const (
	phaseWarmup uint8 = iota
	phaseMeasure
	phaseDone
)

// New assembles a system. sources must have one trace source per core;
// factory may be nil for the no-prefetcher baseline.
func New(cfg Config, sources []trace.Source, factory prefetch.Factory) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != cfg.NumCores {
		return nil, fmt.Errorf("system: %d trace sources for %d cores", len(sources), cfg.NumCores)
	}

	d, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	llc, err := cache.New(cfg.LLC, cache.MemoryLevel{Mem: d})
	if err != nil {
		return nil, err
	}
	xlat, err := vm.NewTranslator(cfg.MemoryBytes, cfg.PageBytes, cfg.Seed)
	if err != nil {
		return nil, err
	}

	s := &System{cfg: cfg, xlat: xlat, dram: d, llc: llc}

	if factory != nil {
		s.pfs = make([]prefetch.Prefetcher, cfg.NumCores)
		s.pfInflight = make([][]uint64, cfg.NumCores)
		s.pfDropped = make([]uint64, cfg.NumCores)
		s.lc = telemetry.NewLifecycle(cfg.NumCores)
		for i := range s.pfs {
			s.pfs[i] = factory(i)
			s.pfInflight[i] = make([]uint64, 0, cfg.PrefetchQueue)
		}
		// Deduplicate the eviction fan-out list once: a shared-metadata
		// factory hands every core the same instance, and scanning for
		// duplicates per eviction is O(cores²) at 64 cores.
		for i, p := range s.pfs {
			if s.sharedPFIndex(i) < 0 {
				s.evictPFs = append(s.evictPFs, p)
			}
		}
		if cfg.PrefetchAt == AttachLLC {
			llc.SetEvictionListener(evictionBroadcast{pfs: s.evictPFs})
			llc.SetOutcomeFunc(s.routeOutcome)
			llc.SetPrefetchProbe(s.lc)
		}
	}

	for i := 0; i < cfg.NumCores; i++ {
		l1cfg := cfg.L1
		l1cfg.Name = fmt.Sprintf("L1[%d]", i)
		l1, err := cache.New(l1cfg, memBridge{sys: s, core: i})
		if err != nil {
			return nil, err
		}
		s.l1s = append(s.l1s, l1)
		var port cache.Level = l1
		if s.pfs != nil && cfg.PrefetchAt == AttachL1 {
			// The prefetcher observes this core's L1 accesses and fills
			// into the L1; residencies end on L1 evictions.
			l1.SetEvictionListener(s.pfs[i])
			l1.SetOutcomeFunc(s.routeOutcome)
			l1.SetPrefetchProbe(s.lc)
			port = l1Port{sys: s, core: i, l1: l1}
		}
		core, err := cpu.New(cfg.Core, i, sources[i], xlatBridge{sys: s, core: i}, port)
		if err != nil {
			return nil, err
		}
		s.cores = append(s.cores, core)
	}
	return s, nil
}

// l1Port wraps a core's private L1 with its prefetcher (AttachL1 mode).
type l1Port struct {
	//conc:core-local a port serves exactly one core's demand stream
	sys  *System
	core int
	//conc:core-local points at the owning core's private L1
	l1 *cache.Cache
}

// Access implements cache.Level.
func (p l1Port) Access(now uint64, req cache.Request) cache.Result {
	s := p.sys
	hit := p.l1.Contains(req.Addr)
	res := p.l1.Access(now, req)
	pf := s.pfs[p.core]
	addrs := pf.OnAccess(prefetch.AccessEvent{
		Addr:  req.Addr,
		PC:    req.PC,
		Core:  req.Core,
		Write: req.Kind == cache.Write,
		Hit:   hit,
	})
	s.lc.Predicted(p.core, len(addrs))
	for i, a := range addrs {
		if !s.pfReserve(p.core, now) {
			s.pfDropped[p.core] += uint64(len(addrs) - i)
			s.lc.QueueDropped(p.core, len(addrs)-i)
			break
		}
		pres := p.l1.Access(now, cache.Request{Addr: a, PC: req.PC, Core: req.Core, Kind: cache.Prefetch})
		s.pfInflight[p.core] = append(s.pfInflight[p.core], pres.CompleteAt)
	}
	return res
}

// MustNew panics on configuration error.
func MustNew(cfg Config, sources []trace.Source, factory prefetch.Factory) *System {
	s, err := New(cfg, sources, factory)
	if err != nil {
		panic(err)
	}
	return s
}

// evictionBroadcast fans LLC evictions out to the unique prefetcher
// instances: each checks its own residency tracker (paper: private
// prefetchers, no metadata sharing). New precomputes the deduplicated
// list (s.evictPFs), so when a factory hands the same instance to
// several cores (the shared-metadata ablation) it is notified exactly
// once per eviction without a per-eviction duplicate scan.
type evictionBroadcast struct {
	//conc:barrier-guarded LLC evictions fan out only during the serialized memory-side phase
	pfs []prefetch.Prefetcher
}

func (b evictionBroadcast) OnEviction(addr mem.Addr) {
	for _, p := range b.pfs {
		p.OnEviction(addr)
	}
}

// llcPort is what each L1 forwards misses to: the shared LLC, with the
// requesting core's prefetcher observing every demand access and its
// predictions issued back into the LLC immediately (prefetch directly
// into the LLC, no prefetch buffer — paper §V-B).
type llcPort struct {
	//conc:barrier-guarded L1 misses reach the shared LLC only in the serialized memory-side phase
	sys *System
}

// Access implements cache.Level.
func (p llcPort) Access(now uint64, req cache.Request) cache.Result {
	s := p.sys
	hit := s.llc.Contains(req.Addr)
	res := s.llc.Access(now, req)
	if s.pfs == nil || req.Kind == cache.Prefetch || s.cfg.PrefetchAt != AttachLLC {
		return res
	}
	pf := s.pfs[req.Core]
	addrs := pf.OnAccess(prefetch.AccessEvent{
		Addr:  req.Addr,
		PC:    req.PC,
		Core:  req.Core,
		Write: req.Kind == cache.Write,
		Hit:   hit,
	})
	s.lc.Predicted(req.Core, len(addrs))
	for i, a := range addrs {
		if !s.pfReserve(req.Core, now) {
			s.pfDropped[req.Core] += uint64(len(addrs) - i)
			s.lc.QueueDropped(req.Core, len(addrs)-i)
			break
		}
		pres := s.llc.Access(now, cache.Request{Addr: a, PC: req.PC, Core: req.Core, Kind: cache.Prefetch})
		s.pfInflight[req.Core] = append(s.pfInflight[req.Core], pres.CompleteAt)
	}
	return res
}

// routeOutcome delivers a prefetched line's fate to the issuing core's
// prefetcher when it opted in via prefetch.OutcomeObserver.
func (s *System) routeOutcome(core int, useful bool) {
	if core < 0 || core >= len(s.pfs) {
		return
	}
	if obs, ok := s.pfs[core].(prefetch.OutcomeObserver); ok {
		obs.OnPrefetchOutcome(useful)
	}
}

// pfReserve admits a new in-flight prefetch for the core if its queue has
// room, compacting completed entries lazily.
func (s *System) pfReserve(core int, now uint64) bool {
	q := s.pfInflight[core]
	if len(q) < s.cfg.PrefetchQueue {
		return true
	}
	live := q[:0]
	for _, t := range q {
		if t > now {
			live = append(live, t)
		}
	}
	s.pfInflight[core] = live
	return len(live) < s.cfg.PrefetchQueue
}

// LLC exposes the shared cache (read-only use intended).
func (s *System) LLC() *cache.Cache { return s.llc }

// DRAM exposes the memory model.
func (s *System) DRAM() *dram.DRAM { return s.dram }

// Prefetchers returns the per-core prefetcher instances (nil when running
// the baseline).
func (s *System) Prefetchers() []prefetch.Prefetcher { return s.pfs }

// Cores returns the core models.
func (s *System) Cores() []*cpu.Core { return s.cores }

// Clock returns the current cycle.
func (s *System) Clock() uint64 { return s.clock }

// SetAdvanceHook installs f, called after every clock advance with the
// new cycle value. Returning true pauses RunResumable at that boundary —
// no core has ticked at the new cycle yet, which is the invariant that
// makes a checkpoint taken here resume exactly. The hook must not mutate
// simulation state (taking a checkpoint is read-only). Nil clears it.
func (s *System) SetAdvanceHook(f func(cycle uint64) bool) { s.hook = f }

// Run executes warm-up then measurement and returns the results. It may
// be called once per System (or once on a system restored from a
// checkpoint, which picks up in whatever phase the snapshot captured).
// It panics if an advance hook pauses the run; use RunResumable for
// pausable runs.
//
// Measurement follows the usual multi-programmed methodology: every core
// keeps executing (so shared-resource contention stays realistic) until
// all cores have retired their budget, but each core's instruction count
// and cycle interval are snapshotted the moment it reaches its own budget.
func (s *System) Run() Results {
	res, paused := s.RunResumable()
	if paused {
		panic("system: run paused by advance hook; use RunResumable")
	}
	return res
}

// RunWarmup advances through the warm-up phase only, leaving the system
// at the measurement boundary (stats reset, measurement clock marked).
// A checkpoint taken here is a warm-start artifact: restoring it and
// calling Run executes just the measurement phase.
func (s *System) RunWarmup() {
	if s.phase != phaseWarmup {
		panic("system: RunWarmup after warm-up already completed")
	}
	s.ensureScheduler()
	if s.cfg.WarmupInstr > 0 {
		if paused := s.runUntil(func(i int) bool {
			return s.cores[i].Stats().Instructions >= s.cfg.WarmupInstr
		}); paused {
			panic("system: warm-up paused by advance hook")
		}
	}
	s.enterMeasure()
}

// RunResumable is Run for pausable simulations: when the advance hook
// requests a pause it returns (zero Results, true), and the system can be
// checkpointed and later resumed — calling RunResumable (or Run) again,
// on this system or a restored copy, continues the identical simulation.
func (s *System) RunResumable() (Results, bool) {
	s.ensureScheduler()
	if s.phase == phaseWarmup {
		if s.cfg.WarmupInstr > 0 {
			if paused := s.runUntil(func(i int) bool {
				return s.cores[i].Stats().Instructions >= s.cfg.WarmupInstr
			}); paused {
				return Results{}, true
			}
		}
		s.enterMeasure()
	}
	if s.phase == phaseMeasure {
		paused := s.runUntilMark(func(i int) bool {
			return s.cores[i].Stats().Instructions >= s.cfg.MeasureInstr
		}, func(i int, cycle uint64) {
			if !s.snaps[i].taken {
				s.snaps[i] = coreSnapshot{taken: true, cycle: cycle, stats: s.cores[i].Stats(), l1: s.l1s[i].Stats()}
			}
		})
		if paused {
			return Results{}, true
		}
		for i := range s.snaps {
			if !s.snaps[i].taken { // trace exhausted before reaching budget
				s.snaps[i] = coreSnapshot{taken: true, cycle: s.clock, stats: s.cores[i].Stats(), l1: s.l1s[i].Stats()}
			}
		}
		s.sanAtRunEnd()
		if s.tel != nil {
			s.tel.Finish(s.clock, s.telTotals())
		}
		s.phase = phaseDone
	}
	return s.collect(s.measureStart, s.snaps), false
}

// enterMeasure performs the warm-up → measurement transition: reset every
// stats counter, mark the measurement start cycle, and allocate the
// per-core freeze frames.
func (s *System) enterMeasure() {
	for _, c := range s.cores {
		c.ResetStats()
	}
	for _, l1 := range s.l1s {
		l1.ResetStats()
	}
	s.llc.ResetStats()
	s.dram.ResetStats()
	if s.lc != nil {
		s.lc.Reset()
	}
	// The drop counters are measurement-window stats like everything else
	// reset here; without this they silently folded warm-up drops into
	// Results.PrefetchDropped (and broke the lifecycle conservation
	// identity QueueDropped == PrefetchDropped).
	for i := range s.pfDropped {
		s.pfDropped[i] = 0
	}
	s.measureStart = s.clock
	s.snaps = make([]coreSnapshot, len(s.cores))
	s.phase = phaseMeasure
	if s.tel != nil {
		s.tel.Begin(s.clock)
	}
}

// runUntil advances the clock until pred holds for every core or all
// cores drain, reporting whether the advance hook paused it first.
func (s *System) runUntil(pred func(core int) bool) bool {
	return s.runUntilMark(pred, func(int, uint64) {})
}

// runUntilMark additionally reports, once per core, the first cycle at
// which pred became true for it. Re-entry after a pause is exact: pred is
// monotone (retired instructions only grow, Done is sticky), so the
// per-core reached flags recompute to the same values they held when the
// pause hit, and mark-once idempotence is the caller's taken guard.
func (s *System) runUntilMark(pred func(core int) bool, mark func(core int, cycle uint64)) bool {
	if s.frontend == FrontendParallel && s.parallelOK() {
		return s.runUntilMarkParallel(pred, mark)
	}
	reached := make([]bool, len(s.cores))
	event := s.engine == EngineEvent
	if event {
		// Every core is due at loop entry, mirroring the lockstep loop's
		// unconditional tick on the first iteration (phase transitions and
		// resumes re-enter here at the current clock).
		for i := range s.coreNext {
			s.coreNext[i] = s.clock
		}
	}
	first := true
	for {
		allReached := true
		allDone := true
		for i, c := range s.cores {
			ticked := first
			if !c.Done() {
				allDone = false
				if event && s.coreNext[i] > s.clock {
					// The core's next event is still ahead: a full Tick
					// would be a no-op apart from the retire stage's
					// memory-stall count, so apply just that.
					c.IdleAt(s.clock)
				} else {
					c.Tick(s.clock)
					ticked = true
					if event {
						at := c.NextEventAt(s.clock)
						if at <= s.clock {
							panic(fmt.Sprintf("system: core %d scheduled a wakeup at cycle %d, at or before the current cycle %d", i, at, s.clock))
						}
						s.coreNext[i] = at
					}
				}
			}
			if !reached[i] {
				// pred depends only on state a Tick mutates (retired
				// instructions, Done) — never on IdleAt's stall count — so
				// between ticks its value is frozen and needs no re-check.
				if ticked && (pred(i) || c.Done()) {
					reached[i] = true
					mark(i, s.clock)
				} else {
					allReached = false
				}
			}
		}
		first = false
		if allReached || allDone {
			return false
		}
		prev := s.clock
		s.clock = s.advanceClock(prev)
		s.sanAtAdvance(prev, s.clock)
		if s.tel != nil && s.phase == phaseMeasure && s.tel.ShouldSample(s.clock) {
			s.tel.Sample(s.clock, s.telTotals())
		}
		if s.hook != nil && s.hook(s.clock) {
			return true
		}
	}
}

// EnableTelemetry attaches an epoch collector. The collector observes
// the same counters collect reads and never feeds back into simulation,
// so enabling it cannot change Results (the telemetry oracle tests pin
// this). Attach before Run for a full series; attaching after a restore
// that landed mid-measurement resynchronises the epoch grid to the
// measurement start, so a warm-started run reports the same series as a
// cold one. Panics if a different collector is already attached.
func (s *System) EnableTelemetry(c *telemetry.Collector) {
	if c == nil {
		s.tel = nil
		return
	}
	if s.tel != nil && s.tel != c {
		panic("system: telemetry collector already attached")
	}
	c.BindCores(len(s.cores))
	if s.lc != nil {
		c.BindLifecycle(s.lc)
	}
	s.tel = c
	if s.phase >= phaseMeasure {
		c.Resync(s.measureStart, s.clock)
	}
}

// Telemetry returns the attached collector (nil when telemetry is off).
func (s *System) Telemetry() *telemetry.Collector { return s.tel }

// Lifecycle returns the prefetch lifecycle tracker (nil for the
// no-prefetcher baseline).
func (s *System) Lifecycle() *telemetry.Lifecycle { return s.lc }

// telTotals snapshots the cumulative counters the epoch series is
// differenced over.
func (s *System) telTotals() telemetry.Totals {
	t := telemetry.Totals{
		PerCore: make([]cpu.Stats, len(s.cores)),
		LLC:     s.llc.Stats(),
		DRAM:    s.dram.Stats(),
	}
	for i, c := range s.cores {
		t.PerCore[i] = c.Stats()
	}
	return t
}
