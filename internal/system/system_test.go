package system

import (
	"testing"

	"bingo/internal/cache"
	"bingo/internal/cpu"
	"bingo/internal/dram"
	"bingo/internal/mem"
	"bingo/internal/prefetch"
	"bingo/internal/trace"
)

// tinyConfig is a small machine for fast, deterministic tests.
func tinyConfig() Config {
	return Config{
		NumCores: 2,
		Core:     cpu.Config{Width: 2, ROBSize: 32, LSQSize: 8},
		L1: cache.Config{
			Name: "L1", SizeBytes: 4 * 1024, Assoc: 4, HitLatency: 2, Policy: cache.LRU,
		},
		LLC: cache.Config{
			Name: "LLC", SizeBytes: 64 * 1024, Assoc: 8, HitLatency: 10, Policy: cache.LRU,
		},
		DRAM: dram.Config{
			Channels: 1, BanksPerChannel: 4, RowBytes: 4096,
			TCAS: 40, TRCD: 40, TRP: 40, TController: 10, BusCycles: 10,
		},
		MemoryBytes:   1 << 26,
		PageBytes:     4096,
		Seed:          1,
		WarmupInstr:   100,
		MeasureInstr:  1000,
		PrefetchQueue: 16,
	}
}

// seqTrace produces n sequential block loads.
func seqTrace(n int, stride uint64) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400, Addr: mem.Addr(uint64(i) * stride * 64), NonMem: 3}
	}
	return recs
}

func sources(perCore ...[]trace.Record) []trace.Source {
	out := make([]trace.Source, len(perCore))
	for i, recs := range perCore {
		out[i] = trace.NewSliceSource(recs)
	}
	return out
}

func TestValidation(t *testing.T) {
	cfg := tinyConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.NumCores = 0
	if bad.Validate() == nil {
		t.Error("zero cores should fail")
	}
	bad = cfg
	bad.MeasureInstr = 0
	if bad.Validate() == nil {
		t.Error("zero measurement budget should fail")
	}
	bad = cfg
	bad.PrefetchQueue = 0
	if bad.Validate() == nil {
		t.Error("zero prefetch queue should fail")
	}
	if _, err := New(cfg, nil, nil); err == nil {
		t.Error("wrong source count should fail")
	}
}

func TestBaselineRunProducesResults(t *testing.T) {
	cfg := tinyConfig()
	sys := MustNew(cfg, sources(seqTrace(2000, 1), seqTrace(2000, 1)), nil)
	res := sys.Run()
	if len(res.PerCore) != 2 {
		t.Fatalf("per-core results = %d", len(res.PerCore))
	}
	for i, c := range res.PerCore {
		if c.Instructions < cfg.MeasureInstr {
			t.Errorf("core %d retired %d < budget", i, c.Instructions)
		}
		if c.IPC <= 0 || c.IPC > float64(cfg.Core.Width) {
			t.Errorf("core %d IPC = %v out of range", i, c.IPC)
		}
	}
	if res.LLC.Accesses == 0 {
		t.Fatal("no LLC traffic")
	}
	if res.PrefetcherName != "none" {
		t.Fatalf("prefetcher name = %q", res.PrefetcherName)
	}
	if res.WindowInstructions < 2*cfg.MeasureInstr {
		t.Fatalf("window instructions = %d", res.WindowInstructions)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Results {
		sys := MustNew(tinyConfig(), sources(seqTrace(2000, 7), seqTrace(2000, 3)), nil)
		return sys.Run()
	}
	a, b := run(), run()
	if a.TotalCycles != b.TotalCycles || a.LLC != b.LLC || a.DRAM != b.DRAM {
		t.Fatal("identical configurations must produce identical results")
	}
}

// recordingPrefetcher issues next-line prefetches and records what it saw.
type recordingPrefetcher struct {
	accesses  int
	evictions int
}

func (p *recordingPrefetcher) Name() string { return "recording" }

func (p *recordingPrefetcher) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	p.accesses++
	return []mem.Addr{ev.Addr.BlockAlign() + 64}
}

func (p *recordingPrefetcher) OnEviction(mem.Addr) { p.evictions++ }

func (p *recordingPrefetcher) StorageBytes() int { return 123 }

func TestPrefetcherSeesLLCTraffic(t *testing.T) {
	var pfs []*recordingPrefetcher
	factory := func(core int) prefetch.Prefetcher {
		p := &recordingPrefetcher{}
		pfs = append(pfs, p)
		return p
	}
	cfg := tinyConfig()
	cfg.MeasureInstr = 10_000 // touch >LLC-capacity blocks so evictions happen
	sys := MustNew(cfg, sources(seqTrace(3000, 9), seqTrace(3000, 9)), factory)
	res := sys.Run()
	if len(pfs) != 2 {
		t.Fatalf("factory built %d instances", len(pfs))
	}
	for i, p := range pfs {
		if p.accesses == 0 {
			t.Errorf("prefetcher %d observed no accesses", i)
		}
		if p.evictions == 0 {
			t.Errorf("prefetcher %d observed no evictions (tiny LLC must evict)", i)
		}
	}
	if res.LLC.PrefetchIssued == 0 {
		t.Fatal("no prefetches reached the LLC")
	}
	if res.PrefetcherName != "recording" || res.StorageBytes != 123 {
		t.Fatalf("results identity: %q %d", res.PrefetcherName, res.StorageBytes)
	}
}

func TestNextLinePrefetchCoversSequentialStream(t *testing.T) {
	factory := func(core int) prefetch.Prefetcher { return &recordingPrefetcher{} }
	base := MustNew(tinyConfig(), sources(seqTrace(5000, 1), seqTrace(5000, 1)), nil).Run()
	res := MustNew(tinyConfig(), sources(seqTrace(5000, 1), seqTrace(5000, 1)), factory).Run()
	if res.LLC.UsefulPrefetch == 0 {
		t.Fatal("next-line prefetching a sequential stream must be useful")
	}
	if res.Coverage() <= 0.3 {
		t.Fatalf("coverage = %v", res.Coverage())
	}
	if res.LLC.Misses >= base.LLC.Misses {
		t.Fatalf("prefetching did not reduce misses: %d vs %d", res.LLC.Misses, base.LLC.Misses)
	}
}

// floodPrefetcher issues many prefetches per access to exercise the queue.
type floodPrefetcher struct{}

func (floodPrefetcher) Name() string { return "flood" }

func (floodPrefetcher) OnAccess(ev prefetch.AccessEvent) []mem.Addr {
	out := make([]mem.Addr, 64)
	for i := range out {
		out[i] = ev.Addr.BlockAlign() + mem.Addr((i+1)*64)
	}
	return out
}

func (floodPrefetcher) OnEviction(mem.Addr) {}

func (floodPrefetcher) StorageBytes() int { return 0 }

func TestPrefetchQueueDropsExcess(t *testing.T) {
	factory := func(int) prefetch.Prefetcher { return floodPrefetcher{} }
	sys := MustNew(tinyConfig(), sources(seqTrace(3000, 16), seqTrace(3000, 16)), factory)
	res := sys.Run()
	if res.PrefetchDropped == 0 {
		t.Fatal("a 64-deep burst into a 16-entry queue must drop prefetches")
	}
}

func TestResultsMetrics(t *testing.T) {
	r := Results{
		PerCore: []CoreResult{{IPC: 1.5, Instructions: 100}, {IPC: 0.5, Instructions: 100}},
		LLC: cache.Stats{
			Misses: 50, UsefulPrefetch: 50, PrefetchFills: 100, UnusedPrefetch: 25,
		},
		WindowInstructions: 200,
	}
	if r.Throughput() != 2.0 {
		t.Fatalf("Throughput = %v", r.Throughput())
	}
	if r.TotalInstructions() != 200 {
		t.Fatalf("TotalInstructions = %v", r.TotalInstructions())
	}
	if r.Coverage() != 0.5 {
		t.Fatalf("Coverage = %v", r.Coverage())
	}
	// Miss reduction: 50 misses against 100 baseline misses = 50% covered.
	if r.CoverageVsBaseline(100) != 0.5 {
		t.Fatalf("CoverageVsBaseline = %v", r.CoverageVsBaseline(100))
	}
	if r.CoverageVsBaseline(10) != 0 {
		t.Fatal("more misses than baseline should clamp to 0, not go negative")
	}
	if r.CoverageVsBaseline(0) != 0 {
		t.Fatal("zero baseline should not divide")
	}
	if r.Overprediction(100) != 0.25 {
		t.Fatalf("Overprediction = %v", r.Overprediction(100))
	}
	if r.Accuracy() != 0.5 {
		t.Fatalf("Accuracy = %v", r.Accuracy())
	}
	if r.LLCMPKI() != 250 {
		t.Fatalf("LLCMPKI = %v", r.LLCMPKI())
	}
	if r.String() == "" {
		t.Fatal("String should render")
	}
}

func TestTraceExhaustionEndsRun(t *testing.T) {
	// Traces shorter than the measurement budget must still terminate.
	cfg := tinyConfig()
	cfg.MeasureInstr = 1 << 40
	sys := MustNew(cfg, sources(seqTrace(500, 1), seqTrace(100, 1)), nil)
	res := sys.Run()
	if res.PerCore[0].Instructions == 0 {
		t.Fatal("no instructions measured")
	}
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumCores != 4 || cfg.Core.Width != 4 || cfg.Core.ROBSize != 256 || cfg.Core.LSQSize != 64 {
		t.Fatalf("core config deviates from Table I: %+v", cfg.Core)
	}
	if cfg.L1.SizeBytes != 64*1024 || cfg.L1.Assoc != 8 {
		t.Fatalf("L1 config deviates from Table I: %+v", cfg.L1)
	}
	if cfg.LLC.SizeBytes != 8<<20 || cfg.LLC.Assoc != 16 || cfg.LLC.HitLatency != 15 {
		t.Fatalf("LLC config deviates from Table I: %+v", cfg.LLC)
	}
	scaled := cfg.Scaled(1, 2)
	if scaled.WarmupInstr != 1 || scaled.MeasureInstr != 2 {
		t.Fatal("Scaled did not apply budgets")
	}
}

func TestAttachL1Mode(t *testing.T) {
	var pfs []*recordingPrefetcher
	factory := func(core int) prefetch.Prefetcher {
		p := &recordingPrefetcher{}
		pfs = append(pfs, p)
		return p
	}
	cfg := tinyConfig()
	cfg.PrefetchAt = AttachL1
	cfg.MeasureInstr = 10_000
	sys := MustNew(cfg, sources(seqTrace(3000, 9), seqTrace(3000, 9)), factory)
	res := sys.Run()
	for i, p := range pfs {
		if p.accesses == 0 {
			t.Errorf("prefetcher %d saw no L1 accesses", i)
		}
		if p.evictions == 0 {
			t.Errorf("prefetcher %d saw no L1 evictions (4 KB L1 must evict)", i)
		}
	}
	// Prefetch fills land in the L1s (missing ones transit the LLC too).
	l1Fills := uint64(0)
	for _, s := range res.L1 {
		l1Fills += s.PrefetchFills
	}
	if l1Fills == 0 {
		t.Fatal("no prefetch fills reached the L1s")
	}
	if AttachL1.String() != "L1" || AttachLLC.String() != "LLC" {
		t.Fatal("attach level names wrong")
	}
}

// feedbackPrefetcher records outcome feedback routed by the system.
type feedbackPrefetcher struct {
	recordingPrefetcher
	useful, unused int
}

func (p *feedbackPrefetcher) OnPrefetchOutcome(useful bool) {
	if useful {
		p.useful++
	} else {
		p.unused++
	}
}

func TestOutcomeRouting(t *testing.T) {
	var pfs []*feedbackPrefetcher
	factory := func(core int) prefetch.Prefetcher {
		p := &feedbackPrefetcher{}
		pfs = append(pfs, p)
		return p
	}
	cfg := tinyConfig()
	cfg.MeasureInstr = 10_000
	sys := MustNew(cfg, sources(seqTrace(3000, 1), seqTrace(3000, 1)), factory)
	res := sys.Run()
	if res.LLC.UsefulPrefetch == 0 {
		t.Fatal("expected useful prefetches on a sequential stream")
	}
	gotUseful := 0
	for _, p := range pfs {
		gotUseful += p.useful
	}
	if gotUseful == 0 {
		t.Fatal("useful outcomes were not routed back to the prefetchers")
	}
}
