// Package system assembles cores, private L1 data caches, the shared LLC,
// DRAM, address translation, and per-core prefetchers into the simulated
// machine of the paper's Table I, and runs the simulation loop that
// produces per-core IPC and memory-system statistics. The loop has two
// byte-identical clock-advance strategies (engine.go): lockstep ticking
// of every cycle (the default) and event-driven cycle skipping over the
// shared wakeup scheduler (internal/sched).
package system

import (
	"fmt"

	"bingo/internal/cache"
	"bingo/internal/cpu"
	"bingo/internal/dram"
	"bingo/internal/vm"
)

// Config describes the whole simulated machine.
type Config struct {
	NumCores int
	Core     cpu.Config
	L1       cache.Config
	LLC      cache.Config
	DRAM     dram.Config
	// MemoryBytes sizes physical memory for the translator.
	MemoryBytes uint64
	// PageBytes is the OS page size for translation (4 KB in the paper).
	PageBytes uint64
	// Seed drives the random first-touch translation (and nothing else;
	// workload generators carry their own seeds).
	Seed int64
	// WarmupInstr / MeasureInstr are per-core instruction budgets. After
	// each core retires WarmupInstr, statistics are reset and measurement
	// runs until MeasureInstr more retire (or the trace ends).
	WarmupInstr  uint64
	MeasureInstr uint64
	// PrefetchQueue caps in-flight prefetches per core; predictions beyond
	// it are dropped, bounding the bandwidth an inaccurate prefetcher can
	// burn (hardware prefetch-queue semantics).
	PrefetchQueue int
	// PrefetchAt selects where prefetchers attach. The paper's choice is
	// the LLC (§V-B: long region residency lets footprints be observed
	// completely); AttachL1 exists for the attach-level ablation.
	PrefetchAt AttachLevel
}

// AttachLevel selects the cache level prefetchers observe and fill.
type AttachLevel int

const (
	// AttachLLC is the paper's configuration.
	AttachLLC AttachLevel = iota
	// AttachL1 observes each core's L1 accesses and fills into the L1.
	AttachL1
)

// String names the attach level.
func (l AttachLevel) String() string {
	if l == AttachL1 {
		return "L1"
	}
	return "LLC"
}

// DefaultConfig reproduces Table I: four 4-wide OoO cores with 256-entry
// ROBs and 64-entry LSQs, 64 KB 8-way L1D (4-cycle), 8 MB 16-way shared
// LLC (15-cycle), two DRAM channels at 37.5 GB/s and 60 ns zero-load
// latency, 4 KB OS pages with random first-touch translation.
func DefaultConfig() Config {
	return Config{
		NumCores: 4,
		Core:     cpu.DefaultConfig(),
		L1: cache.Config{
			Name:       "L1",
			SizeBytes:  64 * 1024,
			Assoc:      8,
			HitLatency: 4,
			Policy:     cache.LRU,
		},
		LLC: cache.Config{
			Name:       "LLC",
			SizeBytes:  8 * 1024 * 1024,
			Assoc:      16,
			HitLatency: 15,
			Policy:     cache.LRU,
		},
		DRAM:          dram.Default4GHz(),
		MemoryBytes:   4 << 30,
		PageBytes:     vm.DefaultPageSize,
		Seed:          42,
		WarmupInstr:   1_500_000,
		MeasureInstr:  1_500_000,
		PrefetchQueue: 64,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumCores <= 0 {
		return fmt.Errorf("system: core count must be positive")
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.LLC.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.MeasureInstr == 0 {
		return fmt.Errorf("system: measurement instruction budget must be positive")
	}
	if c.PrefetchQueue <= 0 {
		return fmt.Errorf("system: prefetch queue size must be positive")
	}
	return nil
}

// Scaled returns a copy with per-core instruction budgets scaled by f,
// used by fast test/bench configurations.
func (c Config) Scaled(warmup, measure uint64) Config {
	c.WarmupInstr = warmup
	c.MeasureInstr = measure
	return c
}

// WithCores returns a copy of c resized to n cores with the shared
// resources scaled the way Table I would extrapolate: the LLC keeps
// 2 MB per core (8 MB at the paper's 4), DRAM channel count doubles
// with each doubling of cores past the baseline pair so per-core
// bandwidth stays constant (channel counts must remain powers of two),
// and physical memory keeps 1 GB per core so the random first-touch
// translator never runs out of real frames. Per-core structures (L1,
// ROB/LSQ, prefetch queue) are per-core already and stay untouched.
// WithCores(4) equals DefaultConfig — the scaling is anchored there.
func (c Config) WithCores(n int) Config {
	c.NumCores = n
	c.LLC.SizeBytes = n * 2 * 1024 * 1024
	channels := 2
	for channels*2 <= n/2 {
		channels *= 2
	}
	c.DRAM.Channels = channels
	c.MemoryBytes = uint64(n) << 30
	return c
}
