//go:build san

package system

import "bingo/internal/san"

// sanState is the per-system checker state of the runtime invariant
// sanitizer (build tag `san`).
type sanState struct{}

// sanAtAdvance verifies the lockstep clock is strictly monotone and the
// per-core prefetch queues respect their configured bound. Called on
// every clock advance of the simulation loop.
func (s *System) sanAtAdvance(prev, next uint64) {
	if !san.Enabled() {
		return
	}
	if next <= prev {
		san.Failf("system", next, san.SysClock,
			"clock advanced from %d to %d (must be strictly increasing)", prev, next)
	}
	for i := range s.pfInflight {
		if len(s.pfInflight[i]) > s.cfg.PrefetchQueue {
			san.Failf("system", next, san.SysEvents,
				"core %d prefetch queue holds %d in-flight entries, capacity %d",
				i, len(s.pfInflight[i]), s.cfg.PrefetchQueue)
		}
	}
}

// sanAtRunEnd closes the end-to-end event-conservation equations once the
// simulation loop has drained: every demand access a core dispatched is an
// L1 access, and every L1 demand miss is exactly one LLC demand access
// (the hierarchy is synchronous — there is no queue to lose requests in).
func (s *System) sanAtRunEnd() {
	if !san.Enabled() {
		return
	}
	now := s.clock
	var l1Misses uint64
	for i, l1 := range s.l1s {
		st := l1.Stats()
		l1Misses += st.Misses
		cs := s.cores[i].Stats()
		if st.Accesses != cs.Loads+cs.Stores {
			san.Failf("system", now, san.SysEvents,
				"core %d dispatched %d demand ops (loads %d + stores %d) but its L1 saw %d accesses",
				i, cs.Loads+cs.Stores, cs.Loads, cs.Stores, st.Accesses)
		}
	}
	if llc := s.llc.Stats(); llc.Accesses != l1Misses {
		san.Failf("system", now, san.SysEvents,
			"LLC saw %d demand accesses but the L1s missed %d times", llc.Accesses, l1Misses)
	}
}
