//go:build san

package system

import "bingo/internal/san"

// sanState is the per-system checker state of the runtime invariant
// sanitizer (build tag `san`).
type sanState struct{}

// sanConservativeSkips reports whether the event engine should take
// maximally conservative skips (clamped to the passive wakers too, not
// just the cores) so the skip audit below is a strict invariant. True
// exactly when the sanitizer is enabled; the engines stay byte-identical
// either way, which the san/non-san differential oracle re-proves.
func (s *System) sanConservativeSkips() bool { return san.Enabled() }

// sanAtAdvance verifies the simulation clock is strictly monotone, the
// per-core prefetch queues respect their configured bound, and — under
// the event engine — that no registered waker had a pending event inside
// a skipped clock gap. Called on every clock advance of the simulation
// loop.
func (s *System) sanAtAdvance(prev, next uint64) {
	if !san.Enabled() {
		return
	}
	if next <= prev {
		san.Failf("system", next, san.SysClock,
			"clock advanced from %d to %d (must be strictly increasing)", prev, next)
	}
	for i := range s.pfInflight {
		if len(s.pfInflight[i]) > s.cfg.PrefetchQueue {
			san.Failf("system", next, san.SysEvents,
				"core %d prefetch queue holds %d in-flight entries, capacity %d",
				i, len(s.pfInflight[i]), s.cfg.PrefetchQueue)
		}
	}
	if s.engine == EngineEvent && next > prev+1 && s.queue != nil {
		// Skip audit (DESIGN.md §6b): the event engine claims nothing
		// happens strictly inside (prev, next). Re-poll every waker and
		// fail if any reports a pending event inside the gap the clock is
		// about to jump over — that would mean a component transition was
		// silently lost and the engines could diverge.
		s.queue.Audit(prev, next, func(name string, at uint64) {
			san.Failf("system", next, san.SysSkip,
				"event engine skipping %d -> %d over a pending wakeup: %s at cycle %d",
				prev, next, name, at)
		})
	}
}

// sanAtRunEnd closes the end-to-end event-conservation equations once the
// simulation loop has drained: every demand access a core dispatched is an
// L1 access, and every L1 demand miss is exactly one LLC demand access
// (the hierarchy is synchronous — there is no queue to lose requests in).
func (s *System) sanAtRunEnd() {
	if !san.Enabled() {
		return
	}
	now := s.clock
	var l1Misses uint64
	for i, l1 := range s.l1s {
		st := l1.Stats()
		l1Misses += st.Misses
		cs := s.cores[i].Stats()
		if st.Accesses != cs.Loads+cs.Stores {
			san.Failf("system", now, san.SysEvents,
				"core %d dispatched %d demand ops (loads %d + stores %d) but its L1 saw %d accesses",
				i, cs.Loads+cs.Stores, cs.Loads, cs.Stores, st.Accesses)
		}
	}
	if llc := s.llc.Stats(); llc.Accesses != l1Misses {
		san.Failf("system", now, san.SysEvents,
			"LLC saw %d demand accesses but the L1s missed %d times", llc.Accesses, l1Misses)
	}
}
