//go:build !san

package system

// sanState is the per-system checker state of the runtime invariant
// sanitizer. Without the `san` build tag it is empty and the hooks are
// no-ops the compiler inlines away. See internal/san and sancheck_san.go.
type sanState struct{}

func (s *System) sanAtAdvance(prev, next uint64) {}

func (s *System) sanConservativeSkips() bool { return false }

func (s *System) sanAtRunEnd() {}
