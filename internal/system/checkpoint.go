package system

import (
	"fmt"
	"io"

	"bingo/internal/checkpoint"
)

// Section IDs of a system checkpoint, in write order: metadata, the
// system-level loop state, then one section per stateful component.
// Per-core sections are indexed ("cpu[0]", "pf[2]", ...).
const (
	sectionMeta   = "meta"
	sectionSystem = "system"
	sectionVM     = "vm"
	sectionDRAM   = "dram"
	sectionLLC    = "llc"
)

func sectionL1(core int) string  { return fmt.Sprintf("l1[%d]", core) }
func sectionCPU(core int) string { return fmt.Sprintf("cpu[%d]", core) }
func sectionPF(core int) string  { return fmt.Sprintf("pf[%d]", core) }

// Prefetcher section payload kinds: a full serialisation, or a reference
// to an earlier core's section when a factory shares one instance across
// cores (the shared-metadata ablation) — the instance is serialised once.
const (
	pfKindFull uint8 = iota
	pfKindRef
)

// saveSections registers every section of this system's checkpoint with
// fw. It is the single source of truth for the container layout, shared
// by SaveCheckpoint and CheckpointSchema.
func (s *System) saveSections(fw *checkpoint.FileWriter) error {
	add := func(id string, save func(*checkpoint.Writer) error) error {
		return fw.Add(id, save)
	}
	if err := add(sectionMeta, func(w *checkpoint.Writer) error {
		w.Version(1)
		w.String(fmt.Sprintf("%+v", s.cfg))
		name := "none"
		if s.pfs != nil {
			name = s.pfs[0].Name()
		}
		w.String(name)
		w.Int(len(s.cores))
		return w.Err()
	}); err != nil {
		return err
	}
	if err := add(sectionSystem, func(w *checkpoint.Writer) error {
		w.Version(1)
		w.U64(s.clock)
		w.U8(s.phase)
		w.U64(s.measureStart)
		w.U64(s.pfDropped)
		// Freeze frames (empty until measurement begins).
		taken := make([]bool, len(s.snaps))
		cycles := make([]uint64, len(s.snaps))
		instrs := make([]uint64, len(s.snaps))
		memOps := make([]uint64, len(s.snaps))
		loads := make([]uint64, len(s.snaps))
		stores := make([]uint64, len(s.snaps))
		stalls := make([]uint64, len(s.snaps))
		for i, sn := range s.snaps {
			taken[i] = sn.taken
			cycles[i] = sn.cycle
			instrs[i] = sn.stats.Instructions
			memOps[i] = sn.stats.MemOps
			loads[i] = sn.stats.Loads
			stores[i] = sn.stats.Stores
			stalls[i] = sn.stats.MemStall
		}
		w.Bools(taken)
		w.U64s(cycles)
		w.U64s(instrs)
		w.U64s(memOps)
		w.U64s(loads)
		w.U64s(stores)
		w.U64s(stalls)
		// Per-core prefetch queues, flattened with a length column.
		lens := make([]int, len(s.pfInflight))
		var flat []uint64
		for i, q := range s.pfInflight {
			lens[i] = len(q)
			flat = append(flat, q...)
		}
		w.Ints(lens)
		w.U64s(flat)
		return w.Err()
	}); err != nil {
		return err
	}
	if err := add(sectionVM, s.xlat.SaveState); err != nil {
		return err
	}
	if err := add(sectionDRAM, s.dram.SaveState); err != nil {
		return err
	}
	if err := add(sectionLLC, s.llc.SaveState); err != nil {
		return err
	}
	for i := range s.cores {
		if err := add(sectionL1(i), s.l1s[i].SaveState); err != nil {
			return err
		}
		if err := add(sectionCPU(i), s.cores[i].SaveState); err != nil {
			return err
		}
	}
	for i := range s.pfs {
		i := i
		if err := add(sectionPF(i), func(w *checkpoint.Writer) error {
			w.Version(1)
			if j := s.sharedPFIndex(i); j >= 0 {
				w.U8(pfKindRef)
				w.Int(j)
				return w.Err()
			}
			w.U8(pfKindFull)
			ck, ok := s.pfs[i].(checkpoint.Checkpointable)
			if !ok {
				return fmt.Errorf("system: prefetcher %q is not checkpointable", s.pfs[i].Name())
			}
			return ck.SaveState(w)
		}); err != nil {
			return err
		}
	}
	return nil
}

// sharedPFIndex returns the lowest earlier core index holding the same
// prefetcher instance as core i, or -1 when core i's instance is its own.
func (s *System) sharedPFIndex(i int) int {
	for j := 0; j < i; j++ {
		if s.pfs[j] == s.pfs[i] {
			return j
		}
	}
	return -1
}

// SaveCheckpoint serialises the complete simulation state to out. The
// system remains runnable — checkpointing is read-only — so a run can
// save periodic snapshots while completing normally.
func (s *System) SaveCheckpoint(out io.Writer) error {
	fw := checkpoint.NewFileWriter()
	if err := s.saveSections(fw); err != nil {
		return err
	}
	_, err := fw.WriteTo(out)
	return err
}

// CheckpointSchema returns the section layout a checkpoint of this system
// would have: ids and field type strings. The golden-schema test pins it.
func (s *System) CheckpointSchema() ([]checkpoint.SectionSchema, error) {
	fw := checkpoint.NewFileWriter()
	if err := s.saveSections(fw); err != nil {
		return nil, err
	}
	return fw.Schema(), nil
}

// LoadCheckpoint restores a snapshot into this freshly built system. The
// system must have been assembled with the identical configuration,
// trace sources, and prefetcher factory as the one that saved it; the
// metadata section cross-checks what it can and everything restored is
// structurally validated before commit. On error the system is in an
// undefined state and must be discarded.
func (s *System) LoadCheckpoint(in io.Reader) error {
	if s.clock != 0 || s.phase != phaseWarmup {
		return fmt.Errorf("system: checkpoint restore requires a freshly built system")
	}
	fr, err := checkpoint.NewFileReader(in)
	if err != nil {
		return err
	}

	// The section list must match this system's layout exactly — a
	// snapshot from a differently shaped machine is rejected up front.
	fw := checkpoint.NewFileWriter()
	if err := s.saveSections(fw); err != nil {
		return err
	}
	want := fw.Schema()
	got := fr.Sections()
	if len(got) != len(want) {
		return fmt.Errorf("system: checkpoint holds %d sections, this machine writes %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i].ID {
			return fmt.Errorf("system: checkpoint section %d is %q, want %q", i, got[i], want[i].ID)
		}
	}

	section := func(id string) (*checkpoint.Reader, error) { return fr.Section(id) }

	r, err := section(sectionMeta)
	if err != nil {
		return err
	}
	r.Version(1)
	cfgString := r.String()
	pfName := r.String()
	numCores := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}
	if want := fmt.Sprintf("%+v", s.cfg); cfgString != want {
		return fmt.Errorf("system: checkpoint was taken with config %s, this machine has %s", cfgString, want)
	}
	wantName := "none"
	if s.pfs != nil {
		wantName = s.pfs[0].Name()
	}
	if pfName != wantName {
		return fmt.Errorf("system: checkpoint was taken with prefetcher %q, this machine runs %q", pfName, wantName)
	}
	if numCores != len(s.cores) {
		return fmt.Errorf("system: checkpoint machine had %d cores, this one has %d", numCores, len(s.cores))
	}

	r, err = section(sectionSystem)
	if err != nil {
		return err
	}
	r.Version(1)
	clock := r.U64()
	phase := r.U8()
	measureStart := r.U64()
	pfDropped := r.U64()
	taken := r.Bools()
	cycles := r.U64s()
	instrs := r.U64s()
	memOps := r.U64s()
	loads := r.U64s()
	stores := r.U64s()
	stalls := r.U64s()
	lens := r.Ints()
	flat := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}
	if phase > phaseDone {
		return fmt.Errorf("system: checkpoint phase %d unknown", phase)
	}
	if measureStart > clock {
		return fmt.Errorf("system: checkpoint measurement start %d beyond clock %d", measureStart, clock)
	}
	nSnaps := 0
	if phase >= phaseMeasure {
		nSnaps = len(s.cores)
	}
	if len(taken) != nSnaps || len(cycles) != nSnaps || len(instrs) != nSnaps ||
		len(memOps) != nSnaps || len(loads) != nSnaps || len(stores) != nSnaps || len(stalls) != nSnaps {
		return fmt.Errorf("system: checkpoint snapshot columns hold %d cores, want %d in phase %d", len(taken), nSnaps, phase)
	}
	if len(lens) != len(s.pfInflight) {
		return fmt.Errorf("system: checkpoint prefetch queues cover %d cores, machine has %d", len(lens), len(s.pfInflight))
	}
	total := 0
	for i, n := range lens {
		if n < 0 || n > s.cfg.PrefetchQueue {
			return fmt.Errorf("system: checkpoint prefetch queue %d holds %d entries, cap %d", i, n, s.cfg.PrefetchQueue)
		}
		total += n
	}
	if total != len(flat) {
		return fmt.Errorf("system: checkpoint prefetch queue column holds %d entries, lengths sum to %d", len(flat), total)
	}

	load := func(id string, c checkpoint.Checkpointable) error {
		r, err := section(id)
		if err != nil {
			return err
		}
		if err := c.LoadState(r); err != nil {
			return fmt.Errorf("section %s: %w", id, err)
		}
		if err := r.Close(); err != nil {
			return fmt.Errorf("section %s: %w", id, err)
		}
		return nil
	}
	if err := load(sectionVM, s.xlat); err != nil {
		return err
	}
	if err := load(sectionDRAM, s.dram); err != nil {
		return err
	}
	if err := load(sectionLLC, s.llc); err != nil {
		return err
	}
	for i := range s.cores {
		if err := load(sectionL1(i), s.l1s[i]); err != nil {
			return err
		}
		if err := load(sectionCPU(i), s.cores[i]); err != nil {
			return err
		}
	}
	for i := range s.pfs {
		r, err := section(sectionPF(i))
		if err != nil {
			return err
		}
		r.Version(1)
		kind := r.U8()
		switch kind {
		case pfKindRef:
			j := r.Int()
			if err := r.Err(); err != nil {
				return err
			}
			// The fresh factory must share instances exactly as the saved
			// one did, or the snapshot's aliasing is unreproducible.
			if j != s.sharedPFIndex(i) {
				return fmt.Errorf("system: checkpoint shares prefetcher %d with core %d, this machine does not", i, j)
			}
		case pfKindFull:
			if err := r.Err(); err != nil {
				return err
			}
			if s.sharedPFIndex(i) >= 0 {
				return fmt.Errorf("system: checkpoint holds a private prefetcher for core %d, this machine shares it", i)
			}
			ck, ok := s.pfs[i].(checkpoint.Checkpointable)
			if !ok {
				return fmt.Errorf("system: prefetcher %q is not checkpointable", s.pfs[i].Name())
			}
			if err := ck.LoadState(r); err != nil {
				return fmt.Errorf("section %s: %w", sectionPF(i), err)
			}
		default:
			return fmt.Errorf("system: checkpoint prefetcher section kind %d unknown", kind)
		}
		if err := r.Close(); err != nil {
			return fmt.Errorf("section %s: %w", sectionPF(i), err)
		}
	}

	// Commit the system-level state last: everything below here is
	// already validated.
	s.clock = clock
	s.phase = phase
	s.measureStart = measureStart
	s.pfDropped = pfDropped
	if phase >= phaseMeasure {
		s.snaps = make([]coreSnapshot, len(s.cores))
		for i := range s.snaps {
			s.snaps[i] = coreSnapshot{taken: taken[i], cycle: cycles[i]}
			s.snaps[i].stats.Instructions = instrs[i]
			s.snaps[i].stats.MemOps = memOps[i]
			s.snaps[i].stats.Loads = loads[i]
			s.snaps[i].stats.Stores = stores[i]
			s.snaps[i].stats.MemStall = stalls[i]
		}
	}
	off := 0
	for i, n := range lens {
		s.pfInflight[i] = append(s.pfInflight[i][:0], flat[off:off+n]...)
		off += n
	}
	return nil
}
