package system

import (
	"fmt"
	"io"

	"bingo/internal/checkpoint"
	"bingo/internal/telemetry"
)

// Section IDs of a system checkpoint, in write order: metadata, the
// system-level loop state, then one section per stateful component, and
// finally the telemetry collector. Per-core sections are indexed
// ("cpu[0]", "pf[2]", ...). The telemetry section is present in every
// checkpoint — a disabled collector writes a placeholder body — so the
// container layout does not depend on observability flags and a
// warm-start artifact saved without telemetry restores cleanly into a
// telemetry-enabled run (and vice versa).
const (
	sectionMeta      = "meta"
	sectionSystem    = "system"
	sectionVM        = "vm"
	sectionDRAM      = "dram"
	sectionLLC       = "llc"
	sectionTelemetry = "telemetry"
)

func sectionL1(core int) string  { return fmt.Sprintf("l1[%d]", core) }
func sectionCPU(core int) string { return fmt.Sprintf("cpu[%d]", core) }
func sectionPF(core int) string  { return fmt.Sprintf("pf[%d]", core) }

// Prefetcher section payload kinds: a full serialisation, or a reference
// to an earlier core's section when a factory shares one instance across
// cores (the shared-metadata ablation) — the instance is serialised once.
const (
	pfKindFull uint8 = iota
	pfKindRef
)

// saveSections registers every section of this system's checkpoint with
// fw. It is the single source of truth for the container layout, shared
// by SaveCheckpoint and CheckpointSchema.
func (s *System) saveSections(fw *checkpoint.FileWriter) error {
	add := func(id string, save func(*checkpoint.Writer) error) error {
		return fw.Add(id, save)
	}
	if err := add(sectionMeta, func(w *checkpoint.Writer) error {
		w.Version(1)
		w.String(fmt.Sprintf("%+v", s.cfg))
		name := "none"
		if s.pfs != nil {
			name = s.pfs[0].Name()
		}
		w.String(name)
		w.Int(len(s.cores))
		return w.Err()
	}); err != nil {
		return err
	}
	if err := add(sectionSystem, func(w *checkpoint.Writer) error {
		// v3: pfDropped became a per-core column (one counter per core so
		// parallel frontends never contend on a shared drop counter).
		w.Version(3)
		w.U64(s.clock)
		w.U8(s.phase)
		w.U64(s.measureStart)
		w.U64s(s.pfDropped)
		// Freeze frames (empty until measurement begins). v2 freezes the
		// per-core L1 stats alongside the CPU stats — collect reads the
		// frame, so a restored run must reproduce it exactly.
		taken := make([]bool, len(s.snaps))
		snapU64 := func(get func(coreSnapshot) uint64) {
			col := make([]uint64, len(s.snaps))
			for i, sn := range s.snaps {
				col[i] = get(sn)
			}
			w.U64s(col)
		}
		for i, sn := range s.snaps {
			taken[i] = sn.taken
		}
		w.Bools(taken)
		snapU64(func(sn coreSnapshot) uint64 { return sn.cycle })
		snapU64(func(sn coreSnapshot) uint64 { return sn.stats.Instructions })
		snapU64(func(sn coreSnapshot) uint64 { return sn.stats.MemOps })
		snapU64(func(sn coreSnapshot) uint64 { return sn.stats.Loads })
		snapU64(func(sn coreSnapshot) uint64 { return sn.stats.Stores })
		snapU64(func(sn coreSnapshot) uint64 { return sn.stats.MemStall })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.Accesses })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.Hits })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.Misses })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.LateHits })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.PrefetchIssued })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.PrefetchFills })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.PrefetchHits })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.UsefulPrefetch })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.LatePrefetch })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.UnusedPrefetch })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.Evictions })
		snapU64(func(sn coreSnapshot) uint64 { return sn.l1.Writebacks })
		// Prefetch lifecycle counters (empty columns for the baseline).
		nlc := 0
		if s.lc != nil {
			nlc = s.lc.NumCores()
		}
		lcU64 := func(get func(telemetry.LifecycleStats) uint64) {
			col := make([]uint64, nlc)
			for i := 0; i < nlc; i++ {
				col[i] = get(s.lc.Core(i))
			}
			w.U64s(col)
		}
		lcU64(func(t telemetry.LifecycleStats) uint64 { return t.Issued })
		lcU64(func(t telemetry.LifecycleStats) uint64 { return t.QueueDropped })
		lcU64(func(t telemetry.LifecycleStats) uint64 { return t.Redundant })
		lcU64(func(t telemetry.LifecycleStats) uint64 { return t.Fills })
		lcU64(func(t telemetry.LifecycleStats) uint64 { return t.Timely })
		lcU64(func(t telemetry.LifecycleStats) uint64 { return t.Late })
		lcU64(func(t telemetry.LifecycleStats) uint64 { return t.UnusedEvicted })
		lcU64(func(t telemetry.LifecycleStats) uint64 { return t.InFlight })
		// Per-core prefetch queues, flattened with a length column.
		lens := make([]int, len(s.pfInflight))
		var flat []uint64
		for i, q := range s.pfInflight {
			lens[i] = len(q)
			flat = append(flat, q...)
		}
		w.Ints(lens)
		w.U64s(flat)
		return w.Err()
	}); err != nil {
		return err
	}
	if err := add(sectionVM, s.xlat.SaveState); err != nil {
		return err
	}
	if err := add(sectionDRAM, s.dram.SaveState); err != nil {
		return err
	}
	if err := add(sectionLLC, s.llc.SaveState); err != nil {
		return err
	}
	for i := range s.cores {
		if err := add(sectionL1(i), s.l1s[i].SaveState); err != nil {
			return err
		}
		if err := add(sectionCPU(i), s.cores[i].SaveState); err != nil {
			return err
		}
	}
	for i := range s.pfs {
		i := i
		if err := add(sectionPF(i), func(w *checkpoint.Writer) error {
			w.Version(1)
			if j := s.sharedPFIndex(i); j >= 0 {
				w.U8(pfKindRef)
				w.Int(j)
				return w.Err()
			}
			w.U8(pfKindFull)
			ck, ok := s.pfs[i].(checkpoint.Checkpointable)
			if !ok {
				return fmt.Errorf("system: prefetcher %q is not checkpointable", s.pfs[i].Name())
			}
			return ck.SaveState(w)
		}); err != nil {
			return err
		}
	}
	if err := add(sectionTelemetry, func(w *checkpoint.Writer) error {
		w.Version(1)
		w.Bool(s.tel != nil)
		tel := s.tel
		if tel == nil {
			// Zero-valued placeholder: the collector's column layout has a
			// fixed op sequence, so the schema is identical either way.
			tel = telemetry.NewCollector(0)
		}
		return tel.SaveState(w)
	}); err != nil {
		return err
	}
	return nil
}

// sharedPFIndex returns the lowest earlier core index holding the same
// prefetcher instance as core i, or -1 when core i's instance is its own.
func (s *System) sharedPFIndex(i int) int {
	for j := 0; j < i; j++ {
		if s.pfs[j] == s.pfs[i] {
			return j
		}
	}
	return -1
}

// SaveCheckpoint serialises the complete simulation state to out. The
// system remains runnable — checkpointing is read-only — so a run can
// save periodic snapshots while completing normally.
func (s *System) SaveCheckpoint(out io.Writer) error {
	fw := checkpoint.NewFileWriter()
	if err := s.saveSections(fw); err != nil {
		return err
	}
	_, err := fw.WriteTo(out)
	return err
}

// CheckpointSchema returns the section layout a checkpoint of this system
// would have: ids and field type strings. The golden-schema test pins it.
func (s *System) CheckpointSchema() ([]checkpoint.SectionSchema, error) {
	fw := checkpoint.NewFileWriter()
	if err := s.saveSections(fw); err != nil {
		return nil, err
	}
	return fw.Schema(), nil
}

// LoadCheckpoint restores a snapshot into this freshly built system. The
// system must have been assembled with the identical configuration,
// trace sources, and prefetcher factory as the one that saved it; the
// metadata section cross-checks what it can and everything restored is
// structurally validated before commit. On error the system is in an
// undefined state and must be discarded.
func (s *System) LoadCheckpoint(in io.Reader) error {
	if s.clock != 0 || s.phase != phaseWarmup {
		return fmt.Errorf("system: checkpoint restore requires a freshly built system")
	}
	fr, err := checkpoint.NewFileReader(in)
	if err != nil {
		return err
	}

	// The section list must match this system's layout exactly — a
	// snapshot from a differently shaped machine is rejected up front.
	fw := checkpoint.NewFileWriter()
	if err := s.saveSections(fw); err != nil {
		return err
	}
	want := fw.Schema()
	got := fr.Sections()
	if len(got) != len(want) {
		return fmt.Errorf("system: checkpoint holds %d sections, this machine writes %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i].ID {
			return fmt.Errorf("system: checkpoint section %d is %q, want %q", i, got[i], want[i].ID)
		}
	}

	section := func(id string) (*checkpoint.Reader, error) { return fr.Section(id) }

	r, err := section(sectionMeta)
	if err != nil {
		return err
	}
	r.Version(1)
	cfgString := r.String()
	pfName := r.String()
	numCores := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}
	if want := fmt.Sprintf("%+v", s.cfg); cfgString != want {
		return fmt.Errorf("system: checkpoint was taken with config %s, this machine has %s", cfgString, want)
	}
	wantName := "none"
	if s.pfs != nil {
		wantName = s.pfs[0].Name()
	}
	if pfName != wantName {
		return fmt.Errorf("system: checkpoint was taken with prefetcher %q, this machine runs %q", pfName, wantName)
	}
	if numCores != len(s.cores) {
		return fmt.Errorf("system: checkpoint machine had %d cores, this one has %d", numCores, len(s.cores))
	}

	r, err = section(sectionSystem)
	if err != nil {
		return err
	}
	r.Version(3)
	clock := r.U64()
	phase := r.U8()
	measureStart := r.U64()
	pfDropped := r.U64s()
	taken := r.Bools()
	snapCols := make([][]uint64, 18)
	for i := range snapCols {
		snapCols[i] = r.U64s()
	}
	lcCols := make([][]uint64, 8)
	for i := range lcCols {
		lcCols[i] = r.U64s()
	}
	lens := r.Ints()
	flat := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return err
	}
	if phase > phaseDone {
		return fmt.Errorf("system: checkpoint phase %d unknown", phase)
	}
	if measureStart > clock {
		return fmt.Errorf("system: checkpoint measurement start %d beyond clock %d", measureStart, clock)
	}
	if len(pfDropped) != len(s.pfDropped) {
		return fmt.Errorf("system: checkpoint drop counters hold %d cores, want %d", len(pfDropped), len(s.pfDropped))
	}
	nSnaps := 0
	if phase >= phaseMeasure {
		nSnaps = len(s.cores)
	}
	if len(taken) != nSnaps {
		return fmt.Errorf("system: checkpoint snapshot columns hold %d cores, want %d in phase %d", len(taken), nSnaps, phase)
	}
	for i, col := range snapCols {
		if len(col) != nSnaps {
			return fmt.Errorf("system: checkpoint snapshot column %d holds %d cores, want %d in phase %d", i, len(col), nSnaps, phase)
		}
	}
	nlc := 0
	if s.lc != nil {
		nlc = s.lc.NumCores()
	}
	for i, col := range lcCols {
		if len(col) != nlc {
			return fmt.Errorf("system: checkpoint lifecycle column %d holds %d cores, machine tracks %d", i, len(col), nlc)
		}
	}
	if len(lens) != len(s.pfInflight) {
		return fmt.Errorf("system: checkpoint prefetch queues cover %d cores, machine has %d", len(lens), len(s.pfInflight))
	}
	total := 0
	for i, n := range lens {
		if n < 0 || n > s.cfg.PrefetchQueue {
			return fmt.Errorf("system: checkpoint prefetch queue %d holds %d entries, cap %d", i, n, s.cfg.PrefetchQueue)
		}
		total += n
	}
	if total != len(flat) {
		return fmt.Errorf("system: checkpoint prefetch queue column holds %d entries, lengths sum to %d", len(flat), total)
	}

	load := func(id string, c checkpoint.Checkpointable) error {
		r, err := section(id)
		if err != nil {
			return err
		}
		if err := c.LoadState(r); err != nil {
			return fmt.Errorf("section %s: %w", id, err)
		}
		if err := r.Close(); err != nil {
			return fmt.Errorf("section %s: %w", id, err)
		}
		return nil
	}
	if err := load(sectionVM, s.xlat); err != nil {
		return err
	}
	if err := load(sectionDRAM, s.dram); err != nil {
		return err
	}
	if err := load(sectionLLC, s.llc); err != nil {
		return err
	}
	for i := range s.cores {
		if err := load(sectionL1(i), s.l1s[i]); err != nil {
			return err
		}
		if err := load(sectionCPU(i), s.cores[i]); err != nil {
			return err
		}
	}
	for i := range s.pfs {
		r, err := section(sectionPF(i))
		if err != nil {
			return err
		}
		r.Version(1)
		kind := r.U8()
		switch kind {
		case pfKindRef:
			j := r.Int()
			if err := r.Err(); err != nil {
				return err
			}
			// The fresh factory must share instances exactly as the saved
			// one did, or the snapshot's aliasing is unreproducible.
			if j != s.sharedPFIndex(i) {
				return fmt.Errorf("system: checkpoint shares prefetcher %d with core %d, this machine does not", i, j)
			}
		case pfKindFull:
			if err := r.Err(); err != nil {
				return err
			}
			if s.sharedPFIndex(i) >= 0 {
				return fmt.Errorf("system: checkpoint holds a private prefetcher for core %d, this machine shares it", i)
			}
			ck, ok := s.pfs[i].(checkpoint.Checkpointable)
			if !ok {
				return fmt.Errorf("system: prefetcher %q is not checkpointable", s.pfs[i].Name())
			}
			if err := ck.LoadState(r); err != nil {
				return fmt.Errorf("section %s: %w", sectionPF(i), err)
			}
		default:
			return fmt.Errorf("system: checkpoint prefetcher section kind %d unknown", kind)
		}
		if err := r.Close(); err != nil {
			return fmt.Errorf("section %s: %w", sectionPF(i), err)
		}
	}

	// Telemetry section: present in every checkpoint. Restore strictly
	// into an attached collector when the snapshot carried one; otherwise
	// consume and frame-validate the body without keeping it.
	r, err = section(sectionTelemetry)
	if err != nil {
		return err
	}
	r.Version(1)
	telEnabled := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if telEnabled && s.tel != nil {
		if err := s.tel.LoadState(r); err != nil {
			return fmt.Errorf("section %s: %w", sectionTelemetry, err)
		}
	} else if err := telemetry.DiscardState(r); err != nil {
		return fmt.Errorf("section %s: %w", sectionTelemetry, err)
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("section %s: %w", sectionTelemetry, err)
	}

	// Commit the system-level state last: everything below here is
	// already validated.
	s.clock = clock
	s.phase = phase
	s.measureStart = measureStart
	s.pfDropped = pfDropped
	if phase >= phaseMeasure {
		s.snaps = make([]coreSnapshot, len(s.cores))
		for i := range s.snaps {
			s.snaps[i] = coreSnapshot{taken: taken[i], cycle: snapCols[0][i]}
			s.snaps[i].stats.Instructions = snapCols[1][i]
			s.snaps[i].stats.MemOps = snapCols[2][i]
			s.snaps[i].stats.Loads = snapCols[3][i]
			s.snaps[i].stats.Stores = snapCols[4][i]
			s.snaps[i].stats.MemStall = snapCols[5][i]
			s.snaps[i].l1.Accesses = snapCols[6][i]
			s.snaps[i].l1.Hits = snapCols[7][i]
			s.snaps[i].l1.Misses = snapCols[8][i]
			s.snaps[i].l1.LateHits = snapCols[9][i]
			s.snaps[i].l1.PrefetchIssued = snapCols[10][i]
			s.snaps[i].l1.PrefetchFills = snapCols[11][i]
			s.snaps[i].l1.PrefetchHits = snapCols[12][i]
			s.snaps[i].l1.UsefulPrefetch = snapCols[13][i]
			s.snaps[i].l1.LatePrefetch = snapCols[14][i]
			s.snaps[i].l1.UnusedPrefetch = snapCols[15][i]
			s.snaps[i].l1.Evictions = snapCols[16][i]
			s.snaps[i].l1.Writebacks = snapCols[17][i]
		}
	}
	for i := 0; i < nlc; i++ {
		s.lc.SetCore(i, telemetry.LifecycleStats{
			Issued:        lcCols[0][i],
			QueueDropped:  lcCols[1][i],
			Redundant:     lcCols[2][i],
			Fills:         lcCols[3][i],
			Timely:        lcCols[4][i],
			Late:          lcCols[5][i],
			UnusedEvicted: lcCols[6][i],
			InFlight:      lcCols[7][i],
		})
	}
	off := 0
	for i, n := range lens {
		s.pfInflight[i] = append(s.pfInflight[i][:0], flat[off:off+n]...)
		off += n
	}
	// A collector attached to this machine but absent from the snapshot
	// (the warm-start path: artifacts are saved at the measurement
	// boundary without telemetry) joins the epoch grid at the measurement
	// start, so its series matches a cold telemetry-on run.
	if s.tel != nil && !telEnabled && s.phase >= phaseMeasure {
		s.tel.Resync(s.measureStart, s.clock)
	}
	return nil
}
