package system

import (
	"fmt"

	"bingo/internal/cache"
	"bingo/internal/mem"
)

// Frontend selects how the per-core frontends (retire + dispatch up to
// the private L1, including AttachL1 prefetcher training) execute within
// one simulated cycle.
//
// FrontendSerial is the reference: one goroutine ticks every core in
// index order, recursing straight into the shared LLC/DRAM/translator.
//
// FrontendParallel runs each core's tick on its own goroutine. Anything
// a tick needs from the shared memory side — an L1 miss reaching the
// LLC, a first-touch page translation — is staged over the core's
// rendezvous channel to the single driver goroutine, which serves core
// i's staged operations only after cores 0..i-1 have finished their
// ticks. The shared state therefore mutates in exactly the serial order,
// which is why the frontend-differential oracles can hold parallel runs
// byte-identical to serial ones under both engines.
//
// Like Engine, the frontend is a run-speed knob, not a machine
// parameter: it lives outside Config so it can never key a different
// checkpoint or warm artifact.
type Frontend uint8

const (
	// FrontendSerial ticks all cores on the driver goroutine (reference).
	FrontendSerial Frontend = iota
	// FrontendParallel ticks cores on per-core goroutines with a
	// deterministic drain barrier at the shared LLC/DRAM boundary.
	FrontendParallel
)

// ParseFrontend maps a -frontend flag value to a Frontend.
func ParseFrontend(name string) (Frontend, error) {
	switch name {
	case "serial":
		return FrontendSerial, nil
	case "parallel":
		return FrontendParallel, nil
	default:
		return FrontendSerial, fmt.Errorf("system: unknown frontend %q (want serial or parallel)", name)
	}
}

// String returns the flag spelling of f.
func (f Frontend) String() string {
	if f == FrontendParallel {
		return "parallel"
	}
	return "serial"
}

// SetFrontend selects the frontend execution mode. Call it before Run
// (or between a pause and the resume); the default is FrontendSerial.
// The mode never changes simulated results — only how wall-clock time is
// spent — so it is safe to flip between a checkpoint save and restore.
func (s *System) SetFrontend(f Frontend) { s.frontend = f }

// Frontend reports the selected frontend execution mode.
func (s *System) Frontend() Frontend { return s.frontend }

// parallelOK reports whether the parallel frontend may engage. A single
// core has nothing to overlap. AttachL1 mode trains prefetchers on the
// worker goroutines, which is only sound while every core owns its
// instance — a shared-metadata factory (SharedFactory) makes the
// instances race, so such systems silently fall back to the serial loop
// (results are identical either way; only wall-clock differs).
func (s *System) parallelOK() bool {
	if len(s.cores) < 2 {
		return false
	}
	if s.pfs != nil && s.cfg.PrefetchAt == AttachL1 {
		for i := range s.pfs {
			if s.sharedPFIndex(i) >= 0 {
				return false
			}
		}
	}
	return true
}

// Worker → driver message opcodes.
const (
	opDone  uint8 = iota // tick finished; no more staged work this cycle
	opMem                // an L1 miss bound for the shared LLC
	opXlat               // a first-touch translation needing the shared RNG
	opPanic              // the tick panicked; the driver re-panics with val
)

// coreMsg is one staged operation (or completion notice) from a core's
// frontend to the driver. Values are copied through the channel, so the
// structs themselves are never shared.
type coreMsg struct {
	op  uint8
	now uint64
	req cache.Request
	va  mem.Addr
	//conc:immutable a recovered panic value handed off exactly once, worker to driver, through the rendezvous channel
	panicVal any
}

// coreReply carries the driver's answer back to a blocked frontend.
type coreReply struct {
	res cache.Result
	pa  mem.Addr
}

// coreWorker is one core's rendezvous endpoint. The channels are the
// synchronization: a frontend blocks on out/reply mid-Tick exactly where
// the serial loop would have recursed into the shared memory side, and
// the driver's in-order drain supplies the same answer the recursion
// would have computed.
type coreWorker struct {
	//conc:immutable wired once by startWorkers; the channel itself is the synchronization
	cmd chan uint64 // driver → worker: tick at this cycle; closed to stop
	//conc:immutable wired once by startWorkers; the channel itself is the synchronization
	out chan coreMsg // worker → driver: staged ops, then opDone
	//conc:immutable wired once by startWorkers; the channel itself is the synchronization
	reply chan coreReply // driver → worker: answer to the last staged op
}

// stageMem hands an LLC-bound access to the driver and blocks until the
// serialized memory side produced its result. Called from the worker
// goroutine, inside Core.Tick, via memBridge.
func (w *coreWorker) stageMem(now uint64, req cache.Request) cache.Result {
	w.out <- coreMsg{op: opMem, now: now, req: req}
	return (<-w.reply).res
}

// stageXlat hands a first-touch translation to the driver and blocks for
// the assigned physical address. Called from the worker goroutine via
// xlatBridge after the lock-free Lookup fast path missed.
func (w *coreWorker) stageXlat(va mem.Addr) mem.Addr {
	w.out <- coreMsg{op: opXlat, va: va}
	return (<-w.reply).pa
}

// startWorkers spins up one goroutine per core. Workers park on their
// cmd channel until the driver issues a tick.
func (s *System) startWorkers() {
	s.workers = make([]*coreWorker, len(s.cores))
	for i := range s.workers {
		w := &coreWorker{
			cmd:   make(chan uint64),
			out:   make(chan coreMsg),
			reply: make(chan coreReply),
		}
		s.workers[i] = w
		go s.workerLoop(i, w)
	}
}

// stopWorkers shuts the worker goroutines down. On the normal path every
// worker is parked on its cmd channel (the driver only returns with all
// cores drained), so closing cmd releases them immediately. During a
// panic unwind a worker may instead be blocked sending a staged op the
// driver will never serve; such a goroutine leaks until process exit,
// which is acceptable because a driver panic is fatal to the run.
func (s *System) stopWorkers() {
	for _, w := range s.workers {
		close(w.cmd)
	}
	s.workers = nil
}

// workerLoop is core i's goroutine: tick on command, forward panics.
func (s *System) workerLoop(core int, w *coreWorker) {
	for cycle := range w.cmd {
		s.tickOnWorker(core, cycle, w)
	}
}

// tickOnWorker runs one core tick, converting a panic (e.g. a simsan
// violation raised on the worker) into an opPanic message so the driver
// re-raises it on the goroutine the test or caller is watching.
func (s *System) tickOnWorker(core int, cycle uint64, w *coreWorker) {
	defer func() {
		if r := recover(); r != nil {
			w.out <- coreMsg{op: opPanic, panicVal: r}
		}
	}()
	s.cores[core].Tick(cycle)
	w.out <- coreMsg{op: opDone}
}

// drainCore serves core i's staged operations against the shared memory
// side until its tick completes. Because the driver drains cores in
// ascending index order, every LLC/DRAM/translator mutation happens in
// exactly the order the serial loop would have produced.
func (s *System) drainCore(i int) {
	w := s.workers[i]
	for {
		m := <-w.out
		switch m.op {
		case opDone:
			return
		case opMem:
			w.reply <- coreReply{res: llcPort{sys: s}.Access(m.now, m.req)}
		case opXlat:
			w.reply <- coreReply{pa: s.xlat.Translate(m.va)}
		case opPanic:
			panic(m.panicVal)
		}
	}
}

// runUntilMarkParallel is runUntilMark with the frontends fanned out to
// the worker goroutines. Each loop iteration is three sub-phases:
//
//  1. Launch — decide, per core and from pre-tick state exactly as the
//     serial loop does, whether the core is done, event-idle (IdleAt on
//     the driver; it touches only core-local stall counters), or due; due
//     cores get a tick command and run concurrently.
//  2. Drain — serve core 0's staged ops to completion, then core 1's,
//     and so on. Core i's frontend can race only with the drains of
//     lower-numbered cores, never with their ticks (they finished before
//     the driver reached core i) — the ordering argument in DESIGN.md
//     §12. Event-engine deadlines refresh right after each core's drain,
//     with the same wakeup-monotonicity panic the serial loop enforces.
//  3. Barrier — pred/mark per core in index order, then the shared
//     advanceClock / sanitizer / telemetry / hook sequence, unchanged
//     from the serial loop, with every worker parked.
func (s *System) runUntilMarkParallel(pred func(core int) bool, mark func(core int, cycle uint64)) bool {
	reached := make([]bool, len(s.cores))
	ticked := make([]bool, len(s.cores))
	launched := make([]bool, len(s.cores))
	event := s.engine == EngineEvent
	if event {
		// Every core is due at loop entry, mirroring serial runUntilMark.
		for i := range s.coreNext {
			s.coreNext[i] = s.clock
		}
	}
	s.startWorkers()
	defer s.stopWorkers()
	first := true
	for {
		allDone := true
		for i, c := range s.cores {
			// ticked mirrors the serial loop: on the first iteration even
			// done cores count as ticked so pred is evaluated once.
			ticked[i] = first
			launched[i] = false
			if c.Done() {
				continue
			}
			allDone = false
			if event && s.coreNext[i] > s.clock {
				c.IdleAt(s.clock)
				continue
			}
			ticked[i] = true
			launched[i] = true
			s.workers[i].cmd <- s.clock
		}
		for i := range s.cores {
			if !launched[i] {
				continue
			}
			s.drainCore(i)
			if event {
				at := s.cores[i].NextEventAt(s.clock)
				if at <= s.clock {
					panic(fmt.Sprintf("system: core %d scheduled a wakeup at cycle %d, at or before the current cycle %d", i, at, s.clock))
				}
				s.coreNext[i] = at
			}
		}
		allReached := true
		for i, c := range s.cores {
			if !reached[i] {
				if ticked[i] && (pred(i) || c.Done()) {
					reached[i] = true
					mark(i, s.clock)
				} else {
					allReached = false
				}
			}
		}
		first = false
		if allReached || allDone {
			return false
		}
		prev := s.clock
		s.clock = s.advanceClock(prev)
		s.sanAtAdvance(prev, s.clock)
		if s.tel != nil && s.phase == phaseMeasure && s.tel.ShouldSample(s.clock) {
			s.tel.Sample(s.clock, s.telTotals())
		}
		if s.hook != nil && s.hook(s.clock) {
			return true
		}
	}
}

// memBridge is each private L1's lower level: in serial mode it recurses
// straight into llcPort; in parallel mode it stages the access to the
// driver and blocks for the rendezvous reply. It deliberately does not
// implement the optional Writeback interface, matching llcPort.
type memBridge struct {
	//conc:barrier-guarded misses cross to the shared LLC via the in-order drain (parallel) or directly on the driver goroutine (serial)
	sys  *System
	core int
}

// Access implements cache.Level.
func (b memBridge) Access(now uint64, req cache.Request) cache.Result {
	s := b.sys
	if w := s.workers; w != nil {
		return w[b.core].stageMem(now, req)
	}
	return llcPort{sys: s}.Access(now, req)
}

// xlatBridge is each core's Mapper: already-touched pages resolve on the
// worker via the translator's lock-free Lookup (entries are write-once,
// so a hit is always final), and first touches are staged to the driver
// so the frame-assignment RNG draws in exactly the serial order. A
// worker can never observe a same-cycle first touch by a higher-numbered
// core: the driver performs core j's translations only after core i<j
// finished its tick, which is precisely the order the serial loop
// interleaves them.
type xlatBridge struct {
	//conc:barrier-guarded first touches reach the shared page table via the in-order drain (parallel) or directly on the driver goroutine (serial)
	sys  *System
	core int
}

// Translate implements vm.Mapper.
func (b xlatBridge) Translate(va mem.Addr) mem.Addr {
	s := b.sys
	if w := s.workers; w != nil {
		if pa, ok := s.xlat.Lookup(va); ok {
			return pa
		}
		return w[b.core].stageXlat(va)
	}
	return s.xlat.Translate(va)
}
