package system

import (
	"fmt"
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
	"bingo/internal/trace"
)

// countingPF counts eviction notifications; shared across cores it is
// the shared-metadata ablation's shape in miniature.
type countingPF struct {
	evictions int
}

func (p *countingPF) Name() string                             { return "counting" }
func (p *countingPF) OnAccess(prefetch.AccessEvent) []mem.Addr { return nil }
func (p *countingPF) OnEviction(mem.Addr)                      { p.evictions++ }
func (p *countingPF) StorageBytes() int                        { return 0 }

// evictionConfig shrinks the LLC so a short sequential sweep overflows
// it and generates evictions.
func evictionConfig() Config {
	cfg := tinyConfig()
	cfg.NumCores = 4
	cfg.LLC.SizeBytes = 16 * 1024
	cfg.LLC.Assoc = 4
	return cfg
}

// TestEvictionBroadcastDeduplicates is the regression test for the
// shared-metadata fan-out: New precomputes the unique-instance list, so
// a factory handing every core the same instance must notify it exactly
// once per LLC eviction — the behaviour the old per-eviction duplicate
// scan implemented in O(cores²) time — while private instances each see
// every eviction.
func TestEvictionBroadcastDeduplicates(t *testing.T) {
	cfg := evictionConfig()
	mkSources := func() []trace.Source {
		perCore := make([][]trace.Record, cfg.NumCores)
		for i := range perCore {
			perCore[i] = seqTrace(3000, uint64(i+1))
		}
		return sources(perCore...)
	}

	shared := &countingPF{}
	sys := MustNew(cfg, mkSources(), func(int) prefetch.Prefetcher { return shared })
	if got := len(sys.evictPFs); got != 1 {
		t.Fatalf("shared factory: unique eviction list has %d entries, want 1", got)
	}
	sys.Run()
	if shared.evictions == 0 {
		t.Fatal("LLC never evicted; the machine is too large for the trace")
	}

	privates := make([]*countingPF, cfg.NumCores)
	sys = MustNew(cfg, mkSources(), func(core int) prefetch.Prefetcher {
		privates[core] = &countingPF{}
		return privates[core]
	})
	if got := len(sys.evictPFs); got != cfg.NumCores {
		t.Fatalf("private factory: unique eviction list has %d entries, want %d", got, cfg.NumCores)
	}
	sys.Run()

	// Identical traces, identical machine: the eviction stream is the
	// same, so the shared instance must have seen exactly what any one
	// private instance saw — once per eviction, not once per core.
	for i, p := range privates {
		if p.evictions != shared.evictions {
			t.Fatalf("private[%d] saw %d evictions, shared instance saw %d — dedup broke the broadcast",
				i, p.evictions, shared.evictions)
		}
	}
}

// TestParallelFrontendMatchesSerial is the package-local differential:
// slice-trace systems at 4 cores, baseline (no prefetcher — the path
// with a nil pfs slice), serial vs parallel, both engines.
func TestParallelFrontendMatchesSerial(t *testing.T) {
	cfg := evictionConfig()
	mkSources := func() []trace.Source {
		perCore := make([][]trace.Record, cfg.NumCores)
		for i := range perCore {
			perCore[i] = seqTrace(3000, uint64(2*i+1))
		}
		return sources(perCore...)
	}
	for _, engine := range []Engine{EngineLockstep, EngineEvent} {
		run := func(f Frontend) Results {
			sys := MustNew(cfg, mkSources(), nil)
			sys.SetEngine(engine)
			sys.SetFrontend(f)
			return sys.Run()
		}
		serial := run(FrontendSerial)
		parallel := run(FrontendParallel)
		if serial.String() != parallel.String() {
			t.Fatalf("engine %v: parallel diverged\nserial:\n%s\nparallel:\n%s",
				engine, serial.String(), parallel.String())
		}
	}
}

// TestParseFrontend pins the flag grammar.
func TestParseFrontend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Frontend
		ok   bool
	}{
		{"serial", FrontendSerial, true},
		{"parallel", FrontendParallel, true},
		{"bogus", FrontendSerial, false},
	} {
		got, err := ParseFrontend(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseFrontend(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("Frontend(%q).String() = %q", tc.in, got.String())
		}
	}
}

// TestWithCoresScaling pins the Table I extrapolation: LLC capacity and
// physical memory stay per-core-constant, DRAM channels stay a power of
// two tracking core count, and every scaled config validates.
func TestWithCoresScaling(t *testing.T) {
	base := DefaultConfig()
	for _, tc := range []struct {
		cores    int
		llcBytes int
		channels int
	}{
		{4, 8 << 20, 2},
		{8, 16 << 20, 4},
		{16, 32 << 20, 8},
		{64, 128 << 20, 32},
	} {
		cfg := base.WithCores(tc.cores)
		if cfg.NumCores != tc.cores {
			t.Fatalf("WithCores(%d).NumCores = %d", tc.cores, cfg.NumCores)
		}
		if cfg.LLC.SizeBytes != tc.llcBytes {
			t.Errorf("WithCores(%d) LLC = %d bytes, want %d", tc.cores, cfg.LLC.SizeBytes, tc.llcBytes)
		}
		if cfg.DRAM.Channels != tc.channels {
			t.Errorf("WithCores(%d) channels = %d, want %d", tc.cores, cfg.DRAM.Channels, tc.channels)
		}
		if cfg.MemoryBytes != uint64(tc.cores)<<30 {
			t.Errorf("WithCores(%d) memory = %d bytes", tc.cores, cfg.MemoryBytes)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("WithCores(%d) invalid: %v", tc.cores, err)
		}
	}
	if fmt.Sprintf("%+v", base.WithCores(4)) != fmt.Sprintf("%+v", base) {
		t.Error("WithCores(4) should reproduce the Table I anchor exactly")
	}
}
