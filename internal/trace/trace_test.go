package trace

import (
	"testing"

	"bingo/internal/mem"
)

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatalf("Kind strings: %q %q", Load, Store)
	}
}

func TestRecordInstructions(t *testing.T) {
	r := Record{NonMem: 9}
	if r.Instructions() != 10 {
		t.Fatalf("Instructions = %d, want 10", r.Instructions())
	}
	if (Record{}).Instructions() != 1 {
		t.Fatal("bare memory instruction should count as 1")
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Record{
		{PC: 1, Addr: 64},
		{PC: 2, Addr: 128, Kind: Store},
	}
	s := NewSliceSource(recs)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	r1, ok := s.Next()
	if !ok || r1.PC != 1 {
		t.Fatalf("first: %+v ok=%v", r1, ok)
	}
	r2, ok := s.Next()
	if !ok || r2.Kind != Store {
		t.Fatalf("second: %+v ok=%v", r2, ok)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source should return ok=false")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r.PC != 1 {
		t.Fatal("Reset should rewind")
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := FuncSource(func() (Record, bool) {
		n++
		if n > 3 {
			return Record{}, false
		}
		return Record{PC: mem.PC(n)}, true
	})
	got := Collect(src, 0)
	if len(got) != 3 || got[2].PC != 3 {
		t.Fatalf("Collect = %+v", got)
	}
}

func TestLimit(t *testing.T) {
	inf := FuncSource(func() (Record, bool) { return Record{PC: 7}, true })
	l := NewLimit(inf, 5)
	got := Collect(l, 0)
	if len(got) != 5 {
		t.Fatalf("Limit yielded %d records", len(got))
	}
	// Limit over a shorter source ends at the source.
	l2 := NewLimit(NewSliceSource([]Record{{PC: 1}}), 10)
	if got := Collect(l2, 0); len(got) != 1 {
		t.Fatalf("Limit over short source yielded %d", len(got))
	}
}

func TestCollectMax(t *testing.T) {
	inf := FuncSource(func() (Record, bool) { return Record{}, true })
	if got := Collect(inf, 7); len(got) != 7 {
		t.Fatalf("Collect max: %d", len(got))
	}
}
