package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"bingo/internal/mem"
)

func roundTrip(t *testing.T, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, uint64(len(recs)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != uint64(len(recs)) {
		t.Fatalf("Remaining = %d, want %d", r.Remaining(), len(recs))
	}
	out := Collect(r, 0)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		{PC: 0x400000, Addr: 0x7fff_0040, Kind: Load, NonMem: 3},
		{PC: 0x400004, Addr: 0x7fff_0080, Kind: Store, NonMem: 0, Dep: true},
		{PC: 0, Addr: 0, Kind: Load, NonMem: 1<<32 - 1},
	}
	got := roundTrip(t, recs)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pc, addr uint64, store, dep bool, nonmem uint32) bool {
		rec := Record{PC: mem.PC(pc), Addr: mem.Addr(addr), NonMem: nonmem, Dep: dep}
		if store {
			rec.Kind = Store
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 1)
		if err != nil {
			return false
		}
		if w.Write(rec) != nil || w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, ok := r.Next()
		return ok && got == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{}); err == nil {
		t.Fatal("writing past the declared count should fail")
	}
}

func TestWriterCloseShortfall(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close with missing records should fail")
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(append([]byte("NOTATRCE"), make([]byte, 12)...))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Write(Record{PC: 1})
	w.Write(Record{PC: 2})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5] // chop the last record short
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); !ok {
		t.Fatal("first record should read")
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record should not read")
	}
	if r.Err() == nil {
		t.Fatal("Err should report truncation")
	}
}

func TestReaderBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(traceMagic[:])
	buf.Write([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := NewReader(&buf); err == nil {
		t.Fatal("unsupported version should fail")
	}
}

func TestReaderIsSource(t *testing.T) {
	var _ Source = (*Reader)(nil)
}
