package trace

import (
	"bytes"
	"testing"

	"bingo/internal/mem"
)

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			PC:     mem.PC(0x400 + i%16),
			Addr:   mem.Addr(i * 64),
			Kind:   Kind(i % 2),
			NonMem: uint32(i % 9),
			Dep:    i%3 == 0,
		}
	}
	return recs
}

func TestGzipRoundTrip(t *testing.T) {
	recs := sampleRecords(500)
	var buf bytes.Buffer
	w, err := NewGzipWriter(&buf, uint64(len(recs)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, closer, err := NewAutoReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if closer == nil {
		t.Fatal("gzip stream should return a closer")
	}
	defer closer.Close()
	got := Collect(r, 0)
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestGzipCompresses(t *testing.T) {
	recs := sampleRecords(5000)
	var plain, compressed bytes.Buffer

	pw, _ := NewWriter(&plain, uint64(len(recs)))
	gw, _ := NewGzipWriter(&compressed, uint64(len(recs)))
	for _, r := range recs {
		pw.Write(r)
		gw.Write(r)
	}
	pw.Close()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if compressed.Len() >= plain.Len()/2 {
		t.Fatalf("gzip should at least halve a regular trace: %d vs %d bytes",
			compressed.Len(), plain.Len())
	}
}

func TestAutoReaderPlain(t *testing.T) {
	recs := sampleRecords(10)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, uint64(len(recs)))
	for _, r := range recs {
		w.Write(r)
	}
	w.Close()
	r, closer, err := NewAutoReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if closer != nil {
		t.Fatal("plain stream needs no closer")
	}
	if got := Collect(r, 0); len(got) != 10 {
		t.Fatalf("read %d records", len(got))
	}
}

func TestAutoReaderGarbage(t *testing.T) {
	if _, _, err := NewAutoReader(bytes.NewReader([]byte("XYZZYXYZZYXYZZYXYZZY"))); err == nil {
		t.Fatal("garbage should not open")
	}
	if _, _, err := NewAutoReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should not open")
	}
}

func TestGzipWriterShortfall(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewGzipWriter(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	w.Write(Record{})
	if err := w.Close(); err == nil {
		t.Fatal("Close with missing records should fail")
	}
}
