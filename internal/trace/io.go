package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"bingo/internal/mem"
)

// The binary trace format is a little-endian stream:
//
//	magic   [8]byte  "BINGOTRC"
//	version uint32   (currently 1)
//	count   uint64   number of records
//	records count × { pc uint64, addr uint64, flags uint8, nonmem uint32 }
//
// flags bit 0 is the access kind (0 load, 1 store) and bit 1 marks an
// address-dependent access.
//
// The format is intentionally simple: fixed-width fields, no compression,
// so records can be seeked and sliced by external tools.

//conc:immutable written only by its initializer; a format constant that arrays keep out of const
var traceMagic = [8]byte{'B', 'I', 'N', 'G', 'O', 'T', 'R', 'C'}

const formatVersion = 1

// recordWireSize is the encoded size of one record in bytes.
const recordWireSize = 8 + 8 + 1 + 4

// ErrBadMagic reports a stream that is not a Bingo trace.
//
//conc:immutable sentinel error, assigned once at package init
var ErrBadMagic = errors.New("trace: bad magic (not a Bingo trace file)")

// Writer serialises records to an io.Writer in the binary trace format.
// Close must be called to flush buffered data and back-patch nothing —
// the count is written up front, so the caller supplies it to NewWriter.
type Writer struct {
	//conc:core-local a trace writer streams one core's records from one goroutine
	w     *bufio.Writer
	count uint64
	wrote uint64
}

// NewWriter writes the header for a trace of exactly count records.
func NewWriter(w io.Writer, count uint64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], formatVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], count)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw, count: count}, nil
}

// Write appends one record. It fails if more than the declared count of
// records are written.
func (w *Writer) Write(r Record) error {
	if w.wrote >= w.count {
		return fmt.Errorf("trace: more than the declared %d records written", w.count)
	}
	var buf [recordWireSize]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(r.PC))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(r.Addr))
	flags := byte(r.Kind) & 1
	if r.Dep {
		flags |= 2
	}
	buf[16] = flags
	binary.LittleEndian.PutUint32(buf[17:21], r.NonMem)
	if _, err := w.w.Write(buf[:]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	w.wrote++
	return nil
}

// Close flushes the writer and verifies the declared record count was met.
func (w *Writer) Close() error {
	if w.wrote != w.count {
		return fmt.Errorf("trace: declared %d records but wrote %d", w.count, w.wrote)
	}
	return w.w.Flush()
}

// Reader decodes a binary trace stream and implements Source.
type Reader struct {
	//conc:core-local a trace source feeds exactly one core's frontend
	r         *bufio.Reader
	remaining uint64
	err       error
}

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, ErrBadMagic
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", v)
	}
	return &Reader{r: br, remaining: binary.LittleEndian.Uint64(hdr[4:12])}, nil
}

// Remaining returns how many records are left to read.
func (r *Reader) Remaining() uint64 { return r.remaining }

// Err returns the first I/O error encountered by Next, if any.
func (r *Reader) Err() error { return r.err }

// Next implements Source. A short or corrupt stream terminates the source
// and records the error for Err.
func (r *Reader) Next() (Record, bool) {
	if r.remaining == 0 || r.err != nil {
		return Record{}, false
	}
	var buf [recordWireSize]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		//hot:alloc error path: a truncated stream terminates the source
		r.err = fmt.Errorf("trace: truncated stream: %w", err)
		r.remaining = 0
		return Record{}, false
	}
	r.remaining--
	return Record{
		PC:     mem.PC(binary.LittleEndian.Uint64(buf[0:8])),
		Addr:   mem.Addr(binary.LittleEndian.Uint64(buf[8:16])),
		Kind:   Kind(buf[16] & 1),
		Dep:    buf[16]&2 != 0,
		NonMem: binary.LittleEndian.Uint32(buf[17:21]),
	}, true
}
