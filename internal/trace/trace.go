// Package trace defines the memory-access trace model driving the
// simulator: a Record per memory instruction (annotated with the number of
// non-memory instructions preceding it), a Source abstraction for streams
// of records, and a compact binary on-disk format with Reader/Writer.
//
// Workload generators (package workloads) produce Sources directly; the
// tracegen tool can also persist them so identical traces can be replayed
// across prefetcher configurations.
package trace

import (
	"bingo/internal/mem"
)

// Kind distinguishes load and store memory operations.
type Kind uint8

const (
	// Load is a data read.
	Load Kind = iota
	// Store is a data write.
	Store
)

// String returns "load" or "store".
func (k Kind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Record is one memory instruction in a trace. NonMem is the number of
// non-memory instructions the core executed since the previous Record;
// this keeps traces compact while preserving instruction counts for IPC.
//
// Dep marks an address-dependent access: its address is computed from the
// value of the most recent load (pointer chasing), so the core cannot
// issue it until that load completes. This is what makes pointer-heavy
// workloads latency-bound rather than bandwidth-bound, and is the
// property data prefetching converts into speedup.
type Record struct {
	PC     mem.PC
	Addr   mem.Addr
	Kind   Kind
	NonMem uint32
	Dep    bool
}

// Instructions returns the number of instructions this record accounts
// for: the memory instruction itself plus the preceding non-memory ones.
func (r Record) Instructions() uint64 { return uint64(r.NonMem) + 1 }

// Source yields a stream of records. Next returns ok=false when the
// stream is exhausted. Implementations need not be safe for concurrent
// use; the simulator drives each core's source from a single goroutine.
//
// Distinct Source instances must, however, not share mutable state
// (package-level RNGs, reused buffers): the parallel experiment engine
// runs many simulations concurrently, each driving its own sources.
// Audit note: every implementation in this package and in package
// workloads keeps all mutable state (RNGs, queues, gzip buffers)
// instance-local, so concurrently running systems never touch shared
// memory through their traces.
type Source interface {
	// Next returns the next record of the stream.
	Next() (Record, bool)
}

// FuncSource adapts a closure to the Source interface.
type FuncSource func() (Record, bool)

// Next calls the underlying closure.
func (f FuncSource) Next() (Record, bool) { return f() }

// SliceSource replays an in-memory slice of records.
type SliceSource struct {
	recs []Record
	pos  int
}

// NewSliceSource returns a Source that yields recs in order.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of records.
func (s *SliceSource) Len() int { return len(s.recs) }

// Limit wraps src and stops after max records (or earlier if src ends).
type Limit struct {
	//conc:core-local wraps the single core-owned source it limits
	src Source
	n   int
	max int
}

// NewLimit returns a Source yielding at most max records from src.
func NewLimit(src Source, max int) *Limit { return &Limit{src: src, max: max} }

// Next implements Source.
func (l *Limit) Next() (Record, bool) {
	if l.n >= l.max {
		return Record{}, false
	}
	r, ok := l.src.Next()
	if !ok {
		return Record{}, false
	}
	l.n++
	return r, true
}

// Collect drains src (up to max records; max ≤ 0 means unlimited) into a
// slice. Useful for tests and for replaying identical traces.
func Collect(src Source, max int) []Record {
	var out []Record
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}
