package trace

import (
	"testing"

	"bingo/internal/mem"
)

func TestAnalyzeBasics(t *testing.T) {
	recs := []Record{
		{PC: 1, Addr: 0, Kind: Load, NonMem: 9},
		{PC: 1, Addr: 64, Kind: Load},
		{PC: 2, Addr: 4096, Kind: Store, Dep: true},
		{PC: 3, Addr: 64, Kind: Load}, // repeat block
	}
	s := Analyze(NewSliceSource(recs), 0)
	if s.Records != 4 || s.Loads != 3 || s.Stores != 1 || s.Dependent != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Instructions != 9+4 {
		t.Fatalf("instructions = %d", s.Instructions)
	}
	if s.UniquePCs != 3 || s.UniqueBlocks != 3 || s.UniquePages != 2 {
		t.Fatalf("uniques: %+v", s)
	}
	if s.UniqueRegions != 2 {
		t.Fatalf("regions = %d", s.UniqueRegions)
	}
	if s.MemRatio() <= 0 || s.DependentRatio() != 0.25 {
		t.Fatalf("ratios: %v %v", s.MemRatio(), s.DependentRatio())
	}
	if s.String() == "" {
		t.Fatal("String should render")
	}
}

func TestAnalyzeRegionFill(t *testing.T) {
	// One region fully used, one with a single block.
	var recs []Record
	for b := 0; b < 32; b++ {
		recs = append(recs, Record{PC: 1, Addr: mem.Addr(b * 64)})
	}
	recs = append(recs, Record{PC: 1, Addr: mem.Addr(10 * 2048)})
	s := Analyze(NewSliceSource(recs), 0)
	if s.UniqueRegions != 2 {
		t.Fatalf("regions = %d", s.UniqueRegions)
	}
	if s.DenseRegions != 0.5 || s.SingletonRegion != 0.5 {
		t.Fatalf("fill stats: dense=%v singleton=%v", s.DenseRegions, s.SingletonRegion)
	}
	wantMean := (1.0 + 1.0/32) / 2
	if diff := s.MeanRegionFill - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean fill = %v, want %v", s.MeanRegionFill, wantMean)
	}
}

func TestAnalyzeMax(t *testing.T) {
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{PC: mem.PC(i), Addr: mem.Addr(i * 64)}
	}
	s := Analyze(NewSliceSource(recs), 10)
	if s.Records != 10 {
		t.Fatalf("max not honoured: %d", s.Records)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(NewSliceSource(nil), 0)
	if s.Records != 0 || s.MemRatio() != 0 || s.DependentRatio() != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestTopPCs(t *testing.T) {
	recs := []Record{
		{PC: 5}, {PC: 5}, {PC: 5},
		{PC: 7}, {PC: 7},
		{PC: 9},
	}
	top := TopPCs(recs, 2)
	if len(top) != 2 || top[0].PC != 5 || top[0].Count != 3 || top[1].PC != 7 {
		t.Fatalf("top = %+v", top)
	}
	all := TopPCs(recs, 0)
	if len(all) != 3 {
		t.Fatalf("unbounded top = %+v", all)
	}
	// Deterministic tie-break by PC.
	ties := TopPCs([]Record{{PC: 3}, {PC: 1}, {PC: 2}}, 0)
	if ties[0].PC != 1 || ties[1].PC != 2 || ties[2].PC != 3 {
		t.Fatalf("tie-break: %+v", ties)
	}
}
