package trace

import (
	"fmt"
	"sort"
	"strings"

	"bingo/internal/mem"
)

// Summary holds the offline statistics of a trace, as produced by Analyze
// and printed by cmd/traceinfo. It characterises a workload without
// simulating it: instruction mix, address-space footprint, dependence
// density, and the spatial footprint distribution over regions that
// spatial prefetchers will see.
type Summary struct {
	Records      uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Dependent    uint64 // address-dependent accesses (pointer chasing)

	UniquePCs    int
	UniqueBlocks int
	UniquePages  int // 4 KB OS pages
	FootprintMB  float64

	// Region-level spatial structure (2 KB regions, the prefetchers'
	// training granularity): how densely regions are used.
	UniqueRegions   int
	MeanRegionFill  float64 // mean fraction of a touched region's blocks used
	DenseRegions    float64 // fraction of regions with >50% of blocks used
	SingletonRegion float64 // fraction of regions with exactly one block used
}

// MemRatio returns memory accesses per instruction.
func (s Summary) MemRatio() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Instructions)
}

// DependentRatio returns the fraction of accesses that are
// address-dependent on a prior load.
func (s Summary) DependentRatio() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.Dependent) / float64(s.Records)
}

// String renders the summary as an aligned report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records:        %d (%d loads, %d stores)\n", s.Records, s.Loads, s.Stores)
	fmt.Fprintf(&b, "instructions:   %d (%.3f mem/instr)\n", s.Instructions, s.MemRatio())
	fmt.Fprintf(&b, "dependent:      %d (%.1f%% of accesses)\n", s.Dependent, s.DependentRatio()*100)
	fmt.Fprintf(&b, "unique PCs:     %d\n", s.UniquePCs)
	fmt.Fprintf(&b, "unique blocks:  %d (%.1f MB footprint)\n", s.UniqueBlocks, s.FootprintMB)
	fmt.Fprintf(&b, "unique pages:   %d (4 KB)\n", s.UniquePages)
	fmt.Fprintf(&b, "regions (2 KB): %d touched, mean fill %.1f%%, dense(>50%%) %.1f%%, singleton %.1f%%\n",
		s.UniqueRegions, s.MeanRegionFill*100, s.DenseRegions*100, s.SingletonRegion*100)
	return b.String()
}

// Analyze drains up to max records from src (max ≤ 0 means all) and
// computes the summary.
func Analyze(src Source, max int) Summary {
	var s Summary
	pcs := make(map[mem.PC]struct{})
	blocks := make(map[uint64]struct{})
	pages := make(map[uint64]struct{})
	regions := make(map[uint64]uint64) // region -> footprint bits

	rc := mem.MustRegionConfig(2048)
	for {
		if max > 0 && s.Records >= uint64(max) {
			break
		}
		rec, ok := src.Next()
		if !ok {
			break
		}
		s.Records++
		s.Instructions += rec.Instructions()
		if rec.Kind == Store {
			s.Stores++
		} else {
			s.Loads++
		}
		if rec.Dep {
			s.Dependent++
		}
		pcs[rec.PC] = struct{}{}
		blocks[rec.Addr.BlockNumber()] = struct{}{}
		pages[rec.Addr.PageNumber()] = struct{}{}
		regions[rc.RegionNumber(rec.Addr)] |= 1 << uint(rc.BlockIndex(rec.Addr))
	}

	s.UniquePCs = len(pcs)
	s.UniqueBlocks = len(blocks)
	s.UniquePages = len(pages)
	s.FootprintMB = float64(len(blocks)) * mem.BlockSize / (1 << 20)
	s.UniqueRegions = len(regions)

	if len(regions) > 0 {
		var fillSum float64
		var dense, single int
		for _, bits := range regions {
			n := popcount(bits)
			fillSum += float64(n) / float64(rc.Blocks())
			if n > rc.Blocks()/2 {
				dense++
			}
			if n == 1 {
				single++
			}
		}
		s.MeanRegionFill = fillSum / float64(len(regions))
		s.DenseRegions = float64(dense) / float64(len(regions))
		s.SingletonRegion = float64(single) / float64(len(regions))
	}
	return s
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// TopPCs returns the n most frequent PCs of a recorded trace with their
// access counts, sorted descending. It re-reads the given records.
func TopPCs(recs []Record, n int) []PCCount {
	counts := make(map[mem.PC]uint64)
	for _, r := range recs {
		counts[r.PC]++
	}
	out := make([]PCCount, 0, len(counts))
	for pc, c := range counts {
		out = append(out, PCCount{PC: pc, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// PCCount pairs a PC with its access count.
type PCCount struct {
	PC    mem.PC
	Count uint64
}
