package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzTraceReader drives the binary trace parser with arbitrary bytes —
// it must never panic, and whatever it does accept must round-trip: the
// decoded records, re-encoded through Writer, must decode again to the
// identical sequence. This pins down the wire format (including the flag
// bits a writer can produce) against parser drift.
func FuzzTraceReader(f *testing.F) {
	// Seed with a well-formed two-record trace, a truncated stream, an
	// alien header, and an empty input.
	var good bytes.Buffer
	w, err := NewWriter(&good, 2)
	if err != nil {
		f.Fatal(err)
	}
	recs := []Record{
		{PC: 0x401000, Addr: 0xdeadbeef, Kind: Load, NonMem: 3},
		{PC: 0x401008, Addr: 0xcafef00d, Kind: Store, Dep: true},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())-5])
	f.Add([]byte("NOTATRACEFILE___"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: fine
		}
		var decoded []Record
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			decoded = append(decoded, rec)
		}
		if r.Err() != nil {
			return // truncated/corrupt body: fine, as long as it didn't panic
		}
		if r.Remaining() != 0 {
			t.Fatalf("reader stopped with %d records remaining and no error", r.Remaining())
		}

		// Round-trip what was accepted.
		var buf bytes.Buffer
		w, err := NewWriter(&buf, uint64(len(decoded)))
		if err != nil {
			t.Fatalf("re-encoding header: %v", err)
		}
		for _, rec := range decoded {
			if err := w.Write(rec); err != nil {
				t.Fatalf("re-encoding record %+v: %v", rec, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("re-encoding close: %v", err)
		}
		r2, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding header: %v", err)
		}
		for i, want := range decoded {
			got, ok := r2.Next()
			if !ok {
				t.Fatalf("re-decoded stream ended at record %d of %d (err=%v)", i, len(decoded), r2.Err())
			}
			if got != want {
				t.Fatalf("record %d changed across round-trip: %+v != %+v", i, got, want)
			}
		}
		if _, ok := r2.Next(); ok {
			t.Fatal("re-decoded stream has extra records")
		}
	})
}

// FuzzGzipAutoReader feeds arbitrary bytes to the gzip-sniffing opener:
// no input may panic it or leak a half-open decompressor.
func FuzzGzipAutoReader(f *testing.F) {
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00})
	f.Add([]byte("BINGOTRC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, c, err := NewAutoReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
		if c != nil {
			var _ io.Closer = c
			// Best effort: fuzz inputs may hold corrupt gzip trailers.
			_ = c.Close()
		}
	})
}
