package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
)

// Traces compress extremely well (PC and address deltas repeat), so the
// tools support transparent gzip: writers opt in, readers auto-detect the
// gzip magic and decompress on the fly.

// gzipMagic are the first two bytes of any gzip stream.
//
//conc:immutable written only by its initializer; a format constant that arrays keep out of const
var gzipMagic = [2]byte{0x1f, 0x8b}

// NewAutoReader opens a trace stream that may or may not be
// gzip-compressed, sniffing the magic bytes. The returned closer, when
// non-nil, must be closed after reading (it owns the decompressor).
func NewAutoReader(r io.Reader) (*Reader, io.Closer, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(2)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: sniffing stream: %w", err)
	}
	if head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: opening gzip stream: %w", err)
		}
		tr, err := NewReader(gz)
		if err != nil {
			// Cleanup on a failure path: the header error wins.
			_ = gz.Close()
			return nil, nil, err
		}
		return tr, gz, nil
	}
	tr, err := NewReader(br)
	return tr, nil, err
}

// GzipWriter wraps a Writer so records are gzip-compressed on the way out.
type GzipWriter struct {
	//conc:core-local a trace writer streams one core's records from one goroutine
	*Writer
	//conc:core-local owned by this writer; flushed and closed only through it
	gz *gzip.Writer
}

// NewGzipWriter writes a gzip-compressed trace of exactly count records.
func NewGzipWriter(w io.Writer, count uint64) (*GzipWriter, error) {
	gz := gzip.NewWriter(w)
	tw, err := NewWriter(gz, count)
	if err != nil {
		// Cleanup on a failure path: the header-write error wins.
		_ = gz.Close()
		return nil, err
	}
	return &GzipWriter{Writer: tw, gz: gz}, nil
}

// Close flushes the trace then finalises the gzip stream.
func (w *GzipWriter) Close() error {
	if err := w.Writer.Close(); err != nil {
		// The trace-finalise error wins; still release the compressor.
		_ = w.gz.Close()
		return err
	}
	return w.gz.Close()
}
