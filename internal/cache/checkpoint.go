package cache

import (
	"fmt"
	"math/rand"

	"bingo/internal/checkpoint"
)

// Replacement-policy discriminators in the checkpoint payload.
const (
	policyStateLRU uint8 = iota
	policyStateRandom
	policyStateTree
)

// maxRandomReplay bounds the RNG replay a snapshot may demand; a corrupt
// cursor must not turn restore into an unbounded loop.
const maxRandomReplay = 1 << 32

// SaveState implements checkpoint.Checkpointable: counters, every line
// (struct-of-arrays over the set backing store), then the replacement
// policy's state behind a discriminator byte.
func (c *Cache) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	s := c.stats
	w.U64(s.Accesses)
	w.U64(s.Hits)
	w.U64(s.Misses)
	w.U64(s.LateHits)
	w.U64(s.PrefetchIssued)
	w.U64(s.PrefetchFills)
	w.U64(s.PrefetchHits)
	w.U64(s.UsefulPrefetch)
	w.U64(s.LatePrefetch)
	w.U64(s.UnusedPrefetch)
	w.U64(s.Evictions)
	w.U64(s.Writebacks)

	n := len(c.sets) * c.cfg.Assoc
	tags := make([]uint64, 0, n)
	valid := make([]bool, 0, n)
	dirty := make([]bool, 0, n)
	prefetched := make([]bool, 0, n)
	arrival := make([]uint64, 0, n)
	fillCore := make([]int, 0, n)
	for si := range c.sets {
		for _, ln := range c.sets[si] {
			tags = append(tags, ln.tag)
			valid = append(valid, ln.valid)
			dirty = append(dirty, ln.dirty)
			prefetched = append(prefetched, ln.prefetched)
			arrival = append(arrival, ln.arrival)
			fillCore = append(fillCore, ln.fillCore)
		}
	}
	w.U64s(tags)
	w.Bools(valid)
	w.Bools(dirty)
	w.Bools(prefetched)
	w.U64s(arrival)
	w.Ints(fillCore)

	switch p := c.policy.(type) {
	case *lruPolicy:
		w.U8(policyStateLRU)
		w.U64(p.clock)
		w.U64s(p.last)
	case *randomPolicy:
		w.U8(policyStateRandom)
		w.U64(p.draws)
	case *treePLRU:
		w.U8(policyStateTree)
		flat := make([]bool, 0, len(c.sets)*(c.cfg.Assoc-1))
		for _, bits := range p.bits {
			flat = append(flat, bits...)
		}
		w.Bools(flat)
	default:
		return fmt.Errorf("cache %s: replacement policy %T is not checkpointable", c.cfg.Name, c.policy)
	}
	return w.Err()
}

// LoadState implements checkpoint.Checkpointable. It must be called on a
// freshly built cache of the identical configuration; the snapshot's
// geometry and policy kind are validated before any state is committed,
// and under -tags=san the full invariant sweep runs on the restored
// contents.
func (c *Cache) LoadState(r *checkpoint.Reader) error {
	if c.stats != (Stats{}) {
		return fmt.Errorf("cache %s: checkpoint restore requires a freshly built cache", c.cfg.Name)
	}
	r.Version(1)
	var s Stats
	s.Accesses = r.U64()
	s.Hits = r.U64()
	s.Misses = r.U64()
	s.LateHits = r.U64()
	s.PrefetchIssued = r.U64()
	s.PrefetchFills = r.U64()
	s.PrefetchHits = r.U64()
	s.UsefulPrefetch = r.U64()
	s.LatePrefetch = r.U64()
	s.UnusedPrefetch = r.U64()
	s.Evictions = r.U64()
	s.Writebacks = r.U64()

	tags := r.U64s()
	valid := r.Bools()
	dirty := r.Bools()
	prefetched := r.Bools()
	arrival := r.U64s()
	fillCore := r.Ints()
	if err := r.Err(); err != nil {
		return err
	}
	n := len(c.sets) * c.cfg.Assoc
	if len(tags) != n || len(valid) != n || len(dirty) != n ||
		len(prefetched) != n || len(arrival) != n || len(fillCore) != n {
		return fmt.Errorf("cache %s: snapshot holds %d lines, cache has %d (configuration mismatch)", c.cfg.Name, len(tags), n)
	}
	// Valid lines must index into the set that stores them — a tag that
	// hashes elsewhere is a silently-wrong snapshot, not a usable one.
	for i := 0; i < n; i++ {
		if valid[i] && tags[i]&c.setMask != uint64(i/c.cfg.Assoc) {
			return fmt.Errorf("cache %s: snapshot line %d holds block %#x which maps to a different set", c.cfg.Name, i, tags[i])
		}
	}

	kind := r.U8()
	switch p := c.policy.(type) {
	case *lruPolicy:
		clock := r.U64()
		last := r.U64s()
		if err := r.Err(); err != nil {
			return err
		}
		if kind != policyStateLRU {
			return fmt.Errorf("cache %s: snapshot policy kind %d, cache uses LRU", c.cfg.Name, kind)
		}
		if len(last) != n {
			return fmt.Errorf("cache %s: LRU snapshot holds %d stamps, want %d", c.cfg.Name, len(last), n)
		}
		for i, t := range last {
			if t > clock {
				return fmt.Errorf("cache %s: LRU stamp %d of line %d ahead of policy clock %d", c.cfg.Name, t, i, clock)
			}
		}
		p.clock = clock
		p.last = last
	case *randomPolicy:
		draws := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if kind != policyStateRandom {
			return fmt.Errorf("cache %s: snapshot policy kind %d, cache uses random replacement", c.cfg.Name, kind)
		}
		if draws > maxRandomReplay {
			return fmt.Errorf("cache %s: random-policy cursor %d exceeds replay limit", c.cfg.Name, draws)
		}
		// Reposition the deterministic stream by replaying it from the
		// fixed seed (see newPolicy).
		p.rng = rand.New(rand.NewSource(1))
		for i := uint64(0); i < draws; i++ {
			p.rng.Intn(p.assoc)
		}
		p.draws = draws
	case *treePLRU:
		flat := r.Bools()
		if err := r.Err(); err != nil {
			return err
		}
		if kind != policyStateTree {
			return fmt.Errorf("cache %s: snapshot policy kind %d, cache uses tree-PLRU", c.cfg.Name, kind)
		}
		if want := len(c.sets) * (c.cfg.Assoc - 1); len(flat) != want {
			return fmt.Errorf("cache %s: tree-PLRU snapshot holds %d bits, want %d", c.cfg.Name, len(flat), want)
		}
		for si := range p.bits {
			copy(p.bits[si], flat[si*(c.cfg.Assoc-1):])
		}
	default:
		return fmt.Errorf("cache %s: replacement policy %T is not checkpointable", c.cfg.Name, c.policy)
	}

	for si := range c.sets {
		set := c.sets[si]
		for w := range set {
			i := si*c.cfg.Assoc + w
			set[w] = line{
				tag:        tags[i],
				valid:      valid[i],
				dirty:      dirty[i],
				prefetched: prefetched[i],
				arrival:    arrival[i],
				fillCore:   fillCore[i],
			}
		}
	}
	c.stats = s
	c.sanPostRestore()
	return nil
}
