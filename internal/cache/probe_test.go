package cache

import (
	"reflect"
	"testing"
)

// probeEvent is one recorded PrefetchProbe callback.
type probeEvent struct {
	kind   string // "redundant", "fill", "use", "evict"
	core   int
	late   bool
	cycles uint64
}

// recordingProbe captures the lifecycle callbacks in order.
type recordingProbe struct {
	events []probeEvent
}

func (p *recordingProbe) PrefetchRedundant(core int) {
	p.events = append(p.events, probeEvent{kind: "redundant", core: core})
}
func (p *recordingProbe) PrefetchFill(core int) {
	p.events = append(p.events, probeEvent{kind: "fill", core: core})
}
func (p *recordingProbe) PrefetchUse(core int, late bool, cycles uint64) {
	p.events = append(p.events, probeEvent{kind: "use", core: core, late: late, cycles: cycles})
}
func (p *recordingProbe) PrefetchEvictUnused(core int) {
	p.events = append(p.events, probeEvent{kind: "evict", core: core})
}

func TestPrefetchProbeLifecycle(t *testing.T) {
	c, _ := smallCache(t, 64*16, 2) // lower latency 100, hit latency 2
	probe := &recordingProbe{}
	c.SetPrefetchProbe(probe)

	// Fill, then a redundant prefetch to the same block.
	c.Access(0, Request{Addr: 0x1000, Core: 1, Kind: Prefetch})
	c.Access(0, Request{Addr: 0x1000, Core: 2, Kind: Prefetch})

	// Late use: demand at cycle 1 has ready=3, the fill lands at 102.
	res := c.Access(1, Request{Addr: 0x1000, Core: 0, Kind: Demand})
	if res.CompleteAt != 102 {
		t.Fatalf("late demand completes at %d, want 102", res.CompleteAt)
	}

	// Timely use: prefetch at 2 arrives at 104; demand at 200 has
	// ready=202, margin 98. (Cycle 2, not 0: access clocks must be
	// monotone — the sanitized build enforces SAN-CACHE-CLOCK.)
	c.Access(2, Request{Addr: 0x2000, Core: 3, Kind: Prefetch})
	c.Access(200, Request{Addr: 0x2000, Core: 0, Kind: Demand})

	want := []probeEvent{
		{kind: "fill", core: 1},
		{kind: "redundant", core: 2},
		{kind: "use", core: 1, late: true, cycles: 99}, // arrival 102 - ready 3
		{kind: "fill", core: 3},
		{kind: "use", core: 3, late: false, cycles: 98}, // ready 202 - arrival 104
	}
	if !reflect.DeepEqual(probe.events, want) {
		t.Fatalf("probe events:\n got %+v\nwant %+v", probe.events, want)
	}

	// The probe's use classification matches the stats counters.
	st := c.Stats()
	if st.UsefulPrefetch != 2 || st.LatePrefetch != 1 || st.PrefetchFills != 2 || st.PrefetchHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPrefetchProbeEvictUnused(t *testing.T) {
	// Direct-mapped single set: the second fill evicts the first.
	lower := &fakeLower{latency: 10}
	c := MustNew(Config{Name: "T", SizeBytes: 64, Assoc: 1, HitLatency: 1, Policy: LRU}, lower)
	probe := &recordingProbe{}
	c.SetPrefetchProbe(probe)

	c.Access(0, Request{Addr: 0x0000, Core: 2, Kind: Prefetch})
	c.Access(0, Request{Addr: 0x4000, Core: 0, Kind: Demand}) // same set, evicts the prefetch

	want := []probeEvent{
		{kind: "fill", core: 2},
		{kind: "evict", core: 2},
	}
	if !reflect.DeepEqual(probe.events, want) {
		t.Fatalf("probe events:\n got %+v\nwant %+v", probe.events, want)
	}
	if st := c.Stats(); st.UnusedPrefetch != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestProbeIsPureObserver pins that attaching a probe changes no timing
// and no stats: two identical access sequences, one probed, must yield
// identical results and counters.
func TestProbeIsPureObserver(t *testing.T) {
	run := func(withProbe bool) ([]Result, Stats) {
		c, _ := smallCache(t, 64*8, 2)
		if withProbe {
			c.SetPrefetchProbe(&recordingProbe{})
		}
		seq := []Request{
			{Addr: 0x1000, Core: 0, Kind: Prefetch},
			{Addr: 0x1000, Core: 1, Kind: Demand},
			{Addr: 0x2000, Core: 1, Kind: Write},
			{Addr: 0x3000, Core: 0, Kind: Prefetch},
			{Addr: 0x3000, Core: 0, Kind: Prefetch},
			{Addr: 0x4000, Core: 1, Kind: Demand},
		}
		var out []Result
		for i, req := range seq {
			out = append(out, c.Access(uint64(i*7), req))
		}
		return out, c.Stats()
	}
	r1, s1 := run(false)
	r2, s2 := run(true)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("probe changed access results")
	}
	if s1 != s2 {
		t.Fatalf("probe changed stats: %+v vs %+v", s1, s2)
	}
}

func TestStatsDelta(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 7, Misses: 3, LateHits: 1, PrefetchIssued: 5, PrefetchFills: 4,
		PrefetchHits: 1, UsefulPrefetch: 2, LatePrefetch: 1, UnusedPrefetch: 1, Evictions: 2, Writebacks: 1}
	b := Stats{Accesses: 25, Hits: 18, Misses: 7, LateHits: 2, PrefetchIssued: 9, PrefetchFills: 7,
		PrefetchHits: 2, UsefulPrefetch: 5, LatePrefetch: 2, UnusedPrefetch: 1, Evictions: 6, Writebacks: 3}
	d := b.Delta(a)
	want := Stats{Accesses: 15, Hits: 11, Misses: 4, LateHits: 1, PrefetchIssued: 4, PrefetchFills: 3,
		PrefetchHits: 1, UsefulPrefetch: 3, LatePrefetch: 1, UnusedPrefetch: 0, Evictions: 4, Writebacks: 2}
	if d != want {
		t.Fatalf("Delta = %+v, want %+v", d, want)
	}
	if b.Delta(Stats{}) != b {
		t.Fatal("delta from zero must equal the stats themselves")
	}
}
