package cache

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/san"
)

// stubLevel is a fixed-latency backstop for the hot-path guard.
type stubLevel struct{}

func (stubLevel) Access(now uint64, req Request) Result {
	return Result{CompleteAt: now + 100, HitLevel: "stub"}
}

// TestAccessHotPathDoesNotAllocate pins the core guarantee of the
// sanitizer design: the per-access hooks live in the hot path, so they
// must cost zero allocations in BOTH build flavors. Untagged, the hooks
// are empty methods on an empty struct; under -tags=san, every check —
// including the periodic deep sweep — works on preallocated state. A
// regression here would show up as harness slowdown long before anything
// crashes, which is why it is a test and not a benchmark eyeball.
// (BENCH_runner.json tracks the wall-clock side of the same promise.)
func TestAccessHotPathDoesNotAllocate(t *testing.T) {
	c := MustNew(Config{Name: "L1", SizeBytes: 64 * 1024, Assoc: 8, HitLatency: 4, Policy: LRU}, stubLevel{})

	// Force the san deep sweep to run inside the measured window so its
	// cost is covered by the guard too.
	defer san.Apply(san.DefaultConfig())
	san.Apply(san.Config{Enabled: true, DeepInterval: 64})

	var now uint64
	var i uint64
	avg := testing.AllocsPerRun(20000, func() {
		now++
		addr := mem.Addr((i * 5 * mem.BlockSize) % (1 << 22)) // mixes hits and misses
		kind := Demand
		switch i % 5 {
		case 3:
			kind = Write
		case 4:
			kind = Prefetch
		}
		c.Access(now, Request{Addr: addr, PC: mem.PC(i & 0xff), Core: 0, Kind: kind})
		i++
	})
	if avg != 0 {
		t.Errorf("cache access hot path allocates %.2f times per access (san.Compiled=%v); want 0",
			avg, san.Compiled)
	}
}
