package cache

import (
	"testing"

	"bingo/internal/mem"
)

type nullLower struct{}

func (nullLower) Access(now uint64, req Request) Result {
	return Result{CompleteAt: now + 200, HitLevel: "DRAM"}
}

func benchCache(b *testing.B) *Cache {
	b.Helper()
	c, err := New(Config{Name: "B", SizeBytes: 8 << 20, Assoc: 16, HitLatency: 15, Policy: LRU}, nullLower{})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkAccessHit(b *testing.B) {
	c := benchCache(b)
	c.Access(0, Request{Addr: 0x1000, Kind: Demand})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i), Request{Addr: 0x1000, Kind: Demand})
	}
}

func BenchmarkAccessMissStream(b *testing.B) {
	c := benchCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i), Request{Addr: mem.Addr(uint64(i) << mem.BlockShift), Kind: Demand})
	}
}

func BenchmarkPrefetchFill(b *testing.B) {
	c := benchCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i), Request{Addr: mem.Addr(uint64(i) << mem.BlockShift), Kind: Prefetch})
	}
}
