//go:build san

package cache

import "bingo/internal/san"

// sanState is the per-cache checker state of the runtime invariant
// sanitizer (build tag `san`). All checks are allocation-free on the
// healthy path; see internal/san for the catalog and failure semantics.
type sanState struct {
	lastAccess uint64 // most recent access cycle (SAN-CACHE-CLOCK)
	events     uint64 // accesses since the last deep sweep
}

// sanAfterAccess runs the O(assoc²) per-access checks and, every
// san.DeepInterval accesses, the O(cache-size) accounting sweep.
func (c *Cache) sanAfterAccess(now, ready uint64, si int, res Result) {
	if !san.Enabled() {
		return
	}
	if now < c.san.lastAccess {
		san.Failf(c.cfg.Name, now, san.CacheClock,
			"access at cycle %d after an access at cycle %d", now, c.san.lastAccess)
	}
	c.san.lastAccess = now
	if res.CompleteAt < ready {
		san.Failf(c.cfg.Name, now, san.CacheMSHR,
			"completion cycle %d earlier than now+hit latency = %d (fill arrived in the past)",
			res.CompleteAt, ready)
	}
	c.sanCheckSet(now, si)
	c.sanCheckEvents(now)
	c.san.events++
	if c.san.events >= san.DeepInterval() {
		c.san.events = 0
		c.sanDeepCheck(now)
	}
}

// sanAtInstall verifies MSHR fill semantics at line-install time: a fill's
// arrival cycle may be in the future (in-flight) but never in the past.
func (c *Cache) sanAtInstall(now uint64, si int, ln line) {
	if !san.Enabled() {
		return
	}
	if ln.arrival < now {
		san.Failf(c.cfg.Name, now, san.CacheMSHR,
			"installing block %#x in set %d with arrival cycle %d < now %d", ln.tag, si, ln.arrival, now)
	}
}

// sanCheckVictim verifies the replacement policy returned an in-range,
// currently valid way (Victim is only consulted when the set is full).
func (c *Cache) sanCheckVictim(now uint64, si, w int) {
	if !san.Enabled() {
		return
	}
	if w < 0 || w >= c.cfg.Assoc {
		san.Failf(c.cfg.Name, now, san.CacheLRU,
			"policy victim way %d out of range [0,%d) for set %d", w, c.cfg.Assoc, si)
	}
	if !c.sets[si][w].valid {
		san.Failf(c.cfg.Name, now, san.CacheLRU,
			"policy chose invalid way %d of full set %d as victim", w, si)
	}
}

// sanCheckSet verifies structural set invariants: unique tags, occupancy
// within associativity, and well-formed replacement state.
func (c *Cache) sanCheckSet(now uint64, si int) {
	set := c.sets[si]
	valid := 0
	for i := range set {
		if !set[i].valid {
			continue
		}
		valid++
		for j := i + 1; j < len(set); j++ {
			if set[j].valid && set[j].tag == set[i].tag {
				san.Failf(c.cfg.Name, now, san.CacheDupTag,
					"set %d holds block %#x in ways %d and %d", si, set[i].tag, i, j)
			}
		}
	}
	if valid > c.cfg.Assoc {
		san.Failf(c.cfg.Name, now, san.CacheOccupancy,
			"set %d holds %d valid lines, associativity %d", si, valid, c.cfg.Assoc)
	}
	if p, ok := c.policy.(*lruPolicy); ok {
		c.sanCheckLRU(now, si, p)
	}
}

// sanCheckLRU verifies the LRU recency stack of one set: stamps never run
// ahead of the policy clock and touched ways carry distinct stamps (a
// duplicate stamp would make the victim choice ambiguous — a malformed
// recency stack).
func (c *Cache) sanCheckLRU(now uint64, si int, p *lruPolicy) {
	base := si * p.assoc
	for i := 0; i < p.assoc; i++ {
		ti := p.last[base+i]
		if ti > p.clock {
			san.Failf(c.cfg.Name, now, san.CacheLRU,
				"set %d way %d recency stamp %d ahead of policy clock %d", si, i, ti, p.clock)
		}
		if ti == 0 {
			continue // never touched
		}
		for j := i + 1; j < p.assoc; j++ {
			if p.last[base+j] == ti {
				san.Failf(c.cfg.Name, now, san.CacheLRU,
					"set %d ways %d and %d share recency stamp %d", si, i, j, ti)
			}
		}
	}
}

// sanPostRestore runs the full invariant sweep — every set's structural
// checks, event conservation, and the deep prefetch-accounting recount —
// over freshly restored checkpoint state, so a corrupt-but-well-framed
// snapshot fails at load time rather than cycles later.
func (c *Cache) sanPostRestore() {
	if !san.Enabled() {
		return
	}
	for si := range c.sets {
		c.sanCheckSet(0, si)
	}
	c.sanCheckEvents(0)
	c.sanDeepCheck(0)
}

// sanCheckEvents verifies per-access event conservation on the counters.
func (c *Cache) sanCheckEvents(now uint64) {
	s := c.stats
	if s.Accesses != s.Hits+s.Misses {
		san.Failf(c.cfg.Name, now, san.CacheEvents,
			"demand accesses %d ≠ hits %d + misses %d", s.Accesses, s.Hits, s.Misses)
	}
	if s.PrefetchIssued != s.PrefetchFills+s.PrefetchHits {
		san.Failf(c.cfg.Name, now, san.CacheEvents,
			"prefetches issued %d ≠ fills %d + redundant drops %d", s.PrefetchIssued, s.PrefetchFills, s.PrefetchHits)
	}
	if s.LateHits > s.Hits {
		san.Failf(c.cfg.Name, now, san.CacheEvents, "late hits %d exceed hits %d", s.LateHits, s.Hits)
	}
	if s.LatePrefetch > s.UsefulPrefetch {
		san.Failf(c.cfg.Name, now, san.CachePrefetchAccounting,
			"late prefetch hits %d exceed useful prefetches %d", s.LatePrefetch, s.UsefulPrefetch)
	}
	if s.UsefulPrefetch+s.UnusedPrefetch > s.PrefetchFills {
		san.Failf(c.cfg.Name, now, san.CachePrefetchAccounting,
			"prefetch outcomes useful %d + unused %d exceed fills %d",
			s.UsefulPrefetch, s.UnusedPrefetch, s.PrefetchFills)
	}
}

// sanDeepCheck recounts the prefetched bits of every resident line and
// closes the prefetch-accounting conservation equation: every fill is
// eventually counted exactly once as useful or unused, and until then is
// resident with its prefetched bit set.
func (c *Cache) sanDeepCheck(now uint64) {
	var resident uint64
	for si := range c.sets {
		set := c.sets[si]
		for w := range set {
			if set[w].valid && set[w].prefetched {
				resident++
			}
		}
	}
	s := c.stats
	if s.PrefetchFills != s.UsefulPrefetch+s.UnusedPrefetch+resident {
		san.Failf(c.cfg.Name, now, san.CachePrefetchAccounting,
			"fills %d ≠ useful %d + unused %d + resident prefetched %d",
			s.PrefetchFills, s.UsefulPrefetch, s.UnusedPrefetch, resident)
	}
}
