package cache

import "math/rand"

// PolicyKind selects a replacement policy.
type PolicyKind uint8

const (
	// LRU evicts the least-recently-touched way (the paper's baseline).
	LRU PolicyKind = iota
	// RandomRepl evicts a pseudo-random way; used in ablations.
	RandomRepl
	// TreePLRU is the tree pseudo-LRU hardware approximation: one bit per
	// internal node of a binary tree over the ways. Requires power-of-two
	// associativity.
	TreePLRU
)

// String names the policy.
func (k PolicyKind) String() string {
	switch k {
	case RandomRepl:
		return "random"
	case TreePLRU:
		return "tree-plru"
	default:
		return "lru"
	}
}

// Policy decides victims within a set. Implementations are created per
// cache instance and are not safe for concurrent use.
type Policy interface {
	// Touch records a reference to (set, way).
	Touch(set, way int)
	// Victim returns the way to evict from set.
	Victim(set int) int
}

func newPolicy(kind PolicyKind, sets, assoc int) Policy {
	switch kind {
	case RandomRepl:
		return &randomPolicy{assoc: assoc, rng: rand.New(rand.NewSource(1))}
	case TreePLRU:
		if assoc&(assoc-1) == 0 && assoc > 1 {
			return newTreePLRU(sets, assoc)
		}
		return newLRUPolicy(sets, assoc) // non-pow2 ways: fall back
	default:
		return newLRUPolicy(sets, assoc)
	}
}

// lruPolicy keeps a global reference clock and a per-line timestamp.
type lruPolicy struct {
	assoc int
	clock uint64
	last  []uint64 // sets*assoc timestamps
}

func newLRUPolicy(sets, assoc int) *lruPolicy {
	return &lruPolicy{assoc: assoc, last: make([]uint64, sets*assoc)}
}

func (p *lruPolicy) Touch(set, way int) {
	p.clock++
	p.last[set*p.assoc+way] = p.clock
}

func (p *lruPolicy) Victim(set int) int {
	base := set * p.assoc
	best, bestTime := 0, p.last[base]
	for w := 1; w < p.assoc; w++ {
		if t := p.last[base+w]; t < bestTime {
			best, bestTime = w, t
		}
	}
	return best
}

type randomPolicy struct {
	assoc int
	//conc:core-local each cache owns its policy RNG; no other component touches it
	rng *rand.Rand
	// draws counts Victim calls. The RNG stream is deterministic from its
	// fixed seed, so a checkpoint stores only this cursor and restore
	// replays the stream to reposition it (see LoadState in checkpoint.go).
	draws uint64
}

func (p *randomPolicy) Touch(int, int) {}

func (p *randomPolicy) Victim(int) int {
	p.draws++
	return p.rng.Intn(p.assoc)
}

// treePLRU keeps assoc-1 direction bits per set, arranged as an implicit
// binary tree: node i's children are 2i+1 and 2i+2; a bit of 0 means the
// PLRU victim lies in the left subtree. Touching a way flips the bits on
// its root path to point away from it.
type treePLRU struct {
	assoc  int
	levels int
	bits   [][]bool // per set: assoc-1 node bits
}

func newTreePLRU(sets, assoc int) *treePLRU {
	levels := 0
	for 1<<levels < assoc {
		levels++
	}
	p := &treePLRU{assoc: assoc, levels: levels, bits: make([][]bool, sets)}
	for i := range p.bits {
		p.bits[i] = make([]bool, assoc-1)
	}
	return p
}

func (p *treePLRU) Touch(set, way int) {
	bits := p.bits[set]
	node := 0
	for level := p.levels - 1; level >= 0; level-- {
		right := way>>uint(level)&1 == 1
		// Point the victim pointer at the *other* subtree.
		bits[node] = !right
		if right {
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
	}
}

func (p *treePLRU) Victim(set int) int {
	bits := p.bits[set]
	node, way := 0, 0
	for level := 0; level < p.levels; level++ {
		if bits[node] {
			way = way<<1 | 1
			node = 2*node + 2
		} else {
			way <<= 1
			node = 2*node + 1
		}
	}
	return way
}
