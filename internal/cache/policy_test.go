package cache

import (
	"testing"

	"bingo/internal/mem"
)

func TestTreePLRUVictimAfterSequentialTouches(t *testing.T) {
	p := newTreePLRU(1, 4)
	for w := 0; w < 4; w++ {
		p.Touch(0, w)
	}
	// Classic 4-way tree-PLRU after touching 0,1,2,3: the victim is 0.
	if v := p.Victim(0); v != 0 {
		t.Fatalf("victim = %d, want 0", v)
	}
	p.Touch(0, 0)
	if v := p.Victim(0); v == 0 {
		t.Fatal("just-touched way must not be the victim")
	}
}

func TestTreePLRUNeverVictimisesMostRecent(t *testing.T) {
	p := newTreePLRU(1, 8)
	seq := []int{3, 1, 4, 1, 5, 2, 6, 5, 3, 7, 0, 2}
	for _, w := range seq {
		p.Touch(0, w)
		if v := p.Victim(0); v == w {
			t.Fatalf("victim %d equals most recently touched way", v)
		}
	}
}

func TestTreePLRUSetsIndependent(t *testing.T) {
	p := newTreePLRU(2, 4)
	for w := 0; w < 4; w++ {
		p.Touch(0, w)
	}
	// Set 1 untouched: its victim is the default path (way 0), and set
	// 0's state must not leak.
	if v := p.Victim(1); v != 0 {
		t.Fatalf("untouched set victim = %d", v)
	}
}

func TestTreePLRUCacheIntegration(t *testing.T) {
	lower := &fakeLower{latency: 10}
	c := MustNew(Config{Name: "P", SizeBytes: 64 * 4, Assoc: 4, HitLatency: 1, Policy: TreePLRU}, lower)
	// One set of 4 ways: fill, then touch way of block 0, then insert a
	// fifth block; block 0 must survive.
	for blk := uint64(0); blk < 4; blk++ {
		c.Access(blk, Request{Addr: addrOf(blk), Kind: Demand})
	}
	c.Access(10, Request{Addr: addrOf(0), Kind: Demand})
	c.Access(11, Request{Addr: addrOf(4), Kind: Demand})
	if !c.Contains(addrOf(0)) {
		t.Fatal("recently touched block evicted under tree-PLRU")
	}
}

func addrOf(block uint64) mem.Addr { return mem.Addr(block << mem.BlockShift) }
