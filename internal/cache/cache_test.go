package cache

import (
	"testing"

	"bingo/internal/mem"
)

// fakeLower is a constant-latency memory for isolating cache behaviour.
type fakeLower struct {
	latency  uint64
	accesses []Request
	writebs  []mem.Addr
}

func (f *fakeLower) Access(now uint64, req Request) Result {
	f.accesses = append(f.accesses, req)
	return Result{CompleteAt: now + f.latency, HitLevel: "DRAM"}
}

func (f *fakeLower) Writeback(now uint64, addr mem.Addr) {
	f.writebs = append(f.writebs, addr)
}

func smallCache(t *testing.T, sizeBytes, assoc int) (*Cache, *fakeLower) {
	t.Helper()
	lower := &fakeLower{latency: 100}
	c, err := New(Config{Name: "T", SizeBytes: sizeBytes, Assoc: assoc, HitLatency: 2, Policy: LRU}, lower)
	if err != nil {
		t.Fatal(err)
	}
	return c, lower
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, Assoc: 1},
		{Name: "b", SizeBytes: 100, Assoc: 1},     // not block-divisible
		{Name: "c", SizeBytes: 64 * 3, Assoc: 1},  // 3 sets: not pow2
		{Name: "d", SizeBytes: 1024, Assoc: 0},    // zero assoc
		{Name: "e", SizeBytes: 64 * 8, Assoc: 3},  // not divisible by ways
		{Name: "f", SizeBytes: 64 * 12, Assoc: 2}, // 6 sets: not pow2
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q should fail validation", cfg.Name)
		}
	}
	if err := (Config{Name: "ok", SizeBytes: 64 * 16, Assoc: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := New(Config{Name: "ok", SizeBytes: 64 * 16, Assoc: 2}, nil); err == nil {
		t.Error("nil lower level should fail")
	}
}

func TestMissThenHit(t *testing.T) {
	c, lower := smallCache(t, 64*16, 2)
	req := Request{Addr: 0x1000, Kind: Demand}

	res := c.Access(0, req)
	if res.HitLevel != "DRAM" {
		t.Fatalf("first access should miss to DRAM, got %q", res.HitLevel)
	}
	if res.CompleteAt != 2+100 {
		t.Fatalf("miss latency = %d, want 102", res.CompleteAt)
	}

	res = c.Access(200, req)
	if res.HitLevel != "T" {
		t.Fatalf("second access should hit, got %q", res.HitLevel)
	}
	if res.CompleteAt != 202 {
		t.Fatalf("hit latency = %d, want 202", res.CompleteAt)
	}

	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(lower.accesses) != 1 {
		t.Fatalf("lower saw %d accesses, want 1", len(lower.accesses))
	}
}

func TestInFlightCoalescing(t *testing.T) {
	c, lower := smallCache(t, 64*16, 2)
	req := Request{Addr: 0x1000, Kind: Demand}
	c.Access(0, req) // fill completes at 102

	// A second access at cycle 10 must wait for the in-flight fill, not
	// issue a duplicate request below.
	res := c.Access(10, req)
	if res.CompleteAt != 102 {
		t.Fatalf("coalesced access completes at %d, want 102", res.CompleteAt)
	}
	if len(lower.accesses) != 1 {
		t.Fatalf("duplicate request issued below")
	}
	if c.Stats().LateHits != 1 {
		t.Fatalf("LateHits = %d", c.Stats().LateHits)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-per-set: 2 sets × 2 ways. Blocks 0,2,4 share set 0.
	c, _ := smallCache(t, 64*4, 2)
	addr := func(block uint64) mem.Addr { return mem.Addr(block << mem.BlockShift) }

	c.Access(0, Request{Addr: addr(0), Kind: Demand})
	c.Access(1, Request{Addr: addr(2), Kind: Demand})
	c.Access(2, Request{Addr: addr(0), Kind: Demand}) // touch block 0: block 2 is now LRU
	c.Access(3, Request{Addr: addr(4), Kind: Demand}) // evicts block 2

	if !c.Contains(addr(0)) || !c.Contains(addr(4)) {
		t.Fatal("blocks 0 and 4 should be resident")
	}
	if c.Contains(addr(2)) {
		t.Fatal("block 2 should have been evicted (LRU)")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d", c.Stats().Evictions)
	}
}

func TestEvictionListener(t *testing.T) {
	c, _ := smallCache(t, 64*4, 2)
	var evicted []mem.Addr
	c.SetEvictionListener(listenerFunc(func(a mem.Addr) { evicted = append(evicted, a) }))
	addr := func(block uint64) mem.Addr { return mem.Addr(block << mem.BlockShift) }
	c.Access(0, Request{Addr: addr(0), Kind: Demand})
	c.Access(1, Request{Addr: addr(2), Kind: Demand})
	c.Access(2, Request{Addr: addr(4), Kind: Demand}) // evicts block 0
	if len(evicted) != 1 || evicted[0] != addr(0) {
		t.Fatalf("evicted = %v", evicted)
	}
}

type listenerFunc func(mem.Addr)

func (f listenerFunc) OnEviction(a mem.Addr) { f(a) }

func TestWritebackOnDirtyEviction(t *testing.T) {
	c, lower := smallCache(t, 64*4, 2)
	addr := func(block uint64) mem.Addr { return mem.Addr(block << mem.BlockShift) }
	c.Access(0, Request{Addr: addr(0), Kind: Write})
	c.Access(1, Request{Addr: addr(2), Kind: Demand})
	c.Access(2, Request{Addr: addr(4), Kind: Demand}) // evicts dirty block 0
	if c.Stats().Writebacks != 1 {
		t.Fatalf("Writebacks = %d", c.Stats().Writebacks)
	}
	if len(lower.writebs) != 1 || lower.writebs[0] != addr(0) {
		t.Fatalf("lower writebacks = %v", lower.writebs)
	}
}

func TestWriteMarksDirtyOnHit(t *testing.T) {
	c, lower := smallCache(t, 64*4, 2)
	addr := func(block uint64) mem.Addr { return mem.Addr(block << mem.BlockShift) }
	c.Access(0, Request{Addr: addr(0), Kind: Demand}) // clean fill
	c.Access(1, Request{Addr: addr(0), Kind: Write})  // hit, mark dirty
	c.Access(2, Request{Addr: addr(2), Kind: Demand})
	c.Access(3, Request{Addr: addr(4), Kind: Demand}) // evicts block 0? (touched at 1) -> block 2 is newer... block 0 LRU? touched at 1 < 2 so evict 0
	if len(lower.writebs) != 1 {
		t.Fatalf("dirty hit should cause writeback on eviction, got %v", lower.writebs)
	}
}

func TestPrefetchFillAndUsefulness(t *testing.T) {
	c, _ := smallCache(t, 64*16, 2)
	pf := Request{Addr: 0x2000, Kind: Prefetch}
	res := c.Access(0, pf)
	if res.HitLevel != "DRAM" {
		t.Fatalf("prefetch miss should go below, got %q", res.HitLevel)
	}
	st := c.Stats()
	if st.PrefetchIssued != 1 || st.PrefetchFills != 1 {
		t.Fatalf("prefetch stats = %+v", st)
	}
	// Demand hit on the prefetched line marks it useful exactly once.
	c.Access(200, Request{Addr: 0x2000, Kind: Demand})
	c.Access(300, Request{Addr: 0x2000, Kind: Demand})
	st = c.Stats()
	if st.UsefulPrefetch != 1 {
		t.Fatalf("UsefulPrefetch = %d, want 1", st.UsefulPrefetch)
	}
	if st.Misses != 0 {
		t.Fatalf("covered access should not count as a miss")
	}
}

func TestRedundantPrefetchDropped(t *testing.T) {
	c, lower := smallCache(t, 64*16, 2)
	c.Access(0, Request{Addr: 0x2000, Kind: Demand})
	c.Access(200, Request{Addr: 0x2000, Kind: Prefetch})
	if got := c.Stats().PrefetchHits; got != 1 {
		t.Fatalf("PrefetchHits = %d", got)
	}
	if len(lower.accesses) != 1 {
		t.Fatal("redundant prefetch should not reach lower level")
	}
}

func TestLatePrefetch(t *testing.T) {
	c, _ := smallCache(t, 64*16, 2)
	c.Access(0, Request{Addr: 0x2000, Kind: Prefetch}) // arrives at 102
	res := c.Access(50, Request{Addr: 0x2000, Kind: Demand})
	if res.CompleteAt != 102 {
		t.Fatalf("late prefetch hit completes at %d, want 102", res.CompleteAt)
	}
	st := c.Stats()
	if st.LatePrefetch != 1 || st.UsefulPrefetch != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnusedPrefetchCountedOnEviction(t *testing.T) {
	c, _ := smallCache(t, 64*4, 2)
	addr := func(block uint64) mem.Addr { return mem.Addr(block << mem.BlockShift) }
	c.Access(0, Request{Addr: addr(0), Kind: Prefetch})
	c.Access(1, Request{Addr: addr(2), Kind: Demand})
	c.Access(2, Request{Addr: addr(4), Kind: Demand}) // evicts prefetched block 0
	if c.Stats().UnusedPrefetch != 1 {
		t.Fatalf("UnusedPrefetch = %d", c.Stats().UnusedPrefetch)
	}
}

func TestFlushReportsEvictions(t *testing.T) {
	c, _ := smallCache(t, 64*16, 2)
	var evicted int
	c.SetEvictionListener(listenerFunc(func(mem.Addr) { evicted++ }))
	for i := uint64(0); i < 8; i++ {
		c.Access(i, Request{Addr: mem.Addr(i << mem.BlockShift), Kind: Demand})
	}
	c.Flush(100)
	if evicted != 8 {
		t.Fatalf("flush evicted %d, want 8", evicted)
	}
	if c.Contains(0) {
		t.Fatal("cache should be empty after flush")
	}
}

func TestWritebackInstall(t *testing.T) {
	c, _ := smallCache(t, 64*16, 2)
	c.Writeback(0, 0x3000)
	if !c.Contains(0x3000) {
		t.Fatal("writeback should install the block")
	}
	// Writeback to an existing line just marks dirty.
	c.Access(1, Request{Addr: 0x4000, Kind: Demand})
	c.Writeback(2, 0x4000)
	if got := c.Stats().Accesses; got != 1 {
		t.Fatalf("writeback should not count as demand access, accesses=%d", got)
	}
}

func TestResetStats(t *testing.T) {
	c, _ := smallCache(t, 64*16, 2)
	c.Access(0, Request{Addr: 0x1000, Kind: Demand})
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("ResetStats should zero counters")
	}
	if !c.Contains(0x1000) {
		t.Fatal("ResetStats should not flush contents")
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Accesses: 100, Hits: 75, Misses: 25}
	if s.HitRate() != 0.75 {
		t.Fatalf("HitRate = %v", s.HitRate())
	}
	if s.MPKI(1000) != 25 {
		t.Fatalf("MPKI = %v", s.MPKI(1000))
	}
	if (Stats{}).HitRate() != 0 || (Stats{}).MPKI(0) != 0 {
		t.Fatal("zero-value stats should not divide by zero")
	}
}

func TestAccessKindString(t *testing.T) {
	if Demand.String() != "demand" || Write.String() != "write" || Prefetch.String() != "prefetch" {
		t.Fatal("AccessKind strings wrong")
	}
}

func TestRandomPolicySmoke(t *testing.T) {
	lower := &fakeLower{latency: 10}
	c := MustNew(Config{Name: "R", SizeBytes: 64 * 8, Assoc: 2, HitLatency: 1, Policy: RandomRepl}, lower)
	for i := uint64(0); i < 64; i++ {
		c.Access(i, Request{Addr: mem.Addr(i << mem.BlockShift), Kind: Demand})
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("random policy should evict under pressure")
	}
	if LRU.String() != "lru" || RandomRepl.String() != "random" {
		t.Fatal("policy names wrong")
	}
}

func TestMemoryLevelAdapter(t *testing.T) {
	f := &fakeLower{latency: 9}
	ml := MemoryLevel{Mem: backstopFunc(func(now uint64, addr mem.Addr, write bool) uint64 {
		return now + 9
	})}
	res := ml.Access(5, Request{Addr: 0x40, Kind: Demand})
	if res.CompleteAt != 14 || res.HitLevel != "DRAM" {
		t.Fatalf("MemoryLevel result = %+v", res)
	}
	_ = f
}

type backstopFunc func(uint64, mem.Addr, bool) uint64

func (f backstopFunc) Access(now uint64, addr mem.Addr, write bool) uint64 {
	return f(now, addr, write)
}
