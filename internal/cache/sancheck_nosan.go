//go:build !san

package cache

// sanState is the per-cache checker state of the runtime invariant
// sanitizer. Without the `san` build tag it is empty and every hook below
// is a no-op the compiler inlines away — the default build carries the
// call sites but none of the cost. See internal/san and sancheck_san.go.
type sanState struct{}

func (c *Cache) sanAfterAccess(now, ready uint64, si int, res Result) {}

func (c *Cache) sanAtInstall(now uint64, si int, ln line) {}

func (c *Cache) sanCheckVictim(now uint64, si, w int) {}

func (c *Cache) sanPostRestore() {}
