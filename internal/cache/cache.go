// Package cache implements the set-associative caches of the simulated
// memory hierarchy. The timing model is latency-based with MSHR-style
// coalescing: a miss installs its line immediately with a future arrival
// cycle, and any subsequent access to the same block before that cycle
// pays only the remaining latency instead of issuing a duplicate request
// below. Prefetch fills are tagged so coverage, accuracy, late-prefetch
// and overprediction statistics fall out of ordinary bookkeeping.
package cache

import (
	"fmt"

	"bingo/internal/mem"
)

// AccessKind classifies requests flowing through the hierarchy.
type AccessKind uint8

const (
	// Demand is a load or instruction-driven read the core waits on.
	Demand AccessKind = iota
	// Write is a demand store (write-allocate, write-back).
	Write
	// Prefetch is a prefetcher-issued fill; the core never waits on it.
	Prefetch
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case Demand:
		return "demand"
	case Write:
		return "write"
	default:
		return "prefetch"
	}
}

// Request is a single block-granularity access descriptor.
type Request struct {
	Addr mem.Addr // physical address (any byte within the block)
	PC   mem.PC
	Core int
	Kind AccessKind
}

// Result reports when a request's data is available and where it hit.
type Result struct {
	// CompleteAt is the cycle at which data is available to the requester.
	CompleteAt uint64
	// HitLevel names the level that supplied the data ("L1", "LLC",
	// "DRAM"). Prefetch requests that were dropped report "".
	HitLevel string
}

// Level is anything a cache can forward misses to: another cache or the
// memory backstop adapter.
type Level interface {
	Access(now uint64, req Request) Result
}

// Backstop is the timing interface of main memory.
type Backstop interface {
	// Access returns the cycle at which the block transfer completes.
	Access(now uint64, addr mem.Addr, write bool) (completeAt uint64)
}

// MemoryLevel adapts a Backstop to the Level interface so a cache can sit
// directly on top of DRAM.
type MemoryLevel struct {
	//conc:barrier-guarded the DRAM behind the LLC is one shared component; accesses reach it only from the serialized memory-side phase
	Mem Backstop
}

// Access implements Level.
func (m MemoryLevel) Access(now uint64, req Request) Result {
	done := m.Mem.Access(now, req.Addr, req.Kind == Write)
	return Result{CompleteAt: done, HitLevel: "DRAM"}
}

// EvictionListener observes blocks leaving a cache. The Bingo family of
// prefetchers uses LLC evictions as the end-of-region-residency signal.
type EvictionListener interface {
	// OnEviction is called with the block-aligned address of the victim.
	OnEviction(addr mem.Addr)
}

// OutcomeFunc receives the fate of prefetched lines: useful=true when a
// demand access touches a prefetched line for the first time, useful=false
// when a never-touched prefetched line is evicted. core identifies the
// core whose prefetch installed the line. Feedback-directed throttling
// (Srinath et al., HPCA'07 — the paper's reference [41]) is built on this
// signal.
type OutcomeFunc func(core int, useful bool)

// PrefetchProbe observes the full lifecycle of prefetched lines at the
// level the prefetcher fills into. It is richer than OutcomeFunc (which
// only reports useful/unused): the probe also sees redundant drops and
// distinguishes timely from late uses, with the cycle margin attached.
// telemetry.Lifecycle implements it. A probe must be a pure observer —
// the cache behaves identically with or without one.
type PrefetchProbe interface {
	// PrefetchRedundant: a prefetch found its block already present (or
	// in flight) and was dropped. core is the requesting core.
	PrefetchRedundant(core int)
	// PrefetchFill: a prefetch installed a line; its fill is in flight.
	PrefetchFill(core int)
	// PrefetchUse: first demand use of a prefetched line. late reports
	// whether the fill was still in flight (the demand had to wait);
	// cycles is the wait (late) or the fill-completion-to-use margin
	// (timely). core is the core whose prefetch installed the line.
	PrefetchUse(core int, late bool, cycles uint64)
	// PrefetchEvictUnused: a prefetched line was evicted untouched.
	PrefetchEvictUnused(core int)
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Assoc      int
	HitLatency uint64 // cycles, charged on every access to this level
	Policy     PolicyKind
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Assoc <= 0 {
		return fmt.Errorf("cache %s: associativity must be positive", c.Name)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.Assoc*mem.BlockSize) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %d-byte blocks",
			c.Name, c.SizeBytes, c.Assoc, mem.BlockSize)
	}
	sets := c.SizeBytes / (c.Assoc * mem.BlockSize)
	if !mem.IsPow2(sets) {
		return fmt.Errorf("cache %s: set count %d must be a power of two", c.Name, sets)
	}
	return nil
}

type line struct {
	tag        uint64 // block number
	valid      bool
	dirty      bool
	prefetched bool   // filled by a prefetch and not yet referenced by demand
	arrival    uint64 // cycle at which the fill completes (MSHR semantics)
	fillCore   int    // core whose request installed the line
}

// Stats accumulates per-cache counters. All prefetch-related counters are
// maintained at the level the prefetcher fills into (the LLC in this
// reproduction).
type Stats struct {
	Accesses       uint64 // demand accesses (loads + stores)
	Hits           uint64 // demand hits (including hits on in-flight fills)
	Misses         uint64 // demand misses
	LateHits       uint64 // demand hits that had to wait on an in-flight fill
	PrefetchIssued uint64 // prefetch requests reaching this level
	PrefetchFills  uint64 // prefetches that actually installed a line
	PrefetchHits   uint64 // prefetches dropped because the block was present
	UsefulPrefetch uint64 // prefetched lines referenced by demand before eviction
	LatePrefetch   uint64 // demand hit on a prefetched line still in flight
	UnusedPrefetch uint64 // prefetched lines evicted without any demand reference
	Evictions      uint64
	Writebacks     uint64
}

// Delta returns the counter-wise difference s - prev. Counters are
// monotone between resets, so sampling cumulative Stats and differencing
// with Delta yields exact per-interval counts (the telemetry epoch
// series is built this way).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Accesses:       s.Accesses - prev.Accesses,
		Hits:           s.Hits - prev.Hits,
		Misses:         s.Misses - prev.Misses,
		LateHits:       s.LateHits - prev.LateHits,
		PrefetchIssued: s.PrefetchIssued - prev.PrefetchIssued,
		PrefetchFills:  s.PrefetchFills - prev.PrefetchFills,
		PrefetchHits:   s.PrefetchHits - prev.PrefetchHits,
		UsefulPrefetch: s.UsefulPrefetch - prev.UsefulPrefetch,
		LatePrefetch:   s.LatePrefetch - prev.LatePrefetch,
		UnusedPrefetch: s.UnusedPrefetch - prev.UnusedPrefetch,
		Evictions:      s.Evictions - prev.Evictions,
		Writebacks:     s.Writebacks - prev.Writebacks,
	}
}

// MPKI returns misses per kilo-instruction for a run of instr instructions.
func (s Stats) MPKI(instr uint64) float64 {
	if instr == 0 {
		return 0
	}
	return float64(s.Misses) / float64(instr) * 1000
}

// HitRate returns the demand hit ratio.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is one set-associative level of the hierarchy.
type Cache struct {
	cfg  Config
	sets [][]line
	//ckpt:skip derived geometry, recomputed from cfg in New
	setMask uint64
	//conc:core-local an L1's policy belongs to its core; the LLC's is reached only from the serialized memory-side phase
	policy Policy
	//ckpt:skip wiring, re-established by New before restore
	//conc:barrier-guarded an L1's lower is the shared LLC; misses cross this edge only in the serialized memory-side phase
	lower Level
	//ckpt:skip wiring, re-established by system.New before restore
	//conc:barrier-guarded eviction broadcasts fan out to every core's prefetcher during the serialized memory-side phase
	listener EvictionListener
	//ckpt:skip wiring, re-established by system.New before restore
	//conc:core-local callback into the owning core's prefetcher accounting
	outcome OutcomeFunc
	//ckpt:skip wiring, re-established by system.New before restore
	//conc:core-local callback into the owning core's prefetch-queue redundancy probe
	probe PrefetchProbe
	stats Stats
	//ckpt:skip checker scratch state, not simulation state; rebuilt as events replay
	san sanState // runtime invariant sanitizer (empty without -tags=san)

	// Event-engine support (off by default; see EnableEventTracking):
	// a min-heap of in-flight fill arrival cycles, so NextEventAt can
	// report the earliest pending MSHR completion without scanning sets.
	//ckpt:skip engine mode flag, chosen by Run after restore
	evTrack bool
	//ckpt:skip derived from persisted line arrivals by EnableEventTracking
	inflight []uint64
}

// New builds a cache over the given lower level.
func New(cfg Config, lower Level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lower == nil {
		return nil, fmt.Errorf("cache %s: lower level must not be nil", cfg.Name)
	}
	numSets := cfg.SizeBytes / (cfg.Assoc * mem.BlockSize)
	sets := make([][]line, numSets)
	backing := make([]line, numSets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: uint64(numSets - 1),
		policy:  newPolicy(cfg.Policy, numSets, cfg.Assoc),
		lower:   lower,
	}, nil
}

// MustNew is New that panics on error; for tests and fixed configurations.
func MustNew(cfg Config, lower Level) *Cache {
	c, err := New(cfg, lower)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the configured level name.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters and clears the prefetch attribution of
// resident lines, so a measurement window only credits (useful) or blames
// (unused) prefetches it issued itself — without this, uses of warm-up
// prefetches would inflate accuracy past 100%. Cache contents are kept.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	for si := range c.sets {
		for w := range c.sets[si] {
			c.sets[si][w].prefetched = false
		}
	}
}

// SetEvictionListener registers the eviction observer (at most one).
func (c *Cache) SetEvictionListener(l EvictionListener) { c.listener = l }

// SetOutcomeFunc registers the prefetch-outcome observer (at most one).
func (c *Cache) SetOutcomeFunc(f OutcomeFunc) { c.outcome = f }

// SetPrefetchProbe registers the lifecycle observer (at most one).
func (c *Cache) SetPrefetchProbe(p PrefetchProbe) { c.probe = p }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

func (c *Cache) setIndex(block uint64) int { return int(block & c.setMask) }

// lookup returns the way holding block in set si, or -1.
func (c *Cache) lookup(si int, block uint64) int {
	set := c.sets[si]
	for w := range set {
		if set[w].valid && set[w].tag == block {
			return w
		}
	}
	return -1
}

// Contains reports whether the block holding addr is present (regardless of
// in-flight status). It does not perturb replacement state.
func (c *Cache) Contains(addr mem.Addr) bool {
	block := addr.BlockNumber()
	return c.lookup(c.setIndex(block), block) >= 0
}

// Access performs a demand or prefetch access. now is the cycle the request
// arrives at this level.
func (c *Cache) Access(now uint64, req Request) Result {
	block := req.Addr.BlockNumber()
	si := c.setIndex(block)
	ready := now + c.cfg.HitLatency

	if req.Kind == Prefetch {
		return c.accessPrefetch(now, ready, req, si, block)
	}

	c.stats.Accesses++
	if w := c.lookup(si, block); w >= 0 {
		ln := &c.sets[si][w]
		c.stats.Hits++
		complete := ready
		if ln.arrival > ready { // fill still in flight: coalesce
			complete = ln.arrival
			c.stats.LateHits++
			if ln.prefetched {
				c.stats.LatePrefetch++
			}
		}
		if ln.prefetched {
			c.stats.UsefulPrefetch++
			ln.prefetched = false
			if c.probe != nil {
				// Late: the demand waits out the in-flight fill; the wait is
				// how late the prefetch was. Timely: the margin is the slack
				// between fill completion and this use's data availability.
				if late := ln.arrival > ready; late {
					c.probe.PrefetchUse(ln.fillCore, true, ln.arrival-ready)
				} else {
					c.probe.PrefetchUse(ln.fillCore, false, ready-ln.arrival)
				}
			}
			if c.outcome != nil {
				c.outcome(ln.fillCore, true)
			}
		}
		if req.Kind == Write {
			ln.dirty = true
		}
		c.policy.Touch(si, w)
		res := Result{CompleteAt: complete, HitLevel: c.cfg.Name}
		c.sanAfterAccess(now, ready, si, res)
		return res
	}

	// Demand miss: fetch from below, install with future arrival.
	c.stats.Misses++
	lowerRes := c.lower.Access(ready, req)
	w := c.installLine(now, si, line{
		tag:      block,
		valid:    true,
		dirty:    req.Kind == Write,
		arrival:  lowerRes.CompleteAt,
		fillCore: req.Core,
	})
	c.policy.Touch(si, w)
	res := Result{CompleteAt: lowerRes.CompleteAt, HitLevel: lowerRes.HitLevel}
	c.sanAfterAccess(now, ready, si, res)
	return res
}

func (c *Cache) accessPrefetch(now, ready uint64, req Request, si int, block uint64) Result {
	c.stats.PrefetchIssued++
	if w := c.lookup(si, block); w >= 0 {
		// Already present (or in flight): redundant prefetch, drop it.
		c.stats.PrefetchHits++
		_ = w
		if c.probe != nil {
			c.probe.PrefetchRedundant(req.Core)
		}
		res := Result{CompleteAt: ready, HitLevel: c.cfg.Name}
		c.sanAfterAccess(now, ready, si, res)
		return res
	}
	lowerRes := c.lower.Access(ready, req)
	w := c.installLine(now, si, line{
		tag:        block,
		valid:      true,
		prefetched: true,
		arrival:    lowerRes.CompleteAt,
		fillCore:   req.Core,
	})
	c.policy.Touch(si, w)
	c.stats.PrefetchFills++
	if c.probe != nil {
		c.probe.PrefetchFill(req.Core)
	}
	res := Result{CompleteAt: lowerRes.CompleteAt, HitLevel: lowerRes.HitLevel}
	c.sanAfterAccess(now, ready, si, res)
	return res
}

// installLine places ln into set si, evicting a victim if necessary, and
// returns the way used.
func (c *Cache) installLine(now uint64, si int, ln line) int {
	set := c.sets[si]
	w := -1
	for i := range set {
		if !set[i].valid {
			w = i
			break
		}
	}
	if w < 0 {
		w = c.policy.Victim(si)
		c.sanCheckVictim(now, si, w)
		victim := &set[w]
		c.evict(now, si, victim)
	}
	c.sanAtInstall(now, si, ln)
	set[w] = ln
	if c.evTrack && ln.arrival > now {
		c.evPush(ln.arrival)
	}
	return w
}

// EnableEventTracking turns on in-flight fill bookkeeping for the event
// engine, seeding the heap from lines already in flight at cycle now —
// which is how a system restored from a checkpoint (whose persisted
// lines may carry future arrivals) re-derives the heap instead of
// persisting it. Idempotent: re-enabling rebuilds the heap from the
// current set contents.
func (c *Cache) EnableEventTracking(now uint64) {
	c.evTrack = true
	c.inflight = c.inflight[:0]
	for si := range c.sets {
		for w := range c.sets[si] {
			if ln := &c.sets[si][w]; ln.valid && ln.arrival > now {
				c.evPush(ln.arrival)
			}
		}
	}
}

// NextEventAt returns the earliest in-flight fill arrival strictly after
// now, or ^uint64(0) when none is pending — the cache's contribution to
// the event engine's wakeup queue (see internal/sched). The cache is
// passive between accesses, so pending fill arrivals are its only
// time-driven transitions. Entries whose line was evicted while still in
// flight are removed lazily once their cycle passes; until then they
// only bound skips tighter than necessary, never looser. Requires
// EnableEventTracking.
func (c *Cache) NextEventAt(now uint64) uint64 {
	for len(c.inflight) > 0 && c.inflight[0] <= now {
		c.evPop()
	}
	if len(c.inflight) == 0 {
		return ^uint64(0)
	}
	return c.inflight[0]
}

// evPush adds an arrival cycle to the in-flight min-heap.
func (c *Cache) evPush(at uint64) {
	c.inflight = append(c.inflight, at) //hot:alloc in-flight heap grows to steady-state capacity, then reuses
	i := len(c.inflight) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if c.inflight[parent] <= c.inflight[i] {
			break
		}
		c.inflight[parent], c.inflight[i] = c.inflight[i], c.inflight[parent]
		i = parent
	}
}

// evPop removes the minimum arrival cycle.
func (c *Cache) evPop() {
	n := len(c.inflight) - 1
	c.inflight[0] = c.inflight[n]
	c.inflight = c.inflight[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.inflight[l] < c.inflight[smallest] {
			smallest = l
		}
		if r < n && c.inflight[r] < c.inflight[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.inflight[i], c.inflight[smallest] = c.inflight[smallest], c.inflight[i]
		i = smallest
	}
}

func (c *Cache) evict(now uint64, si int, victim *line) {
	c.stats.Evictions++
	if victim.prefetched {
		c.stats.UnusedPrefetch++
		if c.probe != nil {
			c.probe.PrefetchEvictUnused(victim.fillCore)
		}
		if c.outcome != nil {
			c.outcome(victim.fillCore, false)
		}
	}
	if victim.dirty {
		c.stats.Writebacks++
		if wb, ok := c.lower.(interface {
			Writeback(now uint64, addr mem.Addr)
		}); ok {
			wb.Writeback(now, mem.Addr(victim.tag<<mem.BlockShift))
		}
	}
	if c.listener != nil {
		c.listener.OnEviction(mem.Addr(victim.tag << mem.BlockShift))
	}
	victim.valid = false
}

// Writeback accepts a dirty block from the level above. Writebacks are
// modelled as fills that do not affect demand statistics.
func (c *Cache) Writeback(now uint64, addr mem.Addr) {
	block := addr.BlockNumber()
	si := c.setIndex(block)
	if w := c.lookup(si, block); w >= 0 {
		c.sets[si][w].dirty = true
		c.policy.Touch(si, w)
		return
	}
	w := c.installLine(now, si, line{tag: block, valid: true, dirty: true, arrival: now})
	c.policy.Touch(si, w)
}

// Flush invalidates every line, reporting each valid block to the eviction
// listener. It models the end of a measurement epoch.
func (c *Cache) Flush(now uint64) {
	for si := range c.sets {
		for w := range c.sets[si] {
			ln := &c.sets[si][w]
			if ln.valid {
				c.evict(now, si, ln)
			}
		}
	}
}
