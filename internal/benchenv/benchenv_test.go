package benchenv

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// TestCaptureFields pins the captured values to the runtime package so
// a refactor cannot silently start recording the wrong machine.
func TestCaptureFields(t *testing.T) {
	env := Capture()
	if env.GoVersion != runtime.Version() || env.GOOS != runtime.GOOS ||
		env.GOARCH != runtime.GOARCH || env.NumCPU != runtime.NumCPU() ||
		env.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("Capture() = %+v disagrees with runtime", env)
	}
	if env.NumCPU < 1 || env.GOMAXPROCS < 1 || env.GoVersion == "" {
		t.Fatalf("Capture() = %+v has implausible values", env)
	}
	if env.Degraded != (env.NumCPU == 1) {
		t.Fatalf("Capture() = %+v: degraded marker must track NumCPU==1", env)
	}
}

// TestEnvJSONFieldOrder pins the field order every BENCH_*.json document
// leads with; emitters embed Env first, so this order is the artefacts'
// on-disk prefix.
func TestEnvJSONFieldOrder(t *testing.T) {
	data, err := json.Marshal(Capture())
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	want := []string{`"go_version"`, `"goos"`, `"goarch"`, `"num_cpu"`, `"gomaxprocs"`, `"degraded"`}
	pos := -1
	for _, key := range want {
		i := strings.Index(got, key)
		if i < 0 || i < pos {
			t.Fatalf("field order: want %v in order, got %s", want, got)
		}
		pos = i
	}
}
