// Package benchenv captures the machine environment a benchmark
// artefact was recorded on. Every BENCH_*.json emitter embeds Env at
// the top of its document: speedups, overheads, and cells/sec are
// meaningless without knowing the Go version, CPU count, and worker
// pool width behind them — a 1.04x "parallel speedup" is honest on a
// single-CPU host and a regression on a 16-core one.
package benchenv

import "runtime"

// Env is the shared environment block embedded (first) in every
// benchmark document, so all BENCH_*.json files lead with the same
// fields in the same order.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Degraded marks artefacts recorded on a host that cannot produce a
	// meaningful parallel measurement (a single CPU: worker pools and
	// parallel frontends only add scheduling overhead there). It is the
	// machine-readable form of the "re-record on a multi-core machine"
	// prose note — consumers gate speedup assertions on it instead of
	// parsing notes.
	Degraded bool `json:"degraded"`
}

// Capture records the current process's environment.
func Capture() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Degraded:   runtime.NumCPU() == 1,
	}
}
