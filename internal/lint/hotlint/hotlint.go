// Package hotlint keeps the simulator's per-access hot path
// allocation-free, interprocedurally: every function reachable from a
// prefetcher's OnAccess/OnEviction or a core's per-cycle Tick — across
// package boundaries, through interface dispatch, and through stored
// function values — must contain no heap-allocating construct, or carry
// an explicit waiver
//
//	//hot:alloc <reason>
//
// on the allocating line (or the line above), or on the function's doc
// comment to waive the whole body. Additional hot roots are declared
// with //hot:path <reason> on the root's doc comment.
//
// The bug this closes is drift the single-package allocation tests
// cannot see: internal/alloc_test.go proves a fixed set of entry points
// steady-state allocation-free at runtime, but only for the workloads
// it happens to drive, and only for the functions it happens to list. A
// helper three calls deep that grows a slice on a cold branch, or a new
// prefetcher wired into the registry but never added to the test table,
// allocates in production runs and skews cycle-accuracy without failing
// anything. hotlint walks the class-hierarchy call graph built from the
// effects summaries (see internal/lint/effects for the soundness
// caveats) and flags every unwaived allocation site the hot roots
// reach, whichever package it lives in.
//
// Hot roots are shape-matched at summary time: non-test methods named
// OnAccess (one parameter, one result), OnEviction (one parameter, no
// results), or Tick (no results). The walk does not descend into other
// hot roots (their own package's run owns their findings), into
// functions declared in build-tagged files (sanitizer hooks do not ship
// on the hot path), or into the sanitizer's own packages. Allocation
// sites inside the analyzed package are reported at the site; sites
// reached in dependency packages are reported at the root's declaration
// with the remote position in the message.
package hotlint

import (
	"strings"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/effects"
)

// Analyzer reports reachable, unwaived allocation sites on the hot path
// and malformed //hot: annotations.
var Analyzer = &analysis.Analyzer{
	Name: "hotlint",
	Doc: "require every function reachable from OnAccess/OnEviction/Tick to be allocation-free " +
		"or carry //hot:alloc <reason>",
	Requires: []*analysis.Analyzer{effects.Facts},
	Run:      run,
}

func run(pass *analysis.Pass) error {
	checkMarkers(pass)
	w := effects.NewWorld(pass)
	here := pass.Pkg.Path()
	reportedLocal := map[string]bool{}  // "pos\x00what"
	reportedRemote := map[string]bool{} // "rootKey\x00pos\x00what"
	for _, key := range w.SortedKeys() {
		root := w.Funcs[key]
		if root.Pkg != here || root.Test || root.Tagged || !isRoot(root) {
			continue
		}
		walkRoot(pass, w, root, reportedLocal, reportedRemote)
	}
	return nil
}

func isRoot(fe *effects.FuncEffects) bool {
	return fe.HotRoot || fe.HotPath != ""
}

// skipDescend reports whether the hot-path walk stops at fe without
// inspecting it: other hot roots own their findings, tagged functions
// do not ship, and the sanitizer's instrumentation is allowed to
// allocate by design.
func skipDescend(root, fe *effects.FuncEffects) bool {
	if fe != root && isRoot(fe) {
		return true
	}
	if fe.Tagged || fe.Test {
		return true
	}
	return strings.HasPrefix(fe.Key, "bingo/internal/san.")
}

func walkRoot(pass *analysis.Pass, w *effects.World, root *effects.FuncEffects, local, remote map[string]bool) {
	here := pass.Pkg.Path()
	seen := map[string]bool{}
	var visit func(fe *effects.FuncEffects)
	visit = func(fe *effects.FuncEffects) {
		if seen[fe.Key] {
			return
		}
		seen[fe.Key] = true
		if skipDescend(root, fe) {
			return
		}
		if fe.AllocFree == "" {
			for i := range fe.Allocs {
				site := &fe.Allocs[i]
				if site.Waived != "" {
					continue
				}
				if fe.Pkg == here && site.LocalPos().IsValid() {
					k := site.Pos + "\x00" + site.What
					if !local[k] {
						local[k] = true
						pass.Reportf(site.LocalPos(),
							"%s on the hot path from %s; remove it or annotate //hot:alloc <reason>",
							site.What, root.Key)
					}
				} else {
					k := root.Key + "\x00" + site.Pos + "\x00" + site.What
					if !remote[k] {
						remote[k] = true
						pass.Reportf(root.LocalDecl(),
							"hot path from %s reaches %s in %s (%s); remove it or annotate //hot:alloc <reason> there",
							root.Key, site.What, fe.Key, site.Pos)
					}
				}
			}
		}
		w.Edges(fe, func(ev *effects.Event, target string) {
			// A spawned goroutine runs off the hot path; the go statement
			// itself is already an allocation site above.
			if ev.Kind == effects.EvSpawn {
				return
			}
			if next := w.Funcs[target]; next != nil {
				visit(next)
			}
		})
	}
	visit(root)
}

// checkMarkers validates every //hot: annotation in the package: the
// verb must be alloc or path, and the reason is mandatory — a silent
// waiver is a finding, so every exemption is justified on record.
func checkMarkers(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m, ok := analysis.ParseMarker(c.Text)
				if !ok || m.Domain != "hot" {
					continue
				}
				switch m.Verb {
				case "alloc", "path":
					if m.Arg == "" {
						pass.Reportf(c.Pos(), "//hot:%s needs a reason", m.Verb)
					}
				default:
					pass.Reportf(c.Pos(), "unknown //hot: verb %q (want alloc or path)", m.Verb)
				}
			}
		}
	}
}
