package hotlint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/hotlint"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestHotlintFixture(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal/lint/testdata/src/hotlint")
	analysistest.RunConfig(t, root, dir, "bingo/internal/hotfix", hotlint.Analyzer, analysistest.Config{
		Deps: map[string]string{"bingo/internal/hotfix/dep": filepath.Join(dir, "dep")},
	})
}

// TestHotlintCatchesDroppedWaiver is the seeded-mutation check: deleting
// the function-level //hot:alloc waiver from the fixture must surface
// the allocation it was covering. If this fails, the analyzer would not
// notice a waiver silently rotting away.
func TestHotlintCatchesDroppedWaiver(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal/lint/testdata/src/hotlint")
	src, err := os.ReadFile(filepath.Join(dir, "hotfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	dropped := 0
	for _, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "//hot:alloc scratch buffer") {
			dropped++
			continue
		}
		kept = append(kept, line)
	}
	if dropped != 1 {
		t.Fatalf("mutation dropped %d lines, want exactly 1", dropped)
	}
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "hotfix.go"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/internal/hotfix", tmp)
	loader.Override("bingo/internal/hotfix/dep", filepath.Join(dir, "dep"))
	runner, err := analysis.NewRunner(loader, []*analysis.Analyzer{hotlint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runner.Package("bingo/internal/hotfix")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "make on the hot path from bingo/internal/hotfix.P.OnEviction") {
			return
		}
	}
	t.Errorf("dropping the //hot:alloc waiver did not surface the covered make; got %d diagnostic(s)", len(diags))
}

// TestHotlintMarkerValidation checks the annotation vocabulary is
// policed: unknown verbs and reasonless waivers are findings.
func TestHotlintMarkerValidation(t *testing.T) {
	root := moduleRoot(t)
	tmp := t.TempDir()
	src := `package badmarks

//hot:bogus something
func A() {}

//hot:alloc
func B() {}
`
	if err := os.WriteFile(filepath.Join(tmp, "badmarks.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/internal/badmarks", tmp)
	runner, err := analysis.NewRunner(loader, []*analysis.Analyzer{hotlint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runner.Package("bingo/internal/badmarks")
	if err != nil {
		t.Fatal(err)
	}
	var unknown, reasonless bool
	for _, d := range diags {
		if strings.Contains(d.Message, `unknown //hot: verb "bogus"`) {
			unknown = true
		}
		if strings.Contains(d.Message, "//hot:alloc needs a reason") {
			reasonless = true
		}
	}
	if !unknown || !reasonless {
		t.Errorf("marker validation incomplete: unknown=%v reasonless=%v in %d diagnostic(s)", unknown, reasonless, len(diags))
	}
}
