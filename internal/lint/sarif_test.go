package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteSARIFShape pins the fields code scanning actually keys on:
// schema/version, rule registration with stable indices, result→rule
// index coherence, %SRCROOT%-relative paths, and suppression carriage.
func TestWriteSARIFShape(t *testing.T) {
	findings := []Finding{
		{File: "internal/cache/cache.go", Line: 42, Col: 7, Analyzer: "hotlint", Message: "interface boxing on the hot path"},
		{File: "internal/vm/vm.go", Line: 9, Col: 2, Analyzer: "locklint", Message: "potential deadlock", Suppressed: true, SuppressedBy: "distinct registries"},
	}
	docs := map[string]string{
		"hotlint":  "hotlint flags allocation on simulator hot paths.\n\nLong detail.",
		"locklint": "locklint orders locks module-wide.",
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, findings, map[string]string{
		"hotlint":  firstLine(docs["hotlint"]),
		"locklint": firstLine(docs["locklint"]),
	}); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("wrong SARIF version: %s / %s", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "simlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 {
		t.Fatalf("want 2 rules, got %d", len(run.Tool.Driver.Rules))
	}
	if run.Tool.Driver.Rules[0].ShortDescription.Text != "hotlint flags allocation on simulator hot paths." {
		t.Errorf("rule doc not truncated to first line: %q", run.Tool.Driver.Rules[0].ShortDescription.Text)
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	for _, res := range run.Results {
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("result rule index %d does not point at rule %q", res.RuleIndex, res.RuleID)
		}
		if res.Level != "warning" {
			t.Errorf("level = %q", res.Level)
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("uriBaseId = %q", loc.ArtifactLocation.URIBaseID)
		}
		if strings.HasPrefix(loc.ArtifactLocation.URI, "/") {
			t.Errorf("absolute path leaked into SARIF: %q", loc.ArtifactLocation.URI)
		}
	}
	hot := run.Results[0]
	if hot.Locations[0].PhysicalLocation.Region.StartLine != 42 || hot.Locations[0].PhysicalLocation.Region.StartColumn != 7 {
		t.Errorf("region = %+v", hot.Locations[0].PhysicalLocation.Region)
	}
	if len(hot.Suppressions) != 0 {
		t.Errorf("unsuppressed finding carries suppressions")
	}
	sup := run.Results[1]
	if len(sup.Suppressions) != 1 || sup.Suppressions[0].Kind != "inSource" || sup.Suppressions[0].Justification != "distinct registries" {
		t.Errorf("suppression record = %+v", sup.Suppressions)
	}
}
