package sanlint_test

import (
	"path/filepath"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/sanlint"
)

func fixture(t *testing.T) (root, dir string) {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root, filepath.Join(root, "internal", "lint", "testdata", "src", "sanlint")
}

// TestSanlintUntagged analyzes the fixture as the default build sees it:
// check_san.go is excluded by its constraint, and every finding comes
// from the untagged file's unguarded or mis-cataloged san uses.
func TestSanlintUntagged(t *testing.T) {
	root, dir := fixture(t)
	diags := analysistest.Run(t, root, dir, "bingo/internal/sanfixture", sanlint.Analyzer)
	if len(diags) == 0 {
		t.Fatal("fixture seeded violations but sanlint reported nothing")
	}
}

// TestSanlintTagged analyzes the fixture under -tags=san, the driver's
// second pass: check_san.go now enters the type-checked world, and its
// unguarded checking calls must stay finding-free because the file's
// build constraint is itself the gate.
func TestSanlintTagged(t *testing.T) {
	root, dir := fixture(t)
	analysistest.RunConfig(t, root, dir, "bingo/internal/sanfixture", sanlint.Analyzer, analysistest.Config{
		Tags: []string{"san"},
	})
}
