// Package sanlint proves the two static halves of the runtime
// sanitizer's contract (internal/san, build tag `san`):
//
//  1. Zero cost untagged. The sanitizer's checking API — san.Enabled,
//     san.Failf, san.DeepInterval, and any checking entry point added
//     later — may appear only where an untagged build provably compiles
//     it away: in a file whose //go:build constraint requires the san
//     tag, or inside an `if san.Compiled { ... }` / `if san.Enabled()
//     { ... }` block (san.Compiled is the untyped constant false without
//     the tag, and san.Enabled's body is `Compiled && ...`, so both
//     conditions constant-fold and the guarded block is dead-code
//     eliminated). The configuration API (SetEnabled, Apply,
//     DefaultConfig), the Compiled constant, the package's types, and
//     the invariant ID constants stay usable anywhere — referencing them
//     costs nothing. Test files are exempt: they never ship.
//
//     Because the gated files only enter the type-checked world under
//     -tags=san, the driver runs this analyzer in both build
//     configurations; the untagged pass proves rule 1, the tagged pass
//     sees the checking code itself.
//
//  2. The catalog is the code. Every invariant ID constant declared in
//     internal/san must appear in DESIGN.md §6b's catalog table, every
//     ID the catalog lists must exist in the code, and every invariant
//     passed to san.Failf must be a constant whose value the catalog
//     knows — an invariant that fires in a violation report but has no
//     documented model justification is half an invariant.
package sanlint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"bingo/internal/lint/analysis"
)

// sanPkg is the sanitizer package this analyzer guards.
const sanPkg = "bingo/internal/san"

// Analyzer enforces the sanitizer's zero-cost gating and catalog rules.
var Analyzer = &analysis.Analyzer{
	Name: "sanlint",
	Doc: "require san checking calls to be build-tag or san.Compiled guarded (zero cost untagged) " +
		"and every invariant ID to match DESIGN.md §6b's catalog",
	Run: run,
}

// configAPI is the san surface allowed in untagged files: switches and
// constructors that configure the sanitizer rather than run checks.
var configAPI = map[string]bool{
	"SetEnabled":    true,
	"Apply":         true,
	"DefaultConfig": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == sanPkg {
		return checkCatalogDecls(pass)
	}
	sanName := importedSan(pass)
	if sanName == nil {
		return nil
	}
	catalog, err := loadCatalog(pass.ModuleRoot)
	if err != nil {
		return err
	}
	for _, f := range pass.Files {
		shipsUntagged := analysis.FileBuildable(f, nil) && !pass.InTestFile(f.Package)
		guards := collectGuards(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n, shipsUntagged, guards, catalog)
			case *ast.CallExpr:
				checkFailfCall(pass, n, catalog)
			}
			return true
		})
	}
	return nil
}

// importedSan returns the types.Package of internal/san if the package
// under analysis imports it, else nil.
func importedSan(pass *analysis.Pass) *types.Package {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == sanPkg {
			return imp
		}
	}
	return nil
}

// posRange is a half-open source span [from, to).
type posRange struct{ from, to token.Pos }

func (r posRange) contains(pos token.Pos) bool { return r.from <= pos && pos < r.to }

// collectGuards returns the spans in which san checking references are
// provably free in an untagged build: the bodies of if statements whose
// condition references san.Compiled or calls san.Enabled, plus those
// conditions themselves (the guard must be allowed to name its own
// switch).
func collectGuards(pass *analysis.Pass, f *ast.File) []posRange {
	var guards []posRange
	ast.Inspect(f, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || !condGuardsSan(pass, ifStmt.Cond) {
			return true
		}
		guards = append(guards,
			posRange{ifStmt.Cond.Pos(), ifStmt.Cond.End()},
			posRange{ifStmt.Body.Pos(), ifStmt.Body.End()})
		return true
	})
	return guards
}

// condGuardsSan reports whether cond mentions san.Compiled or a
// san.Enabled call, either bare or as a conjunct.
func condGuardsSan(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != sanPkg {
			return true
		}
		switch obj.Name() {
		case "Compiled", "Enabled":
			found = true
		}
		return true
	})
	return found
}

func inGuard(guards []posRange, pos token.Pos) bool {
	for _, g := range guards {
		if g.contains(pos) {
			return true
		}
	}
	return false
}

// checkSelector classifies one san.X reference: catalog-checks ID
// constants and enforces the zero-cost rule on checking functions.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr, shipsUntagged bool, guards []posRange, catalog map[string]bool) {
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != sanPkg {
		return
	}
	switch obj := obj.(type) {
	case *types.Const:
		if isIDType(obj.Type()) && obj.Val().Kind() == constant.String {
			if id := constant.StringVal(obj.Val()); !catalog[id] {
				pass.Reportf(sel.Sel.Pos(), "invariant %s is not in DESIGN.md §6b's catalog", id)
			}
		}
	case *types.Func:
		if configAPI[obj.Name()] {
			return
		}
		if shipsUntagged && !inGuard(guards, sel.Pos()) {
			pass.Reportf(sel.Sel.Pos(),
				"san.%s in a file compiled without the san tag; move it to a //go:build san file or guard it with if san.Compiled so untagged builds stay zero-cost",
				obj.Name())
		}
	}
}

// checkFailfCall requires the invariant argument of san.Failf to be a
// constant the catalog knows, closing the ad-hoc `san.ID("...")` hole.
func checkFailfCall(pass *analysis.Pass, call *ast.CallExpr, catalog map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Failf" {
		return
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != sanPkg || len(call.Args) < 3 {
		return
	}
	arg := call.Args[2]
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "invariant passed to san.Failf must be a constant san.ID from the catalog")
		return
	}
	if id := constant.StringVal(tv.Value); !catalog[id] {
		pass.Reportf(arg.Pos(), "invariant %s is not in DESIGN.md §6b's catalog", id)
	}
}

func isIDType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "ID" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == sanPkg
}

// checkCatalogDecls runs inside internal/san itself: the declared ID
// constants and DESIGN.md §6b must list exactly the same invariants.
func checkCatalogDecls(pass *analysis.Pass) error {
	catalog, err := loadCatalog(pass.ModuleRoot)
	if err != nil {
		return err
	}
	declared := map[string]token.Pos{}
	scope := pass.Pkg.Scope()
	var idTypePos token.Pos
	for _, name := range scope.Names() {
		switch obj := scope.Lookup(name).(type) {
		case *types.TypeName:
			if obj.Name() == "ID" {
				idTypePos = obj.Pos()
			}
		case *types.Const:
			if isIDType(obj.Type()) && obj.Val().Kind() == constant.String {
				declared[constant.StringVal(obj.Val())] = obj.Pos()
			}
		}
	}
	for id, pos := range declared {
		if !catalog[id] {
			pass.Reportf(pos, "invariant %s has no entry in DESIGN.md §6b's catalog", id)
		}
	}
	var stale []string
	for id := range catalog {
		if _, ok := declared[id]; !ok {
			stale = append(stale, id)
		}
	}
	sort.Strings(stale)
	for _, id := range stale {
		pass.Reportf(idTypePos, "DESIGN.md §6b catalogs %s but no san.ID constant declares it", id)
	}
	return nil
}

var idPattern = regexp.MustCompile(`SAN-[A-Z0-9]+(?:-[A-Z0-9]+)*`)

// loadCatalog reads DESIGN.md §6b and returns the set of invariant IDs it
// documents.
func loadCatalog(moduleRoot string) (map[string]bool, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "DESIGN.md"))
	if err != nil {
		return nil, fmt.Errorf("sanlint needs the invariant catalog: %w", err)
	}
	section := catalogSection(string(data))
	if section == "" {
		return nil, fmt.Errorf("sanlint: DESIGN.md has no \"## 6b.\" invariant catalog section")
	}
	ids := map[string]bool{}
	for _, id := range idPattern.FindAllString(section, -1) {
		ids[id] = true
	}
	return ids, nil
}

// catalogSection extracts the §6b section body: from the "## 6b." heading
// to the next "## " heading.
func catalogSection(doc string) string {
	lines := strings.Split(doc, "\n")
	start := -1
	for i, line := range lines {
		if start < 0 {
			if strings.HasPrefix(line, "## 6b.") {
				start = i + 1
			}
			continue
		}
		if strings.HasPrefix(line, "## ") {
			return strings.Join(lines[start:i], "\n")
		}
	}
	if start < 0 {
		return ""
	}
	return strings.Join(lines[start:], "\n")
}
