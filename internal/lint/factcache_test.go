package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/hotlint"
)

// writeTinyModule lays out a two-package module (a imports b) where
// package a carries a malformed //hot: marker — a deterministic hotlint
// finding that needs no annotation sweep to stay stable.
func writeTinyModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module bingo\n\ngo 1.24\n",
		"a/a.go": `package a

import "bingo/b"

//hot:bogus not a real verb
func Use() int { return b.Answer() }
`,
		"b/b.go": `package b

func Answer() int { return 42 }
`,
	}
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func checkTiny(t *testing.T, root, cacheDir string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	n, err := Check(&buf, root, []string{"./..."}, Options{
		Analyzers: []*analysis.Analyzer{hotlint.Analyzer},
		Tests:     true,
		JSON:      true,
		FactCache: cacheDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), n
}

// TestFactCacheRoundTrip proves the three properties that make the cache
// trustworthy: a warm run reproduces the cold run byte-for-byte, a hit
// really is replayed from disk (a tampered entry surfaces in the
// output), and editing a dependency invalidates its dependents.
func TestFactCacheRoundTrip(t *testing.T) {
	root := writeTinyModule(t)
	cacheDir := filepath.Join(root, ".lintcache")

	cold, n := checkTiny(t, root, cacheDir)
	if n != 1 || !strings.Contains(cold, `unknown //hot: verb \"bogus\"`) {
		t.Fatalf("cold run: %d finding(s), output:\n%s", n, cold)
	}
	warm, n2 := checkTiny(t, root, cacheDir)
	if warm != cold || n2 != n {
		t.Errorf("warm run diverged from cold run:\ncold: %s\nwarm: %s", cold, warm)
	}

	// Tamper with a's cached entry. If the warm run actually replays from
	// disk, the planted finding shows up verbatim.
	cache, err := newFactCache(cacheDir, root, "bingo", nil, true, []*analysis.Analyzer{hotlint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := cache.load("bingo/a")
	if !ok {
		t.Fatal("no cached entry for bingo/a after a cold run")
	}
	entry.Findings = append(entry.Findings, Finding{
		File: "a/a.go", Line: 1, Col: 1, Analyzer: "hotlint", Message: "PLANTED",
	})
	if err := cache.store("bingo/a", entry); err != nil {
		t.Fatal(err)
	}
	tampered, _ := checkTiny(t, root, cacheDir)
	if !strings.Contains(tampered, "PLANTED") {
		t.Errorf("tampered entry not replayed — the run did not hit the cache:\n%s", tampered)
	}

	// Editing b must invalidate both b and its dependent a: the planted
	// finding disappears, b's new marker error appears.
	bPath := filepath.Join(root, "b/b.go")
	src, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(src), "package b\n",
		"package b\n\n//hot:nonsense edited dep\nvar _ = 0\n", 1)
	if edited == string(src) {
		t.Fatal("dependency edit did not apply")
	}
	if err := os.WriteFile(bPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	after, n3 := checkTiny(t, root, cacheDir)
	if strings.Contains(after, "PLANTED") {
		t.Errorf("stale entry for bingo/a survived a dependency edit:\n%s", after)
	}
	if n3 != 2 || !strings.Contains(after, `unknown //hot: verb \"nonsense\"`) {
		t.Errorf("edited dependency's finding missing (%d finding(s)):\n%s", n3, after)
	}
}

// TestFactCacheSeedsFacts pins the cross-package half of the contract: a
// dependent analyzed fresh must see the facts of a dependency replayed
// from cache. The dependency's exported effects summaries are what let
// hotlint trace a root in a into an allocation in b — if seeding broke,
// the remote finding would silently vanish (fail-open), which is exactly
// the regression this guards against.
func TestFactCacheSeedsFacts(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module bingo\n\ngo 1.24\n",
		"a/a.go": `package a

import "bingo/b"

type P struct{ xs []int }

func (p *P) OnEviction(addr uint64) { p.xs = b.Grow(p.xs) }
`,
		"b/b.go": `package b

func Grow(xs []int) []int { return append(xs, 1) }
`,
	}
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cacheDir := filepath.Join(root, ".lintcache")

	cold, n := checkTiny(t, root, cacheDir)
	if n != 1 || !strings.Contains(cold, "reaches append growth") {
		t.Fatalf("cold run must trace a's hot root into b's append (%d finding(s)):\n%s", n, cold)
	}

	// Invalidate a only (b's entry stays warm), then re-run: a re-analyzes
	// and must import b's summaries from the seeded cache entry.
	aPath := filepath.Join(root, "a/a.go")
	src, err := os.ReadFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	edited := string(src) + "\nvar _ = 0 // touch a without changing b\n"
	if err := os.WriteFile(aPath, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	after, n2 := checkTiny(t, root, cacheDir)
	if n2 != 1 || !strings.Contains(after, "reaches append growth") {
		t.Errorf("remote finding lost after dependent-only edit — cached facts not seeded (%d finding(s)):\n%s", n2, after)
	}
}
