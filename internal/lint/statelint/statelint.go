// Package statelint proves checkpoint completeness statically: for every
// type implementing checkpoint.Checkpointable, every struct field must be
// referenced in both SaveState and LoadState — directly or through
// package-local helpers they call — or carry an explicit exemption
//
//	//ckpt:skip <reason>
//
// on the field. The bug this closes is silent field drift: a new mutable
// field added to a component but forgotten in its SaveState/LoadState
// pair produces checkpoints that restore into subtly wrong simulations
// (Bingo's results are sensitive to exact metadata state — PHT votes,
// region trackers — so a dropped field shifts every downstream number
// without failing a single runtime check until a resume-equivalence
// oracle happens to cover that field's effect). The golden-schema test
// pins the wire format; statelint pins the field coverage that format is
// supposed to carry.
//
// Reference tracking is reachability-based: the analyzer builds the
// package-local call graph from each SaveState/LoadState body (helper
// methods and functions included, function literals too) and accepts a
// field as covered if any reachable body mentions it — selector reads,
// writes, or composite-literal keys all count. Fields that are derived,
// rebuilt at construction, or deliberately transient must say so with
// //ckpt:skip and a reason; an annotation without a reason is itself a
// finding, so every exemption is justified on record.
package statelint

import (
	"go/ast"
	"go/types"

	"bingo/internal/lint/analysis"
)

// checkpointPkg is the package whose Writer/Reader anchor the
// Checkpointable signature match.
const checkpointPkg = "bingo/internal/checkpoint"

// Analyzer reports checkpointable struct fields missing from the
// SaveState/LoadState pair.
var Analyzer = &analysis.Analyzer{
	Name: "statelint",
	Doc: "require every field of a checkpoint.Checkpointable struct to be referenced in both " +
		"SaveState and LoadState or carry a //ckpt:skip <reason> annotation",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == checkpointPkg {
		return nil // the codec itself holds no simulation state
	}
	pkg := newPkgIndex(pass)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		save, load := checkpointMethods(named)
		if save == nil || load == nil {
			continue
		}
		checkType(pass, pkg, named, st, save, load)
	}
	return nil
}

// checkpointMethods returns the SaveState/LoadState methods of *named if
// their signatures match checkpoint.Checkpointable, else nils. Matching
// by signature rather than by interface identity keeps fixture packages
// (which import the real codec) and generic helpers with extra
// parameters (prefetch.Table's encoder-taking SaveState) correctly in
// and out of scope.
func checkpointMethods(named *types.Named) (save, load *types.Func) {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		switch fn.Name() {
		case "SaveState":
			if matchesCodecSignature(fn, "Writer") {
				save = fn
			}
		case "LoadState":
			if matchesCodecSignature(fn, "Reader") {
				load = fn
			}
		}
	}
	return save, load
}

// matchesCodecSignature reports whether fn is func(*checkpoint.<which>)
// error.
func matchesCodecSignature(fn *types.Func, which string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !isErrorType(sig.Results().At(0).Type()) {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == which && obj.Pkg() != nil && obj.Pkg().Path() == checkpointPkg
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func checkType(pass *analysis.Pass, pkg *pkgIndex, named *types.Named, st *types.Struct, save, load *types.Func) {
	saveRefs := pkg.reachableFields(save)
	loadRefs := pkg.reachableFields(load)
	fields := pkg.fieldDecls(named)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" {
			continue
		}
		decl := fields[f]
		if skip, hasReason := skipAnnotated(decl); skip {
			if !hasReason {
				pass.Reportf(f.Pos(), "//ckpt:skip on field %s of %s needs a reason", f.Name(), named.Obj().Name())
			}
			continue
		}
		// A promoted SaveState/LoadState pair counts as covering the
		// embedded field that provides it.
		if f.Embedded() && (providesMethod(f.Type(), save) || providesMethod(f.Type(), load)) {
			continue
		}
		missing := ""
		switch {
		case !saveRefs[f] && !loadRefs[f]:
			missing = "SaveState or LoadState"
		case !saveRefs[f]:
			missing = "SaveState"
		case !loadRefs[f]:
			missing = "LoadState"
		default:
			continue
		}
		pass.Reportf(f.Pos(), "field %s of checkpointable type %s is not referenced in %s; serialize it or annotate //ckpt:skip <reason>",
			f.Name(), named.Obj().Name(), missing)
	}
}

// providesMethod reports whether the (possibly pointer) field type's
// method set is where fn comes from — i.e. fn was promoted through this
// embedded field.
func providesMethod(fieldType types.Type, fn *types.Func) bool {
	t := fieldType
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i) == fn {
			return true
		}
	}
	return false
}

// skipAnnotated reports whether the field declaration carries a
// //ckpt:skip directive, and whether the directive has a reason.
func skipAnnotated(decl *ast.Field) (skip, hasReason bool) {
	if decl == nil {
		return false, false
	}
	for _, cg := range []*ast.CommentGroup{decl.Doc, decl.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			m, ok := analysis.ParseMarker(c.Text)
			if !ok || m.Domain != "ckpt" || m.Verb != "skip" {
				continue
			}
			return true, m.Arg != ""
		}
	}
	return false, false
}

// pkgIndex caches the package-local call graph and per-function field
// references: one traversal of every function body serves every
// checkpointable type in the package.
type pkgIndex struct {
	pass   *analysis.Pass
	bodies map[*types.Func]*funcInfo
}

type funcInfo struct {
	fields  map[*types.Var]bool
	callees []*types.Func
}

func newPkgIndex(pass *analysis.Pass) *pkgIndex {
	pkg := &pkgIndex{pass: pass, bodies: map[*types.Func]*funcInfo{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			pkg.bodies[fn] = pkg.scan(fd.Body)
		}
	}
	return pkg
}

// scan collects the struct fields referenced and the package-local
// functions called anywhere under n (function literals included).
func (pkg *pkgIndex) scan(n ast.Node) *funcInfo {
	info := &funcInfo{fields: map[*types.Var]bool{}}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					info.fields[v] = true
				}
			}
		case *ast.Ident:
			// Composite-literal keys and plain uses both land in Uses.
			if v, ok := pkg.pass.Info.Uses[n].(*types.Var); ok && v.IsField() {
				info.fields[v] = true
			}
		case *ast.CallExpr:
			if fn := pkg.pass.CalleeFunc(n); fn != nil && fn.Pkg() == pkg.pass.Pkg {
				info.callees = append(info.callees, fn)
			}
		}
		return true
	})
	return info
}

// reachableFields unions the field references of root and every
// package-local function transitively reachable from it.
func (pkg *pkgIndex) reachableFields(root *types.Func) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	seen := map[*types.Func]bool{}
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		info := pkg.bodies[fn]
		if info == nil {
			return
		}
		for v := range info.fields {
			out[v] = true
		}
		for _, callee := range info.callees {
			walk(callee)
		}
	}
	walk(root)
	return out
}

// fieldDecls maps the field objects of named's struct to their AST
// declarations (for annotation lookup) by position containment, which
// handles named and embedded fields uniformly.
func (pkg *pkgIndex) fieldDecls(named *types.Named) map[*types.Var]*ast.Field {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	out := map[*types.Var]*ast.Field{}
	for _, f := range pkg.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || pkg.pass.ObjectOf(ts.Name) != named.Obj() {
					continue
				}
				stAST, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range stAST.Fields.List {
					for i := 0; i < st.NumFields(); i++ {
						v := st.Field(i)
						if field.Pos() <= v.Pos() && v.Pos() <= field.End() {
							out[v] = field
						}
					}
				}
			}
		}
	}
	return out
}
