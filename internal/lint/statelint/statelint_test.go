package statelint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/statelint"
)

func fixtureDir(t *testing.T, name string) (root, dir string) {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root, filepath.Join(root, "internal", "lint", "testdata", "src", name)
}

func TestStatelint(t *testing.T) {
	root, dir := fixtureDir(t, "statelint")
	diags := analysistest.Run(t, root, dir, "bingo/internal/statefixture", statelint.Analyzer)
	if len(diags) == 0 {
		t.Fatal("fixture seeded violations but statelint reported nothing")
	}
}

func TestStatelintCleanFixture(t *testing.T) {
	root, dir := fixtureDir(t, "statelintclean")
	diags := analysistest.Run(t, root, dir, "bingo/internal/statecleanfixture", statelint.Analyzer)
	if len(diags) != 0 {
		t.Errorf("clean fixture produced %d diagnostics", len(diags))
	}
}

// TestStatelintCatchesDroppedSaveField is the seeded-mutation test: start
// from the clean fixture, delete the line that saves Counter.total, and
// statelint must report exactly that field as missing from SaveState.
func TestStatelintCatchesDroppedSaveField(t *testing.T) {
	root, dir := fixtureDir(t, "statelintclean")
	src, err := os.ReadFile(filepath.Join(dir, "clean.go"))
	if err != nil {
		t.Fatal(err)
	}

	var kept []string
	dropped := 0
	for _, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "w.U64(c.total)") {
			dropped++
			continue
		}
		kept = append(kept, line)
	}
	if dropped != 1 {
		t.Fatalf("mutation dropped %d lines, want exactly 1 (fixture drifted?)", dropped)
	}

	mutDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(mutDir, "clean.go"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/internal/statecleanfixture", mutDir)
	runner, err := analysis.NewRunner(loader, []*analysis.Analyzer{statelint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runner.Package("bingo/internal/statecleanfixture")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("mutated fixture produced %d diagnostics, want 1: %v", len(diags), diags)
	}
	msg := diags[0].Message
	if !strings.Contains(msg, "field total") || !strings.Contains(msg, "SaveState") {
		t.Errorf("diagnostic %q does not name the dropped field's missing SaveState reference", msg)
	}
}
