// Package locklint proves the module free of lock-order deadlocks it
// can name: the effects summaries record every mutex acquisition and
// release in program order (branch alternatives and defers modeled —
// see the lock interpreter in internal/lint/effects/world.go), and the
// analyzer folds every function's interpretation into one module-wide
// lock-order graph. An edge A→B means some call chain acquires B while
// holding A; a cycle in that graph is a potential deadlock the moment
// two goroutines interleave the chains, and a self-edge is a guaranteed
// one (Go mutexes are not reentrant). Separately, holding any lock
// across a channel operation or a known blocking call (time.Sleep,
// WaitGroup.Wait, Cond.Wait) is flagged: the lock's critical section
// then extends across an unbounded wait, which stalls the simulator's
// worker pool even when no cycle exists.
//
// Lock identity is type-based ("pkg.Type.mu" for struct-held mutexes,
// "pkg.var" for package-level ones), so two instances of the same type
// share a node — conservative for deadlock detection (the classic
// ordered-pair pattern over instances of one type will flag; suppress
// with //lint:ignore locklint and the ordering argument). Mutexes the
// analysis cannot name (locals, parameters) drop out of the graph
// entirely; see the soundness caveats in internal/lint/effects.
//
// Each package's run reports only the edges and warnings produced by
// its own functions, at their live positions; a cycle spanning several
// packages surfaces once per participating package, each pointing at
// the acquisition it owns.
package locklint

import (
	"sort"
	"strings"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/effects"
)

// Analyzer reports lock-order cycles and locks held across blocking
// operations.
var Analyzer = &analysis.Analyzer{
	Name: "locklint",
	Doc: "build the module-wide lock-order graph from effect summaries; report ordering cycles " +
		"(potential deadlocks) and locks held across channel or blocking operations",
	Requires: []*analysis.Analyzer{effects.Facts},
	Run:      run,
}

func run(pass *analysis.Pass) error {
	w := effects.NewWorld(pass)
	here := pass.Pkg.Path()

	var edges []effects.LockEdge
	var warns []effects.LockWarn
	for _, key := range w.SortedKeys() {
		fe := w.Funcs[key]
		if fe.Test {
			continue
		}
		// Closures are interpreted inline where their parent's trace calls
		// them and standalone here; the duplicate edges merge in the graph.
		net := w.Interpret(key)
		edges = append(edges, net.Edges...)
		warns = append(warns, net.Warns...)
	}

	comp, cyclic := sccs(edges)

	seenEdge := map[string]bool{}
	for i := range edges {
		e := &edges[i]
		if e.Pkg != here || !e.LocalPos().IsValid() {
			continue
		}
		selfEdge := e.From == e.To
		// A non-self edge lies on a cycle exactly when both endpoints sit
		// in the same (cyclic) strongly connected component.
		if !selfEdge && !(comp[e.From] == comp[e.To] && cyclic[e.From]) {
			continue
		}
		k := e.From + "\x00" + e.To + "\x00" + e.Pos
		if seenEdge[k] {
			continue
		}
		seenEdge[k] = true
		if selfEdge {
			pass.Reportf(e.LocalPos(),
				"lock %s acquired while already held — Go mutexes are not reentrant, this deadlocks", e.To)
			continue
		}
		pass.Reportf(e.LocalPos(),
			"lock %s acquired while holding %s, but another call chain orders them the other way — potential deadlock",
			e.To, e.From)
	}

	seenWarn := map[string]bool{}
	for i := range warns {
		wn := &warns[i]
		if wn.Pkg != here || !wn.LocalPos().IsValid() {
			continue
		}
		held := append([]string(nil), wn.Held...)
		sort.Strings(held)
		k := strings.Join(held, ",") + "\x00" + wn.What + "\x00" + wn.Pos
		if seenWarn[k] {
			continue
		}
		seenWarn[k] = true
		pass.Reportf(wn.LocalPos(),
			"%s while holding %s — the critical section extends across an unbounded wait",
			wn.What, strings.Join(held, ", "))
	}
	return nil
}

// sccs condenses the lock-order graph into strongly connected
// components and returns each node's component id plus the set of nodes
// on some ordering cycle (component of size > 1, or a self-edge).
func sccs(edges []effects.LockEdge) (map[string]int, map[string]bool) {
	succ := map[string]map[string]bool{}
	for i := range edges {
		e := &edges[i]
		if succ[e.From] == nil {
			succ[e.From] = map[string]bool{}
		}
		succ[e.From][e.To] = true
		if succ[e.To] == nil {
			succ[e.To] = map[string]bool{}
		}
	}
	nodes := make([]string, 0, len(succ))
	for n := range succ {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	// Tarjan's algorithm, iterative state kept in maps (the graph is a
	// handful of mutex types, clarity over constant factors).
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	comp := map[string]int{} // node → component id
	nComp := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		targets := make([]string, 0, len(succ[v]))
		for t := range succ[v] {
			targets = append(targets, t)
		}
		sort.Strings(targets)
		for _, t := range targets {
			if _, seen := index[t]; !seen {
				strongconnect(t)
				if low[t] < low[v] {
					low[v] = low[t]
				}
			} else if onStack[t] && index[t] < low[v] {
				low[v] = index[t]
			}
		}
		if low[v] == index[v] {
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp[top] = nComp
				if top == v {
					break
				}
			}
			nComp++
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	size := map[int]int{}
	for _, c := range comp {
		size[c]++
	}
	cyclic := map[string]bool{}
	for n, c := range comp {
		if size[c] > 1 || succ[n][n] {
			cyclic[n] = true
		}
	}
	return comp, cyclic
}
