package locklint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/locklint"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestLocklintFixture(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal/lint/testdata/src/locklint")
	analysistest.Run(t, root, dir, "bingo/internal/lockfix", locklint.Analyzer)
}

// TestLocklintCatchesDroppedRelease deletes the early release on
// D.Wait's fast path: the receive then happens under the lock and the
// branch-sensitive interpreter must flag it. If this fails, the
// interpreter is not actually tracking releases per path.
func TestLocklintCatchesDroppedRelease(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal/lint/testdata/src/locklint")
	src, err := os.ReadFile(filepath.Join(dir, "lockfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	dropped := 0
	for _, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "// early release") {
			dropped++
			continue
		}
		kept = append(kept, line)
	}
	if dropped != 1 {
		t.Fatalf("mutation dropped %d lines, want exactly 1", dropped)
	}
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "lockfix.go"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/internal/lockfix", tmp)
	runner, err := analysis.NewRunner(loader, []*analysis.Analyzer{locklint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runner.Package("bingo/internal/lockfix")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "channel receive while holding bingo/internal/lockfix.D.mu") {
			return
		}
	}
	t.Errorf("dropping the early release did not surface the receive-under-lock; got %d diagnostic(s)", len(diags))
}
