// Package detlint enforces the simulator's determinism contract: given the
// same configuration and seeds, every run must be byte-identical. Three
// classes of violation are flagged in packages under bingo/internal/...:
//
//  1. Wall-clock reads (time.Now, time.Since, time.Until). Simulated time
//     comes from the core clock; wall time in a simulated path makes runs
//     diverge. Harness-side progress reporting is a legitimate use and is
//     expected to carry a //lint:ignore detlint directive explaining so.
//
//  2. Package-level math/rand functions (rand.Intn, rand.Float64, ...).
//     These draw from the process-global generator, whose state is shared
//     across every component and goroutine; components must own an
//     instance-local *rand.Rand seeded from their config. Constructors
//     (rand.New, rand.NewSource, rand.NewZipf) are allowed — they are how
//     instance-local generators are built.
//
//  3. Map iteration feeding an order-sensitive sink. Go randomizes map
//     iteration order, so a `range m` whose body writes output, feeds a
//     hash, or appends to a slice that outlives the loop produces
//     different bytes on every run. The canonical fix — collect the keys,
//     sort, iterate the sorted slice — is recognized: a key-collection
//     loop is accepted when a later statement in the same block passes the
//     collected slice to sort.* or slices.Sort*.
package detlint

import (
	"go/ast"
	"go/types"
	"strings"

	"bingo/internal/lint/analysis"
)

// Analyzer flags nondeterminism escapes in simulator packages.
var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc: "forbid wall-clock reads, global math/rand state, and unsorted map iteration " +
		"feeding output/hashes/slices in bingo/internal/... packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), "bingo/internal/") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue // determinism is a shipping-binary property; tests may shuffle
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
		analysis.WalkStmtLists(f, func(list []ast.Stmt) {
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if t := pass.TypeOf(rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRange(pass, rs, list[i+1:])
					}
				}
			}
		})
	}
	return nil
}

// wallClockFuncs are the time functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors build instance-local generators and are allowed.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. on *rand.Rand) are instance-local
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "call to time.%s reads the wall clock; simulated paths must use the core clock (document reporting-only uses with //lint:ignore detlint <reason>)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "call to package-level %s.%s uses the process-global RNG; use an instance-local *rand.Rand seeded from config", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange classifies the body of a range-over-map statement. rest is
// the list of statements following rs in its enclosing block, used to
// recognize the collect-keys-then-sort idiom.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	sinks := classifyBody(pass, rs)
	if sinks.output != "" {
		pass.Reportf(rs.For, "map iteration order is random but this loop feeds %s; iterate over sorted keys", sinks.output)
		return
	}
	for _, tgt := range sinks.appends {
		if !sortedLater(pass, tgt, rest) {
			pass.Reportf(rs.For, "map iteration appends to %q in nondeterministic order and %q is not sorted afterwards in this block; sort it or iterate over sorted keys", tgt.name, tgt.name)
			return
		}
	}
}

// appendTarget is a slice variable declared outside the loop that the loop
// body appends to.
type appendTarget struct {
	obj  types.Object
	name string
}

type bodySinks struct {
	// output names the first order-sensitive sink called in the body
	// (printing, writing, hashing), or "".
	output string
	// appends lists outer-scope slices grown inside the body.
	appends []appendTarget
}

// orderSensitiveMethods are method names whose call order changes bytes:
// stream writes and hash accumulation.
var orderSensitiveMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Sum": true, "Sum32": true, "Sum64": true,
}

func classifyBody(pass *analysis.Pass, rs *ast.RangeStmt) bodySinks {
	var sinks bodySinks
	seen := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := orderSensitiveCall(pass, n); name != "" && sinks.output == "" {
				sinks.output = name
			}
			if tgt, ok := outerAppend(pass, n, rs); ok && !seen[tgt.obj] {
				seen[tgt.obj] = true
				sinks.appends = append(sinks.appends, tgt)
			}
		}
		return true
	})
	return sinks
}

func orderSensitiveCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if orderSensitiveMethods[fn.Name()] {
			return "a " + fn.Name() + " call"
		}
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "fmt." + fn.Name()
	}
	return ""
}

// outerAppend matches append calls whose destination is declared outside
// the range statement, i.e. the grown slice outlives the loop.
func outerAppend(pass *analysis.Pass, call *ast.CallExpr, rs *ast.RangeStmt) (appendTarget, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return appendTarget{}, false
	}
	if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return appendTarget{}, false
	}
	if len(call.Args) == 0 {
		return appendTarget{}, false
	}
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(dst)
		if obj == nil || obj.Pos() == 0 {
			return appendTarget{}, false
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return appendTarget{}, false // loop-local scratch
		}
		return appendTarget{obj: obj, name: dst.Name}, true
	case *ast.SelectorExpr:
		// Appending through a field (s.items = append(s.items, ...)):
		// always outer scope.
		obj := pass.ObjectOf(dst.Sel)
		if obj == nil {
			return appendTarget{}, false
		}
		return appendTarget{obj: obj, name: exprString(dst)}, true
	}
	return appendTarget{}, false
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "?"
	}
}

// sortedLater reports whether some statement in rest passes tgt to a
// sort.* or slices.* function (directly or inside a closure argument, as
// in sort.Slice(s, func(i, j int) bool { ... })).
func sortedLater(pass *analysis.Pass, tgt appendTarget, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if pass.RefersToObject(arg, tgt.obj) {
					found = true
					break
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
