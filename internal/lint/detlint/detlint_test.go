package detlint_test

import (
	"path/filepath"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/detlint"
)

func TestDetlint(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "detlint")
	diags := analysistest.Run(t, root, dir, "bingo/internal/detfixture", detlint.Analyzer)
	if len(diags) == 0 {
		t.Fatal("fixture seeded violations but detlint reported nothing")
	}
}

// TestOutOfScope locks down the package scoping: the same fixture loaded
// outside bingo/internal/... must produce no diagnostics.
func TestOutOfScope(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "detlint")
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/cmd/detfixture", dir)
	pkg, err := loader.Load("bingo/cmd/detfixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{detlint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("detlint reported %d diagnostics outside internal/...", len(diags))
	}
}
