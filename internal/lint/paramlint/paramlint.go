// Package paramlint keeps the simulated machine's hardware parameters —
// table entry counts, associativities, sizes, latencies, thresholds,
// degrees: the knobs of the paper's Table I — in declared configuration,
// not scattered as magic numbers through component logic. Every component
// follows the Config / DefaultConfig pattern; a bare `Entries: 4096`
// deep inside an update path bypasses it and silently forks the modeled
// hardware from the configured one.
//
// The analyzer flags assignments and composite-literal fields whose name
// looks like a hardware parameter (Entries, Ways, Assoc, Sets, Size,
// Latency, Threshold, Degree, Depth, Width, Queue, Capacity, Channels,
// ROB, LSQ, MSHR, ...) and whose value is a bare numeric literal (or a
// pure-literal expression like 16*1024) greater than one. Legitimate
// parameter homes are exempt: files whose name marks them as
// configuration (config*.go, params*.go, consts*.go, defaults*.go),
// functions whose name contains Config, Default, or Table (the
// DefaultConfig constructors reproducing the paper's table), package-level
// const/var declarations, and any value spelled via a named constant.
//
// Scope: packages under bingo/internal/ except mem (pure unit arithmetic),
// harness and workloads (their literals are experiment definitions and
// synthetic-trace geometry — configuration by nature), and the lint suite
// itself.
package paramlint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"bingo/internal/lint/analysis"
)

// Analyzer flags hardware parameters hardcoded outside config contexts.
var Analyzer = &analysis.Analyzer{
	Name: "paramlint",
	Doc: "forbid hardware-parameter literals (table sizes, ways, latencies, thresholds, ...) " +
		"outside config/constants files and Default*/Config*/Table* constructors",
	Run: run,
}

var exemptPackages = map[string]bool{
	"bingo/internal/mem":       true,
	"bingo/internal/harness":   true,
	"bingo/internal/workloads": true,
}

// paramField matches struct-field / variable names that denote hardware
// parameters.
var paramField = regexp.MustCompile(`(?i)(entries|ways|assoc|sets|size|bytes|latency|threshold|degree|depth|width|queue|capacity|channels|rob|lsq|mshr|interval|epoch)`)

// configFile matches file base names that are legitimate parameter homes.
var configFile = regexp.MustCompile(`(?i)^(config|params?|consts?|defaults?)[^/]*\.go$`)

// configFunc matches enclosing functions that are legitimate parameter
// homes.
var configFunc = regexp.MustCompile(`(?i)(config|default|table)`)

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, "bingo/internal/") || exemptPackages[path] ||
		strings.HasPrefix(path, "bingo/internal/lint") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue // ad-hoc numbers are the point of a test case
		}
		base := pass.Fset.Position(f.Pos()).Filename
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if configFile.MatchString(base) {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue // package-level const/var/type: declared configuration
		}
		if configFunc.MatchString(fd.Name.Name) {
			continue // Default*/Config*/Table* constructors are exempt
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok {
					checkValue(pass, key.Name, n.Value)
				}
			case *ast.AssignStmt:
				// Only plain assignment and definition: compound ops
				// (x *= 2, n += 1) are algorithm steps — e.g. FDP's
				// multiplicative degree adaptation — not parameters.
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					return true
				}
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if name, ok := fieldName(lhs); ok {
						checkValue(pass, name, n.Rhs[i])
					}
				}
			}
			return true
		})
	}
}

func fieldName(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name, true
	case *ast.Ident:
		return e.Name, true
	}
	return "", false
}

func checkValue(pass *analysis.Pass, name string, value ast.Expr) {
	if !paramField.MatchString(name) {
		return
	}
	v, ok := pass.ConstInt(value)
	if !ok || v <= 1 {
		return
	}
	if !isBareLiteral(value) {
		return // spelled via a named constant: configuration honored
	}
	pass.Reportf(value.Pos(), "hardware parameter %s hardcoded as %d outside a config context; move it to the package Config/DefaultConfig or a named constant", name, v)
}

// isBareLiteral reports whether e is built purely from numeric literals
// (possibly combined arithmetically, e.g. 16*1024), with no named
// constant anywhere.
func isBareLiteral(e ast.Expr) bool {
	bare := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			bare = false
			return false
		}
		return bare
	})
	return bare
}
