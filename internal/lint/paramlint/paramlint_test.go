package paramlint_test

import (
	"path/filepath"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/paramlint"
)

func TestParamlint(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "paramlint")
	diags := analysistest.Run(t, root, dir, "bingo/internal/cachefixture", paramlint.Analyzer)
	if len(diags) == 0 {
		t.Fatal("fixture seeded violations but paramlint reported nothing")
	}
}

// TestHarnessIsExempt loads the fixture under the harness import path:
// experiment definitions are configuration by nature and stay unflagged.
func TestHarnessIsExempt(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "paramlint")
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/internal/harness", dir)
	pkg, err := loader.Load("bingo/internal/harness")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{paramlint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("paramlint reported %d diagnostics in exempt package", len(diags))
	}
}
