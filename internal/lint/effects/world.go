package effects

import (
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bingo/internal/lint/analysis"
)

// World assembles the effect summaries of the package under analysis and
// its whole module-local import closure into one queryable call graph.
// Construction is cheap relative to analysis (map merges over facts the
// runner already decoded), so each consuming analyzer builds its own.
type World struct {
	pass    *analysis.Pass
	Funcs   map[string]*FuncEffects
	escapes map[string][]string       // canonical signature → escaping function keys
	typePkg map[string]*types.Package // full import closure, by path
	module  []*types.Package          // module-local closure, current package included

	chaMemo  map[string][]string
	lockMemo map[string]map[string]bool
	lockIn   map[string]bool
	blockIn  map[string]bool
	blockSet map[string]string
	netMemo  map[string]*LockNet
	netIn    map[string]bool
}

// NewWorld gathers the PkgEffects facts visible to pass (its own live
// fact plus every module-local dependency's serialized one) into a
// World. The consuming analyzer must list Facts in Requires.
func NewWorld(pass *analysis.Pass) *World {
	w := &World{
		pass:     pass,
		Funcs:    map[string]*FuncEffects{},
		escapes:  map[string][]string{},
		typePkg:  map[string]*types.Package{},
		chaMemo:  map[string][]string{},
		lockMemo: map[string]map[string]bool{},
		lockIn:   map[string]bool{},
		blockIn:  map[string]bool{},
		blockSet: map[string]string{},
		netMemo:  map[string]*LockNet{},
		netIn:    map[string]bool{},
	}
	seen := map[*types.Package]bool{}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		w.typePkg[p.Path()] = p
		if moduleLocal(p.Path()) {
			w.module = append(w.module, p)
			var pe PkgEffects
			if pass.ImportPackageFact(p, &pe) {
				for key, fe := range pe.Funcs {
					w.Funcs[key] = fe
				}
				for _, ref := range pe.Escapes {
					w.escapes[ref.Sig] = append(w.escapes[ref.Sig], ref.Key)
				}
			}
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	visit(pass.Pkg)
	sort.Slice(w.module, func(i, j int) bool { return w.module[i].Path() < w.module[j].Path() })
	for sig := range w.escapes {
		keys := w.escapes[sig]
		sort.Strings(keys)
		w.escapes[sig] = dedupeSorted(keys)
	}
	return w
}

func dedupeSorted(keys []string) []string {
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			out = append(out, k)
		}
	}
	return out
}

// SortedKeys returns the keys of every summary in the world, sorted, for
// deterministic iteration.
func (w *World) SortedKeys() []string {
	keys := make([]string, 0, len(w.Funcs))
	for k := range w.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DynTargets resolves a dynamic event to the summary keys it may invoke.
// Interface calls resolve by class-hierarchy analysis: every
// package-scope named type in the module-local closure that implements
// the interface contributes its method. Function-value calls resolve
// flow-insensitively against the escaping references of matching
// canonical signature.
func (w *World) DynTargets(ev *Event) []string {
	switch ev.Kind {
	case EvDynFunc:
		return w.escapes[ev.Sig]
	case EvSpawn:
		if ev.Key == "" && ev.Sig != "" {
			return w.escapes[ev.Sig]
		}
		return nil
	case EvDynCall:
		memo := ev.Key + "#" + ev.Method
		if t, ok := w.chaMemo[memo]; ok {
			return t
		}
		var targets []string
		dot := strings.LastIndexByte(ev.Key, '.')
		if dot > 0 {
			if p := w.typePkg[ev.Key[:dot]]; p != nil {
				if tn, ok := p.Scope().Lookup(ev.Key[dot+1:]).(*types.TypeName); ok {
					if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
						targets = w.implementors(iface, ev.Method)
					}
				}
			}
		}
		w.chaMemo[memo] = targets
		return targets
	}
	return nil
}

func (w *World) implementors(iface *types.Interface, method string) []string {
	var out []string
	for _, p := range w.module {
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			if !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			key := p.Path() + "." + name + "." + method
			if w.Funcs[key] != nil {
				out = append(out, key)
			}
		}
	}
	return out
}

// Edges invokes fn for every outgoing call edge of fe — static calls,
// spawns, and every resolved dynamic target — across the trace, its
// branch alternatives, and the deferred events.
func (w *World) Edges(fe *FuncEffects, fn func(ev *Event, target string)) {
	var walk func(evs []Event)
	walk = func(evs []Event) {
		for i := range evs {
			ev := &evs[i]
			switch ev.Kind {
			case EvCall:
				fn(ev, ev.Key)
			case EvSpawn:
				if ev.Key != "" {
					fn(ev, ev.Key)
				} else {
					for _, t := range w.DynTargets(ev) {
						fn(ev, t)
					}
				}
			case EvDynCall, EvDynFunc:
				for _, t := range w.DynTargets(ev) {
					fn(ev, t)
				}
			case EvBranch:
				for _, alt := range ev.Alts {
					walk(alt)
				}
			}
		}
	}
	walk(fe.Trace)
	walk(fe.Deferred)
}

// Walk traverses the call graph from root. descend sees every reachable
// summary (root first) and returns whether to follow its edges.
func (w *World) Walk(root string, descend func(fe *FuncEffects) bool) {
	seen := map[string]bool{}
	var visit func(key string)
	visit = func(key string) {
		if seen[key] {
			return
		}
		seen[key] = true
		fe := w.Funcs[key]
		if fe == nil || !descend(fe) {
			return
		}
		w.Edges(fe, func(_ *Event, target string) { visit(target) })
	}
	visit(root)
}

// Lockset returns every lock key acquired anywhere in key's transitive
// call graph (spawned goroutines excluded: their acquisitions happen on
// another stack).
func (w *World) Lockset(key string) map[string]bool {
	if ls, ok := w.lockMemo[key]; ok {
		return ls
	}
	if w.lockIn[key] {
		return nil // recursion: the outer frame owns the answer
	}
	w.lockIn[key] = true
	defer delete(w.lockIn, key)
	ls := map[string]bool{}
	fe := w.Funcs[key]
	if fe == nil {
		w.lockMemo[key] = ls
		return ls
	}
	var walk func(evs []Event)
	walk = func(evs []Event) {
		for i := range evs {
			ev := &evs[i]
			switch ev.Kind {
			case EvLock:
				ls[ev.Key] = true
			case EvCall:
				for l := range w.Lockset(ev.Key) {
					ls[l] = true
				}
			case EvDynCall, EvDynFunc:
				for _, t := range w.DynTargets(ev) {
					for l := range w.Lockset(t) {
						ls[l] = true
					}
				}
			case EvBranch:
				for _, alt := range ev.Alts {
					walk(alt)
				}
			}
		}
	}
	walk(fe.Trace)
	walk(fe.Deferred)
	w.lockMemo[key] = ls
	return ls
}

// Blocks returns a description of a channel or blocking operation inside
// key's transitive call graph, or "". Path-insensitive across call
// boundaries: a callee that releases the caller's lock before blocking
// still reads as blocking (a documented over-approximation; suppress
// with //lint:ignore locklint and a reason when the release is real).
func (w *World) Blocks(key string) string {
	if d, ok := w.blockSet[key]; ok {
		return d
	}
	if w.blockIn[key] {
		return ""
	}
	w.blockIn[key] = true
	defer delete(w.blockIn, key)
	d := ""
	fe := w.Funcs[key]
	if fe != nil {
		var walk func(evs []Event)
		walk = func(evs []Event) {
			for i := range evs {
				if d != "" {
					return
				}
				ev := &evs[i]
				switch ev.Kind {
				case EvChan:
					d = "channel " + ev.Key
				case EvBlock:
					d = ev.Key
				case EvCall:
					if inner := w.Blocks(ev.Key); inner != "" {
						d = inner
					}
				case EvDynCall, EvDynFunc:
					for _, t := range w.DynTargets(ev) {
						if inner := w.Blocks(t); inner != "" {
							d = inner
							break
						}
					}
				case EvBranch:
					for _, alt := range ev.Alts {
						walk(alt)
					}
				}
			}
		}
		walk(fe.Trace)
		walk(fe.Deferred)
	}
	w.blockSet[key] = d
	return d
}

// LockEdge is one observed acquisition ordering: To was acquired while
// From was held, at Pos (in the function of package Pkg whose
// interpretation produced it).
type LockEdge struct {
	From, To string
	Pkg      string
	Pos      string
	localPos token.Pos
}

// LocalPos returns the edge's live position when its owning function was
// summarized in the current package, else token.NoPos.
func (e *LockEdge) LocalPos() token.Pos { return e.localPos }

// LockWarn is one channel or blocking operation performed while at
// least one lock was held.
type LockWarn struct {
	Held     []string
	What     string
	Pkg      string
	Pos      string
	localPos token.Pos
}

// LocalPos returns the warning's live position, or token.NoPos.
func (e *LockWarn) LocalPos() token.Pos { return e.localPos }

// LockNet is the lock-relevant abstract of one function: the order edges
// and held-while-blocking warnings its body produces from an empty held
// set, and its net effect on a caller's held set (for lock/unlock
// helper methods).
type LockNet struct {
	Edges    []LockEdge
	Warns    []LockWarn
	Acquired []string // held at exit on at least one path
	Released []string // released without having been acquired here
}

// maxHeldStates bounds the branch-sensitive state exploration per
// function; beyond it, alternatives collapse into one unioned held set.
const maxHeldStates = 12

// Interpret runs the lock interpreter over key's summary: branch
// alternatives are explored separately, a path that returns applies the
// deferred events and stops, and calls contribute their callee's
// transitive lockset (as order edges), blocking behavior (as warnings),
// and net held-set effect. Results are memoized per World.
func (w *World) Interpret(key string) *LockNet {
	if n, ok := w.netMemo[key]; ok {
		return n
	}
	if w.netIn[key] {
		return &LockNet{} // recursive cycle: fixed point of the empty net
	}
	w.netIn[key] = true
	defer delete(w.netIn, key)

	net := &LockNet{}
	fe := w.Funcs[key]
	if fe == nil {
		w.netMemo[key] = net
		return net
	}
	it := &lockInterp{w: w, fe: fe, net: net}
	states := it.seq(fe.Trace, [][]string{{}})
	for _, st := range states {
		it.exit(st)
	}
	sort.Strings(net.Acquired)
	net.Acquired = dedupeSorted(net.Acquired)
	sort.Strings(net.Released)
	net.Released = dedupeSorted(net.Released)
	w.netMemo[key] = net
	return net
}

type lockInterp struct {
	w   *World
	fe  *FuncEffects
	net *LockNet
}

func (it *lockInterp) edge(from, to string, ev *Event) {
	it.net.Edges = append(it.net.Edges, LockEdge{
		From: from, To: to, Pkg: it.fe.Pkg, Pos: ev.Pos, localPos: ev.localPos,
	})
}

func (it *lockInterp) warn(held []string, what string, ev *Event) {
	it.net.Warns = append(it.net.Warns, LockWarn{
		Held: append([]string(nil), held...), What: what,
		Pkg: it.fe.Pkg, Pos: ev.Pos, localPos: ev.localPos,
	})
}

// exit records one path's held set at function exit, after its deferred
// events ran.
func (it *lockInterp) exit(held []string) {
	for _, st := range it.seq(it.fe.Deferred, [][]string{held}) {
		it.net.Acquired = append(it.net.Acquired, st...)
	}
}

func (it *lockInterp) seq(evs []Event, states [][]string) [][]string {
	for i := range evs {
		states = it.step(&evs[i], states)
		if len(states) == 0 {
			return nil // every path returned
		}
	}
	return states
}

func (it *lockInterp) step(ev *Event, states [][]string) [][]string {
	switch ev.Kind {
	case EvLock:
		for i, held := range states {
			for _, h := range held {
				it.edge(h, ev.Key, ev)
			}
			if !contains(held, ev.Key) {
				states[i] = append(held, ev.Key)
			}
		}
	case EvUnlock:
		for i, held := range states {
			if contains(held, ev.Key) {
				states[i] = remove(held, ev.Key)
			} else {
				it.net.Released = append(it.net.Released, ev.Key)
			}
		}
	case EvChan, EvBlock:
		what := ev.Key
		if ev.Kind == EvChan {
			what = "channel " + ev.Key
		}
		for _, held := range states {
			if len(held) > 0 {
				it.warn(held, what, ev)
				break // one warning per site, not per explored path
			}
		}
	case EvCall:
		states = it.call(ev, ev.Key, states, true)
	case EvDynCall, EvDynFunc:
		for _, t := range it.w.DynTargets(ev) {
			// Dynamic targets contribute edges and warnings but not net
			// held-set effects: the targets need not agree on one.
			states = it.call(ev, t, states, false)
		}
	case EvSpawn:
		// A fresh goroutine starts with an empty held set; its own
		// interpretation covers its body.
	case EvReturn:
		for _, held := range states {
			it.exit(held)
		}
		return nil
	case EvBranch:
		var next [][]string
		for _, alt := range ev.Alts {
			branch := make([][]string, len(states))
			for i, held := range states {
				branch[i] = append([]string(nil), held...)
			}
			next = append(next, it.seq(alt, branch)...)
		}
		return mergeStates(next)
	}
	return states
}

// call applies one resolved call edge to the held states: order edges to
// everything the callee's graph acquires, a warning if it can block, and
// (for static calls) the callee's net lock effect.
func (it *lockInterp) call(ev *Event, target string, states [][]string, net bool) [][]string {
	anyHeld := false
	for _, held := range states {
		if len(held) > 0 {
			anyHeld = true
			break
		}
	}
	if anyHeld {
		ls := it.w.Lockset(target)
		if len(ls) > 0 {
			acq := make([]string, 0, len(ls))
			for l := range ls {
				acq = append(acq, l)
			}
			sort.Strings(acq)
			seenPairs := map[string]bool{}
			for _, held := range states {
				for _, h := range held {
					for _, l := range acq {
						if !seenPairs[h+"\x00"+l] {
							seenPairs[h+"\x00"+l] = true
							it.edge(h, l, ev)
						}
					}
				}
			}
		}
		if d := it.w.Blocks(target); d != "" {
			for _, held := range states {
				if len(held) > 0 {
					it.warn(held, d+" inside "+target, ev)
					break
				}
			}
		}
	}
	if !net {
		return states
	}
	n := it.w.Interpret(target)
	if len(n.Acquired) == 0 && len(n.Released) == 0 {
		return states
	}
	for i, held := range states {
		for _, r := range n.Released {
			if contains(held, r) {
				held = remove(held, r)
			}
		}
		for _, a := range n.Acquired {
			if !contains(held, a) {
				held = append(held, a)
			}
		}
		states[i] = held
	}
	return states
}

func contains(held []string, k string) bool {
	for _, h := range held {
		if h == k {
			return true
		}
	}
	return false
}

func remove(held []string, k string) []string {
	out := make([]string, 0, len(held))
	for _, h := range held {
		if h != k {
			out = append(out, h)
		}
	}
	return out
}

// mergeStates dedupes identical held sets and, past maxHeldStates,
// collapses everything into one union set to bound the exploration.
func mergeStates(states [][]string) [][]string {
	seen := map[string]bool{}
	out := states[:0]
	for _, held := range states {
		k := strings.Join(held, "\x00")
		if !seen[k] {
			seen[k] = true
			out = append(out, held)
		}
	}
	if len(out) <= maxHeldStates {
		return out
	}
	union := map[string]bool{}
	var merged []string
	for _, held := range out {
		for _, h := range held {
			if !union[h] {
				union[h] = true
				merged = append(merged, h)
			}
		}
	}
	return [][]string{merged}
}
