package effects_test

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/effects"
)

const fixturePath = "bingo/internal/effectsfix"

// summarizeFixture runs the effects producer over the fixture package
// and returns its live PkgEffects fact.
func summarizeFixture(t *testing.T) *effects.PkgEffects {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var pe effects.PkgEffects
	got := false
	probe := &analysis.Analyzer{
		Name:     "effectsprobe",
		Doc:      "stash the fixture's PkgEffects fact for assertions",
		Requires: []*analysis.Analyzer{effects.Facts},
		Run: func(pass *analysis.Pass) error {
			got = pass.ImportPackageFact(pass.Pkg, &pe)
			return nil
		},
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override(fixturePath, filepath.Join(root, "internal/lint/testdata/src/effects"))
	runner, err := analysis.NewRunner(loader, []*analysis.Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Package(fixturePath); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("no PkgEffects fact exported for the fixture package")
	}
	return &pe
}

func TestSummaryShape(t *testing.T) {
	pe := summarizeFixture(t)

	onAccess := pe.Funcs[fixturePath+".T.OnAccess"]
	if onAccess == nil {
		t.Fatalf("no summary for T.OnAccess; have %d summaries", len(pe.Funcs))
	}
	if !onAccess.HotRoot {
		t.Errorf("T.OnAccess not shape-matched as a hot root")
	}
	if !hasWrite(onAccess, fixturePath+".T.n") {
		t.Errorf("T.OnAccess missing write to T.n: %+v", onAccess.Writes)
	}

	fill := pe.Funcs[fixturePath+".T.Fill"]
	if fill == nil {
		t.Fatal("no summary for T.Fill")
	}
	if fill.HotRoot {
		t.Errorf("T.Fill wrongly marked hot root")
	}
	if !hasAlloc(fill, "append growth") {
		t.Errorf("T.Fill missing append-growth alloc: %+v", fill.Allocs)
	}
	assertLockOrder(t, fill, fixturePath+".T.mu")

	setGlobal := pe.Funcs[fixturePath+".SetGlobal"]
	if setGlobal == nil {
		t.Fatal("no summary for SetGlobal")
	}
	if len(setGlobal.Writes) != 1 || setGlobal.Writes[0].Target != fixturePath+".Global" {
		t.Errorf("SetGlobal writes = %+v, want exactly the Global store (the struct-local store must not count)",
			setGlobal.Writes)
	}

	if !hasEscape(pe, fixturePath+".helperRef") {
		t.Errorf("helperRef's escaping reference not recorded: %+v", pe.Escapes)
	}

	caller := pe.Funcs[fixturePath+".Caller"]
	if caller == nil || !hasCall(caller, fixturePath+".SetGlobal") {
		t.Errorf("Caller missing static call edge to SetGlobal")
	}
}

// TestGobRoundTrip pins the fact serialization contract: exported
// fields survive, live positions are deliberately dropped (they are
// only meaningful against the producing FileSet).
func TestGobRoundTrip(t *testing.T) {
	pe := summarizeFixture(t)

	fill := pe.Funcs[fixturePath+".T.Fill"]
	if !fill.LocalDecl().IsValid() {
		t.Fatal("live summary lost its local declaration position")
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pe); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back effects.PkgEffects
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}

	fill2 := back.Funcs[fixturePath+".T.Fill"]
	if fill2 == nil {
		t.Fatal("T.Fill summary lost in round trip")
	}
	if fill2.LocalDecl().IsValid() {
		t.Errorf("local position survived serialization; remote consumers must see NoPos")
	}
	if fill2.Decl == "" || fill2.Decl != fill.Decl {
		t.Errorf("module-relative position lost: %q vs %q", fill2.Decl, fill.Decl)
	}
	if len(fill2.Allocs) != len(fill.Allocs) || len(fill2.Trace) != len(fill.Trace) {
		t.Errorf("summary content changed in round trip: %d/%d allocs, %d/%d events",
			len(fill2.Allocs), len(fill.Allocs), len(fill2.Trace), len(fill.Trace))
	}
	if len(fill2.Allocs) > 0 && fill2.Allocs[0].LocalPos().IsValid() {
		t.Errorf("alloc site's local position survived serialization")
	}
}

func hasWrite(fe *effects.FuncEffects, target string) bool {
	for _, w := range fe.Writes {
		if w.Target == target {
			return true
		}
	}
	return false
}

func hasAlloc(fe *effects.FuncEffects, what string) bool {
	for _, a := range fe.Allocs {
		if a.What == what {
			return true
		}
	}
	return false
}

func hasEscape(pe *effects.PkgEffects, key string) bool {
	for _, ref := range pe.Escapes {
		if ref.Key == key {
			return true
		}
	}
	return false
}

func hasCall(fe *effects.FuncEffects, key string) bool {
	found := false
	var walk func(evs []effects.Event)
	walk = func(evs []effects.Event) {
		for _, ev := range evs {
			if ev.Kind == effects.EvCall && ev.Key == key {
				found = true
			}
			for _, alt := range ev.Alts {
				walk(alt)
			}
		}
	}
	walk(fe.Trace)
	return found
}

// assertLockOrder checks Fill's trace holds lock then unlock on key, in
// source order.
func assertLockOrder(t *testing.T, fe *effects.FuncEffects, key string) {
	t.Helper()
	var ops []effects.EventKind
	for _, ev := range fe.Trace {
		if (ev.Kind == effects.EvLock || ev.Kind == effects.EvUnlock) && ev.Key == key {
			ops = append(ops, ev.Kind)
		}
	}
	if len(ops) != 2 || ops[0] != effects.EvLock || ops[1] != effects.EvUnlock {
		t.Errorf("lock event order on %s = %v, want [lock unlock]", key, ops)
	}
}
