package effects

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bingo/internal/lint/analysis"
)

// modulePrefix scopes the graph to the repository's own packages, the
// same way the rest of the suite hardcodes its bingo/... scope; fixture
// packages load under synthetic bingo/internal/... paths and land inside
// it.
const modulePrefix = "bingo"

func moduleLocal(path string) bool {
	return path == modulePrefix || strings.HasPrefix(path, modulePrefix+"/")
}

// FuncKey returns the canonical key of a function or method:
// "pkgpath.Name" or "pkgpath.Type.Name" (pointer receivers and generic
// instantiations collapse onto the origin type). ok is false for objects
// no stable key exists for (universe members like error.Error).
func FuncKey(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		named := namedOf(recv.Type())
		if named == nil {
			return "", false // method of an anonymous type
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			return "", false
		}
		return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name(), true
	}
	return fn.Pkg().Path() + "." + fn.Name(), true
}

// namedOf strips pointers and generic instantiation from t and returns
// the origin named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Origin()
}

// pkgScopedNamed reports whether named's type name is declared at its
// package's scope (facts and keys only cover those).
func pkgScopedNamed(named *types.Named) bool {
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Scope().Lookup(obj.Name()) == obj
}

// fullQualifier prints package names as full import paths, making
// signature strings canonical module-wide.
func fullQualifier(p *types.Package) string { return p.Path() }

// sigString renders sig without its receiver, so a method value and a
// plain function of the same shape compare equal — the currency of
// flow-insensitive function-value resolution.
func sigString(sig *types.Signature) string {
	if sig.Recv() != nil {
		sig = types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	}
	return types.TypeString(sig, fullQualifier)
}

// relPos renders pos module-relative as "file:line", the cross-package
// position format of every fact field.
func relPos(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	name := p.Filename
	root := pass.ModuleRoot
	if len(name) > len(root)+1 && name[:len(root)] == root && name[len(root)] == '/' {
		name = name[len(root)+1:]
	}
	return name + ":" + itoa(p.Line)
}

// itoa avoids pulling strconv (an allocation-table package) into the
// analyzer's own hot loop for two-to-four digit line numbers.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// lockKeyOf derives the type-based key of the mutex expression x: the
// owning named type and field for struct-held mutexes ("pkg.Type.mu"),
// the variable for package-level ones ("pkg.mu"). Locks the analysis
// cannot name — locals, parameters — yield "" and drop out of the order
// graph (a documented soundness caveat).
func lockKeyOf(pass *analysis.Pass, x ast.Expr) string {
	x = ast.Unparen(x)
	switch x := x.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lockKeyOf(pass, x.X)
		}
	case *ast.StarExpr:
		return lockKeyOf(pass, x.X)
	case *ast.Ident:
		if v, ok := pass.ObjectOf(x).(*types.Var); ok && pkgLevelVar(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if named := namedOf(sel.Recv()); named != nil && pkgScopedNamed(named) {
				obj := named.Obj()
				return obj.Pkg().Path() + "." + obj.Name() + "." + x.Sel.Name
			}
			return ""
		}
		if v, ok := pass.ObjectOf(x.Sel).(*types.Var); ok && pkgLevelVar(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

func pkgLevelVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Pkg().Scope().Lookup(v.Name()) == v
}

// writeTargetOf classifies the state a store to lhs touches: the owning
// package and a type-based target key, plus whether the store is a map
// write (which may grow the table — an allocation). Stores the analysis
// can prove local — a value chain rooted at a local variable, with no
// pointer, slice, map, or interface hop — return an empty key.
func writeTargetOf(pass *analysis.Pass, lhs ast.Expr) (pkg, target string, mapWrite bool) {
	lhs = ast.Unparen(lhs)
	switch l := lhs.(type) {
	case *ast.Ident:
		if v, ok := pass.ObjectOf(l).(*types.Var); ok && pkgLevelVar(v) {
			return v.Pkg().Path(), v.Pkg().Path() + "." + v.Name(), false
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[l]; ok && sel.Kind() == types.FieldVal {
			if localValueChain(pass, l.X) {
				return "", "", false
			}
			if named := namedOf(sel.Recv()); named != nil && pkgScopedNamed(named) {
				obj := named.Obj()
				return obj.Pkg().Path(), obj.Pkg().Path() + "." + obj.Name() + "." + l.Sel.Name, false
			}
			return "", "", false
		}
		if v, ok := pass.ObjectOf(l.Sel).(*types.Var); ok && pkgLevelVar(v) {
			return v.Pkg().Path(), v.Pkg().Path() + "." + v.Name(), false
		}
	case *ast.IndexExpr:
		_, isMap := typeUnder(pass, l.X).(*types.Map)
		pkg, target, inner := writeTargetOf(pass, l.X)
		if pkg == "" {
			// The container itself is unnamed or local; an element store
			// through it still mutates shared state when the container is a
			// reference type, but there is nothing stable to attribute it
			// to. The map-write allocation is reported regardless.
			return "", "", isMap || inner
		}
		return pkg, target, isMap || inner
	case *ast.StarExpr:
		// *p = v overwrites the whole pointee.
		if named := namedOf(typeUnder(pass, l)); named != nil && pkgScopedNamed(named) {
			obj := named.Obj()
			return obj.Pkg().Path(), obj.Pkg().Path() + "." + obj.Name(), false
		}
	}
	return "", "", false
}

// typeUnder returns the type of e with named layers intact (callers
// switch on .Underlying() or namedOf as needed), or nil.
func typeUnder(pass *analysis.Pass, e ast.Expr) types.Type {
	t := pass.TypeOf(e)
	if t == nil {
		return nil
	}
	return t
}

// localValueChain reports whether base reaches its storage purely
// through value field selections rooted at a local variable — the case
// where a store cannot outlive the function.
func localValueChain(pass *analysis.Pass, base ast.Expr) bool {
	for {
		base = ast.Unparen(base)
		t := pass.TypeOf(base)
		if t == nil {
			return false
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Map, *types.Slice, *types.Interface, *types.Chan:
			return false
		}
		switch b := base.(type) {
		case *ast.SelectorExpr:
			base = b.X
		case *ast.IndexExpr:
			tx := pass.TypeOf(b.X)
			if tx == nil {
				return false
			}
			if _, ok := tx.Underlying().(*types.Array); !ok {
				return false
			}
			base = b.X
		case *ast.Ident:
			v, ok := pass.ObjectOf(b).(*types.Var)
			return ok && !pkgLevelVar(v) && !v.IsField()
		default:
			return false
		}
	}
}
