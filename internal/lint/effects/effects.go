// Package effects is the interprocedural layer of the invariant suite:
// one pass over every package distills each function body into a compact,
// serializable effect summary — the allocation sites it contains, the
// package-level or receiver state it writes, the locks it acquires and
// releases in order, the channel and blocking operations it performs, and
// the calls (static, interface-dispatched, and function-valued) it makes.
// The summaries travel across package boundaries as one gob-encoded
// package fact (PkgEffects), exported by the Facts analyzer; consumers
// assemble them into a module-wide CHA-style call graph with the World
// helper in world.go and answer reachability questions no single-package
// analyzer can: "can the per-cycle hot path allocate?" (hotlint), "can a
// telemetry probe mutate simulator state?" (purelint), "do two call
// chains acquire the same locks in opposite orders?" (locklint).
//
// Call-graph construction is class-hierarchy analysis, deliberately
// unsound in the classic, documented ways:
//
//   - An interface method call edges to every module-local named type
//     implementing the interface (types.Implements over the package
//     closure), whether or not a value of that type can flow to the call
//     site. Over-approximate, so reachability checks stay conservative.
//   - A call through a function value edges to every module-local
//     function or closure whose reference escapes with the same
//     canonical signature, flow-insensitively. Function values built by
//     reflection, or received from outside the module, resolve to
//     nothing — code reachable only that way is invisible to the graph.
//   - Standard-library bodies are not summarized: calls into a small
//     table of known-allocating packages (fmt, errors, sort, ...) are
//     recorded as allocation sites, sync primitives and channel
//     operations are modeled specially, and everything else is assumed
//     effect-free.
//
// Positions cross package boundaries as module-relative "file:line"
// strings: token.Pos values are only meaningful against the FileSet that
// produced them, so each site keeps a live token.Pos in an unexported
// field that gob deliberately drops. A consumer analyzing the package
// that produced a summary sees real positions (the facts arrive live, in
// memory); a consumer in a downstream package reports remote sites at
// its own root declaration and names the remote position in the message.
package effects

import (
	"go/token"

	"bingo/internal/lint/analysis"
)

// EventKind discriminates the entries of a function's effect trace.
type EventKind uint8

// Event kinds. EvBranch and EvReturn give the trace just enough control
// structure for the lock interpreter to be path-sensitive inside one
// function: alternatives are explored separately, and a path that
// returns stops contributing to the held-lock state of the code after
// the branch (the singleflight pattern — unlock, receive, return inside
// an if — interprets cleanly).
const (
	EvCall    EventKind = iota + 1 // static call; Key = callee key
	EvDynCall                      // interface method call; Key = "pkgpath.Iface", Method, Sig set
	EvDynFunc                      // call through a function value; Sig set
	EvLock                         // mutex acquisition; Key = lock key
	EvUnlock                       // mutex release; Key = lock key
	EvChan                         // channel send/receive/range/blocking select; Key describes it
	EvBlock                        // known blocking call (time.Sleep, WaitGroup.Wait, Cond.Wait); Key names it
	EvBranch                       // alternatives in Alts, explored separately
	EvReturn                       // terminates the current path
	EvSpawn                        // go statement; Key/Sig as for EvCall/EvDynFunc, fresh goroutine
)

// Event is one entry of a function's ordered effect trace.
type Event struct {
	Kind EventKind
	// Key identifies the event's subject: a callee key for EvCall/EvSpawn,
	// a lock key for EvLock/EvUnlock, the interface key "pkgpath.Iface"
	// for EvDynCall, a short description for EvChan/EvBlock.
	Key string
	// Method is the called method's name, for EvDynCall.
	Method string
	// Sig is the receiverless canonical signature, for EvDynCall (target
	// matching sanity) and EvDynFunc/EvSpawn-of-a-value (flow-insensitive
	// resolution against escaping function references).
	Sig string
	// Pos is the module-relative "file:line" of the event.
	Pos string
	// Alts are the alternative continuations of an EvBranch.
	Alts [][]Event

	localPos token.Pos // live-only; gob drops it (see package doc)
}

// LocalPos returns the event's position in the producing pass's FileSet,
// or token.NoPos for a summary that crossed a package boundary.
func (e *Event) LocalPos() token.Pos { return e.localPos }

// AllocSite is one place a function may allocate on the heap.
type AllocSite struct {
	// What names the allocation per the taxonomy in summarize.go:
	// "&composite literal", "slice literal", "map literal", "make", "new",
	// "append growth", "map write", "interface boxing", "closure",
	// "string concatenation", "string conversion", "go statement", or
	// "call to <pkg>.<fn>" for the known-allocating stdlib table.
	What string
	// Pos is the module-relative "file:line" of the site.
	Pos string
	// Waived carries the reason of a //hot:alloc annotation covering the
	// site (same line or the line above), or the function-level waiver
	// from the declaration's doc comment; empty means not waived.
	Waived string

	localPos token.Pos
}

// LocalPos returns the site's live position, or token.NoPos remotely.
func (a *AllocSite) LocalPos() token.Pos { return a.localPos }

// WriteSite is one store to state that outlives the function: a
// package-level variable, or a field reached through a pointer, slice,
// or map. Writes to local value variables are not recorded.
type WriteSite struct {
	// Pkg is the import path of the package owning the written state —
	// the variable's package, or the declaring package of the named type
	// whose field is written. Ownership is type-based: purelint needs no
	// flow analysis to decide whether telemetry state or simulator state
	// was touched.
	Pkg string
	// Target is "pkgpath.Var" or "pkgpath.Type.Field" (or "pkgpath.Type"
	// for a whole-value store through a pointer).
	Target string
	// Pos is the module-relative "file:line" of the store.
	Pos string
	// Waived carries the reason of an //obs:write annotation covering
	// the site; empty means not waived.
	Waived string

	localPos token.Pos
}

// LocalPos returns the site's live position, or token.NoPos remotely.
func (w *WriteSite) LocalPos() token.Pos { return w.localPos }

// FuncRef records a function or closure whose reference escapes — it is
// assigned, passed, stored, or returned as a value — making it a
// candidate target for every call through a function value of the same
// canonical signature.
type FuncRef struct {
	Key string
	Sig string
}

// FuncEffects is the effect summary of one function, method, or function
// literal (literals get synthetic keys "parent$N").
type FuncEffects struct {
	// Key is the function's canonical key: "pkgpath.Func",
	// "pkgpath.Type.Method", "pkgpath.init#N", or "parentKey$N".
	Key string
	// Pkg is the declaring package's import path.
	Pkg string
	// Name is the bare declared name, for messages.
	Name string
	// Decl is the module-relative "file:line" of the declaration.
	Decl string
	// Sig is the receiverless canonical signature.
	Sig string
	// Test marks functions declared in _test.go files.
	Test bool
	// Tagged marks functions declared in files excluded from the default
	// (untagged) build — sanitizer hooks and friends. hotlint skips them:
	// they do not ship on the hot path.
	Tagged bool
	// HotRoot marks the shape-matched per-cycle entry points: non-test
	// methods named OnAccess (one parameter, one result), OnEviction (one
	// parameter, no results), or Tick (no results).
	HotRoot bool
	// HotPath carries the reason of a //hot:path annotation declaring
	// this function an additional hot root.
	HotPath string
	// AllocFree carries the reason of a function-level //hot:alloc
	// annotation waiving every allocation site in this body.
	AllocFree string

	Allocs []AllocSite
	Writes []WriteSite
	// Trace is the ordered effect trace of the body; Deferred holds the
	// effects of defer statements, hoisted to run at every exit.
	Trace    []Event
	Deferred []Event

	localDecl token.Pos
}

// LocalDecl returns the declaration's live position, or token.NoPos for
// a summary that crossed a package boundary.
func (fe *FuncEffects) LocalDecl() token.Pos { return fe.localDecl }

// PkgEffects is the package fact carrying every function summary and
// escaping function reference of one package.
type PkgEffects struct {
	Funcs   map[string]*FuncEffects
	Escapes []FuncRef
}

// AFact marks PkgEffects as a fact type.
func (*PkgEffects) AFact() {}

// Facts is the effect-summary producer: it emits no diagnostics, only
// one PkgEffects fact per package. The reachability analyzers (hotlint,
// purelint, locklint) list it in Requires and assemble the module-wide
// view with NewWorld.
var Facts = &analysis.Analyzer{
	Name:      "effectfacts",
	Doc:       "summarize every function's allocations, state writes, lock operations, and call edges as a cross-package fact",
	FactTypes: []analysis.Fact{new(PkgEffects)},
	Run:       runFacts,
}

func runFacts(pass *analysis.Pass) error {
	pass.ExportPackageFact(summarizePackage(pass))
	return nil
}
