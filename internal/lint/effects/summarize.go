package effects

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"bingo/internal/lint/analysis"
)

// allocPkgs is the known-allocating standard-library table: a call into
// one of these packages is recorded as an allocation site rather than a
// call edge (their bodies are not summarized). The table is coarse on
// purpose — a hot path has no business calling fmt even when the
// specific function happens not to allocate — and //hot:alloc waives
// the exceptions with a reason on record.
var allocPkgs = map[string]bool{
	"fmt": true, "errors": true, "strings": true, "strconv": true,
	"sort": true, "bytes": true, "log": true, "regexp": true,
}

// summarizePackage builds the PkgEffects fact for the package under
// analysis: one FuncEffects per declared function, method, and function
// literal, plus the escaping function references.
func summarizePackage(pass *analysis.Pass) *PkgEffects {
	s := &summarizer{
		pass:     pass,
		pe:       &PkgEffects{Funcs: map[string]*FuncEffects{}},
		hotWaive: map[string]map[int]string{},
		obsWaive: map[string]map[int]string{},
	}
	s.collectMarkers()
	for _, f := range pass.Files {
		tagged := !analysis.FileBuildable(f, nil)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			key, ok := FuncKey(fn)
			if !ok {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				s.initCount++
				key = fmt.Sprintf("%s.init#%d", pass.Pkg.Path(), s.initCount)
			}
			s.summarizeFunc(key, fn, fd, tagged)
		}
	}
	return s.pe
}

type summarizer struct {
	pass      *analysis.Pass
	pe        *PkgEffects
	hotWaive  map[string]map[int]string // file → line → //hot:alloc reason
	obsWaive  map[string]map[int]string // file → line → //obs:write reason
	initCount int
}

// collectMarkers indexes the //hot:alloc and //obs:write site waivers by
// file and line, so the walker can stamp Waived onto the sites they
// cover (the directive's own line, or the line directly above the site).
func (s *summarizer) collectMarkers() {
	for _, f := range s.pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m, ok := analysis.ParseMarker(c.Text)
				if !ok || m.Arg == "" {
					continue
				}
				var idx map[string]map[int]string
				switch {
				case m.Domain == "hot" && m.Verb == "alloc":
					idx = s.hotWaive
				case m.Domain == "obs" && m.Verb == "write":
					idx = s.obsWaive
				default:
					continue
				}
				pos := s.pass.Fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int]string{}
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = m.Arg
			}
		}
	}
}

func (s *summarizer) waiver(idx map[string]map[int]string, pos token.Pos) string {
	p := s.pass.Fset.Position(pos)
	lines := idx[p.Filename]
	if lines == nil {
		return ""
	}
	if r, ok := lines[p.Line]; ok {
		return r
	}
	return lines[p.Line-1]
}

func (s *summarizer) summarizeFunc(key string, fn *types.Func, fd *ast.FuncDecl, tagged bool) {
	sig := fn.Type().(*types.Signature)
	fe := &FuncEffects{
		Key:       key,
		Pkg:       s.pass.Pkg.Path(),
		Name:      fd.Name.Name,
		Decl:      relPos(s.pass, fd.Name.Pos()),
		Sig:       sigString(sig),
		Test:      s.pass.InTestFile(fd.Pos()),
		Tagged:    tagged,
		localDecl: fd.Name.Pos(),
	}
	fe.HotRoot = fd.Recv != nil && hotRootShape(fd.Name.Name, sig)
	obsBody := ""
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			m, ok := analysis.ParseMarker(c.Text)
			if !ok {
				continue
			}
			switch {
			case m.Domain == "hot" && m.Verb == "alloc":
				fe.AllocFree = m.Arg
			case m.Domain == "hot" && m.Verb == "path":
				fe.HotPath = m.Arg
			case m.Domain == "obs" && m.Verb == "write":
				// A doc-comment //obs:write waives every write in the body,
				// function literals included (checkpoint-restore functions
				// assign through closures).
				obsBody = m.Arg
			}
		}
	}
	w := &walker{s: s, fe: fe, results: sig.Results(), hotBody: fe.AllocFree, obsBody: obsBody}
	fe.Trace = w.stmts(fd.Body.List)
	s.pe.Funcs[key] = fe
}

// hotRootShape matches the per-cycle entry-point signatures: a
// prefetcher's OnAccess (one parameter, one result) and OnEviction (one
// parameter, no results), and a component's Tick (no results).
func hotRootShape(name string, sig *types.Signature) bool {
	switch name {
	case "OnAccess":
		return sig.Params().Len() == 1 && sig.Results().Len() == 1
	case "OnEviction":
		return sig.Params().Len() == 1 && sig.Results().Len() == 0
	case "Tick":
		return sig.Results().Len() == 0
	}
	return false
}

// walker builds one function's effect trace. Allocation and write sites
// are recorded flat on the summary (reachability consumers need no
// ordering); lock, channel, and call events keep source order and
// branch structure for the lock interpreter.
type walker struct {
	s       *summarizer
	fe      *FuncEffects
	results *types.Tuple
	lits    int
	// hotBody/obsBody carry the enclosing declaration's doc-comment
	// waivers; function literals inherit them, so a body-level waiver
	// covers the closures the body builds.
	hotBody string
	obsBody string
}

func (w *walker) pass() *analysis.Pass { return w.s.pass }

func (w *walker) alloc(pos token.Pos, what string) {
	waived := w.s.waiver(w.s.hotWaive, pos)
	if waived == "" {
		waived = w.hotBody
	}
	w.fe.Allocs = append(w.fe.Allocs, AllocSite{
		What:     what,
		Pos:      relPos(w.pass(), pos),
		Waived:   waived,
		localPos: pos,
	})
}

func (w *walker) write(lhs ast.Expr, pos token.Pos) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	pkg, target, mapWrite := writeTargetOf(w.pass(), lhs)
	if mapWrite {
		w.alloc(pos, "map write")
	}
	if target == "" {
		return
	}
	waived := w.s.waiver(w.s.obsWaive, pos)
	if waived == "" {
		waived = w.obsBody
	}
	w.fe.Writes = append(w.fe.Writes, WriteSite{
		Pkg:      pkg,
		Target:   target,
		Pos:      relPos(w.pass(), pos),
		Waived:   waived,
		localPos: pos,
	})
}

func (w *walker) event(kind EventKind, pos token.Pos, key string) Event {
	return Event{Kind: kind, Key: key, Pos: relPos(w.pass(), pos), localPos: pos}
}

// lit summarizes a function literal under a synthetic key derived from
// the enclosing summary, and returns that key.
func (w *walker) lit(fl *ast.FuncLit) string {
	w.lits++
	key := fmt.Sprintf("%s$%d", w.fe.Key, w.lits)
	sig, _ := w.pass().TypeOf(fl).(*types.Signature)
	fe := &FuncEffects{
		Key:       key,
		Pkg:       w.fe.Pkg,
		Name:      w.fe.Name + " (func literal)",
		Decl:      relPos(w.pass(), fl.Pos()),
		Test:      w.fe.Test,
		Tagged:    w.fe.Tagged,
		localDecl: fl.Pos(),
	}
	if sig != nil {
		fe.Sig = sigString(sig)
	}
	inner := &walker{s: w.s, fe: fe, hotBody: w.hotBody, obsBody: w.obsBody}
	if sig != nil {
		inner.results = sig.Results()
	}
	fe.Trace = inner.stmts(fl.Body.List)
	w.s.pe.Funcs[key] = fe
	return key
}

func (w *walker) escape(key, sig string) {
	w.s.pe.Escapes = append(w.s.pe.Escapes, FuncRef{Key: key, Sig: sig})
}

// maybeEscape records an identifier used as a value (not as a call's
// function operand) that denotes a module-local function or method.
func (w *walker) maybeEscape(id *ast.Ident) {
	fn, ok := w.pass().Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !moduleLocal(fn.Pkg().Path()) {
		return
	}
	key, ok := FuncKey(fn)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	w.escape(key, sigString(sig))
}

// ---- statements ----

func (w *walker) stmts(list []ast.Stmt) []Event {
	var out []Event
	for _, st := range list {
		out = append(out, w.stmt(st)...)
	}
	return out
}

func (w *walker) stmt(st ast.Stmt) []Event {
	switch st := st.(type) {
	case nil:
		return nil
	case *ast.ExprStmt:
		return w.expr(st.X)
	case *ast.AssignStmt:
		return w.assign(st)
	case *ast.IncDecStmt:
		evs := w.expr(st.X)
		w.write(st.X, st.Pos())
		return evs
	case *ast.SendStmt:
		evs := append(w.expr(st.Chan), w.expr(st.Value)...)
		return append(evs, w.event(EvChan, st.Pos(), "send"))
	case *ast.GoStmt:
		return w.goStmt(st)
	case *ast.DeferStmt:
		return w.deferStmt(st)
	case *ast.ReturnStmt:
		var evs []Event
		for i, r := range st.Results {
			evs = append(evs, w.expr(r)...)
			if w.results != nil && len(st.Results) == w.results.Len() {
				w.boxCheck(w.results.At(i).Type(), r)
			}
		}
		return append(evs, w.event(EvReturn, st.Pos(), ""))
	case *ast.BlockStmt:
		return w.stmts(st.List)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt)
	case *ast.IfStmt:
		evs := w.stmt(st.Init)
		evs = append(evs, w.expr(st.Cond)...)
		alts := [][]Event{w.stmts(st.Body.List), w.stmt(st.Else)}
		return append(evs, Event{Kind: EvBranch, Alts: alts})
	case *ast.ForStmt:
		evs := w.stmt(st.Init)
		evs = append(evs, w.expr(st.Cond)...)
		body := append(w.stmts(st.Body.List), w.stmt(st.Post)...)
		return append(evs, Event{Kind: EvBranch, Alts: [][]Event{body, nil}})
	case *ast.RangeStmt:
		evs := w.expr(st.X)
		if _, ok := typeUnderlying(w.pass(), st.X).(*types.Chan); ok {
			evs = append(evs, w.event(EvChan, st.Pos(), "range over channel"))
		}
		if st.Tok == token.ASSIGN {
			if st.Key != nil {
				w.write(st.Key, st.Key.Pos())
			}
			if st.Value != nil {
				w.write(st.Value, st.Value.Pos())
			}
		}
		return append(evs, Event{Kind: EvBranch, Alts: [][]Event{w.stmts(st.Body.List), nil}})
	case *ast.SwitchStmt:
		evs := w.stmt(st.Init)
		evs = append(evs, w.expr(st.Tag)...)
		return append(evs, w.clauses(st.Body))
	case *ast.TypeSwitchStmt:
		evs := w.stmt(st.Init)
		evs = append(evs, w.stmt(st.Assign)...)
		return append(evs, w.clauses(st.Body))
	case *ast.SelectStmt:
		return w.selectStmt(st)
	case *ast.DeclStmt:
		return w.declStmt(st)
	}
	return nil
}

// clauses folds a switch body's case clauses into one branch event; a
// missing default contributes an empty fall-through alternative.
func (w *walker) clauses(body *ast.BlockStmt) Event {
	var alts [][]Event
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		var arm []Event
		for _, e := range cc.List {
			arm = append(arm, w.expr(e)...)
		}
		if cc.List == nil {
			hasDefault = true
		}
		alts = append(alts, append(arm, w.stmts(cc.Body)...))
	}
	if !hasDefault {
		alts = append(alts, nil)
	}
	return Event{Kind: EvBranch, Alts: alts}
}

func (w *walker) selectStmt(st *ast.SelectStmt) []Event {
	hasDefault := false
	for _, cl := range st.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	var alts [][]Event
	for _, cl := range st.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		arm := w.stmt(cc.Comm)
		if hasDefault {
			// A select with a default never blocks: drop the arm's own
			// channel event but keep everything it computed.
			kept := arm[:0]
			for _, ev := range arm {
				if ev.Kind != EvChan {
					kept = append(kept, ev)
				}
			}
			arm = kept
		}
		alts = append(alts, append(arm, w.stmts(cc.Body)...))
	}
	return []Event{{Kind: EvBranch, Alts: alts}}
}

func (w *walker) declStmt(st *ast.DeclStmt) []Event {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return nil
	}
	var evs []Event
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		var dst types.Type
		if vs.Type != nil {
			dst = w.pass().TypeOf(vs.Type)
		}
		for _, v := range vs.Values {
			evs = append(evs, w.expr(v)...)
			if dst != nil {
				w.boxCheck(dst, v)
			}
		}
	}
	return evs
}

func (w *walker) assign(st *ast.AssignStmt) []Event {
	var evs []Event
	for _, r := range st.Rhs {
		evs = append(evs, w.expr(r)...)
	}
	for i, l := range st.Lhs {
		if st.Tok == token.DEFINE {
			if _, isIdent := ast.Unparen(l).(*ast.Ident); isIdent {
				continue // fresh local: no store to pre-existing state
			}
		}
		evs = append(evs, w.expr(l)...)
		w.write(l, st.Pos())
		if st.Tok == token.ASSIGN && len(st.Lhs) == len(st.Rhs) {
			if dst := w.pass().TypeOf(l); dst != nil {
				w.boxCheck(dst, st.Rhs[i])
			}
		}
	}
	return evs
}

func (w *walker) goStmt(st *ast.GoStmt) []Event {
	w.alloc(st.Pos(), "go statement")
	evs, own := w.callParts(st.Call)
	if own >= 0 {
		// Recast the call's own event as a spawn: same target resolution,
		// but the interpreter starts the goroutine with an empty held set.
		ev := evs[own]
		ev.Kind = EvSpawn
		evs = append(evs[:own:own], ev)
	}
	return evs
}

func (w *walker) deferStmt(st *ast.DeferStmt) []Event {
	evs, own := w.callParts(st.Call)
	if own < 0 {
		return evs
	}
	w.fe.Deferred = append(w.fe.Deferred, evs[own])
	return evs[:own:own]
}

// ---- expressions ----

func (w *walker) expr(e ast.Expr) []Event {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.ParenExpr:
		return w.expr(e.X)
	case *ast.CallExpr:
		evs, _ := w.callParts(e)
		return evs
	case *ast.FuncLit:
		key := w.lit(e)
		if sig, ok := w.pass().TypeOf(e).(*types.Signature); ok {
			w.escape(key, sigString(sig))
		}
		w.alloc(e.Pos(), "closure")
		return nil
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return append(w.expr(e.X), w.event(EvChan, e.Pos(), "receive"))
		}
		if e.Op == token.AND {
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				w.alloc(e.Pos(), "&composite literal")
				return w.compositeElems(cl)
			}
		}
		return w.expr(e.X)
	case *ast.CompositeLit:
		switch typeUnderlying(w.pass(), e).(type) {
		case *types.Slice:
			w.alloc(e.Pos(), "slice literal")
		case *types.Map:
			w.alloc(e.Pos(), "map literal")
		}
		return w.compositeElems(e)
	case *ast.BinaryExpr:
		evs := append(w.expr(e.X), w.expr(e.Y)...)
		if e.Op == token.ADD && !isConstant(w.pass(), e) {
			if b, ok := typeUnderlying(w.pass(), e).(*types.Basic); ok && b.Info()&types.IsString != 0 {
				w.alloc(e.Pos(), "string concatenation")
			}
		}
		return evs
	case *ast.Ident:
		w.maybeEscape(e)
		return nil
	case *ast.SelectorExpr:
		evs := w.expr(e.X)
		w.maybeEscape(e.Sel)
		return evs
	case *ast.IndexExpr:
		if tv, ok := w.pass().Info.Types[e]; ok && tv.IsType() {
			return nil // generic type instantiation
		}
		return append(w.expr(e.X), w.expr(e.Index)...)
	case *ast.IndexListExpr:
		evs := w.expr(e.X)
		for _, idx := range e.Indices {
			evs = append(evs, w.expr(idx)...)
		}
		return evs
	case *ast.SliceExpr:
		evs := w.expr(e.X)
		for _, x := range []ast.Expr{e.Low, e.High, e.Max} {
			evs = append(evs, w.expr(x)...)
		}
		return evs
	case *ast.StarExpr:
		return w.expr(e.X)
	case *ast.TypeAssertExpr:
		return w.expr(e.X)
	case *ast.KeyValueExpr:
		return append(w.expr(e.Key), w.expr(e.Value)...)
	}
	return nil
}

func (w *walker) compositeElems(cl *ast.CompositeLit) []Event {
	var evs []Event
	for _, elt := range cl.Elts {
		evs = append(evs, w.expr(elt)...)
	}
	return evs
}

// boxCheck records an interface-boxing allocation when src, a concrete
// non-pointer-shaped value, converts to the interface type dst.
// Constants are skipped: the noise from literal arguments (error codes,
// format verbs) would drown the signal, and the compiler interns the
// common ones anyway.
func (w *walker) boxCheck(dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := w.pass().Info.Types[src]
	if !ok || tv.Value != nil || tv.Type == nil {
		return
	}
	st := tv.Type
	if types.IsInterface(st) {
		return
	}
	if b, ok := st.(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return // untyped nil
	}
	switch st.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits an interface word without copying
	case *types.Basic:
		if st.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return
		}
	}
	w.alloc(src.Pos(), "interface boxing")
}

// callParts walks a call expression and returns its events; own is the
// index of the call's own event (the one a defer or go statement hoists
// or recasts), or -1 for conversions, builtins, and calls modeled as
// something other than a call (allocation sites, lock events keep their
// own index too).
func (w *walker) callParts(call *ast.CallExpr) (evs []Event, own int) {
	own = -1
	pass := w.pass()

	// Conversion: T(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			evs = append(evs, w.expr(a)...)
		}
		if len(call.Args) == 1 && !isConstant(pass, call) {
			w.convAlloc(call)
		}
		return evs, -1
	}

	fun := ast.Unparen(call.Fun)

	// Builtin: make, new, append, ...
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			for _, a := range call.Args {
				evs = append(evs, w.expr(a)...)
			}
			switch b.Name() {
			case "make":
				w.alloc(call.Pos(), "make")
			case "new":
				w.alloc(call.Pos(), "new")
			case "append":
				w.alloc(call.Pos(), "append growth")
			}
			return evs, -1
		}
	}

	fn := pass.CalleeFunc(call)
	if fn == nil {
		// Call through a function value.
		if lit, ok := fun.(*ast.FuncLit); ok {
			key := w.lit(lit) // immediately-invoked literal: a plain call edge
			evs = w.callArgs(call, nil)
			evs = append(evs, w.event(EvCall, call.Pos(), key))
			return evs, len(evs) - 1
		}
		evs = w.expr(call.Fun)
		evs = append(evs, w.callArgs(call, nil)...)
		if sig, ok := pass.TypeOf(call.Fun).(*types.Signature); ok {
			ev := w.event(EvDynFunc, call.Pos(), "")
			ev.Sig = sigString(sig)
			evs = append(evs, ev)
			return evs, len(evs) - 1
		}
		return evs, -1
	}

	sig := fn.Type().(*types.Signature)

	// Receiver expression of a method call contributes its own events.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			evs = w.expr(sel.X)
		}
	}
	evs = append(evs, w.callArgs(call, sig)...)

	// Interface dispatch → CHA-resolved dynamic call.
	if recv := sig.Recv(); recv != nil {
		if _, ok := recv.Type().Underlying().(*types.Interface); ok {
			named := namedOf(recv.Type())
			if named == nil || named.Obj().Pkg() == nil {
				return evs, -1 // anonymous or universe interface: unresolvable
			}
			ev := w.event(EvDynCall, call.Pos(), named.Obj().Pkg().Path()+"."+named.Obj().Name())
			ev.Method = fn.Name()
			ev.Sig = sigString(sig)
			evs = append(evs, ev)
			return evs, len(evs) - 1
		}
	}

	pkg := fn.Pkg()
	if pkg == nil {
		return evs, -1
	}

	switch pkg.Path() {
	case "sync":
		if ev, ok := w.syncEvent(call, fn); ok {
			evs = append(evs, ev)
			return evs, len(evs) - 1
		}
		return evs, -1
	case "time":
		if fn.Name() == "Sleep" && sig.Recv() == nil {
			evs = append(evs, w.event(EvBlock, call.Pos(), "time.Sleep"))
			return evs, len(evs) - 1
		}
		return evs, -1
	}

	if moduleLocal(pkg.Path()) {
		key, ok := FuncKey(fn)
		if !ok {
			return evs, -1
		}
		evs = append(evs, w.event(EvCall, call.Pos(), key))
		return evs, len(evs) - 1
	}

	if allocPkgs[pkg.Path()] {
		w.alloc(call.Pos(), "call to "+pkg.Path()+"."+fn.Name())
	}
	return evs, -1
}

// syncEvent models the sync package's primitives: mutex operations
// become lock/unlock events keyed by the mutex's owner, WaitGroup.Wait
// and Cond.Wait become blocking events.
func (w *walker) syncEvent(call *ast.CallExpr, fn *types.Func) (Event, bool) {
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return Event{}, false // sync.OnceFunc and friends: no event model
	}
	named := namedOf(recv.Type())
	if named == nil {
		return Event{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return Event{}, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		var kind EventKind
		switch fn.Name() {
		case "Lock", "RLock":
			kind = EvLock
		case "Unlock", "RUnlock":
			kind = EvUnlock
		default:
			return Event{}, false
		}
		key := lockKeyOf(w.pass(), sel.X)
		if key == "" {
			return Event{}, false // unnameable lock: out of the order graph
		}
		return w.event(kind, call.Pos(), key), true
	case "WaitGroup":
		if fn.Name() == "Wait" {
			return w.event(EvBlock, call.Pos(), "sync.WaitGroup.Wait"), true
		}
	case "Cond":
		if fn.Name() == "Wait" {
			return w.event(EvBlock, call.Pos(), "sync.Cond.Wait"), true
		}
	}
	return Event{}, false
}

// callArgs walks the arguments and records boxing against the callee's
// parameter types when the signature is known.
func (w *walker) callArgs(call *ast.CallExpr, sig *types.Signature) []Event {
	var evs []Event
	params := 0
	if sig != nil {
		params = sig.Params().Len()
	}
	for i, a := range call.Args {
		evs = append(evs, w.expr(a)...)
		if sig == nil || call.Ellipsis.IsValid() {
			continue
		}
		var dst types.Type
		switch {
		case sig.Variadic() && i >= params-1:
			if sl, ok := sig.Params().At(params - 1).Type().(*types.Slice); ok {
				dst = sl.Elem()
			}
		case i < params:
			dst = sig.Params().At(i).Type()
		}
		w.boxCheck(dst, a)
	}
	return evs
}

// convAlloc records the allocating conversions: string ↔ []byte/[]rune.
func (w *walker) convAlloc(call *ast.CallExpr) {
	pass := w.pass()
	dst := typeUnderlying(pass, call)
	src := typeUnderlying(pass, call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if isStringType(dst) && isByteOrRuneSlice(src) {
		w.alloc(call.Pos(), "string conversion")
	}
	if isByteOrRuneSlice(dst) && isStringType(src) {
		w.alloc(call.Pos(), "string conversion")
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func typeUnderlying(pass *analysis.Pass, e ast.Expr) types.Type {
	t := pass.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
