// Package unitlint enforces address-unit safety: the block and page
// geometry of the simulated machine lives in internal/mem (BlockShift,
// BlockSize, PageShift, RegionConfig, ...), and no other package may
// re-derive it with magic constants. A raw `addr >> 6` is a latent bug
// twice over — it silently disagrees with mem if the geometry ever
// changes, and it strips the units that make address math reviewable.
//
// The analyzer flags, outside bingo/internal/mem, shift / mask / modulus
// expressions whose constant operand is one of the block- or page-width
// magic numbers (shift counts 6 and 12, masks 63 and 4095, moduli 64 and
// 4096) when the value being operated on is address-like: its type is
// mem.Addr, mem.PC, or uint64. Expressions that spell the constant via the
// mem package (addr >> mem.BlockShift, a &^ (mem.BlockSize - 1)) are
// exempt — naming the unit is exactly the contract — but the preferred fix
// is the typed helper (Addr.BlockNumber, Addr.PageNumber,
// RegionConfig.BlockIndex, ...). Bit-vector math on small integer indices
// (footprint words, tree-PLRU nodes) is untouched: the operand type filter
// keeps it out of scope.
package unitlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"bingo/internal/lint/analysis"
)

// memPath is the package that owns address geometry.
const memPath = "bingo/internal/mem"

// Analyzer flags raw block/page-geometry constants outside internal/mem.
var Analyzer = &analysis.Analyzer{
	Name: "unitlint",
	Doc: "forbid raw shifts/masks by block- and page-width constants (>>6, >>12, &63, " +
		"&4095, %64, %4096) on address-typed values outside bingo/internal/mem",
	Run: run,
}

// magic maps each operator to the constant operand values that encode
// block (64 B) or page (4 KB) geometry.
var magic = map[token.Token]map[int64]string{
	token.SHR:     {6: "block shift", 12: "page shift"},
	token.SHL:     {6: "block shift", 12: "page shift"},
	token.AND:     {63: "block-offset mask", 4095: "page-offset mask"},
	token.AND_NOT: {63: "block-align mask", 4095: "page-align mask"},
	token.REM:     {64: "block modulus", 4096: "page modulus"},
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == memPath {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue // tests build raw addresses to exercise the helpers
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			check(pass, be)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, be *ast.BinaryExpr) {
	vals, ok := magic[be.Op]
	if !ok {
		return
	}
	constSide, varSide := be.Y, be.X
	v, isConst := pass.ConstInt(constSide)
	if !isConst && (be.Op == token.AND || be.Op == token.AND_NOT) {
		// Masks commute; accept the constant on the left too.
		constSide, varSide = be.X, be.Y
		v, isConst = pass.ConstInt(constSide)
	}
	what, suspicious := vals[v]
	if !isConst || !suspicious {
		return
	}
	if pass.RefersToPackage(constSide, memPath) {
		return // unit spelled via mem constants: contract honored
	}
	if !addressLike(pass, varSide) {
		return // bit-vector / index math, not address units
	}
	pass.Reportf(be.OpPos, "raw %s (%s %d) on address-typed value outside %s; use the typed mem helper (Addr.BlockNumber, Addr.PageNumber, RegionConfig.BlockIndex, ...)",
		what, be.Op, v, memPath)
}

// addressLike reports whether e (or a subexpression) carries address
// units: type mem.Addr / mem.PC, or plain uint64 — the representation
// every address in the simulator is stored in. Signed and small integer
// types are deliberately out of scope so footprint-bit and way-index math
// stays legal.
func addressLike(pass *analysis.Pass, e ast.Expr) bool {
	like := false
	ast.Inspect(e, func(n ast.Node) bool {
		ex, ok := n.(ast.Expr)
		if !ok || like {
			return !like
		}
		t := pass.TypeOf(ex)
		if t == nil {
			return true
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == memPath &&
				(obj.Name() == "Addr" || obj.Name() == "PC") {
				like = true
				return false
			}
		}
		if basic, ok := t.Underlying().(*types.Basic); ok {
			if basic.Kind() == types.Uint64 || basic.Kind() == types.Uintptr {
				like = true
				return false
			}
		}
		return true
	})
	return like
}
