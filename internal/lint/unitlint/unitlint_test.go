package unitlint_test

import (
	"path/filepath"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/unitlint"
)

func TestUnitlint(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "unitlint")
	diags := analysistest.Run(t, root, dir, "bingo/internal/unitfixture", unitlint.Analyzer)
	if len(diags) == 0 {
		t.Fatal("fixture seeded violations but unitlint reported nothing")
	}
}

// TestMemIsExempt loads a geometry fixture under internal/mem's own
// import path: the package that owns the geometry may spell it raw. (A
// dedicated fixture without the mem import is used, since a package
// cannot import itself.)
func TestMemIsExempt(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "unitlintmem")
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/internal/mem", dir)
	pkg, err := loader.Load("bingo/internal/mem")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{unitlint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("unitlint reported %d diagnostics inside internal/mem", len(diags))
	}
}
