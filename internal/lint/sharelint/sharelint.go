// Package sharelint is the concurrency-readiness analyzer for ROADMAP
// item 2 (per-core frontends on goroutines). Today every System advances
// on one goroutine, so nothing inside the frontend packages needs a lock
// — which is exactly when undocumented sharing accumulates. sharelint
// makes the sharing story explicit before the goroutines arrive, with
// three rules over the frontend packages (cache, core, cpu, dram,
// prefetch, prefetchers, sched, system, telemetry, trace, vm):
//
//  1. Package-level vars are shared by every core by definition. Each one
//     must hold a sync primitive by value, or carry a //conc: contract
//     annotation (see below).
//
//  2. Cross-component reference fields — struct fields whose type is a
//     pointer, interface, function, map, channel, or a slice of those —
//     are the edges along which one core's frontend can reach state
//     another core also reaches (an L1's lower pointer is the shared LLC;
//     a core's xlat pointer is the shared translator). Each such field
//     must point at a type that holds a sync primitive, or carry a
//     //conc: annotation naming its contract. Two structural outs apply:
//     a pointer to a lock-bearing type is a synchronized target, and a
//     struct that carries its own sync primitive by value is assumed to
//     guard its reference fields with it.
//
//  3. Lock-bearing values must not be passed, returned, or received by
//     value: the copy duplicates the lock, the classic lost-wakeup /
//     deadlock footgun. Unlike the other rules this one applies to every
//     package, and it is cross-package: whether a type holds a lock is
//     resolved through the LockFact facts the sharefacts analyzer
//     exports (this supersedes contractlint's old local copy check).
//
// The annotation vocabulary, shared with the rest of the suite:
//
//	//conc:immutable <reason>        never written after construction/init
//	//conc:core-local <reason>       only the owning core's goroutine touches it
//	//conc:barrier-guarded <reason>  accessed only between core phases, at the
//	                                 lockstep barrier (or under the engine's
//	                                 single-threaded sections)
//
// A reason is mandatory; an annotation without one is itself a finding.
// Test files are exempt from rules 1 and 2 (tests are single-goroutine
// by construction) but not from rule 3 (a copied lock is broken anywhere).
package sharelint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bingo/internal/lint/analysis"
)

// Analyzer enforces the concurrency-readiness rules described in the
// package documentation.
var Analyzer = &analysis.Analyzer{
	Name: "sharelint",
	Doc: "require //conc: contract annotations (or sync primitives) on shared state in the per-core " +
		"frontend packages, and forbid by-value copies of lock-bearing types anywhere",
	Requires: []*analysis.Analyzer{Facts},
	Run:      run,
}

// frontendWords identify the packages ROADMAP item 2 will put on per-core
// goroutines (plus the observers they feed). Matching by path segment
// keeps analysistest fixtures, loaded under synthetic bingo/internal/...
// paths, in scope.
var frontendWords = []string{
	"cache", "core", "cpu", "dram", "prefetch",
	"sched", "system", "telemetry", "trace", "vm",
}

func inFrontend(pkgPath string) bool {
	rest, ok := strings.CutPrefix(pkgPath, "bingo/internal/")
	if !ok || strings.HasPrefix(rest, "lint") {
		return false
	}
	for _, w := range frontendWords {
		if strings.Contains(rest, w) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	frontend := inFrontend(pass.Pkg.Path())
	for _, f := range pass.Files {
		inTest := pass.InTestFile(f.Package)
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				if frontend && !inTest {
					checkGenDecl(pass, decl)
				}
			case *ast.FuncDecl:
				checkFuncDecl(pass, decl)
			}
		}
	}
	return nil
}

// checkGenDecl applies rule 1 to var declarations and rule 2 to struct
// type declarations.
func checkGenDecl(pass *analysis.Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		switch spec := spec.(type) {
		case *ast.ValueSpec:
			if decl.Tok != token.VAR {
				continue // consts are immutable by construction
			}
			for _, name := range spec.Names {
				if name.Name == "_" {
					continue // interface-satisfaction assertions hold no state
				}
				obj, ok := pass.ObjectOf(name).(*types.Var)
				if !ok {
					continue
				}
				if IsSynchronized(pass, obj.Type()) {
					continue
				}
				if checkConcAnnotation(pass, name.Pos(), "var "+name.Name, spec.Doc, spec.Comment, decl.Doc) {
					continue
				}
				pass.Reportf(name.Pos(),
					"package-level var %s is shared across every core once frontends run as goroutines; guard it with a sync primitive or annotate //conc:immutable|core-local|barrier-guarded <reason>",
					name.Name)
			}
		case *ast.TypeSpec:
			st, ok := spec.Type.(*ast.StructType)
			if !ok {
				continue
			}
			// A struct that carries its own sync primitive by value (the
			// Registry pattern: mu guarding the maps next to it) is assumed
			// to guard its reference fields with it.
			if obj, ok := pass.ObjectOf(spec.Name).(*types.TypeName); ok && IsSynchronized(pass, obj.Type()) {
				continue
			}
			checkStructFields(pass, spec.Name.Name, st)
		}
	}
}

// checkStructFields applies rule 2: cross-component reference fields need
// a contract.
func checkStructFields(pass *analysis.Pass, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !isSharingEdge(t) || IsSynchronized(pass, t) {
			continue
		}
		// A pointer to a lock-bearing type IS a synchronized target — the
		// "synchronize the target" escape the message offers.
		if ptr, ok := t.Underlying().(*types.Pointer); ok && IsSynchronized(pass, ptr.Elem()) {
			continue
		}
		names := fieldNames(field)
		label := "field " + strings.Join(names, ", ") + " of " + typeName
		if checkConcAnnotation(pass, field.Pos(), label, field.Doc, field.Comment) {
			continue
		}
		pass.Reportf(field.Pos(),
			"%s is a cross-component reference that per-core goroutines may share; annotate //conc:core-local|barrier-guarded|immutable <reason> or synchronize the target",
			label)
	}
}

func fieldNames(field *ast.Field) []string {
	if len(field.Names) == 0 {
		return []string{types.ExprString(field.Type)} // embedded
	}
	names := make([]string, len(field.Names))
	for i, n := range field.Names {
		names[i] = n.Name
	}
	return names
}

// isSharingEdge reports whether t is a reference shape along which two
// goroutines can reach the same state: pointers, interfaces (except
// error), functions, maps, channels, and slices of those. Slices of plain
// values are owned buffers and stay exempt.
func isSharingEdge(t types.Type) bool {
	if _, ok := t.(*types.TypeParam); ok {
		return false // the instantiation decides; the generic can't
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Map, *types.Chan:
		return true
	case *types.Interface:
		return !isErrorType(t)
	case *types.Slice:
		return isSharingEdge(u.Elem())
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkFuncDecl applies rule 3 to a function's receiver, parameters, and
// results.
func checkFuncDecl(pass *analysis.Pass, decl *ast.FuncDecl) {
	if decl.Recv != nil {
		for _, field := range decl.Recv.List {
			checkByValue(pass, field, "receiver of method "+decl.Name.Name)
		}
	}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			checkByValue(pass, field, "parameter of "+decl.Name.Name)
		}
	}
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			checkByValue(pass, field, "result of "+decl.Name.Name)
		}
	}
}

func checkByValue(pass *analysis.Pass, field *ast.Field, where string) {
	t := pass.TypeOf(field.Type)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if HoldsLock(pass, t) {
		pass.Reportf(field.Type.Pos(), "%s copies %s by value, duplicating the lock it holds; use a pointer",
			where, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

// concContracts is the annotation vocabulary of rules 1 and 2.
var concContracts = map[string]bool{
	"immutable":       true,
	"core-local":      true,
	"barrier-guarded": true,
}

// checkConcAnnotation reports whether the declaration carries a //conc:
// annotation (reporting malformed ones as it goes). A well-formed
// annotation with a reason satisfies the rule; one without a reason or
// with an unknown contract word is reported and still counts as present,
// so the caller does not double-report.
func checkConcAnnotation(pass *analysis.Pass, pos token.Pos, label string, groups ...*ast.CommentGroup) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			m, ok := analysis.ParseMarker(c.Text)
			if !ok || m.Domain != "conc" {
				continue
			}
			if !concContracts[m.Verb] {
				pass.Reportf(pos, "unknown //conc: contract %q on %s (want immutable, core-local, or barrier-guarded)", m.Verb, label)
				return true
			}
			if m.Arg == "" {
				pass.Reportf(pos, "//conc:%s on %s needs a reason", m.Verb, label)
			}
			return true
		}
	}
	return false
}
