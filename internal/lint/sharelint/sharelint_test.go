package sharelint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/sharelint"
)

func fixture(t *testing.T) (root, dir string) {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root, filepath.Join(root, "internal", "lint", "testdata", "src", "sharelint")
}

// TestSharelint runs the fixture with its dep subpackage, so the
// mutex-bearing dep.Locked reaches the fixture through a serialized
// LockFact — the cross-package path of rule 3.
func TestSharelint(t *testing.T) {
	root, dir := fixture(t)
	diags := analysistest.RunConfig(t, root, dir, "bingo/internal/cachefixture", sharelint.Analyzer, analysistest.Config{
		Deps: map[string]string{"bingo/internal/cachefixture/dep": filepath.Join(dir, "dep")},
	})
	if len(diags) == 0 {
		t.Fatal("fixture seeded violations but sharelint reported nothing")
	}
}

// TestScopeIsFrontendOnly loads the same fixture under a non-frontend
// import path: rules 1 and 2 must go quiet, while rule 3 (by-value lock
// copies) applies everywhere and must keep firing.
func TestScopeIsFrontendOnly(t *testing.T) {
	root, dir := fixture(t)
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/internal/elsewherefixture", dir)
	loader.Override("bingo/internal/cachefixture/dep", filepath.Join(dir, "dep"))
	runner, err := analysis.NewRunner(loader, []*analysis.Analyzer{sharelint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runner.Package("bingo/internal/elsewherefixture")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "by value") {
			t.Errorf("non-frontend package got a rule 1/2 diagnostic: %s", d.Message)
		}
	}
	if len(diags) == 0 {
		t.Error("rule 3 (by-value lock copy) must fire outside the frontend scope too")
	}
}
