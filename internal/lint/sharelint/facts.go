package sharelint

import (
	"go/types"

	"bingo/internal/lint/analysis"
)

// LockFact marks a package-scope named type whose value transitively
// contains a synchronization primitive (sync.Mutex and friends, or any
// sync/atomic type) by value. It is the cross-package currency of the
// copy check: a type that embeds a harness mutex three packages away is
// just as dangerous to copy as sync.Mutex itself, and only a fact can
// carry that knowledge across the package boundary.
type LockFact struct{}

// AFact marks LockFact as a fact type.
func (*LockFact) AFact() {}

// Facts is the fact-producing half of sharelint: it emits no diagnostics,
// only LockFact annotations on lock-bearing package-scope named types.
// Analyzers that need the cross-package answer (sharelint itself,
// contractlint's documented-contract rule) list it in Requires and query
// with HoldsLock.
var Facts = &analysis.Analyzer{
	Name:      "sharefacts",
	Doc:       "export a LockFact for every package-scope named type that transitively holds a sync primitive by value",
	FactTypes: []analysis.Fact{new(LockFact)},
	Run:       runFacts,
}

func runFacts(pass *analysis.Pass) error {
	lc := newLockComputer(pass)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if lc.holds(tn.Type()) {
			pass.ExportObjectFact(tn, &LockFact{})
		}
	}
	return nil
}

// HoldsLock reports whether t transitively contains a sync primitive by
// value. Named types from other packages are resolved through LockFact
// (exported by the Facts analyzer, so callers must require it); the
// structural walk is the fallback for types no analyzed package exported
// a fact for (standard library structs beyond sync itself).
func HoldsLock(pass *analysis.Pass, t types.Type) bool {
	return newLockComputer(pass).holds(t)
}

// syncNoCopyTypes are the sync types that must never be copied after
// first use, per their package documentation.
var syncNoCopyTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Map": true, "Cond": true, "Pool": true,
}

// lockComputer memoizes the transitive lock-bearing decision for one
// pass; the same named types recur across declarations.
type lockComputer struct {
	pass *analysis.Pass
	memo map[types.Type]bool
}

func newLockComputer(pass *analysis.Pass) *lockComputer {
	return &lockComputer{pass: pass, memo: map[types.Type]bool{}}
}

func (lc *lockComputer) holds(t types.Type) bool {
	if v, ok := lc.memo[t]; ok {
		return v
	}
	lc.memo[t] = false // break recursive type cycles
	v := lc.compute(t)
	lc.memo[t] = v
	return v
}

func (lc *lockComputer) compute(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil {
			return false // error and other universe types
		}
		switch obj.Pkg().Path() {
		case "sync":
			return syncNoCopyTypes[obj.Name()]
		case "sync/atomic":
			return true // every atomic.T pins its address after first use
		}
		// Another analyzed package's verdict arrives as a serialized fact;
		// for everything else (the standard library beyond sync) fall back
		// to walking the structure, which the shared type-checked world
		// makes possible.
		if obj.Pkg() != lc.pass.Pkg {
			var lf LockFact
			if lc.pass.ImportObjectFact(obj, &lf) {
				return true
			}
		}
		return lc.holds(t.Underlying())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lc.holds(t.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return lc.holds(t.Elem())
	}
	return false
}

// IsSynchronized reports whether t is, or by value contains, a sync
// primitive — the "already guarded" exemption of the shared-state rules.
// It is HoldsLock today; the alias keeps call sites saying what they mean.
func IsSynchronized(pass *analysis.Pass, t types.Type) bool {
	return HoldsLock(pass, t)
}
