package lint_test

import (
	"bytes"
	"testing"

	"bingo/internal/lint"
	"bingo/internal/lint/analysis"
)

// TestRepoIsCleanUnderSimlint is the smoke test the CI gate relies on:
// `cmd/simlint ./...` must exit 0 on the repository itself. It runs the
// same code path as the command (lint.Check over ./... with the full
// suite, at the command's default configuration: test units analyzed,
// the -tags=san world included, stale suppressions reported). The scope
// is the whole module — internal/, cmd/, examples/, and the root
// package's bench/integration tests.
func TestRepoIsCleanUnderSimlint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module twice; skipped in -short")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := lint.Check(&buf, root, []string{"./..."}, lint.Options{
		Tests:              true,
		San:                true,
		UnusedSuppressions: true,
	})
	if err != nil {
		t.Fatalf("simlint failed to run: %v", err)
	}
	if n != 0 {
		t.Errorf("simlint found %d finding(s) on the repo; fix them or add a justified //lint:ignore:\n%s", n, buf.String())
	}
}
