// Package effectsfix exercises the effects summarizer: canonical keys,
// the allocation taxonomy, type-based write classification, lock event
// ordering, escaping function references, and hot-root shape matching.
package effectsfix

import "sync"

// Global is package-level state; stores to it are writes.
var Global int

// T carries a lock, a counter, and a growable buffer.
type T struct {
	mu sync.Mutex
	n  int
	xs []int
}

// OnAccess matches the hot-root shape (one parameter, one result).
func (t *T) OnAccess(ev int) int {
	t.n++
	return t.n
}

// Fill acquires, grows, releases — in that order.
func (t *T) Fill() {
	t.mu.Lock()
	t.xs = append(t.xs, 1)
	t.mu.Unlock()
}

// SetGlobal writes package state; the struct-local store below it must
// not count (a value chain rooted at a local cannot outlive the call).
func SetGlobal(v int) {
	Global = v
	local := struct{ a int }{}
	local.a = v
	_ = local
}

// Passer lets helperRef escape as a value.
func Passer() func() {
	return helperRef
}

func helperRef() {}

// Caller contributes a static call edge.
func Caller() {
	SetGlobal(1)
}
