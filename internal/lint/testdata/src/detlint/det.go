// Package detfixture seeds determinism violations for the detlint
// analyzer's analysistest cases, alongside the deterministic versions of
// the same patterns that must stay diagnostic-free.
package detfixture

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now()   // want `time.Now reads the wall clock`
	_ = time.Since(t) // want `time.Since reads the wall clock`
	return t.UnixNano()
}

func wallClockSuppressed() time.Time {
	//lint:ignore detlint fixture: reporting-only wall clock, exercises the suppression path
	return time.Now()
}

func globalRand() int {
	return rand.Intn(10) // want `process-global RNG`
}

func globalFloat() float64 {
	return rand.Float64() // want `process-global RNG`
}

func localRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // instance-local: allowed
	return rng.Intn(10)
}

func unsortedPrint(m map[string]int) {
	for k, v := range m { // want `feeds fmt.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func unsortedHash(m map[string]int, h io.Writer) {
	for k := range m { // want `feeds a Write call`
		h.Write([]byte(k))
	}
}

func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want `"keys" is not sorted afterwards`
		keys = append(keys, k)
	}
	return keys
}

func sortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort idiom: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSliceCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func orderInsensitive(m map[string]int) int {
	sum := 0
	for _, v := range m { // pure aggregation: allowed
		sum += v
	}
	return sum
}

func loopLocalScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m { // appends only to loop-local scratch: allowed
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, v*2)
		}
		n += len(doubled)
	}
	return n
}
