// Package harnessfixture seeds concurrency-contract violations for the
// contractlint analyzer. Its synthetic import path contains "harness" so
// it lands inside the analyzer's package scope.
package harnessfixture

import "sync"

// Undocumented lists sweep points.
var Undocumented = []int{1, 2, 3} // want `must state the concurrency contract`

// Documented lists sweep points; it is immutable after init and safe for
// concurrent readers.
var Documented = []int{1, 2, 3}

var internalScratch = map[string]int{} // unexported: out of scope

// Counters aggregates run statistics.
type Counters struct { // want `holds a lock but its doc comment states no concurrency contract`
	mu sync.Mutex
	n  int
}

// SafeCounters aggregates run statistics; mu guards n, and the type is
// safe for concurrent use.
type SafeCounters struct {
	mu sync.Mutex
	n  int
}

// Inc is fine: pointer receiver.
func (c *Counters) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Snapshot copies the lock by value; that is sharelint's rule 3 now,
// so contractlint stays quiet here.
func (c Counters) Snapshot() int {
	return c.n
}

func merge(a *Counters, b Counters) {
	a.n += b.n
}

// embedder picks up the lock through an embedded value field.
type embedder struct {
	Counters
}

func consume(e embedder) int {
	return e.n
}

func byPointer(c *Counters, e *embedder) int { // pointers: allowed
	return c.n + e.n
}
