// Package harnessfixture seeds concurrency-contract violations for the
// contractlint analyzer. Its synthetic import path contains "harness" so
// it lands inside the analyzer's package scope.
package harnessfixture

import "sync"

// Undocumented lists sweep points.
var Undocumented = []int{1, 2, 3} // want `must state the concurrency contract`

// Documented lists sweep points; it is immutable after init and safe for
// concurrent readers.
var Documented = []int{1, 2, 3}

var internalScratch = map[string]int{} // unexported: out of scope

// Counters aggregates run statistics.
type Counters struct { // want `holds a lock but its doc comment states no concurrency contract`
	mu sync.Mutex
	n  int
}

// SafeCounters aggregates run statistics; mu guards n, and the type is
// safe for concurrent use.
type SafeCounters struct {
	mu sync.Mutex
	n  int
}

// Inc is fine: pointer receiver.
func (c *Counters) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c Counters) Snapshot() int { // want `receiver of method Snapshot copies Counters by value`
	return c.n
}

func merge(a *Counters, b Counters) { // want `parameter of merge copies Counters by value`
	a.n += b.n
}

// embedder picks up the lock through an embedded value field.
type embedder struct {
	Counters
}

func consume(e embedder) int { // want `parameter of consume copies embedder by value`
	return e.n
}

func byPointer(c *Counters, e *embedder) int { // pointers: allowed
	return c.n + e.n
}
