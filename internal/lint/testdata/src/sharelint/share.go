// Package cachefixture seeds shared-state violations for the sharelint
// analyzer. Its synthetic import path contains "cache", landing it in
// the frontend scope of rules 1 and 2; the dep subpackage supplies a
// lock-bearing type whose LockFact crosses the package boundary for
// rule 3.
package cachefixture

import (
	"sync"

	"bingo/internal/cachefixture/dep"
)

// Shared maps workload names to budgets.
var Shared = map[string]int{} // want `package-level var Shared is shared across every core`

// Registered maps workload names to budgets.
//
//conc:immutable populated at init, read-only afterwards
var Registered = map[string]int{}

// Guarded carries its own sync primitive: no annotation needed.
var Guarded sync.Mutex

// Mislabeled uses a contract word outside the vocabulary.
//
//conc:bogus not a real contract
var Mislabeled = []func(){} // want `unknown //conc: contract "bogus" on var Mislabeled`

// Unjustified names a contract but gives no reason.
//
//conc:core-local
var Unjustified = []func(){} // want `//conc:core-local on var Unjustified needs a reason`

// Node is one element of an intrusive list.
type Node struct {
	next *Node // want `field next of Node is a cross-component reference`
	//conc:core-local the owning core allocated the whole list
	prev *Node
	val  int
	// lock points at a synchronized target: exempt without annotation.
	lock *dep.Locked
}

// table guards its map with its own mutex, so its reference fields are
// assumed covered by it.
type table struct {
	mu sync.Mutex
	m  map[string]int
}

// Lookup reads the table under its lock.
func (t *table) Lookup(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[k]
}

// holder's value field has type-parameter type: the instantiation
// decides whether it is a sharing edge, so the generic is exempt.
type holder[T any] struct {
	value T
}

// wrapper embeds the dep lock by value, becoming lock-bearing itself.
type wrapper struct {
	dep.Locked
	hits int
}

// Count copies the embedded lock through its value receiver.
func (w wrapper) Count() int { // want `receiver of method Count copies wrapper by value`
	return w.hits
}

// Merge receives a cross-package lock-bearing value by value.
func Merge(dst *dep.Locked, src dep.Locked) { // want `parameter of Merge copies bingo/internal/cachefixture/dep\.Locked by value`
	_ = src
	dst.Inc()
}

// Snapshot returns a lock-bearing value by value.
func Snapshot() dep.Locked { // want `result of Snapshot copies bingo/internal/cachefixture/dep\.Locked by value`
	return dep.Locked{}
}

// ByPointer moves lock-bearing values the right way.
func ByPointer(a *dep.Locked, b *wrapper) {
	a.Inc()
	b.hits++
}

// CopyPlain copies a lock-free dep type; rule 3 stays quiet.
func CopyPlain(p dep.Plain) int {
	return p.N
}
