// Package dep is the cross-package half of the sharelint fixture: it
// exports a mutex-bearing type whose LockFact must travel to the
// importing fixture package through serialized facts. It is itself
// finding-free (its import path lands in sharelint's frontend scope, so
// it must hold up under rules 1 and 2 too).
package dep

import "sync"

// Locked guards its counter with its own mutex; copying it by value
// duplicates the lock.
type Locked struct {
	mu sync.Mutex
	n  int
}

// Inc bumps the counter under the lock.
func (l *Locked) Inc() {
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
}

// Plain holds no lock; copying it is fine.
type Plain struct {
	N int
}
