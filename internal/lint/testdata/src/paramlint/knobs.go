// Package cachefixture seeds hardware-parameter violations for the
// paramlint analyzer: Table-I-style knobs hardcoded in component logic,
// next to the Config/DefaultConfig and named-constant spellings that are
// allowed.
package cachefixture

// knobs is a component configuration in the repo's Config pattern.
type knobs struct {
	Entries    int
	Ways       int
	HitLatency int
	SizeBytes  uint64
}

const historyEntries = 4096

// DefaultConfig reproduces a paper-table row; constructors named
// Default*/Config*/Table* are legitimate parameter homes.
func DefaultConfig() knobs {
	return knobs{Entries: 4096, Ways: 16, HitLatency: 4, SizeBytes: 64 * 1024}
}

func grow() knobs {
	return knobs{
		Entries:   4096,      // want `hardware parameter Entries hardcoded as 4096`
		SizeBytes: 16 * 1024, // want `hardware parameter SizeBytes hardcoded as 16384`
	}
}

func shrink(k *knobs) {
	k.Ways = 8 // want `hardware parameter Ways hardcoded as 8`
	k.Entries = historyEntries
	k.HitLatency = 1 // structural 0/1 values are not parameters
	k.Entries *= 2   // compound ops are algorithm steps, not parameters
}

func unrelated(counts map[string]int) int {
	total := 0
	for _, n := range counts {
		total += n // plain arithmetic: out of scope
	}
	return total
}
