// Package statefixture seeds checkpoint-coverage violations for the
// statelint analyzer: one checkpointable type exercising every rule —
// covered fields (directly and through a helper), missing fields, and
// the //ckpt:skip annotation with and without a reason.
package statefixture

import "bingo/internal/checkpoint"

// Machine is checkpointable: SaveState/LoadState match the codec
// signatures exactly.
type Machine struct {
	clock   uint64
	entries []uint64
	scratch []uint64 // want `field scratch of checkpointable type Machine is not referenced in SaveState or LoadState`
	derived uint64   // want `field derived of checkpointable type Machine is not referenced in SaveState`
	//ckpt:skip rebuilt from entries on first use
	cache map[uint64]uint64
	//ckpt:skip
	bare int // want `//ckpt:skip on field bare of Machine needs a reason`
}

// SaveState serialises the machine.
func (m *Machine) SaveState(w *checkpoint.Writer) error {
	w.U64(m.clock)
	m.saveEntries(w)
	return w.Err()
}

// saveEntries covers entries through the package-local call graph.
func (m *Machine) saveEntries(w *checkpoint.Writer) {
	w.U64s(m.entries)
}

// LoadState restores the machine.
func (m *Machine) LoadState(r *checkpoint.Reader) error {
	m.clock = r.U64()
	m.entries = r.U64s()
	m.derived = m.clock * 2
	return r.Err()
}

// NotCheckpointable has the method names but not the codec signatures;
// statelint must leave it alone.
type NotCheckpointable struct {
	hidden int
}

// SaveState does not take a codec Writer.
func (n *NotCheckpointable) SaveState(buf []byte) error { return nil }

// LoadState does not take a codec Reader.
func (n *NotCheckpointable) LoadState(buf []byte) error { return nil }
