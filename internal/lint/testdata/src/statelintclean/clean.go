// Package statecleanfixture is a finding-free checkpointable type. The
// seeded-mutation test copies this file, deletes the line saving the
// counter field, and asserts statelint reports exactly that field — the
// end-to-end proof that a dropped SaveState write cannot land silently.
package statecleanfixture

import "bingo/internal/checkpoint"

// Counter is fully covered: every field in both methods.
type Counter struct {
	ticks uint64
	total uint64
}

// SaveState serialises the counter.
func (c *Counter) SaveState(w *checkpoint.Writer) error {
	w.U64(c.ticks)
	w.U64(c.total)
	return w.Err()
}

// LoadState restores the counter.
func (c *Counter) LoadState(r *checkpoint.Reader) error {
	c.ticks = r.U64()
	c.total = r.U64()
	return r.Err()
}
