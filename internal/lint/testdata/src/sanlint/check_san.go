//go:build san

package sanfixture

import "bingo/internal/san"

// DeepCheck runs only in san-tagged builds: the file's build constraint
// is the gate, so unguarded checking calls are allowed here.
func DeepCheck(cycle uint64) {
	if !san.Enabled() {
		return
	}
	san.Failf("fixture", cycle, san.CacheClock, "deep check failed")
}
