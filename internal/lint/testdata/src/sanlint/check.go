// Package sanfixture seeds zero-cost-gating and catalog violations for
// the sanlint analyzer. This file ships untagged, so every checking call
// must sit behind a constant-folding guard; check_san.go carries the
// build tag and is exempt.
package sanfixture

import "bingo/internal/san"

// Configure flips the sanitizer on; the configuration API is allowed
// anywhere.
func Configure() {
	san.SetEnabled(true)
}

// Unguarded calls the checking API where an untagged build compiles it.
func Unguarded() uint64 {
	return san.DeepInterval() // want `san\.DeepInterval in a file compiled without the san tag`
}

// Guarded uses the constant-folding guards; both forms are free
// untagged.
func Guarded(cycle uint64) {
	if san.Compiled {
		san.Failf("fixture", cycle,
			san.CacheClock, // a cataloged ID: no finding
			"clock went backwards")
	}
	if san.Enabled() {
		san.Failf("fixture", cycle,
			san.ID("SAN-FIXTURE-BOGUS"), // want `invariant SAN-FIXTURE-BOGUS is not in DESIGN.md §6b's catalog`
			"made-up invariant")
	}
}

// NonConstant passes a runtime value as the invariant ID.
func NonConstant(cycle uint64, id san.ID) {
	if san.Compiled {
		san.Failf("fixture", cycle,
			id, // want `invariant passed to san\.Failf must be a constant san\.ID`
			"whichever invariant the caller meant")
	}
}
