// Package unitfixture seeds address-unit violations for the unitlint
// analyzer: raw block/page-geometry constants on address-typed values,
// next to the typed-helper and mem-constant spellings that are allowed,
// and the small-integer bit-vector math that is out of scope.
package unitfixture

import "bingo/internal/mem"

func rawGeometry(a mem.Addr, raw uint64) []uint64 {
	blk := uint64(a) >> 6 // want `raw block shift`
	page := raw >> 12     // want `raw page shift`
	off := raw & 63       // want `block-offset mask`
	offL := 4095 & raw    // want `page-offset mask`
	al := raw &^ 4095     // want `page-align mask`
	rem := raw % 4096     // want `page modulus`
	return []uint64{blk, page, off, offL, al, rem}
}

func rawLine(line uint64) uint64 {
	return line << 6 // want `raw block shift`
}

func typedHelpers(a mem.Addr) []uint64 {
	return []uint64{
		a.BlockNumber(),
		a.PageNumber(),
		uint64(a.BlockAlign()),
		a.PageOffset(),
	}
}

func viaMemConstants(a mem.Addr, raw uint64) (uint64, mem.Addr) {
	p := uint64(a) >> mem.PageShift           // unit named via mem: allowed
	b := mem.Addr(raw) &^ (mem.BlockSize - 1) // mask built from mem: allowed
	return p, b
}

func bitVectorMath(bits uint64, i int) (int, uint, bool) {
	word := i >> 6      // int index math: out of scope
	bit := uint(i) % 64 // small unsigned: out of scope
	set := bits&(1<<bit) != 0
	return word, bit, set
}

func otherShifts(raw uint64) uint64 {
	return raw>>8 ^ raw<<16 // non-geometry constants: allowed
}
