// Package errfixture exercises errlint: silently discarded errors are
// flagged, justified explicit discards and exempt callees are not.
package errfixture

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, nil }

func value() int { return 7 }

type closer struct{}

func (closer) Close() error { return nil }

func bad(f *os.File) {
	mayFail()       // want `error returned by mayFail is silently discarded`
	defer f.Close() // want `error returned by deferred f.Close is silently discarded`
	go mayFail()    // want `error returned by spawned mayFail is silently discarded`

	_ = mayFail() // want `error explicitly discarded without justification`

	n, _ := pair() // want `error explicitly discarded without justification`
	_ = n

	var c closer
	c.Close() // want `error returned by c.Close is silently discarded`
}

func good(f *os.File) error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := pair()
	if err != nil {
		return err
	}
	_ = n // not an error: plain values may be dropped silently
	_ = value()

	// Read errors win over close errors here, so the close result is noise.
	_ = f.Close()
	_ = mayFail() // best effort: nothing useful to do when this fails

	var b strings.Builder
	b.WriteString("builders never fail")
	var buf bytes.Buffer
	buf.WriteByte('x')
	fmt.Println(b.String(), buf.String())
	fmt.Fprintf(os.Stderr, "fmt is exempt\n")
	return nil
}

//lint:ignore errlint fixture locks down the suppression path
func suppressed() { mayFail() }
