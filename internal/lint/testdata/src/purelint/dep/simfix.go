// Package simfix is a dependency fixture for purelint: simulator-owned
// state whose writes telemetry code must not reach.
package simfix

// Sim holds per-component counters the simulator owns.
type Sim struct{ Hits int }

// Count is package-level simulator state.
var Count int

// Bump mutates simulator state; telemetry reaching it is a finding.
func Bump(s *Sim) {
	s.Hits++
}

// Peek only reads; telemetry may call it freely.
func Peek(s *Sim) int {
	return s.Hits
}
