// Package obsfix exercises purelint under a telemetry import path:
// direct writes to simulator state, writes reached through dependency
// summaries, reads that stay legal, and site- and function-level
// //obs:write waivers.
package obsfix

import "bingo/internal/simfix"

// Probe models a telemetry probe with its own counters.
type Probe struct {
	total   int
	samples []int
}

// Sample may maintain the probe's own state but not the simulator's.
func (p *Probe) Sample(s *simfix.Sim) {
	p.total++
	p.samples = append(p.samples, simfix.Peek(s))
	s.Hits = 0       // want `telemetry code writes simulator state bingo/internal/simfix\.Sim\.Hits`
	simfix.Count = 1 // want `telemetry code writes simulator state bingo/internal/simfix\.Count`
}

// Reset's write is deliberate and waived at the site.
func (p *Probe) Reset(s *simfix.Sim) {
	s.Hits = 0 //obs:write sampling epoch reset is part of the probe contract
}

// Relay reaches the mutation through the dependency's summary: the
// finding lands on this declaration and names the remote site.
func Relay(s *simfix.Sim) { // want `telemetry root bingo/internal/telemetryfix\.Relay reaches a write to simulator state bingo/internal/simfix\.Sim\.Hits`
	simfix.Bump(s)
}

// Restore's body-level waiver covers the closures it builds.
//
//obs:write checkpoint restore rebuilds the snapshot it hands back
func Restore(s *simfix.Sim, vals []int) {
	set := func(v int) { s.Hits = v }
	for _, v := range vals {
		set(v)
	}
}
