// Package memfixture is raw geometry arithmetic with no imports, loaded
// by unitlint's tests under the bingo/internal/mem import path to verify
// that the geometry-owning package itself is exempt.
package memfixture

func blockNumber(a uint64) uint64 { return a >> 6 }
func pageNumber(a uint64) uint64  { return a >> 12 }
func blockOffset(a uint64) uint64 { return a & 63 }
func pageAlign(a uint64) uint64   { return a &^ 4095 }
