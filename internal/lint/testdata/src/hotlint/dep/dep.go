// Package dep is a dependency fixture for hotlint: its summaries cross
// the package boundary as serialized facts, so allocations here must be
// reported remotely, at the calling root's declaration.
package dep

// Grow allocates when dst is full.
func Grow(dst []int) []int {
	return append(dst, 1)
}
