// Package hotfix exercises hotlint: shape-matched hot roots, local and
// remote allocation sites, CHA-resolved interface dispatch, //hot:path
// extra roots, and site- and function-level //hot:alloc waivers.
package hotfix

import "bingo/internal/hotfix/dep"

// Ev stands in for an access event.
type Ev struct{ Addr uint64 }

// P is a prefetcher-shaped type: OnAccess and OnEviction match the hot
// root shapes.
type P struct {
	buf []uint64
	n   int
}

func (p *P) OnAccess(ev Ev) []uint64 {
	p.buf = append(p.buf, ev.Addr) // want `append growth on the hot path from bingo/internal/hotfix\.P\.OnAccess`
	return p.buf
}

func (p *P) OnEviction(ev Ev) {
	p.n++
	waived()
	helper()
}

// waived's body-level annotation covers every site it contains.
//
//hot:alloc scratch buffer, proven steady-state by the alloc benchmark
func waived() {
	_ = make([]byte, 8)
}

func helper() {
	_ = new(int) // want `new on the hot path from bingo/internal/hotfix\.P\.OnEviction`
}

// sink's implementations are resolved by class-hierarchy analysis: a
// call through the interface reaches every module-local implementor.
type sink interface{ Add(uint64) }

type impl struct{ vals []uint64 }

func (i *impl) Add(v uint64) {
	i.vals = append(i.vals, v) // want `append growth on the hot path from bingo/internal/hotfix\.Q\.Tick`
}

// Q ticks through the interface; the allocation sits two hops away.
type Q struct{ s sink }

func (q *Q) Tick() {
	q.s.Add(1)
}

// R reaches an allocation in the dep package: the summary crossed the
// package boundary, so the finding lands on the root's declaration and
// names the remote site.
type R struct{ xs []int }

func (r *R) Tick() { // want `hot path from bingo/internal/hotfix\.R\.Tick reaches append growth in bingo/internal/hotfix/dep\.Grow`
	r.xs = dep.Grow(r.xs)
}

// Issue is not shape-matched but declared hot explicitly.
//
//hot:path issue path runs once per prefetch decision
func Issue() {
	_ = make([]int, 4) // want `make on the hot path from bingo/internal/hotfix\.Issue`
}

// siteWaived shows the line-level waiver: the directive covers the site
// on the line above it or on its own line.
type S struct{ out []uint64 }

func (s *S) OnAccess(ev Ev) []uint64 {
	//hot:alloc warm-up growth only; capacity is reused afterwards
	s.out = append(s.out, ev.Addr)
	return s.out
}

// cold is unreachable from any root: its allocations are nobody's
// problem.
func cold() []int {
	return make([]int, 64)
}
