// Package lockfix exercises locklint: an ordering inversion between two
// mutex types, a recursive acquisition through a helper, a channel
// operation under a held lock, and the branch-sensitive release pattern
// that must interpret cleanly.
package lockfix

import "sync"

// A and B are two lockable components; the inverted pair below closes
// an ordering cycle between their type-based lock keys.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

var (
	theA A
	theB B
	ch   = make(chan int, 1)
)

func LockAB() {
	theA.mu.Lock()
	theB.mu.Lock() // want `lock bingo/internal/lockfix\.B\.mu acquired while holding bingo/internal/lockfix\.A\.mu`
	theB.n++
	theB.mu.Unlock()
	theA.mu.Unlock()
}

func LockBA() {
	theB.mu.Lock()
	theA.mu.Lock() // want `lock bingo/internal/lockfix\.A\.mu acquired while holding bingo/internal/lockfix\.B\.mu`
	theA.n++
	theA.mu.Unlock()
	theB.mu.Unlock()
}

// C holds its lock across a channel send: the critical section extends
// across an unbounded wait.
type C struct{ mu sync.Mutex }

func (c *C) Put(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- v // want `channel send while holding bingo/internal/lockfix\.C\.mu`
}

// D releases before blocking on the fast path — the branch-sensitive
// interpreter must not flag the receive.
type D struct {
	mu    sync.Mutex
	ready bool
}

func (d *D) Wait() {
	d.mu.Lock()
	if d.ready {
		d.mu.Unlock() // early release
		<-ch
		return
	}
	d.mu.Unlock()
}

// E re-acquires its own lock through a helper: a guaranteed deadlock,
// Go mutexes are not reentrant.
type E struct {
	mu sync.Mutex
	n  int
}

func (e *E) Total() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.count() // want `lock bingo/internal/lockfix\.E\.mu acquired while already held`
}

func (e *E) count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}
