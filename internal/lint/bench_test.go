package lint_test

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"bingo/internal/benchenv"
	"bingo/internal/lint"
	"bingo/internal/lint/analysis"
)

// lintBench is the schema of BENCH_lint.json: wall time of the full
// suite cold (empty fact cache) and warm (every package replayed), plus
// the process's peak resident set — the suite holds the whole module
// type-checked in memory at once, so RSS is the number that limits
// where it can run.
type lintBench struct {
	benchenv.Env
	Analyzers      int     `json:"analyzers"`
	Packages       int     `json:"packages_cached"`
	ColdSeconds    float64 `json:"cold_seconds"`
	WarmSeconds    float64 `json:"warm_seconds"`
	WarmSpeedup    float64 `json:"warm_speedup"`
	PeakRSSMBytes  float64 `json:"peak_rss_mbytes"`
	Findings       int     `json:"findings"`
	BudgetSeconds  float64 `json:"budget_seconds"`
	WithinBudget   bool    `json:"within_budget"`
	MeasuredAtNote string  `json:"note"`
}

// TestEmitLintBench times the full invariant suite over the whole module
// — cold, then warm through the fact cache — and writes BENCH_lint.json
// to the path in BENCH_LINT_JSON. It is a generator, not a test: without
// the variable it skips. Run it via `make bench-lint`.
func TestEmitLintBench(t *testing.T) {
	path := os.Getenv("BENCH_LINT_JSON")
	if path == "" {
		t.Skip("set BENCH_LINT_JSON=<path> to emit the lint suite benchmark")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	opts := lint.Options{
		Tests:              true,
		San:                true,
		UnusedSuppressions: true,
		FactCache:          cacheDir,
	}

	run := func() (time.Duration, int) {
		start := time.Now()
		n, err := lint.Check(io.Discard, root, []string{"./..."}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), n
	}
	coldDur, coldFindings := run()
	warmDur, warmFindings := run()
	if coldFindings != warmFindings {
		t.Errorf("cold run found %d finding(s), warm run %d — the cache changed the answer", coldFindings, warmFindings)
	}

	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".gob") {
			cached++
		}
	}

	const budget = 60.0
	doc := lintBench{
		Env:            benchenv.Capture(),
		Analyzers:      len(lint.Suite()),
		Packages:       cached,
		ColdSeconds:    coldDur.Seconds(),
		WarmSeconds:    warmDur.Seconds(),
		WarmSpeedup:    coldDur.Seconds() / warmDur.Seconds(),
		PeakRSSMBytes:  peakRSSMBytes(t),
		Findings:       coldFindings,
		BudgetSeconds:  budget,
		WithinBudget:   coldDur.Seconds() <= budget,
		MeasuredAtNote: "cold = empty fact cache, full ./... with -tests -san -unused-suppressions; warm = same run replayed from cache; RSS = VmHWM of the test process after both runs",
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: cold=%s warm=%s (%.0fx) rss=%.0fMB findings=%d",
		path, coldDur, warmDur, doc.WarmSpeedup, doc.PeakRSSMBytes, coldFindings)
}

// peakRSSMBytes reads the process's high-water resident set from
// /proc/self/status (VmHWM). On platforms without procfs it returns 0 —
// the field is informative, not load-bearing.
func peakRSSMBytes(t *testing.T) float64 {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("/proc", "self", "status"))
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		rest, ok := strings.CutPrefix(line, "VmHWM:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
