package lint

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// firstLine truncates an analyzer's Doc to its opening sentence line —
// SARIF shortDescription wants a one-liner, not the whole essay.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// SARIF 2.1.0 document model — the minimal subset GitHub code scanning
// ingests: one run, one driver, a rule per analyzer, a result per
// finding. Suppressed findings are carried with an inline suppression
// record (their reason preserved) so the dashboard shows them as
// reviewed rather than open.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// writeSARIF renders findings as a SARIF 2.1.0 log. Rules cover every
// analyzer of the run (plus the synthetic unused-suppression rule when
// it fired), findings reference them by index, and file paths stay
// module-relative under %SRCROOT% — the base GitHub resolves against
// the checkout.
func writeSARIF(w io.Writer, findings []Finding, ruleDocs map[string]string) error {
	ruleIndex := map[string]int{}
	var rules []sarifRule
	rule := func(name string) int {
		if i, ok := ruleIndex[name]; ok {
			return i
		}
		doc := ruleDocs[name]
		if doc == "" {
			doc = name
		}
		ruleIndex[name] = len(rules)
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: doc}})
		return ruleIndex[name]
	}
	// Register the run's analyzers up front, alphabetically, so rule
	// indices are stable whether or not each analyzer fired.
	names := make([]string, 0, len(ruleDocs))
	for name := range ruleDocs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rule(name)
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		res := sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: rule(f.Analyzer),
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		}
		if f.Suppressed {
			res.Suppressions = []sarifSuppression{{
				Kind:          "inSource",
				Justification: f.SuppressedBy,
			}}
		}
		results = append(results, res)
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "simlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
