package analysis

import (
	"strings"
	"testing"
)

// FuzzDirectiveParser drives the single tokenizer behind every
// annotation vocabulary (//lint:ignore, //hot:alloc, //obs:write,
// //ckpt:skip, ...) plus the suppression grammar layered on it. The
// parsers gate real enforcement — a crash or a grammar hole here is a
// linter that either dies on a hostile comment or silently accepts a
// malformed waiver — so the properties checked are the ones the
// analyzers rely on, not just "does not panic".
func FuzzDirectiveParser(f *testing.F) {
	for _, seed := range []string{
		"//lint:ignore detlint map iteration is sorted first",
		"//lint:file-ignore statelint,sharelint generated file",
		"//lint:ignore locklint",
		"//hot:alloc reused buffer grows to steady-state capacity",
		"//hot:path prefetch issue path",
		"//obs:write checkpoint restore",
		"//ckpt:skip derived cache",
		"//conc:immutable after construction",
		"//go:build san",
		"// ordinary prose with a colon: not a directive",
		"//lint:ignore",
		"//:verb no domain",
		"//UPPER:case domain",
		"//lint:\tignore tab verb",
		"//lint:ignore a,,b double comma",
		"//hot:alloc  двойной пробел", // non-ASCII arg, doubled space
		"//hot:alloc\x00nul",
		"//" + strings.Repeat("a", 1000) + ":b c",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		m, ok := ParseMarker(text)
		if ok {
			if m.Domain == "" || m.Verb == "" {
				t.Fatalf("ParseMarker(%q) ok with empty domain/verb: %+v", text, m)
			}
			for i := 0; i < len(m.Domain); i++ {
				if m.Domain[i] < 'a' || m.Domain[i] > 'z' {
					t.Fatalf("ParseMarker(%q) accepted non-lowercase domain %q", text, m.Domain)
				}
			}
			if strings.ContainsAny(m.Verb, " \t") {
				t.Fatalf("ParseMarker(%q) verb %q contains whitespace", text, m.Verb)
			}
			if m.Arg != strings.TrimSpace(m.Arg) {
				t.Fatalf("ParseMarker(%q) arg %q not trimmed", text, m.Arg)
			}
			// The split must be faithful to the input: the comment really
			// starts with //domain:verb.
			if !strings.HasPrefix(text, "//"+m.Domain+":"+m.Verb) {
				t.Fatalf("ParseMarker(%q) fabricated %q/%q", text, m.Domain, m.Verb)
			}
		}

		analyzers, reason, fileWide, sok := ParseSuppression(text)
		if sok {
			// A suppression IS a marker in the lint domain with one of the
			// two ignore verbs — anything else accepted here would let a
			// stray comment silence findings.
			if !ok || m.Domain != "lint" {
				t.Fatalf("ParseSuppression(%q) ok but ParseMarker disagrees (%+v, %v)", text, m, ok)
			}
			if m.Verb != "ignore" && m.Verb != "file-ignore" {
				t.Fatalf("ParseSuppression(%q) accepted verb %q", text, m.Verb)
			}
			if fileWide != (m.Verb == "file-ignore") {
				t.Fatalf("ParseSuppression(%q) fileWide=%v for verb %q", text, fileWide, m.Verb)
			}
			if len(analyzers) == 0 {
				t.Fatalf("ParseSuppression(%q) ok with no analyzers", text)
			}
			// The reason is the whole point of the mandatory-justification
			// policy: ok must imply one is on record.
			if strings.TrimSpace(reason) == "" {
				t.Fatalf("ParseSuppression(%q) ok with blank reason", text)
			}
		}

		// Both parsers are pure: same input, same answer.
		m2, ok2 := ParseMarker(text)
		if ok2 != ok || m2 != m {
			t.Fatalf("ParseMarker(%q) not deterministic", text)
		}
	})
}
