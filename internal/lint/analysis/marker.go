package analysis

import "strings"

// The suite's annotation comments all share one shape,
//
//	//domain:verb [argument...]
//
// — //lint:ignore, //ckpt:skip, //conc:immutable, //hot:alloc, //obs:write
// and friends. ParseMarker is the single tokenizer behind every one of
// those vocabularies: each analyzer validates its own domain's verbs and
// argument grammar on top, but the "does this comment address the suite
// at all, and how does it split" question is answered in exactly one
// place (and fuzzed in exactly one place — see FuzzDirectiveParser).

// Marker is one parsed annotation comment, split but not validated: the
// owning analyzer decides whether the verb is known and the argument
// well-formed.
type Marker struct {
	// Domain is the namespace before the colon ("lint", "ckpt", "conc",
	// "hot", "obs").
	Domain string
	// Verb is the word after the colon, up to the first space.
	Verb string
	// Arg is the remainder after the verb, space-trimmed. For most
	// domains this is the mandatory reason; for lint it is the analyzer
	// list followed by the reason.
	Arg string
}

// ParseMarker splits a comment's text into an annotation marker. It
// returns ok=false for anything that is not a line comment of the form
// //domain:verb..., where domain is one or more ASCII lowercase letters
// and verb is non-empty up to the first space. Directive comments never
// carry a space between "//" and the domain (matching the Go convention
// for machine-readable comments, //go:build et al.), so ordinary prose
// that happens to contain a colon does not parse.
func ParseMarker(text string) (Marker, bool) {
	rest, ok := strings.CutPrefix(text, "//")
	if !ok {
		return Marker{}, false
	}
	colon := strings.IndexByte(rest, ':')
	if colon <= 0 {
		return Marker{}, false
	}
	domain := rest[:colon]
	for i := 0; i < len(domain); i++ {
		if domain[i] < 'a' || domain[i] > 'z' {
			return Marker{}, false
		}
	}
	rest = rest[colon+1:]
	if rest == "" {
		return Marker{}, false
	}
	verb := rest
	arg := ""
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		verb, arg = rest[:sp], strings.TrimSpace(rest[sp+1:])
	}
	if verb == "" || strings.ContainsAny(verb, " \t") {
		return Marker{}, false
	}
	return Marker{Domain: domain, Verb: verb, Arg: arg}, true
}
