package analysis

import "fmt"

// Schedule expands analyzers to their Requires closure and returns an
// execution order in which every analyzer runs after all of its
// requirements (and, among unconstrained peers, in first-mention order,
// so output stays byte-stable). A cycle in the Requires graph is a
// configuration bug: Schedule reports it as an error naming the cycle
// rather than recursing forever.
func Schedule(analyzers []*Analyzer) ([]*Analyzer, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := map[*Analyzer]int{}
	var order []*Analyzer
	var stack []string

	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case done:
			return nil
		case visiting:
			// Reconstruct the cycle from the visit stack for the report.
			cycle := a.Name
			for i := len(stack) - 1; i >= 0; i-- {
				cycle = stack[i] + " -> " + cycle
				if stack[i] == a.Name {
					break
				}
			}
			return fmt.Errorf("analyzer requirement cycle: %s", cycle)
		}
		state[a] = visiting
		stack = append(stack, a.Name)
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		stack = stack[:len(stack)-1]
		state[a] = done
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}
