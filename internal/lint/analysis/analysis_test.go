package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFindModuleRootAndModulePath(t *testing.T) {
	l := newTestLoader(t)
	if l.ModulePath != "bingo" {
		t.Fatalf("module path = %q, want bingo", l.ModulePath)
	}
	if _, err := FindModuleRoot(filepath.Join("/", "nonexistent-simlint")); err == nil {
		t.Error("FindModuleRoot outside any module: want error")
	}
}

func TestExpandPatterns(t *testing.T) {
	l := newTestLoader(t)

	all, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"bingo":                  true, // the root package itself
		"bingo/internal/mem":     true,
		"bingo/internal/harness": true,
		"bingo/cmd/simlint":      true,
	}
	got := map[string]bool{}
	for _, p := range all {
		got[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("Expand descended into testdata: %s", p)
		}
	}
	for p := range want {
		if !got[p] {
			t.Errorf("Expand(./...) missing %s", p)
		}
	}
	if !strings.HasPrefix(all[0], "bingo") {
		t.Errorf("unexpected first element %q", all[0])
	}

	sub, err := l.Expand([]string{"./internal/prefetchers/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sub {
		if !strings.HasPrefix(p, "bingo/internal/prefetchers/") {
			t.Errorf("subtree pattern leaked %s", p)
		}
	}
	if len(sub) < 5 {
		t.Errorf("expected the prefetcher family, got %v", sub)
	}

	one, err := l.Expand([]string{"./internal/mem"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != "bingo/internal/mem" {
		t.Errorf("single-dir pattern: got %v", one)
	}
}

func TestLoadTypeChecksAndCaches(t *testing.T) {
	l := newTestLoader(t)
	p1, err := l.Load("bingo/internal/mem")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Types == nil || p1.Types.Name() != "mem" {
		t.Fatalf("bad types package: %v", p1.Types)
	}
	p2, err := l.Load("bingo/internal/mem")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Load did not cache the package")
	}
	if _, err := l.Load("othermodule/pkg"); err == nil {
		t.Error("loading a non-module path: want error")
	}
}
