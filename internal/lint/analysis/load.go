package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package (or test unit).
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	// Files are the unit's source files, ordered by file name. For plain
	// packages these are the non-test files; test units add or consist of
	// _test.go files.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	loader *Loader // for dependency-order re-analysis (see analysis.Run)
}

// Loader parses and type-checks packages of the enclosing module.
// Standard-library imports are delegated to go/importer's source importer;
// module-local imports are resolved against the module root so that the
// whole repository shares one FileSet and one type-checked package graph.
// A Loader is not safe for concurrent use.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string
	// Tags are extra build tags treated as satisfied when evaluating
	// //go:build constraints, on top of the default configuration. The
	// san-tagged lint pass sets Tags = ["san"] so the sanitizer's gated
	// files enter the type-checked world; a Loader models exactly one
	// build configuration, so use one Loader per tag set.
	Tags []string

	std       types.ImporterFrom
	pkgs      map[string]*Package
	overrides map[string]string // import path → directory, for fixtures
	loading   map[string]bool   // import cycle guard
}

// NewLoader builds a Loader for the module rooted at moduleRoot (the
// directory holding go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		overrides:  map[string]string{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s", gomod)
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Override maps importPath to an explicit directory. The analysistest
// runner uses this to load fixture packages under testdata/ with import
// paths that exercise the analyzers' package scoping.
func (l *Loader) Override(importPath, dir string) { l.overrides[importPath] = dir }

// Load parses and type-checks the package with the given module-local
// import path (or a registered override), caching the result.
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	dir, err := l.dirFor(importPath)
	if err != nil {
		return nil, err
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files in %s", importPath, dir)
	}
	pkg, err := l.check(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// TestUnits loads the test code of an already-loadable package as up to
// two extra compilation units, mirroring `go test`'s package split:
//
//   - the in-package unit: the package's files plus its same-package
//     _test.go files, re-type-checked together under the same import path
//     (test helpers see unexported state);
//   - the external unit: the package_test files, type-checked as their
//     own package under the synthetic path importPath+"_test", importing
//     the package under test through the ordinary loader path.
//
// Test units are leaves — nothing may import them — so they are not
// cached under the package's import path and never shadow the shipping
// unit. A package with no test files yields no units.
func (l *Loader) TestUnits(importPath string) ([]*Package, error) {
	pkg, err := l.Load(importPath)
	if err != nil {
		return nil, err
	}
	inPkg, external, err := l.parseTestFiles(pkg.Dir, pkg.Types.Name())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	var units []*Package
	if len(inPkg) > 0 {
		unit, err := l.check(importPath, pkg.Dir, append(append([]*ast.File{}, pkg.Files...), inPkg...))
		if err != nil {
			return nil, err
		}
		units = append(units, unit)
	}
	if len(external) > 0 {
		unit, err := l.check(importPath+"_test", pkg.Dir, external)
		if err != nil {
			return nil, err
		}
		units = append(units, unit)
	}
	return units, nil
}

// parseTestFiles parses dir's buildable _test.go files, split into the
// in-package set (package pkgName) and the external set (pkgName_test).
func (l *Loader) parseTestFiles(dir, pkgName string) (inPkg, external []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if !l.fileIncluded(f) {
			continue
		}
		switch f.Name.Name {
		case pkgName:
			inPkg = append(inPkg, f)
		case pkgName + "_test":
			external = append(external, f)
		}
	}
	return inPkg, external, nil
}

// check type-checks a set of parsed files as one unit without caching it.
func (l *Loader) check(importPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type checking failed: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		loader:     l,
	}, nil
}

func (l *Loader) dirFor(importPath string) (string, error) {
	if dir, ok := l.overrides[importPath]; ok {
		return dir, nil
	}
	if importPath == l.ModulePath {
		return l.ModuleRoot, nil
	}
	if rest, ok := strings.CutPrefix(importPath, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("%s is not in module %s", importPath, l.ModulePath)
}

// parseDir parses the non-test .go files of dir in file-name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !l.fileIncluded(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// fileIncluded evaluates a parsed file's //go:build constraint (if any)
// under this loader's build configuration — host GOOS/GOARCH plus the
// loader's extra Tags — matching what `go build [-tags=...] ./...` would
// compile. This is what keeps mutually exclusive tag pairs
// (sancheck_san.go / sancheck_nosan.go) from both entering one
// type-checked package.
func (l *Loader) fileIncluded(f *ast.File) bool {
	return FileBuildable(f, l.Tags)
}

// FileBuildable reports whether f's //go:build constraint (if any) is
// satisfied under the default build configuration extended with the given
// custom tags. Analyzers use it with no tags to ask the question "does
// this file ship in an untagged build?" regardless of which configuration
// loaded it — the heart of sanlint's zero-cost proof.
func FileBuildable(f *ast.File, tags []string) bool {
	eval := func(tag string) bool {
		for _, t := range tags {
			if tag == t {
				return true
			}
		}
		return defaultBuildTag(tag)
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: keep the file, let vet complain
			}
			return expr.Eval(eval)
		}
	}
	return true
}

// defaultBuildTag reports whether tag is satisfied in a default build:
// host OS/arch, the gc toolchain, unix on unix-like hosts, and every
// released go1.N version tag. Custom tags (like `san`) are not.
func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "solaris", "aix", "dragonfly", "illumos", "ios":
			return true
		}
		return false
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		// Treat every go1.N tag as satisfied: the toolchain building this
		// linter is at least as new as the module's go directive.
		for _, r := range rest {
			if r < '0' || r > '9' {
				return false
			}
		}
		return rest != ""
	}
	return false
}

// loaderImporter adapts Loader to types.Importer: module-local paths load
// through the Loader, everything else (the standard library) through the
// shared source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleRoot, 0)
}

// Expand resolves package patterns relative to the module root into a
// sorted list of import paths. Supported forms: "./..." (every package in
// the module), "./dir/..." (every package under dir), and "./dir" or a
// plain import path (one package). Directories named testdata, vendor, or
// starting with "." or "_" are never descended into.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walkPackages(l.ModuleRoot)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir, err := l.patternDir(base)
			if err != nil {
				return nil, err
			}
			paths, err := l.walkPackages(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			dir, err := l.patternDir(pat)
			if err != nil {
				return nil, err
			}
			p, ok := l.importPathFor(dir)
			if !ok {
				return nil, fmt.Errorf("pattern %q resolves outside module %s", pat, l.ModulePath)
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) patternDir(pat string) (string, error) {
	if strings.HasPrefix(pat, "./") || pat == "." {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./"))), nil
	}
	return l.dirFor(pat)
}

func (l *Loader) importPathFor(dir string) (string, bool) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	if rel == "." {
		return l.ModulePath, true
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), true
}

// walkPackages returns the import paths of every directory under root that
// contains at least one non-test .go file.
func (l *Loader) walkPackages(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				if p, ok := l.importPathFor(path); ok {
					out = append(out, p)
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
