package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ConstInt returns the constant integer value of e, if it has one.
func (p *Pass) ConstInt(e ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// RefersToPackage reports whether any identifier inside e resolves to an
// object exported from the package with the given import path.
func (p *Pass) RefersToPackage(e ast.Expr, pkgPath string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := p.Info.Uses[id]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath {
			found = true
		}
		return !found
	})
	return found
}

// RefersToObject reports whether any identifier inside n resolves to obj.
func (p *Pass) RefersToObject(n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if p.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// WalkStmtLists invokes fn on every statement list in f (block bodies,
// switch/select clause bodies), giving analyzers sibling context: fn sees
// each list whole, so a check on list[i] can look ahead at list[i+1:].
func WalkStmtLists(f *ast.File, fn func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// CalleeFunc resolves the called function or method of call, or nil.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// IsPackageFunc reports whether call invokes the package-level function
// pkgPath.name (not a method).
func (p *Pass) IsPackageFunc(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.CalleeFunc(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
