package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives follow the staticcheck convention:
//
//	//lint:ignore <analyzer> <reason>
//
// suppresses findings of <analyzer> on the directive's own line and on the
// line immediately below it (so the directive can trail the offending
// statement or sit on its own line above it), and
//
//	//lint:file-ignore <analyzer> <reason>
//
// anywhere in a file suppresses the analyzer for that whole file. The
// analyzer field may be a comma-separated list; the reason is mandatory —
// a directive without one is ignored, so the justification is always on
// record next to the exemption.
//
// Suppressed findings are not dropped: they are marked (Diagnostic.
// Suppressed) so structured output can show them, and each directive
// records whether it ever matched a finding — the -unused-suppressions
// sweep reports the ones that no longer earn their keep.

// Directive is one parsed //lint:ignore or //lint:file-ignore comment,
// narrowed to a single analyzer name (a comma-separated directive yields
// one Directive per name).
type Directive struct {
	Pos      token.Pos
	File     string
	Line     int
	Col      int
	Analyzer string
	Reason   string
	// FileWide marks a //lint:file-ignore.
	FileWide bool
	// Used is set when the directive suppresses at least one finding.
	Used bool
}

func collectDirectives(pkg *Package) []*Directive {
	var dirs []*Directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dirs = append(dirs, parseDirective(pkg, c)...)
			}
		}
	}
	return dirs
}

func parseDirective(pkg *Package, c *ast.Comment) []*Directive {
	names, reason, fileWide, ok := ParseSuppression(c.Text)
	if !ok {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var dirs []*Directive
	for _, name := range names {
		dirs = append(dirs, &Directive{
			Pos:      c.Pos(),
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: name,
			Reason:   reason,
			FileWide: fileWide,
		})
	}
	return dirs
}

// ParseSuppression parses a //lint:ignore or //lint:file-ignore comment
// into its analyzer names and mandatory reason. It is the position-free
// core of directive parsing, split out so the fuzz target can drive it
// directly; ok is false for comments that are not well-formed
// suppressions (which the driver then silently ignores — an unknown verb
// or missing reason never suppresses anything).
func ParseSuppression(text string) (analyzers []string, reason string, fileWide bool, ok bool) {
	m, ok := ParseMarker(text)
	if !ok || m.Domain != "lint" {
		return nil, "", false, false
	}
	if m.Verb != "ignore" && m.Verb != "file-ignore" {
		return nil, "", false, false
	}
	// The argument is the analyzer list followed by the reason; a reason
	// is required for the directive to take effect.
	fields := strings.Fields(m.Arg)
	if len(fields) < 2 {
		return nil, "", false, false
	}
	return strings.Split(fields[0], ","), strings.Join(fields[1:], " "), m.Verb == "file-ignore", true
}

// markSuppressed sets the Suppressed flag on every diagnostic a directive
// covers and the Used flag on every directive that covers one.
func markSuppressed(pkg *Package, dirs []*Directive, diags []Diagnostic) {
	if len(dirs) == 0 || len(diags) == 0 {
		return
	}
	for i := range diags {
		pos := pkg.Fset.Position(diags[i].Pos)
		for _, d := range dirs {
			if d.Analyzer != diags[i].Analyzer || d.File != pos.Filename {
				continue
			}
			if d.FileWide || d.Line == pos.Line || d.Line == pos.Line-1 {
				d.Used = true
				diags[i].Suppressed = true
				diags[i].SuppressedBy = d.Reason
				// Keep scanning: every directive covering this finding
				// counts as used, so duplicates don't read as stale.
			}
		}
	}
}
