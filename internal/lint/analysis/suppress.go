package analysis

import (
	"go/ast"
	"strings"
)

// Suppression directives follow the staticcheck convention:
//
//	//lint:ignore <analyzer> <reason>
//
// suppresses findings of <analyzer> on the directive's own line and on the
// line immediately below it (so the directive can trail the offending
// statement or sit on its own line above it), and
//
//	//lint:file-ignore <analyzer> <reason>
//
// anywhere in a file suppresses the analyzer for that whole file. The
// analyzer field may be a comma-separated list; the reason is mandatory —
// a directive without one is ignored, so the justification is always on
// record next to the exemption.

type ignoreKey struct {
	file string
	line int
	name string
}

type fileIgnoreKey struct {
	file string
	name string
}

type suppressions struct {
	lines map[ignoreKey]bool
	files map[fileIgnoreKey]bool
}

func collectSuppressions(pkg *Package) suppressions {
	s := suppressions{lines: map[ignoreKey]bool{}, files: map[fileIgnoreKey]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.record(pkg, c)
			}
		}
	}
	return s
}

func (s suppressions) record(pkg *Package, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, "//lint:")
	if !ok {
		return
	}
	fields := strings.Fields(text)
	// fields[0] is the directive, fields[1] the analyzer list; a reason
	// (≥1 further field) is required for the directive to take effect.
	if len(fields) < 3 {
		return
	}
	pos := pkg.Fset.Position(c.Pos())
	for _, name := range strings.Split(fields[1], ",") {
		switch fields[0] {
		case "ignore":
			s.lines[ignoreKey{pos.Filename, pos.Line, name}] = true
		case "file-ignore":
			s.files[fileIgnoreKey{pos.Filename, name}] = true
		}
	}
}

func (s suppressions) covers(pkg *Package, d Diagnostic) bool {
	pos := pkg.Fset.Position(d.Pos)
	if s.files[fileIgnoreKey{pos.Filename, d.Analyzer}] {
		return true
	}
	return s.lines[ignoreKey{pos.Filename, pos.Line, d.Analyzer}] ||
		s.lines[ignoreKey{pos.Filename, pos.Line - 1, d.Analyzer}]
}

func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	s := collectSuppressions(pkg)
	if len(s.lines) == 0 && len(s.files) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !s.covers(pkg, d) {
			kept = append(kept, d)
		}
	}
	return kept
}
