package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a datum one analyzer attaches to a types.Object or a package
// in one pass and consumes in another — possibly while analyzing a
// different package, which is what turns the per-package analyzers into a
// cross-package suite. The design mirrors
// golang.org/x/tools/go/analysis: an analyzer declares the concrete fact
// types it produces in Analyzer.FactTypes, exports facts with
// Pass.ExportObjectFact / Pass.ExportPackageFact, and imports them —
// its own or a required analyzer's — with the Import counterparts.
//
// Facts cross package boundaries serialized: when a package's analysis
// completes, its exported facts are gob-encoded, and a downstream
// package decodes them on first import. The round trip is not an
// implementation detail — it guarantees facts carry plain data (no live
// pointers into a dependency's syntax trees or type checker), which is
// what would let this runner analyze packages in separate processes, as
// the upstream driver does. Fact types must therefore be gob-encodable
// pointers to structs of exported fields.
type Fact interface {
	// AFact marks the type as a fact. It is never called.
	AFact()
}

// wireFact is the serialized form of one exported fact: the object key
// ("" for a package fact) and the registered concrete fact value.
type wireFact struct {
	Key  string
	Fact Fact
}

// factSet holds the facts one analyzer exported while analyzing one
// package, in both live and serialized form.
type factSet struct {
	objects  map[string][]Fact // object key → facts, in export order
	pkgFacts []Fact
}

// factDB stores fact sets per (package import path, analyzer). The
// runner owns one database per configuration; analyzers only see it
// through the Pass accessors.
type factDB struct {
	encoded map[string]map[string][]byte  // pkg path → analyzer → gob
	decoded map[string]map[string]factSet // pkg path → analyzer → facts
}

func newFactDB() *factDB {
	return &factDB{
		encoded: map[string]map[string][]byte{},
		decoded: map[string]map[string]factSet{},
	}
}

// commit serializes the facts an analyzer exported for pkgPath and
// stores only the encoded bytes: downstream imports must decode them,
// so every fact provably survives the round trip.
func (db *factDB) commit(pkgPath, analyzer string, fs factSet) error {
	if len(fs.objects) == 0 && len(fs.pkgFacts) == 0 {
		return nil
	}
	data, err := encodeFacts(fs)
	if err != nil {
		return fmt.Errorf("facts of %s for %s: %w", analyzer, pkgPath, err)
	}
	m := db.encoded[pkgPath]
	if m == nil {
		m = map[string][]byte{}
		db.encoded[pkgPath] = m
	}
	m[analyzer] = data
	return nil
}

// seed installs an already-encoded fact blob (from a previous run) for
// (pkgPath, analyzer). Decoding is deferred to first import, exactly as
// for facts committed live.
func (db *factDB) seed(pkgPath, analyzer string, data []byte) {
	m := db.encoded[pkgPath]
	if m == nil {
		m = map[string][]byte{}
		db.encoded[pkgPath] = m
	}
	m[analyzer] = data
}

// load returns the decoded fact set for (pkgPath, analyzer), decoding
// and caching on first use.
func (db *factDB) load(pkgPath, analyzer string) (factSet, error) {
	if m, ok := db.decoded[pkgPath]; ok {
		if fs, ok := m[analyzer]; ok {
			return fs, nil
		}
	}
	data := db.encoded[pkgPath][analyzer]
	if data == nil {
		return factSet{}, nil
	}
	fs, err := decodeFacts(data)
	if err != nil {
		return factSet{}, fmt.Errorf("facts of %s for %s: %w", analyzer, pkgPath, err)
	}
	m := db.decoded[pkgPath]
	if m == nil {
		m = map[string]factSet{}
		db.decoded[pkgPath] = m
	}
	m[analyzer] = fs
	return fs, nil
}

// encodeFacts and decodeFacts are split out (rather than inlined into
// commit/load) so the serialization round trip is unit-testable on its
// own.
func encodeFacts(fs factSet) ([]byte, error) {
	keys := make([]string, 0, len(fs.objects))
	for key := range fs.objects {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var wire []wireFact
	for _, key := range keys {
		for _, f := range fs.objects[key] {
			wire = append(wire, wireFact{Key: key, Fact: f})
		}
	}
	for _, f := range fs.pkgFacts {
		wire = append(wire, wireFact{Key: "", Fact: f})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeFacts(data []byte) (factSet, error) {
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return factSet{}, err
	}
	fs := factSet{objects: map[string][]Fact{}}
	for _, w := range wire {
		if w.Key == "" {
			fs.pkgFacts = append(fs.pkgFacts, w.Fact)
		} else {
			fs.objects[w.Key] = append(fs.objects[w.Key], w.Fact)
		}
	}
	return fs, nil
}

// registerFactTypes makes every fact type declared by the analyzers (and
// their Requires closure) known to gob. Registration is idempotent per
// concrete type; gob panics only on name collisions between distinct
// types, which is a configuration bug worth crashing on.
func registerFactTypes(analyzers []*Analyzer) {
	seen := map[reflect.Type]bool{}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if t == nil || seen[t] {
				continue
			}
			seen[t] = true
			gob.Register(f)
		}
	}
}

// objectKey returns a stable, serialization-friendly key for the objects
// facts may be attached to: package-scope objects ("Name") and fields or
// methods of package-scope named types ("Type.Name"). These are the only
// shapes the suite needs; anything else is an analyzer bug.
func objectKey(obj types.Object) (string, error) {
	if obj == nil || obj.Pkg() == nil {
		return "", fmt.Errorf("fact on object %v outside any package", obj)
	}
	scope := obj.Pkg().Scope()
	if scope.Lookup(obj.Name()) == obj {
		return obj.Name(), nil
	}
	// A field or method: find the package-scope named type that owns it.
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i) == obj {
				return name + "." + obj.Name(), nil
			}
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == obj {
					return name + "." + obj.Name(), nil
				}
			}
		}
	}
	return "", fmt.Errorf("fact on unsupported object %s (only package-scope objects and their fields/methods)", obj)
}

// ExportObjectFact attaches fact to obj, which must belong to the
// package under analysis. Facts become visible to downstream packages
// (and later analyzers in this package) once this pass completes.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact on object %v of another package", p.Analyzer.Name, obj))
	}
	key, err := objectKey(obj)
	if err != nil {
		panic(fmt.Sprintf("%s: %v", p.Analyzer.Name, err))
	}
	if p.facts.objects == nil {
		p.facts.objects = map[string][]Fact{}
	}
	p.facts.objects[key] = append(p.facts.objects[key], fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.pkgFacts = append(p.facts.pkgFacts, fact)
}

// ImportObjectFact copies into fact (a pointer to the concrete type) the
// fact of that type attached to obj by this analyzer or any analyzer in
// its Requires closure, reporting whether one was found. Facts of
// dependency packages were analyzed earlier in dependency order and
// arrive through the serialized store.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key, err := objectKey(obj)
	if err != nil {
		return false
	}
	return p.importFact(obj.Pkg().Path(), key, fact)
}

// ImportPackageFact copies into fact the package-level fact of its type
// attached to pkg, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	return p.importFact(pkg.Path(), "", fact)
}

func (p *Pass) importFact(pkgPath, key string, fact Fact) bool {
	want := reflect.TypeOf(fact)
	match := func(fs factSet) bool {
		candidates := fs.pkgFacts
		if key != "" {
			candidates = fs.objects[key]
		}
		for _, f := range candidates {
			if reflect.TypeOf(f) == want {
				reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
				return true
			}
		}
		return false
	}
	// Same package, same run: the live sets of this analyzer and its
	// requirements, not yet committed to the database.
	if pkgPath == p.Pkg.Path() && p.liveFacts != nil {
		for _, name := range p.factScope() {
			if match(p.liveFacts(name)) {
				return true
			}
		}
		return false
	}
	if p.db == nil {
		return false
	}
	for _, name := range p.factScope() {
		fs, err := p.db.load(pkgPath, name)
		if err == nil && match(fs) {
			return true
		}
	}
	return false
}

// factScope lists the analyzer names whose facts this pass may read: its
// own and its transitive requirements'.
func (p *Pass) factScope() []string {
	names := []string{p.Analyzer.Name}
	var walk func(a *Analyzer)
	seen := map[*Analyzer]bool{p.Analyzer: true}
	walk = func(a *Analyzer) {
		for _, req := range a.Requires {
			if !seen[req] {
				seen[req] = true
				names = append(names, req.Name)
				walk(req)
			}
		}
	}
	walk(p.Analyzer)
	return names
}
