package analysis

import (
	"fmt"
	"strings"
)

// Runner drives a scheduled analyzer suite over packages of one Loader
// configuration (one set of build tags, one type-checked world).
//
// The runner is what makes the suite cross-package: before analyzing a
// package it analyzes every module-local dependency first (memoized), so
// by the time an analyzer asks for a fact of an imported object, the
// exporting package's facts are already committed — serialized — to the
// fact store. Diagnostics are collected per package; callers decide which
// packages' findings to report (dependencies pulled in only for facts
// stay silent unless asked for).
//
// A Runner is not safe for concurrent use, matching its Loader.
type Runner struct {
	loader    *Loader
	analyzers []*Analyzer // scheduled: requirements before dependents
	db        *factDB

	diags    map[string][]Diagnostic // unit key → findings (suppressed included, marked)
	analyzed map[string]bool         // unit key → completed
	visiting map[string]bool         // re-entrancy guard (import cycles surface in the loader first)

	directives []*Directive
}

// NewRunner schedules analyzers (expanding Requires, rejecting cycles),
// registers their fact types for serialization, and binds the result to
// loader's package world.
func NewRunner(loader *Loader, analyzers []*Analyzer) (*Runner, error) {
	order, err := Schedule(analyzers)
	if err != nil {
		return nil, err
	}
	registerFactTypes(order)
	return &Runner{
		loader:    loader,
		analyzers: order,
		db:        newFactDB(),
		diags:     map[string][]Diagnostic{},
		analyzed:  map[string]bool{},
		visiting:  map[string]bool{},
	}, nil
}

// Package loads importPath (and, first, its module-local dependency
// closure), runs the scheduled suite on it, and returns its diagnostics
// — suppressed ones included, marked, so drivers can surface them in
// structured output. Results are memoized; analyzing a package twice is
// free.
func (r *Runner) Package(importPath string) ([]Diagnostic, error) {
	if err := r.ensure(importPath); err != nil {
		return nil, err
	}
	return r.diags[importPath], nil
}

func (r *Runner) ensure(importPath string) error {
	if r.analyzed[importPath] {
		return nil
	}
	if r.visiting[importPath] {
		return fmt.Errorf("import cycle through %s", importPath)
	}
	r.visiting[importPath] = true
	defer delete(r.visiting, importPath)

	pkg, err := r.loader.Load(importPath)
	if err != nil {
		return err
	}
	for _, imp := range pkg.Types.Imports() {
		if r.moduleLocal(imp.Path()) {
			if err := r.ensure(imp.Path()); err != nil {
				return err
			}
		}
	}
	diags, err := r.analyze(pkg, true)
	if err != nil {
		return err
	}
	r.diags[importPath] = diags
	r.analyzed[importPath] = true
	return nil
}

// TestUnits analyzes the test packages of importPath (the in-package
// unit re-type-checked with its _test.go files, and the external
// package_test unit, when either exists) and returns their diagnostics.
// Test units never commit facts: nothing imports them, and their
// augmented view of a package must not shadow the shipping one.
func (r *Runner) TestUnits(importPath string) ([]Diagnostic, error) {
	if err := r.ensure(importPath); err != nil {
		return nil, err // dependencies' facts, and the package's own
	}
	units, err := r.loader.TestUnits(importPath)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, unit := range units {
		// External units import the package under test and possibly other
		// module packages; make sure their facts exist too.
		for _, imp := range unit.Types.Imports() {
			if r.moduleLocal(imp.Path()) {
				if err := r.ensure(imp.Path()); err != nil {
					return nil, err
				}
			}
		}
		diags, err := r.analyze(unit, false)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	return out, nil
}

func (r *Runner) moduleLocal(path string) bool {
	return path == r.loader.ModulePath || strings.HasPrefix(path, r.loader.ModulePath+"/")
}

// analyze runs the scheduled suite over one loaded unit. Facts exported
// by each analyzer are visible live to later analyzers of the same unit
// and, when commit is set, serialized into the store for downstream
// packages.
func (r *Runner) analyze(pkg *Package, commit bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	live := map[string]factSet{}
	liveFacts := func(name string) factSet { return live[name] }
	for _, a := range r.analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			ModuleRoot: r.loader.ModuleRoot,
			diags:      &diags,
			db:         r.db,
			liveFacts:  liveFacts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
		live[a.Name] = pass.facts
	}
	if commit {
		for _, a := range r.analyzers {
			if err := r.db.commit(pkg.ImportPath, a.Name, live[a.Name]); err != nil {
				return nil, err
			}
		}
	}
	dirs := collectDirectives(pkg)
	markSuppressed(pkg, dirs, diags)
	r.directives = append(r.directives, dirs...)
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// Directives returns every suppression directive seen in the packages
// this runner analyzed, with usage marks. A directive is "used" when it
// covered at least one finding; drivers merge usage across configurations
// (default and san-tagged passes) before declaring one stale.
func (r *Runner) Directives() []*Directive { return r.directives }

// Seed marks importPath as already analyzed and installs facts — encoded
// fact blobs from a previous run's ExportedFacts, keyed by analyzer name
// — into the fact store. Dependents then import the package's facts
// without the suite ever running on it. The caller owns cache validity:
// seeding a package whose source (or whose dependencies' source) has
// changed replays stale facts. Seed must happen before any Package or
// TestUnits call that reaches the seeded package.
func (r *Runner) Seed(importPath string, facts map[string][]byte) {
	for analyzer, data := range facts {
		r.db.seed(importPath, analyzer, data)
	}
	r.analyzed[importPath] = true
}

// ExportedFacts returns the encoded fact blobs importPath committed when
// it was analyzed (analyzer name → gob bytes), for persisting in a fact
// cache. The map is a copy; nil when the package exported nothing.
func (r *Runner) ExportedFacts(importPath string) map[string][]byte {
	src := r.db.encoded[importPath]
	if len(src) == 0 {
		return nil
	}
	out := make(map[string][]byte, len(src))
	for analyzer, data := range src {
		out[analyzer] = data
	}
	return out
}
