package analysis

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFileBuildable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		tags []string
		want bool
	}{
		{"unconstrained default", "package p\n", nil, true},
		{"unconstrained with tags", "package p\n", []string{"san"}, true},
		{"san excluded by default", "//go:build san\n\npackage p\n", nil, false},
		{"san included under tag", "//go:build san\n\npackage p\n", []string{"san"}, true},
		{"negated san by default", "//go:build !san\n\npackage p\n", nil, true},
		{"negated san under tag", "//go:build !san\n\npackage p\n", []string{"san"}, false},
		{"conjunction needs both", "//go:build san && other\n\npackage p\n", []string{"san"}, false},
		{"conjunction satisfied", "//go:build san && other\n\npackage p\n", []string{"san", "other"}, true},
	}
	for _, tc := range cases {
		if got := FileBuildable(parseSrc(t, tc.src), tc.tags); got != tc.want {
			t.Errorf("%s: FileBuildable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// tfact is a registered fact type for the serialization tests.
type tfact struct {
	N     int
	Label string
}

func (*tfact) AFact() {}

func TestFactRoundTrip(t *testing.T) {
	registerFactTypes([]*Analyzer{{Name: "facttest", FactTypes: []Fact{&tfact{}}}})
	fs := factSet{
		objects: map[string][]Fact{
			"B":     {&tfact{N: 2, Label: "b"}},
			"A.fld": {&tfact{N: 1, Label: "a"}, &tfact{N: 3, Label: "aa"}},
		},
		pkgFacts: []Fact{&tfact{N: 9, Label: "pkg"}},
	}

	d1, err := encodeFacts(fs)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := encodeFacts(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("encodeFacts is not deterministic across calls")
	}

	got, err := decodeFacts(d1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.objects, fs.objects) {
		t.Errorf("object facts did not survive the round trip:\n got %v\nwant %v", got.objects, fs.objects)
	}
	if !reflect.DeepEqual(got.pkgFacts, fs.pkgFacts) {
		t.Errorf("package facts did not survive the round trip:\n got %v\nwant %v", got.pkgFacts, fs.pkgFacts)
	}
}

func TestFactDBCommitLoad(t *testing.T) {
	registerFactTypes([]*Analyzer{{Name: "facttest", FactTypes: []Fact{&tfact{}}}})
	db := newFactDB()
	fs := factSet{
		objects:  map[string][]Fact{"X": {&tfact{N: 7, Label: "x"}}},
		pkgFacts: []Fact{&tfact{N: 8, Label: "p"}},
	}
	if err := db.commit("bingo/internal/mem", "facttest", fs); err != nil {
		t.Fatal(err)
	}
	got, err := db.load("bingo/internal/mem", "facttest")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.objects, fs.objects) || !reflect.DeepEqual(got.pkgFacts, fs.pkgFacts) {
		t.Errorf("factDB round trip mismatch: got %+v, want %+v", got, fs)
	}
	empty, err := db.load("bingo/internal/mem", "absent")
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.objects) != 0 || len(empty.pkgFacts) != 0 {
		t.Errorf("missing entry should load empty, got %+v", empty)
	}
}

func TestScheduleOrdersRequirementsFirst(t *testing.T) {
	base := &Analyzer{Name: "base"}
	mid := &Analyzer{Name: "mid", Requires: []*Analyzer{base}}
	top := &Analyzer{Name: "top", Requires: []*Analyzer{mid, base}}
	order, err := Schedule([]*Analyzer{top})
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, a := range order {
		pos[a.Name] = i
	}
	if len(order) != 3 {
		t.Fatalf("Schedule did not expand the Requires closure: %d analyzers", len(order))
	}
	if !(pos["base"] < pos["mid"] && pos["mid"] < pos["top"]) {
		t.Errorf("bad topological order: %v", pos)
	}
}

func TestScheduleCycleIsAnError(t *testing.T) {
	a := &Analyzer{Name: "a"}
	b := &Analyzer{Name: "b", Requires: []*Analyzer{a}}
	a.Requires = []*Analyzer{b}
	if _, err := Schedule([]*Analyzer{a}); err == nil {
		t.Fatal("Schedule on a requirement cycle: want error, got nil")
	} else if !strings.Contains(err.Error(), "analyzer requirement cycle") {
		t.Errorf("cycle error should name the cycle, got: %v", err)
	}

	// NewRunner must refuse the same configuration up front.
	l := newTestLoader(t)
	if _, err := NewRunner(l, []*Analyzer{a}); err == nil {
		t.Error("NewRunner on a requirement cycle: want error, got nil")
	}
}
