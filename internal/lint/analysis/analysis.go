// Package analysis is a self-contained, dependency-free re-implementation
// of the core of golang.org/x/tools/go/analysis, sized for this repository.
// The repo deliberately carries no module dependencies (go.mod has no
// require block), so the invariant suite in internal/lint is built on this
// mini framework instead of x/tools: the Analyzer / Pass / Diagnostic /
// Fact surface mirrors the upstream API closely enough that an analyzer
// written here ports to a real multichecker by changing one import.
//
// The framework loads packages with the standard library only: go/parser
// for syntax, go/types for type checking, and go/importer's source
// importer for standard-library dependencies. Module-local imports
// (bingo/...) are resolved by the Loader itself so that fixtures and the
// repository's own packages share one type-checked world.
//
// Since PR 7 the framework is cross-package: analyzers may declare
// prerequisite analyzers (Requires — scheduled topologically, cycles are
// errors) and attach Facts to objects or packages that downstream
// packages consume through a serialized store. The Runner analyzes
// packages in module dependency order so facts always exist before they
// are imported; see runner.go and facts.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker. It mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards, shown by `simlint -help`.
	Doc string
	// Requires lists analyzers that must run on each package before this
	// one (typically fact producers). The runner schedules the closure
	// topologically and rejects cycles.
	Requires []*Analyzer
	// FactTypes declares the concrete fact types this analyzer exports,
	// as pointers to zero values (e.g. new(FooFact)). Required for gob
	// registration; an analyzer that exports an undeclared fact type
	// fails at serialization time.
	FactTypes []Fact
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is a finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting analyzer's name; filled in by the runner.
	Analyzer string
	// Suppressed marks a finding covered by a //lint:ignore or
	// //lint:file-ignore directive; SuppressedBy carries the directive's
	// reason. Drivers print suppressed findings only on request (-json).
	Suppressed   bool
	SuppressedBy string
}

// Pass carries one type-checked package through one analyzer, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ModuleRoot is the directory holding go.mod — for the rare analyzer
	// that checks source against a non-Go artifact (sanlint vs the
	// DESIGN.md invariant catalog).
	ModuleRoot string

	diags *[]Diagnostic

	// Fact plumbing, wired by the runner.
	facts     factSet              // facts exported by this pass
	db        *factDB              // serialized facts of other packages
	liveFacts func(string) factSet // uncommitted facts of this package's run
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers that
// guard shipping-binary properties (wall-clock determinism, zero-cost
// sanitizer gating) use this to exempt test-only code, which is analyzed
// when the loader's test units are enabled.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by ident, consulting both uses and
// definitions, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Run applies the analyzers (plus their Requires closure, scheduled
// topologically) to one already-loaded package and returns its
// unsuppressed diagnostics. Dependency packages are analyzed first so
// imported facts exist; their diagnostics are not returned. It is the
// single-package convenience entry; drivers that report on many packages
// use a Runner directly.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if pkg.loader == nil {
		return nil, fmt.Errorf("%s was not loaded by a Loader", pkg.ImportPath)
	}
	r, err := NewRunner(pkg.loader, analyzers)
	if err != nil {
		return nil, err
	}
	diags, err := r.Package(pkg.ImportPath)
	if err != nil {
		return nil, err
	}
	kept := diags[:0:0]
	for _, d := range diags {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool { return diagLess(fset, diags[i], diags[j]) })
}

func diagLess(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}
