// Package analysis is a self-contained, dependency-free re-implementation
// of the core of golang.org/x/tools/go/analysis, sized for this repository.
// The repo deliberately carries no module dependencies (go.mod has no
// require block), so the invariant suite in internal/lint is built on this
// mini framework instead of x/tools: the Analyzer / Pass / Diagnostic
// surface mirrors the upstream API closely enough that an analyzer written
// here ports to a real multichecker by changing one import.
//
// The framework loads packages with the standard library only: go/parser
// for syntax, go/types for type checking, and go/importer's source
// importer for standard-library dependencies. Module-local imports
// (bingo/...) are resolved by the Loader itself so that fixtures and the
// repository's own packages share one type-checked world.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker. It mirrors
// golang.org/x/tools/go/analysis.Analyzer minus Requires/Facts, which the
// suite does not need.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards, shown by `simlint -help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is a finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting analyzer's name; filled in by the runner.
	Analyzer string
}

// Pass carries one type-checked package through one analyzer, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by ident, consulting both uses and
// definitions, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Run applies every analyzer to pkg and returns the surviving diagnostics:
// findings at lines covered by a matching //lint:ignore directive (or in a
// file with a matching //lint:file-ignore) are dropped. Diagnostics are
// ordered by position, then analyzer name, so output is byte-stable.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	diags = filterSuppressed(pkg, diags)
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool { return diagLess(fset, diags[i], diags[j]) })
}

func diagLess(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}
