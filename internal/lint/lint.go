// Package lint assembles simlint, the simulator's invariant suite: five
// project-specific analyzers on the mini go/analysis framework in
// internal/lint/analysis. See the package docs of detlint, errlint,
// unitlint, contractlint, and paramlint for the invariant each one
// guards, and README.md ("Static analysis & invariants") for the
// suppression directives.
package lint

import (
	"fmt"
	"io"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/contractlint"
	"bingo/internal/lint/detlint"
	"bingo/internal/lint/errlint"
	"bingo/internal/lint/paramlint"
	"bingo/internal/lint/unitlint"
)

// Suite returns the full analyzer suite in stable (alphabetical) order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		contractlint.Analyzer,
		detlint.Analyzer,
		errlint.Analyzer,
		paramlint.Analyzer,
		unitlint.Analyzer,
	}
}

// Check loads every package matched by patterns (relative to moduleRoot)
// and runs the given analyzers, writing findings to w as
// "path:line:col: message [analyzer]" with paths relative to the module
// root. It returns the number of findings.
func Check(w io.Writer, moduleRoot string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		return 0, err
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return count, err
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			return count, err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, ok := relativeTo(moduleRoot, file); ok {
				file = rel
			}
			fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", file, pos.Line, pos.Column, d.Message, d.Analyzer)
			count++
		}
	}
	return count, nil
}

func relativeTo(root, path string) (string, bool) {
	if len(path) > len(root)+1 && path[:len(root)] == root && path[len(root)] == '/' {
		return path[len(root)+1:], true
	}
	return "", false
}
