// Package lint assembles simlint, the simulator's invariant suite:
// project-specific analyzers on the cross-package mini go/analysis
// framework in internal/lint/analysis. See the package docs of detlint,
// errlint, unitlint, contractlint, paramlint, statelint, sharelint, and
// sanlint for the invariant each one guards, DESIGN.md §10 for the
// catalog, and README.md ("Static analysis & invariants") for the
// suppression directives.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/contractlint"
	"bingo/internal/lint/detlint"
	"bingo/internal/lint/errlint"
	"bingo/internal/lint/hotlint"
	"bingo/internal/lint/locklint"
	"bingo/internal/lint/paramlint"
	"bingo/internal/lint/purelint"
	"bingo/internal/lint/sanlint"
	"bingo/internal/lint/sharelint"
	"bingo/internal/lint/statelint"
	"bingo/internal/lint/unitlint"
)

// Suite returns the full analyzer suite in stable (alphabetical) order.
// Fact-producing prerequisites (sharelint's lock facts, the effects
// summaries) are not listed — the scheduler pulls them in through
// Requires.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		contractlint.Analyzer,
		detlint.Analyzer,
		errlint.Analyzer,
		hotlint.Analyzer,
		locklint.Analyzer,
		paramlint.Analyzer,
		purelint.Analyzer,
		sanlint.Analyzer,
		sharelint.Analyzer,
		statelint.Analyzer,
		unitlint.Analyzer,
	}
}

// Options configures one Check run.
type Options struct {
	// Analyzers to run; nil means the full Suite.
	Analyzers []*analysis.Analyzer
	// Tests also analyzes each package's _test.go compilation units (the
	// in-package unit and the external package_test unit).
	Tests bool
	// San runs a second pass with the `san` build tag, so the sanitizer's
	// gated files (sancheck_san.go and friends) are analyzed too.
	// Duplicate findings from files shared by both configurations are
	// deduplicated.
	San bool
	// JSON switches the output from "path:line:col: message [analyzer]"
	// lines to a single JSON document that also includes suppressed
	// findings, marked with their suppression reason.
	JSON bool
	// UnusedSuppressions reports //lint:ignore and //lint:file-ignore
	// directives (for analyzers in this run) that no longer suppress any
	// finding; they count as findings.
	UnusedSuppressions bool
	// SARIF switches the output to a SARIF 2.1.0 log for code-scanning
	// upload. Like JSON, it includes suppressed findings (carried as
	// inSource suppressions). Takes precedence over JSON.
	SARIF bool
	// FactCache names a directory for persisting per-package analysis
	// results (findings, directives, exported facts) keyed by a content
	// hash of the package's import closure and the run configuration.
	// Packages whose key is unchanged are replayed, not re-analyzed.
	// Empty disables caching. Designed for whole-module runs: packages
	// analyzed only as dependencies of a narrow pattern are not cached.
	FactCache string
}

// Finding is one diagnostic with its position resolved, as emitted in
// -json output. File is relative to the module root.
type Finding struct {
	File         string `json:"file"`
	Line         int    `json:"line"`
	Col          int    `json:"col"`
	Analyzer     string `json:"analyzer"`
	Message      string `json:"message"`
	Suppressed   bool   `json:"suppressed,omitempty"`
	SuppressedBy string `json:"suppressedBy,omitempty"`
}

// Check loads every package matched by patterns (relative to moduleRoot)
// and runs the configured analyzers, writing findings to w. It returns
// the number of actionable findings: unsuppressed diagnostics plus, when
// requested, unused suppression directives. Suppressed findings appear
// (marked) only in JSON output.
func Check(w io.Writer, moduleRoot string, patterns []string, opts Options) (int, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Suite()
	}
	findings, dirs, err := runConfig(moduleRoot, nil, patterns, analyzers, opts.Tests, opts.FactCache)
	if err != nil {
		return 0, err
	}
	if opts.San {
		sanFindings, sanDirs, err := runConfig(moduleRoot, []string{"san"}, patterns, analyzers, opts.Tests, opts.FactCache)
		if err != nil {
			return 0, err
		}
		findings = append(findings, sanFindings...)
		dirs = append(dirs, sanDirs...)
	}
	findings = dedupeFindings(findings)
	if opts.UnusedSuppressions {
		findings = append(findings, unusedSuppressions(moduleRoot, dirs, analyzers)...)
	}
	sortFindings(findings)

	count := 0
	for _, f := range findings {
		if !f.Suppressed {
			count++
		}
	}
	if opts.SARIF {
		docs := map[string]string{
			"unused-suppression": "a //lint:ignore or //lint:file-ignore directive that no longer suppresses any finding",
		}
		for _, a := range analyzers {
			docs[a.Name] = firstLine(a.Doc)
		}
		if err := writeSARIF(w, findings, docs); err != nil {
			return count, err
		}
		return count, nil
	}
	if opts.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Findings []Finding `json:"findings"`
		}{Findings: findings}); err != nil {
			return count, err
		}
		return count, nil
	}
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
	return count, nil
}

// runConfig analyzes patterns under one build configuration (tag set) and
// returns resolved findings plus the suppression directives seen. With a
// cache directory, packages whose content key is unchanged are replayed
// from their cached entry (their facts seeded for dependents) instead of
// re-analyzed, and fresh results are stored back.
func runConfig(moduleRoot string, tags, patterns []string, analyzers []*analysis.Analyzer, tests bool, cacheDir string) ([]Finding, []*analysis.Directive, error) {
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		return nil, nil, err
	}
	loader.Tags = tags
	runner, err := analysis.NewRunner(loader, analyzers)
	if err != nil {
		return nil, nil, err
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, nil, err
	}
	var cache *factCache
	if cacheDir != "" {
		cache, err = newFactCache(cacheDir, moduleRoot, loader.ModulePath, tags, tests, analyzers)
		if err != nil {
			return nil, nil, err
		}
	}
	// Seed every hit before running any miss: a miss may import a hit
	// package and must find its facts already in the store.
	hits := map[string]*cacheEntry{}
	if cache != nil {
		for _, path := range paths {
			if e, ok := cache.load(path); ok {
				hits[path] = e
				runner.Seed(path, e.Facts)
			}
		}
	}
	var findings []Finding
	var dirs []*analysis.Directive
	missFindings := map[string][]Finding{}
	for _, path := range paths {
		if e := hits[path]; e != nil {
			findings = append(findings, e.Findings...)
			dirs = append(dirs, fromCachedDirectives(moduleRoot, e.Directives)...)
			continue
		}
		diags, err := runner.Package(path)
		if err != nil {
			return nil, nil, err
		}
		if tests {
			testDiags, err := runner.TestUnits(path)
			if err != nil {
				return nil, nil, err
			}
			diags = append(diags, testDiags...)
		}
		var pkgFindings []Finding
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			pkgFindings = append(pkgFindings, Finding{
				File:         relPath(moduleRoot, pos.Filename),
				Line:         pos.Line,
				Col:          pos.Column,
				Analyzer:     d.Analyzer,
				Message:      d.Message,
				Suppressed:   d.Suppressed,
				SuppressedBy: d.SuppressedBy,
			})
		}
		findings = append(findings, pkgFindings...)
		if cache != nil {
			missFindings[path] = pkgFindings
		}
	}
	liveDirs := runner.Directives()
	dirs = append(dirs, liveDirs...)
	if cache != nil {
		// Directives carry no package attribution; group the live ones by
		// directory (a package's units all live in its directory).
		byDir := map[string][]*analysis.Directive{}
		for _, d := range liveDirs {
			byDir[filepath.Dir(d.File)] = append(byDir[filepath.Dir(d.File)], d)
		}
		for path, pkgFindings := range missFindings {
			dir, ok := cache.pkgDir(path)
			if !ok {
				continue
			}
			e := &cacheEntry{
				Findings:   pkgFindings,
				Directives: toCachedDirectives(moduleRoot, byDir[dir]),
				Facts:      runner.ExportedFacts(path),
			}
			if err := cache.store(path, e); err != nil {
				return nil, nil, fmt.Errorf("factcache: storing %s: %w", path, err)
			}
		}
	}
	return findings, dirs, nil
}

// dedupeFindings collapses findings reported identically by more than one
// build configuration (untagged files are analyzed by both the default
// and the san pass). A finding suppressed in either pass stays marked.
func dedupeFindings(findings []Finding) []Finding {
	type key struct {
		file          string
		line, col     int
		analyzer, msg string
	}
	idx := map[key]int{}
	out := findings[:0:0]
	for _, f := range findings {
		k := key{f.File, f.Line, f.Col, f.Analyzer, f.Message}
		if i, ok := idx[k]; ok {
			if f.Suppressed && !out[i].Suppressed {
				out[i].Suppressed = true
				out[i].SuppressedBy = f.SuppressedBy
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, f)
	}
	return out
}

// unusedSuppressions turns directives that suppressed nothing in any
// configuration into findings. Usage is merged across configurations
// first: a directive used only under -tags=san is not stale. Directives
// naming analyzers outside this run are skipped — a partial run proves
// nothing about them.
func unusedSuppressions(moduleRoot string, dirs []*analysis.Directive, analyzers []*analysis.Analyzer) []Finding {
	inRun := map[string]bool{}
	for _, a := range analyzers {
		inRun[a.Name] = true
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	merged := map[key]*analysis.Directive{}
	used := map[key]bool{}
	for _, d := range dirs {
		k := key{d.File, d.Line, d.Analyzer}
		merged[k] = d
		used[k] = used[k] || d.Used
	}
	keys := make([]key, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		if keys[i].line != keys[j].line {
			return keys[i].line < keys[j].line
		}
		return keys[i].analyzer < keys[j].analyzer
	})
	var out []Finding
	for _, k := range keys {
		d := merged[k]
		if used[k] || !inRun[d.Analyzer] {
			continue
		}
		kind := "ignore"
		if d.FileWide {
			kind = "file-ignore"
		}
		out = append(out, Finding{
			File:     relPath(moduleRoot, d.File),
			Line:     d.Line,
			Col:      d.Col,
			Analyzer: "unused-suppression",
			Message:  fmt.Sprintf("//lint:%s %s no longer suppresses anything; delete it (reason was: %s)", kind, d.Analyzer, d.Reason),
		})
	}
	return out
}

func sortFindings(findings []Finding) {
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

func relPath(root, path string) string {
	if len(path) > len(root)+1 && path[:len(root)] == root && path[len(root)] == '/' {
		return path[len(root)+1:]
	}
	return path
}
