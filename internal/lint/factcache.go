package lint

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"bingo/internal/lint/analysis"
)

// The fact cache makes repeated simlint runs incremental: each package's
// analysis output — resolved findings, suppression directives, and the
// gob-encoded facts its analyzers exported — is persisted keyed by a
// content hash of everything that could change that output. On a later
// run, a package whose key is unchanged is not re-analyzed: its facts
// are seeded into the runner (so dependents still see them) and its
// findings replayed verbatim.
//
// The key covers, transitively: the package's own source (test files
// included, since test units are analyzed too), the source of every
// module-local package reachable through its imports (cross-package
// analyzers like hotlint and locklint read the whole closure's facts),
// the build tags and tests flag of the run, the analyzer roster, the
// running Go version, and a hash of the lint suite's own source tree —
// editing an analyzer invalidates everything it ever produced. What the
// key does NOT cover is packages reachable only as *importers* of this
// one; no analyzer's findings for a package depend on its dependents,
// so those edges are deliberately left out of the hash.
//
// Entries are one file per (package, tag set), self-replacing: a stale
// entry is overwritten by the fresh result, so the cache directory never
// grows beyond one entry per package per configuration.

// cacheEntry is the persisted analysis output of one package unit set
// (the package plus, when enabled, its test units).
type cacheEntry struct {
	// Key is the content key the entry was stored under; a lookup whose
	// recomputed key differs treats the entry as a miss.
	Key string
	// Findings are the package's resolved findings, module-relative.
	Findings []Finding
	// Directives are the suppression directives seen in the package's
	// units, with usage marks, module-relative.
	Directives []cachedDirective
	// Facts maps analyzer name to the encoded fact blob the analyzer
	// exported for this package.
	Facts map[string][]byte
}

// cachedDirective is analysis.Directive flattened for storage: no
// token.Pos (meaningless across runs), file path module-relative.
type cachedDirective struct {
	File     string
	Line     int
	Col      int
	Analyzer string
	Reason   string
	FileWide bool
	Used     bool
}

func toCachedDirectives(moduleRoot string, dirs []*analysis.Directive) []cachedDirective {
	out := make([]cachedDirective, 0, len(dirs))
	for _, d := range dirs {
		out = append(out, cachedDirective{
			File:     relPath(moduleRoot, d.File),
			Line:     d.Line,
			Col:      d.Col,
			Analyzer: d.Analyzer,
			Reason:   d.Reason,
			FileWide: d.FileWide,
			Used:     d.Used,
		})
	}
	return out
}

func fromCachedDirectives(moduleRoot string, dirs []cachedDirective) []*analysis.Directive {
	out := make([]*analysis.Directive, 0, len(dirs))
	for _, d := range dirs {
		out = append(out, &analysis.Directive{
			File:     filepath.Join(moduleRoot, filepath.FromSlash(d.File)),
			Line:     d.Line,
			Col:      d.Col,
			Analyzer: d.Analyzer,
			Reason:   d.Reason,
			FileWide: d.FileWide,
			Used:     d.Used,
		})
	}
	return out
}

// factCache computes content keys and loads/stores entries for one run
// configuration (module, tag set, tests flag, analyzer roster).
type factCache struct {
	dir        string
	moduleRoot string
	modulePath string
	suffix     string // per-configuration entry-file suffix (tag set)

	salt    []byte            // configuration hash mixed into every key
	own     map[string][]byte // import path → own-source hash
	imports map[string][]string
	keys    map[string]string
}

// newFactCache opens (creating if needed) the cache directory and
// precomputes the configuration salt.
func newFactCache(dir, moduleRoot, modulePath string, tags []string, tests bool, analyzers []*analysis.Analyzer) (*factCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("factcache: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "go=%s\ntags=%s\ntests=%v\n", runtime.Version(), strings.Join(tags, ","), tests)
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer=%s\n", a.Name)
	}
	if err := hashTree(h, filepath.Join(moduleRoot, "internal/lint")); err != nil {
		return nil, fmt.Errorf("factcache: hashing lint suite: %w", err)
	}
	suffix := ""
	if len(tags) > 0 {
		suffix = "-" + strings.Join(tags, "-")
	}
	return &factCache{
		dir:        dir,
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		suffix:     suffix,
		salt:       h.Sum(nil),
		own:        map[string][]byte{},
		imports:    map[string][]string{},
		keys:       map[string]string{},
	}, nil
}

// hashTree mixes every .go file under root (recursively, skipping dot
// and underscore entries) into h. A missing root contributes nothing:
// the suite may be analyzed from a checkout without its own source (the
// Go version and analyzer roster still salt the key).
func hashTree(h interface{ Write([]byte) (int, error) }, root string) error {
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(h, "file=%s len=%d\n", path, len(data))
		_, _ = h.Write(data) // hash.Hash.Write never returns an error
		return nil
	})
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (c *factCache) pkgDir(importPath string) (string, bool) {
	if importPath == c.modulePath {
		return c.moduleRoot, true
	}
	rest, ok := strings.CutPrefix(importPath, c.modulePath+"/")
	if !ok {
		return "", false
	}
	return filepath.Join(c.moduleRoot, filepath.FromSlash(rest)), true
}

// ownHash hashes a package's own .go source — test files included,
// because test units are part of the cached output — plus the file
// names, so renames invalidate.
func (c *factCache) ownHash(importPath string) ([]byte, error) {
	if sum, ok := c.own[importPath]; ok {
		return sum, nil
	}
	dir, ok := c.pkgDir(importPath)
	if !ok {
		return nil, fmt.Errorf("factcache: %s is outside module %s", importPath, c.modulePath)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(h, "file=%s len=%d\n", name, len(data))
		_, _ = h.Write(data) // hash.Hash.Write never returns an error
	}
	sum := h.Sum(nil)
	c.own[importPath] = sum
	return sum, nil
}

// moduleImports lists importPath's module-local imports, across every
// .go file in the directory (test files too: the external test unit's
// imports feed analyzed units and so belong in the key). Parsed with
// ImportsOnly against a throwaway FileSet — this never type-checks.
func (c *factCache) moduleImports(importPath string) ([]string, error) {
	if imps, ok := c.imports[importPath]; ok {
		return imps, nil
	}
	dir, ok := c.pkgDir(importPath)
	if !ok {
		return nil, fmt.Errorf("factcache: %s is outside module %s", importPath, c.modulePath)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var imps []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			// Unparseable files fail analysis anyway; for keying purposes
			// their content hash (ownHash) is what matters.
			continue
		}
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if p != c.modulePath && !strings.HasPrefix(p, c.modulePath+"/") {
				continue
			}
			if p == importPath || seen[p] {
				continue
			}
			seen[p] = true
			imps = append(imps, p)
		}
	}
	sort.Strings(imps)
	c.imports[importPath] = imps
	return imps, nil
}

// key computes importPath's content key: the configuration salt plus the
// own-source hash of every package in its import closure (self
// included). The closure walk tolerates cycles (external test units can
// create them) by collecting a reachable set rather than recursing on
// key values.
func (c *factCache) key(importPath string) (string, error) {
	if k, ok := c.keys[importPath]; ok {
		return k, nil
	}
	reach := map[string]bool{}
	var visit func(p string) error
	visit = func(p string) error {
		if reach[p] {
			return nil
		}
		reach[p] = true
		imps, err := c.moduleImports(p)
		if err != nil {
			return err
		}
		for _, imp := range imps {
			if err := visit(imp); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(importPath); err != nil {
		return "", err
	}
	paths := make([]string, 0, len(reach))
	for p := range reach {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := sha256.New()
	_, _ = h.Write(c.salt) // hash.Hash.Write never returns an error
	for _, p := range paths {
		sum, err := c.ownHash(p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "pkg=%s\n", p)
		_, _ = h.Write(sum) // hash.Hash.Write never returns an error
	}
	k := hex.EncodeToString(h.Sum(nil))
	c.keys[importPath] = k
	return k, nil
}

// entryPath maps an import path to its entry file: one file per package
// per tag set, so fresh results replace stale ones in place.
func (c *factCache) entryPath(importPath string) string {
	return filepath.Join(c.dir, strings.ReplaceAll(importPath, "/", "_")+c.suffix+".gob")
}

// load returns the cached entry for importPath if one exists and its key
// matches the package's current content key. Unreadable or undecodable
// entries are silently misses — the store below replaces them.
func (c *factCache) load(importPath string) (*cacheEntry, bool) {
	k, err := c.key(importPath)
	if err != nil {
		return nil, false
	}
	f, err := os.Open(c.entryPath(importPath))
	if err != nil {
		return nil, false
	}
	defer func() { _ = f.Close() }() // read-only; a close error loses no data
	var e cacheEntry
	if err := gob.NewDecoder(f).Decode(&e); err != nil {
		return nil, false
	}
	if e.Key != k {
		return nil, false
	}
	return &e, true
}

// store persists entry under importPath's current content key, via a
// temp file + rename so a crashed run never leaves a torn entry.
func (c *factCache) store(importPath string, e *cacheEntry) error {
	k, err := c.key(importPath)
	if err != nil {
		return err
	}
	e.Key = k
	tmp, err := os.CreateTemp(c.dir, ".entry-*")
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(e); err != nil {
		_ = tmp.Close()           // already failing: the encode error wins
		_ = os.Remove(tmp.Name()) // best-effort cleanup
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup
		return err
	}
	return os.Rename(tmp.Name(), c.entryPath(importPath))
}
