// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations embedded in the fixtures, mirroring
// golang.org/x/tools/go/analysis/analysistest on this repo's mini
// framework.
//
// A fixture file marks each line where a diagnostic is expected with a
// trailing comment:
//
//	pages[a>>12] = true // want `raw page shift`
//
// The backquoted text is a regular expression matched against the
// diagnostic message; several `want` comments may share a line by
// repeating the backquoted block:
//
//	x, y := f() // want `first` `second`
//
// Lines without a want comment must produce no diagnostic. Suppression
// directives (//lint:ignore) are honored exactly as in the real driver, so
// fixtures also lock down the suppression path.
package analysistest

import (
	"regexp"
	"testing"

	"bingo/internal/lint/analysis"
)

var (
	wantRe       = regexp.MustCompile("`([^`]*)`")
	wantMarkerRe = regexp.MustCompile(`^//\s*want\s`)
)

// Config customises a fixture run beyond Run's defaults.
type Config struct {
	// Tags are extra build tags satisfied while loading the fixture,
	// mirroring the real driver's one-loader-per-tag-set rule. Want
	// comments in files excluded by the configuration are not collected.
	Tags []string
	// Deps maps additional fixture packages — synthetic import path to
	// directory — that the package under test imports. Their analysis
	// happens first (facts committed, serialized, and re-imported), so a
	// fixture with a Deps entry exercises the cross-package fact path.
	Deps map[string]string
}

// Run loads the package in dir under the synthetic import path importPath
// (chosen by the caller to land inside the analyzer's package scope),
// applies the analyzer, and reports expectation mismatches on t. It
// returns the diagnostics for callers that want extra assertions.
func Run(t *testing.T, moduleRoot, dir, importPath string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	return RunConfig(t, moduleRoot, dir, importPath, a, Config{})
}

// RunConfig is Run with build tags and dependency fixture packages.
func RunConfig(t *testing.T, moduleRoot, dir, importPath string, a *analysis.Analyzer, cfg Config) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	loader.Tags = cfg.Tags
	loader.Override(importPath, dir)
	for depPath, depDir := range cfg.Deps {
		loader.Override(depPath, depDir)
	}
	runner, err := analysis.NewRunner(loader, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("runner: %v", err)
	}
	diags, err := runner.Package(importPath)
	if err != nil {
		t.Fatalf("run %s on %s (%s): %v", a.Name, importPath, dir, err)
	}
	pkg, err := loader.Load(importPath) // memoized: same unit the runner analyzed
	if err != nil {
		t.Fatalf("load %s (%s): %v", importPath, dir, err)
	}

	type key struct {
		file string
		line int
	}
	// Collect want expectations from comments.
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !wantComment(text) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	// Honor //lint:ignore directives as the real driver does: suppressed
	// diagnostics are invisible to want matching and to callers.
	visible := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			visible = append(visible, d)
		}
	}
	diags = visible

	matched := map[key]int{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		res := wants[k]
		if matched[k] >= len(res) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			continue
		}
		re := res[matched[k]]
		if !re.MatchString(d.Message) {
			t.Errorf("%s:%d: diagnostic %q does not match want /%s/", pos.Filename, pos.Line, d.Message, re)
		}
		matched[k]++
	}
	for k, res := range wants {
		if got := matched[k]; got < len(res) {
			for _, re := range res[got:] {
				t.Errorf("%s:%d: expected diagnostic matching /%s/, got none", k.file, k.line, re)
			}
		}
	}
	return diags
}

// wantComment reports whether the comment carries a want expectation.
func wantComment(text string) bool {
	return wantMarkerRe.MatchString(text)
}
