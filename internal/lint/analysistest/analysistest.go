// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations embedded in the fixtures, mirroring
// golang.org/x/tools/go/analysis/analysistest on this repo's mini
// framework.
//
// A fixture file marks each line where a diagnostic is expected with a
// trailing comment:
//
//	pages[a>>12] = true // want `raw page shift`
//
// The backquoted text is a regular expression matched against the
// diagnostic message; several `want` comments may share a line by
// repeating the backquoted block:
//
//	x, y := f() // want `first` `second`
//
// Lines without a want comment must produce no diagnostic. Suppression
// directives (//lint:ignore) are honored exactly as in the real driver, so
// fixtures also lock down the suppression path.
package analysistest

import (
	"regexp"
	"testing"

	"bingo/internal/lint/analysis"
)

var (
	wantRe       = regexp.MustCompile("`([^`]*)`")
	wantMarkerRe = regexp.MustCompile(`^//\s*want\s`)
)

// Run loads the package in dir under the synthetic import path importPath
// (chosen by the caller to land inside the analyzer's package scope),
// applies the analyzer, and reports expectation mismatches on t. It
// returns the diagnostics for callers that want extra assertions.
func Run(t *testing.T, moduleRoot, dir, importPath string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	loader.Override(importPath, dir)
	pkg, err := loader.Load(importPath)
	if err != nil {
		t.Fatalf("load %s (%s): %v", importPath, dir, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	// Collect want expectations from comments.
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !wantComment(text) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := map[key]int{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		res := wants[k]
		if matched[k] >= len(res) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			continue
		}
		re := res[matched[k]]
		if !re.MatchString(d.Message) {
			t.Errorf("%s:%d: diagnostic %q does not match want /%s/", pos.Filename, pos.Line, d.Message, re)
		}
		matched[k]++
	}
	for k, res := range wants {
		if got := matched[k]; got < len(res) {
			for _, re := range res[got:] {
				t.Errorf("%s:%d: expected diagnostic matching /%s/, got none", k.file, k.line, re)
			}
		}
	}
	return diags
}

// wantComment reports whether the comment carries a want expectation.
func wantComment(text string) bool {
	return wantMarkerRe.MatchString(text)
}
