package errlint_test

import (
	"path/filepath"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/errlint"
)

func TestErrlint(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "errlint")
	diags := analysistest.Run(t, root, dir, "bingo/internal/errfixture", errlint.Analyzer)
	if len(diags) == 0 {
		t.Fatal("fixture seeded violations but errlint reported nothing")
	}
}

// TestOutOfScopePackagesAreSkipped loads the same fixture under an import
// path outside bingo/internal/ and expects silence: errlint polices the
// simulator's own packages, not arbitrary code.
func TestOutOfScopePackagesAreSkipped(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "errlint")
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("example.com/outside", dir)
	pkg, err := loader.Load("example.com/outside")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{errlint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("errlint reported %d diagnostics outside its scope", len(diags))
	}
}
