// Package errlint flags silently discarded error returns in the
// simulator's internal and command packages. A simulator that swallows an error keeps
// producing numbers — wrong ones — so every error must either be handled
// or be discarded *loudly*:
//
//	_ = gz.Close() // already failing: the read error wins
//
// An explicit `_ =` discard is accepted only when an adjacent comment (on
// the same line or the line directly above) justifies it; a bare call
// statement or `defer` that drops an error is always reported. Directive
// comments (//lint:..., //go:...) and test-expectation comments (want)
// do not count as justification.
//
// Exemptions, because their error results are contractually uninteresting
// here: everything in package fmt (terminal output; nothing to do if the
// terminal is gone), and the methods of strings.Builder and bytes.Buffer,
// which are documented never to return a non-nil error.
package errlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"bingo/internal/lint/analysis"
)

// Analyzer reports silently discarded error returns.
var Analyzer = &analysis.Analyzer{
	Name: "errlint",
	Doc: "flag silently discarded error returns in internal and cmd packages; " +
		"explicit `_ =` discards need an adjacent justification comment",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), "bingo/internal/") &&
		!strings.HasPrefix(pass.Pkg.Path(), "bingo/cmd/") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue // tests surface failures through *testing.T, not returns
		}
		jl := justificationLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDroppedCall(pass, n.Call, "spawned ")
			case *ast.AssignStmt:
				checkBlankDiscard(pass, n, jl)
			}
			return true
		})
	}
	return nil
}

// checkDroppedCall reports a call statement whose results include an error
// nobody looks at.
func checkDroppedCall(pass *analysis.Pass, call *ast.CallExpr, kind string) {
	if !returnsError(pass, call) || exemptCallee(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"error returned by %s%s is silently discarded; handle it, or discard with `_ =` and a justification comment",
		kind, calleeLabel(call))
}

// checkBlankDiscard reports `_ = <error>` (and `x, _ := f()` with the
// blank in an error position) when no adjacent comment justifies it.
func checkBlankDiscard(pass *analysis.Pass, n *ast.AssignStmt, jl map[int]bool) {
	blankErr := func(lhs ast.Expr, t types.Type) bool {
		id, ok := lhs.(*ast.Ident)
		return ok && id.Name == "_" && t != nil && isErrorType(t)
	}
	discards := false
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Multi-value form: map tuple components to Lhs positions.
		tup, ok := pass.TypeOf(n.Rhs[0]).(*types.Tuple)
		if !ok || tup.Len() != len(n.Lhs) {
			return
		}
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok && exemptCallee(pass, call) {
			return
		}
		for i, lhs := range n.Lhs {
			if blankErr(lhs, tup.At(i).Type()) {
				discards = true
			}
		}
	} else if len(n.Rhs) == len(n.Lhs) {
		for i, lhs := range n.Lhs {
			if !blankErr(lhs, pass.TypeOf(n.Rhs[i])) {
				continue
			}
			if call, ok := n.Rhs[i].(*ast.CallExpr); ok && exemptCallee(pass, call) {
				continue
			}
			discards = true
		}
	}
	if !discards {
		return
	}
	line := pass.Fset.Position(n.Pos()).Line
	if jl[line] || jl[line-1] {
		return
	}
	pass.Reportf(n.Pos(),
		"error explicitly discarded without justification; add a comment on this line or the one above explaining why dropping it is safe")
}

// returnsError reports whether any result of call is the error type.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch t := pass.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	case nil:
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// exemptCallee reports whether call's target is on the allow list: any
// function in package fmt, or a method of strings.Builder / bytes.Buffer.
func exemptCallee(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return true
	case "strings", "bytes":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		name := recvTypeName(sig.Recv().Type())
		return name == "Builder" || name == "Buffer"
	}
	return false
}

// recvTypeName returns the named type behind a (possibly pointer) receiver.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// calleeLabel renders the called expression for the diagnostic.
func calleeLabel(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}

// nonJustifying matches comments that may share a line with a discard but
// carry no human rationale: lint directives, compiler directives, and the
// analysistest expectation marker.
var nonJustifying = regexp.MustCompile(`^//(lint:|go:|\s*want\s)`)

// justificationLines collects the lines on which a justification comment
// lives (for trailing comments, the line they trail).
func justificationLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if nonJustifying.MatchString(c.Text) {
				continue
			}
			start := fset.Position(c.Pos()).Line
			end := fset.Position(c.End()).Line
			for l := start; l <= end; l++ {
				lines[l] = true
			}
		}
	}
	return lines
}
