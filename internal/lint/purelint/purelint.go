// Package purelint keeps observation passive: functions reachable from
// the telemetry layer may read any simulator state they like, but must
// never write state owned outside telemetry — directly or through any
// call chain the effects call graph can follow. A probe that mutates
// what it measures turns every experiment into a Heisenberg experiment:
// enabling metrics shifts the numbers being measured, and A/B runs with
// different telemetry configurations silently diverge. Deliberate
// exceptions (a probe that resets its sampling seed inside a shared
// RNG, say) carry
//
//	//obs:write <reason>
//
// on the writing line (or the line above), so every mutation made under
// observation is justified on record.
//
// Roots are every non-test function declared in a telemetry package
// (import path containing "telemetry"). The walk crosses package
// boundaries through the effects summaries — class-hierarchy resolution
// for interface calls, signature matching for function values; see
// internal/lint/effects for the soundness caveats. Writes whose
// type-based owner is itself a telemetry package are allowed (the layer
// may maintain its own counters), and so are writes to the checkpoint
// codec's own state (bingo/internal/checkpoint's Writer cursor, Reader
// offset, schema accumulator): telemetry participates in save/restore,
// and mutating the serializer is what serializing is. Everything else
// module-local is a finding. Local sites are reported where they stand;
// sites reached in dependency packages are reported at the root's
// declaration with the remote position in the message.
package purelint

import (
	"strings"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/effects"
)

// Analyzer reports unwaived writes to non-telemetry state reachable
// from telemetry code, and malformed //obs: annotations.
var Analyzer = &analysis.Analyzer{
	Name: "purelint",
	Doc: "forbid functions reachable from telemetry from writing non-telemetry simulator state " +
		"without //obs:write <reason>",
	Requires: []*analysis.Analyzer{effects.Facts},
	Run:      run,
}

func telemetryPkg(path string) bool {
	return strings.Contains(path, "telemetry")
}

// allowedOwner reports whether state owned by pkg may be written from
// telemetry code: the telemetry layer's own state, and the checkpoint
// codec's cursor/schema bookkeeping (see the package doc).
func allowedOwner(pkg string) bool {
	return telemetryPkg(pkg) || pkg == "bingo/internal/checkpoint"
}

func run(pass *analysis.Pass) error {
	checkMarkers(pass)
	if !telemetryPkg(pass.Pkg.Path()) {
		return nil
	}
	w := effects.NewWorld(pass)
	here := pass.Pkg.Path()
	reportedLocal := map[string]bool{}
	reportedRemote := map[string]bool{}
	for _, key := range w.SortedKeys() {
		root := w.Funcs[key]
		if root.Pkg != here || root.Test || root.Tagged {
			continue
		}
		walkRoot(pass, w, root, reportedLocal, reportedRemote)
	}
	return nil
}

func walkRoot(pass *analysis.Pass, w *effects.World, root *effects.FuncEffects, local, remote map[string]bool) {
	here := pass.Pkg.Path()
	seen := map[string]bool{}
	var visit func(fe *effects.FuncEffects)
	visit = func(fe *effects.FuncEffects) {
		if seen[fe.Key] {
			return
		}
		seen[fe.Key] = true
		// The walk stops at other telemetry functions only when they live
		// in a different telemetry package — that package's own run owns
		// them. Within this package, every root is also walked as a callee.
		if fe.Pkg != here && telemetryPkg(fe.Pkg) {
			return
		}
		for i := range fe.Writes {
			site := &fe.Writes[i]
			if site.Waived != "" || allowedOwner(site.Pkg) {
				continue
			}
			if fe.Pkg == here && site.LocalPos().IsValid() {
				k := site.Pos + "\x00" + site.Target
				if !local[k] {
					local[k] = true
					pass.Reportf(site.LocalPos(),
						"telemetry code writes simulator state %s; observation must be passive — annotate //obs:write <reason> if deliberate",
						site.Target)
				}
			} else {
				k := root.Key + "\x00" + site.Pos + "\x00" + site.Target
				if !remote[k] {
					remote[k] = true
					pass.Reportf(root.LocalDecl(),
						"telemetry root %s reaches a write to simulator state %s in %s (%s); observation must be passive — annotate //obs:write <reason> there if deliberate",
						root.Key, site.Target, fe.Key, site.Pos)
				}
			}
		}
		// Spawn edges are followed too: a goroutine launched from a probe
		// still mutates on the observer's behalf.
		w.Edges(fe, func(_ *effects.Event, target string) {
			if next := w.Funcs[target]; next != nil {
				visit(next)
			}
		})
	}
	visit(root)
}

// checkMarkers validates every //obs: annotation in the package: write
// is the only verb, and the reason is mandatory.
func checkMarkers(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m, ok := analysis.ParseMarker(c.Text)
				if !ok || m.Domain != "obs" {
					continue
				}
				if m.Verb != "write" {
					pass.Reportf(c.Pos(), "unknown //obs: verb %q (want write)", m.Verb)
				} else if m.Arg == "" {
					pass.Reportf(c.Pos(), "//obs:write needs a reason")
				}
			}
		}
	}
}
