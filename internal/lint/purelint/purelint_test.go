package purelint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/purelint"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestPurelintFixture(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal/lint/testdata/src/purelint")
	analysistest.RunConfig(t, root, dir, "bingo/internal/telemetryfix", purelint.Analyzer, analysistest.Config{
		Deps: map[string]string{"bingo/internal/simfix": filepath.Join(dir, "dep")},
	})
}

// TestPurelintCatchesDroppedWaiver deletes Restore's body-level
// //obs:write waiver: the closure's write to simulator state must then
// surface as a finding.
func TestPurelintCatchesDroppedWaiver(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal/lint/testdata/src/purelint")
	src, err := os.ReadFile(filepath.Join(dir, "obsfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	dropped := 0
	for _, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "//obs:write checkpoint restore") {
			dropped++
			continue
		}
		kept = append(kept, line)
	}
	if dropped != 1 {
		t.Fatalf("mutation dropped %d lines, want exactly 1", dropped)
	}
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "obsfix.go"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/internal/telemetryfix", tmp)
	loader.Override("bingo/internal/simfix", filepath.Join(dir, "dep"))
	runner, err := analysis.NewRunner(loader, []*analysis.Analyzer{purelint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runner.Package("bingo/internal/telemetryfix")
	if err != nil {
		t.Fatal(err)
	}
	// The write lives in Restore's closure; with the waiver gone it must
	// be reported (locally, at the closure's assignment).
	for _, d := range diags {
		if strings.Contains(d.Message, "writes simulator state bingo/internal/simfix.Sim.Hits") {
			return
		}
	}
	t.Errorf("dropping the //obs:write waiver did not surface the covered write; got %d diagnostic(s)", len(diags))
}

// TestPurelintMarkerValidation polices the //obs: vocabulary.
func TestPurelintMarkerValidation(t *testing.T) {
	root := moduleRoot(t)
	tmp := t.TempDir()
	src := `package badobs

//obs:read something
func A() {}

//obs:write
func B() {}
`
	if err := os.WriteFile(filepath.Join(tmp, "badobs.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/internal/badobs", tmp)
	runner, err := analysis.NewRunner(loader, []*analysis.Analyzer{purelint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runner.Package("bingo/internal/badobs")
	if err != nil {
		t.Fatal(err)
	}
	var unknown, reasonless bool
	for _, d := range diags {
		if strings.Contains(d.Message, `unknown //obs: verb "read"`) {
			unknown = true
		}
		if strings.Contains(d.Message, "//obs:write needs a reason") {
			reasonless = true
		}
	}
	if !unknown || !reasonless {
		t.Errorf("marker validation incomplete: unknown=%v reasonless=%v in %d diagnostic(s)", unknown, reasonless, len(diags))
	}
}
