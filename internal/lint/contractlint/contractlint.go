// Package contractlint enforces the documentation half of the
// concurrency contracts in the packages that actually run goroutines:
// internal/harness (the parallel experiment engine) and internal/system
// (the simulated machine the engine runs many instances of concurrently).
// Two rules:
//
//  1. Exported package-level vars are shared mutable state by default, so
//     their doc comment must state the contract — that they are immutable
//     / read-only after init, or which lock guards them. (Findings are
//     fixed by writing the contract down, which is the point.)
//
//  2. Exported types whose struct carries a lock (sync.Mutex, RWMutex,
//     WaitGroup, Once, sync.Map — directly or via an embedded value,
//     including one imported from another package) must likewise document
//     their concurrency contract.
//
// Whether a type carries a lock is answered by sharelint's LockFact,
// imported across package boundaries, so a harness type that embeds a
// mutex-bearing type from elsewhere in the module is caught too. The
// by-value copy rule that used to live here moved to sharelint, which
// applies it module-wide with the same fact.
//
// A doc comment "states a contract" when it mentions concurrency
// vocabulary: "concurren*", "goroutine", "mutex", "lock", "immutable",
// "read-only"/"read only", "not safe", or "must not be mutated".
package contractlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/sharelint"
)

// Analyzer enforces documented concurrency contracts in harness/system.
var Analyzer = &analysis.Analyzer{
	Name: "contractlint",
	Doc: "require documented concurrency contracts on exported mutable state in " +
		"internal/harness and internal/system",
	Requires: []*analysis.Analyzer{sharelint.Facts},
	Run:      run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Package) {
			continue // test files export no API to document
		}
		for _, decl := range f.Decls {
			if decl, ok := decl.(*ast.GenDecl); ok {
				checkGenDecl(pass, decl)
			}
		}
	}
	return nil
}

// inScope limits the analyzer to the concurrent packages. Matching by
// path segment keeps analysistest fixtures (loaded under synthetic
// bingo/internal/...harness... paths) in scope.
func inScope(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "bingo/internal/") &&
		(strings.Contains(pkgPath, "harness") || strings.Contains(pkgPath, "system"))
}

var contractWords = []string{
	"concurren", "goroutine", "mutex", "lock", "immutable",
	"read-only", "read only", "not safe", "must not be mutated",
}

func statesContract(docs ...*ast.CommentGroup) bool {
	for _, doc := range docs {
		if doc == nil {
			continue
		}
		text := strings.ToLower(doc.Text())
		for _, w := range contractWords {
			if strings.Contains(text, w) {
				return true
			}
		}
	}
	return false
}

func checkGenDecl(pass *analysis.Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		switch spec := spec.(type) {
		case *ast.ValueSpec:
			if decl.Tok != token.VAR {
				continue // consts are immutable by construction
			}
			for _, name := range spec.Names {
				if !name.IsExported() {
					continue
				}
				if !statesContract(spec.Doc, decl.Doc) {
					pass.Reportf(name.Pos(), "exported package-level var %s is shared mutable state; its doc comment must state the concurrency contract (e.g. \"immutable after init\" or which lock guards it)", name.Name)
				}
			}
		case *ast.TypeSpec:
			if !spec.Name.IsExported() {
				continue
			}
			obj, ok := pass.ObjectOf(spec.Name).(*types.TypeName)
			if !ok || !sharelint.HoldsLock(pass, obj.Type()) {
				continue
			}
			if !statesContract(spec.Doc, decl.Doc) {
				pass.Reportf(spec.Name.Pos(), "exported type %s holds a lock but its doc comment states no concurrency contract", spec.Name.Name)
			}
		}
	}
}
