// Package contractlint enforces the concurrency contracts of the packages
// that actually run goroutines: internal/harness (the parallel experiment
// engine) and internal/system (the simulated machine the engine runs many
// instances of concurrently). Three rules:
//
//  1. Exported package-level vars are shared mutable state by default, so
//     their doc comment must state the contract — that they are immutable
//     / read-only after init, or which lock guards them. (Findings are
//     fixed by writing the contract down, which is the point.)
//
//  2. Exported types whose struct carries a lock (sync.Mutex, RWMutex,
//     WaitGroup, Once, sync.Map — directly or via an embedded value) must
//     likewise document their concurrency contract.
//
//  3. Lock-bearing types must not be copied: methods with value receivers
//     and function parameters passed by value both duplicate the lock,
//     which is the classic deadlock/lost-update footgun `go vet`'s
//     copylocks only partially covers.
//
// A doc comment "states a contract" when it mentions concurrency
// vocabulary: "concurren*", "goroutine", "mutex", "lock", "immutable",
// "read-only"/"read only", "not safe", or "must not be mutated".
package contractlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bingo/internal/lint/analysis"
)

// Analyzer enforces documented concurrency contracts in harness/system.
var Analyzer = &analysis.Analyzer{
	Name: "contractlint",
	Doc: "require documented concurrency contracts on exported mutable state in " +
		"internal/harness and internal/system, and forbid by-value copies of lock-bearing types",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	lb := &lockBearing{memo: map[types.Type]bool{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				checkGenDecl(pass, lb, decl)
			case *ast.FuncDecl:
				checkFuncDecl(pass, lb, decl)
			}
		}
	}
	return nil
}

// inScope limits the analyzer to the concurrent packages. Matching by
// path segment keeps analysistest fixtures (loaded under synthetic
// bingo/internal/...harness... paths) in scope.
func inScope(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "bingo/internal/") &&
		(strings.Contains(pkgPath, "harness") || strings.Contains(pkgPath, "system"))
}

var contractWords = []string{
	"concurren", "goroutine", "mutex", "lock", "immutable",
	"read-only", "read only", "not safe", "must not be mutated",
}

func statesContract(docs ...*ast.CommentGroup) bool {
	for _, doc := range docs {
		if doc == nil {
			continue
		}
		text := strings.ToLower(doc.Text())
		for _, w := range contractWords {
			if strings.Contains(text, w) {
				return true
			}
		}
	}
	return false
}

func checkGenDecl(pass *analysis.Pass, lb *lockBearing, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		switch spec := spec.(type) {
		case *ast.ValueSpec:
			if decl.Tok != token.VAR {
				continue // consts are immutable by construction
			}
			for _, name := range spec.Names {
				if !name.IsExported() {
					continue
				}
				if !statesContract(spec.Doc, decl.Doc) {
					pass.Reportf(name.Pos(), "exported package-level var %s is shared mutable state; its doc comment must state the concurrency contract (e.g. \"immutable after init\" or which lock guards it)", name.Name)
				}
			}
		case *ast.TypeSpec:
			if !spec.Name.IsExported() {
				continue
			}
			obj, ok := pass.ObjectOf(spec.Name).(*types.TypeName)
			if !ok || !lb.holdsLock(obj.Type()) {
				continue
			}
			if !statesContract(spec.Doc, decl.Doc) {
				pass.Reportf(spec.Name.Pos(), "exported type %s holds a lock but its doc comment states no concurrency contract", spec.Name.Name)
			}
		}
	}
}

func checkFuncDecl(pass *analysis.Pass, lb *lockBearing, decl *ast.FuncDecl) {
	if decl.Recv != nil {
		for _, field := range decl.Recv.List {
			checkByValue(pass, lb, field, "receiver of method "+decl.Name.Name)
		}
	}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			checkByValue(pass, lb, field, "parameter of "+decl.Name.Name)
		}
	}
}

func checkByValue(pass *analysis.Pass, lb *lockBearing, field *ast.Field, where string) {
	t := pass.TypeOf(field.Type)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if lb.holdsLock(t) {
		pass.Reportf(field.Type.Pos(), "%s copies %s by value, duplicating the lock it holds; use a pointer", where, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

// lockBearing decides whether a type transitively contains a lock by
// value, memoized because the same named types recur across declarations.
type lockBearing struct {
	memo map[types.Type]bool
}

var syncNoCopyTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Map": true, "Cond": true, "Pool": true,
}

func (lb *lockBearing) holdsLock(t types.Type) bool {
	if v, ok := lb.memo[t]; ok {
		return v
	}
	lb.memo[t] = false // break recursive type cycles
	v := lb.compute(t)
	lb.memo[t] = v
	return v
}

func (lb *lockBearing) compute(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncNoCopyTypes[obj.Name()] {
			return true
		}
		return lb.holdsLock(t.Underlying())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lb.holdsLock(t.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return lb.holdsLock(t.Elem())
	}
	return false
}
