package contractlint_test

import (
	"path/filepath"
	"testing"

	"bingo/internal/lint/analysis"
	"bingo/internal/lint/analysistest"
	"bingo/internal/lint/contractlint"
)

func TestContractlint(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "contractlint")
	diags := analysistest.Run(t, root, dir, "bingo/internal/harnessfixture", contractlint.Analyzer)
	if len(diags) == 0 {
		t.Fatal("fixture seeded violations but contractlint reported nothing")
	}
}

// TestScopeIsHarnessAndSystemOnly loads the same fixture under a
// non-concurrent package path; contractlint must stay silent there.
func TestScopeIsHarnessAndSystemOnly(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "contractlint")
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.Override("bingo/internal/cachefixture", dir)
	pkg, err := loader.Load("bingo/internal/cachefixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{contractlint.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("contractlint reported %d diagnostics outside harness/system", len(diags))
	}
}
