//go:build !san

package dram

// sanState is the per-DRAM checker state of the runtime invariant
// sanitizer. Without the `san` build tag it is empty and the hooks are
// no-ops the compiler inlines away. See internal/san and sancheck_san.go.
type sanState struct{}

func (d *DRAM) sanInit() {}

func (d *DRAM) sanAfterAccess(now uint64, ci, bi int, prevRow, row, rowLat, start, busStart, done, prevBusFree uint64) {
}
