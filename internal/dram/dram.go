// Package dram models main memory timing: per-channel data buses with
// finite bandwidth, per-bank row buffers with open-page policy, and the
// activate/precharge/CAS latency components. The default configuration
// matches the paper's evaluation platform — two channels, 37.5 GB/s peak
// bandwidth, and ≈60 ns zero-load latency at a 4 GHz core clock.
package dram

import (
	"fmt"

	"bingo/internal/mem"
)

// Config holds the structural and timing parameters. All latencies are in
// core cycles.
type Config struct {
	Channels        int
	BanksPerChannel int
	RowBytes        uint64 // row-buffer size per bank
	TCAS            uint64 // column access (row hit) latency
	TRCD            uint64 // row activate latency
	TRP             uint64 // precharge latency
	TController     uint64 // fixed controller/queueing overhead
	BusCycles       uint64 // data-bus occupancy per 64 B transfer per channel
}

// Default4GHz returns the paper's memory system expressed in 4 GHz core
// cycles: 60 ns zero-load latency and 37.5 GB/s peak bandwidth over two
// channels (64 B / (18.75 GB/s) ≈ 3.4 ns ≈ 14 cycles of bus time).
func Default4GHz() Config {
	return Config{
		Channels:        2,
		BanksPerChannel: 16,
		RowBytes:        8192,
		TCAS:            56, // 14 ns
		TRCD:            56,
		TRP:             56,
		TController:     72, // 18 ns
		BusCycles:       14,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Channels <= 0 || !mem.IsPow2(c.Channels) {
		return fmt.Errorf("dram: channels %d must be a positive power of two", c.Channels)
	}
	if c.BanksPerChannel <= 0 || !mem.IsPow2(c.BanksPerChannel) {
		return fmt.Errorf("dram: banks/channel %d must be a positive power of two", c.BanksPerChannel)
	}
	if c.RowBytes < mem.BlockSize || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram: row size %d must be a power of two ≥ %d", c.RowBytes, mem.BlockSize)
	}
	return nil
}

// Stats counts DRAM traffic and row-buffer behaviour.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowEmpty     uint64 // activate into a precharged bank
	RowConflicts uint64 // activate requiring a precharge first
	BusBusy      uint64 // total channel-bus busy cycles (all channels)
}

// Delta returns the counter-wise difference s - prev; with cumulative
// samples of the DRAM Stats this yields exact per-interval counts (the
// telemetry epoch series is built this way).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Reads:        s.Reads - prev.Reads,
		Writes:       s.Writes - prev.Writes,
		RowHits:      s.RowHits - prev.RowHits,
		RowEmpty:     s.RowEmpty - prev.RowEmpty,
		RowConflicts: s.RowConflicts - prev.RowConflicts,
		BusBusy:      s.BusBusy - prev.BusBusy,
	}
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

const noOpenRow = ^uint64(0)

type bank struct {
	openRow uint64
	freeAt  uint64
}

type channel struct {
	banks     []bank
	busFreeAt uint64
}

// DRAM is the memory backstop. It implements cache.Backstop. Not safe for
// concurrent use; the simulation loop is single-goroutine.
type DRAM struct {
	cfg   Config
	chans []channel
	//ckpt:skip derived geometry, recomputed from cfg in New
	chanShift uint
	//ckpt:skip derived geometry, recomputed from cfg in New
	chanMask uint64
	//ckpt:skip derived geometry, recomputed from cfg in New
	bankMask uint64
	//ckpt:skip derived geometry, recomputed from cfg in New
	rowShift uint
	stats    Stats
	//ckpt:skip checker scratch state, not simulation state; rebuilt as events replay
	san sanState // runtime invariant sanitizer (empty without -tags=san)
}

// New builds a DRAM model.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &DRAM{
		cfg:       cfg,
		chans:     make([]channel, cfg.Channels),
		chanShift: mem.BlockShift,
		chanMask:  uint64(cfg.Channels - 1),
		bankMask:  uint64(cfg.BanksPerChannel - 1),
		rowShift:  mem.Log2(cfg.RowBytes),
	}
	for i := range d.chans {
		d.chans[i].banks = make([]bank, cfg.BanksPerChannel)
		for b := range d.chans[i].banks {
			d.chans[i].banks[b].openRow = noOpenRow
		}
	}
	d.sanInit()
	return d, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *DRAM {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Stats returns a snapshot of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// ResetStats zeroes the counters (row-buffer and queue state persists).
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// Config returns the DRAM configuration.
func (d *DRAM) Config() Config { return d.cfg }

// decode maps a physical address to (channel, bank, row) indices. Channel
// bits sit just above the block offset so consecutive blocks stripe across
// channels; bank bits sit above the row so a row is contiguous in a bank.
func (d *DRAM) decode(addr mem.Addr) (ci, bi int, row uint64) {
	block := addr.BlockNumber()
	ci = int(block & d.chanMask)
	row = uint64(addr) >> d.rowShift
	bi = int(row & d.bankMask)
	return ci, bi, row >> mem.Log2(uint64(d.cfg.BanksPerChannel))
}

// Access models one 64 B transfer and returns its completion cycle. Writes
// go through the same row/bus machinery (the caller typically does not
// wait on the returned cycle for writebacks, but the bandwidth is
// consumed either way).
//
// Column accesses to an open row pipeline at the bus rate (tCCD), so a
// burst of row-buffer hits — the common case for spatial prefetches
// landing in one DRAM row — streams at full bandwidth instead of paying
// tCAS serially; only row activations occupy the bank for their full
// latency.
func (d *DRAM) Access(now uint64, addr mem.Addr, write bool) uint64 {
	ci, bi, row := d.decode(addr)
	ch := &d.chans[ci]
	bk := &ch.banks[bi]

	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}

	start := now + d.cfg.TController
	if bk.freeAt > start {
		start = bk.freeAt
	}

	prevRow := bk.openRow
	var rowLat uint64
	switch {
	case bk.openRow == row:
		d.stats.RowHits++
		rowLat = d.cfg.TCAS
	case bk.openRow == noOpenRow:
		d.stats.RowEmpty++
		rowLat = d.cfg.TRCD + d.cfg.TCAS
	default:
		d.stats.RowConflicts++
		rowLat = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
	}
	bk.openRow = row

	dataReady := start + rowLat
	busStart := dataReady
	prevBusFree := ch.busFreeAt
	if prevBusFree > busStart {
		busStart = prevBusFree
	}
	done := busStart + d.cfg.BusCycles
	ch.busFreeAt = done
	// The bank accepts the next column command after tCCD (≈ one bus
	// transfer); after an activation it is busy until the row is open.
	bk.freeAt = start + (rowLat - d.cfg.TCAS) + d.cfg.BusCycles
	d.stats.BusBusy += d.cfg.BusCycles
	d.sanAfterAccess(now, ci, bi, prevRow, row, rowLat, start, busStart, done, prevBusFree)
	return done
}

// NextEventAt returns the earliest cycle strictly after now at which a
// bank or channel-bus busy timer expires, or ^uint64(0) when every timer
// has already run out. It is the DRAM's contribution to the event
// engine's wakeup queue (see internal/sched): the model is passive —
// rows, timers, and counters change only inside Access — so timer
// expiries are its only time-driven transitions, and a clock skip that
// lands at or before the earliest of them can never jump over one.
func (d *DRAM) NextEventAt(now uint64) uint64 {
	next := ^uint64(0)
	for ci := range d.chans {
		ch := &d.chans[ci]
		if ch.busFreeAt > now && ch.busFreeAt < next {
			next = ch.busFreeAt
		}
		for bi := range ch.banks {
			if f := ch.banks[bi].freeAt; f > now && f < next {
				next = f
			}
		}
	}
	return next
}

// PeakBandwidthGBps returns the theoretical peak bandwidth implied by the
// configuration at the given core clock in GHz.
func (d *DRAM) PeakBandwidthGBps(coreGHz float64) float64 {
	perChannel := float64(mem.BlockSize) / (float64(d.cfg.BusCycles) / coreGHz) // bytes per ns
	return perChannel * float64(d.cfg.Channels)
}
