package dram

import (
	"testing"

	"bingo/internal/mem"
)

func testConfig() Config {
	return Config{
		Channels:        2,
		BanksPerChannel: 4,
		RowBytes:        4096,
		TCAS:            50,
		TRCD:            40,
		TRP:             30,
		TController:     10,
		BusCycles:       10,
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.Channels = 3 },
		func(c *Config) { c.BanksPerChannel = 0 },
		func(c *Config) { c.BanksPerChannel = 5 },
		func(c *Config) { c.RowBytes = 32 },
		func(c *Config) { c.RowBytes = 3000 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := Default4GHz().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestRowEmptyThenHit(t *testing.T) {
	d := MustNew(testConfig())
	// First access to a precharged bank: controller + RCD + CAS + bus.
	done := d.Access(0, 0, false)
	if want := uint64(10 + 40 + 50 + 10); done != want {
		t.Fatalf("row-empty access done at %d, want %d", done, want)
	}
	// Same row, long after: a row hit, no activation.
	done2 := d.Access(1000, 64*2, false) // same row (offset within row), same bank
	if want := uint64(1000 + 10 + 50 + 10); done2 != want {
		t.Fatalf("row-hit access done at %d, want %d", done2, want)
	}
	st := d.Stats()
	if st.RowEmpty != 1 || st.RowHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRowConflict(t *testing.T) {
	cfg := testConfig()
	d := MustNew(cfg)
	d.Access(0, 0, false)
	// Different row, same bank: rows of a bank are RowBytes apart with a
	// bank-interleave factor; row r of bank b lives at
	// addr = ((r*banks)+b) * RowBytes (given the decode function).
	conflictAddr := mem.Addr(uint64(cfg.BanksPerChannel) * cfg.RowBytes)
	done := d.Access(1000, conflictAddr, false)
	if want := uint64(1000 + 10 + 30 + 40 + 50 + 10); done != want {
		t.Fatalf("row-conflict done at %d, want %d", done, want)
	}
	if d.Stats().RowConflicts != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestRowHitsPipeline(t *testing.T) {
	d := MustNew(testConfig())
	d.Access(0, 0, false) // opens the row
	// Back-to-back row hits issued at the same cycle must stream at the
	// bus rate, not serialise at full CAS latency.
	t1 := d.Access(1000, 64*2, false)
	t2 := d.Access(1000, 64*4, false)
	t3 := d.Access(1000, 64*6, false)
	if t2-t1 != 10 || t3-t2 != 10 {
		t.Fatalf("row hits should pipeline at bus rate: %d %d %d", t1, t2, t3)
	}
}

func TestChannelStriping(t *testing.T) {
	d := MustNew(testConfig())
	// Consecutive blocks alternate channels, so two simultaneous accesses
	// to adjacent blocks do not share a bus.
	a := d.Access(0, 0, false)
	b := d.Access(0, 64, false)
	if a != b {
		t.Fatalf("adjacent blocks should land on independent channels: %d vs %d", a, b)
	}
	if d.Stats().BusBusy != 20 {
		t.Fatalf("BusBusy = %d", d.Stats().BusBusy)
	}
}

func TestBusSerialisesSameChannel(t *testing.T) {
	d := MustNew(testConfig())
	d.Access(0, 0, false)
	// Block 2 shares channel 0 but could be a row hit in the same bank;
	// the bus occupancy must still order the transfers.
	t1 := d.Access(0, 64*2, false)
	t2 := d.Access(0, 64*4, false)
	if t2 <= t1 {
		t.Fatalf("same-channel transfers must serialise on the bus: %d then %d", t1, t2)
	}
}

func TestWritesCounted(t *testing.T) {
	d := MustNew(testConfig())
	d.Access(0, 0, true)
	d.Access(0, 64, false)
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResetStats(t *testing.T) {
	d := MustNew(testConfig())
	d.Access(0, 0, false)
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats should zero counters")
	}
}

func TestRowHitRate(t *testing.T) {
	s := Stats{Reads: 3, Writes: 1, RowHits: 2}
	if s.RowHitRate() != 0.5 {
		t.Fatalf("RowHitRate = %v", s.RowHitRate())
	}
	if (Stats{}).RowHitRate() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}

func TestPeakBandwidth(t *testing.T) {
	d := MustNew(Default4GHz())
	got := d.PeakBandwidthGBps(4.0)
	// 2 channels × 64 B / 3.5 ns ≈ 36.6 GB/s — the paper's 37.5 GB/s.
	if got < 34 || got > 40 {
		t.Fatalf("peak bandwidth = %.1f GB/s, want ≈37.5", got)
	}
}

func TestZeroLoadLatencyRealistic(t *testing.T) {
	d := MustNew(Default4GHz())
	done := d.Access(0, 0, false)
	// Zero-load (row empty) at 4 GHz should be ≈50 ns = 200 cycles,
	// within the paper's 60 ns budget.
	if done < 150 || done > 280 {
		t.Fatalf("zero-load latency = %d cycles", done)
	}
}

func TestCompletionNeverBeforeMinimumLatency(t *testing.T) {
	d := MustNew(Default4GHz())
	min := Default4GHz().TController + Default4GHz().TCAS + Default4GHz().BusCycles
	addr := uint64(1)
	for i := 0; i < 2000; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		now := uint64(i) * 17
		done := d.Access(now, mem.Addr(addr%(1<<34)), i%4 == 0)
		if done < now+min {
			t.Fatalf("access at %d completed at %d, below the minimum latency %d", now, done, min)
		}
	}
}

func TestBandwidthConservation(t *testing.T) {
	// N same-channel transfers issued at once cannot finish faster than
	// N bus slots allow.
	cfg := testConfig()
	d := MustNew(cfg)
	const n = 200
	var last uint64
	for i := 0; i < n; i++ {
		// Blocks 2*i share channel 0 (block LSB selects the channel).
		last = d.Access(0, mem.Addr(uint64(2*i)<<mem.BlockShift), false)
	}
	if minimum := uint64(n) * cfg.BusCycles; last < minimum {
		t.Fatalf("%d transfers finished at %d, violating the %d-cycle bus bound", n, last, minimum)
	}
}

func TestStatsAccountEveryAccess(t *testing.T) {
	d := MustNew(testConfig())
	for i := 0; i < 500; i++ {
		d.Access(uint64(i)*3, mem.Addr(uint64(i*97)<<mem.BlockShift), i%3 == 0)
	}
	st := d.Stats()
	if st.Reads+st.Writes != 500 {
		t.Fatalf("accesses = %d", st.Reads+st.Writes)
	}
	if st.RowHits+st.RowEmpty+st.RowConflicts != 500 {
		t.Fatalf("row outcomes = %d", st.RowHits+st.RowEmpty+st.RowConflicts)
	}
	if st.BusBusy != 500*testConfig().BusCycles {
		t.Fatalf("bus busy = %d", st.BusBusy)
	}
}
