package dram

import (
	"testing"

	"bingo/internal/mem"
)

func BenchmarkAccessRowHits(b *testing.B) {
	d := MustNew(Default4GHz())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(uint64(i)*20, mem.Addr(uint64(i%32)<<mem.BlockShift), false)
	}
}

func BenchmarkAccessScattered(b *testing.B) {
	d := MustNew(Default4GHz())
	addr := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		d.Access(uint64(i)*20, mem.Addr(addr%(1<<32)), false)
	}
}
