package dram

import (
	"fmt"

	"bingo/internal/checkpoint"
)

// SaveState implements checkpoint.Checkpointable: traffic counters, then
// per-channel bus state and the flattened bank array (open row and
// busy-until cycle per bank).
func (d *DRAM) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	s := d.stats
	w.U64(s.Reads)
	w.U64(s.Writes)
	w.U64(s.RowHits)
	w.U64(s.RowEmpty)
	w.U64(s.RowConflicts)
	w.U64(s.BusBusy)

	busFree := make([]uint64, 0, len(d.chans))
	nb := len(d.chans) * d.cfg.BanksPerChannel
	openRows := make([]uint64, 0, nb)
	freeAts := make([]uint64, 0, nb)
	for ci := range d.chans {
		busFree = append(busFree, d.chans[ci].busFreeAt)
		for _, bk := range d.chans[ci].banks {
			openRows = append(openRows, bk.openRow)
			freeAts = append(freeAts, bk.freeAt)
		}
	}
	w.U64s(busFree)
	w.U64s(openRows)
	w.U64s(freeAts)
	return w.Err()
}

// LoadState implements checkpoint.Checkpointable; it requires a freshly
// built DRAM of the identical geometry.
func (d *DRAM) LoadState(r *checkpoint.Reader) error {
	if d.stats != (Stats{}) {
		return fmt.Errorf("dram: checkpoint restore requires a freshly built model")
	}
	r.Version(1)
	var s Stats
	s.Reads = r.U64()
	s.Writes = r.U64()
	s.RowHits = r.U64()
	s.RowEmpty = r.U64()
	s.RowConflicts = r.U64()
	s.BusBusy = r.U64()
	busFree := r.U64s()
	openRows := r.U64s()
	freeAts := r.U64s()
	if err := r.Err(); err != nil {
		return err
	}
	nb := len(d.chans) * d.cfg.BanksPerChannel
	if len(busFree) != len(d.chans) || len(openRows) != nb || len(freeAts) != nb {
		return fmt.Errorf("dram: snapshot geometry %d channels / %d banks, model has %d / %d",
			len(busFree), len(openRows), len(d.chans), nb)
	}
	for ci := range d.chans {
		d.chans[ci].busFreeAt = busFree[ci]
		for bi := range d.chans[ci].banks {
			i := ci*d.cfg.BanksPerChannel + bi
			d.chans[ci].banks[bi] = bank{openRow: openRows[i], freeAt: freeAts[i]}
		}
	}
	d.stats = s
	return nil
}
