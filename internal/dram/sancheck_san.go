//go:build san

package dram

import "bingo/internal/san"

// sanState is the per-DRAM checker state of the runtime invariant
// sanitizer (build tag `san`): per-channel bus-occupancy accounting used
// to prove the configured peak bandwidth is never exceeded, plus
// per-channel completion-monotonicity witnesses.
type sanState struct {
	chans []sanChannel
}

// sanChannel accumulates one channel's bus accounting.
type sanChannel struct {
	busBusy    uint64 // total bus cycles consumed on this channel
	firstStart uint64 // bus-start cycle of the channel's first transfer
	started    bool
	lastDone   uint64 // completion cycle of the most recent transfer
}

// sanInit sizes the per-channel accounting (called from New).
func (d *DRAM) sanInit() {
	d.san.chans = make([]sanChannel, d.cfg.Channels)
}

// sanAfterAccess verifies, after every transfer: bank state-machine
// legality, row hit/miss classification consistency, the per-channel
// bandwidth ceiling, and completion-time monotonicity.
func (d *DRAM) sanAfterAccess(now uint64, ci, bi int, prevRow, row, rowLat, start, busStart, done, prevBusFree uint64) {
	if !san.Enabled() {
		return
	}
	ch := &d.chans[ci]
	bk := &ch.banks[bi]

	// Row classification consistency: the latency charged must match the
	// class implied by the bank's prior row-buffer state.
	var wantLat uint64
	switch {
	case prevRow == row:
		wantLat = d.cfg.TCAS // row hit
	case prevRow == noOpenRow:
		wantLat = d.cfg.TRCD + d.cfg.TCAS // empty bank: activate
	default:
		wantLat = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS // conflict: precharge+activate
	}
	if rowLat != wantLat {
		san.Failf("dram", now, san.DramRowClass,
			"channel %d bank %d: prior row %#x, accessed row %#x, charged %d cycles, classification implies %d",
			ci, bi, prevRow, row, rowLat, wantLat)
	}
	if s := d.stats; s.Reads+s.Writes != s.RowHits+s.RowEmpty+s.RowConflicts {
		san.Failf("dram", now, san.DramRowClass,
			"accesses %d ≠ row hits %d + empty %d + conflicts %d",
			s.Reads+s.Writes, s.RowHits, s.RowEmpty, s.RowConflicts)
	}

	// Bank state-machine legality: the accessed row is now open, and the
	// bank frees no later than the transfer completes and no earlier than
	// the command issued.
	if bk.openRow != row {
		san.Failf("dram", now, san.DramBankState,
			"channel %d bank %d open row %#x after access to row %#x", ci, bi, bk.openRow, row)
	}
	if bk.freeAt < start || bk.freeAt > done {
		san.Failf("dram", now, san.DramBankState,
			"channel %d bank %d frees at %d outside [start %d, done %d]", ci, bi, bk.freeAt, start, done)
	}

	// Completion monotonicity: the data bus serialises transfers, so each
	// completion lands a full transfer after the previous bus release and
	// never before the controller + transfer minimum.
	sc := &d.san.chans[ci]
	if done < prevBusFree+d.cfg.BusCycles {
		san.Failf("dram", now, san.DramMonotone,
			"channel %d transfer done at %d overlaps bus busy until %d", ci, done, prevBusFree)
	}
	if done < now+d.cfg.TController+d.cfg.BusCycles {
		san.Failf("dram", now, san.DramMonotone,
			"channel %d transfer done at %d beats controller+bus minimum %d",
			ci, done, now+d.cfg.TController+d.cfg.BusCycles)
	}
	if done < sc.lastDone {
		san.Failf("dram", now, san.DramMonotone,
			"channel %d completion %d earlier than previous completion %d", ci, done, sc.lastDone)
	}
	sc.lastDone = done

	// Bandwidth ceiling: cumulative bus occupancy can never exceed the
	// wall-clock window it occurred in — transfers never overlap, so the
	// channel moves at most one 64 B block per BusCycles (the configured
	// peak, 37.5 GB/s total in the paper's two-channel system).
	if !sc.started {
		sc.started = true
		sc.firstStart = busStart
	}
	sc.busBusy += d.cfg.BusCycles
	if window := ch.busFreeAt - sc.firstStart; sc.busBusy > window {
		san.Failf("dram", now, san.DramBandwidth,
			"channel %d bus busy %d cycles inside a %d-cycle window (exceeds configured peak bandwidth)",
			ci, sc.busBusy, window)
	}
}
