package mem

// The table-indexing hashes below are deliberately cheap, deterministic
// integer mixers (no seeds, no allocation): hardware tables index with a
// few XOR/shift stages, and the simulator needs the same property so runs
// are reproducible across machines.

// Mix64 is a finalization-style 64-bit mixer (SplitMix64 finalizer). It has
// full avalanche: every input bit affects every output bit, which is what a
// set index derived from a folded PC+Offset needs.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix2 mixes two words into one, used for (PC, address-component) events.
func Mix2(a, b uint64) uint64 {
	return Mix64(a*0x9e3779b97f4a7c15 ^ Mix64(b))
}

// FoldBits XOR-folds x down to the given number of low bits. Hardware
// predictors fold long events into short indexes exactly this way.
func FoldBits(x uint64, bits uint) uint64 {
	if bits == 0 {
		return 0
	}
	if bits >= 64 {
		return x
	}
	mask := (uint64(1) << bits) - 1
	folded := uint64(0)
	for x != 0 {
		folded ^= x & mask
		x >>= bits
	}
	return folded
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Log2 returns floor(log2(v)) for v ≥ 1.
func Log2(v uint64) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
