package mem

import (
	"testing"
	"testing/quick"
)

func TestBlockArithmetic(t *testing.T) {
	cases := []struct {
		addr   Addr
		number uint64
		align  Addr
		offset uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{63, 0, 0, 63},
		{64, 1, 64, 0},
		{130, 2, 128, 2},
		{0xffff_ffff_ffff_ffff, 0x03ff_ffff_ffff_ffff, 0xffff_ffff_ffff_ffc0, 63},
	}
	for _, c := range cases {
		if got := c.addr.BlockNumber(); got != c.number {
			t.Errorf("BlockNumber(%v) = %d, want %d", c.addr, got, c.number)
		}
		if got := c.addr.BlockAlign(); got != c.align {
			t.Errorf("BlockAlign(%v) = %v, want %v", c.addr, got, c.align)
		}
		if got := c.addr.BlockOffset(); got != c.offset {
			t.Errorf("BlockOffset(%v) = %d, want %d", c.addr, got, c.offset)
		}
	}
}

func TestAddrString(t *testing.T) {
	if got := Addr(0x1234).String(); got != "0x1234" {
		t.Errorf("String = %q", got)
	}
}

func TestNewRegionConfigErrors(t *testing.T) {
	for _, size := range []uint64{0, 1, 32, 63, 100, 3000} {
		if _, err := NewRegionConfig(size); err == nil {
			t.Errorf("NewRegionConfig(%d) should fail", size)
		}
	}
	for _, size := range []uint64{64, 128, 1024, 2048, 4096} {
		if _, err := NewRegionConfig(size); err != nil {
			t.Errorf("NewRegionConfig(%d): %v", size, err)
		}
	}
}

func TestMustRegionConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegionConfig(100) should panic")
		}
	}()
	MustRegionConfig(100)
}

func TestRegionGeometry(t *testing.T) {
	rc := MustRegionConfig(2048)
	if rc.Size() != 2048 || rc.Blocks() != 32 || rc.Shift() != 11 {
		t.Fatalf("geometry: size=%d blocks=%d shift=%d", rc.Size(), rc.Blocks(), rc.Shift())
	}
	a := Addr(5*2048 + 3*64 + 17)
	if rc.RegionNumber(a) != 5 {
		t.Errorf("RegionNumber = %d", rc.RegionNumber(a))
	}
	if rc.RegionBase(a) != Addr(5*2048) {
		t.Errorf("RegionBase = %v", rc.RegionBase(a))
	}
	if rc.BlockIndex(a) != 3 {
		t.Errorf("BlockIndex = %d", rc.BlockIndex(a))
	}
	if rc.BlockAddr(a, 7) != Addr(5*2048+7*64) {
		t.Errorf("BlockAddr = %v", rc.BlockAddr(a, 7))
	}
}

func TestRegionPropertyRoundTrip(t *testing.T) {
	rc := MustRegionConfig(4096)
	f := func(raw uint64) bool {
		a := Addr(raw)
		idx := rc.BlockIndex(a)
		if idx < 0 || idx >= rc.Blocks() {
			return false
		}
		// Rebuilding the block address from (base, index) must land on
		// the block-aligned original.
		return rc.BlockAddr(a, idx) == a.BlockAlign()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionBaseIsAlignedProperty(t *testing.T) {
	rc := MustRegionConfig(1024)
	f := func(raw uint64) bool {
		base := rc.RegionBase(Addr(raw))
		return uint64(base)%rc.Size() == 0 && rc.RegionNumber(base) == rc.RegionNumber(Addr(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageHelpers(t *testing.T) {
	a := Addr(0x12345)
	if got, want := a.PageNumber(), uint64(0x12); got != want {
		t.Errorf("PageNumber(%v) = %#x, want %#x", a, got, want)
	}
	if got, want := a.PageAlign(), Addr(0x12000); got != want {
		t.Errorf("PageAlign(%v) = %v, want %v", a, got, want)
	}
	if got, want := a.PageOffset(), uint64(0x345); got != want {
		t.Errorf("PageOffset(%v) = %#x, want %#x", a, got, want)
	}
	if PageSize != 4096 || PageShift != 12 {
		t.Fatalf("page geometry: size %d shift %d, want 4096/12", PageSize, PageShift)
	}
}

func TestPageHelpersProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		return uint64(a.PageAlign())+a.PageOffset() == raw &&
			a.PageNumber() == uint64(a.PageAlign())/PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
