package mem

import (
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(42) == Mix64(43) {
		t.Fatal("Mix64(42) == Mix64(43): suspicious collision on neighbours")
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip a substantial number of output
	// bits — the property that keeps set indexes uniform.
	base := Mix64(0x1234_5678_9abc_def0)
	for bit := uint(0); bit < 64; bit++ {
		flipped := Mix64(0x1234_5678_9abc_def0 ^ 1<<bit)
		diff := popcount(base ^ flipped)
		if diff < 10 {
			t.Errorf("bit %d: only %d output bits changed", bit, diff)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestMix2OrderSensitive(t *testing.T) {
	if Mix2(1, 2) == Mix2(2, 1) {
		t.Fatal("Mix2 should not be symmetric")
	}
}

func TestFoldBits(t *testing.T) {
	if FoldBits(0xff00ff, 8) != 0xff^0x00^0xff {
		t.Errorf("FoldBits(0xff00ff, 8) = %#x", FoldBits(0xff00ff, 8))
	}
	if FoldBits(123, 0) != 0 {
		t.Error("FoldBits with 0 bits should be 0")
	}
	if FoldBits(123, 64) != 123 {
		t.Error("FoldBits with 64 bits should be identity")
	}
	if FoldBits(123, 100) != 123 {
		t.Error("FoldBits with >64 bits should be identity")
	}
}

func TestFoldBitsRangeProperty(t *testing.T) {
	f := func(x uint64) bool {
		return FoldBits(x, 10) < 1<<10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 1024, 1 << 30} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []int{0, -1, -2, 3, 6, 1000} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]uint{1: 0, 2: 1, 3: 1, 4: 2, 1024: 10, 1 << 40: 40}
	for v, want := range cases {
		if got := Log2(v); got != want {
			t.Errorf("Log2(%d) = %d, want %d", v, got, want)
		}
	}
}
