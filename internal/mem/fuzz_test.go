package mem

import "testing"

// FuzzAddrHelpers checks the algebraic identities of the block/page
// helpers over arbitrary addresses: decomposition (align + offset
// reconstructs the address), idempotence of alignment, and agreement
// between the shift-based and mask-based views. These helpers are the
// foundation every cache index and footprint bit stands on, so they get
// the exhaustive treatment.
func FuzzAddrHelpers(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0xdeadbeef))
	f.Add(^uint64(0))
	f.Add(uint64(PageSize - 1))
	f.Add(uint64(BlockSize))

	f.Fuzz(func(t *testing.T, raw uint64) {
		a := Addr(raw)

		if got := uint64(a.BlockAlign()) + a.BlockOffset(); got != raw {
			t.Errorf("BlockAlign+BlockOffset = %#x, want %#x", got, raw)
		}
		if got := uint64(a.PageAlign()) + a.PageOffset(); got != raw {
			t.Errorf("PageAlign+PageOffset = %#x, want %#x", got, raw)
		}
		if a.BlockAlign().BlockAlign() != a.BlockAlign() {
			t.Error("BlockAlign is not idempotent")
		}
		if a.PageAlign().PageAlign() != a.PageAlign() {
			t.Error("PageAlign is not idempotent")
		}
		if a.BlockAlign().BlockOffset() != 0 {
			t.Error("BlockAlign left a nonzero block offset")
		}
		if a.PageAlign().PageOffset() != 0 {
			t.Error("PageAlign left a nonzero page offset")
		}
		if got, want := a.BlockNumber(), raw>>BlockShift; got != want {
			t.Errorf("BlockNumber = %#x, want %#x", got, want)
		}
		if got, want := a.PageNumber(), raw>>PageShift; got != want {
			t.Errorf("PageNumber = %#x, want %#x", got, want)
		}
		if a.BlockOffset() >= BlockSize {
			t.Errorf("BlockOffset %d outside [0,%d)", a.BlockOffset(), BlockSize)
		}
		if a.PageOffset() >= PageSize {
			t.Errorf("PageOffset %d outside [0,%d)", a.PageOffset(), PageSize)
		}
		// A block never straddles a page (BlockShift < PageShift).
		if a.BlockAlign().PageNumber() != Addr(raw+BlockSize-1-a.BlockOffset()).PageNumber() {
			t.Errorf("block containing %#x straddles a page boundary", raw)
		}
	})
}

// FuzzRegionGeometry checks the spatial-region helpers for every
// power-of-two geometry the paper sweeps (256 B – 16 KB): block indices
// stay inside the region, BlockAddr inverts BlockIndex, and region
// numbering is consistent with region bases.
func FuzzRegionGeometry(f *testing.F) {
	f.Add(uint64(0x12345678), uint64(4096))
	f.Add(^uint64(0), uint64(256))
	f.Add(uint64(0), uint64(16384))

	f.Fuzz(func(t *testing.T, raw, size uint64) {
		// Clamp size to the supported geometries instead of rejecting, so
		// the fuzzer spends its budget on addresses.
		size = 1 << (8 + size%7) // 256 B … 16 KB
		rc, err := NewRegionConfig(size)
		if err != nil {
			t.Fatalf("NewRegionConfig(%d): %v", size, err)
		}
		a := Addr(raw)

		idx := rc.BlockIndex(a)
		if idx < 0 || idx >= rc.Blocks() {
			t.Fatalf("BlockIndex %d outside [0,%d)", idx, rc.Blocks())
		}
		if got := rc.BlockAddr(a, idx); got != a.BlockAlign() {
			t.Errorf("BlockAddr(base, BlockIndex(a)) = %#x, want block of a %#x", uint64(got), uint64(a.BlockAlign()))
		}
		base := rc.RegionBase(a)
		if uint64(base)%size != 0 {
			t.Errorf("RegionBase %#x not aligned to %d", uint64(base), size)
		}
		if rc.RegionNumber(a) != uint64(base)>>rc.Shift() {
			t.Errorf("RegionNumber %#x disagrees with RegionBase %#x", rc.RegionNumber(a), uint64(base))
		}
		if rc.RegionBase(base) != base {
			t.Error("RegionBase is not idempotent")
		}
		if rc.Blocks() != int(size>>BlockShift) {
			t.Errorf("Blocks() = %d, want %d", rc.Blocks(), size>>BlockShift)
		}
	})
}
