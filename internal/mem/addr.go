// Package mem provides the elementary address arithmetic shared by every
// component of the simulator: cache-block and region (spatial page) math,
// alignment helpers, and the hash mixers used to index metadata tables.
//
// Terminology follows the Bingo paper (HPCA 2019): a "block" is a cache
// block (64 B by default) and a "region" is the spatial page over which
// footprints are recorded — a chunk of contiguous cache blocks that is not
// necessarily an OS page.
package mem

import "fmt"

// Addr is a byte address, virtual or physical depending on context.
type Addr uint64

// PC is the program counter of the instruction performing an access.
type PC uint64

const (
	// BlockShift is log2 of the cache-block size.
	BlockShift = 6
	// BlockSize is the cache-block size in bytes (64 B everywhere in the
	// paper's hierarchy).
	BlockSize = 1 << BlockShift
	// PageShift is log2 of the OS page size used for address translation
	// (4 KB pages, the paper's Table I). This is the translation
	// granularity, distinct from the spatial-region geometry carried by
	// RegionConfig.
	PageShift = 12
	// PageSize is the OS page size in bytes.
	PageSize = 1 << PageShift
)

// BlockNumber returns the cache-block number of a, i.e. a >> BlockShift.
func (a Addr) BlockNumber() uint64 { return uint64(a) >> BlockShift }

// BlockAlign rounds a down to the start of its cache block.
func (a Addr) BlockAlign() Addr { return a &^ (BlockSize - 1) }

// BlockOffset returns the byte offset of a within its cache block.
func (a Addr) BlockOffset() uint64 { return uint64(a) & (BlockSize - 1) }

// PageNumber returns the OS-page number of a, i.e. a >> PageShift.
func (a Addr) PageNumber() uint64 { return uint64(a) >> PageShift }

// PageAlign rounds a down to the start of its OS page.
func (a Addr) PageAlign() Addr { return a &^ (PageSize - 1) }

// PageOffset returns the byte offset of a within its OS page.
func (a Addr) PageOffset() uint64 { return uint64(a) & (PageSize - 1) }

// String renders the address in hexadecimal.
func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// RegionConfig describes the geometry of spatial regions ("pages" in the
// paper's wording). The zero value is not usable; call NewRegionConfig.
type RegionConfig struct {
	sizeBytes uint64
	shift     uint
	blocks    int
}

// NewRegionConfig builds a region geometry for the given region size in
// bytes. The size must be a power of two and at least one cache block.
func NewRegionConfig(sizeBytes uint64) (RegionConfig, error) {
	if sizeBytes < BlockSize || sizeBytes&(sizeBytes-1) != 0 {
		return RegionConfig{}, fmt.Errorf("mem: region size %d must be a power of two ≥ %d", sizeBytes, BlockSize)
	}
	shift := uint(0)
	for s := sizeBytes; s > 1; s >>= 1 {
		shift++
	}
	return RegionConfig{
		sizeBytes: sizeBytes,
		shift:     shift,
		blocks:    int(sizeBytes >> BlockShift),
	}, nil
}

// MustRegionConfig is NewRegionConfig that panics on invalid input; intended
// for package-level defaults and tests.
func MustRegionConfig(sizeBytes uint64) RegionConfig {
	rc, err := NewRegionConfig(sizeBytes)
	if err != nil {
		panic(err)
	}
	return rc
}

// Size returns the region size in bytes.
func (rc RegionConfig) Size() uint64 { return rc.sizeBytes }

// Blocks returns the number of cache blocks per region.
func (rc RegionConfig) Blocks() int { return rc.blocks }

// Shift returns log2 of the region size.
func (rc RegionConfig) Shift() uint { return rc.shift }

// RegionNumber returns the region number containing a.
func (rc RegionConfig) RegionNumber(a Addr) uint64 { return uint64(a) >> rc.shift }

// RegionBase returns the address of the first byte of a's region.
func (rc RegionConfig) RegionBase(a Addr) Addr { return a &^ Addr(rc.sizeBytes-1) }

// BlockIndex returns the index of a's cache block within its region,
// in [0, Blocks()).
func (rc RegionConfig) BlockIndex(a Addr) int {
	return int((uint64(a) >> BlockShift) & uint64(rc.blocks-1))
}

// BlockAddr returns the address of block idx within the region that
// contains base.
func (rc RegionConfig) BlockAddr(base Addr, idx int) Addr {
	return rc.RegionBase(base) + Addr(idx)<<BlockShift
}
