package workloads

import (
	"math/rand"

	"bingo/internal/mem"
	"bingo/internal/trace"
)

// SPEC-like kernels used by the five mixes of Table II. Each reproduces
// the dominant memory idiom of its namesake benchmark as characterised in
// the prefetching literature: streaming stencils (lbm, zeusmp, GemsFDTD,
// libquantum, milc), sparse/strided solvers (soplex, sphinx3), pointer
// chasers (omnetpp, astar), neighbour-list kernels (gromacs), and mostly
// cache-resident codes (perlbench, tonto).

type kernelBuilder func(seed int64, vbase uint64) trace.Source

var specKernels = map[string]kernelBuilder{
	"lbm":        newLBM,
	"libquantum": newLibquantum,
	"sphinx3":    newSphinx3,
	"omnetpp":    newOmnetpp,
	"soplex":     newSoplex,
	"milc":       newMilc,
	"perlbench":  newPerlbench,
	"astar":      newAstar,
	"tonto":      newTonto,
	"gromacs":    newGromacs,
	"zeusmp":     newZeusmp,
	"GemsFDTD":   newGemsFDTD,
}

// multiStream sweeps several parallel arrays at fixed block strides — the
// shared skeleton of the stencil/stream kernels.
type multiStream struct {
	filler
	rng     *rand.Rand
	vbase   uint64
	cursor  uint64
	extent  uint64 // blocks per array
	streams []streamDesc
	pcBase  uint64
	gap     uint32
	stride  uint64 // cursor advance per quantum, in blocks
}

type streamDesc struct {
	arrayOffset uint64 // separate array windows (bytes)
	blockDelta  int64  // offset from cursor, in blocks
	store       bool
}

func (g *multiStream) generate() {
	for i, s := range g.streams {
		blk := int64(g.cursor) + s.blockDelta
		if blk < 0 {
			blk = 0
		}
		addr := g.vbase + s.arrayOffset + uint64(blk)%g.extent<<mem.BlockShift
		kind := trace.Load
		if s.store {
			kind = trace.Store
		}
		g.emit(g.pcBase+uint64(i), addr, kind, g.gap)
	}
	g.cursor += g.stride
}

// lbm: lattice-Boltzmann — several in-order streams through two large
// lattices plus a stored result stream. High MPKI, perfectly spatial.
func newLBM(seed int64, vbase uint64) trace.Source {
	g := &multiStream{
		rng:    newRNG(seed),
		vbase:  vbase,
		extent: 48 << 20 >> mem.BlockShift,
		pcBase: 0x51000,
		gap:    34,
		stride: 1,
		streams: []streamDesc{
			{arrayOffset: 0 << 30, blockDelta: 0},
			{arrayOffset: 0 << 30, blockDelta: 8},
			{arrayOffset: 0 << 30, blockDelta: -8},
			{arrayOffset: 1 << 30, blockDelta: 0, store: true},
		},
	}
	g.fill = g.generate
	return g
}

// libquantum: one huge sequential read-modify-write stream.
func newLibquantum(seed int64, vbase uint64) trace.Source {
	g := &multiStream{
		rng:    newRNG(seed),
		vbase:  vbase,
		extent: 64 << 20 >> mem.BlockShift,
		pcBase: 0x52000,
		gap:    40,
		stride: 1,
		streams: []streamDesc{
			{blockDelta: 0},
			{blockDelta: 0, store: true},
		},
	}
	g.fill = g.generate
	return g
}

// zeusmp: three-array stencil sweep.
func newZeusmp(seed int64, vbase uint64) trace.Source {
	g := &multiStream{
		rng:    newRNG(seed),
		vbase:  vbase,
		extent: 32 << 20 >> mem.BlockShift,
		pcBase: 0x53000,
		gap:    38,
		stride: 1,
		streams: []streamDesc{
			{arrayOffset: 0 << 30, blockDelta: 0},
			{arrayOffset: 1 << 30, blockDelta: 0},
			{arrayOffset: 1 << 30, blockDelta: 64},
			{arrayOffset: 2 << 30, blockDelta: 0, store: true},
		},
	}
	g.fill = g.generate
	return g
}

// GemsFDTD: six field arrays swept with large inter-stream offsets.
func newGemsFDTD(seed int64, vbase uint64) trace.Source {
	streams := make([]streamDesc, 0, 6)
	for i := 0; i < 5; i++ {
		streams = append(streams, streamDesc{arrayOffset: uint64(i) << 29, blockDelta: int64(i * 3)})
	}
	streams = append(streams, streamDesc{arrayOffset: 5 << 29, blockDelta: 0, store: true})
	g := &multiStream{
		rng:     newRNG(seed),
		vbase:   vbase,
		extent:  24 << 20 >> mem.BlockShift,
		pcBase:  0x54000,
		gap:     42,
		stride:  1,
		streams: streams,
	}
	g.fill = g.generate
	return g
}

// milc: 4-D lattice QCD — constant-stride (non-unit) sweeps.
func newMilc(seed int64, vbase uint64) trace.Source {
	g := &multiStream{
		rng:    newRNG(seed),
		vbase:  vbase,
		extent: 64 << 20 >> mem.BlockShift,
		pcBase: 0x55000,
		gap:    36,
		stride: 4, // stride-4 blocks: the t-direction walk
		streams: []streamDesc{
			{arrayOffset: 0 << 30, blockDelta: 0},
			{arrayOffset: 1 << 30, blockDelta: 0},
			{arrayOffset: 0 << 30, blockDelta: 0, store: true},
		},
	}
	g.fill = g.generate
	return g
}

// sphinx3: acoustic scoring — a sequential feature stream plus strided
// gaussian-table reads with a zipfian hot set.
type sphinx3 struct {
	filler
	rng    *rand.Rand
	vbase  uint64
	cursor uint64
	zipf   *rand.Zipf
}

func newSphinx3(seed int64, vbase uint64) trace.Source {
	g := &sphinx3{rng: newRNG(seed), vbase: vbase}
	g.zipf = zipfOver(g.rng, 8192) // senone hot set
	g.fill = g.generate
	return g
}

func (g *sphinx3) generate() {
	const pc = 0x56000
	featBlocks := uint64(8 << 20 >> mem.BlockShift)
	g.emit(pc, g.vbase+g.cursor%featBlocks<<mem.BlockShift, trace.Load, 30)
	g.cursor++
	// Gaussian tables: 32 MB, strided within a senone's row.
	senone := g.zipf.Uint64()
	rowBase := g.vbase + (1 << 36) + senone*4096
	for i := 0; i < 3; i++ {
		if i == 0 {
			g.emitDep(pc+1, rowBase, trace.Load, 28)
			continue
		}
		g.emit(pc+1+uint64(i), rowBase+uint64(i)*2*mem.BlockSize, trace.Load, 28)
	}
}

// omnetpp: discrete event simulation — pointer-heavy heap with a large
// zipfian event set; single-block visits, poor spatial structure.
type omnetpp struct {
	filler
	rng   *rand.Rand
	vbase uint64
	zipf  *rand.Zipf
}

func newOmnetpp(seed int64, vbase uint64) trace.Source {
	g := &omnetpp{rng: newRNG(seed), vbase: vbase}
	g.zipf = zipfOver(g.rng, 48<<20>>mem.BlockShift) // 48 MB event heap
	g.fill = g.generate
	return g
}

func (g *omnetpp) generate() {
	const pc = 0x57000
	// Pop event, follow two module pointers, push new event: each hop
	// dereferences the previous load (serial pointer chase).
	for i := 0; i < 3; i++ {
		blk := g.zipf.Uint64()
		g.emitDep(pc+uint64(i), g.vbase+blk<<mem.BlockShift, trace.Load, 32)
	}
	blk := g.zipf.Uint64()
	g.emit(pc+8, g.vbase+blk<<mem.BlockShift, trace.Store, 36)
}

// soplex: simplex LP solver — sparse column walks: short bursts of
// small-strided reads at irregular column starts.
type soplex struct {
	filler
	rng   *rand.Rand
	vbase uint64
}

func newSoplex(seed int64, vbase uint64) trace.Source {
	g := &soplex{rng: newRNG(seed), vbase: vbase}
	g.fill = g.generate
	return g
}

func (g *soplex) generate() {
	const pc = 0x58000
	matBlocks := uint64(40 << 20 >> mem.BlockShift)
	col := g.rng.Uint64() % matBlocks
	stride := uint64(1 + g.rng.Intn(3))
	n := 3 + g.rng.Intn(4)
	// CSR traversal: each nonzero's position is read from the index
	// array just loaded, so the whole column walk is a dependent chain.
	for i := 0; i < n; i++ {
		blk := (col + uint64(i)*stride) % matBlocks
		g.emitDep(pc+uint64(i%4), g.vbase+blk<<mem.BlockShift, trace.Load, 30)
	}
	// Dense vector update (hot).
	vecBlocks := uint64(1 << 20 >> mem.BlockShift)
	g.emit(pc+8, g.vbase+(1<<36)+(g.rng.Uint64()%vecBlocks)<<mem.BlockShift, trace.Store, 34)
}

// perlbench: mostly cache-resident interpreter state with rare cold
// excursions — the low-MPKI member of the mixes.
type perlbench struct {
	filler
	rng   *rand.Rand
	vbase uint64
}

func newPerlbench(seed int64, vbase uint64) trace.Source {
	g := &perlbench{rng: newRNG(seed), vbase: vbase}
	g.fill = g.generate
	return g
}

func (g *perlbench) generate() {
	const pc = 0x59000
	hotBlocks := uint64(3 << 20 >> mem.BlockShift)
	for i := 0; i < 5; i++ {
		g.emit(pc+uint64(i), g.vbase+(g.rng.Uint64()%hotBlocks)<<mem.BlockShift, trace.Load, 42)
	}
	if g.rng.Intn(100) < 8 {
		coldBlocks := uint64(32 << 20 >> mem.BlockShift)
		g.emit(pc+8, g.vbase+(1<<36)+(g.rng.Uint64()%coldBlocks)<<mem.BlockShift, trace.Load, 38)
	}
}

// astar: pathfinding over a grid — a random walk with strong 2-D
// locality: neighbours one block or one row-stride away.
type astar struct {
	filler
	rng   *rand.Rand
	vbase uint64
	pos   uint64
}

func newAstar(seed int64, vbase uint64) trace.Source {
	g := &astar{rng: newRNG(seed), vbase: vbase, pos: 1 << 18}
	g.fill = g.generate
	return g
}

func (g *astar) generate() {
	const (
		pc        = 0x5a000
		rowStride = 512 // blocks per grid row
	)
	gridBlocks := uint64(32 << 20 >> mem.BlockShift)
	// Expand current node: read 4 neighbours, move to one of them.
	deltas := [4]int64{1, -1, rowStride, -rowStride}
	next := g.pos
	for i, d := range deltas {
		n := uint64(int64(g.pos)+d) % gridBlocks
		g.emitDep(pc+uint64(i), g.vbase+n<<mem.BlockShift, trace.Load, 30)
		if g.rng.Intn(4) == i {
			next = n
		}
	}
	// Open-list bookkeeping in a hot area.
	hotBlocks := uint64(2 << 20 >> mem.BlockShift)
	g.emit(pc+8, g.vbase+(1<<36)+(g.rng.Uint64()%hotBlocks)<<mem.BlockShift, trace.Store, 34)
	g.pos = next
	if g.rng.Intn(1000) == 0 { // restart from a random frontier node
		g.pos = g.rng.Uint64() % gridBlocks
	}
}

// tonto: quantum chemistry — blocked dense algebra: long phases of hot
// panel reuse punctuated by sequential fetch of the next panel.
type tonto struct {
	filler
	rng     *rand.Rand
	vbase   uint64
	panel   uint64
	inPanel int
}

func newTonto(seed int64, vbase uint64) trace.Source {
	g := &tonto{rng: newRNG(seed), vbase: vbase}
	g.fill = g.generate
	return g
}

func (g *tonto) generate() {
	const (
		pc          = 0x5b000
		panelBlocks = 128 // 8 KB panel
	)
	matBlocks := uint64(24 << 20 >> mem.BlockShift)
	if g.inPanel == 0 {
		// Fetch the next panel sequentially.
		for i := 0; i < panelBlocks/8; i++ {
			blk := (g.panel*panelBlocks + uint64(i)*8) % matBlocks
			g.emit(pc, g.vbase+blk<<mem.BlockShift, trace.Load, 36)
		}
		g.panel++
		g.inPanel = 40
		return
	}
	// Reuse the current (cached) panel heavily.
	blk := (g.panel*panelBlocks + g.rng.Uint64()%panelBlocks) % matBlocks
	g.emit(pc+1, g.vbase+blk<<mem.BlockShift, trace.Load, 44)
	g.inPanel--
}

// gromacs: molecular dynamics — per-particle neighbour-list walks: small
// clusters of contiguous blocks at semi-random positions.
type gromacs struct {
	filler
	rng      *rand.Rand
	vbase    uint64
	particle uint64
}

func newGromacs(seed int64, vbase uint64) trace.Source {
	g := &gromacs{rng: newRNG(seed), vbase: vbase}
	g.fill = g.generate
	return g
}

func (g *gromacs) generate() {
	const pc = 0x5c000
	partBlocks := uint64(24 << 20 >> mem.BlockShift)
	// This particle's own data (sweeps sequentially).
	g.emit(pc, g.vbase+g.particle%partBlocks<<mem.BlockShift, trace.Load, 28)
	// Three neighbours, each a 2-block cluster.
	for i := 0; i < 3; i++ {
		n := g.rng.Uint64() % partBlocks
		if i == 0 {
			g.emitDep(pc+1, g.vbase+n<<mem.BlockShift, trace.Load, 26)
		} else {
			g.emit(pc+1+uint64(i), g.vbase+n<<mem.BlockShift, trace.Load, 26)
		}
		g.emit(pc+4+uint64(i), g.vbase+(n+1)%partBlocks<<mem.BlockShift, trace.Load, 24)
	}
	// Force accumulation write.
	g.emit(pc+8, g.vbase+g.particle%partBlocks<<mem.BlockShift, trace.Store, 30)
	g.particle++
}
