package workloads

import (
	"testing"

	"bingo/internal/trace"
)

// These tests pin the many-core behaviour of every workload's source
// builder — in particular mixSpec's kernel wrapping, which had no test:
// a machine with more cores than the mix lists kernels must wrap the
// kernel assignment (core i runs kernels[i % len]) while keeping each
// core's seed decorrelated and its virtual address space disjoint.

// collectAddrs drains up to n records from src and returns the visited
// virtual addresses.
func collectAddrs(t *testing.T, name string, core int, src trace.Source, n int) []uint64 {
	t.Helper()
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		rec, ok := src.Next()
		if !ok {
			t.Fatalf("%s core %d: source drained after %d records", name, core, i)
		}
		out = append(out, uint64(rec.Addr))
	}
	return out
}

// TestSourcesScaleToManyCores builds every workload at 8, 16, and 64
// cores and requires each core's stream to live in its own virtual base
// region (coreVBase: high bits encode core+1).
func TestSourcesScaleToManyCores(t *testing.T) {
	for _, cores := range []int{8, 16, 64} {
		for _, spec := range All() {
			srcs := spec.Sources(cores, 1)
			if len(srcs) != cores {
				t.Fatalf("%s: %d sources for %d cores", spec.Name, len(srcs), cores)
			}
			for core, src := range srcs {
				for _, addr := range collectAddrs(t, spec.Name, core, src, 64) {
					if got := addr >> 40; got != uint64(core+1) {
						t.Fatalf("%s at %d cores: core %d touched address %#x (vbase tag %d, want %d) — per-core address spaces overlap",
							spec.Name, cores, core, addr, got, core+1)
					}
				}
			}
		}
	}
}

// TestMixWrappingDecorrelatesSeeds pins the wrapping path itself: at 8
// cores, Mix1's core 4 reruns core 0's kernel (lbm). The two streams
// must not be copies of each other — the per-core seed offset
// (i*104729) has to decorrelate them — and the page-offset parts of
// their address streams must differ somewhere in a modest prefix.
func TestMixWrappingDecorrelatesSeeds(t *testing.T) {
	const cores = 8
	const prefix = 4096
	for _, name := range []string{"Mix1", "Mix2", "Mix3", "Mix4", "Mix5"} {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		srcs := w.Sources(cores, 1)
		for pair := 0; pair < cores/2; pair++ {
			lo := collectAddrs(t, name, pair, srcs[pair], prefix)
			hi := collectAddrs(t, name, pair+4, srcs[pair+4], prefix)
			same := true
			for i := range lo {
				// Compare core-relative offsets: the vbase differs by
				// construction, so strip it to detect a cloned stream.
				if lo[i]&((1<<40)-1) != hi[i]&((1<<40)-1) {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%s: cores %d and %d (same wrapped kernel) emitted identical %d-record streams — seeds are correlated",
					name, pair, pair+4, prefix)
			}
		}
	}
}

// TestMixWrappingIsDeterministic re-pins determinism on the wrapped
// path: the identical (cores, seed) request must rebuild the identical
// streams, record for record, at a core count that exercises wrapping.
func TestMixWrappingIsDeterministic(t *testing.T) {
	const cores = 16
	const prefix = 1024
	w, ok := ByName("Mix3")
	if !ok {
		t.Fatal("Mix3 not registered")
	}
	a := w.Sources(cores, 7)
	b := w.Sources(cores, 7)
	for core := 0; core < cores; core++ {
		x := collectAddrs(t, "Mix3", core, a[core], prefix)
		y := collectAddrs(t, "Mix3", core, b[core], prefix)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("Mix3 core %d diverged at record %d across identical builds", core, i)
			}
		}
	}
}
