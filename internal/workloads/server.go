package workloads

import (
	"math/rand"

	"bingo/internal/mem"
	"bingo/internal/trace"
)

// Server workload generators. Shared vocabulary:
//   - the heap is addressed in 2 KB regions (32 blocks), matching the
//     spatial-region geometry the prefetchers train on;
//   - "hot" structures are sized to live in the LLC so they produce hits;
//   - "cold" structures dwarf the LLC so they produce the misses whose
//     spatial structure (or lack of it) defines each workload.

const (
	regionBytes  = 2048
	blocksPerReg = regionBytes / mem.BlockSize
)

// ---------------------------------------------------------------------------
// Data Serving — Cassandra/YCSB-like key-value store.
//
// Objects have one of eight fixed layouts (memtable row classes). An object
// read walks a small hot index, then touches the class's field blocks
// inside the object's region. Object popularity is zipfian, so hot objects
// recur (rewarding the long PC+Address event) while the long tail is
// covered only by layout generalisation (the short PC+Offset event) — the
// exact tension Bingo's §III motivates. Layouts additionally depend on one
// address bit (two sub-classes per trigger PC), so PC+Offset alone
// mispredicts part of the time while PC+Address never does.
type dataServing struct {
	filler
	rng     *rand.Rand
	vbase   uint64
	objects uint64
	zipf    *rand.Zipf
	layouts [16][]int // [class*2+parity] -> field block offsets
}

func newDataServing(seed int64, vbase uint64) trace.Source {
	g := &dataServing{
		rng:     newRNG(seed),
		vbase:   vbase,
		objects: 96 * 1024, // 96K regions = 192 MB heap
	}
	g.zipf = zipfOver(g.rng, g.objects)
	layoutRNG := newRNG(seed ^ 0x5eed)
	for i := range g.layouts {
		n := 3 + layoutRNG.Intn(6) // 3..8 field blocks beyond the header
		offs := layoutRNG.Perm(blocksPerReg - 1)[:n]
		for j := range offs {
			offs[j]++ // block 0 is the header/trigger
		}
		g.layouts[i] = offs
	}
	g.fill = g.generate
	return g
}

func (g *dataServing) generate() {
	const (
		pcIndex = 0x1000
		pcTrig  = 0x2000
		pcField = 0x3000
		pcStore = 0x4000
	)
	// Index walk: 3 dependent reads over an LLC-resident 1 MB index
	// (B-tree levels are pointer-chased but almost always hit).
	indexBlocks := uint64(1 << 20 >> mem.BlockShift)
	for i := 0; i < 3; i++ {
		blk := g.rng.Uint64() % indexBlocks
		g.emitDep(pcIndex+uint64(i), g.vbase+(1<<36)+blk<<mem.BlockShift, trace.Load, 22)
	}

	obj := g.zipf.Uint64()
	// Rows are packed at a 37-block stride, so row bases fall at varying
	// offsets within their spatial regions (real heaps are not
	// region-aligned) — trigger offsets span the whole region.
	const objStrideBytes = 37 * mem.BlockSize
	base := g.vbase + obj*objStrideBytes
	class := int(mem.Mix64(obj)) & 7
	parity := int(obj>>3) & 1
	layout := g.layouts[class*2+parity]
	// The accessor is reached from one of 8 call sites (iterator, point
	// query, compaction, …): distinct PCs for the same behaviour, which
	// is what gives the history table its capacity sensitivity.
	callsite := uint64(g.rng.Intn(8))

	// Trigger: the row header, reached by dereferencing the index entry.
	// Row fields are parsed out of the serialised row in order, so each
	// field read depends on the previous one — the serial miss chain that
	// spatial prefetching collapses into parallel row-buffer hits.
	g.emitDep(pcTrig+uint64(class)*256+callsite, base, trace.Load, 18)
	for j, off := range layout {
		g.emitDep(pcField+uint64(class)*256+uint64(j)*8+callsite%8, base+uint64(off)*mem.BlockSize, trace.Load, 14)
	}
	// Occasional update of one field (write-back traffic).
	if g.rng.Intn(10) == 0 {
		off := layout[g.rng.Intn(len(layout))]
		g.emit(pcStore+uint64(class), base+uint64(off)*mem.BlockSize, trace.Store, 12)
	}
	// Row processing: hot re-reads plus compute gap.
	g.emit(pcIndex+8, g.vbase+(1<<36)+(g.rng.Uint64()%indexBlocks)<<mem.BlockShift, trace.Load, 140)
}

// ---------------------------------------------------------------------------
// SAT Solver — Cloud9-like symbolic execution engine.
//
// Dominated by hot variable/watch arrays that live in the cache; misses
// come from sporadic visits to random clauses, which are short (1–2
// blocks), so regions never develop footprints worth generalising. Every
// prefetcher finds little to do here (paper: lowest MPKI, low coverage).
type satSolver struct {
	filler
	rng   *rand.Rand
	vbase uint64
}

func newSATSolver(seed int64, vbase uint64) trace.Source {
	g := &satSolver{rng: newRNG(seed), vbase: vbase}
	g.fill = g.generate
	return g
}

func (g *satSolver) generate() {
	const (
		pcVar    = 0x11000
		pcClause = 0x12000
		pcWatch  = 0x13000
	)
	hotBlocks := uint64(512 << 10 >> mem.BlockShift) // 512 KB variable state
	for i := 0; i < 6; i++ {
		blk := g.rng.Uint64() % hotBlocks
		g.emit(pcVar+uint64(i), g.vbase+blk<<mem.BlockShift, trace.Load, 52)
	}
	if g.rng.Intn(100) < 9 {
		// Random clause in a 64 MB database: 1-2 contiguous blocks.
		clauseBlocks := uint64(64 << 20 >> mem.BlockShift)
		blk := g.rng.Uint64() % clauseBlocks
		addr := g.vbase + (1 << 36) + blk<<mem.BlockShift
		site := uint64(g.rng.Intn(16))
		g.emitDep(pcClause+site*4, addr, trace.Load, 35)
		if g.rng.Intn(2) == 0 {
			g.emit(pcClause+site*4+1, addr+mem.BlockSize, trace.Load, 30)
		}
		// Watch-list update writes back near the clause.
		if g.rng.Intn(4) == 0 {
			g.emit(pcWatch, addr, trace.Store, 25)
		}
	}
}

// ---------------------------------------------------------------------------
// Streaming — Darwin-like media server with hundreds of concurrent
// sequential client streams. Each scheduling quantum advances one client
// through its file: dense, in-order, full-region footprints of compulsory
// misses — the best case for spatial prefetching (and for simple stream
// prefetchers).
type streaming struct {
	filler
	rng     *rand.Rand
	vbase   uint64
	pos     []uint64 // per-client next block number
	streams int
}

func newStreaming(seed int64, vbase uint64) trace.Source {
	g := &streaming{rng: newRNG(seed), vbase: vbase, streams: 384}
	g.pos = make([]uint64, g.streams)
	for i := range g.pos {
		// Each client's file starts in its own 64 MB window.
		g.pos[i] = (uint64(i) << 26) >> mem.BlockShift
	}
	g.fill = g.generate
	return g
}

func (g *streaming) generate() {
	const (
		pcRead  = 0x21000
		pcState = 0x22000
	)
	client := g.rng.Intn(g.streams)
	// A quarter of quanta follow a seek (RTP repositioning, keyframe
	// skip): the client jumps ahead one to three regions. Seeks break
	// cross-region stride continuation but leave intra-region footprints
	// fully intact — exactly the structure PPH prefetchers exploit.
	if g.rng.Intn(4) == 0 {
		skip := uint64(1+g.rng.Intn(3)) * (regionBytes >> mem.BlockShift)
		g.pos[client] = (g.pos[client] + skip) &^ (regionBytes>>mem.BlockShift - 1)
	}
	// Protocol work: hot per-client state (LLC resident).
	stateBlocks := uint64(1 << 20 >> mem.BlockShift)
	g.emit(pcState, g.vbase+(1<<36)+(g.rng.Uint64()%stateBlocks)<<mem.BlockShift, trace.Load, 120)
	// Send quantum: 8 media blocks chained through the buffer descriptor
	// list (each packet's payload pointer is read from the previous
	// descriptor), so uncovered stream misses serialise. Scatter-gather
	// I/O touches the quantum's blocks out of order: the set of blocks
	// (the footprint) is stable, the intra-region order is not — the
	// order-insensitivity that favours spatial over delta prefetchers.
	order := g.rng.Perm(8)
	site := uint64(client) & 7 // per-client send path
	for _, i := range order {
		addr := g.vbase + (g.pos[client]+uint64(i))<<mem.BlockShift
		g.emitDep(pcRead+site, addr, trace.Load, 130)
	}
	g.pos[client] += 8
	g.emit(pcState+1, g.vbase+(1<<36)+(g.rng.Uint64()%stateBlocks)<<mem.BlockShift, trace.Load, 160)
}

// ---------------------------------------------------------------------------
// Zeus — web server whose misses are temporally but not spatially
// correlated (paper §VI-C singles it out as the workload where spatial
// prefetchers gain least). A fixed pseudo-random pointer chain is
// traversed repeatedly: the *sequence* of misses recurs perfectly (a
// temporal prefetcher's dream) but consecutive chain nodes live in
// unrelated regions, so region footprints are sparse and unstable.
type zeus struct {
	filler
	rng    *rand.Rand
	vbase  uint64
	chain  []uint32 // permutation: block i -> next block
	cursor uint32
}

func newZeus(seed int64, vbase uint64) trace.Source {
	const chainBlocks = 1024 * 1024 // 64 MB of chained blocks
	g := &zeus{rng: newRNG(seed), vbase: vbase}
	perm := rand.New(rand.NewSource(seed ^ 0xC4A1)).Perm(chainBlocks)
	g.chain = make([]uint32, chainBlocks)
	for i := 0; i < chainBlocks; i++ {
		g.chain[perm[i]] = uint32(perm[(i+1)%chainBlocks])
	}
	g.cursor = uint32(perm[0])
	g.fill = g.generate
	return g
}

func (g *zeus) generate() {
	const (
		pcConn  = 0x31000
		pcChase = 0x32000
	)
	// Hot connection table and code-like structures.
	hotBlocks := uint64(1 << 20 >> mem.BlockShift)
	for i := 0; i < 3; i++ {
		g.emit(pcConn+uint64(i), g.vbase+(1<<36)+(g.rng.Uint64()%hotBlocks)<<mem.BlockShift, trace.Load, 40)
	}
	// One step of the request-metadata pointer chain, reached from one
	// of eight handler call sites.
	g.emitDep(pcChase+uint64(g.rng.Intn(8)), g.vbase+uint64(g.cursor)<<mem.BlockShift, trace.Load, 55)
	g.cursor = g.chain[g.cursor]
}

// ---------------------------------------------------------------------------
// em3d — electromagnetic wave propagation on a bipartite graph (Table II:
// 400 K nodes, degree 2, span 5, 15% remote). Nodes are 128 B (two
// blocks) laid out sequentially; the solver sweeps all nodes, reading each
// node's two blocks and its two neighbours. Sequential sweep plus nearby
// neighbours produce dense, highly recurrent region footprints — the
// paper's biggest spatial-prefetching win (285% speedup).
type em3d struct {
	filler
	rng   *rand.Rand
	vbase uint64
	node  uint64
	nodes uint64
}

func newEM3D(seed int64, vbase uint64) trace.Source {
	g := &em3d{rng: newRNG(seed), vbase: vbase, nodes: 400_000}
	g.fill = g.generate
	return g
}

func (g *em3d) generate() {
	const (
		pcNode  = 0x41000
		pcNeigh = 0x42000
		pcUpd   = 0x43000
		nodeSz  = 128
		span    = uint64(5 * regionBytes / nodeSz) // "span 5" regions in node units
	)
	base := g.vbase + g.node*nodeSz
	// Read the node's value and coefficient blocks.
	g.emit(pcNode, base, trace.Load, 16)
	g.emitDep(pcNode+1, base+mem.BlockSize, trace.Load, 12)
	// Degree 2: visit both neighbours. The graph is static — each node's
	// edges are a deterministic function of its id — so repeated sweeps
	// dereference the same targets (em3d builds its bipartite graph once).
	// 15% of edges are remote and land on the boundary set (first 8K
	// nodes), which is small enough to stay LLC-resident.
	for d := uint64(0); d < 2; d++ {
		h := mem.Mix64(g.node*2 + d)
		var n uint64
		if h%100 < 15 {
			n = (h >> 8) % 8192
		} else {
			delta := 1 + (h>>8)%span
			if h&(1<<7) == 0 && g.node >= delta {
				n = g.node - delta
			} else {
				n = (g.node + delta) % g.nodes
			}
		}
		g.emitDep(pcNeigh+d, g.vbase+n*nodeSz, trace.Load, 14)
	}
	// Update this node's value.
	g.emit(pcUpd, base, trace.Store, 18)
	g.node = (g.node + 1) % g.nodes
}
