package workloads

import "testing"

// Generator throughput matters because trace generation is inlined into
// the simulation loop.
func BenchmarkGenerators(b *testing.B) {
	for _, spec := range All() {
		b.Run(spec.Name, func(b *testing.B) {
			src := spec.Sources(1, 1)[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := src.Next(); !ok {
					b.Fatal("source ended")
				}
			}
		})
	}
}
