package workloads

import (
	"testing"

	"bingo/internal/trace"
)

func TestAllWorkloadsPresent(t *testing.T) {
	specs := All()
	if len(specs) != 10 {
		t.Fatalf("want the paper's 10 workloads, got %d", len(specs))
	}
	wantOrder := []string{"DataServing", "SATSolver", "Streaming", "Zeus", "em3d",
		"Mix1", "Mix2", "Mix3", "Mix4", "Mix5"}
	for i, name := range wantOrder {
		if specs[i].Name != name {
			t.Errorf("workload %d = %s, want %s", i, specs[i].Name, name)
		}
		if specs[i].PaperMPKI <= 0 {
			t.Errorf("%s missing paper MPKI", name)
		}
		if specs[i].Description == "" {
			t.Errorf("%s missing description", name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("em3d"); !ok {
		t.Fatal("em3d should exist")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown workload should not resolve")
	}
	if len(Names()) != 10 {
		t.Fatal("Names should list all workloads")
	}
}

func TestSourcesPerCore(t *testing.T) {
	for _, spec := range All() {
		sources := spec.Sources(4, 1)
		if len(sources) != 4 {
			t.Fatalf("%s: %d sources for 4 cores", spec.Name, len(sources))
		}
		for core, src := range sources {
			for i := 0; i < 100; i++ {
				rec, ok := src.Next()
				if !ok {
					t.Fatalf("%s core %d: source ended at %d", spec.Name, core, i)
				}
				if rec.PC == 0 {
					t.Fatalf("%s core %d: zero PC", spec.Name, core)
				}
				if rec.Addr == 0 {
					t.Fatalf("%s core %d: zero address", spec.Name, core)
				}
			}
		}
	}
}

func TestAddressSpacesDisjointAcrossCores(t *testing.T) {
	for _, spec := range All() {
		sources := spec.Sources(2, 1)
		seen := map[int]map[uint64]bool{0: {}, 1: {}}
		for core, src := range sources {
			for i := 0; i < 500; i++ {
				rec, _ := src.Next()
				seen[core][uint64(rec.Addr)>>40] = true
			}
		}
		for top := range seen[0] {
			if seen[1][top] {
				t.Fatalf("%s: cores share the top-of-address-space window %d", spec.Name, top)
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	for _, spec := range All() {
		a := spec.Sources(1, 5)[0]
		b := spec.Sources(1, 5)[0]
		for i := 0; i < 200; i++ {
			ra, _ := a.Next()
			rb, _ := b.Next()
			if ra != rb {
				t.Fatalf("%s: same seed diverged at record %d", spec.Name, i)
			}
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	spec, _ := ByName("DataServing")
	a := spec.Sources(1, 1)[0]
	b := spec.Sources(1, 2)[0]
	same := 0
	for i := 0; i < 200; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra.Addr == rb.Addr {
			same++
		}
	}
	if same > 150 {
		t.Fatalf("different seeds produced %d/200 identical addresses", same)
	}
}

func TestKernelRegistry(t *testing.T) {
	names := SpecKernelNames()
	if len(names) != 12 {
		t.Fatalf("want 12 SPEC kernels, got %d: %v", len(names), names)
	}
	for _, name := range names {
		src, ok := KernelByName(name, 1, 0)
		if !ok {
			t.Fatalf("kernel %s not buildable", name)
		}
		for i := 0; i < 50; i++ {
			if _, ok := src.Next(); !ok {
				t.Fatalf("kernel %s ended at %d", name, i)
			}
		}
	}
	if _, ok := KernelByName("nope", 1, 0); ok {
		t.Fatal("unknown kernel should not resolve")
	}
}

func TestMixesUseDistinctKernels(t *testing.T) {
	mix, _ := ByName("Mix1")
	sources := mix.Sources(4, 1)
	// Distinct kernels use distinct PC bases; sample each core's PCs.
	bases := map[uint64]bool{}
	for _, src := range sources {
		rec, _ := src.Next()
		bases[uint64(rec.PC)&^0xfff] = true
	}
	if len(bases) < 3 {
		t.Fatalf("Mix1 cores look too similar: %d PC bases", len(bases))
	}
}

func TestDependentLoadsExist(t *testing.T) {
	// The server workloads must contain dependent accesses — that is
	// what makes them latency-bound.
	for _, name := range []string{"DataServing", "Zeus", "em3d", "Streaming"} {
		spec, _ := ByName(name)
		src := spec.Sources(1, 1)[0]
		deps := 0
		for i := 0; i < 1000; i++ {
			rec, _ := src.Next()
			if rec.Dep {
				deps++
			}
		}
		if deps == 0 {
			t.Errorf("%s has no dependent loads", name)
		}
	}
}

func TestStoresExist(t *testing.T) {
	for _, name := range []string{"DataServing", "em3d", "Mix1"} {
		spec, _ := ByName(name)
		src := spec.Sources(1, 1)[0]
		stores := 0
		for i := 0; i < 2000; i++ {
			rec, _ := src.Next()
			if rec.Kind == trace.Store {
				stores++
			}
		}
		if stores == 0 {
			t.Errorf("%s has no stores", name)
		}
	}
}

func TestZeusChainIsPermutation(t *testing.T) {
	// The Zeus chain must be a single cycle: temporally perfectly
	// repeatable, spatially random.
	g := newZeus(1, 1<<40).(*zeus)
	seen := make([]bool, len(g.chain))
	cur := g.cursor
	for i := 0; i < len(g.chain); i++ {
		if seen[cur] {
			t.Fatalf("chain revisits block %d after %d steps", cur, i)
		}
		seen[cur] = true
		cur = g.chain[cur]
	}
	if cur != g.cursor {
		t.Fatal("chain does not close into a single cycle")
	}
}

func TestEM3DNeighboursRespectSpan(t *testing.T) {
	g := newEM3D(1, 1<<40).(*em3d)
	for i := 0; i < 5000; i++ {
		rec, _ := g.Next()
		_ = rec
	}
	// Smoke property: generator stays within its node array (plus the
	// vbase window) — addresses must fall below vbase + nodes*128 + slack.
	limit := uint64(1<<40) + g.nodes*128 + 4096
	g2 := newEM3D(2, 1<<40).(*em3d)
	for i := 0; i < 5000; i++ {
		rec, _ := g2.Next()
		if uint64(rec.Addr) >= limit {
			t.Fatalf("em3d address %v outside the node array", rec.Addr)
		}
	}
}
