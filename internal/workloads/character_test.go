package workloads

import (
	"testing"

	"bingo/internal/trace"
)

// These tests pin the spatial character of each generator to its design
// intent (DESIGN.md §2): the properties the paper's analysis depends on
// must hold in the synthetic stand-ins, or the reproduction argument
// falls apart silently.

func analyze(t *testing.T, name string, n int) trace.Summary {
	t.Helper()
	spec, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	return trace.Analyze(spec.Sources(1, 1)[0], n)
}

func TestStreamingIsSpatiallyDense(t *testing.T) {
	s := analyze(t, "Streaming", 200_000)
	// Media streams fill their regions: most touched regions become dense.
	if s.MeanRegionFill < 0.5 {
		t.Fatalf("streaming mean region fill = %.2f, want dense", s.MeanRegionFill)
	}
	if s.SingletonRegion > 0.2 {
		t.Fatalf("streaming singleton regions = %.2f, want few", s.SingletonRegion)
	}
}

func TestZeusIsSpatiallySparse(t *testing.T) {
	s := analyze(t, "Zeus", 200_000)
	// The pointer chain scatters: regions see isolated blocks.
	if s.MeanRegionFill > 0.4 {
		t.Fatalf("zeus mean region fill = %.2f, want sparse", s.MeanRegionFill)
	}
	if s.SingletonRegion < 0.3 {
		t.Fatalf("zeus singleton regions = %.2f, want many", s.SingletonRegion)
	}
}

func TestEM3DIsDenseAndDependent(t *testing.T) {
	s := analyze(t, "em3d", 200_000)
	if s.MeanRegionFill < 0.5 {
		t.Fatalf("em3d mean region fill = %.2f, want dense sweeps", s.MeanRegionFill)
	}
	// Neighbour dereferences are pointer-dependent.
	if s.DependentRatio() < 0.3 {
		t.Fatalf("em3d dependent ratio = %.2f, want heavy chasing", s.DependentRatio())
	}
}

func TestSATSolverIsLightOnMemoryFootprint(t *testing.T) {
	s := analyze(t, "SATSolver", 200_000)
	// Dominated by the small hot variable area: tiny unique footprint
	// relative to accesses.
	if s.FootprintMB > 16 {
		t.Fatalf("satsolver footprint = %.1f MB, want small", s.FootprintMB)
	}
}

func TestDataServingHasManyTriggerSites(t *testing.T) {
	spec, _ := ByName("DataServing")
	recs := trace.Collect(spec.Sources(1, 1)[0], 200_000)
	pcs := trace.TopPCs(recs, 0)
	// Call-site diversity: the history-capacity experiment (Figure 6)
	// needs many distinct trigger PCs.
	if len(pcs) < 100 {
		t.Fatalf("dataserving distinct PCs = %d, want >100", len(pcs))
	}
}

func TestWorkloadsAreMemoryIntensive(t *testing.T) {
	// Every Table II workload must actually generate memory traffic in a
	// plausible band (the paper's workloads are all memory-sensitive).
	for _, spec := range All() {
		s := trace.Analyze(spec.Sources(1, 1)[0], 50_000)
		if r := s.MemRatio(); r < 0.001 || r > 0.5 {
			t.Errorf("%s memory ratio %.4f out of plausible band", spec.Name, r)
		}
		if s.FootprintMB < 0.1 {
			t.Errorf("%s footprint %.2f MB suspiciously small", spec.Name, s.FootprintMB)
		}
	}
}

func TestMixKernelsDiffer(t *testing.T) {
	// The stream-heavy kernels must be dense; the pointer-heavy sparse.
	dense, _ := KernelByName("libquantum", 1, 0)
	sparse, _ := KernelByName("omnetpp", 1, 0)
	ds := trace.Analyze(dense, 100_000)
	ss := trace.Analyze(sparse, 100_000)
	if ds.MeanRegionFill <= ss.MeanRegionFill {
		t.Fatalf("libquantum fill %.2f should exceed omnetpp %.2f",
			ds.MeanRegionFill, ss.MeanRegionFill)
	}
	if ss.DependentRatio() <= ds.DependentRatio() {
		t.Fatalf("omnetpp dependence %.2f should exceed libquantum %.2f",
			ss.DependentRatio(), ds.DependentRatio())
	}
}
