// Package workloads provides deterministic synthetic trace generators that
// stand in for the paper's proprietary server checkpoints (Cassandra/YCSB
// Data Serving, Cloud9 SAT Solver, Darwin Streaming, Zeus web server,
// em3d) and its SPEC CPU2006 mixes. Each generator reproduces the *memory
// behaviour class* the paper's analysis leans on — the distribution of
// per-region footprints conditioned on trigger events, the ratio of
// spatially- to temporally-correlated accesses, and relative memory
// intensity — so that the prefetcher ranking and crossover shape of the
// evaluation carries over even though absolute IPCs do not.
//
// All generators are seeded and produce unbounded streams; the simulator
// bounds runs by instruction budget. Per-core streams use disjoint
// virtual address spaces (cores do not share data; prefetchers are
// per-core in the paper, so sharing is not load-bearing).
//
// Concurrency: Spec.Sources and every generator constructor may be
// called from any number of goroutines — the parallel experiment engine
// materialises traces for many simulations at once. Each generator owns
// its RNG (math/rand.Rand seeded per instance; the package never touches
// the global rand source) and its emit queue, so two concurrently
// running simulations of the same workload share no mutable state and
// produce bit-identical streams for equal (seed, core) pairs.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"bingo/internal/mem"
	"bingo/internal/trace"
)

// Spec is one named workload of Table II.
type Spec struct {
	// Name matches the paper's Table II row.
	Name string
	// Description summarises what the generator models.
	Description string
	// PaperMPKI is the LLC MPKI the paper reports (Table II), recorded
	// for the EXPERIMENTS.md comparison.
	PaperMPKI float64
	// Sources builds one trace source per core.
	Sources func(cores int, seed int64) []trace.Source
}

// All returns the ten workloads in the paper's Table II order.
func All() []Spec {
	return []Spec{
		{
			Name:        "DataServing",
			Description: "Cassandra-like KV store: zipfian object reads with per-class fixed layouts over a large heap plus an index walk",
			PaperMPKI:   6.7,
			Sources:     perCore(newDataServing),
		},
		{
			Name:        "SATSolver",
			Description: "Cloud9-like symbolic execution: hot variable arrays with occasional short random clause visits (low MPKI, little spatial reuse)",
			PaperMPKI:   1.7,
			Sources:     perCore(newSATSolver),
		},
		{
			Name:        "Streaming",
			Description: "Darwin-like media server: hundreds of concurrent sequential client streams (dense full-region footprints, heavy compulsory misses)",
			PaperMPKI:   3.9,
			Sources:     perCore(newStreaming),
		},
		{
			Name:        "Zeus",
			Description: "Zeus-like web server: temporally correlated pointer chains with spatially inconsistent region footprints",
			PaperMPKI:   5.2,
			Sources:     perCore(newZeus),
		},
		{
			Name:        "em3d",
			Description: "em3d graph kernel: 400K-node degree-2 traversal over a regular node layout, 15% remote neighbours",
			PaperMPKI:   32.4,
			Sources:     perCore(newEM3D),
		},
		mixSpec("Mix1", 15.7, "lbm", "omnetpp", "soplex", "sphinx3"),
		mixSpec("Mix2", 12.5, "lbm", "libquantum", "sphinx3", "zeusmp"),
		mixSpec("Mix3", 12.7, "milc", "omnetpp", "perlbench", "soplex"),
		mixSpec("Mix4", 14.7, "astar", "omnetpp", "soplex", "tonto"),
		mixSpec("Mix5", 12.6, "GemsFDTD", "gromacs", "omnetpp", "soplex"),
	}
}

// ByName finds a workload spec by its Table II name (case-sensitive).
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists workload names in Table II order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// perCore runs the same generator on every core with decorrelated seeds
// and disjoint address spaces (server workloads).
func perCore(build func(seed int64, vbase uint64) trace.Source) func(int, int64) []trace.Source {
	return func(cores int, seed int64) []trace.Source {
		out := make([]trace.Source, cores)
		for i := 0; i < cores; i++ {
			out[i] = build(seed+int64(i)*7919, coreVBase(i))
		}
		return out
	}
}

// wrapPhaseSkip is the per-wrap stagger applied when a machine has more
// cores than a mix lists kernels: the j-th rerun of a kernel starts
// j*wrapPhaseSkip records into its stream.
const wrapPhaseSkip = 2048

// mixSpec builds a 4-core SPEC mix: core i runs kernel i, wrapping if a
// system has more cores than the mix lists. Seeds are decorrelated per
// core (i*104729) and every core owns a disjoint virtual base — but the
// streaming kernels (the multiStream family) are seed-insensitive by
// construction, their access pattern being the benchmark itself, so a
// wrapped core would otherwise emit a cycle-exact clone of its partner.
// Each wrap is therefore phase-shifted by draining a deterministic
// prefix: two instances of the same kernel then run staggered, the way
// a real multiprogrammed machine would interleave them. Cores below
// len(kernels) skip nothing, so 4-core mixes are bit-identical to the
// unwrapped behaviour.
func mixSpec(name string, paperMPKI float64, kernels ...string) Spec {
	return Spec{
		Name:        name,
		Description: fmt.Sprintf("SPEC-like mix: %v", kernels),
		PaperMPKI:   paperMPKI,
		Sources: func(cores int, seed int64) []trace.Source {
			out := make([]trace.Source, cores)
			for i := 0; i < cores; i++ {
				k := kernels[i%len(kernels)]
				build, ok := specKernels[k]
				if !ok {
					panic(fmt.Sprintf("workloads: unknown SPEC kernel %q", k))
				}
				src := build(seed+int64(i)*104729, coreVBase(i))
				for skip := (i / len(kernels)) * wrapPhaseSkip; skip > 0; skip-- {
					src.Next()
				}
				out[i] = src
			}
			return out
		},
	}
}

// SpecKernelNames lists the available SPEC-like kernels sorted by name.
func SpecKernelNames() []string {
	out := make([]string, 0, len(specKernels))
	for k := range specKernels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KernelByName builds a single SPEC-like kernel source (for tools/tests).
func KernelByName(name string, seed int64, core int) (trace.Source, bool) {
	build, ok := specKernels[name]
	if !ok {
		return nil, false
	}
	return build(seed, coreVBase(core)), true
}

// coreVBase separates per-core virtual address spaces.
func coreVBase(core int) uint64 { return uint64(core+1) << 40 }

// queue is the emit/pop base embedded by every generator.
type queue struct {
	buf  []trace.Record
	head int
}

func (q *queue) emit(pc uint64, addr uint64, kind trace.Kind, gap uint32) {
	q.buf = append(q.buf, trace.Record{
		PC:     mem.PC(pc),
		Addr:   mem.Addr(addr),
		Kind:   kind,
		NonMem: gap,
	})
}

// emitDep emits an address-dependent access: the core will not issue it
// until the most recent load completes (pointer dereference).
func (q *queue) emitDep(pc uint64, addr uint64, kind trace.Kind, gap uint32) {
	q.buf = append(q.buf, trace.Record{
		PC:     mem.PC(pc),
		Addr:   mem.Addr(addr),
		Kind:   kind,
		NonMem: gap,
		Dep:    true,
	})
}

func (q *queue) pop() (trace.Record, bool) {
	if q.head >= len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
		return trace.Record{}, false
	}
	r := q.buf[q.head]
	q.head++
	return r, true
}

// filler runs a generator's fill function until a record is available.
type filler struct {
	queue
	fill func()
}

// Next implements trace.Source.
func (f *filler) Next() (trace.Record, bool) {
	for {
		if r, ok := f.pop(); ok {
			return r, true
		}
		f.fill()
	}
}

// newRNG builds the deterministic per-generator random source.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// zipfOver returns a zipfian sampler over [0, n).
func zipfOver(rng *rand.Rand, n uint64) *rand.Zipf {
	return rand.NewZipf(rng, 1.2, 1, n-1)
}
