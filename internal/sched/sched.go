// Package sched provides the wakeup scheduler of the event-driven
// simulation engine: a queue of Wakers, each reporting the next cycle at
// which its component's state machine has a pending transition. The
// system loop asks the queue for the earliest registered wakeup and
// jumps the clock straight to it instead of probing every component
// cycle by cycle.
//
// Wakers register in one of two classes, matching the two kinds of
// component in the simulator:
//
//   - Hard wakers (Register) are the active agents — the cores. Their
//     events *require* the clock to land: a retire or dispatch that the
//     loop jumped over would simulate a different machine. Every skip is
//     clamped to the earliest hard wakeup.
//
//   - Lazy wakers (RegisterLazy) are the passive components — caches,
//     DRAM, the prefetch queues. Their state mutates only inside the
//     Access calls that core ticks make; a bank timer or fill that
//     expires mid-gap changes nothing until the next access *observes*
//     it by comparing against the clock, and the completion times that
//     gate core progress are already baked into core state at dispatch.
//     Skipping their expiries is therefore safe, and the default skip
//     policy ignores them. They still report real deadlines: NextWakeAll
//     clamps to them too, giving a maximally conservative engine that
//     sanitizer builds run so the skip audit (Audit, DESIGN.md §6b) is a
//     strict invariant — and so the san/non-san differential oracle
//     proves the aggressive and conservative policies byte-identical.
//
// The contract that makes cycle-skipping sound is one-sided: a Waker may
// report an event *earlier* than the component really needs (the loop
// just lands on a quiet cycle and ticks through it, exactly as the
// lockstep engine would), but it must never report one *later*. The
// queue therefore re-polls every waker on each NextWake call rather than
// trusting cached deadlines: passive components acquire new timers
// whenever a core's tick accesses them, and a core's next-progress cycle
// is recomputed by every tick, so cached deadlines can move in either
// direction.
//
// A Queue belongs to one simulation goroutine, like every component it
// schedules.
package sched

import "fmt"

// None is the "no pending event" sentinel (^uint64(0)). A Waker with
// nothing scheduled returns it, and NextWake returns it when no
// registered waker has a pending event.
const None = ^uint64(0)

// Waker is implemented by every time-driven simulation component.
type Waker interface {
	// NextEventAt returns the earliest cycle strictly greater than now at
	// which the component can act or change observable state — a core's
	// next possible retire/dispatch, a DRAM bank timer expiry, an
	// in-flight cache fill arrival — or None when nothing is pending.
	// Returning a cycle at or before now is a contract violation: the
	// caller just simulated cycle now, so an event "due" there has either
	// been handled or can never be.
	NextEventAt(now uint64) uint64
}

// entry is one registered waker with its cached deadline.
type entry struct {
	name string
	//conc:barrier-guarded wakers are polled only at the clock-advance barrier, never from core frontends
	w  Waker
	at uint64
}

// Queue holds the registered wakers: hard ones in an indexed min-heap
// ordered by next-event cycle, lazy ones in a flat list consulted only
// by the conservative paths. Register wakers once at engine start;
// NextWake then yields the skip target for each clock advance.
type Queue struct {
	entries []entry // hard wakers (heap-indexed)
	heap    []int   // heap[i] = index into entries; ordered by entries[].at
	pos     []int   // pos[entryIdx] = position in heap
	lazy    []entry // lazy wakers (NextWakeAll and Audit only)
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{}
}

// Register adds a hard waker under a diagnostic name (reported by Audit
// failures and the contract panic). Every skip is clamped to the
// earliest hard wakeup. Registration order matters only as a fast-path
// hint: NextWake polls in this order and early-exits on a now+1 report,
// so register the most often busy components first.
func (q *Queue) Register(name string, w Waker) {
	if w == nil {
		panic("sched: Register called with nil waker")
	}
	idx := len(q.entries)
	q.entries = append(q.entries, entry{name: name, w: w, at: None})
	q.heap = append(q.heap, idx)
	q.pos = append(q.pos, len(q.heap)-1)
}

// RegisterLazy adds a lazy waker: a passive component whose reported
// deadlines bound its next internal state-machine transition but whose
// transitions materialise lazily at access time, so the default skip
// policy may jump over them (see the package comment for why that is
// sound). Lazy wakers participate in NextWakeAll and Audit.
func (q *Queue) RegisterLazy(name string, w Waker) {
	if w == nil {
		panic("sched: RegisterLazy called with nil waker")
	}
	q.lazy = append(q.lazy, entry{name: name, w: w, at: None})
}

// Len returns the number of registered wakers of both classes.
func (q *Queue) Len() int { return len(q.entries) + len(q.lazy) }

// NextWake re-polls every hard waker at cycle now and returns the
// earliest pending event, or None when nothing is scheduled. It panics
// if any waker violates the strictly-after-now contract — that is an
// engine bug, not a recoverable condition.
//
// The poll early-exits as soon as any waker reports now+1: no wakeup can
// be earlier (the contract forbids <= now), so the remaining polls can't
// change the answer. This is the event engine's fast path — a cycle on
// which the first-registered core makes progress costs one poll, not a
// full sweep, and the full sweep only runs when a real skip is available
// to amortise it. Entries skipped by the early exit keep stale cached
// deadlines, which is harmless: every call re-polls, nothing trusts the
// cache.
func (q *Queue) NextWake(now uint64) uint64 {
	min := None
	for i := range q.entries {
		e := &q.entries[i]
		at := e.w.NextEventAt(now)
		if at <= now {
			panic(fmt.Sprintf("sched: waker %q scheduled a wakeup at cycle %d, at or before the current cycle %d",
				e.name, at, now))
		}
		if at != e.at {
			e.at = at
			q.fix(q.pos[i])
		}
		if at < min {
			min = at
			if at == now+1 {
				return at
			}
		}
	}
	return min
}

// NextWakeAll is NextWake over both waker classes: the maximally
// conservative skip target, landing on every passive timer expiry as
// well as every core event. Sanitizer-enabled runs use it so the skip
// audit holds strictly; it is never required for correctness (that is
// exactly what the san/non-san differential oracle demonstrates).
func (q *Queue) NextWakeAll(now uint64) uint64 {
	min := q.NextWake(now)
	if min == now+1 {
		return min
	}
	if lz := q.NextWakeLazy(now); lz < min {
		min = lz
	}
	return min
}

// NextWakeLazy polls only the lazy wakers and returns their earliest
// pending event. The system's conservative skip path combines it with
// its own exact per-core deadlines (which it keeps fresher than the
// queue's cache — a core's deadline changes only when that core ticks,
// so the engine re-polls cores at tick time rather than per advance).
func (q *Queue) NextWakeLazy(now uint64) uint64 {
	min := None
	for i := range q.lazy {
		e := &q.lazy[i]
		at := e.w.NextEventAt(now)
		if at <= now {
			panic(fmt.Sprintf("sched: waker %q scheduled a wakeup at cycle %d, at or before the current cycle %d",
				e.name, at, now))
		}
		e.at = at
		if at < min {
			min = at
			if at == now+1 {
				return at
			}
		}
	}
	return min
}

// Audit re-polls every waker of both classes at cycle prev and calls
// fail for each one reporting a pending event inside the open interval
// (prev, next) — the cycles a skip from prev to next would jump over.
// The event engine's sanitizer hook runs it after every multi-cycle
// advance (sanitized runs take NextWakeAll skips, so a hit means the
// scheduler chose a skip target past a component's pending work).
func (q *Queue) Audit(prev, next uint64, fail func(name string, at uint64)) {
	check := func(es []entry) {
		for i := range es {
			e := &es[i]
			at := e.w.NextEventAt(prev)
			if at > prev && at < next {
				fail(e.name, at)
			}
		}
	}
	check(q.entries)
	check(q.lazy)
}

// fix restores the heap property for the entry at heap position i after
// its deadline changed in either direction.
func (q *Queue) fix(i int) {
	if !q.up(i) {
		q.down(i)
	}
}

func (q *Queue) less(i, j int) bool {
	return q.entries[q.heap[i]].at < q.entries[q.heap[j]].at
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i]] = i
	q.pos[q.heap[j]] = j
}

// up sifts position i toward the root, reporting whether it moved.
func (q *Queue) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down sifts position i toward the leaves.
func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
