package sched

import (
	"fmt"
	"math/rand"
	"testing"
)

// scriptWaker replays a fixed schedule of event cycles: NextEventAt
// returns the earliest scheduled cycle strictly after now.
type scriptWaker struct {
	events []uint64 // sorted ascending
}

func (s *scriptWaker) NextEventAt(now uint64) uint64 {
	for _, e := range s.events {
		if e > now {
			return e
		}
	}
	return None
}

// naiveMin is the reference implementation NextWake is checked against.
func naiveMin(wakers []*scriptWaker, now uint64) uint64 {
	min := uint64(None)
	for _, w := range wakers {
		if at := w.NextEventAt(now); at < min {
			min = at
		}
	}
	return min
}

// TestNextWakeMatchesNaiveMin drives randomly scheduled wakers through
// randomly advancing clocks and requires the heap-backed queue to agree
// with a linear scan at every step.
func TestNextWakeMatchesNaiveMin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		q := New()
		wakers := make([]*scriptWaker, n)
		for i := range wakers {
			events := make([]uint64, rng.Intn(40))
			for j := range events {
				events[j] = uint64(1 + rng.Intn(5000))
			}
			// scriptWaker scans in order, so keep the schedule sorted.
			for a := 1; a < len(events); a++ {
				for b := a; b > 0 && events[b] < events[b-1]; b-- {
					events[b], events[b-1] = events[b-1], events[b]
				}
			}
			wakers[i] = &scriptWaker{events: events}
			q.Register(fmt.Sprintf("w%d", i), wakers[i])
		}
		now := uint64(0)
		for step := 0; step < 200; step++ {
			got := q.NextWake(now)
			want := naiveMin(wakers, now)
			if got != want {
				t.Fatalf("trial %d step %d: NextWake(%d) = %d, naive min = %d", trial, step, now, got, want)
			}
			if want == None {
				break
			}
			// Advance either exactly to the wakeup (the engine's move) or
			// somewhere short of it, to exercise re-polling mid-interval.
			if rng.Intn(2) == 0 {
				now = want
			} else {
				now += 1 + uint64(rng.Intn(int(want-now)+1))
			}
		}
	}
}

// lateWaker misbehaves: it schedules an event at or before the clock.
type lateWaker struct{}

func (lateWaker) NextEventAt(now uint64) uint64 { return now }

// TestNextWakePanicsOnPastWakeup pins the queue's side of the waker
// contract: no registered wakeup may land at or before the current
// clock, and a waker that tries is an engine bug worth dying for.
func TestNextWakePanicsOnPastWakeup(t *testing.T) {
	q := New()
	q.Register("late", lateWaker{})
	defer func() {
		if recover() == nil {
			t.Fatal("NextWake accepted a wakeup at the current cycle; want panic")
		}
	}()
	q.NextWake(100)
}

// movingWaker reports a fixed event the queue has already cached, then
// silently acquires an earlier one — the stale-deadline hazard passive
// components create when a core's tick hands them new timers.
type movingWaker struct{ at uint64 }

func (m *movingWaker) NextEventAt(now uint64) uint64 {
	if m.at <= now {
		return None
	}
	return m.at
}

// TestNextWakeSeesMovedDeadlines verifies the queue never trusts a
// cached deadline: moving a waker's event earlier between calls must be
// visible on the very next NextWake.
func TestNextWakeSeesMovedDeadlines(t *testing.T) {
	q := New()
	w := &movingWaker{at: 1000}
	q.Register("m", w)
	if got := q.NextWake(0); got != 1000 {
		t.Fatalf("NextWake = %d, want 1000", got)
	}
	w.at = 10 // a tick just handed the component an earlier timer
	if got := q.NextWake(0); got != 10 {
		t.Fatalf("NextWake after deadline moved earlier = %d, want 10", got)
	}
	w.at = 500 // and one that moved later
	if got := q.NextWake(0); got != 500 {
		t.Fatalf("NextWake after deadline moved later = %d, want 500", got)
	}
}

// TestAuditFlagsSkippedEvents checks both directions of the skip
// invariant: events strictly inside (prev, next) are reported with the
// offending waker's name, events at the endpoints or outside are not.
func TestAuditFlagsSkippedEvents(t *testing.T) {
	q := New()
	q.Register("inside", &movingWaker{at: 150})
	q.Register("at-next", &movingWaker{at: 200})
	q.Register("beyond", &movingWaker{at: 300})
	q.Register("idle", &movingWaker{at: 0}) // reports None

	var names []string
	var ats []uint64
	q.Audit(100, 200, func(name string, at uint64) {
		names = append(names, name)
		ats = append(ats, at)
	})
	if len(names) != 1 || names[0] != "inside" || ats[0] != 150 {
		t.Fatalf("Audit(100,200) flagged %v at %v, want [inside] at [150]", names, ats)
	}
}

// TestLazyWakersClampOnlyNextWakeAll pins the two-class skip policy:
// lazy wakers (passive components) are invisible to NextWake but clamp
// NextWakeAll, and both classes are audited.
func TestLazyWakersClampOnlyNextWakeAll(t *testing.T) {
	q := New()
	q.Register("core", &movingWaker{at: 400})
	q.RegisterLazy("dram", &movingWaker{at: 150})
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if got := q.NextWake(100); got != 400 {
		t.Fatalf("NextWake = %d, want 400 (lazy waker must not clamp)", got)
	}
	if got := q.NextWakeAll(100); got != 150 {
		t.Fatalf("NextWakeAll = %d, want 150 (lazy waker must clamp)", got)
	}
	var names []string
	q.Audit(100, 400, func(name string, at uint64) { names = append(names, name) })
	if len(names) != 1 || names[0] != "dram" {
		t.Fatalf("Audit flagged %v, want [dram]", names)
	}
}

// TestNextWakeAllMatchesNaiveMin mirrors the NextWake property test over
// a mixed hard/lazy population: NextWakeAll must equal the naive min of
// every waker, whichever class holds the earliest event.
func TestNextWakeAllMatchesNaiveMin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		q := New()
		var all []*scriptWaker
		for i := 0; i < 1+rng.Intn(10); i++ {
			events := make([]uint64, rng.Intn(30))
			for j := range events {
				events[j] = uint64(1 + rng.Intn(4000))
			}
			for a := 1; a < len(events); a++ {
				for b := a; b > 0 && events[b] < events[b-1]; b-- {
					events[b], events[b-1] = events[b-1], events[b]
				}
			}
			w := &scriptWaker{events: events}
			all = append(all, w)
			if rng.Intn(2) == 0 {
				q.Register(fmt.Sprintf("hard%d", i), w)
			} else {
				q.RegisterLazy(fmt.Sprintf("lazy%d", i), w)
			}
		}
		now := uint64(0)
		for step := 0; step < 150; step++ {
			got := q.NextWakeAll(now)
			want := naiveMin(all, now)
			if got != want {
				t.Fatalf("trial %d step %d: NextWakeAll(%d) = %d, naive min = %d", trial, step, now, got, want)
			}
			if want == None {
				break
			}
			if rng.Intn(2) == 0 {
				now = want
			} else {
				now += 1 + uint64(rng.Intn(int(want-now)+1))
			}
		}
	}
}

// TestLazyWakerPanicsOnPastWakeup: the strictly-after-now contract binds
// lazy wakers exactly like hard ones.
func TestLazyWakerPanicsOnPastWakeup(t *testing.T) {
	q := New()
	q.RegisterLazy("late", lateWaker{})
	defer func() {
		if recover() == nil {
			t.Fatal("NextWakeAll accepted a wakeup at the current cycle; want panic")
		}
	}()
	q.NextWakeAll(100)
}

// TestEmptyQueue: a queue with no wakers reports None and audits clean.
func TestEmptyQueue(t *testing.T) {
	q := New()
	if got := q.NextWake(5); got != None {
		t.Fatalf("empty NextWake = %d, want None", got)
	}
	q.Audit(0, 100, func(name string, at uint64) {
		t.Fatalf("empty queue audit flagged %s at %d", name, at)
	})
	if q.Len() != 0 {
		t.Fatalf("empty queue Len = %d", q.Len())
	}
}
