// All wall-clock reads in this file drive lease bookkeeping — an
// operational concern of the job service. Simulated results never depend
// on them: a cell's outcome is a pure function of (key, options), and
// expiry only decides *who* runs a cell, never *what* it computes.
package sweep

import (
	"fmt"
	"sync"
	"time"

	"bingo/internal/harness"
)

// jobStatus is a queue entry's lifecycle state.
type jobStatus int

const (
	jobPending jobStatus = iota
	jobLeased
	jobDone
	jobFailed
)

// queueJob is one queue entry.
type queueJob struct {
	cell     harness.PlannedCell
	status   jobStatus
	attempts int
	leaseID  string
	deadline time.Time
	result   *Result
}

// LeaseOutcome classifies a lease request's answer.
type LeaseOutcome int

const (
	// LeaseGranted: the returned Job is the caller's to run.
	LeaseGranted LeaseOutcome = iota
	// LeaseRetry: nothing leasable right now (all remaining jobs are
	// held by live leases) — poll again.
	LeaseRetry
	// LeaseDrained: every job is terminal; the worker may exit.
	LeaseDrained
)

// Queue is the coordinator's lease-based job queue. Jobs are handed out
// in plan order; a lease that misses its heartbeat deadline is reclaimed
// and the job re-leased (up to maxAttempts), and completion is
// idempotent with first-success-wins — safe because results are
// deterministic, so any two successful completions of a job carry
// identical payloads.
//
// Queue is safe for concurrent use. The onComplete hook runs outside the
// queue lock, once per job, for the single accepted success.
type Queue struct {
	leaseTTL    time.Duration
	maxAttempts int
	onComplete  func(cell harness.PlannedCell, res Result)

	mu          sync.Mutex
	now         func() time.Time // injectable for lease-expiry tests
	jobs        []*queueJob
	byID        map[string]*queueJob
	leaseSeq    uint64
	retries     int
	outstanding int
	drained     chan struct{}
}

// NewQueue builds a queue over the planned cells. leaseTTL is the
// heartbeat deadline for one lease; maxAttempts bounds how many times a
// job may be leased before it is marked failed (the coordinator then
// falls back to simulating it locally at render time). onComplete, if
// non-nil, observes the single accepted success of each job.
func NewQueue(cells []harness.PlannedCell, leaseTTL time.Duration, maxAttempts int, onComplete func(harness.PlannedCell, Result)) *Queue {
	if leaseTTL <= 0 {
		leaseTTL = time.Minute
	}
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	q := &Queue{
		leaseTTL:    leaseTTL,
		maxAttempts: maxAttempts,
		onComplete:  onComplete,
		now:         time.Now,
		byID:        make(map[string]*queueJob, len(cells)),
		outstanding: len(cells),
		drained:     make(chan struct{}),
	}
	for _, c := range cells {
		j := &queueJob{cell: c}
		q.jobs = append(q.jobs, j)
		q.byID[c.Key.String()] = j
	}
	if q.outstanding == 0 {
		close(q.drained)
	}
	return q
}

// Lease hands out the next runnable job. Expired leases are reclaimed
// first, so a crashed worker's job becomes leasable again one TTL after
// its last heartbeat.
func (q *Queue) Lease() (Job, LeaseOutcome) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	q.reclaimExpiredLocked(now)
	if q.outstanding == 0 {
		return Job{}, LeaseDrained
	}
	for _, j := range q.jobs {
		if j.status != jobPending {
			continue
		}
		q.leaseSeq++
		j.status = jobLeased
		j.attempts++
		if j.attempts > 1 {
			q.retries++
		}
		j.leaseID = fmt.Sprintf("lease-%d", q.leaseSeq)
		j.deadline = now.Add(q.leaseTTL)
		return Job{
			Version:        ProtocolVersion,
			ID:             j.cell.Key.String(),
			LeaseID:        j.leaseID,
			Attempt:        j.attempts,
			LeaseTTLMillis: q.leaseTTL.Milliseconds(),
			Key:            j.cell.Key,
			Opts:           j.cell.Opts,
		}, LeaseGranted
	}
	return Job{}, LeaseRetry
}

// reclaimExpiredLocked returns expired leases to the pending pool, or
// marks their jobs failed once the attempt budget is spent.
func (q *Queue) reclaimExpiredLocked(now time.Time) {
	for _, j := range q.jobs {
		if j.status != jobLeased || now.Before(j.deadline) {
			continue
		}
		j.leaseID = ""
		if j.attempts >= q.maxAttempts {
			j.status = jobFailed
			q.finishLocked()
		} else {
			j.status = jobPending
		}
	}
}

// finishLocked accounts one job reaching a terminal state.
func (q *Queue) finishLocked() {
	q.outstanding--
	if q.outstanding == 0 {
		close(q.drained)
	}
}

// Heartbeat extends the named lease. False means the lease is no longer
// current (expired and re-leased, or the job finished) — the worker
// should abandon the job.
func (q *Queue) Heartbeat(jobID, leaseID string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[jobID]
	if !ok || j.status != jobLeased || j.leaseID != leaseID {
		return false
	}
	now := q.now()
	if !now.Before(j.deadline) {
		// Already expired; reclamation will handle it.
		return false
	}
	j.deadline = now.Add(q.leaseTTL)
	return true
}

// Complete records a worker's result. A success is accepted
// first-wins regardless of which lease produced it — even a straggler
// whose lease expired, or a job already marked failed, since a
// deterministic result is correct no matter who computed it. Duplicate
// successes and unknown jobs are ignored. A failure report only counts
// against the attempt budget when it quotes the current lease; stale
// failures (the job was re-leased) are ignored.
//
// The returned bool reports whether this call's success was the one
// accepted.
func (q *Queue) Complete(res Result) bool {
	q.mu.Lock()
	j, ok := q.byID[res.JobID]
	if !ok {
		q.mu.Unlock()
		return false
	}
	if res.Error == "" {
		if j.status == jobDone {
			q.mu.Unlock()
			return false
		}
		wasTerminal := j.status == jobFailed
		j.status = jobDone
		j.leaseID = ""
		j.result = &res
		if !wasTerminal {
			q.finishLocked()
		}
		hook := q.onComplete
		cell := j.cell
		q.mu.Unlock()
		if hook != nil {
			hook(cell, res)
		}
		return true
	}
	// Failure report: only the current lease may spend an attempt.
	if j.status == jobLeased && j.leaseID == res.LeaseID {
		j.leaseID = ""
		if j.attempts >= q.maxAttempts {
			j.status = jobFailed
			q.finishLocked()
		} else {
			j.status = jobPending
		}
	}
	q.mu.Unlock()
	return false
}

// Drained is closed once every job is terminal (done or failed).
func (q *Queue) Drained() <-chan struct{} { return q.drained }

// Progress snapshots the queue's state.
func (q *Queue) Progress() Progress {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reclaimExpiredLocked(q.now())
	p := Progress{Version: ProtocolVersion, Total: len(q.jobs), Retries: q.retries}
	for _, j := range q.jobs {
		switch j.status {
		case jobPending:
			p.Pending++
		case jobLeased:
			p.Leased++
		case jobDone:
			p.Done++
		case jobFailed:
			p.Failed++
		}
	}
	return p
}
