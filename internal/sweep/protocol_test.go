package sweep

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"bingo/internal/harness"
)

// sampleJob builds a fully populated job envelope.
func sampleJob() Job {
	return Job{
		Version:        ProtocolVersion,
		ID:             "SATSolver/bingo",
		LeaseID:        "lease-1",
		Attempt:        1,
		LeaseTTLMillis: 60_000,
		Key:            harness.CellKey{Workload: "SATSolver", Prefetcher: "bingo"},
		Opts:           harness.DefaultRunOptions(),
	}
}

func TestJobRoundTrip(t *testing.T) {
	want := sampleJob()
	data, err := encodeJSON(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJob(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("job round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestResultRoundTrip(t *testing.T) {
	want := Result{
		Version:    ProtocolVersion,
		JobID:      "SATSolver/bingo",
		LeaseID:    "lease-1",
		DurationNS: 123456789,
		Aux:        harness.CellAux{Events: &harness.EventCounters{Predicted: 7, Lookups: 11}},
		Telemetry:  []TelemetryFile{{Suffix: ".json", Data: []byte(`{"x":1}`)}},
	}
	want.Results.TotalCycles = 99
	data, err := encodeJSON(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("result round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	j := sampleJob()
	j.Version = ProtocolVersion + 1
	data, err := encodeJSON(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeJob(bytes.NewReader(data)); err == nil {
		t.Fatal("wrong-version job decoded")
	}
}

func TestDecodeRejectsOversizedEnvelope(t *testing.T) {
	huge := append([]byte(`{"version":1,"job_id":"x","lease_id":"y","error":"`),
		bytes.Repeat([]byte("a"), MaxResultBytes)...)
	huge = append(huge, []byte(`"}`)...)
	_, err := DecodeResult(bytes.NewReader(huge))
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized result: err=%v, want size-cap rejection", err)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	data, err := encodeJSON(sampleJob())
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, []byte(`{"version":1}`)...)
	if _, err := DecodeJob(bytes.NewReader(data)); err == nil {
		t.Fatal("job with trailing data decoded")
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeControl(strings.NewReader(
		`{"version":1,"job_id":"a","lease_id":"b","evil":true}`)); err == nil {
		t.Fatal("control with unknown field decoded")
	}
}

func TestDecodeRejectsBadTelemetrySuffix(t *testing.T) {
	res := Result{Version: ProtocolVersion, JobID: "a", LeaseID: "b",
		Telemetry: []TelemetryFile{{Suffix: "../../evil", Data: []byte("x")}}}
	data, err := encodeJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(bytes.NewReader(data)); err == nil {
		t.Fatal("result with path-traversal telemetry suffix decoded")
	}
}

func TestDecodeRejectsMissingLeaseTTL(t *testing.T) {
	j := sampleJob()
	j.LeaseTTLMillis = 0
	data, err := encodeJSON(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeJob(bytes.NewReader(data)); err == nil {
		t.Fatal("job without lease TTL decoded")
	}
}

func TestValidArtifactHash(t *testing.T) {
	ok := strings.Repeat("0a", 32)
	if !validArtifactHash(ok) {
		t.Fatalf("valid hash %q rejected", ok)
	}
	for _, bad := range []string{
		"", "short", strings.Repeat("0a", 32) + "0", // wrong lengths
		strings.ToUpper(ok),                  // uppercase hex
		"../" + strings.Repeat("0a", 32)[3:], // path traversal
		strings.Repeat("0g", 32),             // non-hex
	} {
		if validArtifactHash(bad) {
			t.Fatalf("bad hash %q accepted", bad)
		}
	}
}

// FuzzJobWire hammers every wire decoder with arbitrary bytes: they must
// never panic, and anything they accept must satisfy the envelope
// invariants (version, required identifiers, caps).
func FuzzJobWire(f *testing.F) {
	if data, err := encodeJSON(sampleJob()); err == nil {
		f.Add(data)
	}
	res := Result{Version: ProtocolVersion, JobID: "a/b", LeaseID: "lease-1",
		Telemetry: []TelemetryFile{{Suffix: ".json", Data: []byte("{}")}}}
	if data, err := encodeJSON(res); err == nil {
		f.Add(data)
	}
	if data, err := encodeJSON(Control{Version: ProtocolVersion, JobID: "a/b", LeaseID: "lease-1"}); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		if j, err := DecodeJob(bytes.NewReader(data)); err == nil {
			if j.Version != ProtocolVersion || j.ID == "" || j.LeaseID == "" || j.LeaseTTLMillis <= 0 {
				t.Fatalf("DecodeJob accepted invalid envelope: %+v", j)
			}
		}
		if r, err := DecodeResult(bytes.NewReader(data)); err == nil {
			if r.Version != ProtocolVersion || r.JobID == "" || r.LeaseID == "" {
				t.Fatalf("DecodeResult accepted invalid envelope: %+v", r)
			}
			for _, tf := range r.Telemetry {
				if tf.Suffix != ".json" && tf.Suffix != ".trace.json" {
					t.Fatalf("DecodeResult accepted telemetry suffix %q", tf.Suffix)
				}
			}
		}
		if c, err := DecodeControl(bytes.NewReader(data)); err == nil {
			if c.Version != ProtocolVersion || c.JobID == "" || c.LeaseID == "" {
				t.Fatalf("DecodeControl accepted invalid envelope: %+v", c)
			}
		}
		if cfg, err := DecodeConfig(bytes.NewReader(data)); err == nil && cfg.Version != ProtocolVersion {
			t.Fatalf("DecodeConfig accepted version %d", cfg.Version)
		}
		if p, err := DecodeProgress(bytes.NewReader(data)); err == nil && p.Version != ProtocolVersion {
			t.Fatalf("DecodeProgress accepted version %d", p.Version)
		}
	})
}
