package sweep

import (
	"fmt"
	"testing"
	"time"

	"bingo/internal/harness"
	"bingo/internal/system"
)

// testCells builds n distinct planned cells (run thunks unused: the
// queue never executes jobs itself).
func testCells(n int) []harness.PlannedCell {
	out := make([]harness.PlannedCell, n)
	for i := range out {
		out[i] = harness.PlannedCell{
			Key:  harness.CellKey{Workload: fmt.Sprintf("w%d", i), Prefetcher: "bingo"},
			Opts: harness.RunOptions{Seed: int64(i)},
		}
	}
	return out
}

// testClock installs a controllable clock and returns the advance func.
func testClock(q *Queue) func(d time.Duration) {
	now := time.Unix(1_000_000, 0)
	q.mu.Lock()
	q.now = func() time.Time { return now }
	q.mu.Unlock()
	return func(d time.Duration) { now = now.Add(d) }
}

// okResult builds a successful completion for a leased job.
func okResult(j Job) Result {
	return Result{
		Version: ProtocolVersion,
		JobID:   j.ID,
		LeaseID: j.LeaseID,
		Results: system.Results{TotalCycles: 42},
	}
}

func TestQueueLeaseExpiryRelease(t *testing.T) {
	q := NewQueue(testCells(1), time.Minute, 3, nil)
	advance := testClock(q)

	j1, outcome := q.Lease()
	if outcome != LeaseGranted || j1.Attempt != 1 {
		t.Fatalf("first lease: outcome=%v attempt=%d", outcome, j1.Attempt)
	}
	// Job is held: nothing else leasable.
	if _, outcome := q.Lease(); outcome != LeaseRetry {
		t.Fatalf("second lease while held: outcome=%v, want retry", outcome)
	}
	// Heartbeats keep the lease alive across the nominal TTL.
	advance(45 * time.Second)
	if !q.Heartbeat(j1.ID, j1.LeaseID) {
		t.Fatal("heartbeat within TTL rejected")
	}
	advance(45 * time.Second)
	if _, outcome := q.Lease(); outcome != LeaseRetry {
		t.Fatalf("lease after heartbeat extension: outcome=%v, want retry", outcome)
	}
	// Silence past the deadline: the job is re-leased with a fresh lease.
	advance(2 * time.Minute)
	j2, outcome := q.Lease()
	if outcome != LeaseGranted {
		t.Fatalf("re-lease after expiry: outcome=%v", outcome)
	}
	if j2.ID != j1.ID || j2.Attempt != 2 || j2.LeaseID == j1.LeaseID {
		t.Fatalf("re-lease: id=%q attempt=%d lease=%q (prev %q)", j2.ID, j2.Attempt, j2.LeaseID, j1.LeaseID)
	}
	// The stale lease is dead: heartbeats and failure reports using it
	// are rejected/ignored.
	if q.Heartbeat(j1.ID, j1.LeaseID) {
		t.Fatal("heartbeat with expired lease accepted")
	}
	if p := q.Progress(); p.Retries != 1 || p.Leased != 1 {
		t.Fatalf("progress after re-lease: %+v", p)
	}
}

func TestQueueDuplicateCompletionIdempotent(t *testing.T) {
	var hookCalls int
	q := NewQueue(testCells(1), time.Minute, 3, func(harness.PlannedCell, Result) { hookCalls++ })
	testClock(q)

	j, _ := q.Lease()
	if !q.Complete(okResult(j)) {
		t.Fatal("first completion not accepted")
	}
	if q.Complete(okResult(j)) {
		t.Fatal("duplicate completion accepted")
	}
	select {
	case <-q.Drained():
	default:
		t.Fatal("queue not drained after sole job completed")
	}
	if _, outcome := q.Lease(); outcome != LeaseDrained {
		t.Fatalf("lease after drain: outcome=%v", outcome)
	}
	if hookCalls != 1 {
		t.Fatalf("onComplete ran %d times, want 1", hookCalls)
	}
	if p := q.Progress(); p.Done != 1 || p.Failed != 0 {
		t.Fatalf("progress: %+v", p)
	}
}

func TestQueueStaleSuccessStillAccepted(t *testing.T) {
	// A worker whose lease expired (and whose job was re-leased) may
	// still deliver a success first; deterministic results make it as
	// good as anyone's.
	q := NewQueue(testCells(1), time.Minute, 3, nil)
	advance := testClock(q)

	j1, _ := q.Lease()
	advance(2 * time.Minute)
	j2, outcome := q.Lease()
	if outcome != LeaseGranted || j2.Attempt != 2 {
		t.Fatalf("re-lease: outcome=%v attempt=%d", outcome, j2.Attempt)
	}
	if !q.Complete(okResult(j1)) {
		t.Fatal("stale-lease success rejected")
	}
	// The newer lease's duplicate is then ignored.
	if q.Complete(okResult(j2)) {
		t.Fatal("second success accepted after first")
	}
	if p := q.Progress(); p.Done != 1 {
		t.Fatalf("progress: %+v", p)
	}
}

func TestQueueStaleFailureIgnored(t *testing.T) {
	q := NewQueue(testCells(1), time.Minute, 3, nil)
	advance := testClock(q)

	j1, _ := q.Lease()
	advance(2 * time.Minute)
	j2, _ := q.Lease() // re-lease: j1's lease is stale

	fail := Result{Version: ProtocolVersion, JobID: j1.ID, LeaseID: j1.LeaseID, Error: "boom"}
	q.Complete(fail)
	// The stale failure must not have knocked the current lease back to
	// pending: nothing is leasable and the job is still held by j2.
	if _, outcome := q.Lease(); outcome != LeaseRetry {
		t.Fatalf("after stale failure: outcome=%v, want retry", outcome)
	}
	if !q.Heartbeat(j2.ID, j2.LeaseID) {
		t.Fatal("current lease no longer heartbeatable after stale failure")
	}
}

func TestQueueMaxAttemptsExhaustion(t *testing.T) {
	q := NewQueue(testCells(1), time.Minute, 2, nil)
	advance := testClock(q)

	j1, _ := q.Lease()
	advance(2 * time.Minute) // attempt 1 expires
	j2, outcome := q.Lease()
	if outcome != LeaseGranted || j2.Attempt != 2 {
		t.Fatalf("attempt 2: outcome=%v attempt=%d", outcome, j2.Attempt)
	}
	advance(2 * time.Minute) // attempt 2 expires: budget spent
	if _, outcome := q.Lease(); outcome != LeaseDrained {
		t.Fatalf("after exhaustion: outcome=%v, want drained", outcome)
	}
	p := q.Progress()
	if p.Failed != 1 || p.Done != 0 {
		t.Fatalf("progress: %+v", p)
	}
	select {
	case <-q.Drained():
	default:
		t.Fatal("queue not drained after job failed terminally")
	}
	// Even a failed job accepts a straggler success — the render-time
	// fallback simply finds the cell already present.
	if !q.Complete(okResult(j1)) {
		t.Fatal("straggler success after terminal failure rejected")
	}
	if p := q.Progress(); p.Done != 1 || p.Failed != 0 {
		t.Fatalf("progress after straggler: %+v", p)
	}
}

func TestQueueReportedFailureSpendsAttempt(t *testing.T) {
	q := NewQueue(testCells(1), time.Minute, 2, nil)
	testClock(q)

	j1, _ := q.Lease()
	q.Complete(Result{Version: ProtocolVersion, JobID: j1.ID, LeaseID: j1.LeaseID, Error: "boom"})
	j2, outcome := q.Lease()
	if outcome != LeaseGranted || j2.Attempt != 2 {
		t.Fatalf("after reported failure: outcome=%v attempt=%d", outcome, j2.Attempt)
	}
	q.Complete(Result{Version: ProtocolVersion, JobID: j2.ID, LeaseID: j2.LeaseID, Error: "boom again"})
	if _, outcome := q.Lease(); outcome != LeaseDrained {
		t.Fatalf("after second failure: outcome=%v, want drained", outcome)
	}
	if p := q.Progress(); p.Failed != 1 {
		t.Fatalf("progress: %+v", p)
	}
}

func TestQueueUnknownJobIgnored(t *testing.T) {
	q := NewQueue(testCells(1), time.Minute, 3, nil)
	testClock(q)
	if q.Complete(Result{Version: ProtocolVersion, JobID: "nope/nope", LeaseID: "lease-1"}) {
		t.Fatal("completion for unknown job accepted")
	}
	if q.Heartbeat("nope/nope", "lease-1") {
		t.Fatal("heartbeat for unknown job accepted")
	}
}

func TestQueueLeasesInPlanOrder(t *testing.T) {
	cells := testCells(3)
	q := NewQueue(cells, time.Minute, 3, nil)
	testClock(q)
	for i := range cells {
		j, outcome := q.Lease()
		if outcome != LeaseGranted || j.Key != cells[i].Key {
			t.Fatalf("lease %d: outcome=%v key=%v, want %v", i, outcome, j.Key, cells[i].Key)
		}
		if j.Opts.Seed != cells[i].Opts.Seed {
			t.Fatalf("lease %d: opts not carried (seed=%d)", i, j.Opts.Seed)
		}
	}
}

func TestQueueEmptyDrainsImmediately(t *testing.T) {
	q := NewQueue(nil, time.Minute, 3, nil)
	select {
	case <-q.Drained():
	default:
		t.Fatal("empty queue not drained")
	}
	if _, outcome := q.Lease(); outcome != LeaseDrained {
		t.Fatalf("lease on empty queue: outcome=%v", outcome)
	}
}
