package sweep

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bingo/internal/harness"
)

// microOptions mirrors the harness determinism tests' budgets: whole
// suites run several times here, so cells must stay in the low
// milliseconds. Determinism does not depend on reaching steady state.
func microOptions() harness.RunOptions {
	opts := harness.DefaultRunOptions()
	opts.System.LLC.SizeBytes = 512 * 1024
	opts.System.WarmupInstr = 5_000
	opts.System.MeasureInstr = 10_000
	return opts
}

// oracleConfig is the differential oracle's suite: the same
// 3-experiment overlapping subset the harness determinism tests use.
func oracleConfig() harness.SuiteConfig {
	return harness.SuiteConfig{
		Experiments: []string{"table2", "fig4", "ablate-sharing"},
		Opts:        microOptions(),
		BudgetLabel: "micro",
	}
}

// localOracle renders the oracle suite in-process, once, and caches the
// bytes every distributed run must reproduce.
var localOracle struct {
	once sync.Once
	out  []byte
	err  error
}

func localOracleBytes(t *testing.T) []byte {
	t.Helper()
	localOracle.once.Do(func() {
		var buf bytes.Buffer
		localOracle.err = harness.RunSuite(&buf, oracleConfig())
		localOracle.out = buf.Bytes()
	})
	if localOracle.err != nil {
		t.Fatalf("local reference run: %v", localOracle.err)
	}
	return localOracle.out
}

// runSweep drives one distributed run: a coordinator behind an
// httptest server, the given workers against it, tables rendered once
// the queue drains. Worker errors other than ErrCrashed fail the test.
func runSweep(t *testing.T, cfg harness.SuiteConfig, o Options, workers []*Worker) ([]byte, *Coordinator) {
	t.Helper()
	coord, err := NewCoordinator(cfg, o)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for i, w := range workers {
		w.BaseURL = srv.URL
		wg.Add(1)
		go func(slot int, w *Worker) {
			defer wg.Done()
			errs[slot] = w.Run(ctx)
		}(i, w)
	}

	var out bytes.Buffer
	if err := coord.Run(ctx, &out); err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	cancel() // release any worker still polling
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrCrashed) && !errors.Is(err, context.Canceled) {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	return out.Bytes(), coord
}

// TestSweepDifferentialOracle is the subsystem's core guarantee: for any
// worker count, a distributed run's rendered tables are byte-identical
// to the single-process run.
func TestSweepDifferentialOracle(t *testing.T) {
	want := localOracleBytes(t)
	for _, n := range []int{1, 2, 4} {
		workers := make([]*Worker, n)
		for i := range workers {
			workers[i] = &Worker{Jobs: 1, PollInterval: 20 * time.Millisecond}
		}
		got, coord := runSweep(t, oracleConfig(), Options{}, workers)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: distributed output differs from local run\nlocal %d bytes, distributed %d bytes", n, len(want), len(got))
		}
		p := coord.Progress()
		if p.Done != p.Total || p.Failed != 0 {
			t.Fatalf("workers=%d: progress %+v, want all %d done", n, p, p.Total)
		}
	}
}

// TestSweepCrashRetryOracle kills a worker mid-sweep (it leases a job
// and abandons it without completing or heartbeating), lets the lease
// expire, and checks that a healthy worker re-leases the job and the
// final tables are still byte-identical to the local run.
func TestSweepCrashRetryOracle(t *testing.T) {
	want := localOracleBytes(t)
	workers := []*Worker{
		{Jobs: 1, PollInterval: 20 * time.Millisecond, CrashAfterLeases: 1},
		{Jobs: 1, PollInterval: 20 * time.Millisecond},
	}
	got, coord := runSweep(t, oracleConfig(), Options{LeaseTTL: 300 * time.Millisecond, MaxAttempts: 5}, workers)
	if !bytes.Equal(got, want) {
		t.Fatalf("crash/retry: distributed output differs from local run\nlocal %d bytes, distributed %d bytes", len(want), len(got))
	}
	p := coord.Progress()
	if p.Done != p.Total || p.Failed != 0 {
		t.Fatalf("crash/retry: progress %+v, want all %d done", p, p.Total)
	}
	if p.Retries == 0 {
		t.Fatal("crash/retry: no re-lease recorded; the crash hook did not exercise lease expiry")
	}
}

// TestSweepTelemetryStreaming checks that telemetry documents collected
// on workers land in the coordinator's telemetry directory byte-
// identical to a local run's exports.
func TestSweepTelemetryStreaming(t *testing.T) {
	cfg := harness.SuiteConfig{
		Experiments: []string{"fig4"},
		Opts:        microOptions(),
		BudgetLabel: "micro",
	}
	localCfg := cfg
	localCfg.TelemetryDir = t.TempDir()
	var localOut bytes.Buffer
	if err := harness.RunSuite(&localOut, localCfg); err != nil {
		t.Fatalf("local telemetry run: %v", err)
	}

	sweepCfg := cfg
	sweepCfg.TelemetryDir = t.TempDir()
	got, _ := runSweep(t, sweepCfg, Options{}, []*Worker{{Jobs: 2, PollInterval: 20 * time.Millisecond}})
	if !bytes.Equal(got, localOut.Bytes()) {
		t.Fatal("telemetry sweep: tables differ from local run")
	}

	localFiles, err := filepath.Glob(filepath.Join(localCfg.TelemetryDir, "*"))
	if err != nil || len(localFiles) == 0 {
		t.Fatalf("local telemetry export empty (err=%v)", err)
	}
	for _, lf := range localFiles {
		name := filepath.Base(lf)
		want, err := os.ReadFile(lf)
		if err != nil {
			t.Fatal(err)
		}
		gotDoc, err := os.ReadFile(filepath.Join(sweepCfg.TelemetryDir, name))
		if err != nil {
			t.Fatalf("streamed telemetry missing %s: %v", name, err)
		}
		if !bytes.Equal(gotDoc, want) {
			t.Fatalf("streamed telemetry %s differs from local export", name)
		}
	}
}

// TestSweepRemoteWarmCache runs the same sweep twice against a
// coordinator artifact cache: the first sweep's workers populate and
// push warm-start artifacts; a fresh worker in the second sweep fetches
// them remotely instead of re-simulating warm-up.
func TestSweepRemoteWarmCache(t *testing.T) {
	want := localOracleBytes(t)
	coordWarm := t.TempDir()

	cfg := oracleConfig()
	cfg.WarmDir = coordWarm

	// Sweep 1: cold. Workers simulate warm-ups and push artifacts.
	w1 := &Worker{Jobs: 2, PollInterval: 20 * time.Millisecond}
	out1, _ := runSweep(t, cfg, Options{}, []*Worker{w1})
	if !bytes.Equal(out1, want) {
		t.Fatal("warm sweep 1: tables differ from local run")
	}
	s1 := w1.WarmStats()
	if s1.RemotePuts == 0 {
		t.Fatalf("warm sweep 1: no artifacts pushed (stats %+v)", s1)
	}
	if s1.RemoteHits != 0 {
		t.Fatalf("warm sweep 1: unexpected remote hits on a cold cache (stats %+v)", s1)
	}

	// Sweep 2: a fresh worker (empty local warm dir) fetches every
	// artifact from the coordinator.
	var report bytes.Buffer
	w2 := &Worker{Jobs: 2, PollInterval: 20 * time.Millisecond, Report: &report}
	out2, _ := runSweep(t, cfg, Options{}, []*Worker{w2})
	if !bytes.Equal(out2, want) {
		t.Fatal("warm sweep 2: tables differ from local run")
	}
	s2 := w2.WarmStats()
	if s2.RemoteHits == 0 {
		t.Fatalf("warm sweep 2: no remote warm-cache hits (stats %+v)", s2)
	}
	if s2.Misses != 0 {
		t.Fatalf("warm sweep 2: %d local warm-up re-simulations despite remote cache (stats %+v)", s2.Misses, s2)
	}
	if !strings.Contains(report.String(), "remote artifact cache:") {
		t.Fatalf("worker run report missing remote-cache line:\n%s", report.String())
	}
}

// TestSweepArtifactEndpointHardening exercises the artifact cache's
// rejection paths directly: bad hashes, oversized and corrupt uploads.
func TestSweepArtifactEndpointHardening(t *testing.T) {
	cfg := oracleConfig()
	cfg.WarmDir = t.TempDir()
	coord, err := NewCoordinator(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	w := &Worker{BaseURL: srv.URL}
	remote := &remoteArtifacts{worker: w}
	hash := strings.Repeat("ab", 32)

	// Missing artifact: clean miss, not an error.
	if data, err := remote.FetchArtifact(hash); err != nil || data != nil {
		t.Fatalf("missing artifact: data=%v err=%v, want nil,nil", data, err)
	}
	// Corrupt upload: rejected by checkpoint validation.
	if err := remote.StoreArtifact(hash, []byte("not a checkpoint")); err == nil {
		t.Fatal("corrupt artifact accepted")
	}
	if _, err := os.Stat(filepath.Join(cfg.WarmDir, hash+".ckpt")); !os.IsNotExist(err) {
		t.Fatalf("corrupt artifact reached disk (stat err=%v)", err)
	}
	// Path traversal via hash: rejected before touching the filesystem.
	if err := remote.StoreArtifact("../evil", []byte("x")); err == nil {
		t.Fatal("path-traversal hash accepted")
	}
}
