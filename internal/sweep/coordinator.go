// All wall-clock reads in this file time the sweep for the run report;
// simulated results never depend on them.
//
//lint:file-ignore detlint wall clock used for run-report timing only, never in simulated paths
package sweep

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bingo/internal/checkpoint"
	"bingo/internal/harness"
)

// Options tunes the coordinator's lease protocol.
type Options struct {
	// LeaseTTL is the heartbeat deadline for one lease (default 1m).
	LeaseTTL time.Duration
	// MaxAttempts bounds leases per job before it falls back to local
	// simulation at render time (default 3).
	MaxAttempts int
}

// Coordinator owns one distributed suite run: it plans the job queue,
// serves the lease/complete protocol plus the artifact cache and
// progress endpoints, injects worker results into its run matrix, and —
// once the queue drains — renders the experiment tables exactly as a
// local run would. Determinism does all the heavy lifting: the matrix
// cannot tell an injected result from a simulated one, and renderers
// walk the matrix in canonical order either way.
type Coordinator struct {
	cfg   harness.SuiteConfig
	names []string
	m     *harness.Matrix
	warm  *harness.WarmStore
	queue *Queue
	mux   *http.ServeMux

	artMu     sync.Mutex
	artServes uint64
	artStores uint64
}

// NewCoordinator plans the suite run cfg describes and prepares the
// service around it. Nothing simulates until workers connect (or
// rendering falls back locally for failed jobs).
func NewCoordinator(cfg harness.SuiteConfig, o Options) (*Coordinator, error) {
	names, err := cfg.Selected()
	if err != nil {
		return nil, err
	}
	m, warm, err := harness.NewSuiteMatrix(cfg)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, names: names, m: m, warm: warm}
	cells := harness.PlanExperiments(names, m)
	c.queue = NewQueue(cells, o.LeaseTTL, o.MaxAttempts, c.accept)
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/lease", c.handleLease)
	c.mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /v1/complete", c.handleComplete)
	c.mux.HandleFunc("GET /v1/config", c.handleConfig)
	c.mux.HandleFunc("GET /v1/progress", c.handleProgress)
	c.mux.HandleFunc("GET /v1/artifact/{hash}", c.handleArtifactGet)
	c.mux.HandleFunc("PUT /v1/artifact/{hash}", c.handleArtifactPut)
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Progress snapshots the sweep's queue state.
func (c *Coordinator) Progress() Progress { return c.queue.Progress() }

// accept is the queue's on-complete hook: it runs exactly once per job,
// for the accepted success, and makes the worker's result
// indistinguishable from a local simulation of the same cell.
func (c *Coordinator) accept(cell harness.PlannedCell, res Result) {
	c.m.Inject(cell.Key, res.Results, res.Aux.Decode(), time.Duration(res.DurationNS))
	if c.cfg.TelemetryDir == "" {
		return
	}
	base := filepath.Join(c.cfg.TelemetryDir, harness.TelemetryFileBase(cell.Key))
	for _, f := range res.Telemetry {
		// Suffixes were validated at decode time; the stem is derived
		// from the cell key here, so workers never influence file names.
		if err := os.WriteFile(base+f.Suffix, f.Data, 0o644); err != nil {
			reportfLocked(c.cfg.Report, "sweep: telemetry write %s: %v\n", cell.Key, err)
		}
	}
}

// Run serves no sockets itself — the caller pairs Handler with a
// listener — but drives the run to completion: it waits until every job
// is terminal (or ctx is cancelled), renders the tables to out, and
// writes the run report. Jobs that exhausted their retry budget are
// simulated locally by the renderers, lazily, exactly as a cold cell
// would be.
func (c *Coordinator) Run(ctx context.Context, out io.Writer) error {
	start := time.Now()
	select {
	case <-c.queue.Drained():
	case <-ctx.Done():
		return ctx.Err()
	}
	p := c.queue.Progress()
	reportfLocked(c.cfg.Report, "sweep: %d jobs done by workers, %d failed (local fallback), %d re-leases\n",
		p.Done, p.Failed, p.Retries)
	if err := harness.RenderTables(out, c.cfg, c.m, c.names); err != nil {
		return err
	}
	harness.WriteRunReport(c.cfg.Report, c.m, c.cfg.Jobs, 0, time.Since(start))
	harness.ReportWarmStats(c.cfg.Report, c.warm)
	c.artMu.Lock()
	serves, stores := c.artServes, c.artStores
	c.artMu.Unlock()
	if serves > 0 || stores > 0 {
		reportfLocked(c.cfg.Report, "artifact cache: %d served to workers, %d stored by workers\n", serves, stores)
	}
	return nil
}

// reportfLocked writes a progress line to the report sink, if any.
func reportfLocked(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	job, outcome := c.queue.Lease()
	switch outcome {
	case LeaseDrained:
		w.WriteHeader(http.StatusGone)
	case LeaseRetry:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, job)
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	ctl, err := DecodeControl(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !c.queue.Heartbeat(ctl.JobID, ctl.LeaseID) {
		http.Error(w, "lease not current", http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	res, err := DecodeResult(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	accepted := c.queue.Complete(res)
	writeJSON(w, map[string]bool{"accepted": accepted})
}

func (c *Coordinator) handleConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, Config{
		Version:        ProtocolVersion,
		Telemetry:      c.cfg.TelemetryDir != "",
		TelemetryEpoch: c.cfg.TelemetryEpoch,
		Warm:           c.warm != nil,
	})
}

func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.queue.Progress())
}

// validArtifactHash accepts exactly a lowercase hex sha256 — anything
// else (path separators, dots) is rejected before touching the
// filesystem.
func validArtifactHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// artifactFile maps a validated hash to the coordinator's warm-store
// file, or "" when the artifact cache is disabled or the hash malformed.
func (c *Coordinator) artifactFile(hash string) string {
	if c.warm == nil || !validArtifactHash(hash) {
		return ""
	}
	return filepath.Join(c.warm.Dir(), hash+".ckpt")
}

func (c *Coordinator) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	path := c.artifactFile(r.PathValue("hash"))
	if path == "" {
		http.Error(w, "artifact cache disabled or bad hash", http.StatusNotFound)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, "no such artifact", http.StatusNotFound)
		return
	}
	defer func() {
		_ = f.Close() // best-effort: read-only descriptor, response already streamed
	}()
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := io.Copy(w, f); err != nil {
		return // client went away mid-stream; nothing to clean up
	}
	c.artMu.Lock()
	c.artServes++
	c.artMu.Unlock()
}

func (c *Coordinator) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	path := c.artifactFile(r.PathValue("hash"))
	if path == "" {
		http.Error(w, "artifact cache disabled or bad hash", http.StatusNotFound)
		return
	}
	if _, err := os.Stat(path); err == nil {
		// Already cached: idempotent no-op (concurrent workers may race
		// to push the same artifact; first write wins).
		w.WriteHeader(http.StatusOK)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxArtifactBytes+1))
	if err != nil {
		http.Error(w, "reading artifact", http.StatusBadRequest)
		return
	}
	if len(data) > MaxArtifactBytes {
		http.Error(w, "artifact exceeds size cap", http.StatusRequestEntityTooLarge)
		return
	}
	// Validate the full container — magic, format version, per-section
	// CRCs — before committing. A corrupt upload is rejected here, and a
	// corrupt file that somehow lands on disk is still caught by the
	// warm store's validate-on-load path.
	if _, err := checkpoint.NewFileReader(bytes.NewReader(data)); err != nil {
		http.Error(w, "artifact failed checkpoint validation", http.StatusUnprocessableEntity)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		http.Error(w, "storing artifact", http.StatusInternalServerError)
		return
	}
	_, writeErr := tmp.Write(data)
	closeErr := tmp.Close()
	if writeErr == nil {
		writeErr = closeErr
	}
	if writeErr == nil {
		writeErr = os.Rename(tmp.Name(), path)
	}
	if writeErr != nil {
		_ = os.Remove(tmp.Name()) // best-effort temp cleanup: the store error wins
		http.Error(w, "storing artifact", http.StatusInternalServerError)
		return
	}
	c.artMu.Lock()
	c.artStores++
	c.artMu.Unlock()
	w.WriteHeader(http.StatusCreated)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := encodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(data) // best-effort: a failed response write is the client's loss
}
