// Wall-clock reads in this file time local vs distributed sweeps for
// the BENCH_sweep.json artefact; simulated results never depend on them
// (and detlint exempts _test.go files for exactly this reason).
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"bingo/internal/benchenv"
	"bingo/internal/harness"
)

// sweepPoint is one worker-count measurement in BENCH_sweep.json.
type sweepPoint struct {
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// sweepBench is the BENCH_sweep.json document: local throughput vs
// coordinator+N-workers over loopback HTTP, plus the remote warm-cache
// hit rate a fresh worker sees on a populated coordinator cache. On a
// single-CPU host the distributed points measure pure protocol overhead
// (lease/heartbeat/complete round trips); the speedup story needs a
// multi-core machine or real fleet.
type sweepBench struct {
	benchenv.Env
	Experiments      string       `json:"experiments"`
	Cells            int          `json:"cells"`
	LocalSeconds     float64      `json:"local_seconds"`
	LocalCellsPerSec float64      `json:"local_cells_per_sec"`
	Sweeps           []sweepPoint `json:"sweeps"`
	WarmPopulateSecs float64      `json:"warm_populate_seconds"`
	WarmReuseSecs    float64      `json:"warm_reuse_seconds"`
	WarmHitRate      float64      `json:"warm_cache_hit_rate"`
	OutputsIdentical bool         `json:"outputs_identical"`
}

// TestEmitSweepBench measures the benchmark experiment subset locally
// and distributed (coordinator + N loopback workers for N in 1, 2, 4,
// then a warm-cache populate/reuse pair), verifies every rendering is
// byte-identical, and writes BENCH_sweep.json to the path in the
// BENCH_SWEEP_JSON environment variable. It is a generator, not a test:
// without the variable it skips. Run it via `make bench-sweep`.
func TestEmitSweepBench(t *testing.T) {
	path := os.Getenv("BENCH_SWEEP_JSON")
	if path == "" {
		t.Skip("set BENCH_SWEEP_JSON=<path> to emit the distributed sweep benchmark")
	}

	// Fresh local run (not the memoized oracle): the wall time must
	// cover real simulation work even when other tests ran first.
	var localBuf bytes.Buffer
	localStart := time.Now()
	if err := harness.RunSuite(&localBuf, oracleConfig()); err != nil {
		t.Fatal(err)
	}
	localDur := time.Since(localStart)
	want := localBuf.Bytes()

	identical := true
	cells := 0
	var points []sweepPoint
	for _, n := range []int{1, 2, 4} {
		workers := make([]*Worker, n)
		for i := range workers {
			workers[i] = &Worker{Jobs: 1, PollInterval: 20 * time.Millisecond}
		}
		start := time.Now()
		out, coord := runSweep(t, oracleConfig(), Options{}, workers)
		dur := time.Since(start)
		identical = identical && bytes.Equal(out, want)
		cells = coord.Progress().Total
		points = append(points, sweepPoint{
			Workers:     n,
			Seconds:     dur.Seconds(),
			CellsPerSec: float64(cells) / dur.Seconds(),
		})
		t.Logf("workers=%d: %s (%.1f cells/sec)", n, dur, float64(cells)/dur.Seconds())
	}

	// Warm-cache pair: sweep 1 populates the coordinator's artifact
	// cache, sweep 2's fresh worker fetches every warm-up remotely.
	warmCfg := oracleConfig()
	warmCfg.WarmDir = t.TempDir()
	popStart := time.Now()
	popOut, _ := runSweep(t, warmCfg, Options{}, []*Worker{{Jobs: 1, PollInterval: 20 * time.Millisecond}})
	popDur := time.Since(popStart)
	w2 := &Worker{Jobs: 1, PollInterval: 20 * time.Millisecond}
	reuseStart := time.Now()
	reuseOut, _ := runSweep(t, warmCfg, Options{}, []*Worker{w2})
	reuseDur := time.Since(reuseStart)
	identical = identical && bytes.Equal(popOut, want) && bytes.Equal(reuseOut, want)
	if !identical {
		t.Error("distributed outputs diverge from the local run")
	}
	ws := w2.WarmStats()
	hits := ws.Hits + ws.RemoteHits
	hitRate := 0.0
	if hits+ws.Misses > 0 {
		hitRate = float64(hits) / float64(hits+ws.Misses)
	}
	if hitRate == 0 {
		t.Error("reuse sweep saw no warm-cache hits")
	}

	doc := sweepBench{
		Env:              benchenv.Capture(),
		Experiments:      fmt.Sprintf("%v", oracleConfig().Experiments),
		Cells:            cells,
		LocalSeconds:     localDur.Seconds(),
		LocalCellsPerSec: float64(cells) / localDur.Seconds(),
		Sweeps:           points,
		WarmPopulateSecs: popDur.Seconds(),
		WarmReuseSecs:    reuseDur.Seconds(),
		WarmHitRate:      hitRate,
		OutputsIdentical: identical,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: local=%s, warm reuse=%s (hit rate %.0f%%)", path, localDur, reuseDur, 100*hitRate)
}
