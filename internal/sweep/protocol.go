// Package sweep turns the experiment suite into a distributed service: a
// coordinator plans the CellKey-identified job queue of a suite run and
// serves it over HTTP to workers, which lease jobs, simulate them with
// the exact same harness code a local run uses, and post the results
// back. Because every simulation is a pure function of (CellKey,
// RunOptions) — the property the suite's determinism oracles already
// enforce — the coordinator can inject worker results into its run
// matrix and render tables byte-identical to a single-process run,
// regardless of worker count, scheduling order, or mid-run crashes.
//
// The failure model is crash-stop workers over a lossy network: leases
// expire when heartbeats stop and jobs are re-leased (bounded by a retry
// budget); completions are idempotent with first-success-wins (safe
// precisely because results are deterministic); jobs that exhaust their
// retries fall back to lazy local simulation at render time, so a sweep
// always terminates with correct tables.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"bingo/internal/harness"
	"bingo/internal/system"
)

// ProtocolVersion is the wire format version. Every envelope carries it;
// decoders reject any other value, so incompatible coordinator/worker
// builds fail loudly at the first message instead of corrupting a sweep.
const ProtocolVersion = 1

// Size caps bound every decoder's allocation regardless of what the peer
// (or a fuzzer) sends. They are generous multiples of real message
// sizes, not tight fits.
const (
	// MaxJobBytes caps a job envelope (a cell key plus full run options).
	MaxJobBytes = 1 << 20
	// MaxResultBytes caps a result envelope, including inlined telemetry
	// documents (a few hundred KB each at default epochs).
	MaxResultBytes = 64 << 20
	// MaxControlBytes caps small control messages (heartbeats).
	MaxControlBytes = 4 << 10
	// MaxArtifactBytes caps one warm-start checkpoint artifact.
	MaxArtifactBytes = 256 << 20
)

// Job is one leased unit of work: a planned matrix cell plus the lease
// that entitles the worker to run it. (Key, Opts) fully determines the
// simulation — see harness.CellRunner.
type Job struct {
	Version int `json:"version"`
	// ID identifies the job across lease/heartbeat/complete exchanges
	// (the cell key's canonical string).
	ID string `json:"id"`
	// LeaseID identifies this particular lease of the job. A re-leased
	// job gets a fresh LeaseID; control messages quoting a stale one are
	// rejected.
	LeaseID string `json:"lease_id"`
	// Attempt counts leases of this job, starting at 1.
	Attempt int `json:"attempt"`
	// LeaseTTLMillis is how long the lease lasts without a heartbeat.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`

	Key  harness.CellKey    `json:"key"`
	Opts harness.RunOptions `json:"opts"`
}

// TelemetryFile is one exported telemetry document riding back with a
// result. Only the suffix travels: the coordinator derives the filename
// stem from the cell key itself, so a worker cannot name files.
type TelemetryFile struct {
	// Suffix selects the document kind; it must be one of
	// harness-exported suffixes (".json", ".trace.json").
	Suffix string `json:"suffix"`
	// Data is the document body (base64 in JSON).
	Data []byte `json:"data"`
}

// Result reports one finished (or failed) job execution.
type Result struct {
	Version int    `json:"version"`
	JobID   string `json:"job_id"`
	LeaseID string `json:"lease_id"`
	// Error is the execution failure, if any; empty means success and
	// the payload fields below are meaningful.
	Error string `json:"error,omitempty"`
	// DurationNS is the worker-measured simulation wall time, recorded
	// in the coordinator's run report.
	DurationNS int64 `json:"duration_ns"`

	Results   system.Results  `json:"results"`
	Aux       harness.CellAux `json:"aux"`
	Telemetry []TelemetryFile `json:"telemetry,omitempty"`
}

// Control is a small job-scoped control message (heartbeat).
type Control struct {
	Version int    `json:"version"`
	JobID   string `json:"job_id"`
	LeaseID string `json:"lease_id"`
}

// Config describes the sweep to a connecting worker.
type Config struct {
	Version int `json:"version"`
	// Telemetry asks workers to collect and return per-cell telemetry
	// documents, sampled every TelemetryEpoch cycles (0 = default).
	Telemetry      bool   `json:"telemetry"`
	TelemetryEpoch uint64 `json:"telemetry_epoch"`
	// Warm advertises the coordinator's artifact cache endpoints.
	Warm bool `json:"warm"`
}

// Progress is the coordinator's sweep-progress snapshot.
type Progress struct {
	Version int `json:"version"`
	Total   int `json:"total"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	// Retries counts re-leases: leases granted beyond each job's first.
	Retries int `json:"retries"`
}

// encodeJSON marshals one envelope for the wire.
func encodeJSON(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("sweep: encoding %T: %w", v, err)
	}
	return data, nil
}

// decodeCapped decodes one JSON envelope from r into v, enforcing the
// byte cap and rejecting unknown fields and trailing garbage.
func decodeCapped(r io.Reader, maxBytes int64, v any, what string) error {
	data, err := io.ReadAll(io.LimitReader(r, maxBytes+1))
	if err != nil {
		return fmt.Errorf("sweep: reading %s: %w", what, err)
	}
	if int64(len(data)) > maxBytes {
		return fmt.Errorf("sweep: %s exceeds %d-byte cap", what, maxBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("sweep: decoding %s: %w", what, err)
	}
	if dec.More() {
		return fmt.Errorf("sweep: trailing data after %s", what)
	}
	return nil
}

// checkVersion rejects any version but the current one.
func checkVersion(got int, what string) error {
	if got != ProtocolVersion {
		return fmt.Errorf("sweep: %s version %d, want %d", what, got, ProtocolVersion)
	}
	return nil
}

// DecodeJob decodes and validates one job envelope.
func DecodeJob(r io.Reader) (Job, error) {
	var j Job
	if err := decodeCapped(r, MaxJobBytes, &j, "job"); err != nil {
		return Job{}, err
	}
	if err := checkVersion(j.Version, "job"); err != nil {
		return Job{}, err
	}
	if j.ID == "" || j.LeaseID == "" {
		return Job{}, fmt.Errorf("sweep: job missing id or lease_id")
	}
	if j.LeaseTTLMillis <= 0 {
		return Job{}, fmt.Errorf("sweep: job lease TTL %d ms out of range", j.LeaseTTLMillis)
	}
	return j, nil
}

// DecodeResult decodes and validates one result envelope.
func DecodeResult(r io.Reader) (Result, error) {
	var res Result
	if err := decodeCapped(r, MaxResultBytes, &res, "result"); err != nil {
		return Result{}, err
	}
	if err := checkVersion(res.Version, "result"); err != nil {
		return Result{}, err
	}
	if res.JobID == "" || res.LeaseID == "" {
		return Result{}, fmt.Errorf("sweep: result missing job_id or lease_id")
	}
	for _, f := range res.Telemetry {
		if f.Suffix != ".json" && f.Suffix != ".trace.json" {
			return Result{}, fmt.Errorf("sweep: result telemetry suffix %q not allowed", f.Suffix)
		}
	}
	return res, nil
}

// DecodeControl decodes and validates one control envelope.
func DecodeControl(r io.Reader) (Control, error) {
	var c Control
	if err := decodeCapped(r, MaxControlBytes, &c, "control"); err != nil {
		return Control{}, err
	}
	if err := checkVersion(c.Version, "control"); err != nil {
		return Control{}, err
	}
	if c.JobID == "" || c.LeaseID == "" {
		return Control{}, fmt.Errorf("sweep: control missing job_id or lease_id")
	}
	return c, nil
}

// DecodeConfig decodes and validates one sweep-config envelope.
func DecodeConfig(r io.Reader) (Config, error) {
	var c Config
	if err := decodeCapped(r, MaxControlBytes, &c, "config"); err != nil {
		return Config{}, err
	}
	if err := checkVersion(c.Version, "config"); err != nil {
		return Config{}, err
	}
	return c, nil
}

// DecodeProgress decodes and validates one progress envelope.
func DecodeProgress(r io.Reader) (Progress, error) {
	var p Progress
	if err := decodeCapped(r, MaxControlBytes, &p, "progress"); err != nil {
		return Progress{}, err
	}
	if err := checkVersion(p.Version, "progress"); err != nil {
		return Progress{}, err
	}
	return p, nil
}
