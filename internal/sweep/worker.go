// All wall-clock use in this file is operational — polling intervals,
// heartbeat cadence, per-job timing for the coordinator's run report.
// Simulated results never depend on it.
//
//lint:file-ignore detlint wall clock drives polling/heartbeats/reporting only, never simulated state
package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"bingo/internal/harness"
)

// ErrCrashed reports a worker that abandoned its run via the
// CrashAfterLeases test hook — leased jobs are left to expire so the
// coordinator re-leases them, which is exactly the failure the
// crash/retry differential oracle exercises.
var ErrCrashed = errors.New("sweep: worker crashed (test hook)")

// Worker leases jobs from a coordinator and executes them with the same
// harness code a local run uses. Zero value is not usable; set BaseURL.
type Worker struct {
	// BaseURL is the coordinator's base URL (e.g. "http://host:8080").
	BaseURL string
	// Jobs is the number of concurrent job runners (<=0 means 1).
	Jobs int
	// WarmDir, when non-empty, is the local warm-artifact directory. If
	// the coordinator advertises an artifact cache, the directory also
	// becomes a read-through/write-back client of it. Empty uses a
	// temporary directory when the coordinator offers warm artifacts.
	WarmDir string
	// Report receives progress lines and the end-of-run warm-cache
	// stats; nil discards them.
	Report io.Writer
	// Client is the HTTP client (nil uses a default with sane timeouts).
	Client *http.Client
	// PollInterval is the delay between lease polls when the queue has
	// nothing leasable (default 200ms).
	PollInterval time.Duration
	// CrashAfterLeases, when > 0, makes the worker return ErrCrashed
	// immediately after leasing its Nth job, without completing or
	// heartbeating it. Test hook for the crash/re-lease oracle.
	CrashAfterLeases int

	leases atomic.Int64
	warmMu sync.Mutex
	warm   *harness.WarmStore
}

// WarmStats returns the worker's warm-store accounting (zero value when
// the run used no warm store).
func (w *Worker) WarmStats() harness.WarmStats {
	w.warmMu.Lock()
	defer w.warmMu.Unlock()
	if w.warm == nil {
		return harness.WarmStats{}
	}
	return w.warm.Stats()
}

// client resolves the HTTP client.
func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

// endpoint joins the base URL with a path.
func (w *Worker) endpoint(path string) (string, error) {
	base, err := url.Parse(w.BaseURL)
	if err != nil {
		return "", fmt.Errorf("sweep: worker base URL: %w", err)
	}
	ref, err := url.Parse(path)
	if err != nil {
		return "", fmt.Errorf("sweep: worker endpoint %q: %w", path, err)
	}
	return base.ResolveReference(ref).String(), nil
}

// Run processes jobs until the coordinator reports the queue drained,
// ctx is cancelled, or a fatal error occurs. It is safe to run several
// workers (in one process or many) against the same coordinator.
func (w *Worker) Run(ctx context.Context) error {
	cfg, err := w.fetchConfig(ctx)
	if err != nil {
		return err
	}

	m := harness.NewMatrix(harness.RunOptions{})
	telDir := ""
	if cfg.Telemetry {
		telDir, err = os.MkdirTemp("", "sweep-telemetry-")
		if err != nil {
			return fmt.Errorf("sweep: worker telemetry dir: %w", err)
		}
		defer func() {
			_ = os.RemoveAll(telDir) // best-effort scratch cleanup
		}()
		if err := m.SetTelemetry(telDir, cfg.TelemetryEpoch); err != nil {
			return err
		}
	}
	if cfg.Warm {
		dir := w.WarmDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "sweep-warm-")
			if err != nil {
				return fmt.Errorf("sweep: worker warm dir: %w", err)
			}
			defer func() {
				_ = os.RemoveAll(dir) // best-effort scratch cleanup
			}()
		}
		ws, err := harness.NewWarmStore(dir)
		if err != nil {
			return err
		}
		ws.SetRemote(&remoteArtifacts{worker: w})
		m.SetWarmStore(ws)
		w.warmMu.Lock()
		w.warm = ws
		w.warmMu.Unlock()
	}

	jobs := w.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = w.runLoop(ctx, m, telDir)
		}(i)
	}
	wg.Wait()
	w.warmMu.Lock()
	ws := w.warm
	w.warmMu.Unlock()
	harness.ReportWarmStats(w.Report, ws)
	return errors.Join(errs...)
}

// maxLeaseFailures is how many consecutive failed lease polls a runner
// tolerates (coordinator restarting, network blip, or the narrow window
// where the coordinator has rendered and shut down while this runner was
// sleeping between polls) before giving up.
const maxLeaseFailures = 10

// runLoop is one runner goroutine: lease, execute, complete, repeat.
func (w *Worker) runLoop(ctx context.Context, m *harness.Matrix, telDir string) error {
	poll := w.PollInterval
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		job, outcome, err := w.lease(ctx)
		if err != nil {
			failures++
			if failures >= maxLeaseFailures || ctx.Err() != nil {
				return err
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		failures = 0
		switch outcome {
		case LeaseDrained:
			return nil
		case LeaseRetry:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		if w.CrashAfterLeases > 0 && w.leases.Add(1) >= int64(w.CrashAfterLeases) {
			return ErrCrashed
		}
		if err := w.runJob(ctx, m, telDir, job); err != nil {
			return err
		}
	}
}

// lease asks the coordinator for a job.
func (w *Worker) lease(ctx context.Context) (Job, LeaseOutcome, error) {
	u, err := w.endpoint("/v1/lease")
	if err != nil {
		return Job{}, LeaseRetry, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return Job{}, LeaseRetry, err
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return Job{}, LeaseRetry, fmt.Errorf("sweep: lease: %w", err)
	}
	defer drainClose(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		job, err := DecodeJob(resp.Body)
		if err != nil {
			return Job{}, LeaseRetry, err
		}
		return job, LeaseGranted, nil
	case http.StatusNoContent:
		return Job{}, LeaseRetry, nil
	case http.StatusGone:
		return Job{}, LeaseDrained, nil
	default:
		return Job{}, LeaseRetry, fmt.Errorf("sweep: lease: unexpected status %s", resp.Status)
	}
}

// runJob executes one leased job and posts its result. Execution errors
// are reported to the coordinator (spending an attempt), not returned —
// only transport-level failures abort the runner.
func (w *Worker) runJob(ctx context.Context, m *harness.Matrix, telDir string, job Job) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, job)

	start := time.Now()
	res, aux, execErr := m.ExecuteCell(job.Key, job.Opts)
	dur := time.Since(start)
	stopHB()

	out := Result{
		Version:    ProtocolVersion,
		JobID:      job.ID,
		LeaseID:    job.LeaseID,
		DurationNS: dur.Nanoseconds(),
	}
	if execErr != nil {
		out.Error = execErr.Error()
	} else {
		out.Results = res
		encoded, err := harness.EncodeAux(aux)
		if err != nil {
			out = Result{Version: ProtocolVersion, JobID: job.ID, LeaseID: job.LeaseID, Error: err.Error()}
		} else {
			out.Aux = encoded
			if telDir != "" {
				out.Telemetry, err = collectTelemetry(telDir, job.Key)
				if err != nil {
					out = Result{Version: ProtocolVersion, JobID: job.ID, LeaseID: job.LeaseID, Error: err.Error()}
				}
			}
		}
	}
	reportfLocked(w.Report, "worker: %s attempt %d: %s\n", job.ID, job.Attempt, statusWord(out.Error))
	return w.complete(ctx, out)
}

// statusWord renders a result's outcome for progress lines.
func statusWord(errText string) string {
	if errText == "" {
		return "ok"
	}
	return "error: " + errText
}

// collectTelemetry reads the cell's exported telemetry documents from
// the worker's scratch directory.
func collectTelemetry(dir string, key harness.CellKey) ([]TelemetryFile, error) {
	base := filepath.Join(dir, harness.TelemetryFileBase(key))
	var out []TelemetryFile
	for _, suffix := range []string{".json", ".trace.json"} {
		data, err := os.ReadFile(base + suffix)
		if err != nil {
			return nil, fmt.Errorf("sweep: worker telemetry %s: %w", key, err)
		}
		out = append(out, TelemetryFile{Suffix: suffix, Data: data})
	}
	return out, nil
}

// heartbeatLoop extends the job's lease until cancelled. A rejected
// heartbeat (lease no longer current) stops quietly — the completion
// path decides what the stale result is worth.
func (w *Worker) heartbeatLoop(ctx context.Context, job Job) {
	ttl := time.Duration(job.LeaseTTLMillis) * time.Millisecond
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		body, err := encodeJSON(Control{Version: ProtocolVersion, JobID: job.ID, LeaseID: job.LeaseID})
		if err != nil {
			return
		}
		u, err := w.endpoint("/v1/heartbeat")
		if err != nil {
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return
		}
		resp, err := w.client().Do(req)
		if err != nil {
			continue // transient: the next tick retries inside the TTL
		}
		drainClose(resp.Body)
		if resp.StatusCode == http.StatusConflict {
			return
		}
	}
}

// complete posts the result. Transport failures are retried a few times;
// if the coordinator stays unreachable the lease will expire and another
// worker re-runs the job, so giving up here is safe.
func (w *Worker) complete(ctx context.Context, res Result) error {
	body, err := encodeJSON(res)
	if err != nil {
		return err
	}
	u, err := w.endpoint("/v1/complete")
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp, err := w.client().Do(req)
		if err != nil {
			lastErr = err
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt+1) * 100 * time.Millisecond):
			}
			continue
		}
		drainClose(resp.Body)
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("sweep: complete: unexpected status %s", resp.Status)
	}
	reportfLocked(w.Report, "worker: %s: completion not delivered (%v); lease will expire and re-run\n", res.JobID, lastErr)
	return nil
}

// fetchConfig retrieves the sweep configuration.
func (w *Worker) fetchConfig(ctx context.Context) (Config, error) {
	u, err := w.endpoint("/v1/config")
	if err != nil {
		return Config{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Config{}, err
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return Config{}, fmt.Errorf("sweep: fetching config: %w", err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return Config{}, fmt.Errorf("sweep: fetching config: unexpected status %s", resp.Status)
	}
	return DecodeConfig(resp.Body)
}

// remoteArtifacts adapts the coordinator's artifact endpoints to the
// harness.RemoteArtifacts interface.
type remoteArtifacts struct {
	worker *Worker
}

// FetchArtifact implements harness.RemoteArtifacts.
func (r *remoteArtifacts) FetchArtifact(hash string) ([]byte, error) {
	u, err := r.worker.endpoint("/v1/artifact/" + url.PathEscape(hash))
	if err != nil {
		return nil, err
	}
	resp, err := r.worker.client().Get(u)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sweep: artifact fetch: unexpected status %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxArtifactBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > MaxArtifactBytes {
		return nil, fmt.Errorf("sweep: artifact exceeds size cap")
	}
	return data, nil
}

// StoreArtifact implements harness.RemoteArtifacts.
func (r *remoteArtifacts) StoreArtifact(hash string, data []byte) error {
	u, err := r.worker.endpoint("/v1/artifact/" + url.PathEscape(hash))
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, u, bytes.NewReader(data))
	if err != nil {
		return err
	}
	resp, err := r.worker.client().Do(req)
	if err != nil {
		return err
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("sweep: artifact store: unexpected status %s", resp.Status)
	}
	return nil
}

// drainClose discards the remainder of a response body and closes it so
// the connection can be reused.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, body) // best-effort drain for connection reuse
	_ = body.Close()                 // best-effort: response already consumed
}
