package prefetch

import (
	"fmt"

	"bingo/internal/checkpoint"
	"bingo/internal/mem"
)

// SaveState serialises the table: clock, size, then the entry arrays
// struct-of-arrays over the full capacity (invalid slots hold zero
// values, keeping the schema occupancy-independent). The caller supplies
// enc to serialise the value column, which it must also write
// struct-of-arrays.
func (t *Table[V]) SaveState(w *checkpoint.Writer, enc func(*checkpoint.Writer, []V)) error {
	w.Version(1)
	w.U64(t.clock)
	w.Int(t.size)
	valid := make([]bool, len(t.entries))
	tags := make([]uint64, len(t.entries))
	lrus := make([]uint64, len(t.entries))
	values := make([]V, len(t.entries))
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue // leave zero values for empty slots
		}
		valid[i] = true
		tags[i] = e.tag
		lrus[i] = e.lru
		values[i] = e.value
	}
	w.Bools(valid)
	w.U64s(tags)
	w.U64s(lrus)
	enc(w, values)
	return w.Err()
}

// LoadState restores a freshly built table of identical geometry. dec
// must mirror enc and return one value per capacity slot. Placement and
// size are structurally validated — a tag resident in the wrong set is a
// corrupt snapshot, not a usable one.
func (t *Table[V]) LoadState(r *checkpoint.Reader, dec func(*checkpoint.Reader) []V) error {
	if t.clock != 0 || t.size != 0 {
		return fmt.Errorf("prefetch: checkpoint restore requires a freshly built table")
	}
	r.Version(1)
	clock := r.U64()
	size := r.Int()
	valid := r.Bools()
	tags := r.U64s()
	lrus := r.U64s()
	values := dec(r)
	if err := r.Err(); err != nil {
		return err
	}
	n := len(t.entries)
	if len(valid) != n || len(tags) != n || len(lrus) != n || len(values) != n {
		return fmt.Errorf("prefetch: snapshot table holds %d entries, table has %d", len(valid), n)
	}
	count := 0
	for i := 0; i < n; i++ {
		if !valid[i] {
			continue
		}
		count++
		if lrus[i] > clock {
			return fmt.Errorf("prefetch: snapshot entry %d recency %d beyond table clock %d", i, lrus[i], clock)
		}
		if want := int(mem.Mix64(tags[i]) & t.setMask); i/t.ways != want {
			return fmt.Errorf("prefetch: snapshot tag %#x resident in set %d but hashes to set %d", tags[i], i/t.ways, want)
		}
		for j := i + 1; j < (i/t.ways+1)*t.ways; j++ {
			if valid[j] && tags[j] == tags[i] {
				return fmt.Errorf("prefetch: snapshot holds duplicate tag %#x in one set", tags[i])
			}
		}
	}
	if count != size {
		return fmt.Errorf("prefetch: snapshot size %d but %d valid entries", size, count)
	}
	for i := 0; i < n; i++ {
		t.entries[i] = tableEntry[V]{valid: valid[i], tag: tags[i], lru: lrus[i], value: values[i]}
		if !valid[i] {
			var zero V
			t.entries[i].value = zero
			t.entries[i].tag = 0
			t.entries[i].lru = 0
		}
	}
	t.clock = clock
	t.size = size
	return nil
}

// EncodeActiveRegions is the value codec for tables of ActiveRegion
// (filter and accumulation tables).
func EncodeActiveRegions(w *checkpoint.Writer, vals []ActiveRegion) {
	regions := make([]uint64, len(vals))
	pcs := make([]uint64, len(vals))
	addrs := make([]uint64, len(vals))
	offsets := make([]int, len(vals))
	fps := make([]uint64, len(vals))
	for i, v := range vals {
		regions[i] = v.Region
		pcs[i] = uint64(v.TriggerPC)
		addrs[i] = uint64(v.TriggerAddr)
		offsets[i] = v.TriggerOffset
		fps[i] = uint64(v.Footprint)
	}
	w.U64s(regions)
	w.U64s(pcs)
	w.U64s(addrs)
	w.Ints(offsets)
	w.U64s(fps)
}

// DecodeActiveRegions mirrors EncodeActiveRegions.
func DecodeActiveRegions(r *checkpoint.Reader) []ActiveRegion {
	regions := r.U64s()
	pcs := r.U64s()
	addrs := r.U64s()
	offsets := r.Ints()
	fps := r.U64s()
	if r.Err() != nil || len(pcs) != len(regions) || len(addrs) != len(regions) ||
		len(offsets) != len(regions) || len(fps) != len(regions) {
		return nil
	}
	out := make([]ActiveRegion, len(regions))
	for i := range out {
		out[i] = ActiveRegion{
			Region:        regions[i],
			TriggerPC:     mem.PC(pcs[i]),
			TriggerAddr:   mem.Addr(addrs[i]),
			TriggerOffset: offsets[i],
			Footprint:     Footprint(fps[i]),
		}
	}
	return out
}

// SaveState implements checkpoint.Checkpointable for the region tracker:
// completion counters, then the filter and accumulation tables.
func (rt *RegionTracker) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	w.U64(rt.CompletedResidencies)
	w.U64(rt.CapacityCompletions)
	w.U64(rt.DroppedSingles)
	if err := rt.filter.SaveState(w, EncodeActiveRegions); err != nil {
		return err
	}
	return rt.accum.SaveState(w, EncodeActiveRegions)
}

// LoadState implements checkpoint.Checkpointable.
func (rt *RegionTracker) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	completed := r.U64()
	capacity := r.U64()
	dropped := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if err := rt.filter.LoadState(r, DecodeActiveRegions); err != nil {
		return fmt.Errorf("region tracker filter table: %w", err)
	}
	if err := rt.accum.LoadState(r, DecodeActiveRegions); err != nil {
		return fmt.Errorf("region tracker accumulation table: %w", err)
	}
	blocks := rt.rc.Blocks()
	check := func(key uint64, v *ActiveRegion) bool {
		return v.TriggerOffset >= 0 && v.TriggerOffset < blocks &&
			(blocks >= 64 || uint64(v.Footprint)>>uint(blocks) == 0)
	}
	ok := true
	rt.filter.Range(func(k uint64, v *ActiveRegion) bool { ok = check(k, v); return ok })
	if ok {
		rt.accum.Range(func(k uint64, v *ActiveRegion) bool { ok = check(k, v); return ok })
	}
	if !ok {
		return fmt.Errorf("region tracker: snapshot footprint outside the %d-block region geometry", blocks)
	}
	rt.CompletedResidencies = completed
	rt.CapacityCompletions = capacity
	rt.DroppedSingles = dropped
	return nil
}
