package prefetch

import (
	"testing"

	"bingo/internal/mem"
)

func newTestTracker(t *testing.T) *RegionTracker {
	t.Helper()
	rc := mem.MustRegionConfig(2048)
	return MustNewRegionTracker(rc, 16, 32, 4)
}

func addr(region uint64, block int) mem.Addr {
	return mem.Addr(region*2048 + uint64(block)*64)
}

func TestFirstAccessTriggers(t *testing.T) {
	rt := newTestTracker(t)
	trig := rt.Observe(0x400, addr(5, 3), false)
	if trig == nil {
		t.Fatal("first access should trigger")
	}
	if trig.PC != 0x400 || trig.Offset != 3 || trig.Region != 5 || trig.Base != mem.Addr(5*2048) {
		t.Fatalf("trigger = %+v", trig)
	}
	if trig.Addr != addr(5, 3) {
		t.Fatalf("trigger addr = %v", trig.Addr)
	}
	// Later accesses to the same region do not trigger.
	if rt.Observe(0x404, addr(5, 4), false) != nil {
		t.Fatal("second access should not trigger")
	}
	if rt.Observe(0x408, addr(5, 3), false) != nil {
		t.Fatal("repeat access should not trigger")
	}
}

func TestEvictionCompletesFootprint(t *testing.T) {
	rt := newTestTracker(t)
	var completed []ActiveRegion
	rt.SetCompleteFunc(func(ar ActiveRegion) { completed = append(completed, ar) })

	rt.Observe(0x400, addr(5, 3), false)
	rt.Observe(0x404, addr(5, 7), false)
	rt.Observe(0x408, addr(5, 1), false)

	ar, ok := rt.OnEviction(addr(5, 7))
	if !ok {
		t.Fatal("eviction of a tracked block should end the residency")
	}
	want := Footprint(0).With(3).With(7).With(1)
	if ar.Footprint != want {
		t.Fatalf("footprint = %s, want %s", ar.Footprint.StringN(32), want.StringN(32))
	}
	if ar.TriggerPC != 0x400 || ar.TriggerOffset != 3 {
		t.Fatalf("trigger info = %+v", ar)
	}
	if len(completed) != 1 {
		t.Fatalf("complete callback fired %d times", len(completed))
	}
	if rt.CompletedResidencies != 1 {
		t.Fatalf("CompletedResidencies = %d", rt.CompletedResidencies)
	}
	// Region is no longer tracked: next access re-triggers.
	if rt.Observe(0x400, addr(5, 0), false) == nil {
		t.Fatal("region should re-trigger after residency end")
	}
}

func TestSingleBlockRegionsDropped(t *testing.T) {
	rt := newTestTracker(t)
	var completed int
	rt.SetCompleteFunc(func(ActiveRegion) { completed++ })

	rt.Observe(0x400, addr(9, 2), false)
	rt.Observe(0x404, addr(9, 2), false) // same block: stays a single
	if _, ok := rt.OnEviction(addr(9, 2)); ok {
		t.Fatal("single-block region should not be returned for training")
	}
	if completed != 0 {
		t.Fatal("single-block region should not complete")
	}
	if rt.DroppedSingles != 1 {
		t.Fatalf("DroppedSingles = %d", rt.DroppedSingles)
	}
}

func TestUntrackedEvictionIgnored(t *testing.T) {
	rt := newTestTracker(t)
	if _, ok := rt.OnEviction(addr(42, 0)); ok {
		t.Fatal("eviction of an untracked region should be a no-op")
	}
}

func TestCapacityCompletion(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	rt := MustNewRegionTracker(rc, 16, 4, 4) // 4-entry accumulation table
	var completed []ActiveRegion
	rt.SetCompleteFunc(func(ar ActiveRegion) { completed = append(completed, ar) })

	// Promote 5 regions into the 4-entry accumulation table: the LRU one
	// must be displaced and completed.
	for r := uint64(0); r < 5; r++ {
		rt.Observe(0x400, addr(r, 0), false)
		rt.Observe(0x404, addr(r, 1), false)
	}
	if len(completed) != 1 {
		t.Fatalf("capacity completion fired %d times, want 1", len(completed))
	}
	if rt.CapacityCompletions != 1 {
		t.Fatalf("CapacityCompletions = %d", rt.CapacityCompletions)
	}
	if completed[0].Footprint.Count() != 2 {
		t.Fatalf("displaced footprint = %+v", completed[0])
	}
}

func TestStorageBits(t *testing.T) {
	rt := newTestTracker(t)
	if rt.StorageBits() <= 0 {
		t.Fatal("storage should be positive")
	}
	if rt.Region().Blocks() != 32 {
		t.Fatalf("region geometry = %+v", rt.Region())
	}
}

func TestTrackerValidation(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	if _, err := NewRegionTracker(rc, 3, 32, 4); err == nil {
		t.Error("bad filter geometry should fail")
	}
	if _, err := NewRegionTracker(rc, 16, 3, 4); err == nil {
		t.Error("bad accumulation geometry should fail")
	}
}
