package prefetch

import (
	"math/bits"
	"strings"

	"bingo/internal/mem"
)

// Footprint is a bit vector over the blocks of a region: bit i set means
// block i of the region was (or is predicted to be) used during the
// region's residency. Regions of up to 64 blocks (4 KB at 64 B blocks)
// are supported, which covers every configuration in the paper.
type Footprint uint64

// With returns f with block i marked used.
func (f Footprint) With(i int) Footprint { return f | 1<<uint(i) }

// Test reports whether block i is marked.
func (f Footprint) Test(i int) bool { return f&(1<<uint(i)) != 0 }

// Count returns the number of marked blocks.
func (f Footprint) Count() int { return bits.OnesCount64(uint64(f)) }

// Blocks returns the indices of marked blocks in ascending order.
func (f Footprint) Blocks() []int {
	out := make([]int, 0, f.Count())
	for v := uint64(f); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// Addrs expands the footprint into block addresses within the region
// containing base, excluding block excludeIdx (pass -1 to keep all).
func (f Footprint) Addrs(rc mem.RegionConfig, base mem.Addr, excludeIdx int) []mem.Addr {
	return f.AppendAddrs(make([]mem.Addr, 0, f.Count()), rc, base, excludeIdx)
}

// AppendAddrs is Addrs appending into dst, for callers that reuse a
// buffer across accesses on the issue hot path. Bits are iterated in
// place, so the only allocation is dst's own growth.
func (f Footprint) AppendAddrs(dst []mem.Addr, rc mem.RegionConfig, base mem.Addr, excludeIdx int) []mem.Addr {
	sanCheckFootprint(f, rc.Blocks())
	for v := uint64(f); v != 0; v &= v - 1 {
		i := bits.TrailingZeros64(v)
		if i == excludeIdx {
			continue
		}
		dst = append(dst, rc.BlockAddr(base, i)) //hot:alloc caller's reused buffer grows to steady-state capacity
	}
	return dst
}

// String renders the footprint as a bit string, LSB (block 0) first, over
// n blocks.
func (f Footprint) String() string { return f.StringN(64) }

// StringN renders the first n bits.
func (f Footprint) StringN(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if f.Test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Rotate returns the footprint rotated so that the pattern anchored at
// trigger offset `from` is re-anchored at offset `to` in an n-block
// region. Spatial prefetchers that generalise a pattern learned at one
// offset to a trigger at another offset use this (SMS-style anchoring).
func (f Footprint) Rotate(from, to, n int) Footprint {
	if from == to || n <= 0 {
		return f
	}
	shift := ((to-from)%n + n) % n
	mask := uint64(1)<<uint(n) - 1
	if n == 64 {
		mask = ^uint64(0)
	}
	v := uint64(f) & mask
	rot := (v<<uint(shift) | v>>uint(n-shift)) & mask
	return Footprint(rot)
}
