package prefetch

import (
	"testing"

	"bingo/internal/mem"
)

func TestAllEventsOrder(t *testing.T) {
	events := AllEvents()
	want := []EventKind{EventPCAddress, EventPCOffset, EventAddress, EventPC, EventOffset}
	if len(events) != len(want) {
		t.Fatalf("AllEvents = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("AllEvents[%d] = %v, want %v", i, events[i], want[i])
		}
	}
}

func TestEventStrings(t *testing.T) {
	names := map[EventKind]string{
		EventPCAddress: "PC+Address",
		EventPCOffset:  "PC+Offset",
		EventAddress:   "Address",
		EventPC:        "PC",
		EventOffset:    "Offset",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v.String() = %q", int(k), k.String())
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestEventKeySelectivity(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	pc1, pc2 := mem.PC(0x400), mem.PC(0x404)
	// Two addresses with the same offset in different regions.
	a1 := mem.Addr(1*2048 + 5*64)
	a2 := mem.Addr(9*2048 + 5*64)
	// A third with a different offset.
	a3 := mem.Addr(1*2048 + 6*64)

	// PC+Offset ignores the region: same key for a1 and a2, different
	// for a3 or another PC.
	if EventPCOffset.Key(pc1, a1, rc) != EventPCOffset.Key(pc1, a2, rc) {
		t.Error("PC+Offset should ignore the region")
	}
	if EventPCOffset.Key(pc1, a1, rc) == EventPCOffset.Key(pc1, a3, rc) {
		t.Error("PC+Offset should depend on the offset")
	}
	if EventPCOffset.Key(pc1, a1, rc) == EventPCOffset.Key(pc2, a1, rc) {
		t.Error("PC+Offset should depend on the PC")
	}

	// PC+Address distinguishes regions.
	if EventPCAddress.Key(pc1, a1, rc) == EventPCAddress.Key(pc1, a2, rc) {
		t.Error("PC+Address should depend on the full block address")
	}

	// Single-component events ignore the other component.
	if EventPC.Key(pc1, a1, rc) != EventPC.Key(pc1, a2, rc) {
		t.Error("PC event should ignore the address")
	}
	if EventOffset.Key(pc1, a1, rc) != EventOffset.Key(pc2, a2, rc) {
		t.Error("Offset event should ignore PC and region")
	}
	if EventAddress.Key(pc1, a1, rc) != EventAddress.Key(pc2, a1, rc) {
		t.Error("Address event should ignore the PC")
	}
}

func TestEventKeyBlockGranular(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	a := mem.Addr(0x1234_5678)
	if EventPCAddress.Key(1, a, rc) != EventPCAddress.Key(1, a.BlockAlign(), rc) {
		t.Error("keys should be block-granular")
	}
}

func TestEventBitsComposition(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	// Compound events cost at least as many tag bits as each component
	// ("length" in the paper is the number of coinciding incidents, not
	// raw bit width: Address alone is wider than PC+Offset).
	if EventPCAddress.Bits(rc) < EventPC.Bits(rc) || EventPCAddress.Bits(rc) < EventAddress.Bits(rc) {
		t.Error("PC+Address should cost at least its components")
	}
	if EventPCOffset.Bits(rc) < EventPC.Bits(rc) || EventPCOffset.Bits(rc) < EventOffset.Bits(rc) {
		t.Error("PC+Offset should cost at least its components")
	}
	if EventPCAddress.Bits(rc) != EventPC.Bits(rc)+EventAddress.Bits(rc) {
		t.Error("PC+Address tag should be the concatenation of PC and Address tags")
	}
	if EventKind(99).Bits(rc) != 0 {
		t.Error("unknown kind should have 0 bits")
	}
}

func TestEventKeyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind should panic")
		}
	}()
	EventKind(99).Key(1, 2, mem.MustRegionConfig(2048))
}

func TestNilPrefetcher(t *testing.T) {
	var p Nil
	if p.Name() != "none" || p.StorageBytes() != 0 {
		t.Fatal("Nil prefetcher identity wrong")
	}
	if got := p.OnAccess(AccessEvent{Addr: 0x1000}); got != nil {
		t.Fatal("Nil should never prefetch")
	}
	p.OnEviction(0x1000) // must not panic
}
