// Package prefetch defines the prefetcher abstraction shared by Bingo and
// every baseline: the access/eviction observation interface, trigger
// events, page footprints, a generic set-associative metadata table with
// LRU replacement, and the filter/accumulation region tracker used by
// per-page-history (PPH) prefetchers.
package prefetch

import "bingo/internal/mem"

// AccessEvent describes one demand access observed at the attach level
// (the LLC in this reproduction, per the paper's §V-B).
type AccessEvent struct {
	Addr  mem.Addr // physical address of the access
	PC    mem.PC   // program counter of the triggering instruction
	Core  int      // requesting core
	Write bool     // store rather than load
	Hit   bool     // whether the access hit at the attach level
}

// Prefetcher is the interface every prefetching algorithm implements.
// Implementations are per-core (no metadata sharing between cores, as in
// the paper). Each instance is driven from one goroutine at a time: the
// driver goroutine in the serial frontend, or — when the system runs
// with FrontendParallel and the prefetchers attach at L1 — the owning
// core's worker goroutine. Instances never need internal locking; a
// factory that shares one instance across cores forces the system back
// to the serial frontend (see system.parallelOK).
type Prefetcher interface {
	// Name identifies the algorithm and configuration.
	Name() string
	// OnAccess observes a demand access and returns the block-aligned
	// addresses that should be prefetched into the attach level. The
	// returned slice may alias storage the prefetcher reuses: it is valid
	// only until the next OnAccess call, and callers must consume (or
	// copy) it before then. The system issues the prefetches immediately,
	// so per-instance buffers keep the hot path allocation-free.
	OnAccess(ev AccessEvent) []mem.Addr
	// OnEviction observes a block leaving the attach level. PPH
	// prefetchers use this as the end-of-region-residency signal.
	OnEviction(addr mem.Addr)
	// StorageBytes returns the metadata budget the configuration implies,
	// used by the performance-density model.
	StorageBytes() int
}

// Factory creates one Prefetcher instance per core.
type Factory func(core int) Prefetcher

// OutcomeObserver is optionally implemented by prefetchers that want the
// fate of their prefetched lines fed back (useful first use vs unused
// eviction). The system routes cache outcome events to the issuing
// core's prefetcher when it implements this interface — the hook behind
// feedback-directed throttling.
type OutcomeObserver interface {
	OnPrefetchOutcome(useful bool)
}

// Nil is the no-prefetcher baseline.
type Nil struct{}

// Name implements Prefetcher.
func (Nil) Name() string { return "none" }

// OnAccess implements Prefetcher; it never prefetches.
func (Nil) OnAccess(AccessEvent) []mem.Addr { return nil }

// OnEviction implements Prefetcher.
func (Nil) OnEviction(mem.Addr) {}

// StorageBytes implements Prefetcher.
func (Nil) StorageBytes() int { return 0 }

var _ Prefetcher = Nil{}
