//go:build san

package prefetch

import (
	"bingo/internal/mem"
	"bingo/internal/san"
)

// sanState is the per-table checker state of the runtime invariant
// sanitizer (build tag `san`).
type sanState struct {
	events uint64 // inserts since the last deep sweep
}

// sanAfterInsert verifies the metadata table's residency invariants after
// an insertion into key's set: no duplicate tags within the set, and the
// cached size counter within capacity. Every san.DeepInterval() inserts
// the whole table is swept and size is recounted from scratch.
func (t *Table[V]) sanAfterInsert(key uint64) {
	if !san.Enabled() {
		return
	}
	if t.size < 0 || t.size > len(t.entries) {
		san.Failf("prefetch.table", 0, san.TableResidency,
			"size counter %d outside [0,%d]", t.size, len(t.entries))
	}
	set := t.set(key)
	for i := range set {
		if !set[i].valid {
			continue
		}
		if set[i].lru > t.clock {
			san.Failf("prefetch.table", 0, san.TableResidency,
				"entry tag %#x has recency stamp %d beyond table clock %d",
				set[i].tag, set[i].lru, t.clock)
		}
		for j := i + 1; j < len(set); j++ {
			if set[j].valid && set[j].tag == set[i].tag {
				san.Failf("prefetch.table", 0, san.TableResidency,
					"duplicate tag %#x in ways %d and %d of the set for key %#x",
					set[i].tag, i, j, key)
			}
		}
	}
	t.san.events++
	if t.san.events%san.DeepInterval() == 0 {
		t.sanDeepCheck()
	}
}

// sanDeepCheck recounts valid entries across the whole table and verifies
// the incremental size counter and set-index placement of every tag.
func (t *Table[V]) sanDeepCheck() {
	count := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			continue
		}
		count++
		want := int(mem.Mix64(t.entries[i].tag) & t.setMask)
		if got := i / t.ways; got != want {
			san.Failf("prefetch.table", 0, san.TableResidency,
				"tag %#x resident in set %d but hashes to set %d", t.entries[i].tag, got, want)
		}
	}
	if count != t.size {
		san.Failf("prefetch.table", 0, san.TableResidency,
			"size counter %d but %d valid entries resident", t.size, count)
	}
}

// sanCheckFootprint verifies a footprint stays within the region geometry:
// a region of `blocks` blocks must never mark a bit at or beyond `blocks`.
func sanCheckFootprint(f Footprint, blocks int) {
	if !san.Enabled() {
		return
	}
	if blocks <= 0 || blocks > 64 {
		san.Failf("prefetch.footprint", 0, san.BingoFootprint,
			"region geometry of %d blocks outside (0,64]", blocks)
	}
	if blocks < 64 && uint64(f)>>uint(blocks) != 0 {
		san.Failf("prefetch.footprint", 0, san.BingoFootprint,
			"footprint %#x marks blocks at or beyond region size %d", uint64(f), blocks)
	}
}
