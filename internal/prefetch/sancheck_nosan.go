//go:build !san

package prefetch

// sanState is the per-table checker state of the runtime invariant
// sanitizer. Without the `san` build tag it is empty and the hooks are
// no-ops the compiler inlines away. See internal/san and sancheck_san.go.
type sanState struct{}

func (t *Table[V]) sanAfterInsert(key uint64) {}

func sanCheckFootprint(f Footprint, blocks int) {}
