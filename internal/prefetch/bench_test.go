package prefetch

import (
	"testing"

	"bingo/internal/mem"
)

func BenchmarkFootprintRotate(b *testing.B) {
	f := Footprint(0x0f0f_3040_1122)
	for i := 0; i < b.N; i++ {
		f = f.Rotate(i%32, (i+7)%32, 32)
	}
	_ = f
}

func BenchmarkFootprintAddrs(b *testing.B) {
	rc := mem.MustRegionConfig(2048)
	f := Footprint(0).With(1).With(3).With(9).With(17).With(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Addrs(rc, mem.Addr(uint64(i)*2048), 1)
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tbl := MustNewTable[uint64](16*1024, 16)
	for k := uint64(0); k < 16*1024; k++ {
		tbl.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(uint64(i)%(16*1024), true)
	}
}

func BenchmarkTableInsertEvict(b *testing.B) {
	tbl := MustNewTable[uint64](1024, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(uint64(i), uint64(i))
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	rc := mem.MustRegionConfig(2048)
	rt := MustNewRegionTracker(rc, 64, 128, 16)
	rt.SetCompleteFunc(func(ActiveRegion) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Observe(mem.PC(0x400), mem.Addr(uint64(i%1000)*2048+uint64(i%32)*64), false)
	}
}
