package prefetch

import (
	"fmt"

	"bingo/internal/mem"
)

// Table is a generic set-associative metadata table with LRU replacement,
// the workhorse structure of every history-based prefetcher. Keys are
// full-width; the set index is a hash of the key and the tag is the key
// itself, so distinct keys never alias.
type Table[V any] struct {
	ways    int
	setMask uint64
	entries []tableEntry[V]
	clock   uint64
	size    int
	san     sanState // runtime invariant sanitizer (empty without -tags=san)
}

type tableEntry[V any] struct {
	valid bool
	tag   uint64
	lru   uint64
	value V
}

// NewTable creates a table with the given total entry count and
// associativity. numEntries must be a multiple of ways and the implied set
// count a power of two.
func NewTable[V any](numEntries, ways int) (*Table[V], error) {
	if ways <= 0 || numEntries <= 0 || numEntries%ways != 0 {
		return nil, fmt.Errorf("prefetch: table entries %d not divisible into %d ways", numEntries, ways)
	}
	sets := numEntries / ways
	if !mem.IsPow2(sets) {
		return nil, fmt.Errorf("prefetch: table set count %d must be a power of two", sets)
	}
	return &Table[V]{
		ways:    ways,
		setMask: uint64(sets - 1),
		entries: make([]tableEntry[V], numEntries),
	}, nil
}

// MustNewTable is NewTable that panics on error.
func MustNewTable[V any](numEntries, ways int) *Table[V] {
	t, err := NewTable[V](numEntries, ways)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of valid entries.
func (t *Table[V]) Len() int { return t.size }

// Capacity returns the total entry count.
func (t *Table[V]) Capacity() int { return len(t.entries) }

// Ways returns the associativity.
func (t *Table[V]) Ways() int { return t.ways }

func (t *Table[V]) set(key uint64) []tableEntry[V] {
	si := int(mem.Mix64(key) & t.setMask)
	return t.entries[si*t.ways : (si+1)*t.ways]
}

// Lookup returns a pointer to the value stored under key, touching its
// recency if touch is true. The pointer stays valid until the entry is
// evicted or erased.
func (t *Table[V]) Lookup(key uint64, touch bool) (*V, bool) {
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].tag == key {
			if touch {
				t.clock++
				set[i].lru = t.clock
			}
			return &set[i].value, true
		}
	}
	return nil, false
}

// Insert stores value under key, replacing any existing entry for the key
// and otherwise evicting the set's LRU victim. It returns the evicted
// key/value when a valid entry was displaced.
func (t *Table[V]) Insert(key uint64, value V) (evictedKey uint64, evictedVal V, evicted bool) {
	set := t.set(key)
	t.clock++
	victim := -1
	var victimLRU uint64 = ^uint64(0)
	for i := range set {
		if set[i].valid && set[i].tag == key {
			set[i].value = value
			set[i].lru = t.clock
			return 0, evictedVal, false
		}
		if !set[i].valid {
			if victim == -1 || set[victim].valid {
				victim = i
				victimLRU = 0
			}
			continue
		}
		if set[i].lru < victimLRU {
			victim = i
			victimLRU = set[i].lru
		}
	}
	e := &set[victim]
	if e.valid {
		evictedKey, evictedVal, evicted = e.tag, e.value, true
	} else {
		t.size++
	}
	*e = tableEntry[V]{valid: true, tag: key, lru: t.clock, value: value}
	t.sanAfterInsert(key)
	return evictedKey, evictedVal, evicted
}

// Erase removes the entry for key, returning its value if present.
func (t *Table[V]) Erase(key uint64) (V, bool) {
	set := t.set(key)
	for i := range set {
		if set[i].valid && set[i].tag == key {
			v := set[i].value
			var zero V
			set[i] = tableEntry[V]{value: zero}
			t.size--
			return v, true
		}
	}
	var zero V
	return zero, false
}

// Range calls fn for every valid entry until fn returns false. Iteration
// order is unspecified.
func (t *Table[V]) Range(fn func(key uint64, value *V) bool) {
	for i := range t.entries {
		if t.entries[i].valid {
			if !fn(t.entries[i].tag, &t.entries[i].value) {
				return
			}
		}
	}
}
