package prefetch

import (
	"testing"
	"testing/quick"

	"bingo/internal/mem"
)

func TestFootprintBasics(t *testing.T) {
	var f Footprint
	f = f.With(0).With(5).With(31)
	if !f.Test(0) || !f.Test(5) || !f.Test(31) || f.Test(1) {
		t.Fatalf("Test wrong: %s", f.StringN(32))
	}
	if f.Count() != 3 {
		t.Fatalf("Count = %d", f.Count())
	}
	blocks := f.Blocks()
	if len(blocks) != 3 || blocks[0] != 0 || blocks[1] != 5 || blocks[2] != 31 {
		t.Fatalf("Blocks = %v", blocks)
	}
}

func TestFootprintString(t *testing.T) {
	f := Footprint(0).With(1)
	if got := f.StringN(4); got != "0100" {
		t.Fatalf("StringN = %q", got)
	}
	if len(f.String()) != 64 {
		t.Fatalf("String length = %d", len(f.String()))
	}
}

func TestFootprintAddrs(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	f := Footprint(0).With(0).With(3).With(7)
	base := mem.Addr(10 * 2048)
	addrs := f.Addrs(rc, base, 3) // exclude block 3
	if len(addrs) != 2 {
		t.Fatalf("Addrs = %v", addrs)
	}
	if addrs[0] != base || addrs[1] != base+7*64 {
		t.Fatalf("Addrs = %v", addrs)
	}
	if got := f.Addrs(rc, base, -1); len(got) != 3 {
		t.Fatalf("exclude -1 should keep all: %v", got)
	}
}

func TestRotateIdentity(t *testing.T) {
	f := Footprint(0b1011)
	if f.Rotate(5, 5, 32) != f {
		t.Fatal("rotate to same offset should be identity")
	}
	if f.Rotate(0, 0, 0) != f {
		t.Fatal("rotate with n<=0 should be identity")
	}
}

func TestRotateAnchor(t *testing.T) {
	// A pattern {4,5,6} anchored at trigger offset 4 and re-anchored at
	// offset 10 becomes {10,11,12}.
	f := Footprint(0).With(4).With(5).With(6)
	got := f.Rotate(4, 10, 32)
	want := Footprint(0).With(10).With(11).With(12)
	if got != want {
		t.Fatalf("Rotate = %s, want %s", got.StringN(32), want.StringN(32))
	}
}

func TestRotateWraps(t *testing.T) {
	f := Footprint(0).With(31)
	got := f.Rotate(31, 0, 32)
	if !got.Test(0) || got.Count() != 1 {
		t.Fatalf("wrap rotate = %s", got.StringN(32))
	}
}

func TestRotateRoundTripProperty(t *testing.T) {
	rcBlocks := 32
	f := func(raw uint32, from, to uint8) bool {
		fp := Footprint(raw) // 32-bit pattern
		a := int(from) % rcBlocks
		b := int(to) % rcBlocks
		rotated := fp.Rotate(a, b, rcBlocks)
		// Count is preserved and rotating back restores the original.
		return rotated.Count() == fp.Count() && rotated.Rotate(b, a, rcBlocks) == fp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotate64BlockRegion(t *testing.T) {
	f := Footprint(1) | Footprint(1)<<63
	got := f.Rotate(0, 1, 64)
	want := Footprint(1)<<1 | Footprint(1)
	if got != want {
		t.Fatalf("64-block rotate = %x, want %x", uint64(got), uint64(want))
	}
}
