package prefetch

import (
	"bingo/internal/mem"
)

// ActiveRegion is the accumulation-table record for a region currently
// being observed: the trigger access that opened it plus the footprint of
// blocks touched during its residency.
type ActiveRegion struct {
	Region        uint64 // region number
	TriggerPC     mem.PC
	TriggerAddr   mem.Addr // block-aligned address of the trigger access
	TriggerOffset int      // block index of the trigger within the region
	Footprint     Footprint
}

// Trigger describes the event information of a region's first access,
// handed to the history lookup when prefetching is initiated.
type Trigger struct {
	PC     mem.PC
	Addr   mem.Addr
	Offset int
	Region uint64
	Base   mem.Addr // region base address
}

// RegionTracker implements the filter-table / accumulation-table front end
// shared by SMS-style and Bingo-style prefetchers (paper §IV): the first
// access to a region allocates a filter-table entry; a second access to a
// *different* block promotes it to the accumulation table where the full
// footprint is gathered; eviction of any block of the region ends its
// residency. Regions that never saw a second distinct block are dropped
// without training, which keeps one-shot regions from polluting history.
type RegionTracker struct {
	//ckpt:skip derived from the region size re-supplied at construction
	rc mem.RegionConfig
	//conc:core-local each core's prefetcher owns its tracker tables
	filter *Table[ActiveRegion]
	//conc:core-local each core's prefetcher owns its tracker tables
	accum *Table[ActiveRegion]
	//ckpt:skip wiring, re-registered by the owning prefetcher's constructor
	//conc:core-local calls back into the owning prefetcher's training path
	onComplete func(ActiveRegion)

	// CompletedResidencies counts footprints handed back via OnEviction.
	CompletedResidencies uint64
	// CapacityCompletions counts footprints committed because their
	// accumulation-table entry was displaced by a newer region.
	CapacityCompletions uint64
	// DroppedSingles counts filter entries that ended with one block only.
	DroppedSingles uint64

	// trig is the scratch result Observe returns a pointer into, so the
	// per-access hot path stays allocation-free. It is overwritten by the
	// next Observe call.
	//ckpt:skip scratch result, dead between Observe calls
	trig Trigger
}

// SetCompleteFunc registers the callback invoked whenever a region's
// residency ends with a multi-block footprint — either because one of its
// blocks left the cache (OnEviction) or because its accumulation-table
// entry was displaced by capacity pressure. The latter matches the
// authors' released implementation, where displaced accumulation entries
// are committed to the history table rather than dropped; without it a
// prefetcher behind a large LLC would learn nothing until the cache
// fills.
func (rt *RegionTracker) SetCompleteFunc(fn func(ActiveRegion)) { rt.onComplete = fn }

func (rt *RegionTracker) complete(ar ActiveRegion) {
	if rt.onComplete != nil {
		rt.onComplete(ar)
	}
}

// NewRegionTracker builds a tracker with the given filter/accumulation
// capacities (entries are fully counted by StorageBits).
func NewRegionTracker(rc mem.RegionConfig, filterEntries, accumEntries, ways int) (*RegionTracker, error) {
	ft, err := NewTable[ActiveRegion](filterEntries, ways)
	if err != nil {
		return nil, err
	}
	at, err := NewTable[ActiveRegion](accumEntries, ways)
	if err != nil {
		return nil, err
	}
	return &RegionTracker{rc: rc, filter: ft, accum: at}, nil
}

// MustNewRegionTracker panics on configuration error.
func MustNewRegionTracker(rc mem.RegionConfig, filterEntries, accumEntries, ways int) *RegionTracker {
	rt, err := NewRegionTracker(rc, filterEntries, accumEntries, ways)
	if err != nil {
		panic(err)
	}
	return rt
}

// Region returns the tracker's region geometry.
func (rt *RegionTracker) Region() mem.RegionConfig { return rt.rc }

// Observe processes a demand access. When the access is the first touch
// of an untracked region AND a cache miss, it returns that trigger — the
// moment a PPH prefetcher consults its history. Spatial region generation
// is initiated by misses (as in SMS): the first access to a region whose
// blocks are still cached re-opens footprint tracking but is not a
// prefetch opportunity, since the data is already present.
//
// Accumulation entries displaced by capacity pressure end their residency
// early and are reported through the SetCompleteFunc callback, as in the
// authors' released implementation.
//
// The returned pointer aliases tracker-owned scratch storage and is valid
// only until the next Observe call — consume it inside the same OnAccess.
func (rt *RegionTracker) Observe(pc mem.PC, addr mem.Addr, hit bool) (trigger *Trigger) {
	region := rt.rc.RegionNumber(addr)
	blockIdx := rt.rc.BlockIndex(addr)

	if ar, ok := rt.accum.Lookup(region, true); ok {
		ar.Footprint = ar.Footprint.With(blockIdx)
		return nil
	}
	if fe, ok := rt.filter.Lookup(region, true); ok {
		if fe.TriggerOffset == blockIdx {
			return nil // same block again: still a single-block region
		}
		promoted := *fe
		promoted.Footprint = promoted.Footprint.With(blockIdx)
		rt.filter.Erase(region)
		if _, displaced, ok := rt.accum.Insert(region, promoted); ok {
			rt.CapacityCompletions++
			rt.complete(displaced)
		}
		return nil
	}

	// First touch: open a filter entry and, on a miss, report the trigger.
	ar := ActiveRegion{
		Region:        region,
		TriggerPC:     pc,
		TriggerAddr:   addr.BlockAlign(),
		TriggerOffset: blockIdx,
		Footprint:     Footprint(0).With(blockIdx),
	}
	rt.filter.Insert(region, ar)
	if hit {
		return nil
	}
	rt.trig = Trigger{
		PC:     pc,
		Addr:   addr.BlockAlign(),
		Offset: blockIdx,
		Region: region,
		Base:   rt.rc.RegionBase(addr),
	}
	return &rt.trig
}

// OnEviction processes a block eviction at the attach level. If the block
// belongs to a tracked region the region's residency ends: accumulated
// footprints are returned for training; single-block filter entries are
// dropped.
func (rt *RegionTracker) OnEviction(addr mem.Addr) (ActiveRegion, bool) {
	region := rt.rc.RegionNumber(addr)
	if ar, ok := rt.accum.Erase(region); ok {
		rt.CompletedResidencies++
		rt.complete(ar)
		return ar, true
	}
	if _, ok := rt.filter.Erase(region); ok {
		rt.DroppedSingles++
	}
	return ActiveRegion{}, false
}

// StorageBits estimates the hardware cost of the tracker: per entry a
// region tag, trigger PC and offset, and a footprint bit per block.
func (rt *RegionTracker) StorageBits() int {
	const regionTagBits, pcBits = 30, 16
	offsetBits := int(mem.Log2(uint64(rt.rc.Blocks())))
	perFilter := regionTagBits + pcBits + offsetBits + 1 // +valid
	perAccum := perFilter + rt.rc.Blocks()
	return rt.filter.Capacity()*perFilter + rt.accum.Capacity()*perAccum
}
