package prefetch

import (
	"testing"
	"testing/quick"
)

func TestTableValidation(t *testing.T) {
	if _, err := NewTable[int](0, 4); err == nil {
		t.Error("zero entries should fail")
	}
	if _, err := NewTable[int](10, 4); err == nil {
		t.Error("entries not divisible by ways should fail")
	}
	if _, err := NewTable[int](24, 4); err == nil {
		t.Error("non-pow2 set count should fail")
	}
	if _, err := NewTable[int](16, 4); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}

func TestTableInsertLookup(t *testing.T) {
	tbl := MustNewTable[string](16, 4)
	tbl.Insert(1, "a")
	tbl.Insert(2, "b")
	if v, ok := tbl.Lookup(1, false); !ok || *v != "a" {
		t.Fatalf("Lookup(1) = %v %v", v, ok)
	}
	if _, ok := tbl.Lookup(3, false); ok {
		t.Fatal("Lookup(3) should miss")
	}
	if tbl.Len() != 2 || tbl.Capacity() != 16 || tbl.Ways() != 4 {
		t.Fatalf("Len/Capacity/Ways = %d/%d/%d", tbl.Len(), tbl.Capacity(), tbl.Ways())
	}
}

func TestTableReplaceSameKey(t *testing.T) {
	tbl := MustNewTable[int](16, 4)
	tbl.Insert(7, 1)
	if _, _, evicted := tbl.Insert(7, 2); evicted {
		t.Fatal("replacing the same key should not evict")
	}
	if v, _ := tbl.Lookup(7, false); *v != 2 {
		t.Fatalf("value not replaced: %d", *v)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestTableLRUEviction(t *testing.T) {
	// Single-set table: 4 ways, 4 entries.
	tbl := MustNewTable[int](4, 4)
	for k := uint64(0); k < 4; k++ {
		tbl.Insert(k, int(k))
	}
	tbl.Lookup(0, true) // key 0 is now MRU; key 1 is LRU
	key, val, evicted := tbl.Insert(100, 100)
	if !evicted || key != 1 || val != 1 {
		t.Fatalf("evicted %d/%d (%v), want key 1", key, val, evicted)
	}
	if _, ok := tbl.Lookup(0, false); !ok {
		t.Fatal("recently touched key 0 should survive")
	}
}

func TestTableLookupWithoutTouchDoesNotProtect(t *testing.T) {
	tbl := MustNewTable[int](4, 4)
	for k := uint64(0); k < 4; k++ {
		tbl.Insert(k, int(k))
	}
	tbl.Lookup(0, false) // no recency update: key 0 stays LRU
	key, _, evicted := tbl.Insert(100, 100)
	if !evicted || key != 0 {
		t.Fatalf("evicted key %d, want 0", key)
	}
}

func TestTableErase(t *testing.T) {
	tbl := MustNewTable[int](16, 4)
	tbl.Insert(5, 50)
	if v, ok := tbl.Erase(5); !ok || v != 50 {
		t.Fatalf("Erase = %d %v", v, ok)
	}
	if _, ok := tbl.Lookup(5, false); ok {
		t.Fatal("erased key should miss")
	}
	if _, ok := tbl.Erase(5); ok {
		t.Fatal("double erase should miss")
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestTableRange(t *testing.T) {
	tbl := MustNewTable[int](16, 4)
	for k := uint64(0); k < 5; k++ {
		tbl.Insert(k, int(k)*10)
	}
	sum := 0
	tbl.Range(func(key uint64, v *int) bool {
		sum += *v
		return true
	})
	if sum != 100 {
		t.Fatalf("Range sum = %d", sum)
	}
	// Early termination.
	n := 0
	tbl.Range(func(uint64, *int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range did not stop early: %d", n)
	}
}

func TestTableNeverExceedsCapacityProperty(t *testing.T) {
	tbl := MustNewTable[uint64](32, 4)
	f := func(keys []uint64) bool {
		for _, k := range keys {
			tbl.Insert(k, k)
		}
		return tbl.Len() <= tbl.Capacity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableLookupReturnsInsertedProperty(t *testing.T) {
	f := func(key, val uint64) bool {
		tbl := MustNewTable[uint64](16, 4)
		tbl.Insert(key, val)
		got, ok := tbl.Lookup(key, false)
		return ok && *got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
