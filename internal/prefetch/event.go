package prefetch

import (
	"fmt"

	"bingo/internal/mem"
)

// EventKind enumerates the trigger-event heuristics studied in the paper's
// §III (Figure 2): which slice of the trigger access a footprint is
// associated with. Kinds are ordered from longest (most incidents must
// coincide, most accurate, least recurring) to shortest.
type EventKind int

const (
	// EventPCAddress is PC of the trigger instruction + full block address
	// (the longest event; Kumar & Wilkerson's SFP heuristic).
	EventPCAddress EventKind = iota
	// EventPCOffset is PC + offset of the block within its region (SMS's
	// heuristic).
	EventPCOffset
	// EventAddress is the trigger's block address alone.
	EventAddress
	// EventPC is the trigger instruction's PC alone.
	EventPC
	// EventOffset is the block offset within the region alone (the
	// shortest event).
	EventOffset
)

// AllEvents lists every event kind from longest to shortest, matching the
// x-axis of Figure 2 and the cascade order of Figure 3.
func AllEvents() []EventKind {
	return []EventKind{EventPCAddress, EventPCOffset, EventAddress, EventPC, EventOffset}
}

// String names the event kind as the paper does.
func (k EventKind) String() string {
	switch k {
	case EventPCAddress:
		return "PC+Address"
	case EventPCOffset:
		return "PC+Offset"
	case EventAddress:
		return "Address"
	case EventPC:
		return "PC"
	case EventOffset:
		return "Offset"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Key derives the lookup key of this event kind for a trigger access. The
// region geometry determines the offset component. Keys of different kinds
// inhabit disjoint spaces only by construction of their inputs; tables
// that mix kinds must tag entries with the kind as well.
func (k EventKind) Key(pc mem.PC, addr mem.Addr, rc mem.RegionConfig) uint64 {
	switch k {
	case EventPCAddress:
		return mem.Mix2(uint64(pc), addr.BlockNumber())
	case EventPCOffset:
		return mem.Mix2(uint64(pc), uint64(rc.BlockIndex(addr)))
	case EventAddress:
		return mem.Mix64(addr.BlockNumber())
	case EventPC:
		return mem.Mix64(uint64(pc))
	case EventOffset:
		return mem.Mix64(uint64(rc.BlockIndex(addr)))
	default:
		//hot:alloc panic formatting on an invalid kind never runs in a correct build
		panic(fmt.Sprintf("prefetch: unknown event kind %d", int(k)))
	}
}

// Bits returns the approximate tag width of the event in a hardware
// implementation, used by storage accounting. PCs and addresses are
// charged at the truncated widths hardware tables actually store.
func (k EventKind) Bits(rc mem.RegionConfig) int {
	const pcBits, addrBits = 16, 26 // truncated, as in the authors' configuration
	offsetBits := int(mem.Log2(uint64(rc.Blocks())))
	switch k {
	case EventPCAddress:
		return pcBits + addrBits
	case EventPCOffset:
		return pcBits + offsetBits
	case EventAddress:
		return addrBits
	case EventPC:
		return pcBits
	case EventOffset:
		return offsetBits
	default:
		return 0
	}
}
