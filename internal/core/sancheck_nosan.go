//go:build !san

package core

// sanState is the per-history-table checker state of the runtime invariant
// sanitizer. Without the `san` build tag it is empty and the hooks are
// no-ops the compiler inlines away. See internal/san and sancheck_san.go.
type sanState struct{}

func (h *HistoryTable) sanCheckTrigger(triggerOffset int) {}

func (h *HistoryTable) sanAfterInsert(short uint64) {}

func (h *HistoryTable) sanPostRestore() {}
