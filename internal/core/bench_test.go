package core

import (
	"testing"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func BenchmarkHistoryInsert(b *testing.B) {
	rc := mem.MustRegionConfig(2048)
	h := MustNewHistoryTable(rc, 16*1024, 16, 0.20)
	fp := prefetch.Footprint(0).With(0).With(3).With(7).With(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(mem.PC(0x400+i%64), blockAddr(uint64(i%4096), i%32), i%32, fp)
	}
}

func BenchmarkHistoryLookupLongHit(b *testing.B) {
	rc := mem.MustRegionConfig(2048)
	h := MustNewHistoryTable(rc, 16*1024, 16, 0.20)
	fp := prefetch.Footprint(0).With(0).With(3)
	for r := uint64(0); r < 1024; r++ {
		h.Insert(0x400, blockAddr(r, 0), 0, fp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lookup(0x400, blockAddr(uint64(i%1024), 0), 0)
	}
}

func BenchmarkHistoryLookupShortVote(b *testing.B) {
	rc := mem.MustRegionConfig(2048)
	h := MustNewHistoryTable(rc, 16*1024, 16, 0.20)
	for r := uint64(0); r < 64; r++ {
		h.Insert(0x400, blockAddr(r, 5), 5, prefetch.Footprint(0).With(5).With(6).With(9))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A region never trained: forces the short-event voting pass.
		h.Lookup(0x400, blockAddr(uint64(1_000_000+i), 5), 5)
	}
}

func BenchmarkBingoOnAccess(b *testing.B) {
	pf := MustNew(DefaultConfig())
	// Pre-train a few patterns.
	for r := uint64(0); r < 256; r++ {
		trainRegion(pf, 0x400, r, []int{0, 3, 7})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.OnAccess(access(0x400, blockAddr(uint64(i%100_000)+512, i%32)))
	}
}

func BenchmarkBingoOnEviction(b *testing.B) {
	pf := MustNew(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := uint64(i % 4096)
		pf.OnAccess(access(0x400, blockAddr(r, 0)))
		pf.OnAccess(access(0x404, blockAddr(r, 1)))
		pf.OnEviction(blockAddr(r, 0))
	}
}
