package core

import (
	"testing"
	"testing/quick"

	"bingo/internal/mem"
	"bingo/internal/prefetch"
)

func newTestHistory(t *testing.T) *HistoryTable {
	t.Helper()
	rc := mem.MustRegionConfig(2048)
	return MustNewHistoryTable(rc, 64, 4, 0.20)
}

func blockAddr(region uint64, block int) mem.Addr {
	return mem.Addr(region*2048 + uint64(block)*64)
}

func TestHistoryValidation(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	cases := []struct {
		entries, ways int
		vote          float64
	}{
		{0, 4, 0.2},
		{10, 4, 0.2},  // not divisible
		{24, 4, 0.2},  // sets not pow2
		{64, 4, 0},    // bad vote
		{64, 4, 1.5},  // bad vote
		{64, -1, 0.2}, // bad ways
	}
	for i, c := range cases {
		if _, err := NewHistoryTable(rc, c.entries, c.ways, c.vote); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := NewHistoryTable(rc, 64, 4, 0.2); err != nil {
		t.Fatal(err)
	}
}

func TestLongMatchExact(t *testing.T) {
	h := newTestHistory(t)
	fp := prefetch.Footprint(0).With(3).With(5).With(9)
	h.Insert(0x400, blockAddr(7, 3), 3, fp)

	// Same PC and same block address: the long event matches and returns
	// the exact footprint (same trigger offset → identity rotation).
	got, kind := h.Lookup(0x400, blockAddr(7, 3), 3)
	if kind != MatchLong {
		t.Fatalf("kind = %v", kind)
	}
	if got != fp {
		t.Fatalf("footprint = %s, want %s", got.StringN(32), fp.StringN(32))
	}
	st := h.Stats()
	if st.LongHits != 1 || st.Lookups != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShortMatchGeneralises(t *testing.T) {
	h := newTestHistory(t)
	fp := prefetch.Footprint(0).With(3).With(5)
	h.Insert(0x400, blockAddr(7, 3), 3, fp)

	// Different region, same PC and same offset: no long match, but the
	// short PC+Offset event matches and the pattern is re-anchored.
	got, kind := h.Lookup(0x400, blockAddr(99, 3), 3)
	if kind != MatchShort {
		t.Fatalf("kind = %v", kind)
	}
	if got != fp {
		t.Fatalf("generalised footprint = %s, want %s", got.StringN(32), fp.StringN(32))
	}
}

func TestShortMatchRotatesToNewOffset(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	h := MustNewHistoryTable(rc, 64, 4, 0.20)
	// Learned: trigger at offset 3 with used blocks {3,4,6}.
	h.Insert(0x400, blockAddr(7, 3), 3, prefetch.Footprint(0).With(3).With(4).With(6))

	// The same PC triggering at offset 3 of another region predicts the
	// same relative pattern {3,4,6}; a trigger at a different offset is a
	// different short event (offset is part of the key) and must miss.
	if _, kind := h.Lookup(0x400, blockAddr(50, 10), 10); kind != MatchNone {
		t.Fatalf("different offset should be a different short event, got %v", kind)
	}
}

func TestNoMatch(t *testing.T) {
	h := newTestHistory(t)
	if _, kind := h.Lookup(0x999, blockAddr(1, 1), 1); kind != MatchNone {
		t.Fatalf("empty table should miss, got %v", kind)
	}
	if h.Stats().Misses != 1 {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestVoting(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	h := MustNewHistoryTable(rc, 64, 16, 0.5) // 50% threshold for clarity
	// Four regions trained under the same PC+Offset with overlapping
	// footprints; block 1 appears in all, block 9 in one.
	common := prefetch.Footprint(0).With(0).With(1)
	h.Insert(0x400, blockAddr(10, 0), 0, common.With(9))
	h.Insert(0x400, blockAddr(11, 0), 0, common)
	h.Insert(0x400, blockAddr(12, 0), 0, common)
	h.Insert(0x400, blockAddr(13, 0), 0, common)

	got, kind := h.Lookup(0x400, blockAddr(99, 0), 0)
	if kind != MatchShort {
		t.Fatalf("kind = %v", kind)
	}
	if !got.Test(1) || !got.Test(0) {
		t.Fatal("blocks in all footprints must be predicted")
	}
	if got.Test(9) {
		t.Fatal("block in only 1/4 footprints must not pass a 50% vote")
	}
}

func TestVoteThresholdLow(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	h := MustNewHistoryTable(rc, 64, 16, 0.20)
	common := prefetch.Footprint(0).With(0).With(1)
	h.Insert(0x400, blockAddr(10, 0), 0, common.With(9))
	h.Insert(0x400, blockAddr(11, 0), 0, common)
	h.Insert(0x400, blockAddr(12, 0), 0, common)
	h.Insert(0x400, blockAddr(13, 0), 0, common)
	got, _ := h.Lookup(0x400, blockAddr(99, 0), 0)
	if !got.Test(9) {
		t.Fatal("1/4 = 25% should pass the paper's 20% threshold")
	}
}

func TestMostRecentPolicy(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	h := MustNewHistoryTable(rc, 64, 16, 0.20)
	h.SetMostRecentPolicy(true)
	h.Insert(0x400, blockAddr(10, 0), 0, prefetch.Footprint(0).With(0).With(1))
	h.Insert(0x400, blockAddr(11, 0), 0, prefetch.Footprint(0).With(0).With(2))
	got, kind := h.Lookup(0x400, blockAddr(99, 0), 0)
	if kind != MatchShort {
		t.Fatalf("kind = %v", kind)
	}
	if !got.Test(2) || got.Test(1) {
		t.Fatalf("most-recent policy should return the newest footprint, got %s", got.StringN(32))
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	h := newTestHistory(t)
	h.Insert(0x400, blockAddr(7, 3), 3, prefetch.Footprint(0).With(3))
	h.Insert(0x400, blockAddr(7, 3), 3, prefetch.Footprint(0).With(3).With(4))
	got, kind := h.Lookup(0x400, blockAddr(7, 3), 3)
	if kind != MatchLong || !got.Test(4) {
		t.Fatalf("update lost: %v %s", kind, got.StringN(32))
	}
	if h.Stats().Insertions != 2 {
		t.Fatalf("insertions = %d", h.Stats().Insertions)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	h := MustNewHistoryTable(rc, 8, 2, 0.20) // tiny: 4 sets × 2 ways
	for r := uint64(0); r < 64; r++ {
		h.Insert(0x400, blockAddr(r, 0), 0, prefetch.Footprint(1))
	}
	if h.Stats().Evictions == 0 {
		t.Fatal("pressure should evict")
	}
}

func TestLongAndShortShareSet(t *testing.T) {
	// The consolidation property: a footprint stored under its long tag
	// must be findable by the short event alone — they index the same
	// set by construction.
	h := newTestHistory(t)
	for r := uint64(0); r < 20; r++ {
		h.Insert(0x400, blockAddr(r, 5), 5, prefetch.Footprint(0).With(5).With(6))
	}
	_, kind := h.Lookup(0x400, blockAddr(1000, 5), 5)
	if kind != MatchShort {
		t.Fatalf("short lookup should find entries stored under long tags, got %v", kind)
	}
}

func TestMatchProbability(t *testing.T) {
	s := HistoryStats{Lookups: 10, LongHits: 2, ShortHits: 3, Misses: 5}
	if s.MatchProbability() != 0.5 {
		t.Fatalf("MatchProbability = %v", s.MatchProbability())
	}
	if (HistoryStats{}).MatchProbability() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}

func TestMatchKindString(t *testing.T) {
	if MatchNone.String() != "none" || MatchLong.String() != "long" || MatchShort.String() != "short" {
		t.Fatal("MatchKind strings wrong")
	}
}

func TestHistoryRoundTripProperty(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	f := func(pcRaw, region uint64, offRaw uint8, fpRaw uint32) bool {
		h := MustNewHistoryTable(rc, 64, 4, 0.20)
		pc := mem.PC(pcRaw)
		off := int(offRaw) % 32
		fp := prefetch.Footprint(fpRaw).With(off) // trigger block always used
		addr := blockAddr(region%1024, off)
		h.Insert(pc, addr, off, fp)
		got, kind := h.Lookup(pc, addr, off)
		return kind == MatchLong && got == fp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVoteMonotonicityProperty(t *testing.T) {
	// A stricter vote threshold never predicts a block a looser one
	// rejects: prediction(0.5) ⊆ prediction(0.2) for identical history.
	rc := mem.MustRegionConfig(2048)
	f := func(fps [4]uint32) bool {
		loose := MustNewHistoryTable(rc, 64, 16, 0.20)
		strict := MustNewHistoryTable(rc, 64, 16, 0.50)
		for i, raw := range fps {
			fp := prefetch.Footprint(raw).With(0)
			loose.Insert(0x400, blockAddr(uint64(i), 0), 0, fp)
			strict.Insert(0x400, blockAddr(uint64(i), 0), 0, fp)
		}
		lf, lk := loose.Lookup(0x400, blockAddr(999, 0), 0)
		sf, sk := strict.Lookup(0x400, blockAddr(999, 0), 0)
		if lk != MatchShort || sk != MatchShort {
			return false
		}
		return sf&lf == sf // strict ⊆ loose
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTagTruncationStillRoundTrips(t *testing.T) {
	rc := mem.MustRegionConfig(2048)
	h := MustNewHistoryTable(rc, 64, 4, 0.20)
	h.SetTagTruncation(23)
	fp := prefetch.Footprint(0).With(3).With(9)
	h.Insert(0x400, blockAddr(7, 3), 3, fp)
	got, kind := h.Lookup(0x400, blockAddr(7, 3), 3)
	if kind != MatchLong || got != fp {
		t.Fatalf("truncated tags broke the exact roundtrip: %v %s", kind, got.StringN(32))
	}
}

func TestTagTruncationAdmitsAliasing(t *testing.T) {
	// With a 1-bit tag, half of all other events alias onto a stored
	// entry — the failure mode full-width tags cannot have.
	rc := mem.MustRegionConfig(2048)
	h := MustNewHistoryTable(rc, 64, 4, 0.20)
	h.SetTagTruncation(1)
	h.Insert(0x400, blockAddr(7, 3), 3, prefetch.Footprint(0).With(3))
	aliases := 0
	for r := uint64(100); r < 300; r++ {
		if _, kind := h.Lookup(0x400, blockAddr(r, 3), 3); kind == MatchLong {
			aliases++
		}
	}
	if aliases == 0 {
		t.Fatal("1-bit tags should alias frequently")
	}
	// Full-width tags never alias on the same probes.
	hf := MustNewHistoryTable(rc, 64, 4, 0.20)
	hf.Insert(0x400, blockAddr(7, 3), 3, prefetch.Footprint(0).With(3))
	for r := uint64(100); r < 300; r++ {
		if _, kind := hf.Lookup(0x400, blockAddr(r, 3), 3); kind == MatchLong {
			t.Fatal("full-width tags must not alias")
		}
	}
}
