package core

import (
	"fmt"

	"bingo/internal/checkpoint"
	"bingo/internal/prefetch"
)

// SaveState implements checkpoint.Checkpointable for the unified history
// table: clock, lookup counters, then the entry arrays struct-of-arrays
// over the full capacity.
func (h *HistoryTable) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	w.U64(h.clock)
	s := h.stats
	w.U64(s.Lookups)
	w.U64(s.LongHits)
	w.U64(s.ShortHits)
	w.U64(s.Misses)
	w.U64(s.Insertions)
	w.U64(s.Evictions)

	n := len(h.sets)
	valid := make([]bool, n)
	longTags := make([]uint64, n)
	shortTags := make([]uint64, n)
	lrus := make([]uint64, n)
	fps := make([]uint64, n)
	offsets := make([]int, n)
	for i := range h.sets {
		e := &h.sets[i]
		if !e.valid {
			continue
		}
		valid[i] = true
		longTags[i] = e.longTag
		shortTags[i] = e.shortTag
		lrus[i] = e.lru
		fps[i] = uint64(e.footprint)
		offsets[i] = e.offset
	}
	w.Bools(valid)
	w.U64s(longTags)
	w.U64s(shortTags)
	w.U64s(lrus)
	w.U64s(fps)
	w.Ints(offsets)
	return w.Err()
}

// LoadState implements checkpoint.Checkpointable. The restored entries
// are structurally validated: placement by short tag, long-tag
// uniqueness per set, footprints within the region geometry.
func (h *HistoryTable) LoadState(r *checkpoint.Reader) error {
	if h.clock != 0 || h.stats != (HistoryStats{}) {
		return fmt.Errorf("core: checkpoint restore requires a fresh history table")
	}
	r.Version(1)
	clock := r.U64()
	var s HistoryStats
	s.Lookups = r.U64()
	s.LongHits = r.U64()
	s.ShortHits = r.U64()
	s.Misses = r.U64()
	s.Insertions = r.U64()
	s.Evictions = r.U64()
	valid := r.Bools()
	longTags := r.U64s()
	shortTags := r.U64s()
	lrus := r.U64s()
	fps := r.U64s()
	offsets := r.Ints()
	if err := r.Err(); err != nil {
		return err
	}
	n := len(h.sets)
	if len(valid) != n || len(longTags) != n || len(shortTags) != n ||
		len(lrus) != n || len(fps) != n || len(offsets) != n {
		return fmt.Errorf("core: history snapshot holds %d entries, table has %d", len(valid), n)
	}
	blocks := h.rc.Blocks()
	for i := 0; i < n; i++ {
		if !valid[i] {
			continue
		}
		if lrus[i] > clock {
			return fmt.Errorf("core: history entry %d recency %d beyond clock %d", i, lrus[i], clock)
		}
		if want := int(shortTags[i] & h.setMask); i/h.ways != want {
			return fmt.Errorf("core: history entry %d indexed to set %d but short tag hashes to set %d", i, i/h.ways, want)
		}
		if offsets[i] < 0 || offsets[i] >= blocks {
			return fmt.Errorf("core: history entry %d trigger offset %d outside the %d-block region", i, offsets[i], blocks)
		}
		if blocks < 64 && fps[i]>>uint(blocks) != 0 {
			return fmt.Errorf("core: history entry %d footprint %#x outside the %d-block region", i, fps[i], blocks)
		}
		for j := i + 1; j < (i/h.ways+1)*h.ways; j++ {
			if valid[j] && longTags[j] == longTags[i] {
				return fmt.Errorf("core: history snapshot holds duplicate long tag %#x in one set", longTags[i])
			}
		}
	}
	for i := range h.sets {
		if !valid[i] {
			h.sets[i] = historyEntry{}
			continue
		}
		h.sets[i] = historyEntry{
			valid:     true,
			longTag:   longTags[i],
			shortTag:  shortTags[i],
			lru:       lrus[i],
			footprint: prefetch.Footprint(fps[i]),
			offset:    offsets[i],
		}
	}
	h.clock = clock
	h.stats = s
	h.sanPostRestore()
	return nil
}

// SaveState implements checkpoint.Checkpointable for Bingo: counters,
// then the residency tracker and the unified history table.
func (b *Bingo) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	s := b.stats
	w.U64(s.Triggers)
	w.U64(s.LongMatches)
	w.U64(s.ShortMatches)
	w.U64(s.NoMatches)
	w.U64(s.Trained)
	w.U64(s.Issued)
	if err := b.tracker.SaveState(w); err != nil {
		return err
	}
	return b.history.SaveState(w)
}

// LoadState implements checkpoint.Checkpointable.
func (b *Bingo) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	var s Stats
	s.Triggers = r.U64()
	s.LongMatches = r.U64()
	s.ShortMatches = r.U64()
	s.NoMatches = r.U64()
	s.Trained = r.U64()
	s.Issued = r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if err := b.tracker.LoadState(r); err != nil {
		return fmt.Errorf("bingo: %w", err)
	}
	if err := b.history.LoadState(r); err != nil {
		return fmt.Errorf("bingo: %w", err)
	}
	b.stats = s
	return nil
}

// encodePatternEntries is the value codec for the cascade tables.
func encodePatternEntries(w *checkpoint.Writer, vals []patternEntry) {
	fps := make([]uint64, len(vals))
	offsets := make([]int, len(vals))
	for i, v := range vals {
		fps[i] = uint64(v.fp)
		offsets[i] = v.offset
	}
	w.U64s(fps)
	w.Ints(offsets)
}

// decodePatternEntries mirrors encodePatternEntries.
func decodePatternEntries(r *checkpoint.Reader) []patternEntry {
	fps := r.U64s()
	offsets := r.Ints()
	if r.Err() != nil || len(offsets) != len(fps) {
		return nil
	}
	out := make([]patternEntry, len(fps))
	for i := range out {
		out[i] = patternEntry{fp: prefetch.Footprint(fps[i]), offset: offsets[i]}
	}
	return out
}

// SaveState implements checkpoint.Checkpointable for the multi-event
// cascade: per-kind counters, redundancy-probe counters, the tracker,
// then every cascade table (the table count is fixed by configuration).
func (m *MultiEvent) SaveState(w *checkpoint.Writer) error {
	w.Version(1)
	w.U64s(m.Consulted)
	w.U64s(m.Matched)
	w.U64(m.BothHit)
	w.U64(m.Identical)
	w.U64(m.Lookups)
	w.U64(m.Predicted)
	if err := m.tracker.SaveState(w); err != nil {
		return err
	}
	for _, t := range m.tables {
		if err := t.SaveState(w, encodePatternEntries); err != nil {
			return err
		}
	}
	return w.Err()
}

// LoadState implements checkpoint.Checkpointable.
func (m *MultiEvent) LoadState(r *checkpoint.Reader) error {
	r.Version(1)
	consulted := r.U64s()
	matched := r.U64s()
	bothHit := r.U64()
	identical := r.U64()
	lookups := r.U64()
	predicted := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if len(consulted) != len(m.events) || len(matched) != len(m.events) {
		return fmt.Errorf("multievent: snapshot covers %d event kinds, cascade has %d", len(consulted), len(m.events))
	}
	if err := m.tracker.LoadState(r); err != nil {
		return fmt.Errorf("multievent: %w", err)
	}
	for i, t := range m.tables {
		if err := t.LoadState(r, decodePatternEntries); err != nil {
			return fmt.Errorf("multievent table %d: %w", i, err)
		}
	}
	copy(m.Consulted, consulted)
	copy(m.Matched, matched)
	m.BothHit = bothHit
	m.Identical = identical
	m.Lookups = lookups
	m.Predicted = predicted
	return nil
}
