//go:build san

package core

import "bingo/internal/san"

// sanState is the per-history-table checker state of the runtime invariant
// sanitizer (build tag `san`).
type sanState struct {
	events uint64 // inserts since the last deep sweep
}

// sanCheckTrigger verifies a trigger offset lies within the region
// geometry before it is used to rotate a footprint.
func (h *HistoryTable) sanCheckTrigger(triggerOffset int) {
	if !san.Enabled() {
		return
	}
	if triggerOffset < 0 || triggerOffset >= h.rc.Blocks() {
		san.Failf("core.history", 0, san.BingoFootprint,
			"trigger offset %d outside region of %d blocks", triggerOffset, h.rc.Blocks())
	}
}

// sanAfterInsert verifies the unified table's residency invariants on the
// set just written: long tags are unique among valid ways (the PC+Address
// event is the full tag, so two ways must never carry the same one),
// recency stamps never run ahead of the table clock, stored trigger
// offsets lie within the region, and anchored footprints fit the region
// geometry. Every san.DeepInterval() inserts the whole table is swept.
func (h *HistoryTable) sanAfterInsert(short uint64) {
	if !san.Enabled() {
		return
	}
	set := h.setFor(short)
	for i := range set {
		e := &set[i]
		if !e.valid {
			continue
		}
		h.sanCheckEntry(e)
		for j := i + 1; j < len(set); j++ {
			if set[j].valid && set[j].longTag == e.longTag {
				san.Failf("core.history", 0, san.BingoResidency,
					"duplicate long tag %#x in ways %d and %d of the set for short key %#x",
					e.longTag, i, j, short)
			}
		}
	}
	h.san.events++
	if h.san.events%san.DeepInterval() == 0 {
		h.sanDeepCheck()
	}
}

// sanCheckEntry verifies one resident entry's bounds.
func (h *HistoryTable) sanCheckEntry(e *historyEntry) {
	if e.lru > h.clock {
		san.Failf("core.history", 0, san.BingoResidency,
			"entry long tag %#x has recency stamp %d beyond table clock %d",
			e.longTag, e.lru, h.clock)
	}
	if e.offset < 0 || e.offset >= h.rc.Blocks() {
		san.Failf("core.history", 0, san.BingoResidency,
			"entry long tag %#x learned at offset %d outside region of %d blocks",
			e.longTag, e.offset, h.rc.Blocks())
	}
	if n := h.rc.Blocks(); n < 64 && uint64(e.footprint)>>uint(n) != 0 {
		san.Failf("core.history", 0, san.BingoFootprint,
			"entry long tag %#x stores footprint %#x marking blocks beyond region size %d",
			e.longTag, uint64(e.footprint), n)
	}
}

// sanPostRestore sweeps the whole table right after a checkpoint load so
// a structurally corrupt snapshot that slipped past decode validation
// trips the sanitizer before any simulation runs on it.
func (h *HistoryTable) sanPostRestore() {
	if !san.Enabled() {
		return
	}
	h.sanDeepCheck()
}

// sanDeepCheck sweeps every set: entry bounds plus set-wide long-tag
// uniqueness, and that every resident short tag actually indexes the set
// it lives in (residency placement).
func (h *HistoryTable) sanDeepCheck() {
	numSets := int(h.setMask) + 1
	for si := 0; si < numSets; si++ {
		set := h.sets[si*h.ways : (si+1)*h.ways]
		for i := range set {
			e := &set[i]
			if !e.valid {
				continue
			}
			h.sanCheckEntry(e)
			if got := int(e.shortTag & h.setMask); got != si {
				san.Failf("core.history", 0, san.BingoResidency,
					"entry short tag %#x resident in set %d but indexes set %d",
					e.shortTag, si, got)
			}
			for j := i + 1; j < len(set); j++ {
				if set[j].valid && set[j].longTag == e.longTag {
					san.Failf("core.history", 0, san.BingoResidency,
						"duplicate long tag %#x in ways %d and %d of set %d", e.longTag, i, j, si)
				}
			}
		}
	}
}
